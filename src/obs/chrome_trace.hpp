// Chrome Trace Event / Perfetto export of a collected report.
//
// Renders the report's two kinds of time on separate tracks of one trace:
//
//   pid 0                "host" — the measured span tree (nested "X" events
//                        on tid 0; spans are recorded by one collecting
//                        thread, so one lane suffices)
//   pid 1 + i            one process per captured device timeline, with
//                        tid = 2*stream   the stream's compute lane
//                        tid = 2*stream+1 the stream's copy-engine lane
//
// Kernel events carry roofline args (modeled GFLOP/s, achieved fraction of
// the device peaks, occupancy, dominant bound); counter totals are emitted
// as "C" events at ts 0.  Timestamps are microseconds, as the format
// requires.  With `include_measured = false` the output contains only
// modeled content and is byte-identical across runs and thread counts —
// that is the projection the golden tests pin down.  Load the file at
// ui.perfetto.dev or chrome://tracing.
#pragma once

#include <string>
#include <string_view>

namespace kpm::obs {

struct Report;

/// Schema identifier stamped into every exported trace's "metadata" block.
/// tracediff and `trace_from_json` refuse documents without it: the exporter
/// owns the format, and a version bump is a deliberate, visible act.
inline constexpr std::string_view kTraceSchema = "kpm.trace/1";

/// Exporter identity recorded next to the schema stamp.
inline constexpr std::string_view kTraceExporter = "kpm-obs";

struct ChromeTraceOptions {
  /// Emit the measured (wall-clock) host span track.  Off = deterministic
  /// modeled projection only.
  bool include_measured = true;
};

/// Serialises `report` as a Chrome Trace Event JSON document.
[[nodiscard]] std::string to_chrome_trace(const Report& report, ChromeTraceOptions options = {});

/// Writes `to_chrome_trace(report, options)` to `path`.  Throws kpm::Error
/// on I/O failure.
void write_chrome_trace(const Report& report, const std::string& path,
                        ChromeTraceOptions options = {});

}  // namespace kpm::obs
