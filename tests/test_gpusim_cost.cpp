// Properties of the gpusim timing model: roofline behaviour, occupancy,
// access-pattern efficiencies, launch overhead, cost scaling.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"

namespace {

using namespace gpusim;

ExecConfig big_grid() {
  ExecConfig cfg;
  cfg.grid = Dim3{1024};
  cfg.block = Dim3{256};
  return cfg;
}

TEST(GpusimCost, ComputeTimeLinearInFlops) {
  const auto spec = DeviceSpec::tesla_c2050();
  CostCounters c1, c2;
  c1.flops = 1e9;
  c2.flops = 2e9;
  const auto s1 = model_kernel_time(spec, big_grid(), c1);
  const auto s2 = model_kernel_time(spec, big_grid(), c2);
  EXPECT_NEAR(s2.compute_seconds, 2.0 * s1.compute_seconds, 1e-12);
}

TEST(GpusimCost, FullOccupancyHitsPeakFlops) {
  const auto spec = DeviceSpec::tesla_c2050();
  CostCounters c;
  c.flops = spec.peak_dp_flops();  // exactly one second of peak work
  const auto s = model_kernel_time(spec, big_grid(), c);
  EXPECT_DOUBLE_EQ(s.occupancy, 1.0);
  EXPECT_NEAR(s.compute_seconds, 1.0, 1e-12);
  EXPECT_EQ(std::string(s.bound()), "compute");
}

TEST(GpusimCost, MemoryBoundKernelReportsMemory) {
  const auto spec = DeviceSpec::tesla_c2050();
  CostCounters c;
  c.flops = 1.0;
  c.global_read_bytes[static_cast<int>(AccessPattern::Coalesced)] = 1e9;
  const auto s = model_kernel_time(spec, big_grid(), c);
  EXPECT_EQ(std::string(s.bound()), "memory");
  EXPECT_NEAR(s.memory_seconds, 1e9 / spec.effective_bandwidth(AccessPattern::Coalesced), 1e-9);
}

TEST(GpusimCost, PatternEfficienciesOrdered) {
  // Same byte count must cost: broadcast < coalesced < strided < random.
  const auto spec = DeviceSpec::tesla_c2050();
  double prev = 0.0;
  for (auto p : {AccessPattern::Broadcast, AccessPattern::Coalesced, AccessPattern::Strided,
                 AccessPattern::Random}) {
    CostCounters c;
    c.global_read_bytes[static_cast<int>(p)] = 1e9;
    const auto s = model_kernel_time(spec, big_grid(), c);
    EXPECT_GT(s.memory_seconds, prev) << to_string(p);
    prev = s.memory_seconds;
  }
}

TEST(GpusimCost, SmallGridsLoseThroughput) {
  const auto spec = DeviceSpec::tesla_c2050();
  CostCounters c;
  c.flops = 1e9;
  ExecConfig small;
  small.grid = Dim3{1};
  small.block = Dim3{32};
  const auto s_small = model_kernel_time(spec, small, c);
  const auto s_big = model_kernel_time(spec, big_grid(), c);
  EXPECT_GT(s_small.compute_seconds, s_big.compute_seconds);
  EXPECT_LT(s_small.occupancy, 0.2);
}

TEST(GpusimCost, SharedMemoryLimitsResidentBlocks) {
  const auto spec = DeviceSpec::tesla_c2050();
  CostCounters c;
  c.flops = 1e6;
  ExecConfig cfg = big_grid();
  cfg.shared_bytes = spec.shared_mem_per_sm;  // one block per SM
  const auto s = model_kernel_time(spec, cfg, c);
  EXPECT_EQ(s.resident_blocks_per_sm, 1);
  ExecConfig cfg2 = big_grid();
  cfg2.shared_bytes = spec.shared_mem_per_sm / 4;
  const auto s2 = model_kernel_time(spec, cfg2, c);
  EXPECT_GE(s2.resident_blocks_per_sm, 4);
}

TEST(GpusimCost, WavesReflectGridSize) {
  const auto spec = DeviceSpec::tesla_c2050();
  CostCounters c;
  c.flops = 1.0;
  ExecConfig cfg;
  cfg.block = Dim3{256};  // 6 resident/SM under the 1536-thread cap
  cfg.grid = Dim3{static_cast<std::uint32_t>(spec.sm_count * 6)};
  const auto s = model_kernel_time(spec, cfg, c);
  EXPECT_NEAR(s.waves, 1.0, 1e-12);
}

TEST(GpusimCost, LaunchOverheadIsTheFloor) {
  const auto spec = DeviceSpec::tesla_c2050();
  const CostCounters empty;
  const auto s = model_kernel_time(spec, big_grid(), empty);
  EXPECT_GE(s.seconds, spec.kernel_launch_overhead_s);
}

TEST(GpusimCost, TransferModelHasLatencyFloor) {
  const auto spec = DeviceSpec::tesla_c2050();
  EXPECT_DOUBLE_EQ(model_transfer_time(spec, 0.0), spec.pcie_latency_s);
  EXPECT_NEAR(model_transfer_time(spec, spec.pcie_bandwidth), spec.pcie_latency_s + 1.0, 1e-12);
}

TEST(GpusimCost, CountersScaleUniformly) {
  CostCounters c;
  c.flops = 10;
  c.global_read_bytes[0] = 20;
  c.global_write_bytes[3] = 30;
  c.shared_bytes = 40;
  c.barriers = 2;
  c.scale(3.0);
  EXPECT_DOUBLE_EQ(c.flops, 30.0);
  EXPECT_DOUBLE_EQ(c.global_read_bytes[0], 60.0);
  EXPECT_DOUBLE_EQ(c.global_write_bytes[3], 90.0);
  EXPECT_DOUBLE_EQ(c.shared_bytes, 120.0);
  EXPECT_DOUBLE_EQ(c.barriers, 6.0);
  EXPECT_DOUBLE_EQ(c.total_global_bytes(), 150.0);
}

TEST(GpusimCost, LaunchCostScaleMultipliesModeledWork) {
  // A kernel launched with cost_scale = 4 must report ~4x the time of the
  // same kernel at scale 1 (well above the launch-overhead floor).
  Device dev(DeviceSpec::tesla_c2050());
  auto buf = dev.alloc<double>(256);

  class Burn final : public Kernel {
   public:
    const char* name() const override { return "burn"; }
    void block_phase(int, BlockContext& b) override { b.flop(1e8); }
  } k;

  ExecConfig cfg = big_grid();
  const auto s1 = dev.launch(cfg, k, 1.0);
  const auto s4 = dev.launch(cfg, k, 4.0);
  EXPECT_NEAR(s4.compute_seconds, 4.0 * s1.compute_seconds, 1e-9);
}

TEST(GpusimCost, GenerationGapShowsInDoublePrecision) {
  // The GT200-class part has 1/12 DP rate: the same flop count must take
  // much longer than on Fermi.
  CostCounters c;
  c.flops = 1e10;
  const auto fermi = model_kernel_time(DeviceSpec::tesla_c2050(), big_grid(), c);
  const auto gt200 = model_kernel_time(DeviceSpec::geforce_gtx285(), big_grid(), c);
  EXPECT_GT(gt200.compute_seconds, 5.0 * fermi.compute_seconds);
}

}  // namespace
