// CPU moment engines.
//
// `CpuMomentEngine` is the faithful serial reference of the paper's Fig. 3
// algorithm: per instance, |r0> = |r>, |r1> = H~|r0>, |r_n> = 2 H~ |r_{n-1}>
// - |r_{n-2}>, mu~_n = <r0|r_n>, averaged over all instances.  It is the
// ground truth every other engine is tested against, and its operation
// counts drive the Core i7-930 roofline model that stands in for the
// paper's measured CPU times.
//
// `CpuPairedMomentEngine` implements the standard KPM optimization (Weisse
// et al. §II.D, the paper's Ref. [10]) of extracting two moments per matrix
// -vector product via
//     mu~_{2n}   = 2 <r_n | r_n>     - mu~_0
//     mu~_{2n+1} = 2 <r_{n+1} | r_n> - mu~_1
// halving the SpMV count for the same N — the ablation the
// `ablation_moment_pairs` bench quantifies.
#pragma once

#include <memory>

#include "cpumodel/cpu_spec.hpp"
#include "cpumodel/roofline.hpp"
#include "core/moments.hpp"

namespace kpm::common {
class ThreadPool;
}

namespace kpm::core {

/// Serial reference engine (one moment per SpMV).
class CpuMomentEngine final : public MomentEngine {
 public:
  explicit CpuMomentEngine(cpumodel::CpuSpec spec = cpumodel::CpuSpec::core_i7_930());

  [[nodiscard]] std::string name() const override { return "cpu-reference"; }

  [[nodiscard]] MomentResult compute(const linalg::MatrixOperator& h_tilde,
                                     const MomentParams& params,
                                     std::size_t sample_instances = 0) override;

 private:
  cpumodel::CpuSpec spec_;
};

/// Paired-moment engine (two moments per SpMV).
class CpuPairedMomentEngine final : public MomentEngine {
 public:
  explicit CpuPairedMomentEngine(cpumodel::CpuSpec spec = cpumodel::CpuSpec::core_i7_930());

  [[nodiscard]] std::string name() const override { return "cpu-paired"; }

  [[nodiscard]] MomentResult compute(const linalg::MatrixOperator& h_tilde,
                                     const MomentParams& params,
                                     std::size_t sample_instances = 0) override;

 private:
  cpumodel::CpuSpec spec_;
};

/// Multithreaded CPU engine — the paper's §V "shared memory paradigm"
/// future work, executed for real.  The three-term recursion itself is
/// sequential (the fine-grain parallelization problem the paper
/// describes), so this engine statically partitions the S*R independent
/// instances across a kpm::common::ThreadPool.  Each instance writes its
/// mu~ contributions to a private row which the calling thread then sums
/// in instance order, so the result is BIT-IDENTICAL to the serial
/// reference for any thread count (see docs/performance.md).
/// `wall_seconds` measures the actual multithreaded run; the roofline
/// model additionally scales compute with cores and saturates shared
/// bandwidth, exposing why the 2011 answer was "buy a GPU" rather than
/// "use four cores" for the DRAM-bound sizes.
class CpuParallelMomentEngine final : public MomentEngine {
 public:
  explicit CpuParallelMomentEngine(int threads,
                                   cpumodel::CpuSpec spec = cpumodel::CpuSpec::core_i7_930());
  ~CpuParallelMomentEngine() override;

  [[nodiscard]] std::string name() const override {
    return "cpu-parallel-x" + std::to_string(threads_);
  }

  /// Configured worker count (the pool spawns threads - 1 OS threads; the
  /// caller participates as the remaining lane).
  [[nodiscard]] int threads() const noexcept { return threads_; }

  [[nodiscard]] MomentResult compute(const linalg::MatrixOperator& h_tilde,
                                     const MomentParams& params,
                                     std::size_t sample_instances = 0) override;

 private:
  int threads_;
  cpumodel::CpuSpec spec_;
  std::unique_ptr<common::ThreadPool> pool_;  ///< lazily created, reused across computes
};

/// Shared helper: fills `r0` with the instance's random vector elements
/// xi_{stream, i} (counter-based; identical across engines and platforms).
void fill_random_vector(const MomentParams& params, std::uint64_t stream, std::span<double> r0);

/// Blocked variant: fills the interleaved block `r0_block` (size dim *
/// block) so that member j holds EXACTLY the vector fill_random_vector
/// produces for stream `first_stream + j` — element i of member j at
/// r0_block[i * block + j].  Blocked engines therefore consume the same
/// per-instance random vectors as the serial reference.
void fill_random_vector_block(const MomentParams& params, std::uint64_t first_stream,
                              std::size_t block, std::span<double> r0_block);

/// Resolves the sampling request: returns min(sample == 0 ? total : sample,
/// total) and requires total > 0.
[[nodiscard]] std::size_t resolve_sample_count(std::size_t sample, std::size_t total);

/// Roofline workload of ONE fused recursion step (SpMV + Chebyshev combine
/// + `dots` fused dot products) — the 4D-doubles/step vector-traffic model
/// the engines charge per step.  The fused kernels record exactly this
/// flop/byte model into the obs counters, so measured `fused_bytes` can be
/// cross-checked against `fused_calls * fused_step_workload(...).bytes_streamed`
/// (see tests/test_golden_metrics.cpp).
[[nodiscard]] cpumodel::CpuWorkload fused_step_workload(const linalg::MatrixOperator& op,
                                                        std::size_t dots,
                                                        std::size_t block = 1);

/// Modeled *serial* reference-engine seconds for `instances` instances of
/// `num_moments` moments on `op` — the same roofline model CpuMomentEngine
/// charges.  Deliberately independent of any thread count: the serving
/// layer uses this as the simulated service time so scheduling decisions
/// (and the replay fingerprint) are identical at any worker count.
[[nodiscard]] double modeled_reference_seconds(
    const linalg::MatrixOperator& op, std::size_t num_moments, std::size_t instances,
    const cpumodel::CpuSpec& spec = cpumodel::CpuSpec::core_i7_930());

}  // namespace kpm::core
