#include "core/moments_cpu.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "cpumodel/roofline.hpp"
#include "linalg/fused_kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/parallel.hpp"
#include "obs/trace.hpp"
#include "rng/distributions.hpp"

namespace kpm::core {
namespace {

/// Reusable per-thread vectors of one instance's recursion.
struct RecursionWorkspace {
  std::vector<double> r0, r_prev2, r_prev, r_next;
  explicit RecursionWorkspace(std::size_t d) : r0(d), r_prev2(d), r_prev(d), r_next(d) {}
};

/// Runs instance `inst`'s fused recursion (steps (1), (2), (2.1), (2.2) of
/// the paper's Fig. 3), adding its mu~ contributions into `mu_acc`.  The
/// per-instance RNG stream makes the result independent of which thread
/// executes it.
void accumulate_instance(const linalg::MatrixOperator& h_tilde, const MomentParams& params,
                         std::size_t inst, RecursionWorkspace& ws, std::span<double> mu_acc) {
  const std::size_t n = mu_acc.size();
  const std::size_t d = ws.r0.size();
  obs::add(obs::Counter::InstancesExecuted, 1.0);
  fill_random_vector(params, inst, ws.r0);

  mu_acc[0] += linalg::dot(ws.r0, ws.r0);
  obs::meter_dot(d);
  h_tilde.multiply(ws.r0, ws.r_prev);
  obs::meter_spmv(h_tilde.spmv_flops(), h_tilde.spmv_matrix_bytes(), d);
  if (n > 1) {
    mu_acc[1] += linalg::dot(ws.r0, ws.r_prev);
    obs::meter_dot(d);
  }
  linalg::copy(ws.r0, ws.r_prev2);
  obs::meter_stream_bytes(2.0 * static_cast<double>(d) * sizeof(double));

  for (std::size_t k = 2; k < n; ++k) {
    mu_acc[k] += linalg::spmv_combine_dot(h_tilde, ws.r_prev, ws.r_prev2, ws.r0, ws.r_next);
    std::swap(ws.r_prev2, ws.r_prev);
    std::swap(ws.r_prev, ws.r_next);
  }
}

/// Functional core shared by the serial engine and the parallel engine's
/// single-lane path: instances [0, executed) accumulated in order.
/// `instance_ticks` is the precomputed modeled cost of one instance in
/// histogram ticks (ns), recorded per instance into `instance_model_ns`.
void run_reference_recursion(const linalg::MatrixOperator& h_tilde, const MomentParams& params,
                             std::size_t executed, std::uint64_t instance_ticks,
                             std::vector<double>& mu_sum) {
  RecursionWorkspace ws(h_tilde.dim());
  for (std::size_t inst = 0; inst < executed; ++inst) {
    accumulate_instance(h_tilde, params, inst, ws, mu_sum);
    obs::record(obs::Histo::InstanceModelNs, instance_ticks);
  }
}

/// Total reference-engine workload for `total` instances of N moments.
cpumodel::CpuWorkload reference_workload(const linalg::MatrixOperator& op, std::size_t n,
                                         std::size_t total) {
  const auto dd = static_cast<double>(op.dim());
  const cpumodel::CpuWorkload per_step = fused_step_workload(op, /*dots=*/1);
  cpumodel::CpuWorkload instance_work;
  instance_work.flops = 10.0 * dd + 2.0 * dd;
  instance_work.bytes_streamed = 2.0 * dd * sizeof(double);
  instance_work.working_set_bytes = per_step.working_set_bytes;
  for (std::size_t k = 1; k < n; ++k) instance_work += per_step;
  instance_work.scale(static_cast<double>(total));
  return instance_work;
}

// ---------------------------------------------------------------------------
// Blocked (SpMMV) paths.  A group of B instances advances through one
// recursion in the interleaved block layout; each member's arithmetic is
// bit-identical to the per-vector path on the same RNG stream, so summing
// member rows in instance order reproduces the serial reference exactly.

/// Reusable vectors of one group's blocked recursion (up to `block`
/// interleaved members; ragged final groups use length-d*b prefixes).
struct BlockWorkspace {
  std::size_t block;
  std::vector<double> r0, r_prev2, r_prev, r_next, dots;
  BlockWorkspace(std::size_t d, std::size_t b)
      : block(b), r0(d * b), r_prev2(d * b), r_prev(d * b), r_next(d * b), dots(b) {}
};

/// Runs instances [first, first + b) as one blocked recursion (b <=
/// ws.block), adding member j's mu~ contributions into mu_rows[j*n, j*n+n).
void accumulate_group(const linalg::MatrixOperator& h_tilde, const MomentParams& params,
                      std::size_t first, std::size_t b, BlockWorkspace& ws, std::size_t n,
                      std::span<double> mu_rows) {
  const std::size_t d = h_tilde.dim();
  const std::size_t len = d * b;
  const auto sub = [len](std::vector<double>& v) { return std::span<double>(v.data(), len); };
  const std::span<double> dots(ws.dots.data(), b);
  obs::add(obs::Counter::InstancesExecuted, static_cast<double>(b));
  fill_random_vector_block(params, first, b, sub(ws.r0));

  linalg::block_dot(sub(ws.r0), sub(ws.r0), b, dots);
  for (std::size_t j = 0; j < b; ++j) {
    mu_rows[j * n] += dots[j];
    obs::meter_dot(d);
  }
  linalg::spmmv_multiply(h_tilde, b, sub(ws.r0), sub(ws.r_prev));
  if (n > 1) {
    linalg::block_dot(sub(ws.r0), sub(ws.r_prev), b, dots);
    for (std::size_t j = 0; j < b; ++j) {
      mu_rows[j * n + 1] += dots[j];
      obs::meter_dot(d);
    }
  }
  std::copy(ws.r0.begin(), ws.r0.begin() + static_cast<std::ptrdiff_t>(len),
            ws.r_prev2.begin());
  obs::meter_stream_bytes(2.0 * static_cast<double>(len) * sizeof(double));

  for (std::size_t k = 2; k < n; ++k) {
    linalg::spmmv_combine_dot(h_tilde, b, sub(ws.r_prev), sub(ws.r_prev2), sub(ws.r0),
                              sub(ws.r_next), dots);
    for (std::size_t j = 0; j < b; ++j) mu_rows[j * n + k] += dots[j];
    std::swap(ws.r_prev2, ws.r_prev);
    std::swap(ws.r_prev, ws.r_next);
  }
}

/// Serial blocked runner: groups of `block` instances in order, member rows
/// summed in instance order right after each group.
void run_blocked_recursion(const linalg::MatrixOperator& h_tilde, const MomentParams& params,
                           std::size_t executed, std::size_t block,
                           std::uint64_t instance_ticks, std::vector<double>& mu_sum) {
  const std::size_t n = mu_sum.size();
  BlockWorkspace ws(h_tilde.dim(), block);
  std::vector<double> rows(block * n);
  const std::size_t groups = (executed + block - 1) / block;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t first = g * block;
    const std::size_t b = std::min(block, executed - first);
    std::fill(rows.begin(), rows.end(), 0.0);
    accumulate_group(h_tilde, params, first, b, ws, n, rows);
    for (std::size_t j = 0; j < b; ++j) {
      const double* row = rows.data() + j * n;
      for (std::size_t k = 0; k < n; ++k) mu_sum[k] += row[k];
      obs::record(obs::Histo::InstanceModelNs, instance_ticks);
    }
  }
}

/// Reference workload of ONE blocked group of `b` members: same uniform
/// (N - 1)-step charging as reference_workload, with the matrix traffic of
/// every step amortized across the block.
cpumodel::CpuWorkload blocked_group_workload(const linalg::MatrixOperator& op, std::size_t n,
                                             std::size_t b) {
  const auto dd = static_cast<double>(op.dim());
  const auto bb = static_cast<double>(b);
  const cpumodel::CpuWorkload per_step = fused_step_workload(op, /*dots=*/1, b);
  cpumodel::CpuWorkload w;
  w.flops = (10.0 * dd + 2.0 * dd) * bb;
  w.bytes_streamed = 2.0 * dd * sizeof(double) * bb;
  w.working_set_bytes = per_step.working_set_bytes;
  for (std::size_t k = 1; k < n; ++k) w += per_step;
  return w;
}

/// Total blocked reference workload: full groups of `block` plus one ragged
/// group for the remainder.
cpumodel::CpuWorkload blocked_reference_workload(const linalg::MatrixOperator& op,
                                                 std::size_t n, std::size_t total,
                                                 std::size_t block) {
  const std::size_t full = total / block;
  const std::size_t rem = total % block;
  cpumodel::CpuWorkload w = blocked_group_workload(op, n, block);
  const double ws_bytes = w.working_set_bytes;
  w.scale(static_cast<double>(full));
  w.working_set_bytes = full > 0 ? ws_bytes : 0.0;
  if (rem > 0) w += blocked_group_workload(op, n, rem);
  return w;
}

/// Per-instance modeled ticks on the blocked serial model: one full group's
/// modeled time split evenly across its members.
std::uint64_t blocked_instance_ticks(const cpumodel::CpuSpec& spec,
                                     const linalg::MatrixOperator& op, std::size_t n,
                                     std::size_t block) {
  const double group_seconds =
      cpumodel::model_cpu_time(spec, blocked_group_workload(op, n, block)).seconds;
  return obs::seconds_to_ns_ticks(group_seconds / static_cast<double>(block));
}

}  // namespace

// Definition of the per-step workload model declared in moments_cpu.hpp.
// The SpMV streams the matrix plus the x read and the r_next write; the
// Chebyshev combine rides the same pass and only adds the r_prev2 read (its
// hx read/write disappears into a register), and each fused dot adds one
// extra operand stream (r_next never leaves the register).  Flops are
// unchanged by fusion.  Reused by all three engines' cost accounting, and
// mirrored by the fused kernels' obs meters.
cpumodel::CpuWorkload fused_step_workload(const linalg::MatrixOperator& op, std::size_t dots,
                                          std::size_t block) {
  const auto d = static_cast<double>(op.dim());
  const auto b = static_cast<double>(block);
  cpumodel::CpuWorkload w;
  // SpMV: 2 flops per stored entry PER MEMBER; the matrix streams once for
  // the whole block (the 1/B amortization), x read + y write per member.
  w.flops = b * static_cast<double>(op.spmv_flops());
  w.bytes_streamed = static_cast<double>(op.spmv_matrix_bytes()) + 2.0 * b * d * sizeof(double);
  // Fused combine next = 2 hx - prev2: 2 flops/element, one extra read.
  w.flops += 2.0 * b * d;
  w.bytes_streamed += b * d * sizeof(double);
  // Fused dot products: 2 flops/element, one extra operand stream each.
  w.flops += 2.0 * b * d * static_cast<double>(dots);
  w.bytes_streamed += b * d * sizeof(double) * static_cast<double>(dots);
  // Working set per pass: the matrix plus the four live block vectors.
  w.working_set_bytes =
      static_cast<double>(op.spmv_matrix_bytes()) + 4.0 * b * d * sizeof(double);
  return w;
}

double modeled_reference_seconds(const linalg::MatrixOperator& op, std::size_t num_moments,
                                 std::size_t instances, const cpumodel::CpuSpec& spec) {
  return cpumodel::model_cpu_time(spec, reference_workload(op, num_moments, instances)).seconds;
}

void fill_random_vector(const MomentParams& params, std::uint64_t stream, std::span<double> r0) {
  for (std::size_t i = 0; i < r0.size(); ++i)
    r0[i] = rng::draw_random_element(params.vector_kind, params.seed, stream, i);
  obs::add(obs::Counter::RngElements, static_cast<double>(r0.size()));
}

void fill_random_vector_block(const MomentParams& params, std::uint64_t first_stream,
                              std::size_t block, std::span<double> r0_block) {
  KPM_REQUIRE(block >= 1 && r0_block.size() % block == 0,
              "fill_random_vector_block: bad block shape");
  const std::size_t d = r0_block.size() / block;
  for (std::size_t j = 0; j < block; ++j)
    for (std::size_t i = 0; i < d; ++i)
      r0_block[i * block + j] =
          rng::draw_random_element(params.vector_kind, params.seed, first_stream + j, i);
  obs::add(obs::Counter::RngElements, static_cast<double>(r0_block.size()));
}

std::size_t resolve_sample_count(std::size_t sample, std::size_t total) {
  KPM_REQUIRE(total > 0, "moment computation needs at least one instance");
  if (sample == 0 || sample > total) return total;
  return sample;
}

CpuMomentEngine::CpuMomentEngine(cpumodel::CpuSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

MomentResult CpuMomentEngine::compute(const linalg::MatrixOperator& h_tilde,
                                      const MomentParams& params, std::size_t sample_instances) {
  params.validate();
  const std::size_t d = h_tilde.dim();
  const std::size_t n = params.num_moments;
  const std::size_t total = params.instances();
  const std::size_t executed = resolve_sample_count(sample_instances, total);

  const std::size_t block = params.block_r;

  obs::ScopedSpan span("moments." + name());
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(n));
  Stopwatch wall;
  std::vector<double> mu_sum(n, 0.0);
  if (block <= 1) {
    // Per-instance modeled cost on the *serial* model for all engine
    // variants, so the histogram is bit-identical between the serial and
    // parallel paths.
    const std::uint64_t instance_ticks = obs::seconds_to_ns_ticks(
        cpumodel::model_cpu_time(spec_, reference_workload(h_tilde, n, 1)).seconds);
    run_reference_recursion(h_tilde, params, executed, instance_ticks, mu_sum);
  } else {
    const std::uint64_t instance_ticks = blocked_instance_ticks(spec_, h_tilde, n, block);
    run_blocked_recursion(h_tilde, params, executed, block, instance_ticks, mu_sum);
  }

  MomentResult result;
  result.engine = name();
  result.instances_executed = executed;
  result.instances_total = total;
  result.wall_seconds = wall.seconds();

  // (3) Average: mu_n = sum / (D * instances).  Plain division (not a
  // reciprocal multiply) so the GPU averaging kernel matches bit-for-bit.
  result.mu.resize(n);
  const double denom = static_cast<double>(d) * static_cast<double>(executed);
  for (std::size_t k = 0; k < n; ++k) result.mu[k] = mu_sum[k] / denom;

  // Cost model: see reference_workload() — fill + mu~_0 dot + (N - 1)
  // steps of fused SpMV + combine + dot per instance (charging the
  // combine-free k = 1 step uniformly overstates work by 2D flops out of
  // O(N * nnz)).  Blocked runs amortize the matrix stream across the block.
  const cpumodel::CpuStats stats = cpumodel::model_cpu_time(
      spec_, block <= 1 ? reference_workload(h_tilde, n, total)
                        : blocked_reference_workload(h_tilde, n, total, block));
  result.model_seconds = stats.seconds;
  result.compute_seconds = stats.compute_seconds;
  return result;
}

CpuParallelMomentEngine::CpuParallelMomentEngine(int threads, cpumodel::CpuSpec spec)
    : threads_(threads), spec_(std::move(spec)) {
  spec_.validate();
  KPM_REQUIRE(threads >= 1, "CpuParallelMomentEngine: need at least one thread");
}

CpuParallelMomentEngine::~CpuParallelMomentEngine() = default;

MomentResult CpuParallelMomentEngine::compute(const linalg::MatrixOperator& h_tilde,
                                              const MomentParams& params,
                                              std::size_t sample_instances) {
  params.validate();
  const std::size_t d = h_tilde.dim();
  const std::size_t n = params.num_moments;
  const std::size_t total = params.instances();
  const std::size_t executed = resolve_sample_count(sample_instances, total);

  // Stable span name (no thread-count suffix, unlike name()): span names
  // participate in deterministic report fingerprints, which must be
  // identical at any thread count.
  const std::size_t block = params.block_r;
  // Parallelism is distributed over GROUPS of `block` instances (groups are
  // formed before distribution, so the grouping — and hence every computed
  // value — is independent of the thread count).
  const std::size_t groups = block <= 1 ? executed : (executed + block - 1) / block;

  obs::ScopedSpan span("moments.cpu-parallel");
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(n));
  Stopwatch wall;
  std::vector<double> mu_sum(n, 0.0);
  const bool serial_path = threads_ == 1 || groups == 1;
  // Same serial per-instance modeled cost as CpuMomentEngine (never the
  // parallel model), so histograms match the reference engine bit-for-bit
  // at every thread count.
  const std::uint64_t instance_ticks =
      block <= 1 ? obs::seconds_to_ns_ticks(
                       cpumodel::model_cpu_time(spec_, reference_workload(h_tilde, n, 1)).seconds)
                 : blocked_instance_ticks(spec_, h_tilde, n, block);

  if (serial_path) {
    // No parallelism to exploit: skip the pool and contribution buffer.
    if (block <= 1)
      run_reference_recursion(h_tilde, params, executed, instance_ticks, mu_sum);
    else
      run_blocked_recursion(h_tilde, params, executed, block, instance_ticks, mu_sum);
  } else {
    if (!pool_ || pool_->size() != static_cast<std::size_t>(threads_))
      pool_ = std::make_unique<common::ThreadPool>(static_cast<std::size_t>(threads_));

    // Each instance writes its own mu~ row; the rows are summed below in
    // instance order, reproducing the serial engine's left-to-right
    // accumulation exactly — results are bit-identical for any thread
    // count (the per-instance RNG streams already make the recursions
    // themselves order-independent).
    // obs::sharded_parallel_for gives every lane a private counter shard and
    // reduces them in lane order afterwards, so counter totals (exact
    // integers) are bit-identical for any thread count — the same property
    // the instance-ordered moment summation below gives the mu values.
    std::vector<double> contributions(executed * n, 0.0);
    if (block <= 1) {
      obs::sharded_parallel_for(
          *pool_, executed, [&](std::size_t /*lane*/, std::size_t begin, std::size_t end) {
            RecursionWorkspace ws(d);
            const std::span<double> rows(contributions);
            for (std::size_t inst = begin; inst < end; ++inst) {
              accumulate_instance(h_tilde, params, inst, ws, rows.subspan(inst * n, n));
              obs::record(obs::Histo::InstanceModelNs, instance_ticks);
            }
          });
    } else {
      obs::sharded_parallel_for(
          *pool_, groups, [&](std::size_t /*lane*/, std::size_t begin, std::size_t end) {
            BlockWorkspace ws(d, block);
            const std::span<double> rows(contributions);
            for (std::size_t g = begin; g < end; ++g) {
              const std::size_t first = g * block;
              const std::size_t b = std::min(block, executed - first);
              // Instance-major rows: a group's members occupy consecutive
              // rows, so its output slice is contiguous.
              accumulate_group(h_tilde, params, first, b, ws, n,
                               rows.subspan(first * n, b * n));
              for (std::size_t j = 0; j < b; ++j)
                obs::record(obs::Histo::InstanceModelNs, instance_ticks);
            }
          });
    }
    for (std::size_t inst = 0; inst < executed; ++inst) {
      const double* row = contributions.data() + inst * n;
      for (std::size_t k = 0; k < n; ++k) mu_sum[k] += row[k];
    }
  }

  MomentResult result;
  result.engine = name();
  result.instances_executed = executed;
  result.instances_total = total;
  // Report what actually executed: the serial fallback ran on one thread no
  // matter how many were configured.
  result.threads_used = serial_path ? 1 : threads_;
  result.wall_seconds = wall.seconds();
  result.mu.resize(n);
  const double denom = static_cast<double>(d) * static_cast<double>(executed);
  for (std::size_t k = 0; k < n; ++k) result.mu[k] = mu_sum[k] / denom;

  const cpumodel::CpuStats stats = cpumodel::model_cpu_time_parallel(
      spec_, block <= 1 ? reference_workload(h_tilde, n, total)
                        : blocked_reference_workload(h_tilde, n, total, block),
      threads_);
  result.model_seconds = stats.seconds;
  result.compute_seconds = stats.compute_seconds;
  return result;
}

CpuPairedMomentEngine::CpuPairedMomentEngine(cpumodel::CpuSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

MomentResult CpuPairedMomentEngine::compute(const linalg::MatrixOperator& h_tilde,
                                            const MomentParams& params,
                                            std::size_t sample_instances) {
  params.validate();
  const std::size_t d = h_tilde.dim();
  const std::size_t n = params.num_moments;
  const std::size_t total = params.instances();
  const std::size_t executed = resolve_sample_count(sample_instances, total);

  const std::size_t block = params.block_r;

  obs::ScopedSpan span("moments." + name());
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(n));
  Stopwatch wall;
  std::vector<double> mu_sum(n, 0.0);

  // Moments n = 0..N-1 from Chebyshev vectors up to index ceil(N/2):
  // the k-th iteration (k >= 1) yields mu_{2k} and mu_{2k+1}.
  const std::size_t half = (n + 1) / 2;

  // Cost model per group of b: fill + mu0/mu1 dots + (half - 1) fused steps
  // of SpMV + combine + 2 dots, the matrix streaming once per step.
  const auto dd = static_cast<double>(d);
  const auto paired_group_work = [&](std::size_t b) {
    const auto bb = static_cast<double>(b);
    cpumodel::CpuWorkload w;
    w.flops = (10.0 * dd + 4.0 * dd) * bb;
    w.bytes_streamed = 3.0 * dd * sizeof(double) * bb;
    const cpumodel::CpuWorkload per_step = fused_step_workload(h_tilde, /*dots=*/2, b);
    w.working_set_bytes = per_step.working_set_bytes;
    for (std::size_t k = 1; k < half; ++k) w += per_step;
    return w;
  };
  const std::uint64_t instance_ticks = obs::seconds_to_ns_ticks(
      cpumodel::model_cpu_time(spec_, paired_group_work(block)).seconds /
      static_cast<double>(block));

  if (block <= 1) {
    RecursionWorkspace ws(d);
    for (std::size_t inst = 0; inst < executed; ++inst) {
      obs::record(obs::Histo::InstanceModelNs, instance_ticks);
      obs::add(obs::Counter::InstancesExecuted, 1.0);
      fill_random_vector(params, inst, ws.r0);

      const double mu0 = linalg::dot(ws.r0, ws.r0);
      obs::meter_dot(d);
      mu_sum[0] += mu0;
      h_tilde.multiply(ws.r0, ws.r_prev);  // r_1
      obs::meter_spmv(h_tilde.spmv_flops(), h_tilde.spmv_matrix_bytes(), d);
      const double mu1 = linalg::dot(ws.r0, ws.r_prev);
      obs::meter_dot(d);
      if (n > 1) mu_sum[1] += mu1;
      linalg::copy(ws.r0, ws.r_prev2);  // r_0
      obs::meter_stream_bytes(2.0 * static_cast<double>(d) * sizeof(double));

      for (std::size_t k = 1; k < half; ++k) {
        // Here r_prev = r_k, r_prev2 = r_{k-1}.  One fused pass advances
        // r_{k+1} = 2 H~ r_k - r_{k-1} and yields both dot products:
        //   mu_{2k}   = 2 <r_k | r_k>     - mu_0
        //   mu_{2k+1} = 2 <r_{k+1} | r_k> - mu_1.
        const auto dots = linalg::spmv_combine_dot2(h_tilde, ws.r_prev, ws.r_prev2, ws.r_next);
        const std::size_t even = 2 * k;
        if (even < n) mu_sum[even] += 2.0 * dots.prev_prev - mu0;
        const std::size_t odd = 2 * k + 1;
        if (odd < n) mu_sum[odd] += 2.0 * dots.next_prev - mu1;

        std::swap(ws.r_prev2, ws.r_prev);
        std::swap(ws.r_prev, ws.r_next);
      }
    }
  } else {
    // Blocked paired recursion: one matrix stream advances all members of a
    // group through the half-length recursion.  Member rows are summed in
    // instance order, so results are bit-identical to the per-vector loop.
    BlockWorkspace ws(d, block);
    std::vector<double> rows(block * n);
    std::vector<double> mu0s(block), mu1s(block);
    std::vector<linalg::PairedDots> dots2(block);
    const std::size_t groups = (executed + block - 1) / block;
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t first = g * block;
      const std::size_t b = std::min(block, executed - first);
      const std::size_t len = d * b;
      const auto sub = [len](std::vector<double>& v) {
        return std::span<double>(v.data(), len);
      };
      const std::span<double> dots(ws.dots.data(), b);
      std::fill(rows.begin(), rows.end(), 0.0);
      obs::add(obs::Counter::InstancesExecuted, static_cast<double>(b));
      fill_random_vector_block(params, first, b, sub(ws.r0));

      linalg::block_dot(sub(ws.r0), sub(ws.r0), b, dots);
      for (std::size_t j = 0; j < b; ++j) {
        mu0s[j] = dots[j];
        rows[j * n] += dots[j];
        obs::meter_dot(d);
      }
      linalg::spmmv_multiply(h_tilde, b, sub(ws.r0), sub(ws.r_prev));  // r_1
      linalg::block_dot(sub(ws.r0), sub(ws.r_prev), b, dots);
      for (std::size_t j = 0; j < b; ++j) {
        mu1s[j] = dots[j];
        if (n > 1) rows[j * n + 1] += dots[j];
        obs::meter_dot(d);
      }
      std::copy(ws.r0.begin(), ws.r0.begin() + static_cast<std::ptrdiff_t>(len),
                ws.r_prev2.begin());  // r_0
      obs::meter_stream_bytes(2.0 * static_cast<double>(len) * sizeof(double));

      for (std::size_t k = 1; k < half; ++k) {
        linalg::spmmv_combine_dot2(h_tilde, b, sub(ws.r_prev), sub(ws.r_prev2),
                                   sub(ws.r_next), std::span<linalg::PairedDots>(
                                                       dots2.data(), b));
        const std::size_t even = 2 * k;
        const std::size_t odd = 2 * k + 1;
        for (std::size_t j = 0; j < b; ++j) {
          if (even < n) rows[j * n + even] += 2.0 * dots2[j].prev_prev - mu0s[j];
          if (odd < n) rows[j * n + odd] += 2.0 * dots2[j].next_prev - mu1s[j];
        }
        std::swap(ws.r_prev2, ws.r_prev);
        std::swap(ws.r_prev, ws.r_next);
      }

      for (std::size_t j = 0; j < b; ++j) {
        const double* row = rows.data() + j * n;
        for (std::size_t k = 0; k < n; ++k) mu_sum[k] += row[k];
        obs::record(obs::Histo::InstanceModelNs, instance_ticks);
      }
    }
  }

  MomentResult result;
  result.engine = name();
  result.instances_executed = executed;
  result.instances_total = total;
  result.wall_seconds = wall.seconds();

  result.mu.resize(n);
  const double denom = static_cast<double>(d) * static_cast<double>(executed);
  for (std::size_t k = 0; k < n; ++k) result.mu[k] = mu_sum[k] / denom;

  cpumodel::CpuWorkload total_work;
  if (block <= 1) {
    total_work = paired_group_work(1);
    total_work.scale(static_cast<double>(total));
  } else {
    const std::size_t full = total / block;
    const std::size_t rem = total % block;
    total_work = paired_group_work(block);
    const double ws_bytes = total_work.working_set_bytes;
    total_work.scale(static_cast<double>(full));
    total_work.working_set_bytes = full > 0 ? ws_bytes : 0.0;
    if (rem > 0) total_work += paired_group_work(rem);
  }
  const cpumodel::CpuStats stats = cpumodel::model_cpu_time(spec_, total_work);
  result.model_seconds = stats.seconds;
  result.compute_seconds = stats.compute_seconds;
  return result;
}

}  // namespace kpm::core
