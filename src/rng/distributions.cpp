#include "rng/distributions.hpp"

#include <cstring>
#include <string_view>

#include "common/error.hpp"
#include "rng/philox.hpp"

namespace kpm::rng {

double draw_random_element(RandomVectorKind kind, std::uint64_t seed, std::uint64_t stream,
                           std::uint64_t index) noexcept {
  const std::uint64_t word = philox_u64(seed, stream, index);
  switch (kind) {
    case RandomVectorKind::Rademacher:
      return u64_to_rademacher(word);
    case RandomVectorKind::Gaussian:
      return u64_pair_to_gaussian(word, philox_u64_hi(seed, stream, index));
    case RandomVectorKind::UniformSym:
      // U(-1,1) has variance 1/3; scale by sqrt(3) for unit variance.
      return 1.7320508075688772 * u64_to_uniform(word, -1.0, 1.0);
  }
  return 0.0;  // unreachable
}

const char* to_string(RandomVectorKind kind) noexcept {
  switch (kind) {
    case RandomVectorKind::Rademacher:
      return "rademacher";
    case RandomVectorKind::Gaussian:
      return "gaussian";
    case RandomVectorKind::UniformSym:
      return "uniform";
  }
  return "?";
}

RandomVectorKind random_vector_kind_from_string(const char* name) {
  const std::string_view s(name);
  if (s == "rademacher") return RandomVectorKind::Rademacher;
  if (s == "gaussian") return RandomVectorKind::Gaussian;
  if (s == "uniform") return RandomVectorKind::UniformSym;
  KPM_FAIL("unknown random vector kind: " + std::string(s));
}

}  // namespace kpm::rng
