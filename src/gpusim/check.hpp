// Hazard-analysis hooks of the stream-computing simulator.
//
// The simulator executes kernels deterministically on the host, which makes
// results reproducible but also *hides* the hazard classes a real CUDA run
// exposes only probabilistically: shared-memory races between threads of a
// block, divergent shared/local allocation sequences, cross-block global
// overlap, and stream-ordering bugs.  `cuda-memcheck --tool racecheck` and
// friends exist precisely because these kernels only stay correct at scale
// with tooling discipline.
//
// This header defines the narrow observation surface through which an
// opt-in checker (see src/check/) watches a launch: an `AccessObserver`
// receives launch/block/phase/thread lifecycle callbacks plus every access
// that flows through the instrumented APIs (GlobalView, the shared arena,
// thread locals, transfers, streams).  Observation is strictly passive —
// installing an observer never changes functional results, metered
// counters, or the timeline.
//
// Wiring: a `CheckConfig` can be installed per Device (Device::set_check)
// or process-wide (set_default_check), which newly constructed devices
// adopt — the latter is how `kpmcli check` reaches the devices that engines
// construct internally.  During a launch the active observer is published
// in a thread-local slot so views and kernel contexts reach it without
// signature changes; launches are single-threaded per device, so the slot
// is exact even when several devices run on different host threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gpusim {

struct Dim3;
struct ExecConfig;

/// Thread attribution for accesses made outside a per-thread driver
/// (overridden block_phase bodies, block-cooperative helpers like
/// block_reduce_sum).  Block-scope accesses are exempt from racecheck: they
/// model whole-block cooperative operations with internal barriers.
inline constexpr std::ptrdiff_t kBlockScope = -1;

/// Passive observation interface for one or more simulated devices.  Every
/// callback has an empty default so observers override only what they need.
/// `device` tokens identify the Device instance (stream ids are per-device).
class AccessObserver {
 public:
  virtual ~AccessObserver();

  // --- Launch lifecycle (callbacks arrive in execution order:
  //     launch{ block{ phase{ thread... }* }* }). ---
  virtual void on_launch_begin(const void* device, const char* kernel, const ExecConfig& cfg,
                               std::size_t stream) {
    (void)device, (void)kernel, (void)cfg, (void)stream;
  }
  virtual void on_launch_end() {}
  virtual void on_block_begin(std::size_t bid, std::size_t threads) { (void)bid, (void)threads; }
  virtual void on_phase_begin(int phase) { (void)phase; }
  /// Announces the thread whose code runs next (kBlockScope when leaving
  /// per-thread context).
  virtual void on_thread_begin(std::ptrdiff_t tid) { (void)tid; }
  /// Optional access-site annotation (see annotate_site below): identifies
  /// the *static* program point of the next instrumented access, so
  /// analyzers can key samples by code site instead of dynamic ordinal.
  virtual void on_site(std::uint32_t site) { (void)site; }

  // --- Global memory, through GlobalView.  `base` is the buffer's storage
  //     address (its identity); offsets/bytes are in bytes. ---
  virtual void on_global_read(const void* base, std::size_t offset, std::size_t bytes) {
    (void)base, (void)offset, (void)bytes;
  }
  virtual void on_global_write(const void* base, std::size_t offset, std::size_t bytes) {
    (void)base, (void)offset, (void)bytes;
  }

  // --- Shared arena and thread locals. ---
  virtual void on_shared_alloc(std::size_t offset, std::size_t bytes) {
    (void)offset, (void)bytes;
  }
  virtual void on_shared_read(std::size_t offset, std::size_t bytes) { (void)offset, (void)bytes; }
  virtual void on_shared_write(std::size_t offset, std::size_t bytes) {
    (void)offset, (void)bytes;
  }
  virtual void on_local_alloc(std::size_t slot, std::size_t bytes) { (void)slot, (void)bytes; }

  // --- Device-level operations (host API surface). ---
  virtual void on_alloc(const void* device, const void* base, std::size_t bytes,
                        const std::string& label) {
    (void)device, (void)base, (void)bytes, (void)label;
  }
  virtual void on_memset(const void* device, const void* base, std::size_t bytes,
                         std::size_t stream) {
    (void)device, (void)base, (void)bytes, (void)stream;
  }
  virtual void on_h2d(const void* device, const void* base, std::size_t bytes,
                      std::size_t stream) {
    (void)device, (void)base, (void)bytes, (void)stream;
  }
  virtual void on_d2h(const void* device, const void* base, std::size_t bytes,
                      std::size_t stream) {
    (void)device, (void)base, (void)bytes, (void)stream;
  }

  // --- Stream ordering (the cudaEvent idiom). ---
  virtual void on_stream_created(const void* device, std::size_t stream) {
    (void)device, (void)stream;
  }
  virtual void on_record_event(const void* device, std::size_t stream, double seconds) {
    (void)device, (void)stream, (void)seconds;
  }
  virtual void on_wait_event(const void* device, std::size_t stream, double seconds) {
    (void)device, (void)stream, (void)seconds;
  }
  virtual void on_synchronize(const void* device) { (void)device; }
};

/// Opt-in hazard analysis configuration carried by a Device.  Enabled when
/// an observer is attached; the observer must outlive every device (and
/// launch) it watches.
struct CheckConfig {
  AccessObserver* observer = nullptr;

  [[nodiscard]] bool enabled() const noexcept { return observer != nullptr; }
};

/// Installs the process-wide default CheckConfig adopted by Devices at
/// construction.  Not thread-safe against concurrently constructing
/// devices: install before the workload runs (scoped helpers in
/// src/check/ do exactly that).
void set_default_check(CheckConfig cfg) noexcept;

/// The process-wide default CheckConfig ({} when none installed).
[[nodiscard]] CheckConfig default_check() noexcept;

namespace detail {
/// The observer of the launch currently executing on this thread (nullptr
/// outside launches or when checking is off).
[[nodiscard]] AccessObserver*& launch_observer_slot() noexcept;
}  // namespace detail

/// Observer of the launch executing on the calling thread, if any.
[[nodiscard]] inline AccessObserver* launch_observer() noexcept {
  return detail::launch_observer_slot();
}

/// Tags the next instrumented access with a stable site id.  Kernels whose
/// access sequence is conditional (so dynamic ordinals shift between
/// geometries) call this immediately before the access; a no-op when no
/// observer is installed, so annotated kernels stay bit-identical.
inline void annotate_site(std::uint32_t site) noexcept {
  if (AccessObserver* obs = launch_observer()) obs->on_site(site);
}

/// RAII: publishes `observer` as the calling thread's launch observer for
/// the duration of a Device::launch.
class ScopedLaunchObserver {
 public:
  explicit ScopedLaunchObserver(AccessObserver* observer) noexcept
      : prev_(detail::launch_observer_slot()) {
    detail::launch_observer_slot() = observer;
  }
  ~ScopedLaunchObserver() { detail::launch_observer_slot() = prev_; }
  ScopedLaunchObserver(const ScopedLaunchObserver&) = delete;
  ScopedLaunchObserver& operator=(const ScopedLaunchObserver&) = delete;

 private:
  AccessObserver* prev_;
};

}  // namespace gpusim
