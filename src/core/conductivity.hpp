// Kubo-Greenwood DC conductivity via two-dimensional KPM moments.
//
// The zero-frequency, zero-temperature Kubo-Greenwood conductivity at
// Fermi energy E is
//
//   sigma(E)  ~  Tr[ J delta(E - H) J delta(E - H) ]
//
// KPM evaluates it from the 2D Chebyshev moment matrix (Weisse et al.
// §V.B; the engine used by modern codes such as KITE):
//
//   mu_nm = (1/D) Tr[ T_n(H~) J T_m(H~) J ]
//         = -(1/D) Tr[ T_n(H~) A T_m(H~) A ],   J = i A (A real antisym.)
//
//   sigma(x) = (1 / (pi^2 (1 - x^2))) *
//              sum_nm h_n h_m mu_nm T_n(x) T_m(x),  h_n = (2 - d_n0) g_n
//
// which is non-negative by construction.  Values are reported in natural
// units of (e^2 / hbar) * (t a / hbar)^2 per site on the RESCALED energy
// axis; the physical normalization is an overall constant documented in
// DESIGN.md.  The trace is estimated with the same stochastic machinery as
// the DoS.
#pragma once

#include <cstddef>
#include <vector>

#include "core/damping.hpp"
#include "core/params.hpp"
#include "linalg/operator.hpp"
#include "linalg/spectral_transform.hpp"

namespace kpm::core {

/// The 2D moment matrix mu_nm (row-major n*N + m) plus metadata.
struct ConductivityMoments {
  std::size_t num_moments = 0;           ///< N (same order in both indices)
  std::vector<double> mu;                ///< mu_nm, size N*N
  std::size_t instances_executed = 0;

  [[nodiscard]] double at(std::size_t n, std::size_t m) const {
    return mu[n * num_moments + m];
  }
};

/// Computes mu_nm = (1/D) Tr[T_n(H~) J T_m(H~) J] stochastically with
/// `params.instances()` random vectors (sampled like the moment engines).
/// `h_tilde` must be rescaled; `a_current` is the real antisymmetric
/// current operator (same dimension).  Cost: O(K (N nnz + N^2 D)) time and
/// O(N D) memory.
[[nodiscard]] ConductivityMoments conductivity_moments(const linalg::MatrixOperator& h_tilde,
                                                       const linalg::MatrixOperator& a_current,
                                                       const MomentParams& params,
                                                       std::size_t sample_instances = 0);

/// A reconstructed conductivity curve sigma(E).
struct ConductivityCurve {
  std::vector<double> energy;  ///< physical Fermi energies
  std::vector<double> sigma;   ///< non-negative, natural units (see header)
};

/// Options for the sigma(E) reconstruction.
struct ConductivityOptions {
  DampingKernel kernel = DampingKernel::Jackson;
  double lorentz_lambda = 4.0;
  std::size_t points = 256;
  double edge_clip = 0.98;  ///< evaluate |x| <= clip (the 1/(1-x^2) weight diverges)
};

/// Evaluates sigma on a Chebyshev grid mapped to physical energies.
[[nodiscard]] ConductivityCurve reconstruct_conductivity(const ConductivityMoments& moments,
                                                         const linalg::SpectralTransform& transform,
                                                         const ConductivityOptions& options = {});

}  // namespace kpm::core
