#include "core/conductivity.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/chebyshev.hpp"
#include "core/moments_cpu.hpp"
#include "linalg/fused_kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace kpm::core {

ConductivityMoments conductivity_moments(const linalg::MatrixOperator& h_tilde,
                                         const linalg::MatrixOperator& a_current,
                                         const MomentParams& params,
                                         std::size_t sample_instances) {
  params.validate();
  const std::size_t d = h_tilde.dim();
  KPM_REQUIRE(a_current.dim() == d, "conductivity_moments: operator dimensions differ");
  const std::size_t n = params.num_moments;
  const std::size_t total = params.instances();
  const std::size_t executed = resolve_sample_count(sample_instances, total);

  obs::ScopedSpan span("conductivity.moments");
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(n) * static_cast<double>(n));

  ConductivityMoments result;
  result.num_moments = n;
  result.mu.assign(n * n, 0.0);
  result.instances_executed = executed;

  // Per instance:
  //   |phi>    = A |r>
  //   |beta_m> = T_m(H~) |phi>        (all N stored, N*D doubles)
  //   |psi_n>  = T_n(H~) |r>          (streamed)
  //   w        = A^T psi_n = -A psi_n
  //   mu_nm   += <w | beta_m> / D     (sign folded below)
  const double dd = static_cast<double>(d);
  const auto meter_h_spmv = [&] {
    obs::meter_spmv(h_tilde.spmv_flops(), h_tilde.spmv_matrix_bytes(), d);
  };
  const auto meter_a_spmv = [&] {
    obs::meter_spmv(a_current.spmv_flops(), a_current.spmv_matrix_bytes(), d);
  };
  const auto meter_combine = [&](std::size_t b) {
    obs::add(obs::Counter::Flops, 2.0 * dd * static_cast<double>(b));
    obs::add(obs::Counter::BytesStreamed, 3.0 * dd * static_cast<double>(b) * sizeof(double));
  };

  const std::size_t block = params.block_r;
  if (block <= 1) {
    std::vector<double> r0(d), phi(d);
    std::vector<double> beta(n * d);
    std::vector<double> psi_prev2(d), psi_prev(d), psi_next(d), w(d);

    auto beta_row = [&](std::size_t m) { return std::span<double>(beta).subspan(m * d, d); };

    for (std::size_t inst = 0; inst < executed; ++inst) {
      obs::add(obs::Counter::InstancesExecuted, 1.0);
      fill_random_vector(params, inst, r0);
      a_current.multiply(r0, phi);
      meter_a_spmv();

      // beta_0..beta_{N-1} by the standard recursion from |phi>.
      linalg::copy(phi, beta_row(0));
      obs::meter_stream_bytes(2.0 * dd * sizeof(double));
      if (n > 1) {
        h_tilde.multiply(beta_row(0), beta_row(1));
        meter_h_spmv();
      }
      for (std::size_t m = 2; m < n; ++m) {
        h_tilde.multiply(beta_row(m - 1), beta_row(m));
        meter_h_spmv();
        linalg::chebyshev_combine(beta_row(m), beta_row(m - 2), beta_row(m));
        meter_combine(1);
      }

      // Stream psi_n, accumulating one row of mu per step.
      // <r| T_n A T_m A |r> = (A^T psi_n) . beta_m = -(A psi_n) . beta_m, and
      // mu^J_nm = -(1/D) Tr[T_n A T_m A], so the estimator of mu^J is
      // +(A psi_n) . beta_m / D.
      auto accumulate_row = [&](std::size_t row, std::span<const double> psi) {
        a_current.multiply(psi, w);  // w = A psi
        meter_a_spmv();
        double* mu_row = result.mu.data() + row * n;
        for (std::size_t m = 0; m < n; ++m) {
          const auto b = beta_row(m);
          double acc = 0.0;
          for (std::size_t i = 0; i < d; ++i) acc += w[i] * b[i];
          mu_row[m] += acc;
        }
        // One row of mu: N dot products against the stored beta block.
        obs::add(obs::Counter::DotCalls, static_cast<double>(n));
        obs::add(obs::Counter::Flops, 2.0 * dd * static_cast<double>(n));
        obs::add(obs::Counter::BytesStreamed, 2.0 * dd * sizeof(double) * static_cast<double>(n));
      };

      linalg::copy(r0, psi_prev2);
      obs::meter_stream_bytes(2.0 * dd * sizeof(double));
      accumulate_row(0, psi_prev2);
      if (n > 1) {
        h_tilde.multiply(psi_prev2, psi_prev);
        meter_h_spmv();
        accumulate_row(1, psi_prev);
      }
      for (std::size_t k = 2; k < n; ++k) {
        h_tilde.multiply(psi_prev, psi_next);
        meter_h_spmv();
        linalg::chebyshev_combine(psi_next, psi_prev2, psi_next);
        meter_combine(1);
        accumulate_row(k, psi_next);
        std::swap(psi_prev2, psi_prev);
        std::swap(psi_prev, psi_next);
      }
    }
  } else {
    // Blocked path: a group of b instances shares every H~ and A stream
    // (both the stored beta recursion and the streamed psi recursion are
    // SpMMV passes).  Per-member arithmetic matches the scalar loop
    // bit-for-bit, and each mu cell accumulates member contributions in
    // instance order, so the result is independent of the block size.
    std::vector<double> r0(d * block), phi(d * block);
    std::vector<double> beta(n * d * block);
    std::vector<double> psi_prev2(d * block), psi_prev(d * block), psi_next(d * block),
        w(d * block);

    for (std::size_t first = 0; first < executed; first += block) {
      const std::size_t b = std::min(block, executed - first);
      const std::size_t len = d * b;
      const auto sub = [len](std::vector<double>& v) {
        return std::span<double>(v.data(), len);
      };
      auto beta_row = [&](std::size_t m) {
        return std::span<double>(beta).subspan(m * len, len);
      };
      obs::add(obs::Counter::InstancesExecuted, static_cast<double>(b));
      fill_random_vector_block(params, first, b, sub(r0));
      linalg::spmmv_multiply(a_current, b, sub(r0), sub(phi));

      linalg::copy(sub(phi), beta_row(0));
      obs::meter_stream_bytes(2.0 * static_cast<double>(len) * sizeof(double));
      if (n > 1) linalg::spmmv_multiply(h_tilde, b, beta_row(0), beta_row(1));
      for (std::size_t m = 2; m < n; ++m) {
        linalg::spmmv_multiply(h_tilde, b, beta_row(m - 1), beta_row(m));
        linalg::chebyshev_combine(beta_row(m), beta_row(m - 2), beta_row(m));
        meter_combine(b);
      }

      auto accumulate_row = [&](std::size_t row, std::span<const double> psi) {
        linalg::spmmv_multiply(a_current, b, psi, sub(w));  // w_j = A psi_j
        double* mu_row = result.mu.data() + row * n;
        for (std::size_t m = 0; m < n; ++m) {
          const auto bm = beta_row(m);
          // Per-member left fold over elements, then members added in
          // instance order — the same addition sequence per mu cell as b
          // consecutive scalar instances.
          for (std::size_t j = 0; j < b; ++j) {
            double acc = 0.0;
            for (std::size_t i = 0; i < d; ++i) acc += w[i * b + j] * bm[i * b + j];
            mu_row[m] += acc;
          }
        }
        obs::add(obs::Counter::DotCalls, static_cast<double>(n) * static_cast<double>(b));
        obs::add(obs::Counter::Flops,
                 2.0 * dd * static_cast<double>(n) * static_cast<double>(b));
        obs::add(obs::Counter::BytesStreamed,
                 2.0 * dd * sizeof(double) * static_cast<double>(n) * static_cast<double>(b));
      };

      linalg::copy(sub(r0), sub(psi_prev2));
      obs::meter_stream_bytes(2.0 * static_cast<double>(len) * sizeof(double));
      accumulate_row(0, sub(psi_prev2));
      if (n > 1) {
        linalg::spmmv_multiply(h_tilde, b, sub(psi_prev2), sub(psi_prev));
        accumulate_row(1, sub(psi_prev));
      }
      for (std::size_t k = 2; k < n; ++k) {
        linalg::spmmv_multiply(h_tilde, b, sub(psi_prev), sub(psi_next));
        linalg::chebyshev_combine(sub(psi_next), sub(psi_prev2), sub(psi_next));
        meter_combine(b);
        accumulate_row(k, sub(psi_next));
        std::swap(psi_prev2, psi_prev);
        std::swap(psi_prev, psi_next);
      }
    }
  }

  // Plain division (not a reciprocal multiply) so the GPU conductivity
  // engine's averaging kernel matches bit-for-bit.
  const double denom = static_cast<double>(d) * static_cast<double>(executed);
  for (double& v : result.mu) v /= denom;
  return result;
}

ConductivityCurve reconstruct_conductivity(const ConductivityMoments& moments,
                                           const linalg::SpectralTransform& transform,
                                           const ConductivityOptions& options) {
  const std::size_t n = moments.num_moments;
  KPM_REQUIRE(n > 0 && moments.mu.size() == n * n,
              "reconstruct_conductivity: malformed moment matrix");
  KPM_REQUIRE(options.points >= 2, "reconstruct_conductivity: need at least two points");
  KPM_REQUIRE(options.edge_clip > 0.0 && options.edge_clip < 1.0,
              "reconstruct_conductivity: edge_clip must be in (0, 1)");

  obs::ScopedSpan span("reconstruct.conductivity");
  obs::add(obs::Counter::ReconstructPoints, static_cast<double>(options.points));
  // Per point: N-term Chebyshev evaluation plus the N x N bilinear form.
  obs::add(obs::Counter::Flops,
           static_cast<double>(options.points) *
               (4.0 * static_cast<double>(n) +
                2.0 * static_cast<double>(n) * static_cast<double>(n)));

  const auto g = damping_coefficients(options.kernel, n, options.lorentz_lambda);

  ConductivityCurve curve;
  curve.energy.resize(options.points);
  curve.sigma.resize(options.points);

  std::vector<double> t_values(n);
  std::vector<double> weighted(n);  // h_n T_n(x)
  for (std::size_t j = 0; j < options.points; ++j) {
    const double x = -options.edge_clip +
                     2.0 * options.edge_clip * static_cast<double>(j) /
                         static_cast<double>(options.points - 1);
    chebyshev_t_all(x, t_values);
    for (std::size_t k = 0; k < n; ++k)
      weighted[k] = (k == 0 ? 1.0 : 2.0) * g[k] * t_values[k];

    // Bilinear form sum_nm weighted_n (-mu_nm already folded) weighted_m.
    double acc = 0.0;
    for (std::size_t row = 0; row < n; ++row) {
      const double* mu_row = moments.mu.data() + row * n;
      double inner = 0.0;
      for (std::size_t m = 0; m < n; ++m) inner += mu_row[m] * weighted[m];
      acc += weighted[row] * inner;
    }
    const double denom = std::numbers::pi * std::numbers::pi * (1.0 - x * x);
    curve.energy[j] = transform.to_physical(x);
    curve.sigma[j] = acc / denom;
  }
  return curve;
}

}  // namespace kpm::core
