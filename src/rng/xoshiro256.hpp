// Xoshiro256++ — the library's general-purpose sequential generator.
//
// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
// generators", ACM TOMS 2021.  Period 2^256 - 1, passes BigCrush.
#pragma once

#include <array>
#include <cstdint>

#include "rng/splitmix64.hpp"

namespace kpm::rng {

/// Xoshiro256++ generator with SplitMix64-based seeding and jump() support
/// for creating 2^128 non-overlapping subsequences.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 1) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Advances the state by 2^128 steps; equivalent to 2^128 next() calls.
  /// Use to partition one seed into independent streams.
  constexpr void jump() noexcept {
    constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        next();
      }
    }
    state_ = {s0, s1, s2, s3};
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace kpm::rng
