// The paper's physics workload, end to end: DoS of the 10x10x10 simple
// cubic lattice (Section IV-A / Fig. 6), with a full-diagonalization
// cross-check.
//
// Writes a CSV with the KPM curves at two truncations plus the exact
// (closed-form spectrum) reference, and prints summary statistics.
//
//   $ cubic_lattice_dos [--edge=10] [--csv=cubic_dos.csv]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/kpm.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("cubic_lattice_dos", "DoS of the paper's cubic lattice with validation");
  const auto* edge = cli.add_int("edge", 10, "lattice edge (paper: 10 -> D=1000)");
  const auto* r = cli.add_int("R", 14, "random vectors");
  const auto* s = cli.add_int("S", 16, "realizations (paper: 128; trimmed for a quick demo)");
  const auto* csv = cli.add_string("csv", "cubic_dos.csv", "output CSV");
  cli.parse(argc, argv);

  const auto lat = lattice::HypercubicLattice::cubic(static_cast<std::size_t>(*edge),
                                                     static_cast<std::size_t>(*edge),
                                                     static_cast<std::size_t>(*edge));
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto transform = linalg::make_spectral_transform(op);
  const auto h_tilde = linalg::rescale(h, transform);
  linalg::MatrixOperator op_tilde(h_tilde);

  std::printf("lattice    : %s, D = %zu, %zu stored entries\n", lat.describe().c_str(), op.dim(),
              op.stored_entries());
  const auto bounds = linalg::gershgorin_bounds(op);
  std::printf("spectrum   : Gershgorin [%.2f, %.2f]\n", bounds.lower, bounds.upper);

  core::MomentParams params;
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = static_cast<std::size_t>(*s);

  core::GpuMomentEngine gpu;
  params.num_moments = 256;
  const auto m256 = gpu.compute(op_tilde, params);
  params.num_moments = 512;
  const auto m512 = gpu.compute(op_tilde, params);
  std::printf("moments    : N=256 in %.3f s, N=512 in %.3f s (simulated C2050)\n",
              m256.model_seconds, m512.model_seconds);

  // Exact reference from the closed-form momentum-space spectrum.
  const auto spectrum = lattice::periodic_tight_binding_spectrum(lat);
  const auto mu_exact = diag::exact_chebyshev_moments(spectrum, transform, 512);

  std::vector<double> energies;
  for (double x = -0.98; x <= 0.98; x += 0.02) energies.push_back(transform.to_physical(x));
  const auto c256 = core::reconstruct_dos_at(m256.mu, transform, energies);
  const auto c512 = core::reconstruct_dos_at(m512.mu, transform, energies);
  const auto cexact = core::reconstruct_dos_at(mu_exact, transform, energies);

  Table table({"E", "rho_kpm_N256", "rho_kpm_N512", "rho_exact_N512"});
  double max_err = 0.0;
  for (std::size_t j = 0; j < energies.size(); ++j) {
    table.add_row({strprintf("%.4f", energies[j]), strprintf("%.6f", c256.density[j]),
                   strprintf("%.6f", c512.density[j]), strprintf("%.6f", cexact.density[j])});
    max_err = std::max(max_err, std::abs(c512.density[j] - cexact.density[j]));
  }
  table.write_csv(*csv);
  std::printf("validation : max |rho_KPM(N=512) - rho_exact| = %.4f over %zu energies\n", max_err,
              energies.size());
  std::printf("output     : %s (plot E vs the three columns to reproduce Fig. 6)\n",
              csv->c_str());
  // Trapezoid over the slightly-truncated window: expect a touch below 1.
  std::printf("normalize  : integral rho dE = %.4f (should be ~1)\n", core::dos_integral(c512));
  return 0;
}
