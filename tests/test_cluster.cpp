// Tests for the gpusim multi-device cluster model.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/cluster.hpp"

namespace {

using namespace gpusim;

TEST(Cluster, SingleDeviceCommunicatesForFree) {
  Cluster c(DeviceSpec::tesla_c2050(), 1);
  EXPECT_DOUBLE_EQ(c.all_reduce(1e6), 0.0);
  EXPECT_DOUBLE_EQ(c.communication_seconds(), 0.0);
}

TEST(Cluster, AllReduceFollowsRingFormula) {
  const auto link = InterconnectSpec::infiniband_qdr();
  Cluster c(DeviceSpec::tesla_c2050(), 4, link);
  const double bytes = 8e6;
  const double expected = 2.0 * 3.0 / 4.0 * bytes / link.bandwidth + 2.0 * 3.0 * link.latency_s;
  EXPECT_DOUBLE_EQ(c.all_reduce(bytes), expected);
  EXPECT_DOUBLE_EQ(c.communication_seconds(), expected);
}

TEST(Cluster, ParallelSecondsIsMaxPlusComm) {
  Cluster c(DeviceSpec::tesla_c2050(), 3);
  // Give device 1 some work via a transfer.
  std::vector<double> host(1000, 1.0);
  auto buf = c.device(1).alloc<double>(1000);
  c.device(1).copy_to_device<double>(host, buf);
  const double dev1 = c.device(1).seconds();
  EXPECT_GT(dev1, 0.0);
  EXPECT_DOUBLE_EQ(c.parallel_seconds(), dev1);
  EXPECT_DOUBLE_EQ(c.total_device_seconds(), dev1);
  const double comm = c.all_reduce(1e3);
  EXPECT_DOUBLE_EQ(c.parallel_seconds(), dev1 + comm);
}

TEST(Cluster, DevicesHaveIndependentVram) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  spec.global_mem_bytes = 1000;
  Cluster c(spec, 2);
  auto a = c.device(0).alloc<double>(100);  // 800 B on device 0
  EXPECT_NO_THROW((void)c.device(1).alloc<double>(100));  // device 1 has its own VRAM
  EXPECT_THROW((void)c.device(0).alloc<double>(100), kpm::Error);
}

TEST(Cluster, ResetClearsClocksAndComm) {
  Cluster c(DeviceSpec::tesla_c2050(), 2);
  std::vector<double> host(10, 0.0);
  auto buf = c.device(0).alloc<double>(10);
  c.device(0).copy_to_device<double>(host, buf);
  c.all_reduce(100.0);
  EXPECT_GT(c.parallel_seconds(), 0.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.parallel_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(c.communication_seconds(), 0.0);
}

TEST(Cluster, RejectsBadConfig) {
  EXPECT_THROW(Cluster(DeviceSpec::tesla_c2050(), 0), kpm::Error);
  InterconnectSpec bad;
  bad.bandwidth = 0.0;
  EXPECT_THROW(Cluster(DeviceSpec::tesla_c2050(), 2, bad), kpm::Error);
}

TEST(Cluster, PresetLinksAreValid) {
  EXPECT_NO_THROW(InterconnectSpec::infiniband_qdr().validate());
  EXPECT_NO_THROW(InterconnectSpec::pcie_peer().validate());
  EXPECT_GT(InterconnectSpec::pcie_peer().bandwidth,
            InterconnectSpec::infiniband_qdr().bandwidth);
}

}  // namespace
