// Monotonic wall-clock stopwatch for the benches and examples.
#pragma once

#include <chrono>

namespace kpm {

/// Measures elapsed wall-clock time with a steady (monotonic) clock.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch from zero.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace kpm
