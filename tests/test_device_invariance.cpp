// Property: the DeviceSpec NEVER changes functional results — only time.
// Sweeps every engine over every device preset on the same physics.
#include <gtest/gtest.h>

#include <tuple>

#include "core/moments_cpu.hpp"
#include "core/moments_gpu.hpp"
#include "core/moments_gpu_chunked.hpp"
#include "core/moments_multigpu.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

enum class DevicePreset { C2050, Gtx285, Hpc2020 };

gpusim::DeviceSpec spec_of(DevicePreset p) {
  switch (p) {
    case DevicePreset::C2050:
      return gpusim::DeviceSpec::tesla_c2050();
    case DevicePreset::Gtx285:
      return gpusim::DeviceSpec::geforce_gtx285();
    case DevicePreset::Hpc2020:
      return gpusim::DeviceSpec::fictional_hpc2020();
  }
  return gpusim::DeviceSpec::tesla_c2050();
}

const char* name_of(DevicePreset p) {
  switch (p) {
    case DevicePreset::C2050:
      return "c2050";
    case DevicePreset::Gtx285:
      return "gtx285";
    case DevicePreset::Hpc2020:
      return "hpc2020";
  }
  return "?";
}

struct Fixture {
  linalg::CrsMatrix h_tilde;
  std::vector<double> reference_mu;

  Fixture() {
    const auto lat = lattice::HypercubicLattice::cubic(3, 3, 3);
    const auto h = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator op(h);
    h_tilde = linalg::rescale(h, linalg::make_spectral_transform(op));
    linalg::MatrixOperator op_t(h_tilde);
    CpuMomentEngine cpu;
    reference_mu = cpu.compute(op_t, params()).mu;
  }

  static MomentParams params() {
    MomentParams p;
    p.num_moments = 16;
    p.random_vectors = 4;
    p.realizations = 2;
    return p;
  }
};

using Case = std::tuple<DevicePreset, GpuMapping>;

class DeviceInvariance : public ::testing::TestWithParam<Case> {};

TEST_P(DeviceInvariance, GpuEngineIsBitwiseDeviceIndependent) {
  const auto [preset, mapping] = GetParam();
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  GpuEngineConfig cfg;
  cfg.device = spec_of(preset);
  cfg.mapping = mapping;
  GpuMomentEngine engine(cfg);
  const auto r = engine.compute(op, Fixture::params());
  for (std::size_t n = 0; n < r.mu.size(); ++n) EXPECT_EQ(r.mu[n], f.reference_mu[n]) << n;
}

TEST_P(DeviceInvariance, ChunkedEngineIsBitwiseDeviceIndependent) {
  const auto [preset, mapping] = GetParam();
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  ChunkedGpuEngineConfig cfg;
  cfg.base.device = spec_of(preset);
  cfg.base.mapping = mapping;
  cfg.workspace_bytes = 8 * (4 * 27 * 8 + 16 * 8);  // force 1 chunk per... ~8 instances
  ChunkedGpuMomentEngine engine(cfg);
  const auto r = engine.compute(op, Fixture::params());
  for (std::size_t n = 0; n < r.mu.size(); ++n) EXPECT_EQ(r.mu[n], f.reference_mu[n]) << n;
}

INSTANTIATE_TEST_SUITE_P(
    PresetsAndMappings, DeviceInvariance,
    ::testing::Combine(::testing::Values(DevicePreset::C2050, DevicePreset::Gtx285,
                                         DevicePreset::Hpc2020),
                       ::testing::Values(GpuMapping::InstancePerBlock,
                                         GpuMapping::InstancePerThread)),
    [](const auto& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_" +
             (std::get<1>(info.param) == GpuMapping::InstancePerBlock ? "block" : "thread");
    });

TEST(DeviceInvariance, ClusterIsDeviceIndependentToRoundoff) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  for (auto preset : {DevicePreset::C2050, DevicePreset::Hpc2020}) {
    MultiGpuEngineConfig cfg;
    cfg.per_device.device = spec_of(preset);
    cfg.device_count = 3;
    MultiGpuMomentEngine engine(cfg);
    const auto r = engine.compute(op, Fixture::params());
    for (std::size_t n = 0; n < r.mu.size(); ++n)
      EXPECT_NEAR(r.mu[n], f.reference_mu[n], 1e-13) << name_of(preset) << " " << n;
  }
}

TEST(DeviceInvariance, TimesDoDifferAcrossDevices) {
  // The counterpart claim: the model must distinguish the hardware.
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p = Fixture::params();
  p.num_moments = 128;
  double prev = -1.0;
  for (auto preset : {DevicePreset::Gtx285, DevicePreset::C2050, DevicePreset::Hpc2020}) {
    GpuEngineConfig cfg;
    cfg.device = spec_of(preset);
    cfg.context_setup_seconds = 0.0;
    GpuMomentEngine engine(cfg);
    const double t = engine.compute(op, p).compute_seconds;
    if (prev >= 0.0) EXPECT_LT(t, prev) << "newer device must model faster kernels";
    prev = t;
  }
}

}  // namespace
