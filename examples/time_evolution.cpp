// Wavepacket dynamics with the Chebyshev propagator.
//
// Launches a Gaussian wavepacket with momentum k0 on a tight-binding chain
// and tracks its center and spread under |psi(t)> = exp(-iHt)|psi(0)>:
// ballistic motion at the group velocity v = 2 t sin(k0), norm and energy
// conserved to machine precision.
//
//   $ time_evolution [--sites=256] [--k0=1.57] [--steps=10]
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/kpm.hpp"

int main(int argc, char** argv) {
  using namespace kpm;
  using Complex = std::complex<double>;

  CliParser cli("time_evolution", "Chebyshev propagation of a wavepacket on a chain");
  const auto* sites = cli.add_int("sites", 256, "chain length");
  const auto* k0 = cli.add_double("k0", 1.5707963, "packet momentum (pi/2 = max velocity)");
  const auto* sigma = cli.add_double("sigma", 8.0, "packet width in sites");
  const auto* steps = cli.add_int("steps", 10, "number of output steps");
  const auto* dt = cli.add_double("dt", 4.0, "time per step (hbar/t units)");
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(*sites);
  const auto lat = lattice::HypercubicLattice::chain(n);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto transform = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, transform);
  linalg::MatrixOperator op_t(ht);
  core::ChebyshevPropagator prop(op_t, transform);

  // Gaussian packet centered at n/4 with momentum k0.
  std::vector<Complex> psi(n);
  const double x0 = static_cast<double>(n) / 4.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - x0;
    const double envelope = std::exp(-dx * dx / (4.0 * *sigma * *sigma));
    psi[i] = envelope * Complex{std::cos(*k0 * dx), std::sin(*k0 * dx)};
  }
  const double norm0 = core::state_norm(psi);
  for (auto& v : psi) v /= norm0;

  const double e0 = core::energy_expectation(op, psi);
  const double v_group = 2.0 * std::sin(*k0);
  std::printf("chain of %zu sites, packet at x0=%.0f, k0=%.3f -> group velocity %.3f\n\n", n,
              x0, *k0, v_group);
  std::printf("%8s  %10s  %10s  %12s  %14s  %6s\n", "time", "<x>", "spread", "norm-1",
              "<H>-E0", "terms");

  auto report_state = [&](double time) {
    double mean = 0.0, mean_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = std::norm(psi[i]);
      mean += p * static_cast<double>(i);
      mean_sq += p * static_cast<double>(i) * static_cast<double>(i);
    }
    const double spread = std::sqrt(std::max(0.0, mean_sq - mean * mean));
    std::printf("%8.2f  %10.3f  %10.3f  %12.2e  %14.2e", time, mean, spread,
                core::state_norm(psi) - 1.0, core::energy_expectation(op, psi) - e0);
  };

  report_state(0.0);
  std::printf("  %6s\n", "-");
  for (int s = 1; s <= *steps; ++s) {
    const auto rep = prop.step(psi, *dt);
    report_state(*dt * s);
    std::printf("  %6zu\n", rep.terms);
  }
  std::printf("\nexpected: <x> advances ~%.2f sites per step (ballistic), norm and\n"
              "energy drift stay at machine precision.\n",
              v_group * *dt);
  return 0;
}
