// Compressed Row Storage (CRS) sparse matrix + triplet builder.
//
// The paper's lattice Hamiltonians are sparse (7 non-zeros per row for the
// 10x10x10 cubic model).  Section II-A.4 of the paper describes O(S R N D)
// cost for the sparse case; this type provides that path, and the
// `ablation_storage` bench contrasts it with the dense path the paper's
// Figs. 7/8 use.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace kpm::linalg {

/// Immutable CRS (a.k.a. CSR) sparse matrix of doubles.
class CrsMatrix {
 public:
  using Index = std::int32_t;

  CrsMatrix() = default;

  /// Assembles from parallel arrays; `row_ptr` has rows+1 entries,
  /// `col_idx`/`values` have row_ptr[rows] entries with columns sorted and
  /// unique within each row.  Validated on construction.
  CrsMatrix(std::size_t rows, std::size_t cols, std::vector<Index> row_ptr,
            std::vector<Index> col_idx, std::vector<double> values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  [[nodiscard]] std::span<const Index> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const Index> col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// Mutable access to the stored values (pattern stays fixed); used by the
  /// spectral rescaling which only changes numeric entries.
  [[nodiscard]] std::span<double> values_mut() noexcept { return values_; }

  /// Returns element (r, c), 0.0 if not stored.  O(log nnz_row).
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Maximum number of stored entries in any row.
  [[nodiscard]] std::size_t max_row_nnz() const;

  /// y = A * x  (y must not alias x).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// True if the sparsity pattern and values are symmetric (within tol).
  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

  /// Expands to dense storage (for the diagonalization baselines/tests).
  [[nodiscard]] DenseMatrix to_dense() const;

  /// Bytes of storage used by the three arrays.
  [[nodiscard]] std::size_t storage_bytes() const noexcept {
    return row_ptr_.size() * sizeof(Index) + col_idx_.size() * sizeof(Index) +
           values_.size() * sizeof(double);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Index> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<double> values_;
};

/// Accumulates (row, col, value) triplets and assembles a CrsMatrix.
/// Duplicate coordinates are summed (standard FEM/tight-binding assembly
/// semantics).
class TripletBuilder {
 public:
  TripletBuilder(std::size_t rows, std::size_t cols);

  /// Adds value at (r, c); values at repeated coordinates accumulate.
  void add(std::size_t r, std::size_t c, double value);

  /// Adds value at (r, c) and (c, r) — convenience for Hermitian hopping
  /// terms.  The diagonal (r == c) is added once.
  void add_symmetric(std::size_t r, std::size_t c, double value);

  [[nodiscard]] std::size_t triplet_count() const noexcept { return entries_.size(); }

  /// Sorts, merges duplicates (dropping exact zeros), and builds the CRS
  /// arrays.  The builder can be reused afterwards (it is left empty).
  [[nodiscard]] CrsMatrix build();

 private:
  struct Entry {
    std::size_t r, c;
    double v;
  };
  std::size_t rows_, cols_;
  std::vector<Entry> entries_;
};

/// Converts a dense matrix to CRS, dropping entries with |a| <= drop_tol.
[[nodiscard]] CrsMatrix dense_to_crs(const DenseMatrix& m, double drop_tol = 0.0);

/// Returns a copy of `m` whose every row stores its diagonal entry, adding
/// explicit zeros where the pattern lacks one.  Used by the tight-binding
/// builders to match the paper's "7 non-zero elements per row with all
/// diagonal ones zeros" storage layout.
[[nodiscard]] CrsMatrix with_structural_diagonal(const CrsMatrix& m);

}  // namespace kpm::linalg
