// Tests for the multithreaded CPU engine: bit-identity of the real parallel
// execution against the serial reference, honest thread reporting, and the
// multicore roofline-model behaviour.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/moments_cpu.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

struct Fixture {
  linalg::CrsMatrix h_tilde_sparse;   // cache-resident workload
  linalg::DenseMatrix h_tilde_dense;  // DRAM-bound workload

  Fixture() : h_tilde_dense(1, 1) {
    const auto lat = lattice::HypercubicLattice::cubic(4, 4, 4);
    const auto hs = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator ops(hs);
    h_tilde_sparse = linalg::rescale(hs, linalg::make_spectral_transform(ops));

    const auto hd = lattice::random_symmetric_dense(1536, 7);  // 18 MiB > LLC
    linalg::MatrixOperator opd(hd);
    h_tilde_dense = linalg::rescale(hd, linalg::make_spectral_transform(opd));
  }
};

MomentParams p_small() {
  MomentParams p;
  p.num_moments = 16;
  p.random_vectors = 4;
  p.realizations = 2;
  return p;
}

TEST(ParallelCpu, FunctionalResultsMatchSerialBitwise) {
  // The contract: the parallel engine's moments are byte-identical to the
  // serial reference for ANY thread count.  Each instance accumulates into
  // a private row and rows are reduced in instance order, so the FP
  // reduction tree is fixed no matter how instances land on threads.
  // 1 = degenerate serial path, 2 = even split, 7 = uneven chunks with
  // more threads than the container may have cores.
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde_sparse);
  CpuMomentEngine serial;
  const auto a = serial.compute(op, p_small());
  for (int threads : {1, 2, 4, 7}) {
    CpuParallelMomentEngine par(threads);
    const auto b = par.compute(op, p_small());
    ASSERT_EQ(a.mu.size(), b.mu.size());
    for (std::size_t n = 0; n < a.mu.size(); ++n)
      EXPECT_EQ(a.mu[n], b.mu[n]) << "threads=" << threads << " n=" << n;
  }
}

TEST(ParallelCpu, DenseWorkloadMatchesSerialBitwise) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde_dense);
  MomentParams p = p_small();
  p.num_moments = 8;
  p.random_vectors = 3;  // 3*2 = 6 instances over 7 threads: some lanes idle
  const auto a = CpuMomentEngine().compute(op, p);
  const auto b = CpuParallelMomentEngine(7).compute(op, p);
  for (std::size_t n = 0; n < a.mu.size(); ++n) EXPECT_EQ(a.mu[n], b.mu[n]);
}

TEST(ParallelCpu, ReportsThreadsUsed) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde_sparse);
  EXPECT_EQ(CpuMomentEngine().compute(op, p_small(), 1).threads_used, 1);
  EXPECT_EQ(CpuParallelMomentEngine(1).compute(op, p_small(), 1).threads_used, 1);
  EXPECT_EQ(CpuParallelMomentEngine(3).compute(op, p_small()).threads_used, 3);
  // A single-instance run cannot use more than one thread; the report must
  // say what actually happened, not what was configured.
  MomentParams p1 = p_small();
  p1.random_vectors = 1;
  p1.realizations = 1;
  EXPECT_EQ(CpuParallelMomentEngine(4).compute(op, p1).threads_used, 1);
}

TEST(ParallelCpu, EngineIsReusableAcrossComputes) {
  // The pool is created lazily and kept across compute() calls.
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde_sparse);
  CpuParallelMomentEngine par(3);
  const auto first = par.compute(op, p_small());
  const auto second = par.compute(op, p_small());
  for (std::size_t n = 0; n < first.mu.size(); ++n) EXPECT_EQ(first.mu[n], second.mu[n]);
}

TEST(ParallelCpu, OneThreadEqualsSerialModel) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde_sparse);
  const double serial = CpuMomentEngine().compute(op, p_small(), 1).model_seconds;
  const double one = CpuParallelMomentEngine(1).compute(op, p_small(), 1).model_seconds;
  EXPECT_DOUBLE_EQ(serial, one);
}

TEST(ParallelCpu, CacheResidentWorkloadScalesLinearly) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde_sparse);
  MomentParams p = p_small();
  p.num_moments = 256;
  const double t1 = CpuParallelMomentEngine(1).compute(op, p, 1).model_seconds;
  const double t4 = CpuParallelMomentEngine(4).compute(op, p, 1).model_seconds;
  EXPECT_NEAR(t1 / t4, 4.0, 0.2);
}

TEST(ParallelCpu, DramBoundWorkloadSaturates) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde_dense);
  MomentParams p = p_small();
  p.num_moments = 32;
  const double t1 = CpuParallelMomentEngine(1).compute(op, p, 1).model_seconds;
  const double t2 = CpuParallelMomentEngine(2).compute(op, p, 1).model_seconds;
  const double t4 = CpuParallelMomentEngine(4).compute(op, p, 1).model_seconds;
  EXPECT_LT(t1 / t4, 2.5) << "bandwidth ceiling must cap the scaling";
  EXPECT_NEAR(t2, t4, 1e-12) << "2 threads already saturate the modeled DRAM";
}

TEST(ParallelCpu, ThreadsBeyondCoresAreClamped) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde_sparse);
  const double t4 = CpuParallelMomentEngine(4).compute(op, p_small(), 1).model_seconds;
  const double t64 = CpuParallelMomentEngine(64).compute(op, p_small(), 1).model_seconds;
  EXPECT_DOUBLE_EQ(t4, t64);
}

TEST(ParallelCpu, NameAndValidation) {
  EXPECT_EQ(CpuParallelMomentEngine(3).name(), "cpu-parallel-x3");
  EXPECT_THROW(CpuParallelMomentEngine(0), kpm::Error);
}

}  // namespace
