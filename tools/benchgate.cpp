// benchgate — bench-baseline regression gate over obs metrics sidecars.
//
//   benchgate --baseline=BENCH_BASELINE.json out/a.csv.metrics.json ...
//
// Each sidecar is a `kpm.obs.report/1` document written by a bench (or
// `kpmcli ... --metrics`).  The baseline pins, per report label:
//
//   * every obs counter — all counters are modeled/deterministic, so they
//     must match the baseline EXACTLY; any drift fails the gate, and
//   * wall_seconds — measured host time, checked against a relative
//     tolerance (`--tolerance`, default 0.25), or reported without failing
//     under `--wall-advisory` (the CI mode: shared runners make wall time
//     non-portable).
//
// `--update` rewrites the baseline from the given sidecars instead of
// comparing (re-baselining after an intentional change).  Exit codes:
// 0 = clean, 1 = drift, 2 = usage/configuration error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"

namespace {

using kpm::obs::JsonValue;

constexpr const char* kBaselineSchema = "kpm.bench.baseline/1";

struct Entry {
  std::string label;
  double wall_seconds = 0.0;
  std::vector<std::pair<std::string, double>> counters;  // registry order
};

struct Options {
  std::string baseline;
  double tolerance = 0.25;
  bool wall_advisory = false;
  bool update = false;
  std::vector<std::string> sidecars;
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "benchgate — compare bench metrics sidecars against a checked-in baseline\n\n"
               "usage: benchgate --baseline=FILE [options] SIDECAR.metrics.json ...\n\n"
               "options:\n"
               "  --baseline=FILE   baseline JSON (schema %s); required\n"
               "  --tolerance=X     relative wall-time tolerance (default 0.25)\n"
               "  --wall-advisory   report wall-time drift but never fail on it\n"
               "  --update          rewrite the baseline from the given sidecars\n",
               kBaselineSchema);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  KPM_REQUIRE(in.good(), "benchgate: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Extracts the gate-relevant projection of one metrics sidecar.
Entry entry_from_report(const JsonValue& doc, const std::string& path) {
  const JsonValue* schema = doc.find("schema");
  KPM_REQUIRE(schema != nullptr && schema->string == "kpm.obs.report/1",
              "benchgate: " + path + " is not a kpm.obs.report/1 document");
  Entry entry;
  entry.label = doc.at("label").string;
  entry.wall_seconds = doc.at("wall_seconds").number;
  for (const auto& [name, value] : doc.at("counters").object)
    entry.counters.emplace_back(name, value.number);
  return entry;
}

Entry entry_from_baseline(const std::string& label, const JsonValue& body) {
  Entry entry;
  entry.label = label;
  entry.wall_seconds = body.at("wall_seconds").number;
  for (const auto& [name, value] : body.at("counters").object)
    entry.counters.emplace_back(name, value.number);
  return entry;
}

void write_baseline(const std::string& path, const std::vector<Entry>& entries,
                    double tolerance) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kBaselineSchema << "\",\n";
  os << "  \"wall_tolerance\": " << kpm::obs::json_number(tolerance) << ",\n";
  os << "  \"entries\": {\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    os << "    \"" << kpm::obs::json_escape(e.label) << "\": {\n"
       << "      \"wall_seconds\": " << kpm::obs::json_number(e.wall_seconds) << ",\n"
       << "      \"counters\": {\n";
    for (std::size_t c = 0; c < e.counters.size(); ++c) {
      os << "        \"" << e.counters[c].first
         << "\": " << kpm::obs::json_number(e.counters[c].second);
      os << (c + 1 < e.counters.size() ? ",\n" : "\n");
    }
    os << "      }\n    }";
    os << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  os << "  }\n}\n";
  std::ofstream out(path);
  KPM_REQUIRE(out.good(), "benchgate: cannot write " + path);
  out << os.str();
  out.flush();
  KPM_REQUIRE(out.good(), "benchgate: failed writing " + path);
}

/// Compares one sidecar against its baseline entry.  Returns the number of
/// failures (counter drift always; wall drift unless advisory).
int compare(const Entry& baseline, const Entry& current, const Options& opts) {
  int failures = 0;
  // Counters: exact.  Walk the union of both name sets so an added or
  // removed counter also trips the gate.
  for (const auto& [name, value] : baseline.counters) {
    const double* now = nullptr;
    for (const auto& [cname, cvalue] : current.counters)
      if (cname == name) now = &cvalue;
    if (now == nullptr) {
      std::printf("  FAIL %s: counter %s missing from current run\n", current.label.c_str(),
                  name.c_str());
      ++failures;
    } else if (*now != value) {
      std::printf("  FAIL %s: counter %s drifted: baseline %.17g, current %.17g\n",
                  current.label.c_str(), name.c_str(), value, *now);
      ++failures;
    }
  }
  for (const auto& [name, value] : current.counters) {
    bool known = false;
    for (const auto& [bname, bvalue] : baseline.counters) known |= bname == name;
    if (!known && value != 0.0) {
      std::printf("  FAIL %s: new nonzero counter %s = %.17g not in baseline\n",
                  current.label.c_str(), name.c_str(), value);
      ++failures;
    }
  }

  const double base_wall = baseline.wall_seconds;
  const double drift =
      base_wall > 0.0 ? (current.wall_seconds - base_wall) / base_wall : 0.0;
  if (base_wall > 0.0 && (drift > opts.tolerance || drift < -opts.tolerance)) {
    if (opts.wall_advisory) {
      std::printf("  note %s: wall %.4fs vs baseline %.4fs (%+.0f%%, advisory)\n",
                  current.label.c_str(), current.wall_seconds, base_wall, 100.0 * drift);
    } else {
      std::printf("  FAIL %s: wall %.4fs vs baseline %.4fs (%+.0f%% > %.0f%% tolerance)\n",
                  current.label.c_str(), current.wall_seconds, base_wall, 100.0 * drift,
                  100.0 * opts.tolerance);
      ++failures;
    }
  }
  return failures;
}

int run(const Options& opts) {
  std::vector<Entry> current;
  for (const std::string& path : opts.sidecars)
    current.push_back(entry_from_report(kpm::obs::parse_json(read_file(path)), path));

  if (opts.update) {
    // Keep baseline entries for labels not re-run this invocation.
    std::vector<Entry> merged;
    std::ifstream existing(opts.baseline);
    if (existing.good()) {
      std::ostringstream ss;
      ss << existing.rdbuf();
      const JsonValue doc = kpm::obs::parse_json(ss.str());
      for (const auto& [label, body] : doc.at("entries").object) {
        bool replaced = false;
        for (const Entry& e : current) replaced |= e.label == label;
        if (!replaced) merged.push_back(entry_from_baseline(label, body));
      }
    }
    for (const Entry& e : current) merged.push_back(e);
    write_baseline(opts.baseline, merged, opts.tolerance);
    std::printf("baseline %s updated (%zu entr%s)\n", opts.baseline.c_str(), merged.size(),
                merged.size() == 1 ? "y" : "ies");
    return 0;
  }

  const JsonValue doc = kpm::obs::parse_json(read_file(opts.baseline));
  const JsonValue* schema = doc.find("schema");
  KPM_REQUIRE(schema != nullptr && schema->string == kBaselineSchema,
              "benchgate: " + opts.baseline + " is not a " + kBaselineSchema + " document");
  const JsonValue& entries = doc.at("entries");

  int failures = 0;
  for (const Entry& e : current) {
    const JsonValue* body = entries.find(e.label);
    if (body == nullptr) {
      std::printf("  FAIL %s: no baseline entry (run with --update to add it)\n",
                  e.label.c_str());
      ++failures;
      continue;
    }
    const int before = failures;
    failures += compare(entry_from_baseline(e.label, *body), e, opts);
    if (failures == before)
      std::printf("  ok   %s: counters exact, wall %.4fs\n", e.label.c_str(), e.wall_seconds);
  }
  std::printf("benchgate: %zu report(s), %d failure(s)\n", current.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        usage(stdout);
        return 0;
      } else if (arg.rfind("--baseline=", 0) == 0) {
        opts.baseline = arg.substr(11);
      } else if (arg.rfind("--tolerance=", 0) == 0) {
        opts.tolerance = std::stod(arg.substr(12));
      } else if (arg == "--wall-advisory") {
        opts.wall_advisory = true;
      } else if (arg == "--update") {
        opts.update = true;
      } else if (arg.rfind("--", 0) == 0) {
        std::fprintf(stderr, "benchgate: unknown option %s\n\n", arg.c_str());
        usage(stderr);
        return 2;
      } else {
        opts.sidecars.push_back(arg);
      }
    }
    if (opts.baseline.empty() || opts.sidecars.empty()) {
      std::fprintf(stderr, "benchgate: --baseline and at least one sidecar are required\n\n");
      usage(stderr);
      return 2;
    }
    return run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "benchgate: %s\n", e.what());
    return 2;
  }
}
