// Local DoS around an impurity: the deterministic-KPM feature.
//
// Places a single strong on-site impurity in the middle of a square
// lattice and maps the LDOS at increasing distances from it — the
// impurity pulls a bound state below the band and dents the local
// spectrum nearby, healing with distance.
//
//   $ ldos_impurity [--edge=21] [--strength=-8]
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/kpm.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("ldos_impurity", "LDOS around a single impurity (deterministic KPM)");
  const auto* edge = cli.add_int("edge", 21, "square lattice edge (odd keeps a center site)");
  const auto* n = cli.add_int("moments", 256, "Chebyshev moments");
  const auto* strength = cli.add_double("strength", -8.0, "impurity on-site energy");
  const auto* csv = cli.add_string("csv", "ldos_impurity.csv", "output CSV");
  cli.parse(argc, argv);

  const auto l = static_cast<std::size_t>(*edge);
  const auto lat = lattice::HypercubicLattice::square(l, l);
  const std::size_t center = lat.site_index(l / 2, l / 2, 0);

  const double impurity = *strength;
  const auto onsite = [&](std::size_t site) { return site == center ? impurity : 0.0; };
  const auto h = lattice::build_tight_binding_crs(lat, {}, onsite);

  linalg::MatrixOperator op(h);
  const auto transform = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, transform);
  linalg::MatrixOperator op_t(ht);

  std::printf("lattice : %s, impurity eps = %.1f at site (%zu, %zu)\n", lat.describe().c_str(),
              impurity, l / 2, l / 2);

  // LDOS at distances 0..4 from the impurity plus a far reference site.
  std::vector<std::pair<std::string, std::size_t>> sites;
  for (std::size_t d = 0; d <= 4; ++d)
    sites.emplace_back("dist " + std::to_string(d), lat.site_index(l / 2 + d, l / 2, 0));
  sites.emplace_back("far corner", lat.site_index(0, 0, 0));

  std::vector<double> energies;
  for (double x = -0.98; x <= 0.98; x += 0.02) energies.push_back(transform.to_physical(x));

  std::vector<std::string> headers{"E"};
  std::vector<core::DosCurve> curves;
  for (const auto& [label, site] : sites) {
    headers.push_back(label);
    curves.push_back(core::ldos_curve(op_t, transform, site, static_cast<std::size_t>(*n),
                                      {.points = 64}));
    curves.back() = core::reconstruct_dos_at(
        core::ldos_moments(op_t, site, static_cast<std::size_t>(*n)), transform, energies);
  }

  Table table(headers);
  for (std::size_t j = 0; j < energies.size(); ++j) {
    std::vector<std::string> row{strprintf("%.3f", energies[j])};
    for (const auto& c : curves) row.push_back(strprintf("%.5f", c.density[j]));
    table.add_row(std::move(row));
  }
  table.write_csv(*csv);

  // Report the bound state: LDOS weight below the clean band edge (-4).
  for (std::size_t k = 0; k < sites.size(); ++k) {
    double below_band = 0.0;
    for (std::size_t j = 1; j < energies.size(); ++j)
      if (energies[j] < -4.2)
        below_band += 0.5 * (curves[k].density[j] + curves[k].density[j - 1]) *
                      (energies[j] - energies[j - 1]);
    std::printf("%-11s: LDOS weight below the clean band = %.4f\n", sites[k].first.c_str(),
                below_band);
  }
  std::printf("series written to %s\n", csv->c_str());
  return 0;
}
