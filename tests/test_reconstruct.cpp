// Tests for the DoS reconstruction (paper Eq. 6 and Fig. 6's physics).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "core/reconstruct.hpp"
#include "diag/spectrum_utils.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm::core;
using kpm::diag::exact_chebyshev_moments;
using kpm::linalg::SpectralTransform;

/// Moments of a single delta function at x0: mu_n = T_n(x0).
std::vector<double> delta_moments(double x0, std::size_t n) {
  std::vector<double> mu(n);
  const double theta = std::acos(x0);
  for (std::size_t k = 0; k < n; ++k) mu[k] = std::cos(static_cast<double>(k) * theta);
  return mu;
}

TEST(Reconstruct, DeltaFunctionIntegratesToOne) {
  const SpectralTransform t({-1.0, 1.0}, 0.0);
  const auto mu = delta_moments(0.3, 128);
  const auto curve = reconstruct_dos(mu, t, {.points = 2048});
  EXPECT_NEAR(dos_integral(curve), 1.0, 1e-3);
}

TEST(Reconstruct, DeltaPeakSitsAtItsEnergy) {
  const SpectralTransform t({-2.0, 2.0}, 0.0);
  const double e0 = 0.8;  // physical energy; x0 = 0.4
  const auto mu = delta_moments(t.to_unit(e0), 256);
  const auto curve = reconstruct_dos(mu, t, {.points = 1024});
  const auto it = std::max_element(curve.density.begin(), curve.density.end());
  const auto peak = curve.energy[static_cast<std::size_t>(it - curve.density.begin())];
  EXPECT_NEAR(peak, e0, 0.02);
}

TEST(Reconstruct, JacksonDeltaWidthShrinksWithN) {
  // The Jackson-kernel delta approximation has width ~ pi/N: doubling N
  // must raise the peak height by ~2x.
  const SpectralTransform t({-1.0, 1.0}, 0.0);
  auto peak_height = [&](std::size_t n) {
    const auto curve = reconstruct_dos(delta_moments(0.0, n), t, {.points = 4096});
    return *std::max_element(curve.density.begin(), curve.density.end());
  };
  const double h128 = peak_height(128);
  const double h256 = peak_height(256);
  EXPECT_NEAR(h256 / h128, 2.0, 0.1);
}

TEST(Reconstruct, DirichletShowsGibbsRingingJacksonDoesNot) {
  const SpectralTransform t({-1.0, 1.0}, 0.0);
  const auto mu = delta_moments(0.0, 64);
  const auto raw = reconstruct_dos(mu, t, {.kernel = DampingKernel::Dirichlet, .points = 1024});
  const auto damped = reconstruct_dos(mu, t, {.kernel = DampingKernel::Jackson, .points = 1024});
  const double raw_min = *std::min_element(raw.density.begin(), raw.density.end());
  const double damped_min = *std::min_element(damped.density.begin(), damped.density.end());
  EXPECT_LT(raw_min, -0.01) << "truncated series must oscillate below zero";
  EXPECT_GT(damped_min, -1e-9) << "Jackson kernel must keep the DoS non-negative";
}

TEST(Reconstruct, MatchesEigenvalueHistogram) {
  // Flat-ish spectrum: 64 eigenvalues uniform in [-0.8, 0.8].
  std::vector<double> eig;
  for (int k = 0; k < 64; ++k) eig.push_back(-0.8 + 1.6 * (k + 0.5) / 64.0);
  const SpectralTransform t({-1.0, 1.0}, 0.0);
  const auto mu = exact_chebyshev_moments(eig, t, 128);
  const auto curve = reconstruct_dos(mu, t, {.points = 512});
  // Density inside the support should be ~1/1.6 = 0.625, near zero outside.
  for (std::size_t j = 0; j < curve.energy.size(); ++j) {
    if (std::abs(curve.energy[j]) < 0.6) EXPECT_NEAR(curve.density[j], 0.625, 0.08);
    if (std::abs(curve.energy[j]) > 0.95) EXPECT_LT(curve.density[j], 0.05);
  }
}

TEST(Reconstruct, PhysicalRescalingKeepsNormalization) {
  // Same spectrum expressed on a wide physical axis: integral stays 1.
  const SpectralTransform t({-7.0, 5.0}, 0.01);
  std::vector<double> eig{-3.0, -1.0, 0.0, 2.0, 4.0};
  const auto mu = exact_chebyshev_moments(eig, t, 256);
  const auto curve = reconstruct_dos(mu, t, {.points = 2048});
  EXPECT_NEAR(dos_integral(curve), 1.0, 2e-3);
  EXPECT_NEAR(dos_mean_energy(curve), 0.4, 0.05);  // mean of the eigenvalues
}

TEST(Reconstruct, AtArbitraryEnergiesAgreesWithGridPath) {
  const SpectralTransform t({-1.0, 1.0}, 0.0);
  const auto mu = delta_moments(0.25, 64);
  std::vector<double> energies{-0.5, 0.0, 0.25, 0.7};
  const auto curve = reconstruct_dos_at(mu, t, energies);
  const auto damped = damping_coefficients(DampingKernel::Jackson, 64);
  std::vector<double> prod(64);
  for (std::size_t k = 0; k < 64; ++k) prod[k] = damped[k] * mu[k];
  for (std::size_t j = 0; j < energies.size(); ++j)
    EXPECT_NEAR(curve.density[j], evaluate_dos_series(prod, energies[j]), 1e-12);
}

TEST(Reconstruct, RejectsEnergiesOutsideInterval) {
  const SpectralTransform t({-1.0, 1.0}, 0.0);
  const auto mu = delta_moments(0.0, 16);
  std::vector<double> bad{1.5};
  EXPECT_THROW((void)reconstruct_dos_at(mu, t, bad), kpm::Error);
  EXPECT_THROW((void)evaluate_dos_series(mu, 1.0), kpm::Error);
}

TEST(Reconstruct, EmptyMomentsThrow) {
  const SpectralTransform t({-1.0, 1.0}, 0.0);
  EXPECT_THROW((void)reconstruct_dos({}, t), kpm::Error);
}

}  // namespace
