// Critical-path analyzer tests on hand-built TraceFiles with known
// schedules: every busy/idle split, gap attribution, path step and the
// copy/compute overlap is checked against values worked out by hand, and
// the structural invariants (composition sums to makespan, gaps sum to
// idle) are asserted exactly — everything here is integer ns ticks.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>

#include "obs/critical_path.hpp"
#include "obs/trace_file.hpp"

namespace {

using namespace kpm;

obs::TraceFileEvent make_event(std::string kind, std::string label, std::size_t stream,
                               std::int64_t start_ns, std::int64_t end_ns) {
  obs::TraceFileEvent ev;
  ev.kind = std::move(kind);
  ev.label = std::move(label);
  ev.stream = stream;
  ev.start_ns = start_ns;
  ev.end_ns = end_ns;
  return ev;
}

/// Two-stream schedule with every quantity known by construction:
///   s0 compute: A [0,100)                     B [300,500)
///   s0 copy   :          up [150,300)
///   s1 copy   :                                  down [350,450)
/// makespan 500; critical path A -> up -> B; s0-compute gap (100,300]
/// released by the upload; overlap = down under B = 100 ns.
obs::TraceFile known_trace() {
  obs::TraceFile trace;
  trace.schema = std::string(obs::kTraceSchema);
  trace.label = "hand-built";
  obs::TraceFileTimeline tl;
  tl.label = "dev";
  tl.device = "test-device";
  tl.streams = 2;
  tl.events.push_back(make_event("kernel", "A", 0, 0, 100));
  tl.events.push_back(make_event("h2d", "up", 0, 150, 300));
  tl.events.push_back(make_event("kernel", "B", 0, 300, 500));
  tl.events.push_back(make_event("d2h", "down", 1, 350, 450));
  trace.timelines.push_back(std::move(tl));
  return trace;
}

const obs::LaneStats* find_lane(const obs::CriticalPathReport& report, std::size_t stream,
                                bool copy) {
  for (const obs::LaneStats& lane : report.lanes)
    if (lane.stream == stream && lane.copy == copy) return &lane;
  return nullptr;
}

TEST(CriticalPath, EmptyTraceYieldsEmptyReport) {
  const obs::CriticalPathReport report = obs::critical_path(obs::TraceFile{});
  EXPECT_EQ(report.makespan_ns, 0);
  EXPECT_TRUE(report.steps.empty());
  EXPECT_TRUE(report.lanes.empty());
  EXPECT_TRUE(report.gaps.empty());
}

TEST(CriticalPath, MakespanAndPathMatchHandComputation) {
  const obs::TraceFile trace = known_trace();
  const obs::CriticalPathReport report = obs::critical_path(trace);

  EXPECT_EQ(report.makespan_ns, 500);
  EXPECT_EQ(report.bounding_timeline, 0u);
  ASSERT_EQ(report.timeline_makespan_ns.size(), 1u);
  EXPECT_EQ(report.timeline_makespan_ns[0], 500);

  // The path walks B <- up <- A; "down" finishes earlier and is off-path.
  ASSERT_EQ(report.steps.size(), 3u);
  EXPECT_EQ(report.steps[0].label, "A");
  EXPECT_EQ(report.steps[1].label, "up");
  EXPECT_EQ(report.steps[2].label, "B");
  // up starts 50 ns after A completes with nothing finishing in between:
  // scheduler-attributed wait.  B starts the instant up completes.
  EXPECT_EQ(report.steps[1].wait_ns, 50);
  EXPECT_EQ(report.steps[1].wait_cause, obs::GapCause::Scheduler);
  EXPECT_EQ(report.steps[2].wait_ns, 0);
}

TEST(CriticalPath, LaneAttributionMatchesHandComputation) {
  const obs::CriticalPathReport report = obs::critical_path(known_trace());

  const obs::LaneStats* compute0 = find_lane(report, 0, false);
  ASSERT_NE(compute0, nullptr);
  EXPECT_EQ(compute0->busy_ns, 300);
  EXPECT_EQ(compute0->idle_ns, 200);
  // The (100,300] gap ends when the upload completes: waiting-on-copy.
  EXPECT_EQ(compute0->waiting_ns[static_cast<std::size_t>(obs::GapCause::Copy)], 200);

  const obs::LaneStats* copy0 = find_lane(report, 0, true);
  ASSERT_NE(copy0, nullptr);
  EXPECT_EQ(copy0->busy_ns, 150);
  EXPECT_EQ(copy0->idle_ns, 350);
  // [0,150) ends when kernel A completes (dependency); [300,500) trails.
  EXPECT_EQ(copy0->waiting_ns[static_cast<std::size_t>(obs::GapCause::Dependency)], 150);
  EXPECT_EQ(copy0->waiting_ns[static_cast<std::size_t>(obs::GapCause::Drain)], 200);

  // An event-free lane is pure drain.
  const obs::LaneStats* compute1 = find_lane(report, 1, false);
  ASSERT_NE(compute1, nullptr);
  EXPECT_EQ(compute1->busy_ns, 0);
  EXPECT_EQ(compute1->idle_ns, 500);
  EXPECT_EQ(compute1->waiting_ns[static_cast<std::size_t>(obs::GapCause::Drain)], 500);
}

TEST(CriticalPath, OverlapIsIntersectionOfComputeAndCopyBusyTime) {
  const obs::CriticalPathReport report = obs::critical_path(known_trace());
  EXPECT_EQ(report.compute_busy_ns, 300);
  EXPECT_EQ(report.copy_busy_ns, 250);
  // Only "down" [350,450) runs under compute ("B" [300,500)).
  EXPECT_EQ(report.overlap_ns, 100);
  EXPECT_DOUBLE_EQ(report.overlap_fraction(), 100.0 / 250.0);
}

TEST(CriticalPath, CompositionSumsToMakespanAndGapsSumToIdle) {
  const obs::CriticalPathReport report = obs::critical_path(known_trace());

  std::int64_t composed = 0;
  for (const auto& [label, ns] : report.composition) composed += ns;
  EXPECT_EQ(composed, report.makespan_ns);

  for (const obs::LaneStats& lane : report.lanes) {
    std::int64_t gap_total = 0;
    for (const obs::IdleGap& gap : report.gaps)
      if (gap.timeline == lane.timeline && gap.stream == lane.stream && gap.copy == lane.copy)
        gap_total += gap.end_ns - gap.start_ns;
    EXPECT_EQ(gap_total, lane.idle_ns) << "stream " << lane.stream << " copy " << lane.copy;
    const std::int64_t attributed =
        std::accumulate(lane.waiting_ns.begin(), lane.waiting_ns.end(), std::int64_t{0});
    EXPECT_EQ(attributed, lane.idle_ns);
  }
}

TEST(CriticalPath, AllReduceReleasesAreAttributedSeparately) {
  obs::TraceFile trace;
  trace.schema = std::string(obs::kTraceSchema);
  obs::TraceFileTimeline tl;
  tl.label = "node0";
  tl.streams = 1;
  tl.events.push_back(make_event("kernel", "step", 0, 0, 100));
  tl.events.push_back(make_event("d2h", "mu ring all-reduce", 0, 100, 200));
  tl.events.push_back(make_event("kernel", "next step", 0, 200, 300));
  trace.timelines.push_back(std::move(tl));

  const obs::CriticalPathReport report = obs::critical_path(trace);
  const obs::LaneStats* compute = find_lane(report, 0, false);
  ASSERT_NE(compute, nullptr);
  // The (100,200] compute gap is released by the all-reduce, which must be
  // classified as AllReduce, not generic Copy, despite living on the copy
  // lane.
  EXPECT_EQ(compute->waiting_ns[static_cast<std::size_t>(obs::GapCause::AllReduce)], 100);
  EXPECT_EQ(compute->waiting_ns[static_cast<std::size_t>(obs::GapCause::Copy)], 0);
}

TEST(CriticalPath, ReportAndJsonAreDeterministic) {
  const obs::TraceFile trace = known_trace();
  const obs::CriticalPathReport first = obs::critical_path(trace);
  const obs::CriticalPathReport second = obs::critical_path(trace);
  EXPECT_EQ(first, second);
  EXPECT_EQ(obs::critical_path_to_json(first, trace), obs::critical_path_to_json(second, trace));
  EXPECT_NE(obs::critical_path_to_json(first, trace).find("kpm.critical_path/1"),
            std::string::npos);
}

}  // namespace
