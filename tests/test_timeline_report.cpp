// Tests for the timeline pretty-printer.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/timeline_report.hpp"

namespace {

using namespace gpusim;

class Burn final : public Kernel {
 public:
  const char* name() const override { return "burn_kernel"; }
  void block_phase(int, BlockContext& b) override {
    if (b.bid() == 0) b.flop(1e9);
  }
};

TEST(TimelineReport, MentionsEveryEventKind) {
  Device dev(DeviceSpec::tesla_c2050());
  auto buf = dev.alloc<double>(64, "test buffer");
  std::vector<double> host(64, 1.0);
  dev.copy_to_device<double>(host, buf, "upload");
  Burn k;
  ExecConfig cfg;
  cfg.grid = Dim3{64};
  cfg.block = Dim3{128};
  dev.launch(cfg, k);
  dev.copy_to_host<double>(buf, host, "download");

  const std::string text = timeline_to_text(dev);
  EXPECT_NE(text.find("alloc"), std::string::npos);
  EXPECT_NE(text.find("h2d"), std::string::npos);
  EXPECT_NE(text.find("d2h"), std::string::npos);
  EXPECT_NE(text.find("burn_kernel"), std::string::npos);
  EXPECT_NE(text.find("upload"), std::string::npos);
  EXPECT_NE(text.find("-bound"), std::string::npos);
}

TEST(TimelineReport, SummaryLineReportsOverlap) {
  Device dev(DeviceSpec::tesla_c2050());
  const StreamId s1 = dev.create_stream();
  Burn k;
  ExecConfig cfg;
  cfg.grid = Dim3{64};
  cfg.block = Dim3{128};
  dev.launch(cfg, k, 1.0, 0);
  dev.launch(cfg, k, 1.0, s1);
  const std::string line = timeline_summary_line(dev);
  EXPECT_NE(line.find("2 events"), std::string::npos);
  // Two equal kernels fully overlapped: ~50%.
  EXPECT_NE(line.find("50.0% overlapped"), std::string::npos) << line;
}

TEST(TimelineReport, EmptyTimelineIsWellFormed) {
  Device dev(DeviceSpec::tesla_c2050());
  EXPECT_NE(timeline_summary_line(dev).find("0 events"), std::string::npos);
  EXPECT_FALSE(timeline_to_text(dev).empty());
}

}  // namespace
