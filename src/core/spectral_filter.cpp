#include "core/spectral_filter.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "core/chebyshev.hpp"
#include "linalg/vector_ops.hpp"
#include "rng/distributions.hpp"

namespace kpm::core {

std::vector<double> filter_coefficients(double energy,
                                        const linalg::SpectralTransform& transform,
                                        const FilterOptions& options) {
  KPM_REQUIRE(options.num_moments >= 2, "filter_coefficients: need at least two moments");
  const double x0 = transform.to_unit(energy);
  KPM_REQUIRE(x0 > -1.0 && x0 < 1.0,
              "filter_coefficients: energy outside the rescaled spectrum interval");

  const auto g = damping_coefficients(options.kernel, options.num_moments,
                                      options.lorentz_lambda);
  std::vector<double> t(options.num_moments);
  chebyshev_t_all(x0, t);
  std::vector<double> c(options.num_moments);
  const double weight = 1.0 / (std::numbers::pi * std::sqrt(1.0 - x0 * x0));
  for (std::size_t n = 0; n < c.size(); ++n)
    c[n] = (n == 0 ? 1.0 : 2.0) * g[n] * t[n] * weight;
  return c;
}

void apply_spectral_filter(const linalg::MatrixOperator& h_tilde,
                           const linalg::SpectralTransform& transform, double energy,
                           std::span<const double> in, std::span<double> out,
                           const FilterOptions& options) {
  const std::size_t d = h_tilde.dim();
  KPM_REQUIRE(in.size() == d && out.size() == d, "apply_spectral_filter: dimension mismatch");
  KPM_REQUIRE(in.data() != out.data(), "apply_spectral_filter: in and out must not alias");
  const auto c = filter_coefficients(energy, transform, options);

  std::vector<double> t_prev(in.begin(), in.end());  // T_0 |in>
  std::vector<double> t_cur(d), t_next(d);
  for (std::size_t i = 0; i < d; ++i) out[i] = c[0] * t_prev[i];

  h_tilde.multiply(t_prev, t_cur);  // T_1 |in>
  for (std::size_t i = 0; i < d; ++i) out[i] += c[1] * t_cur[i];

  for (std::size_t n = 2; n < c.size(); ++n) {
    h_tilde.multiply(t_cur, t_next);
    linalg::chebyshev_combine(t_next, t_prev, t_next);
    for (std::size_t i = 0; i < d; ++i) out[i] += c[n] * t_next[i];
    std::swap(t_prev, t_cur);
    std::swap(t_cur, t_next);
  }
}

FilteredStateReport filter_random_state(const linalg::MatrixOperator& h,
                                        const linalg::MatrixOperator& h_tilde,
                                        const linalg::SpectralTransform& transform,
                                        double energy, std::uint64_t seed,
                                        std::uint64_t instance, const FilterOptions& options) {
  const std::size_t d = h.dim();
  KPM_REQUIRE(h_tilde.dim() == d, "filter_random_state: operator dimensions differ");

  std::vector<double> r(d), psi(d);
  for (std::size_t i = 0; i < d; ++i)
    r[i] = rng::draw_random_element(rng::RandomVectorKind::Rademacher, seed, instance, i);
  apply_spectral_filter(h_tilde, transform, energy, r, psi, options);

  FilteredStateReport report;
  report.norm = linalg::nrm2(psi);
  KPM_REQUIRE(report.norm > 0.0, "filter_random_state: filter annihilated the state");
  linalg::scale(1.0 / report.norm, psi);

  std::vector<double> hpsi(d), h2psi(d);
  h.multiply(psi, hpsi);
  report.energy_mean = linalg::dot(psi, hpsi);
  h.multiply(hpsi, h2psi);
  const double h2 = linalg::dot(psi, h2psi);
  report.energy_spread = std::sqrt(std::max(0.0, h2 - report.energy_mean * report.energy_mean));
  return report;
}

}  // namespace kpm::core
