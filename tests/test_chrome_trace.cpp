// Chrome-trace exporter tests: the emitted document must be valid JSON,
// every per-track event sequence must be monotonic and non-overlapping
// (streams serialize their work; the copy engine is its own lane), the
// deterministic projection must be byte-identical across thread counts and
// repeated runs, and the histogram section must round-trip through the
// kpm.obs.report/1 schema.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/moments_cluster.hpp"
#include "core/moments_cpu.hpp"
#include "core/moments_gpu_chunked.hpp"
#include "lattice/decompose.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace {

using namespace kpm;

linalg::CrsMatrix chain_operator(std::size_t sites) {
  const auto lat = lattice::HypercubicLattice::chain(sites);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw(h);
  return linalg::rescale(h, linalg::make_spectral_transform(raw));
}

core::MomentParams golden_params() {
  core::MomentParams params;
  params.num_moments = 16;
  params.random_vectors = 2;
  params.realizations = 2;
  params.seed = 7;
  return params;
}

/// Runs the chunked GPU engine under a fresh report and returns it.
obs::Report gpu_report() {
  const auto h_tilde = chain_operator(32);
  linalg::MatrixOperator op(h_tilde);
  obs::Report report;
  report.label = "trace-test";
  {
    obs::Collect collect(report);
    core::ChunkedGpuMomentEngine engine;
    (void)engine.compute(op, golden_params());
  }
  return report;
}

TEST(ChromeTrace, EmitsValidJsonWithExpectedTracks) {
  const obs::Report report = gpu_report();
  const std::string trace = obs::to_chrome_trace(report);

  const obs::JsonValue doc = obs::parse_json(trace);
  const obs::JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, obs::JsonValue::Kind::Array);
  ASSERT_FALSE(events.array.empty());

  bool host_process = false, device_process = false;
  bool stream0 = false, stream1 = false, copy_lane = false;
  for (const obs::JsonValue& ev : events.array) {
    if (ev.at("ph").string != "M") continue;
    const std::string& meta = ev.at("name").string;
    if (meta != "process_name" && meta != "thread_name") continue;  // e.g. kpm_timeline
    const std::string& name = ev.at("args").at("name").string;
    if (meta == "process_name") {
      host_process |= name.rfind("host:", 0) == 0;
      device_process |= name.rfind("gpusim:", 0) == 0;
    } else {
      stream0 |= name == "stream 0 compute";
      stream1 |= name == "stream 1 compute";
      copy_lane |= name == "stream 0 copy";
    }
  }
  EXPECT_TRUE(host_process);
  EXPECT_TRUE(device_process);
  EXPECT_TRUE(stream0);
  EXPECT_TRUE(stream1) << "chunked engine with overlap must expose a second stream track";
  EXPECT_TRUE(copy_lane);
}

TEST(ChromeTrace, PerTrackEventsAreMonotonicAndNonOverlapping) {
  const obs::Report report = gpu_report();
  const obs::JsonValue doc = obs::parse_json(obs::to_chrome_trace(report));

  // Flat "X" events per (pid, tid) — device lanes serialize their work, so
  // within a track each event must start at or after the previous one ends.
  // The host track nests spans, so only device pids (>= 1) are checked.
  std::map<std::pair<double, double>, double> track_cursor;
  std::size_t device_events = 0;
  for (const obs::JsonValue& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").string != "X") continue;
    const double pid = ev.at("pid").number;
    if (pid < 1.0) continue;
    const double tid = ev.at("tid").number;
    const double ts = ev.at("ts").number;
    const double dur = ev.at("dur").number;
    auto [it, inserted] = track_cursor.try_emplace({pid, tid}, ts + dur);
    if (!inserted) {
      EXPECT_GE(ts, it->second - 1e-9)
          << "overlapping events on pid " << pid << " tid " << tid;
      it->second = ts + dur;
    }
    EXPECT_GE(dur, 0.0);
    ++device_events;
  }
  EXPECT_GT(device_events, 0u);
}

TEST(ChromeTrace, DeterministicProjectionIsByteIdenticalAcrossRuns) {
  const obs::ChromeTraceOptions modeled_only{.include_measured = false};
  const std::string first = obs::to_chrome_trace(gpu_report(), modeled_only);
  const std::string second = obs::to_chrome_trace(gpu_report(), modeled_only);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("gpusim:"), std::string::npos);
}

TEST(ChromeTrace, DeterministicProjectionIsByteIdenticalAcrossThreadCounts) {
  // CPU-parallel runs have no modeled tracks, so the projection reduces to
  // the counter events — which the sharded sinks must keep bit-identical
  // at any thread count.
  const auto h_tilde = chain_operator(32);
  linalg::MatrixOperator op(h_tilde);
  const obs::ChromeTraceOptions modeled_only{.include_measured = false};

  std::string reference;
  for (int threads : {1, 2, 4, 7}) {
    obs::Report report;
    report.label = "trace-threads";
    {
      obs::Collect collect(report);
      core::CpuParallelMomentEngine engine(threads);
      (void)engine.compute(op, golden_params());
    }
    const std::string trace = obs::to_chrome_trace(report, modeled_only);
    if (reference.empty()) {
      reference = trace;
      EXPECT_NE(trace.find("\"ph\": \"C\""), std::string::npos);
    } else {
      EXPECT_EQ(trace, reference) << "threads=" << threads;
    }
  }
}

TEST(ChromeTrace, StampsSchemaAndExporterMetadata) {
  const obs::JsonValue doc = obs::parse_json(obs::to_chrome_trace(gpu_report()));
  const obs::JsonValue& meta = doc.at("metadata");
  EXPECT_EQ(meta.at("schema").string, std::string(obs::kTraceSchema));
  EXPECT_EQ(meta.at("exporter").string, std::string(obs::kTraceExporter));
  EXPECT_EQ(meta.at("label").string, "trace-test");
  EXPECT_TRUE(meta.at("include_measured").boolean);
  const obs::JsonValue modeled =
      obs::parse_json(obs::to_chrome_trace(gpu_report(), {.include_measured = false}));
  EXPECT_FALSE(modeled.at("metadata").at("include_measured").boolean);
}

TEST(ChromeTrace, ClusterModeledProjectionIsByteIdenticalAcrossThreadCounts) {
  // The cluster engine exposes one modeled timeline ("process") per node;
  // the modeled projection of that per-node layout must be bit-identical at
  // any host thread count — it is the input contract for tools/tracediff.
  const auto lat = lattice::HypercubicLattice::cubic(4, 4, 4);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw(h);
  const auto ht = linalg::rescale(h, linalg::make_spectral_transform(raw));
  const linalg::MatrixOperator op(ht);
  const obs::ChromeTraceOptions modeled_only{.include_measured = false};

  std::string reference;
  for (int threads : {1, 2, 4, 7}) {
    obs::Report report;
    report.label = "trace-cluster";
    {
      obs::Collect collect(report);
      core::ClusterEngineConfig cfg;
      cfg.decomposition = lattice::slab_decomposition(lat, 3);
      cfg.threads = threads;
      core::ClusterMomentEngine engine(cfg);
      (void)engine.compute(op, golden_params());
    }
    const std::string trace = obs::to_chrome_trace(report, modeled_only);
    if (reference.empty()) {
      reference = trace;
      // Every per-node timeline must appear as its own process track.
      for (const char* node : {"node0", "node1", "node2"})
        EXPECT_NE(trace.find(node), std::string::npos) << node;
    } else {
      EXPECT_EQ(trace, reference) << "threads=" << threads;
    }
  }
}

TEST(ChromeTrace, HistogramSectionRoundTripsThroughReportSchema) {
  const obs::Report report = gpu_report();
  ASSERT_FALSE(report.histograms.empty());

  const obs::JsonValue doc = obs::parse_json(obs::to_json(report));
  EXPECT_EQ(doc.at("schema").string, "kpm.obs.report/1");
  const obs::HistogramSet restored = obs::histograms_from_json(doc);
  EXPECT_EQ(restored, report.histograms);
}

TEST(ChromeTrace, ReportJsonCarriesTimelineSummaries) {
  const obs::Report report = gpu_report();
  ASSERT_FALSE(report.timelines.empty());

  const obs::JsonValue doc = obs::parse_json(obs::to_json(report));
  const obs::JsonValue& timelines = doc.at("timelines");
  ASSERT_EQ(timelines.kind, obs::JsonValue::Kind::Array);
  ASSERT_EQ(timelines.array.size(), report.timelines.size());
  const obs::JsonValue& first = timelines.array.front();
  EXPECT_GT(first.at("kernel_seconds").number, 0.0);
  EXPECT_GT(first.at("critical_path_seconds").number, 0.0);
  EXPECT_GT(first.at("events").number, 0.0);
}

}  // namespace
