// Blocked (SpMMV) recursion tests: every kernel and every engine must be
// BIT-identical to its per-vector twin for any block width, on CRS and
// SELL-C-sigma storage, at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/error.hpp"
#include "core/conductivity.hpp"
#include "core/estimator_stats.hpp"
#include "core/ldos.hpp"
#include "core/moments_cpu.hpp"
#include "core/moments_f32.hpp"
#include "core/moments_hermitian.hpp"
#include "lattice/current.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "lattice/peierls.hpp"
#include "linalg/crs_matrix.hpp"
#include "linalg/fused_kernels.hpp"
#include "linalg/operator.hpp"
#include "linalg/sell_matrix.hpp"
#include "linalg/spectral_transform.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"

namespace {

using kpm::core::MomentParams;
using kpm::linalg::CrsMatrix;
using kpm::linalg::MatrixOperator;
using kpm::linalg::SellMatrix;
using kpm::linalg::TripletBuilder;

double wiggle(std::size_t i) {
  return std::sin(static_cast<double>(i) * 2.414213562373095 + 0.5) * 1.25;
}

/// Sparse square matrix with irregular row lengths (some rows empty).
CrsMatrix sparse_example(std::size_t d) {
  TripletBuilder b(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    if (r % 5 == 4) continue;
    b.add(r, r, wiggle(r + 1));
    b.add(r, (r * 3 + 1) % d, wiggle(2 * r + 3));
    if (r % 2 == 0) b.add(r, (r + 7) % d, wiggle(4 * r + 1));
  }
  return b.build();
}

CrsMatrix cube_h_tilde(std::size_t edge = 4) {
  const auto lat = kpm::lattice::HypercubicLattice::cubic(edge, edge, edge);
  const auto h = kpm::lattice::build_tight_binding_crs(lat);
  MatrixOperator op(h);
  return kpm::linalg::rescale(h, kpm::linalg::make_spectral_transform(op));
}

/// x_blk[i*B + j] = member_j[i] — the interleaved layout of the kernels.
std::vector<double> interleave(const std::vector<std::vector<double>>& members) {
  const std::size_t b = members.size(), d = members[0].size();
  std::vector<double> blk(d * b);
  for (std::size_t j = 0; j < b; ++j)
    for (std::size_t i = 0; i < d; ++i) blk[i * b + j] = members[j][i];
  return blk;
}

MomentParams small_params(std::size_t n, std::size_t r, std::size_t s) {
  MomentParams p;
  p.num_moments = n;
  p.random_vectors = r;
  p.realizations = s;
  return p;
}

// ---------------------------------------------------------------------------
// Kernel level.

TEST(SpmmvKernels, BlockDotMatchesPerMemberDot) {
  const std::size_t d = 29;
  for (const std::size_t b : {1u, 2u, 3u, 4u, 8u}) {
    std::vector<std::vector<double>> xs(b, std::vector<double>(d)), ys = xs;
    for (std::size_t j = 0; j < b; ++j)
      for (std::size_t i = 0; i < d; ++i) {
        xs[j][i] = wiggle(i * b + j + 1);
        ys[j][i] = wiggle(2 * i * b + 3 * j + 5);
      }
    const auto xb = interleave(xs), yb = interleave(ys);
    std::vector<double> dots(b);
    kpm::linalg::block_dot(xb, yb, b, dots);
    for (std::size_t j = 0; j < b; ++j)
      EXPECT_EQ(dots[j], kpm::linalg::dot(xs[j], ys[j])) << "B=" << b << " member " << j;
  }
}

TEST(SpmmvKernels, MultiplyMatchesPerVectorBitwise) {
  const auto crs = sparse_example(23);
  const auto sell = SellMatrix::from_crs(crs, 4, 8);
  const auto dense = crs.to_dense();
  const std::size_t d = crs.rows();
  for (const std::size_t b : {1u, 2u, 3u, 5u, 8u}) {
    std::vector<std::vector<double>> xs(b, std::vector<double>(d));
    for (std::size_t j = 0; j < b; ++j)
      for (std::size_t i = 0; i < d; ++i) xs[j][i] = wiggle(i * b + 7 * j + 2);
    const auto xb = interleave(xs);
    std::vector<double> expect(d);
    for (const MatrixOperator& op :
         {MatrixOperator(crs), MatrixOperator(sell), MatrixOperator(dense)}) {
      std::vector<double> yb(d * b);
      kpm::linalg::spmmv_multiply(op, b, xb, yb);
      for (std::size_t j = 0; j < b; ++j) {
        op.multiply(xs[j], expect);
        for (std::size_t i = 0; i < d; ++i)
          EXPECT_EQ(yb[i * b + j], expect[i])
              << kpm::linalg::to_string(op.storage()) << " B=" << b << " member " << j;
      }
    }
  }
}

TEST(SpmmvKernels, CombineDotMatchesPerVectorBitwise) {
  const auto crs = sparse_example(23);
  const auto sell = SellMatrix::from_crs(crs, 4, 8);
  const std::size_t d = crs.rows();
  for (const std::size_t b : {1u, 2u, 4u, 7u}) {
    std::vector<std::vector<double>> prevs(b, std::vector<double>(d)), prev2s = prevs,
                                     r0s = prevs;
    for (std::size_t j = 0; j < b; ++j)
      for (std::size_t i = 0; i < d; ++i) {
        prevs[j][i] = wiggle(i * b + j + 2);
        prev2s[j][i] = wiggle(3 * (i * b + j) + 5);
        r0s[j][i] = wiggle(7 * (i * b + j) + 1);
      }
    const auto prev_b = interleave(prevs), prev2_b = interleave(prev2s), r0_b = interleave(r0s);
    for (const MatrixOperator& op : {MatrixOperator(crs), MatrixOperator(sell)}) {
      std::vector<double> next_b(d * b), dots(b), expect_next(d);
      kpm::linalg::spmmv_combine_dot(op, b, prev_b, prev2_b, r0_b, next_b, dots);
      for (std::size_t j = 0; j < b; ++j) {
        const double mu =
            kpm::linalg::spmv_combine_dot(op, prevs[j], prev2s[j], r0s[j], expect_next);
        EXPECT_EQ(dots[j], mu) << "B=" << b << " member " << j;
        for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(next_b[i * b + j], expect_next[i]);
      }
    }
  }
}

TEST(SpmmvKernels, CombineDot2MatchesPerVectorBitwise) {
  const auto crs = sparse_example(23);
  const auto sell = SellMatrix::from_crs(crs, 4, 8);
  const std::size_t d = crs.rows();
  const std::size_t b = 3;
  std::vector<std::vector<double>> prevs(b, std::vector<double>(d)), prev2s = prevs;
  for (std::size_t j = 0; j < b; ++j)
    for (std::size_t i = 0; i < d; ++i) {
      prevs[j][i] = wiggle(5 * (i * b + j) + 2);
      prev2s[j][i] = wiggle(11 * (i * b + j) + 3);
    }
  const auto prev_b = interleave(prevs), prev2_b = interleave(prev2s);
  for (const MatrixOperator& op : {MatrixOperator(crs), MatrixOperator(sell)}) {
    std::vector<double> next_b(d * b), expect_next(d);
    std::vector<kpm::linalg::PairedDots> dots(b);
    kpm::linalg::spmmv_combine_dot2(op, b, prev_b, prev2_b, next_b, dots);
    for (std::size_t j = 0; j < b; ++j) {
      const auto expect = kpm::linalg::spmv_combine_dot2(op, prevs[j], prev2s[j], expect_next);
      EXPECT_EQ(dots[j].next_prev, expect.next_prev) << "member " << j;
      EXPECT_EQ(dots[j].prev_prev, expect.prev_prev) << "member " << j;
      for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(next_b[i * b + j], expect_next[i]);
    }
  }
}

TEST(SpmmvKernels, ComplexCombineDotReMatchesPerVectorBitwise) {
  const auto h = kpm::lattice::build_square_flux_crs(4, 4, 0.25);
  const kpm::linalg::SpectralTransform t(h.gershgorin(), 0.02);
  const auto ht = kpm::linalg::rescale(h, t);
  const std::size_t d = ht.rows();
  const std::size_t b = 3;
  using Z = std::complex<double>;
  std::vector<std::vector<Z>> prevs(b, std::vector<Z>(d)), prev2s = prevs, r0s = prevs;
  for (std::size_t j = 0; j < b; ++j)
    for (std::size_t i = 0; i < d; ++i) {
      prevs[j][i] = Z(wiggle(i * b + j + 2), wiggle(i * b + j + 9));
      prev2s[j][i] = Z(wiggle(3 * (i * b + j) + 5), wiggle(i * b + j + 4));
      r0s[j][i] = Z(wiggle(7 * (i * b + j) + 1), wiggle(i * b + j + 6));
    }
  std::vector<Z> prev_b(d * b), prev2_b(d * b), r0_b(d * b), next_b(d * b), expect_next(d);
  for (std::size_t j = 0; j < b; ++j)
    for (std::size_t i = 0; i < d; ++i) {
      prev_b[i * b + j] = prevs[j][i];
      prev2_b[i * b + j] = prev2s[j][i];
      r0_b[i * b + j] = r0s[j][i];
    }
  std::vector<double> dots(b);
  kpm::linalg::spmmv_combine_dot_re(ht, b, prev_b, prev2_b, r0_b, next_b, dots);
  for (std::size_t j = 0; j < b; ++j) {
    const double mu =
        kpm::linalg::spmv_combine_dot_re(ht, prevs[j], prev2s[j], r0s[j], expect_next);
    EXPECT_EQ(dots[j], mu) << "member " << j;
    for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(next_b[i * b + j], expect_next[i]);
  }
}

TEST(SpmmvKernels, RejectsAliasedAndMalformedBlocks) {
  const auto crs = sparse_example(12);
  const std::size_t d = 12, b = 2;
  MatrixOperator op(crs);
  std::vector<double> prev(d * b, 1.0), prev2(d * b, 1.0), r0(d * b, 1.0), next(d * b),
      dots(b);
  // Aliased outputs must throw (KPM_REQUIRE regressions).
  EXPECT_THROW(kpm::linalg::spmmv_combine_dot(op, b, prev, prev2, r0, prev, dots), kpm::Error);
  EXPECT_THROW(kpm::linalg::spmmv_combine_dot(op, b, prev, prev2, r0, prev2, dots), kpm::Error);
  EXPECT_THROW(kpm::linalg::spmmv_multiply(op, b, prev, prev), kpm::Error);
  // Wrong block-span or dots sizes must throw.
  std::vector<double> short_vec(d * b - 1, 1.0), short_dots(b - 1);
  EXPECT_THROW(kpm::linalg::spmmv_combine_dot(op, b, short_vec, prev2, r0, next, dots),
               kpm::Error);
  EXPECT_THROW(kpm::linalg::spmmv_combine_dot(op, b, prev, prev2, r0, next, short_dots),
               kpm::Error);
  EXPECT_THROW(kpm::linalg::spmmv_multiply(op, b, short_vec, next), kpm::Error);
  // block = 0 is invalid.
  EXPECT_THROW(kpm::linalg::spmmv_multiply(op, 0, prev, next), kpm::Error);
}

// ---------------------------------------------------------------------------
// Engine level: params.block_r must not change any result bit.

TEST(BlockedEngines, ReferenceEngineIsBlockInvariant) {
  const auto crs = cube_h_tilde();
  const auto sell = SellMatrix::from_crs(crs, 8, 32);
  auto params = small_params(33, 6, 1);  // odd N, block does not divide instances
  kpm::core::CpuMomentEngine engine;
  params.block_r = 1;
  const auto reference = engine.compute(MatrixOperator(crs), params);
  for (const std::size_t b : {2u, 3u, 4u, 6u, 8u}) {
    params.block_r = b;
    for (const MatrixOperator& op : {MatrixOperator(crs), MatrixOperator(sell)}) {
      const auto blocked = engine.compute(op, params);
      ASSERT_EQ(blocked.mu.size(), reference.mu.size());
      for (std::size_t k = 0; k < reference.mu.size(); ++k)
        EXPECT_EQ(blocked.mu[k], reference.mu[k])
            << kpm::linalg::to_string(op.storage()) << " B=" << b << " k=" << k;
    }
  }
}

TEST(BlockedEngines, PairedEngineIsBlockInvariant) {
  const auto crs = cube_h_tilde();
  auto params = small_params(32, 5, 1);
  kpm::core::CpuPairedMomentEngine engine;
  params.block_r = 1;
  const auto reference = engine.compute(MatrixOperator(crs), params);
  for (const std::size_t b : {2u, 3u, 5u}) {
    params.block_r = b;
    const auto blocked = engine.compute(MatrixOperator(crs), params);
    for (std::size_t k = 0; k < reference.mu.size(); ++k)
      EXPECT_EQ(blocked.mu[k], reference.mu[k]) << "B=" << b << " k=" << k;
  }
}

TEST(BlockedEngines, ParallelEngineIsBlockAndThreadInvariant) {
  const auto crs = cube_h_tilde();
  auto params = small_params(24, 10, 1);
  params.block_r = 1;
  kpm::core::CpuMomentEngine serial;
  const auto reference = serial.compute(MatrixOperator(crs), params);
  params.block_r = 3;  // 10 instances -> groups of 3,3,3,1
  for (const int threads : {1, 2, 4, 7}) {
    kpm::core::CpuParallelMomentEngine engine(threads);
    const auto blocked = engine.compute(MatrixOperator(crs), params);
    for (std::size_t k = 0; k < reference.mu.size(); ++k)
      EXPECT_EQ(blocked.mu[k], reference.mu[k]) << "T=" << threads << " k=" << k;
  }
}

TEST(BlockedEngines, F32EngineIsBlockInvariant) {
  const auto crs = cube_h_tilde();
  auto params = small_params(24, 5, 1);
  kpm::core::CpuMomentEngineF32 engine;
  params.block_r = 1;
  const auto reference = engine.compute(MatrixOperator(crs), params);
  for (const std::size_t b : {2u, 5u}) {
    params.block_r = b;
    const auto blocked = engine.compute(MatrixOperator(crs), params);
    for (std::size_t k = 0; k < reference.mu.size(); ++k)
      EXPECT_EQ(blocked.mu[k], reference.mu[k]) << "B=" << b << " k=" << k;
  }
}

TEST(BlockedEngines, HermitianEngineIsBlockInvariant) {
  const auto h = kpm::lattice::build_square_flux_crs(4, 4, 0.25);
  const kpm::linalg::SpectralTransform t(h.gershgorin(), 0.02);
  const auto ht = kpm::linalg::rescale(h, t);
  auto params = small_params(16, 5, 1);
  kpm::core::HermitianMomentEngine engine;
  params.block_r = 1;
  const auto reference = engine.compute(ht, params);
  for (const std::size_t b : {2u, 5u}) {
    params.block_r = b;
    const auto blocked = engine.compute(ht, params);
    for (std::size_t k = 0; k < reference.mu.size(); ++k)
      EXPECT_EQ(blocked.mu[k], reference.mu[k]) << "B=" << b << " k=" << k;
  }
}

TEST(BlockedEngines, DeterministicTracesAreBlockInvariant) {
  const auto crs = cube_h_tilde(3);
  MatrixOperator op(crs);
  const auto reference = kpm::core::deterministic_trace_moments(op, 12, 1);
  for (const std::size_t b : {2u, 5u, 27u, 32u}) {
    const auto blocked = kpm::core::deterministic_trace_moments(op, 12, b);
    for (std::size_t k = 0; k < reference.size(); ++k)
      EXPECT_EQ(blocked[k], reference[k]) << "B=" << b << " k=" << k;
  }

  const auto h = kpm::lattice::build_square_flux_crs(4, 4, 0.25);
  const kpm::linalg::SpectralTransform t(h.gershgorin(), 0.02);
  const auto ht = kpm::linalg::rescale(h, t);
  const auto ref_z = kpm::core::deterministic_trace_moments_hermitian(ht, 10, 1);
  for (const std::size_t b : {3u, 16u}) {
    const auto blocked = kpm::core::deterministic_trace_moments_hermitian(ht, 10, b);
    for (std::size_t k = 0; k < ref_z.size(); ++k)
      EXPECT_EQ(blocked[k], ref_z[k]) << "B=" << b << " k=" << k;
  }
}

TEST(BlockedEngines, EstimatorStatisticsAreBlockInvariant) {
  const auto crs = cube_h_tilde(3);
  MatrixOperator op(crs);
  auto params = small_params(12, 4, 2);
  params.block_r = 1;
  const auto reference = kpm::core::estimate_moment_statistics(op, params, 7);
  for (const std::size_t b : {2u, 3u, 7u}) {
    params.block_r = b;
    const auto blocked = kpm::core::estimate_moment_statistics(op, params, 7);
    for (std::size_t k = 0; k < reference.mean.size(); ++k) {
      EXPECT_EQ(blocked.mean[k], reference.mean[k]) << "B=" << b << " k=" << k;
      EXPECT_EQ(blocked.standard_error[k], reference.standard_error[k]);
    }
  }
}

TEST(BlockedEngines, ConductivityIsBlockInvariant) {
  const auto lat = kpm::lattice::HypercubicLattice::square(4, 4);
  const auto h = kpm::lattice::build_tight_binding_crs(lat);
  MatrixOperator raw(h);
  const auto ht = kpm::linalg::rescale(h, kpm::linalg::make_spectral_transform(raw));
  const auto a = kpm::lattice::build_current_operator_crs(lat, 0);
  MatrixOperator h_op(ht), a_op(a);
  auto params = small_params(8, 5, 1);
  params.block_r = 1;
  const auto reference = kpm::core::conductivity_moments(h_op, a_op, params);
  for (const std::size_t b : {2u, 3u, 5u}) {
    params.block_r = b;
    const auto blocked = kpm::core::conductivity_moments(h_op, a_op, params);
    for (std::size_t k = 0; k < reference.mu.size(); ++k)
      EXPECT_EQ(blocked.mu[k], reference.mu[k]) << "B=" << b << " k=" << k;
  }
}

// The blocked fused kernels must keep metering the exact fused-step model:
// FusedBytes for one blocked call equals fused_step_workload(op, dots, B)
// bytes (test_golden_metrics checks the scalar path byte-for-byte).
TEST(BlockedEngines, BlockedFusedMeteringMatchesWorkloadModel) {
  const auto crs = cube_h_tilde(3);
  MatrixOperator op(crs);
  const std::size_t d = op.dim(), b = 4;
  std::vector<double> prev(d * b), prev2(d * b), r0(d * b), next(d * b), dots(b);
  for (std::size_t i = 0; i < d * b; ++i) {
    prev[i] = wiggle(i + 1);
    prev2[i] = wiggle(2 * i + 3);
    r0[i] = wiggle(3 * i + 2);
  }
  kpm::obs::Report report;
  {
    kpm::obs::Collect collect(report);
    kpm::linalg::spmmv_combine_dot(op, b, prev, prev2, r0, next, dots);
  }
  const auto step = kpm::core::fused_step_workload(op, 1, b);
  EXPECT_EQ(report.counters.get(kpm::obs::Counter::FusedBytes), step.bytes_streamed);
  EXPECT_EQ(report.counters.get(kpm::obs::Counter::Flops), step.flops);
  EXPECT_EQ(report.counters.get(kpm::obs::Counter::FusedCalls), 1.0);
  EXPECT_EQ(report.counters.get(kpm::obs::Counter::SpmvCalls), static_cast<double>(b));
  EXPECT_EQ(report.counters.get(kpm::obs::Counter::DotCalls), static_cast<double>(b));
}

}  // namespace
