// Unit tests of the checker's shadow state: interval arithmetic, the
// stream vector clocks, uninitialized-memory seeding (h2d/memset), default
// CheckConfig adoption, the Memset timeline event, the obs report
// "sections" extension, and the read-only GlobalView hard-fail (satellite
// regression: the guard must hold in every build mode, not just asserts).
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "check/checker.hpp"
#include "common/error.hpp"
#include "gpusim/device.hpp"
#include "gpusim/view.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace {

using namespace kpm;
using check::Checker;
using check::IntervalSet;
using check::Kind;
using gpusim::AccessPattern;
using gpusim::Device;
using gpusim::GlobalView;

Device make_device() { return Device(gpusim::DeviceSpec::tesla_c2050()); }

// A kernel writing its whole buffer through a view.
class WriterKernel final : public gpusim::Kernel {
 public:
  explicit WriterKernel(gpusim::DeviceBuffer<double>& buf) : buf_(&buf) {}
  [[nodiscard]] const char* name() const override { return "writer"; }
  void block_phase(int /*phase*/, gpusim::BlockContext& block) override {
    GlobalView<double> v(*buf_, AccessPattern::Coalesced, block.counters());
    for (double& x : v.bulk_store(0, v.size())) x = 2.0;
  }

 private:
  gpusim::DeviceBuffer<double>* buf_;
};

// A kernel reading its whole buffer through a view.
class ReaderKernel final : public gpusim::Kernel {
 public:
  explicit ReaderKernel(const gpusim::DeviceBuffer<double>& buf) : buf_(&buf) {}
  [[nodiscard]] const char* name() const override { return "reader"; }
  void block_phase(int /*phase*/, gpusim::BlockContext& block) override {
    GlobalView<double> v(*buf_, AccessPattern::Coalesced, block.counters());
    double sum = 0.0;
    for (double x : v.bulk_load(0, v.size())) sum += x;
    (void)sum;
  }

 private:
  const gpusim::DeviceBuffer<double>* buf_;
};

gpusim::ExecConfig one_thread() {
  gpusim::ExecConfig cfg;
  cfg.grid = gpusim::Dim3{1};
  cfg.block = gpusim::Dim3{1};
  return cfg;
}

// ---------------------------------------------------------------- intervals

TEST(IntervalSetTest, AddCoalescesAndCovers) {
  IntervalSet set;
  set.add(0, 8);
  set.add(16, 24);
  EXPECT_TRUE(set.covers(0, 8));
  EXPECT_FALSE(set.covers(0, 9));
  EXPECT_FALSE(set.covers(8, 16));
  set.add(8, 16);  // bridges the gap
  EXPECT_TRUE(set.covers(0, 24));
  EXPECT_EQ(set.ranges().size(), 1u);
}

TEST(IntervalSetTest, FirstOverlapFindsTheIntersection) {
  IntervalSet set;
  set.add(10, 20);
  const auto hit = set.first_overlap(15, 30);
  EXPECT_EQ(hit.begin, 15u);
  EXPECT_EQ(hit.end, 20u);
  const auto miss = set.first_overlap(20, 30);
  EXPECT_EQ(miss.begin, miss.end);
}

TEST(IntervalSetTest, EmptyAndDegenerateRanges) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.covers(5, 5));  // empty range is always covered
  set.add(7, 7);                  // degenerate add is a no-op
  EXPECT_TRUE(set.empty());
}

// ------------------------------------------------------------ uninit seeding

TEST(CheckShadow, H2dSeedsInitializedMemory) {
  Checker checker;
  Device device = make_device();
  device.set_check({&checker});
  auto buf = device.alloc<double>(8, "seeded");
  const std::vector<double> host(8, 1.0);
  device.copy_to_device(std::span<const double>(host), buf);
  ReaderKernel kernel(buf);
  (void)device.launch(one_thread(), kernel);
  EXPECT_TRUE(checker.clean());
}

TEST(CheckShadow, ViewWritesSeedInitializedMemory) {
  Checker checker;
  Device device = make_device();
  device.set_check({&checker});
  auto buf = device.alloc<double>(8, "written");
  WriterKernel writer(buf);
  (void)device.launch(one_thread(), writer);
  ReaderKernel reader(buf);
  (void)device.launch(one_thread(), reader);
  EXPECT_TRUE(checker.clean());
}

TEST(CheckShadow, UnseededReadIsFlaggedOnceDespiteRepeats) {
  Checker checker;
  Device device = make_device();
  device.set_check({&checker});
  auto buf = device.alloc<double>(8, "never-seeded");
  ReaderKernel reader(buf);
  (void)device.launch(one_thread(), reader);
  (void)device.launch(one_thread(), reader);
  ASSERT_EQ(checker.findings().size(), 1u);  // deduplicated
  EXPECT_EQ(checker.findings().front().kind, Kind::UninitRead);
}

TEST(CheckShadow, BuffersAllocatedBeforeTheCheckerAreTrusted) {
  Device device = make_device();
  auto buf = device.alloc<double>(8, "pre-existing");
  Checker checker;
  device.set_check({&checker});
  ReaderKernel reader(buf);
  (void)device.launch(one_thread(), reader);
  EXPECT_TRUE(checker.clean());  // unknown buffer: no uninit claim possible
}

// ------------------------------------------------------------- stream clocks

TEST(CheckShadow, SynchronizeOrdersAllStreams) {
  Checker checker;
  Device device = make_device();
  device.set_check({&checker});
  auto buf = device.alloc<double>(8, "synced");
  device.memset(buf);
  const auto worker = device.create_stream();
  WriterKernel writer(buf);
  (void)device.launch(one_thread(), writer, 1.0, worker);
  device.synchronize();
  std::vector<double> host(8);
  device.copy_to_host(buf, std::span<double>(host), "d2h", 0);
  EXPECT_TRUE(checker.clean());
}

TEST(CheckShadow, UnorderedCrossStreamWriteWriteIsFlagged) {
  Checker checker;
  Device device = make_device();
  device.set_check({&checker});
  auto buf = device.alloc<double>(8, "contested");
  const auto worker = device.create_stream();
  WriterKernel writer(buf);
  (void)device.launch(one_thread(), writer, 1.0, 0);
  (void)device.launch(one_thread(), writer, 1.0, worker);  // no event in between
  ASSERT_FALSE(checker.findings().empty());
  EXPECT_EQ(checker.findings().front().kind, Kind::StreamHazard);
  EXPECT_NE(checker.findings().front().detail.find("prior write"), std::string::npos);
}

TEST(CheckShadow, EventChainAcrossThreeStreamsIsClean) {
  Checker checker;
  Device device = make_device();
  device.set_check({&checker});
  auto buf = device.alloc<double>(8, "chained");
  const auto s1 = device.create_stream();
  const auto s2 = device.create_stream();
  WriterKernel writer(buf);
  (void)device.launch(one_thread(), writer, 1.0, s1);
  const double done = device.record_event(s1);
  device.wait_event(s2, done);
  (void)device.launch(one_thread(), writer, 1.0, s2);  // transitively ordered
  EXPECT_TRUE(checker.clean());
}

// ------------------------------------------------- default-config adoption

TEST(CheckShadow, DevicesAdoptTheProcessDefaultCheck) {
  Checker checker;
  check::ScopedCheck scope(checker);
  Device device = make_device();  // constructed while the default is set
  EXPECT_TRUE(device.check().enabled());
  auto buf = device.alloc<double>(4, "adopted");
  ReaderKernel reader(buf);
  (void)device.launch(one_thread(), reader);
  EXPECT_FALSE(checker.findings().empty());  // uninit read seen => adopted
}

TEST(CheckShadow, DefaultCheckIsRestoredAfterScope) {
  {
    Checker checker;
    check::ScopedCheck scope(checker);
    EXPECT_TRUE(gpusim::default_check().enabled());
  }
  EXPECT_FALSE(gpusim::default_check().enabled());
}

// ------------------------------------------------------------ memset events

TEST(CheckShadow, MemsetFillsBufferAndAppendsTimelineEvent) {
  Device device = make_device();
  auto buf = device.alloc<double>(16, "zeroed");
  buf.raw()[3] = 42.0;
  device.memset(buf);
  EXPECT_EQ(buf.raw()[3], 0.0);
  const auto& timeline = device.timeline();
  ASSERT_FALSE(timeline.empty());
  EXPECT_EQ(timeline.back().kind, gpusim::TimelineEvent::Kind::Memset);
  EXPECT_EQ(timeline.back().bytes, 16 * sizeof(double));
  EXPECT_GT(timeline.back().seconds, 0.0);
  EXPECT_STREQ(gpusim::to_string(gpusim::TimelineEvent::Kind::Memset), "memset");
}

// ---------------------------------------------- read-only view (satellite)

TEST(ReadOnlyViewRegression, StoreAddAndBulkStoreHardFailInEveryBuildMode) {
  Device device = make_device();
  const auto buf = device.alloc<double>(8, "const-buffer");
  gpusim::CostCounters counters;
  GlobalView<double> view(buf, AccessPattern::Coalesced, counters);
  // KPM_REQUIRE (not KPM_ASSERT): must throw even when NDEBUG compiled the
  // asserts away — mutating a const buffer is never recoverable.
  EXPECT_THROW(view.store(0, 1.0), kpm::Error);
  EXPECT_THROW(view.add(0, 1.0), kpm::Error);
  EXPECT_THROW((void)view.bulk_store(0, 4), kpm::Error);
  EXPECT_EQ(buf.raw()[0], 0.0) << "failed store must not mutate the buffer";
}

TEST(ReadOnlyViewRegression, LoadsStillWorkThroughReadOnlyViews) {
  Device device = make_device();
  auto buf = device.alloc<double>(4, "ro");
  buf.raw()[2] = 7.0;
  const auto& const_ref = buf;
  gpusim::CostCounters counters;
  GlobalView<double> view(const_ref, AccessPattern::Coalesced, counters);
  EXPECT_EQ(view.load(2), 7.0);
  EXPECT_EQ(view.bulk_load(0, 4)[2], 7.0);
}

// ------------------------------------------------------------ obs sections

TEST(CheckShadow, CheckerJsonSectionEmbedsInObsReport) {
  Checker checker;
  Device device = make_device();
  device.set_check({&checker});
  auto buf = device.alloc<double>(4, "sectioned");
  ReaderKernel reader(buf);
  (void)device.launch(one_thread(), reader);

  obs::Report report;
  report.label = "check-section-test";
  report.sections.push_back({"check", checker.to_json_section()});
  const std::string json = obs::to_json(report);
  EXPECT_NE(json.find("\"sections\""), std::string::npos);
  EXPECT_NE(json.find("kpm.check/1"), std::string::npos);
  EXPECT_NE(json.find("uninit-read"), std::string::npos);
  // The section is valid JSON inside a valid document.
  EXPECT_NO_THROW((void)obs::parse_json(json));
}

TEST(CheckShadow, ReportWithoutSectionsOmitsTheKey) {
  obs::Report report;
  report.label = "plain";
  EXPECT_EQ(obs::to_json(report).find("\"sections\""), std::string::npos);
}

TEST(CheckShadow, FindingsTableListsEachFinding) {
  Checker checker;
  Device device = make_device();
  device.set_check({&checker});
  auto buf = device.alloc<double>(4, "tabled");
  ReaderKernel reader(buf);
  (void)device.launch(one_thread(), reader);
  ASSERT_FALSE(checker.findings().empty());
  const std::string text = checker.findings_table().to_text();
  EXPECT_NE(text.find("uninit-read"), std::string::npos);
  EXPECT_NE(text.find("tabled"), std::string::npos);
}

}  // namespace
