// Householder tridiagonalization + implicit-shift QL eigensolver.
//
// The classic O(D^3) dense symmetric eigensolver (EISPACK tred2/tql2
// lineage): reduce A to tridiagonal form with Householder reflections, then
// diagonalize the tridiagonal matrix with the implicitly shifted QL
// iteration.  Much faster than Jacobi for D >= a few hundred; used as the
// full-diagonalization DoS baseline at the paper's D = 1000 scale, and by
// the Lanczos post-processing (Ritz values of the Krylov tridiagonal).
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"

namespace kpm::diag {

/// Symmetric tridiagonal matrix in two arrays: diag[0..n), offdiag[0..n-1)
/// where offdiag[i] couples i and i+1.
struct Tridiagonal {
  std::vector<double> diag;
  std::vector<double> offdiag;

  [[nodiscard]] std::size_t dim() const noexcept { return diag.size(); }
};

/// Reduces a symmetric matrix to tridiagonal form (eigenvalues preserved).
/// Throws kpm::Error if `a` is not square/symmetric.
[[nodiscard]] Tridiagonal householder_tridiagonalize(const linalg::DenseMatrix& a);

/// Eigenvalues (ascending) of a symmetric tridiagonal matrix via implicit
/// shift QL.  Throws kpm::Error if an eigenvalue fails to converge in 50
/// iterations (practically unreachable for symmetric input).
[[nodiscard]] std::vector<double> tridiagonal_eigenvalues(const Tridiagonal& t);

/// Convenience: all eigenvalues (ascending) of a dense symmetric matrix via
/// Householder + QL.  This is the O(D^3) baseline referenced in the paper's
/// introduction, at production speed.
[[nodiscard]] std::vector<double> symmetric_eigenvalues(const linalg::DenseMatrix& a);

/// Number of eigenvalues of the tridiagonal matrix strictly below `x`,
/// via the Sturm-sequence sign count (O(D) per query, no diagonalization).
/// The exact counterpart of the KPM integrated DoS: N(E) = count / D.
[[nodiscard]] std::size_t tridiagonal_count_below(const Tridiagonal& t, double x);

/// Eigenvalue counting for a dense symmetric matrix: one Householder
/// reduction (O(D^3)) then O(D) per query.
class EigenvalueCounter {
 public:
  explicit EigenvalueCounter(const linalg::DenseMatrix& a)
      : tridiagonal_(householder_tridiagonalize(a)) {}

  /// Eigenvalues strictly below x.
  [[nodiscard]] std::size_t count_below(double x) const {
    return tridiagonal_count_below(tridiagonal_, x);
  }

  /// Integrated DoS N(E) = count_below(E) / D in [0, 1].
  [[nodiscard]] double integrated_dos(double energy) const {
    return static_cast<double>(count_below(energy)) /
           static_cast<double>(tridiagonal_.dim());
  }

 private:
  Tridiagonal tridiagonal_;
};

}  // namespace kpm::diag
