// Figure 8 reproduction: "Performance comparison increasing H_SIZE."
//
// Fixed N = 128, R = 14, S = 128; dense H_SIZE swept over {512 .. 4096}.
// The paper's observation: memory usage grows as H_SIZE^2; the CPU curve
// steepens once the matrix no longer fits the cache hierarchy, while the
// GPU stays ~O(H_SIZE^2) thanks to shared-memory staging — holding the
// speedup around 4x.
#include "bench_common.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("fig8_scaling_hsize", "Reproduces Fig. 8: dense N=128, H_SIZE sweep");
  const auto* n = cli.add_int("N", 128, "number of moments (paper: 128)");
  const auto* r = cli.add_int("R", 14, "random vectors per realization");
  const auto* s = cli.add_int("S", 128, "realizations");
  const auto* sample = cli.add_int("sample", 2, "instances executed functionally (0 = all)");
  const auto* d_max = cli.add_int("h-size-max", 4096, "largest matrix dimension");
  const auto* csv = cli.add_string("csv", "fig8_scaling_hsize.csv", "CSV output path");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  bench::BenchMetrics metrics("fig8_scaling_hsize");

  core::MomentParams params;
  params.num_moments = static_cast<std::size_t>(*n);
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = static_cast<std::size_t>(*s);

  bench::print_banner("=== Fig. 8: execution time and speedup vs H_SIZE (dense storage) ===",
                      "random symmetric dense, H_SIZE in {512..." + std::to_string(*d_max) + "}",
                      params, static_cast<std::size_t>(*sample));

  Table table({"H_SIZE", "H bytes", "CPU s", "CPU bound", "GPU s", "speedup", "host s"});
  for (std::size_t d = 512; d <= static_cast<std::size_t>(*d_max); d *= 2) {
    const auto h = lattice::random_symmetric_dense(d, 0xF16'8u + d);
    linalg::MatrixOperator raw(h);
    const auto transform = linalg::make_spectral_transform(raw);
    const auto ht = linalg::rescale(h, transform);
    linalg::MatrixOperator op(ht);

    const auto c = bench::compare_engines(op, params, static_cast<std::size_t>(*sample));
    // Which side of the LLC the per-pass working set falls on.
    const auto spec = cpumodel::CpuSpec::core_i7_930();
    const double ws = static_cast<double>(op.spmv_matrix_bytes()) + 4.0 * static_cast<double>(d) * 8.0;
    const bool in_cache = ws <= static_cast<double>(spec.caches.back().capacity_bytes);
    table.add_row({std::to_string(d), format_bytes(static_cast<double>(op.spmv_matrix_bytes())),
                   strprintf("%.2f", c.cpu.model_seconds), in_cache ? "LLC" : "DRAM",
                   strprintf("%.2f", c.gpu.model_seconds), strprintf("%.2f", c.speedup()),
                   strprintf("%.3f", c.cpu.wall_seconds + c.gpu.wall_seconds)});
  }
  bench::finish(table, bench::resolve_output(*out_dir, *csv));
  std::printf("paper shape: CPU steepens past the LLC; GPU ~O(H_SIZE^2); speedup ~4x\n");
  return 0;
}
