// Fixed-size worker pool for coarse-grain host parallelism.
//
// The KPM moment recursion is serial along N but embarrassingly parallel
// across the S*R stochastic instances; `ThreadPool` is the execution
// substrate the parallel CPU engine uses to exploit that.  Design points:
//
//  * Fixed worker set: `lanes - 1` OS threads are spawned once and parked
//    on a condition variable; dispatching work is a notify, not a spawn.
//    The calling thread always participates as lane 0, so a 1-lane pool
//    degenerates to a plain function call with zero synchronization.
//  * Static partitioning: `parallel_for` splits an index range into one
//    contiguous chunk per lane.  Deterministic assignment keeps runs
//    reproducible and lets callers keep per-lane scratch state.
//  * Exception propagation: the first exception thrown by any lane is
//    captured and rethrown on the calling thread after every lane has
//    finished, so no work is left running when the caller unwinds.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace kpm::common {

class ThreadPool {
 public:
  /// Creates a pool with `lanes` execution lanes total: the calling thread
  /// plus `lanes - 1` spawned workers.  Requires lanes >= 1.
  explicit ThreadPool(std::size_t lanes);

  /// Joins all workers.  Must not be called while a dispatch is running.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes (calling thread included).
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Invokes `task(lane)` once per lane in [0, size()).  Lane 0 runs on the
  /// calling thread; the call returns after every lane has finished.  The
  /// first exception thrown by any lane is rethrown here.
  void run(const std::function<void(std::size_t)>& task);

  /// Statically partitions [0, count) into size() contiguous chunks and
  /// invokes `body(lane, begin, end)` for every non-empty chunk.  Chunk
  /// sizes differ by at most one element; lane ordering is deterministic.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t lane, std::size_t begin,
                                             std::size_t end)>& body);

  /// The half-open range of chunk `chunk` when [0, count) is split into
  /// `chunks` near-equal contiguous pieces (the parallel_for partition).
  [[nodiscard]] static std::pair<std::size_t, std::size_t> chunk_range(std::size_t count,
                                                                       std::size_t chunks,
                                                                       std::size_t chunk);

 private:
  void worker_loop(std::size_t lane);
  void record_exception() noexcept;

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< bumps once per dispatch; workers latch it
  std::size_t pending_ = 0;       ///< workers still running the current dispatch
  bool stopping_ = false;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::exception_ptr first_error_;
};

}  // namespace kpm::common
