// Chebyshev time evolution: |psi(t)> = exp(-i H t) |psi(0)>.
//
// The same rescaled-Hamiltonian Chebyshev machinery the KPM uses for
// spectral densities also gives the best-in-class polynomial propagator
// (Tal-Ezer & Kosloff 1984):
//
//   exp(-i H t) = exp(-i a+ t) * sum_n (2 - delta_n0) (-i)^n J_n(a- t) T_n(H~)
//
// where J_n are Bessel functions of the first kind.  The coefficients
// decay superexponentially once n exceeds a- * t, so the expansion
// truncates with a rigorously controllable error — machine precision at
// N ~ a- t + O((a- t)^{1/3}).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "linalg/operator.hpp"
#include "linalg/spectral_transform.hpp"

namespace kpm::core {

/// Bessel functions of the first kind J_0..J_{count-1} at real x, via the
/// standard Miller downward recurrence with the J_0 + 2 sum J_{2k} = 1
/// normalization (accurate to ~1e-15 for |x| up to thousands).
[[nodiscard]] std::vector<double> bessel_j_array(double x, std::size_t count);

/// Diagnostics of one propagation step.
struct EvolutionReport {
  std::size_t terms = 0;          ///< Chebyshev terms actually applied
  double coefficient_tail = 0.0;  ///< |c_N| of the first dropped term (error proxy)
};

/// Polynomial propagator for a fixed rescaled Hamiltonian.
class ChebyshevPropagator {
 public:
  /// `h_tilde` must be the rescaled operator (spectrum in [-1, 1]) and
  /// `transform` the transform that produced it; both must outlive the
  /// propagator.
  ChebyshevPropagator(const linalg::MatrixOperator& h_tilde,
                      const linalg::SpectralTransform& transform, double tolerance = 1e-14);

  /// Advances `state` by `dt` in place.  Returns the step diagnostics.
  EvolutionReport step(std::span<std::complex<double>> state, double dt) const;

  /// Convenience: evolve from t=0 in `steps` equal steps, invoking
  /// `observer(step_index, state)` after each (pass nullptr to skip).
  using Observer = void (*)(std::size_t, std::span<const std::complex<double>>, void*);
  EvolutionReport evolve(std::span<std::complex<double>> state, double total_time,
                         std::size_t steps, Observer observer = nullptr,
                         void* observer_ctx = nullptr) const;

  [[nodiscard]] std::size_t dim() const noexcept { return h_->dim(); }

 private:
  const linalg::MatrixOperator* h_;
  const linalg::SpectralTransform* transform_;
  double tolerance_;
};

/// L2 norm of a complex state (should stay 1 under evolution).
[[nodiscard]] double state_norm(std::span<const std::complex<double>> state);

/// <state| H |state> for a real symmetric operator (conserved quantity).
[[nodiscard]] double energy_expectation(const linalg::MatrixOperator& h,
                                        std::span<const std::complex<double>> state);

}  // namespace kpm::core
