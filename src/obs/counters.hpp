// Typed, deterministic work counters shared by every compute path.
//
// A `CounterSet` holds one double per `Counter`.  All values recorded by the
// library are exact integers (flop counts, byte counts, call counts) well
// below 2^53, so double addition is exact and therefore associative: any
// grouping of per-thread shards reduces to bit-identical totals.  That is the
// property the deterministic-metrics tests pin down.
//
// Recording is opt-in and thread-local: `obs::add` is a no-op unless the
// calling thread has a sink installed (via `CounterScope`, `Collect`, or
// `sharded_parallel_for`).  Hot kernels therefore pay one thread-local load
// and a branch per *call* (not per element) when metrics are off.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

namespace kpm::obs {

/// Every counter tracked by the library.  Extend at the end and update
/// `kCounterCount`, `to_string`, and docs/observability.md together.
enum class Counter : std::size_t {
  Flops,              ///< double-precision (or f32) flops executed on the host
  BytesStreamed,      ///< host bytes read+written by kernels (matrix + vectors)
  SpmvCalls,          ///< sparse/dense matrix-vector products (fused or plain)
  DotCalls,           ///< dot-product reductions (fused dots count here too)
  FusedCalls,         ///< fused spmv+combine+dot kernel invocations
  FusedBytes,         ///< bytes streamed by fused kernels only (roofline check)
  RngElements,        ///< random vector elements drawn
  InstancesExecuted,  ///< stochastic-trace / recursion start vectors processed
  MomentsProduced,    ///< moment values returned by an engine or routine
  ReconstructPoints,  ///< spectral reconstruction evaluation points
  GpuKernelLaunches,  ///< simulated-GPU kernel launches (from gpusim timeline)
  GpuFlops,           ///< simulated-GPU flops (from gpusim::CostCounters)
  GpuGlobalBytes,     ///< simulated-GPU global memory traffic
  GpuSharedBytes,     ///< simulated-GPU shared memory traffic
  GpuBytesH2D,        ///< host-to-device transfer bytes
  GpuBytesD2H,        ///< device-to-host transfer bytes

  // Serving-layer counters (src/serve): all recorded on the scheduler
  // thread from simulated-clock decisions, so they are deterministic.
  ServeRequests,       ///< requests submitted to a serve scheduler
  ServeBatches,        ///< engine/cache service rounds executed
  ServeCoalesced,      ///< requests that rode an existing batch (beyond its head)
  ServeCacheHits,      ///< moment-cache lookups answered without an engine run
  ServeCacheMisses,    ///< moment-cache lookups that required an engine run
  ServeCacheEvictions, ///< cache entries evicted by the LRU byte budget
  ServeShedRejected,   ///< requests shed by admission control (rejected)
  ServeShedDegraded,   ///< requests admitted at a degraded (lower-N) quality
  ServeShedExpired,    ///< requests dropped because their deadline passed in queue

  // Fleet-serving counters (src/serve + src/serve/fleet): recorded on the
  // scheduler thread from simulated-clock decisions, so deterministic.
  ServeCacheAdmitRefused,  ///< cost-aware cache refusals (incoming density too low)
  ServeCacheCostSavedNs,   ///< modeled recompute ns avoided by cache hits
  ServeGpuPricedBatches,   ///< batches priced from a gpusim timeline run
  FleetShards,             ///< server shards executed by fleet runs
  FleetRequestsRouted,     ///< requests routed to a shard by the hash ring
};

inline constexpr std::size_t kCounterCount = 30;

/// Stable snake_case name used as the JSON key for `c`.
[[nodiscard]] const char* to_string(Counter c) noexcept;

/// Inverse of `to_string`.  Throws kpm::Error for unknown names.
[[nodiscard]] Counter counter_from_name(std::string_view name);

/// A full set of counter values.  Aligned to a cache line so adjacent
/// per-lane shards in `ShardedCounters` do not false-share.
class alignas(64) CounterSet {
 public:
  void add(Counter c, double amount) noexcept {
    values_[static_cast<std::size_t>(c)] += amount;
  }
  [[nodiscard]] double get(Counter c) const noexcept {
    return values_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double operator[](Counter c) const noexcept { return get(c); }

  CounterSet& operator+=(const CounterSet& other) noexcept;
  bool operator==(const CounterSet&) const = default;

  /// True when every counter is exactly zero.
  [[nodiscard]] bool empty() const noexcept;

  [[nodiscard]] const std::array<double, kCounterCount>& values() const noexcept {
    return values_;
  }

 private:
  std::array<double, kCounterCount> values_{};
};

namespace detail {
/// The calling thread's active sink slot (nullptr when recording is off).
/// A function-local thread_local (constant-initialized, so no TLS init
/// wrapper is involved in the access path).
[[nodiscard]] inline CounterSet*& counters_slot() noexcept {
  static thread_local CounterSet* slot = nullptr;
  return slot;
}
}  // namespace detail

/// The sink installed on this thread (nullptr when none).
[[nodiscard]] inline CounterSet* active_counters() noexcept { return detail::counters_slot(); }

/// Records `amount` into the calling thread's sink; no-op without one.
inline void add(Counter c, double amount) noexcept {
  if (CounterSet* sink = detail::counters_slot()) sink->add(c, amount);
}

/// RAII: installs `sink` as the calling thread's counter sink, restoring the
/// previous sink (possibly nullptr) on destruction.  Scopes nest.
class CounterScope {
 public:
  explicit CounterScope(CounterSet& sink) noexcept : prev_(detail::counters_slot()) {
    detail::counters_slot() = &sink;
  }
  ~CounterScope() { detail::counters_slot() = prev_; }
  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

 private:
  CounterSet* prev_;
};

/// One private CounterSet per ThreadPool lane.  `reduce()` sums shards in
/// lane order 0..L-1 after the pool has joined, which (with exact-integer
/// counters) yields totals independent of the lane count.
class ShardedCounters {
 public:
  explicit ShardedCounters(std::size_t lanes);

  [[nodiscard]] CounterSet& shard(std::size_t lane);
  [[nodiscard]] std::size_t lanes() const noexcept { return shards_.size(); }

  /// Sums all shards in lane order.
  [[nodiscard]] CounterSet reduce() const noexcept;

 private:
  std::vector<CounterSet> shards_;
};

// ---------------------------------------------------------------------------
// Convenience meters for host linear-algebra kernels.  These encode the same
// per-operation flop/byte model as cpumodel::roofline so measured counters
// are directly comparable with modeled workloads.

/// A dot product over `dim` doubles: 2*dim flops, two streamed vectors.
inline void meter_dot(std::size_t dim) noexcept {
  const double d = static_cast<double>(dim);
  add(Counter::DotCalls, 1.0);
  add(Counter::Flops, 2.0 * d);
  add(Counter::BytesStreamed, 2.0 * d * 8.0);
}

/// A plain (unfused) matrix-vector product: matrix traffic plus the input
/// and output vectors.
inline void meter_spmv(std::size_t spmv_flops, std::size_t matrix_bytes,
                       std::size_t dim) noexcept {
  const double d = static_cast<double>(dim);
  add(Counter::SpmvCalls, 1.0);
  add(Counter::Flops, static_cast<double>(spmv_flops));
  add(Counter::BytesStreamed, static_cast<double>(matrix_bytes) + 2.0 * d * 8.0);
}

/// Raw streamed-byte traffic (vector copies, scale/combine passes, ...).
inline void meter_stream_bytes(double bytes) noexcept {
  add(Counter::BytesStreamed, bytes);
}

}  // namespace kpm::obs
