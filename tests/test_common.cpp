// Unit tests for the shared utilities: error macros, aligned buffers,
// tables, CLI parsing, unit formatting.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>

#include "common/aligned_buffer.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace {

TEST(Error, RequireThrowsWithContext) {
  try {
    KPM_REQUIRE(1 == 2, "the impossible happened");
    FAIL() << "expected kpm::Error";
  } catch (const kpm::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the impossible happened"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) { EXPECT_NO_THROW(KPM_REQUIRE(2 + 2 == 4, "math works")); }

TEST(Error, FailAlwaysThrows) { EXPECT_THROW(KPM_FAIL("bang"), kpm::Error); }

TEST(AlignedBuffer, ZeroInitializedAndAligned) {
  kpm::AlignedBuffer<double> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  for (double v : buf) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kpm::kCacheLineBytes, 0u);
}

TEST(AlignedBuffer, CopyIsDeep) {
  kpm::AlignedBuffer<int> a(8);
  a[3] = 42;
  kpm::AlignedBuffer<int> b = a;
  b[3] = 7;
  EXPECT_EQ(a[3], 42);
  EXPECT_EQ(b[3], 7);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  kpm::AlignedBuffer<int> a(8);
  a[0] = 1;
  kpm::AlignedBuffer<int> b = std::move(a);
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): documented post-move state
}

TEST(AlignedBuffer, FillSetsEveryElement) {
  kpm::AlignedBuffer<double> buf(17);
  buf.fill(2.5);
  for (double v : buf) EXPECT_EQ(v, 2.5);
}

TEST(AlignedBuffer, EmptyBufferIsSafe) {
  kpm::AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.begin(), buf.end());
}

TEST(Table, AlignsColumnsAndCountsRows) {
  kpm::Table t({"N", "time"});
  t.add_row({"128", "1.5 s"});
  t.add_row({"1024", "12.0 s"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("N"), std::string::npos);
  EXPECT_NE(text.find("1024"), std::string::npos);
}

TEST(Table, RejectsWrongCellCount) {
  kpm::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), kpm::Error);
}

TEST(Table, CsvQuotesSpecialCells) {
  kpm::Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, WriteCsvRoundTrips) {
  kpm::Table t({"x"});
  t.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/kpm_table_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string header, row;
  std::getline(f, header);
  std::getline(f, row);
  EXPECT_EQ(header, "x");
  EXPECT_EQ(row, "1");
}

TEST(Strprintf, FormatsLikePrintf) {
  EXPECT_EQ(kpm::strprintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(kpm::strprintf("%.2f", 1.239), "1.24");
}

TEST(Cli, ParsesAllKinds) {
  kpm::CliParser cli("prog", "test");
  const auto* n = cli.add_int("n", 10, "an int");
  const auto* x = cli.add_double("x", 0.5, "a double");
  const auto* s = cli.add_string("s", "abc", "a string");
  const auto* f = cli.add_flag("fast", "a flag");
  const char* argv[] = {"prog", "--n=42", "--x", "2.25", "--s=hello", "--fast"};
  cli.parse(6, argv);
  EXPECT_EQ(*n, 42);
  EXPECT_DOUBLE_EQ(*x, 2.25);
  EXPECT_EQ(*s, "hello");
  EXPECT_TRUE(*f);
}

TEST(Cli, DefaultsSurviveWhenAbsent) {
  kpm::CliParser cli("prog", "test");
  const auto* n = cli.add_int("n", 10, "an int");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(*n, 10);
}

TEST(Cli, UsageMentionsEveryOption) {
  kpm::CliParser cli("prog", "does things");
  cli.add_int("moments", 1, "number of moments");
  cli.add_flag("verbose", "talk more");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--moments"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("does things"), std::string::npos);
}

TEST(Units, FormatsAcrossMagnitudes) {
  EXPECT_EQ(kpm::format_seconds(2.5e-9), "2.5 ns");
  EXPECT_EQ(kpm::format_seconds(3.0e-5), "30.00 us");
  EXPECT_EQ(kpm::format_seconds(1.5e-2), "15.00 ms");
  EXPECT_EQ(kpm::format_seconds(2.0), "2.000 s");
  EXPECT_EQ(kpm::format_bytes(512), "512 B");
  EXPECT_EQ(kpm::format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(kpm::format_flops(5.0e8), "500.0 MFLOP/s");
  EXPECT_EQ(kpm::format_flops(2.0e10), "20.00 GFLOP/s");
}

TEST(Stopwatch, MeasuresMonotonically) {
  kpm::Stopwatch sw;
  const double t0 = sw.seconds();
  const double t1 = sw.seconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GE(t1, t0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
