// Ablation: 2D-moment (conductivity) cost scaling.
//
// The Kubo-Greenwood moment matrix costs O(K (N nnz + N^2 D)) versus the
// DoS's O(K N nnz): the quadratic N^2 dot-product term dominates beyond
// N ~ nnz/D.  This bench measures the real host cost of both moment
// computations over N and reports the crossover, plus the disorder
// response of the reconstructed conductivity (physics sanity).
#include <algorithm>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("ablation_conductivity", "2D-moment cost scaling and disorder response");
  const auto* edge = cli.add_int("edge", 16, "square lattice edge");
  const auto* r = cli.add_int("R", 8, "random vectors");
  const auto* csv = cli.add_string("csv", "ablation_conductivity.csv", "CSV output path");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  bench::BenchMetrics metrics("ablation_conductivity");

  const auto l = static_cast<std::size_t>(*edge);
  const auto lat = lattice::HypercubicLattice::square(l, l);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw(h);
  const auto transform = linalg::make_spectral_transform(raw);
  const auto ht = linalg::rescale(h, transform);
  const auto a = lattice::build_current_operator_crs(lat, 0);
  linalg::MatrixOperator op(ht), op_a(a);

  core::MomentParams params;
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = 1;

  std::printf("=== Ablation: DoS (1D) vs conductivity (2D) moment cost ===\n");
  std::printf("workload: %s, D=%zu, K=%zu instances (host wall-clock)\n\n", lat.describe().c_str(),
              lat.sites(), params.instances());

  Table table({"N", "DoS s", "sigma s", "ratio", "sigma peak"});
  core::CpuMomentEngine dos_engine;
  for (std::size_t n = 8; n <= 64; n *= 2) {
    params.num_moments = n;
    const double dos_s =
        obs::timed("dos.N" + std::to_string(n), [&] { (void)dos_engine.compute(op, params); });
    core::ConductivityMoments m;
    const double sigma_s = obs::timed("sigma.N" + std::to_string(n), [&] {
      m = core::conductivity_moments(op, op_a, params);
    });
    const auto curve = core::reconstruct_conductivity(m, transform, {.points = 64});
    table.add_row({std::to_string(n), strprintf("%.3f", dos_s), strprintf("%.3f", sigma_s),
                   strprintf("%.1fx", sigma_s / std::max(dos_s, 1e-9)),
                   strprintf("%.4f",
                             *std::max_element(curve.sigma.begin(), curve.sigma.end()))});
  }
  bench::finish(table, bench::resolve_output(*out_dir, *csv));
  std::printf("expected: the 2D/1D cost ratio grows ~linearly with N (the N^2 D term)\n");
  return 0;
}
