// Tests for the radix-2 FFT and the FFT-accelerated DoS reconstruction.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/fft.hpp"
#include "core/reconstruct.hpp"
#include "diag/spectrum_utils.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm;
using Complex = std::complex<double>;

/// Naive O(N^2) DFT reference.
std::vector<Complex> naive_dft(std::span<const Complex> x, int sign) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, {0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j) {
      const double angle =
          sign * 2.0 * std::numbers::pi * static_cast<double>(k * j) / static_cast<double>(n);
      out[k] += x[j] * Complex{std::cos(angle), std::sin(angle)};
    }
  return out;
}

TEST(Fft, MatchesNaiveDftBothSigns) {
  std::vector<Complex> x;
  for (int i = 0; i < 32; ++i)
    x.emplace_back(std::sin(0.3 * i) + 0.1 * i, std::cos(0.7 * i));
  for (int sign : {-1, +1}) {
    const auto fast = fft(x, sign);
    const auto slow = naive_dft(x, sign);
    for (std::size_t k = 0; k < x.size(); ++k) {
      EXPECT_NEAR(fast[k].real(), slow[k].real(), 1e-10) << "k=" << k;
      EXPECT_NEAR(fast[k].imag(), slow[k].imag(), 1e-10) << "k=" << k;
    }
  }
}

TEST(Fft, RoundTripIsIdentity) {
  std::vector<Complex> x;
  for (int i = 0; i < 64; ++i) x.emplace_back(i * 0.5, -i * 0.25);
  auto y = fft(x, -1);
  fft_radix2(y, +1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real() / 64.0, x[i].real(), 1e-10);
    EXPECT_NEAR(y[i].imag() / 64.0, x[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  std::vector<Complex> x;
  for (int i = 0; i < 128; ++i) x.emplace_back(std::sin(i * 1.1), std::cos(i * 0.9));
  const auto y = fft(x, -1);
  double ex = 0.0, ey = 0.0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : y) ey += std::norm(v);
  EXPECT_NEAR(ey, 128.0 * ex, 1e-8 * ey);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<Complex> x(16, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  const auto y = fft(x, -1);
  for (const auto& v : y) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> x(12);
  EXPECT_THROW(fft_radix2(x, -1), kpm::Error);
  std::vector<Complex> ok(8);
  EXPECT_THROW(fft_radix2(ok, 2), kpm::Error);
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(1536));
}

TEST(FftReconstruct, MatchesDirectEvaluationToRoundoff) {
  const auto lat = lattice::HypercubicLattice::cubic(4, 4, 4);
  const auto spectrum = lattice::periodic_tight_binding_spectrum(lat);
  const linalg::SpectralTransform t({-6.2, 6.2}, 0.0);
  const auto mu = diag::exact_chebyshev_moments(spectrum, t, 128);

  for (std::size_t points : {128u, 512u, 2048u}) {
    core::ReconstructOptions opts;
    opts.points = points;
    const auto direct = core::reconstruct_dos(mu, t, opts);
    const auto fast = core::reconstruct_dos_fft(mu, t, opts);
    ASSERT_EQ(direct.energy.size(), fast.energy.size());
    for (std::size_t j = 0; j < points; ++j) {
      EXPECT_NEAR(direct.energy[j], fast.energy[j], 1e-12);
      EXPECT_NEAR(direct.density[j], fast.density[j], 1e-10 * (1.0 + std::abs(direct.density[j]))) << "j=" << j;
    }
  }
}

TEST(FftReconstruct, WorksForAllKernels) {
  std::vector<double> mu(64);
  const double theta0 = std::acos(0.3);
  for (std::size_t n = 0; n < 64; ++n) mu[n] = std::cos(static_cast<double>(n) * theta0);
  const linalg::SpectralTransform t({-1.0, 1.0}, 0.0);
  for (auto k : {core::DampingKernel::Jackson, core::DampingKernel::Lorentz,
                 core::DampingKernel::Fejer, core::DampingKernel::Dirichlet}) {
    core::ReconstructOptions opts;
    opts.kernel = k;
    opts.points = 256;
    const auto direct = core::reconstruct_dos(mu, t, opts);
    const auto fast = core::reconstruct_dos_fft(mu, t, opts);
    for (std::size_t j = 0; j < 256; ++j)
      EXPECT_NEAR(direct.density[j], fast.density[j], 1e-10 * (1.0 + std::abs(direct.density[j]))) << to_string(k);
  }
}

TEST(FftReconstruct, RejectsBadPointCounts) {
  std::vector<double> mu(64, 0.0);
  mu[0] = 1.0;
  const linalg::SpectralTransform t({-1.0, 1.0}, 0.0);
  core::ReconstructOptions opts;
  opts.points = 100;  // not a power of two
  EXPECT_THROW((void)core::reconstruct_dos_fft(mu, t, opts), kpm::Error);
  opts.points = 32;  // fewer than moments
  EXPECT_THROW((void)core::reconstruct_dos_fft(mu, t, opts), kpm::Error);
}

}  // namespace
