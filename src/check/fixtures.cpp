#include "check/fixtures.hpp"

#include <span>
#include <vector>

#include "check/checker.hpp"
#include "common/error.hpp"
#include "gpusim/device.hpp"
#include "gpusim/view.hpp"

namespace kpm::check {
namespace {

using gpusim::AccessPattern;
using gpusim::BlockContext;
using gpusim::Device;
using gpusim::ExecConfig;
using gpusim::GlobalView;
using gpusim::ThreadContext;

// 1. Shared-memory race: every thread of the broken variant stores to the
// same shared slot within one phase; the clean twin stores to its own slot
// and reads its neighbour's only after the barrier.
class SharedRaceKernel final : public gpusim::Kernel {
 public:
  explicit SharedRaceKernel(bool broken) : broken_(broken) {}
  [[nodiscard]] const char* name() const override { return "fixture-shared-race"; }
  [[nodiscard]] int phase_count() const override { return 2; }
  void thread_phase(int phase, ThreadContext& t) override {
    std::span<double> s = t.block().shared_array<double>(t.block().threads());
    if (phase == 0) {
      const std::size_t i = broken_ ? 0 : t.tid();
      t.shared_store(s, i, static_cast<double>(t.tid()));
    } else {
      const std::size_t j = (t.tid() + 1) % t.block().threads();
      (void)t.shared_load(std::span<const double>(s), j);
    }
  }

 private:
  bool broken_;
};

// 2. Shared allocation divergence: odd threads of the broken variant
// declare a larger shared array than even threads — on real hardware the
// __shared__ declaration is per-block, so this cannot even be expressed.
class SharedAllocDivergenceKernel final : public gpusim::Kernel {
 public:
  explicit SharedAllocDivergenceKernel(bool broken) : broken_(broken) {}
  [[nodiscard]] const char* name() const override { return "fixture-shared-alloc"; }
  void thread_phase(int /*phase*/, ThreadContext& t) override {
    const std::size_t count = (broken_ && t.tid() % 2 == 1) ? 4 : 2;
    std::span<double> s = t.block().shared_array<double>(count);
    s[0] = 1.0;  // raw (unannotated) touch: only the allocation is under test
  }

 private:
  bool broken_;
};

// 3. Local allocation divergence: the broken variant makes two
// local_array() calls in phase 0 but only one in phase 1 — the runtime
// silently hands phase 1's call the *first* slot's storage.
class LocalAllocDivergenceKernel final : public gpusim::Kernel {
 public:
  explicit LocalAllocDivergenceKernel(bool broken) : broken_(broken) {}
  [[nodiscard]] const char* name() const override { return "fixture-local-alloc"; }
  [[nodiscard]] int phase_count() const override { return 2; }
  void thread_phase(int phase, ThreadContext& t) override {
    std::span<double> a = t.local_array<double>(2);
    a[0] = static_cast<double>(phase);
    if (phase == 0 || !broken_) {
      std::span<double> b = t.local_array<double>(2);
      b[0] = static_cast<double>(t.tid());
    }
  }

 private:
  bool broken_;
};

// 4. Cross-block global race: every block of the broken variant writes the
// same range of the output buffer; the clean twin writes disjoint slices.
class GlobalRaceKernel final : public gpusim::Kernel {
 public:
  GlobalRaceKernel(gpusim::DeviceBuffer<double>& buf, bool broken)
      : buf_(&buf), broken_(broken) {}
  [[nodiscard]] const char* name() const override { return "fixture-global-race"; }
  void block_phase(int /*phase*/, BlockContext& block) override {
    GlobalView<double> v(*buf_, AccessPattern::Coalesced, block.counters());
    const std::size_t n = 4;
    const std::size_t offset = broken_ ? 0 : block.bid() * n;
    for (double& x : v.bulk_store(offset, n)) x = static_cast<double>(block.bid());
  }

 private:
  gpusim::DeviceBuffer<double>* buf_;
  bool broken_;
};

// 5. Uninitialized read: the broken variant reads a buffer nothing ever
// seeded (cudaMalloc does not zero); the clean twin memsets it first.
class UninitReadKernel final : public gpusim::Kernel {
 public:
  explicit UninitReadKernel(const gpusim::DeviceBuffer<double>& buf) : buf_(&buf) {}
  [[nodiscard]] const char* name() const override { return "fixture-uninit-read"; }
  void block_phase(int /*phase*/, BlockContext& block) override {
    GlobalView<double> v(*buf_, AccessPattern::Coalesced, block.counters());
    double sum = 0.0;
    for (double x : v.bulk_load(0, 4)) sum += x;
    block.flop(4.0);
    (void)sum;
  }

 private:
  const gpusim::DeviceBuffer<double>* buf_;
};

// 6. SELL chunk staging: one block stages a SELL-C-sigma chunk into shared
// memory before the SpMMV sweep — entry j of lane l belongs at shared slot
// j*C + l (the chunk-interleaved layout).  The broken variant drops the
// lane term and indexes by j alone, so all C lanes of the chunk collide on
// the same slot every iteration; the clean twin writes disjoint slots and
// reads its neighbour's column only after the phase barrier.
class SellChunkStageKernel final : public gpusim::Kernel {
 public:
  SellChunkStageKernel(bool broken, std::size_t entries) : broken_(broken), entries_(entries) {}
  [[nodiscard]] const char* name() const override { return "fixture-sell-chunk-stage"; }
  [[nodiscard]] int phase_count() const override { return 2; }
  void thread_phase(int phase, ThreadContext& t) override {
    const std::size_t c = t.block().threads();  // chunk height C = one lane per thread
    std::span<double> s = t.block().shared_array<double>(entries_ * c);
    if (phase == 0) {
      for (std::size_t j = 0; j < entries_; ++j) {
        const std::size_t slot = broken_ ? j : j * c + t.tid();
        t.shared_store(s, slot, static_cast<double>(j));
      }
    } else {
      // Post-barrier SpMMV-style sweep: each lane walks the staged entries
      // of the NEIGHBOURING lane's row, the cross-lane read the staging
      // pass exists to make safe.
      const std::size_t lane = (t.tid() + 1) % c;
      double acc = 0.0;
      for (std::size_t j = 0; j < entries_; ++j)
        acc += t.shared_load(std::span<const double>(s), j * c + lane);
      (void)acc;
    }
  }

 private:
  bool broken_;
  std::size_t entries_;
};

// 7. Stream hazard writer: a kernel that writes its buffer through a view
// so the stream-order analysis sees the write.
class StreamWriterKernel final : public gpusim::Kernel {
 public:
  explicit StreamWriterKernel(gpusim::DeviceBuffer<double>& buf) : buf_(&buf) {}
  [[nodiscard]] const char* name() const override { return "fixture-stream-writer"; }
  void block_phase(int /*phase*/, BlockContext& block) override {
    GlobalView<double> v(*buf_, AccessPattern::Coalesced, block.counters());
    for (double& x : v.bulk_store(0, v.size())) x = 1.0;
  }

 private:
  gpusim::DeviceBuffer<double>* buf_;
};

ExecConfig small_config(std::uint32_t blocks, std::uint32_t threads, std::size_t shared_bytes) {
  ExecConfig cfg;
  cfg.grid = gpusim::Dim3{blocks};
  cfg.block = gpusim::Dim3{threads};
  cfg.shared_bytes = shared_bytes;
  return cfg;
}

std::vector<Finding> run_shared_race(bool broken) {
  Checker checker;
  Device device(gpusim::DeviceSpec::tesla_c2050());
  device.set_check({&checker});
  SharedRaceKernel kernel(broken);
  (void)device.launch(small_config(1, 4, 4 * sizeof(double)), kernel);
  return checker.findings();
}

std::vector<Finding> run_shared_alloc(bool broken) {
  Checker checker;
  Device device(gpusim::DeviceSpec::tesla_c2050());
  device.set_check({&checker});
  SharedAllocDivergenceKernel kernel(broken);
  (void)device.launch(small_config(1, 4, 4 * sizeof(double)), kernel);
  return checker.findings();
}

std::vector<Finding> run_local_alloc(bool broken) {
  Checker checker;
  Device device(gpusim::DeviceSpec::tesla_c2050());
  device.set_check({&checker});
  LocalAllocDivergenceKernel kernel(broken);
  (void)device.launch(small_config(1, 2, 0), kernel);
  return checker.findings();
}

std::vector<Finding> run_global_race(bool broken) {
  Checker checker;
  Device device(gpusim::DeviceSpec::tesla_c2050());
  device.set_check({&checker});
  auto buf = device.alloc<double>(8, "fixture-out");
  device.memset(buf);
  GlobalRaceKernel kernel(buf, broken);
  (void)device.launch(small_config(2, 1, 0), kernel);
  return checker.findings();
}

std::vector<Finding> run_uninit_read(bool broken) {
  Checker checker;
  Device device(gpusim::DeviceSpec::tesla_c2050());
  device.set_check({&checker});
  auto buf = device.alloc<double>(8, "fixture-src");
  if (!broken) device.memset(buf);
  UninitReadKernel kernel(buf);
  (void)device.launch(small_config(1, 1, 0), kernel);
  return checker.findings();
}

std::vector<Finding> run_sell_chunk_stage(bool broken) {
  Checker checker;
  Device device(gpusim::DeviceSpec::tesla_c2050());
  device.set_check({&checker});
  const std::size_t entries = 3;  // entries per lane in the staged chunk
  SellChunkStageKernel kernel(broken, entries);
  (void)device.launch(small_config(1, 4, entries * 4 * sizeof(double)), kernel);
  return checker.findings();
}

std::vector<Finding> run_stream_hazard(bool broken) {
  Checker checker;
  Device device(gpusim::DeviceSpec::tesla_c2050());
  device.set_check({&checker});
  auto buf = device.alloc<double>(8, "fixture-buf");
  device.memset(buf);
  const gpusim::StreamId worker = device.create_stream();
  StreamWriterKernel kernel(buf);
  (void)device.launch(small_config(1, 1, 0), kernel, 1.0, worker);
  std::vector<double> host(buf.size());
  if (!broken) {
    const double done = device.record_event(worker);
    device.wait_event(0, done);
  }
  device.copy_to_host(buf, std::span<double>(host), "fixture-d2h", 0);
  return checker.findings();
}

}  // namespace

std::vector<std::string> fixture_names() {
  return {"shared-race",  "shared-alloc-divergence", "local-alloc-divergence",
          "global-race",  "uninit-read",             "sell-chunk-stage",
          "stream-hazard"};
}

std::vector<Finding> run_fixture(const std::string& name, bool broken) {
  if (name == "shared-race") return run_shared_race(broken);
  if (name == "shared-alloc-divergence") return run_shared_alloc(broken);
  if (name == "local-alloc-divergence") return run_local_alloc(broken);
  if (name == "global-race") return run_global_race(broken);
  if (name == "uninit-read") return run_uninit_read(broken);
  if (name == "sell-chunk-stage") return run_sell_chunk_stage(broken);
  if (name == "stream-hazard") return run_stream_hazard(broken);
  KPM_FAIL("unknown check fixture: " + name);
}

}  // namespace kpm::check
