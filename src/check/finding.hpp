// Structured hazard findings produced by the kpmcheck analyses.
//
// A Finding is one detected hazard: what class it belongs to, which kernel
// (or host operation) triggered it, where it happened (block/phase/threads/
// byte range), and a human-readable detail line.  Findings are value types:
// tests assert on them exactly, the CLI tabulates them, and the JSON
// exporter embeds them in obs reports (schema "kpm.check/1").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace kpm::check {

/// The hazard classes kpmcheck distinguishes (docs/checking.md has a
/// minimal offending kernel for each).
enum class Kind {
  SharedRace,       ///< >=2 threads, same shared byte, same phase, >=1 write
  AllocDivergence,  ///< shared/local allocation sequence differs across threads or phases
  GlobalRace,       ///< cross-block global overlap with >=1 write in one launch
  UninitRead,       ///< view read of device memory never seeded by h2d/memset/store
  StreamHazard,     ///< cross-stream access without happens-before ordering
  // Static-verification kinds (src/verify/, docs/checking.md "Static
  // verification").  Bounds and Unproven are hazards; NonAffine is a
  // demotion to dynamic-only coverage, not a hazard.
  Bounds,     ///< access provably escapes its buffer/arena at some geometry
  NonAffine,  ///< access refuses an affine summary; kernel demoted to dynamic coverage
  Unproven,   ///< affine summary exists but no discharge rule or witness applies
};

/// Returns "shared-race", "alloc-divergence", "global-race", "uninit-read",
/// "stream-hazard", "bounds", "non-affine" or "unproven".
[[nodiscard]] const char* to_string(Kind k) noexcept;

/// Thread id used when an access happened outside per-thread context
/// (mirrors gpusim::kBlockScope).
inline constexpr std::ptrdiff_t kNoThread = -1;

/// One detected hazard.
struct Finding {
  Kind kind = Kind::SharedRace;
  std::string kernel;  ///< kernel name, or host op ("d2h", "h2d", "memset")
  std::string buffer;  ///< device buffer label ("" for shared-memory findings)
  std::size_t block = 0;
  int phase = 0;
  std::ptrdiff_t thread_a = kNoThread;  ///< first involved thread (or kNoThread)
  std::ptrdiff_t thread_b = kNoThread;  ///< second involved thread / block id
  std::size_t offset = 0;               ///< first overlapping byte
  std::size_t bytes = 0;                ///< length of the overlapping range
  std::string detail;                   ///< one-line human-readable description
};

/// One-line rendering: "shared-race in kernel 'x' (block 0 phase 1, ...)".
[[nodiscard]] std::string to_string(const Finding& f);

/// Renders findings as a JSON array (used by the obs "check" section).
[[nodiscard]] std::string findings_to_json(const std::vector<Finding>& findings);

}  // namespace kpm::check
