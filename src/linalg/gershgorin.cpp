#include "linalg/gershgorin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace kpm::linalg {

SpectralBounds gershgorin_bounds(const DenseMatrix& m) {
  KPM_REQUIRE(m.square(), "gershgorin_bounds requires a square matrix");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double center = m(r, r);
    double radius = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (c != r) radius += std::abs(m(r, c));
    lo = std::min(lo, center - radius);
    hi = std::max(hi, center + radius);
  }
  return {lo, hi};
}

SpectralBounds gershgorin_bounds(const CrsMatrix& m) {
  KPM_REQUIRE(m.rows() == m.cols(), "gershgorin_bounds requires a square matrix");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const auto row_ptr = m.row_ptr();
  const auto col_idx = m.col_idx();
  const auto values = m.values();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double center = 0.0;
    double radius = 0.0;
    for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      if (static_cast<std::size_t>(col_idx[kk]) == r)
        center = values[kk];
      else
        radius += std::abs(values[kk]);
    }
    lo = std::min(lo, center - radius);
    hi = std::max(hi, center + radius);
  }
  return {lo, hi};
}

SpectralBounds gershgorin_bounds(const MatrixOperator& op) {
  return op.storage() == Storage::Dense ? gershgorin_bounds(*op.dense())
                                        : gershgorin_bounds(*op.crs());
}

}  // namespace kpm::linalg
