#include "lattice/hamiltonian.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/philox.hpp"

namespace kpm::lattice {
namespace {

double site_energy(std::size_t site, const TightBindingParams& params,
                   const OnsiteFunction& onsite) {
  return onsite ? onsite(site) : params.onsite;
}

}  // namespace

linalg::CrsMatrix build_tight_binding_crs(const HypercubicLattice& lat,
                                          const TightBindingParams& params,
                                          const OnsiteFunction& onsite) {
  const std::size_t n = lat.sites();
  linalg::TripletBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double eps = site_energy(i, params, onsite);
    // TripletBuilder drops exact zeros; structural zero diagonals (the
    // paper's 7-entries-per-row layout) are inserted after assembly below.
    if (eps != 0.0) b.add(i, i, eps);
    for (std::size_t j : lat.neighbours(i)) b.add(i, j, -params.hopping);
    if (params.hopping_nnn != 0.0)
      for (std::size_t j : lat.next_nearest_neighbours(i)) b.add(i, j, -params.hopping_nnn);
  }
  linalg::CrsMatrix m = b.build();

  if (!params.store_zero_diagonal) return m;

  // Explicit zero diagonal entries where missing, matching the paper's
  // layout (7 stored entries per cubic row).
  return linalg::with_structural_diagonal(m);
}

linalg::DenseMatrix build_tight_binding_dense(const HypercubicLattice& lat,
                                              const TightBindingParams& params,
                                              const OnsiteFunction& onsite) {
  const std::size_t n = lat.sites();
  linalg::DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = site_energy(i, params, onsite);
    for (std::size_t j : lat.neighbours(i)) m(i, j) += -params.hopping;
    if (params.hopping_nnn != 0.0)
      for (std::size_t j : lat.next_nearest_neighbours(i)) m(i, j) += -params.hopping_nnn;
  }
  return m;
}

OnsiteFunction anderson_disorder(double width, std::uint64_t seed, std::uint64_t realization) {
  KPM_REQUIRE(width >= 0.0, "anderson_disorder: width must be non-negative");
  // Stream id 2^40 + realization keeps disorder draws disjoint from the
  // random-vector streams used by the stochastic trace (which use the
  // (s, r) instance id < 2^32 as their stream).
  const std::uint64_t stream = (1ULL << 40) + realization;
  return [width, seed, stream](std::size_t site) {
    const std::uint64_t word = rng::philox_u64(seed, stream, site);
    return rng::u64_to_uniform(word, -0.5 * width, 0.5 * width);
  };
}

linalg::DenseMatrix random_symmetric_dense(std::size_t dim, std::uint64_t seed) {
  KPM_REQUIRE(dim > 0, "random_symmetric_dense: dim must be positive");
  linalg::DenseMatrix m(dim, dim);
  for (std::size_t r = 0; r < dim; ++r)
    for (std::size_t c = r; c < dim; ++c) {
      // Address each upper-triangle entry by its flattened coordinate so
      // the matrix is independent of generation order.
      const std::uint64_t word = rng::philox_u64(seed, r, c);
      const double v = rng::u64_to_uniform(word, -1.0, 1.0);
      m(r, c) = v;
      m(c, r) = v;
    }
  return m;
}

std::vector<double> periodic_tight_binding_spectrum(const HypercubicLattice& lat,
                                                    const TightBindingParams& params) {
  KPM_REQUIRE(lat.boundary() == Boundary::Periodic,
              "closed-form spectrum requires periodic boundaries");
  const auto dims = lat.dims();
  std::vector<double> spectrum;
  spectrum.reserve(lat.sites());
  for (std::size_t mz = 0; mz < dims[2]; ++mz)
    for (std::size_t my = 0; my < dims[1]; ++my)
      for (std::size_t mx = 0; mx < dims[0]; ++mx) {
        double e = params.onsite;
        const std::array<std::size_t, 3> m{mx, my, mz};
        std::array<double, 3> k{0.0, 0.0, 0.0};
        std::size_t used_axes = 0;
        for (std::size_t axis = 0; axis < 3; ++axis) {
          if (dims[axis] == 1) continue;
          ++used_axes;
          k[axis] = 2.0 * std::numbers::pi * static_cast<double>(m[axis]) /
                    static_cast<double>(dims[axis]);
          e += -2.0 * params.hopping * std::cos(k[axis]);
        }
        if (params.hopping_nnn != 0.0) {
          if (used_axes == 1) {
            // Chain: t' couples i and i+-2 -> -2 t' cos(2k).
            for (std::size_t axis = 0; axis < 3; ++axis)
              if (dims[axis] > 1) e += -2.0 * params.hopping_nnn * std::cos(2.0 * k[axis]);
          } else {
            // Diagonal hops: -4 t' sum_{a<b} cos(k_a) cos(k_b).
            for (std::size_t a = 0; a < 3; ++a) {
              if (dims[a] == 1) continue;
              for (std::size_t b2 = a + 1; b2 < 3; ++b2) {
                if (dims[b2] == 1) continue;
                e += -4.0 * params.hopping_nnn * std::cos(k[a]) * std::cos(k[b2]);
              }
            }
          }
        }
        spectrum.push_back(e);
      }
  return spectrum;
}

}  // namespace kpm::lattice
