#include "obs/chrome_trace.hpp"

#include <cstddef>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace kpm::obs {

namespace {

constexpr double kMicro = 1e6;  // trace timestamps are microseconds

/// One trace event line.  `extra` is appended verbatim inside the object
/// (leading ", " included) for args and such.
void append_event(std::ostringstream& os, bool& first, const std::string& body) {
  if (!first) os << ",\n";
  first = false;
  os << "    {" << body << "}";
}

std::string meta_process(std::size_t pid, const std::string& name) {
  std::ostringstream os;
  os << "\"ph\": \"M\", \"pid\": " << pid
     << ", \"name\": \"process_name\", \"args\": {\"name\": \"" << json_escape(name) << "\"}";
  return os.str();
}

std::string meta_thread(std::size_t pid, std::size_t tid, const std::string& name) {
  std::ostringstream os;
  os << "\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
     << ", \"name\": \"thread_name\", \"args\": {\"name\": \"" << json_escape(name) << "\"}";
  return os.str();
}

void append_host_spans(std::ostringstream& os, bool& first, const Report& report) {
  const std::vector<SpanRecord>& spans = report.trace.spans();
  // Modeled spans are skipped (they render from the device timelines), so the
  // exported span/parent ids index the *emitted* sequence; a skipped parent is
  // replaced by the nearest measured ancestor.  The ids let a loader rebuild
  // the exact span tree instead of guessing nesting from timestamps.
  std::vector<long long> emitted(spans.size(), -1);
  long long next_id = 0;
  bool any = false;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (span.modeled) continue;  // modeled time renders from the device timelines
    if (!any) {
      append_event(os, first, meta_process(0, "host: " + report.label));
      append_event(os, first, meta_thread(0, 0, "measured spans"));
      any = true;
    }
    long long parent = -1;
    for (std::size_t up = span.parent; up != kNoParent; up = spans[up].parent) {
      if (emitted[up] >= 0) {
        parent = emitted[up];
        break;
      }
    }
    std::ostringstream ev;
    ev << "\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"cat\": \"measured\", \"name\": \""
       << json_escape(span.name) << "\", \"ts\": " << json_number(span.start_seconds * kMicro)
       << ", \"dur\": " << json_number(span.seconds * kMicro) << ", \"args\": {\"span\": "
       << next_id << ", \"parent\": " << parent << "}";
    append_event(os, first, ev.str());
    emitted[i] = next_id++;
  }
}

void append_counter_track(std::ostringstream& os, bool& first, const Report& report) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const Counter c = static_cast<Counter>(i);
    const double value = report.counters.get(c);
    if (value == 0.0) continue;
    std::ostringstream ev;
    ev << "\"ph\": \"C\", \"pid\": 0, \"tid\": 0, \"name\": \"" << to_string(c)
       << "\", \"ts\": 0, \"args\": {\"value\": " << json_number(value) << "}";
    append_event(os, first, ev.str());
  }
}

void append_kernel_args(std::ostringstream& ev, const TimelineEventRecord& event,
                        const DeviceTimelineRecord& timeline) {
  const double seconds = event.seconds();
  const double flops_rate = seconds > 0.0 ? event.flops / seconds : 0.0;
  const double bytes_rate = seconds > 0.0 ? event.global_bytes / seconds : 0.0;
  const double pct_flops =
      timeline.peak_flops > 0.0 ? 100.0 * flops_rate / timeline.peak_flops : 0.0;
  const double pct_bw =
      timeline.peak_bandwidth > 0.0 ? 100.0 * bytes_rate / timeline.peak_bandwidth : 0.0;
  ev << ", \"args\": {\"flops\": " << json_number(event.flops)
     << ", \"global_bytes\": " << json_number(event.global_bytes)
     << ", \"gflops\": " << json_number(flops_rate / 1e9)
     << ", \"pct_peak_flops\": " << json_number(pct_flops)
     << ", \"gb_per_s\": " << json_number(bytes_rate / 1e9)
     << ", \"pct_peak_bandwidth\": " << json_number(pct_bw)
     << ", \"occupancy\": " << json_number(event.occupancy) << ", \"bound\": \"" << event.bound
     << "\"}";
}

void append_device_tracks(std::ostringstream& os, bool& first, const Report& report) {
  for (std::size_t t = 0; t < report.timelines.size(); ++t) {
    const DeviceTimelineRecord& timeline = report.timelines[t];
    const std::size_t pid = 1 + t;
    append_event(os, first,
                 meta_process(pid, "gpusim: " + timeline.label + " (" + timeline.device + ")"));
    {
      // Machine-readable sibling of process_name: lets a loader rebuild the
      // timeline record (label, device, stream count, peaks) without parsing
      // the display string.
      std::ostringstream meta;
      meta << "\"ph\": \"M\", \"pid\": " << pid
           << ", \"name\": \"kpm_timeline\", \"args\": {\"label\": \"" << json_escape(timeline.label)
           << "\", \"device\": \"" << json_escape(timeline.device)
           << "\", \"streams\": " << timeline.streams
           << ", \"peak_flops\": " << json_number(timeline.peak_flops)
           << ", \"peak_bandwidth\": " << json_number(timeline.peak_bandwidth) << "}";
      append_event(os, first, meta.str());
    }
    for (std::size_t s = 0; s < timeline.streams; ++s) {
      const std::string id = "stream " + std::to_string(s);
      append_event(os, first, meta_thread(pid, 2 * s, id + " compute"));
      append_event(os, first, meta_thread(pid, 2 * s + 1, id + " copy"));
    }
    for (const TimelineEventRecord& event : timeline.events) {
      const bool copy = event.kind == "h2d" || event.kind == "d2h";
      const std::size_t tid = 2 * event.stream + (copy ? 1 : 0);
      std::ostringstream ev;
      ev << "\"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << tid << ", \"cat\": \""
         << event.kind << "\", \"name\": \"" << json_escape(event.label)
         << "\", \"ts\": " << json_number(event.start_seconds * kMicro)
         << ", \"dur\": " << json_number(event.seconds() * kMicro);
      if (event.kind == "kernel") {
        append_kernel_args(ev, event, timeline);
      } else if (event.bytes > 0.0) {
        const double seconds = event.seconds();
        ev << ", \"args\": {\"bytes\": " << json_number(event.bytes) << ", \"gb_per_s\": "
           << json_number(seconds > 0.0 ? event.bytes / seconds / 1e9 : 0.0) << "}";
      }
      append_event(os, first, ev.str());
    }
  }
}

}  // namespace

std::string to_chrome_trace(const Report& report, ChromeTraceOptions options) {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  if (options.include_measured) append_host_spans(os, first, report);
  append_device_tracks(os, first, report);
  append_counter_track(os, first, report);
  os << "\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"metadata\": {\"schema\": \"" << kTraceSchema
     << "\", \"exporter\": \"" << kTraceExporter << "\", \"label\": \"" << json_escape(report.label)
     << "\", \"include_measured\": " << (options.include_measured ? "true" : "false") << "}\n}\n";
  return os.str();
}

void write_chrome_trace(const Report& report, const std::string& path,
                        ChromeTraceOptions options) {
  std::ofstream out(path);
  KPM_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
  out << to_chrome_trace(report, options);
  out.flush();
  KPM_REQUIRE(out.good(), "failed writing trace file: " + path);
}

}  // namespace kpm::obs
