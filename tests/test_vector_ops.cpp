// Unit tests for the BLAS-1 vector kernels.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using namespace kpm::linalg;

TEST(VectorOps, AxpbyComputesLinearCombination) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  axpby(2.0, x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 14.0);
  EXPECT_DOUBLE_EQ(y[2], 21.0);
}

TEST(VectorOps, AxpyAccumulates) {
  std::vector<double> x{1, -1};
  std::vector<double> y{0, 0};
  axpy(3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
}

TEST(VectorOps, ScaleMultiplies) {
  std::vector<double> x{2, 4};
  scale(0.5, x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(VectorOps, CopyDuplicates) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y(3);
  copy(x, y);
  EXPECT_EQ(x, y);
}

TEST(VectorOps, DotMatchesHandComputation) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOps, DotOfEmptyIsZero) {
  std::vector<double> x, y;
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
}

TEST(VectorOps, Nrm2IsEuclidean) {
  std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
}

TEST(VectorOps, SignedSumAndAmax) {
  std::vector<double> x{1, -4, 2};
  EXPECT_DOUBLE_EQ(asum_signed(x), -1.0);
  EXPECT_DOUBLE_EQ(amax(x), 4.0);
  EXPECT_DOUBLE_EQ(amax(std::vector<double>{}), 0.0);
}

TEST(VectorOps, ChebyshevCombineMatchesDefinition) {
  // next = 2*hx - prev (Eq. 18's vector update).
  std::vector<double> hx{1, 2};
  std::vector<double> prev{10, 20};
  std::vector<double> next(2);
  chebyshev_combine(hx, prev, next);
  EXPECT_DOUBLE_EQ(next[0], -8.0);
  EXPECT_DOUBLE_EQ(next[1], -16.0);
}

TEST(VectorOps, ChebyshevCombineAllowsInPlaceOnPrev) {
  // The GPU kernels overwrite prev2 in place; the CPU helper must support
  // hx aliasing next (hx was stored into next's buffer by the SpMV).
  std::vector<double> next{1, 2};   // holds hx on entry
  std::vector<double> prev{10, 20};
  chebyshev_combine(next, prev, next);
  EXPECT_DOUBLE_EQ(next[0], -8.0);
  EXPECT_DOUBLE_EQ(next[1], -16.0);
}

TEST(VectorOps, SizeMismatchesThrow) {
  std::vector<double> a(3), b(4);
  EXPECT_THROW(axpby(1.0, a, 1.0, b), kpm::Error);
  EXPECT_THROW(axpy(1.0, a, b), kpm::Error);
  EXPECT_THROW(copy(a, b), kpm::Error);
  EXPECT_THROW((void)dot(a, b), kpm::Error);
  std::vector<double> c(3);
  EXPECT_THROW(chebyshev_combine(a, b, c), kpm::Error);
}

}  // namespace
