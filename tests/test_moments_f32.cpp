// Tests for the single-precision moment engine (precision ablation).
#include <gtest/gtest.h>

#include <cmath>

#include "core/moments_cpu.hpp"
#include "core/moments_f32.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

struct Fixture {
  linalg::CrsMatrix h_tilde;

  explicit Fixture(std::size_t l = 4) {
    const auto lat = lattice::HypercubicLattice::cubic(l, l, l);
    const auto h = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator op(h);
    h_tilde = linalg::rescale(h, linalg::make_spectral_transform(op));
  }
};

TEST(F32Moments, CloseToDoubleAtModerateN) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 64;
  p.random_vectors = 4;
  p.realizations = 2;
  CpuMomentEngine f64;
  CpuMomentEngineF32 f32;
  const auto a = f64.compute(op, p);
  const auto b = f32.compute(op, p);
  for (std::size_t n = 0; n < p.num_moments; ++n)
    EXPECT_NEAR(a.mu[n], b.mu[n], 5e-4) << "moment " << n;
}

TEST(F32Moments, ErrorGrowsWithN) {
  // The three-term recursion accumulates roundoff; the error of the last
  // moments must grow as N does (the reason the paper insists on double).
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.random_vectors = 2;
  p.realizations = 1;
  CpuMomentEngine f64;
  CpuMomentEngineF32 f32;

  auto tail_error = [&](std::size_t n) {
    p.num_moments = n;
    const auto a = f64.compute(op, p);
    const auto b = f32.compute(op, p);
    double err = 0.0;
    for (std::size_t k = n - 16; k < n; ++k) err = std::max(err, std::abs(a.mu[k] - b.mu[k]));
    return err;
  };
  const double err_small = tail_error(32);
  const double err_large = tail_error(512);
  EXPECT_GT(err_large, err_small);
  // Orders of magnitude above the double-precision floor (~1e-16).
  EXPECT_GT(err_large, 1e-7) << "single precision should visibly degrade by N=512";
}

TEST(F32Moments, Mu0StaysExactForRademacher) {
  // +-1 sums of < 2^24 terms are exact in binary32 too.
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 8;
  CpuMomentEngineF32 f32;
  EXPECT_DOUBLE_EQ(f32.compute(op, p, 2).mu[0], 1.0);
}

TEST(F32Moments, ModelsFasterThanDouble) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 256;
  const double t64 = CpuMomentEngine().compute(op, p, 1).model_seconds;
  const double t32 = CpuMomentEngineF32().compute(op, p, 1).model_seconds;
  EXPECT_LT(t32, 0.75 * t64);
}

TEST(F32Moments, DenseStorageWorksToo) {
  Fixture f(3);
  const auto dense = f.h_tilde.to_dense();
  linalg::MatrixOperator op(dense);
  MomentParams p;
  p.num_moments = 16;
  CpuMomentEngineF32 f32;
  CpuMomentEngine f64;
  const auto a = f64.compute(op, p, 4);
  const auto b = f32.compute(op, p, 4);
  for (std::size_t n = 0; n < 16; ++n) EXPECT_NEAR(a.mu[n], b.mu[n], 1e-4);
}

}  // namespace
