// Tests for the tight-binding current operator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "lattice/current.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using namespace kpm;
using namespace kpm::lattice;

TEST(CurrentOperator, IsAntisymmetric) {
  const auto lat = HypercubicLattice::square(5, 4);
  const auto a = build_current_operator_crs(lat, 0);
  const auto dense = a.to_dense();
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      EXPECT_DOUBLE_EQ(dense(r, c), -dense(c, r)) << r << "," << c;
}

TEST(CurrentOperator, ChainMatchesHandConstruction) {
  // Open chain: A_{i,i+1} = +t, A_{i+1,i} = -t, nothing else.
  const auto lat = HypercubicLattice::chain(6, Boundary::Open);
  const auto a = build_current_operator_crs(lat, 0);
  EXPECT_EQ(a.nnz(), 10u);
  for (std::size_t i = 0; i + 1 < 6; ++i) {
    EXPECT_DOUBLE_EQ(a.at(i, i + 1), 1.0);
    EXPECT_DOUBLE_EQ(a.at(i + 1, i), -1.0);
  }
}

TEST(CurrentOperator, PeriodicWrapUsesMinimumImage) {
  const auto lat = HypercubicLattice::chain(5);
  const auto a = build_current_operator_crs(lat, 0);
  // The 0 <-> 4 bond is a -1 step for site 0 (wrap), +1 for site 4.
  EXPECT_DOUBLE_EQ(a.at(0, 4), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
}

TEST(CurrentOperator, AxisSelectsDirection) {
  const auto lat = HypercubicLattice::square(4, 5);
  const auto ax = build_current_operator_crs(lat, 0);
  const auto ay = build_current_operator_crs(lat, 1);
  // x-operator couples only x-neighbours: (0,0) -> (1,0) yes, (0,1) no.
  EXPECT_NE(ax.at(lat.site_index(0, 0, 0), lat.site_index(1, 0, 0)), 0.0);
  EXPECT_EQ(ax.at(lat.site_index(0, 0, 0), lat.site_index(0, 1, 0)), 0.0);
  EXPECT_NE(ay.at(lat.site_index(0, 0, 0), lat.site_index(0, 1, 0)), 0.0);
  EXPECT_EQ(ay.at(lat.site_index(0, 0, 0), lat.site_index(1, 0, 0)), 0.0);
}

TEST(CurrentOperator, CommutesCorrectlyWithHomogeneousState) {
  // The uniform state is the k=0 Bloch state: zero velocity, A |1> = 0.
  const auto lat = HypercubicLattice::cubic(4, 4, 4);
  const auto a = build_current_operator_crs(lat, 2);
  std::vector<double> ones(lat.sites(), 1.0), out(lat.sites());
  a.multiply(ones, out);
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-14);
}

TEST(CurrentOperator, HoppingScalesLinearly) {
  const auto lat = HypercubicLattice::chain(8);
  TightBindingParams p;
  p.hopping = 2.5;
  const auto a = build_current_operator_crs(lat, 0, p);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 2.5);
}

TEST(CurrentOperator, RejectsDegenerateAxes) {
  const auto lat = HypercubicLattice::square(4, 4);
  EXPECT_THROW((void)build_current_operator_crs(lat, 2), kpm::Error);  // extent 1
  EXPECT_THROW((void)build_current_operator_crs(lat, 3), kpm::Error);  // no such axis
  const auto tiny = HypercubicLattice::chain(2);
  EXPECT_THROW((void)build_current_operator_crs(tiny, 0), kpm::Error);  // periodic extent 2
}

}  // namespace
