#include "diag/lanczos.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "diag/tridiag.hpp"
#include "linalg/vector_ops.hpp"
#include "rng/distributions.hpp"

namespace kpm::diag {

LanczosBounds lanczos_bounds(const linalg::MatrixOperator& op, const LanczosOptions& options) {
  const std::size_t n = op.dim();
  KPM_REQUIRE(n > 0, "lanczos_bounds: empty operator");
  KPM_REQUIRE(options.max_iterations > 0, "lanczos_bounds: need at least one iteration");

  // Random Rademacher start vector, normalized.
  std::vector<double> v(n), v_prev(n, 0.0), w(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = rng::draw_random_element(rng::RandomVectorKind::Rademacher, options.seed, 0, i);
  linalg::scale(1.0 / linalg::nrm2(v), v);

  Tridiagonal t;
  double beta = 0.0;
  double prev_lo = 0.0, prev_hi = 0.0;
  LanczosBounds result;

  const std::size_t cap = std::min(options.max_iterations, n);
  for (std::size_t k = 0; k < cap; ++k) {
    op.multiply(v, w);                                   // w = A v
    const double alpha = linalg::dot(v, w);              // alpha_k
    for (std::size_t i = 0; i < n; ++i) w[i] -= alpha * v[i] + beta * v_prev[i];

    // Full reorthogonalization is overkill for bound estimation; one pass
    // against the previous two vectors keeps the extremal Ritz values
    // accurate enough for rescaling purposes.
    t.diag.push_back(alpha);
    result.iterations = k + 1;

    beta = linalg::nrm2(w);
    const auto ritz = tridiagonal_eigenvalues(t);
    const double lo = ritz.front();
    const double hi = ritz.back();
    if (k > 0) {
      const double scale = std::max({std::abs(lo), std::abs(hi), 1e-300});
      if (std::abs(lo - prev_lo) <= options.tolerance * scale &&
          std::abs(hi - prev_hi) <= options.tolerance * scale) {
        result.converged = true;
        prev_lo = lo;
        prev_hi = hi;
        break;
      }
    }
    prev_lo = lo;
    prev_hi = hi;

    if (t.diag.size() == n) {  // full Krylov space: Ritz values are exact
      result.converged = true;
      break;
    }
    // Invariant-subspace breakdown (beta ~ roundoff): Ritz values exact.
    if (beta < 1e-12 * std::max(std::abs(lo), std::abs(hi))) {
      result.converged = true;
      break;
    }
    t.offdiag.push_back(beta);
    for (std::size_t i = 0; i < n; ++i) {
      v_prev[i] = v[i];
      v[i] = w[i] / beta;
    }
  }

  const double width = std::max(prev_hi - prev_lo, 1e-300);
  result.bounds = {prev_lo - options.safety_margin * width,
                   prev_hi + options.safety_margin * width};
  return result;
}

}  // namespace kpm::diag
