#include "core/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace kpm::core {
namespace {

constexpr const char* kMagic = "kpm-moments v1";

double parse_double(const std::string& token, const char* field) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(token, &consumed);
    KPM_REQUIRE(consumed == token.size(), std::string("trailing characters in ") + field);
    return v;
  } catch (const kpm::Error&) {
    throw;
  } catch (const std::exception&) {
    KPM_FAIL(std::string("moment file: cannot parse ") + field + " from '" + token + "'");
  }
}

}  // namespace

void save_moments(const std::string& path, const MomentFile& data) {
  KPM_REQUIRE(!data.mu.empty(), "save_moments: no moments to save");
  KPM_REQUIRE(data.transform_half_width > 0.0, "save_moments: invalid transform");
  std::ofstream f(path);
  KPM_REQUIRE(f.good(), "save_moments: cannot open " + path);

  char buf[64];
  f << kMagic << '\n';
  f << "dim " << data.dim << '\n';
  std::snprintf(buf, sizeof(buf), "%.17g %.17g", data.transform_center,
                data.transform_half_width);
  f << "transform " << buf << '\n';
  f << "engine " << (data.engine.empty() ? "unknown" : data.engine) << '\n';
  f << "count " << data.mu.size() << '\n';
  for (double m : data.mu) {
    std::snprintf(buf, sizeof(buf), "%.17g", m);
    f << buf << '\n';
  }
  KPM_REQUIRE(f.good(), "save_moments: write failure on " + path);
}

MomentFile load_moments(const std::string& path) {
  std::ifstream f(path);
  KPM_REQUIRE(f.good(), "load_moments: cannot open " + path);

  std::string line;
  KPM_REQUIRE(std::getline(f, line) && line == kMagic,
              "load_moments: not a kpm-moments v1 file: " + path);

  MomentFile data;
  std::size_t count = 0;
  bool have_dim = false, have_transform = false, have_count = false;
  while (std::getline(f, line)) {
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (key == "dim") {
      is >> data.dim;
      KPM_REQUIRE(!is.fail(), "load_moments: malformed dim line");
      have_dim = true;
    } else if (key == "transform") {
      std::string a, b;
      is >> a >> b;
      KPM_REQUIRE(!is.fail(), "load_moments: malformed transform line");
      data.transform_center = parse_double(a, "transform center");
      data.transform_half_width = parse_double(b, "transform half width");
      KPM_REQUIRE(data.transform_half_width > 0.0,
                  "load_moments: non-positive transform half width");
      have_transform = true;
    } else if (key == "engine") {
      is >> data.engine;
    } else if (key == "count") {
      is >> count;
      KPM_REQUIRE(!is.fail() && count > 0, "load_moments: malformed count line");
      have_count = true;
      break;  // moment list follows
    } else {
      KPM_FAIL("load_moments: unknown header field '" + key + "'");
    }
  }
  KPM_REQUIRE(have_dim && have_transform && have_count,
              "load_moments: missing header fields (need dim, transform, count)");

  data.mu.reserve(count);
  while (data.mu.size() < count && std::getline(f, line)) {
    if (line.empty()) continue;
    data.mu.push_back(parse_double(line, "moment"));
  }
  KPM_REQUIRE(data.mu.size() == count, "load_moments: truncated moment list in " + path);
  return data;
}

}  // namespace kpm::core
