#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace kpm {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

CliParser::Option& CliParser::add(const std::string& name, Kind kind, const std::string& help,
                                  std::string default_text) {
  KPM_REQUIRE(find(name) == nullptr, "duplicate option --" + name);
  options_.push_back(std::make_unique<Option>(
      Option{name, kind, help, std::move(default_text), 0, 0.0, {}, false}));
  return *options_.back();
}

const std::int64_t* CliParser::add_int(const std::string& name, std::int64_t def,
                                       const std::string& help) {
  Option& o = add(name, Kind::Int, help, std::to_string(def));
  o.int_value = def;
  return &o.int_value;
}

const double* CliParser::add_double(const std::string& name, double def, const std::string& help) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", def);
  Option& o = add(name, Kind::Double, help, buf);
  o.double_value = def;
  return &o.double_value;
}

const std::string* CliParser::add_string(const std::string& name, std::string def,
                                         const std::string& help) {
  Option& o = add(name, Kind::String, help, def);
  o.string_value = std::move(def);
  return &o.string_value;
}

const bool* CliParser::add_flag(const std::string& name, const std::string& help) {
  Option& o = add(name, Kind::Flag, help, "false");
  return &o.flag_value;
}

CliParser::Option* CliParser::find(const std::string& name) {
  for (const auto& o : options_)
    if (o->name == name) return o.get();
  return nullptr;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& o : options_) {
    os << "  --" << o->name;
    if (o->kind != Kind::Flag) os << "=<value>";
    os << "\n      " << o->help << " (default: " << o->default_text << ")\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

void CliParser::parse(int argc, const char* const* argv) {
  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), msg.c_str(), usage().c_str());
    std::exit(2);
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage().c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) fail("unexpected positional argument: " + arg);
    arg = arg.substr(2);

    std::string name = arg;
    std::optional<std::string> value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }

    Option* opt = find(name);
    if (opt == nullptr) fail("unknown option --" + name);

    if (opt->kind == Kind::Flag) {
      if (value.has_value()) fail("flag --" + name + " does not take a value");
      opt->flag_value = true;
      continue;
    }
    if (!value.has_value()) {
      if (i + 1 >= argc) fail("option --" + name + " needs a value");
      value = argv[++i];
    }
    try {
      switch (opt->kind) {
        case Kind::Int:
          opt->int_value = std::stoll(*value);
          break;
        case Kind::Double:
          opt->double_value = std::stod(*value);
          break;
        case Kind::String:
          opt->string_value = *value;
          break;
        case Kind::Flag:
          break;
      }
    } catch (const std::exception&) {
      fail("cannot parse value '" + *value + "' for --" + name);
    }
  }
}

}  // namespace kpm
