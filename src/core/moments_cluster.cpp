#include "core/moments_cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/moments_cpu.hpp"
#include "cpumodel/roofline.hpp"
#include "gpusim/cost_model.hpp"
#include "linalg/shard.hpp"
#include "obs/parallel.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "rng/distributions.hpp"

namespace kpm::core {
namespace {

/// Per-lane state of one blocked sharded recursion: four working vectors
/// per shard (owned rows + ghost slots, interleaved block layout) plus the
/// block-dot scratch.  Ragged final groups use b * working_size prefixes.
struct ShardWorkspace {
  std::size_t block;
  std::vector<std::vector<double>> r0, prev2, prev, next;
  std::vector<double> acc;
  std::vector<linalg::DotLanes> lanes;

  ShardWorkspace(const linalg::ShardedMatrix& sm, std::size_t b)
      : block(b), acc(b), lanes(b) {
    const std::size_t nodes = sm.nodes();
    r0.resize(nodes);
    prev2.resize(nodes);
    prev.resize(nodes);
    next.resize(nodes);
    for (std::size_t p = 0; p < nodes; ++p) {
      const std::size_t len = sm.shard(p).working_size() * b;
      r0[p].assign(len, 0.0);
      prev2[p].assign(len, 0.0);
      prev[p].assign(len, 0.0);
      next[p].assign(len, 0.0);
    }
  }
};

/// The simulated halo exchange: copies every ghost slot's value from its
/// owner's owned slot, for all shards.  Ordering is irrelevant — values
/// are copied, never combined.
void exchange_ghosts(const linalg::ShardedMatrix& sm, std::vector<std::vector<double>>& v,
                     std::size_t b) {
  for (std::size_t p = 0; p < sm.nodes(); ++p) {
    const linalg::MatrixShard& s = sm.shard(p);
    for (std::size_t gi = 0; gi < s.ghost_rows.size(); ++gi) {
      const linalg::GhostSource src = s.ghost_sources[gi];
      const std::vector<double>& from = v[src.owner];
      const std::size_t src_slot = sm.shard(src.owner).owned_offset() + src.local_row;
      const std::size_t dst_slot = s.ghost_position(gi);
      for (std::size_t j = 0; j < b; ++j) v[p][dst_slot * b + j] = from[src_slot * b + j];
    }
  }
}

/// Per-member dots <x_j | y_j> over the full distributed vectors: the four
/// canonical lanes are carried through the shards in node order and
/// combined once per member — bit-identical to linalg::block_dot on the
/// assembled global vectors.
void sharded_block_dot(const linalg::ShardedMatrix& sm,
                       const std::vector<std::vector<double>>& x,
                       const std::vector<std::vector<double>>& y, std::size_t b,
                       std::span<linalg::DotLanes> lanes) {
  for (std::size_t j = 0; j < b; ++j) lanes[j] = linalg::DotLanes{};
  for (std::size_t p = 0; p < sm.nodes(); ++p) {
    const linalg::MatrixShard& s = sm.shard(p);
    const std::size_t off = s.owned_offset() * b;
    const std::size_t len = s.local_rows() * b;
    linalg::block_dot_lanes_carry(std::span<const double>(x[p].data() + off, len),
                                  std::span<const double>(y[p].data() + off, len), b,
                                  s.row_begin, lanes);
  }
}

/// One blocked sharded recursion over instances [first, first + b): the
/// sharded mirror of moments_cpu's accumulate_group, metering the same
/// GLOBAL totals (the counters are partition-invariant by construction).
/// `fill_r0` fills the owned slots of every shard's r0 working vector.
template <typename Fill>
void accumulate_sharded_group(const linalg::ShardedMatrix& sm,
                              const linalg::MatrixOperator& op, std::size_t b, Fill&& fill_r0,
                              std::size_t n, std::span<double> mu_rows, ShardWorkspace& ws) {
  const std::size_t d = op.dim();
  const auto dd = static_cast<double>(d);
  const auto bb = static_cast<double>(b);
  const std::size_t nodes = sm.nodes();
  const auto owned = [&](std::vector<std::vector<double>>& v, std::size_t p) {
    const linalg::MatrixShard& s = sm.shard(p);
    return std::span<double>(v[p].data() + s.owned_offset() * b, s.local_rows() * b);
  };
  const auto working = [&](std::vector<std::vector<double>>& v, std::size_t p) {
    return std::span<const double>(v[p].data(), sm.shard(p).working_size() * b);
  };
  const std::span<double> acc(ws.acc.data(), b);
  const std::span<linalg::DotLanes> lanes(ws.lanes.data(), b);

  obs::add(obs::Counter::InstancesExecuted, bb);
  fill_r0(ws.r0);
  exchange_ghosts(sm, ws.r0, b);

  // mu~_0 = <r0 | r0>.
  sharded_block_dot(sm, ws.r0, ws.r0, b, lanes);
  for (std::size_t j = 0; j < b; ++j) {
    mu_rows[j * n] += lanes[j].combine();
    obs::meter_dot(d);
  }

  // r1 = H~ r0, shard-local after the halo exchange above.  Metered like
  // linalg::spmmv_multiply on the global operator.
  for (std::size_t p = 0; p < nodes; ++p)
    sm.shard_multiply_block(p, b, working(ws.r0, p), owned(ws.prev, p), acc);
  obs::add(obs::Counter::SpmvCalls, bb);
  obs::add(obs::Counter::Flops, bb * static_cast<double>(op.spmv_flops()));
  obs::add(obs::Counter::BytesStreamed,
           static_cast<double>(op.spmv_matrix_bytes()) + 2.0 * bb * dd * sizeof(double));
  exchange_ghosts(sm, ws.prev, b);

  if (n > 1) {
    sharded_block_dot(sm, ws.r0, ws.prev, b, lanes);
    for (std::size_t j = 0; j < b; ++j) {
      mu_rows[j * n + 1] += lanes[j].combine();
      obs::meter_dot(d);
    }
  }
  for (std::size_t p = 0; p < nodes; ++p) {
    const std::size_t len = sm.shard(p).working_size() * b;
    std::copy(ws.r0[p].begin(), ws.r0[p].begin() + static_cast<std::ptrdiff_t>(len),
              ws.prev2[p].begin());
  }
  obs::meter_stream_bytes(2.0 * dd * bb * sizeof(double));

  for (std::size_t k = 2; k < n; ++k) {
    // Unfused multiply + combine + lane-carry dot: bit-identical to the
    // serial engine's fused step by the fused kernels' own contract.
    for (std::size_t p = 0; p < nodes; ++p)
      sm.shard_multiply_block(p, b, working(ws.prev, p), owned(ws.next, p), acc);
    for (std::size_t p = 0; p < nodes; ++p) {
      const linalg::MatrixShard& s = sm.shard(p);
      const std::size_t off = s.owned_offset() * b;
      const std::size_t len = s.local_rows() * b;
      double* nx = ws.next[p].data() + off;
      const double* p2 = ws.prev2[p].data() + off;
      for (std::size_t i = 0; i < len; ++i) nx[i] = 2.0 * nx[i] - p2[i];
    }
    sharded_block_dot(sm, ws.r0, ws.next, b, lanes);
    for (std::size_t j = 0; j < b; ++j) mu_rows[j * n + k] += lanes[j].combine();
    // Metered exactly like one fused spmmv_combine_dot pass.
    const double bytes =
        static_cast<double>(op.spmv_matrix_bytes()) + 4.0 * bb * dd * sizeof(double);
    obs::add(obs::Counter::SpmvCalls, bb);
    obs::add(obs::Counter::DotCalls, bb);
    obs::add(obs::Counter::FusedCalls, 1.0);
    obs::add(obs::Counter::Flops,
             bb * (static_cast<double>(op.spmv_flops()) + 4.0 * dd));
    obs::add(obs::Counter::BytesStreamed, bytes);
    obs::add(obs::Counter::FusedBytes, bytes);
    exchange_ghosts(sm, ws.next, b);
    std::swap(ws.prev2, ws.prev);
    std::swap(ws.prev, ws.next);
  }
}

/// RNG fill of the owned slots with the members' GLOBAL instance streams:
/// member j of the group starting at `first` draws stream first + j,
/// element index = global row — the same values fill_random_vector_block
/// produces, laid out shard by shard.
void fill_sharded_block(const linalg::ShardedMatrix& sm, const MomentParams& params,
                        std::size_t first, std::size_t b,
                        std::vector<std::vector<double>>& r0) {
  for (std::size_t p = 0; p < sm.nodes(); ++p) {
    const linalg::MatrixShard& s = sm.shard(p);
    for (std::size_t lr = 0; lr < s.local_rows(); ++lr) {
      const std::size_t slot = (s.owned_offset() + lr) * b;
      for (std::size_t j = 0; j < b; ++j)
        r0[p][slot + j] = rng::draw_random_element(params.vector_kind, params.seed, first + j,
                                                   s.row_begin + lr);
    }
  }
  obs::add(obs::Counter::RngElements,
           static_cast<double>(sm.dim()) * static_cast<double>(b));
}

/// Serial-reference per-instance modeled ticks (Core i7-930, like every
/// other engine) — deliberately independent of node specs, P and threads,
/// so histograms are invariant across every cluster configuration.
std::uint64_t cluster_instance_ticks(const linalg::MatrixOperator& op, std::size_t n,
                                     std::size_t block) {
  const cpumodel::CpuSpec spec = cpumodel::CpuSpec::core_i7_930();
  if (block <= 1)
    return obs::seconds_to_ns_ticks(modeled_reference_seconds(op, n, 1, spec));
  // Rebuild moments_cpu's blocked group workload: fill + mu~0/mu~1 dots +
  // copy, then (n - 1) fused steps with the matrix amortized over the block.
  const auto dd = static_cast<double>(op.dim());
  const auto bb = static_cast<double>(block);
  const cpumodel::CpuWorkload per_step = fused_step_workload(op, /*dots=*/1, block);
  cpumodel::CpuWorkload w;
  w.flops = (10.0 * dd + 2.0 * dd) * bb;
  w.bytes_streamed = 2.0 * dd * sizeof(double) * bb;
  w.working_set_bytes = per_step.working_set_bytes;
  for (std::size_t k = 1; k < n; ++k) w += per_step;
  return obs::seconds_to_ns_ticks(cpumodel::model_cpu_time(spec, w).seconds /
                                  static_cast<double>(block));
}

// ---------------------------------------------------------------------------
// Cost model.  Shard compute is priced per node (CPU roofline or gpusim
// kernel model); each recursion step overlaps the halo transfer with the
// interior compute: t_step(p) = t_boundary(p) + max(t_interior(p),
// t_halo(p)), and the bulk-synchronous cluster step is max_p t_step(p).

/// Modeled per-step / per-group timings of one node.
struct NodeCost {
  double boundary_s = 0.0;  ///< boundary-row share of one recursion step
  double interior_s = 0.0;  ///< interior-row share of one recursion step
  double halo_s = 0.0;      ///< halo receive time per step
  double extra_s = 0.0;     ///< per-group fill + initial dots + copy
  double step_flops = 0.0;
  double step_bytes = 0.0;
  double extra_flops = 0.0;
  double extra_bytes = 0.0;
};

/// Modeled cost of ONE instance group of `b` members.
struct GroupCost {
  std::vector<NodeCost> nodes;
  double step_parallel = 0.0;  ///< max_p t_step(p)
  double allreduce_s = 0.0;
  double parallel = 0.0;
  double serialized = 0.0;
  double halo = 0.0;
  double exposed = 0.0;
  double halo_bytes_step = 0.0;
  double allreduce_bytes = 0.0;
};

/// Seconds of a compute phase on `node`.  `write_bytes` is the output
/// stream share of `bytes` (the GPU model prices reads and writes
/// separately; the CPU roofline only sees the total).
double node_compute_seconds(const ClusterNodeSpec& node, double flops, double bytes,
                            double write_bytes, double working_set,
                            std::size_t threads_hint) {
  if (node.kind == ClusterNodeSpec::Kind::GpuDevice) {
    gpusim::CostCounters c;
    c.flops = flops;
    c.global_read_bytes[static_cast<std::size_t>(gpusim::AccessPattern::Coalesced)] =
        bytes - write_bytes;
    c.global_write_bytes[static_cast<std::size_t>(gpusim::AccessPattern::Coalesced)] =
        write_bytes;
    return gpusim::model_kernel_time(node.gpu, gpusim::ExecConfig::linear(threads_hint, 128), c)
        .seconds;
  }
  cpumodel::CpuWorkload w;
  w.flops = flops;
  w.bytes_streamed = bytes;
  w.working_set_bytes = working_set;
  return cpumodel::model_cpu_time(node.cpu, w).seconds;
}

GroupCost group_cost(const linalg::ShardedMatrix& sm,
                     const std::vector<ClusterNodeSpec>& specs,
                     const gpusim::InterconnectSpec& link, std::size_t n, std::size_t b) {
  GroupCost gc;
  const auto bb = static_cast<double>(b);
  const std::size_t nodes = sm.nodes();
  gc.nodes.resize(nodes);
  double step_compute = 0.0;
  double extra_parallel = 0.0;
  double halo_per_step = 0.0;
  for (std::size_t p = 0; p < nodes; ++p) {
    const linalg::MatrixShard& s = sm.shard(p);
    NodeCost& nc = gc.nodes[p];
    const auto rows = static_cast<double>(s.local_rows());
    const auto nnz = static_cast<double>(s.local.nnz());
    nc.step_flops = bb * (2.0 * nnz + 4.0 * rows);
    nc.step_bytes = static_cast<double>(s.matrix_bytes) + 4.0 * bb * rows * sizeof(double);
    const double t_step =
        node_compute_seconds(specs[p], nc.step_flops, nc.step_bytes,
                             /*write_bytes=*/bb * rows * sizeof(double), nc.step_bytes,
                             s.local_rows() * b);
    const double frac = nnz > 0.0 ? static_cast<double>(s.boundary_nnz) / nnz : 0.0;
    nc.boundary_s = t_step * frac;
    nc.interior_s = t_step - nc.boundary_s;
    nc.halo_s = gpusim::halo_exchange_seconds(
        link, s.neighbour_count, static_cast<double>(s.halo_recv_doubles) * bb * sizeof(double));
    nc.extra_flops = 12.0 * bb * rows;
    nc.extra_bytes = 2.0 * bb * rows * sizeof(double);
    nc.extra_s = node_compute_seconds(specs[p], nc.extra_flops, nc.extra_bytes,
                                      /*write_bytes=*/bb * rows * sizeof(double),
                                      4.0 * bb * rows * sizeof(double), s.local_rows() * b);

    gc.step_parallel = std::max(gc.step_parallel, nc.boundary_s + std::max(nc.interior_s, nc.halo_s));
    step_compute = std::max(step_compute, nc.boundary_s + nc.interior_s);
    extra_parallel = std::max(extra_parallel, nc.extra_s);
    halo_per_step += nc.halo_s;
    gc.halo_bytes_step += static_cast<double>(s.halo_recv_doubles) * bb * sizeof(double);
    gc.serialized += nc.extra_s + static_cast<double>(n - 1) * (nc.boundary_s + nc.interior_s);
  }
  const auto steps = static_cast<double>(n - 1);
  gc.allreduce_bytes = static_cast<double>(n) * bb * sizeof(double);
  gc.allreduce_s = gpusim::ring_all_reduce_seconds(link, nodes, gc.allreduce_bytes);
  gc.parallel = extra_parallel + steps * gc.step_parallel + gc.allreduce_s;
  gc.halo = steps * halo_per_step;
  gc.exposed = steps * (gc.step_parallel - step_compute);
  return gc;
}

/// Appends one Perfetto-visible timeline per node (its own process in the
/// Chrome-trace export): the first instance group on the shared
/// bulk-synchronous clock — setup, one detailed recursion step with the
/// halo receive on the copy lane, the remaining steps aggregated, and the
/// closing ring all-reduce.
void emit_node_timelines(const std::string& engine_name, const linalg::ShardedMatrix& sm,
                         const std::vector<ClusterNodeSpec>& specs, const GroupCost& gc,
                         std::size_t n, std::size_t b) {
  obs::Report* report = obs::active_report();
  if (report == nullptr) return;
  double setup_parallel = 0.0;
  for (const NodeCost& nc : gc.nodes) setup_parallel = std::max(setup_parallel, nc.extra_s);
  const double steps_end =
      setup_parallel + static_cast<double>(n - 1) * gc.step_parallel;
  for (std::size_t p = 0; p < sm.nodes(); ++p) {
    const linalg::MatrixShard& s = sm.shard(p);
    const NodeCost& nc = gc.nodes[p];
    obs::DeviceTimelineRecord rec;
    rec.label = engine_name + ".node" + std::to_string(p);
    rec.device = specs[p].label();
    if (specs[p].kind == ClusterNodeSpec::Kind::GpuDevice) {
      rec.peak_flops = specs[p].gpu.peak_dp_flops();
      rec.peak_bandwidth = specs[p].gpu.global_mem_bandwidth;
    } else {
      rec.peak_flops = specs[p].cpu.peak_flops();
      rec.peak_bandwidth = specs[p].cpu.dram_bandwidth;
    }
    rec.streams = 2;
    rec.critical_path_seconds = gc.parallel;

    const auto ev = [&](const char* kind, std::string label, std::size_t stream, double start,
                        double end, double bytes, double flops, double global_bytes) {
      obs::TimelineEventRecord e;
      e.kind = kind;
      e.label = std::move(label);
      e.stream = stream;
      e.start_seconds = start;
      e.end_seconds = end;
      e.bytes = bytes;
      e.flops = flops;
      e.global_bytes = global_bytes;
      rec.events.push_back(std::move(e));
    };
    ev("kernel", "group.setup (fill + mu~0/mu~1)", 0, 0.0, nc.extra_s, 0.0, nc.extra_flops,
       nc.extra_bytes);
    // Step 0 in detail: boundary rows first, then the halo receive on the
    // copy lane overlapped with the interior rows.
    const double t0 = setup_parallel;
    ev("kernel", "step0.boundary-rows", 0, t0, t0 + nc.boundary_s, 0.0,
       nc.step_flops * (nc.boundary_s / std::max(nc.boundary_s + nc.interior_s, 1e-300)), 0.0);
    ev("h2d", "step0.halo-recv", 1, t0 + nc.boundary_s, t0 + nc.boundary_s + nc.halo_s,
       static_cast<double>(s.halo_recv_doubles) * static_cast<double>(b) * sizeof(double), 0.0,
       0.0);
    ev("kernel", "step0.interior-rows", 0, t0 + nc.boundary_s,
       t0 + nc.boundary_s + nc.interior_s, 0.0,
       nc.step_flops * (nc.interior_s / std::max(nc.boundary_s + nc.interior_s, 1e-300)), 0.0);
    if (n > 2)
      ev("kernel", "steps 1.." + std::to_string(n - 2) + " (aggregate)", 0,
         setup_parallel + gc.step_parallel, steps_end, 0.0,
         static_cast<double>(n - 2) * nc.step_flops,
         static_cast<double>(n - 2) * nc.step_bytes);
    ev("d2h", "mu~ ring all-reduce", 1, steps_end, steps_end + gc.allreduce_s,
       gc.allreduce_bytes, 0.0, 0.0);
    report->timelines.push_back(std::move(rec));
  }
}

}  // namespace

ClusterNodeSpec ClusterNodeSpec::cpu_node(cpumodel::CpuSpec spec) {
  ClusterNodeSpec n;
  n.kind = Kind::CpuRoofline;
  n.cpu = std::move(spec);
  return n;
}

ClusterNodeSpec ClusterNodeSpec::gpu_node(gpusim::DeviceSpec spec) {
  ClusterNodeSpec n;
  n.kind = Kind::GpuDevice;
  n.gpu = std::move(spec);
  return n;
}

ClusterMomentEngine::ClusterMomentEngine(ClusterEngineConfig config)
    : config_(std::move(config)) {
  config_.link.validate();
  KPM_REQUIRE(config_.threads >= 1, "ClusterMomentEngine: need at least one thread");
  KPM_REQUIRE(config_.resolved_nodes() >= 1,
              "ClusterMomentEngine: cluster needs at least one node");
  if (!config_.nodes.empty() && config_.decomposition.has_value())
    KPM_REQUIRE(config_.nodes.size() == config_.decomposition->nodes(),
                "ClusterMomentEngine: " + std::to_string(config_.nodes.size()) +
                    " node specs for a " + std::to_string(config_.decomposition->nodes()) +
                    "-node decomposition");
  for (const ClusterNodeSpec& n : config_.nodes) {
    if (n.kind == ClusterNodeSpec::Kind::GpuDevice)
      n.gpu.validate();
    else
      n.cpu.validate();
  }
}

ClusterMomentEngine::~ClusterMomentEngine() = default;

std::string ClusterMomentEngine::name() const {
  return "cluster-sharded-x" + std::to_string(config_.resolved_nodes());
}

MomentResult ClusterMomentEngine::compute(const linalg::MatrixOperator& h_tilde,
                                          const MomentParams& params,
                                          std::size_t sample_instances) {
  params.validate();
  const std::size_t d = h_tilde.dim();
  const std::size_t n = params.num_moments;
  const std::size_t total = params.instances();
  const std::size_t executed = resolve_sample_count(sample_instances, total);

  const linalg::Decomposition dec =
      config_.decomposition.has_value()
          ? *config_.decomposition
          : linalg::Decomposition::uniform(d, config_.resolved_nodes(), config_.halo_width);
  KPM_REQUIRE(dec.dim() == d, "ClusterMomentEngine: decomposition covers " +
                                  std::to_string(dec.dim()) + " rows but H~ has " +
                                  std::to_string(d));
  std::vector<ClusterNodeSpec> specs = config_.nodes;
  if (specs.empty()) specs.assign(dec.nodes(), ClusterNodeSpec::cpu_node());
  KPM_REQUIRE(specs.size() == dec.nodes(),
              "ClusterMomentEngine: node spec count does not match the decomposition");
  const linalg::Storage shard_storage =
      h_tilde.storage() == linalg::Storage::Sell ? linalg::Storage::Sell : linalg::Storage::Crs;
  const linalg::ShardedMatrix sm(h_tilde, dec, shard_storage);

  const std::size_t block = params.block_r;
  const std::size_t eff_block = block <= 1 ? 1 : block;
  const std::size_t groups = (executed + eff_block - 1) / eff_block;

  // Stable span name (no node/thread suffix): deterministic fingerprints of
  // a fixed decomposition must not depend on the host thread count.
  obs::ScopedSpan span("moments.cluster-sharded");
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(n));
  Stopwatch wall;
  std::vector<double> mu_sum(n, 0.0);
  const bool serial_path = config_.threads == 1 || groups == 1;
  const std::uint64_t instance_ticks = cluster_instance_ticks(h_tilde, n, block);

  const auto run_group = [&](std::size_t g, ShardWorkspace& ws, std::span<double> rows) {
    const std::size_t first = g * eff_block;
    const std::size_t b = std::min(eff_block, executed - first);
    accumulate_sharded_group(
        sm, h_tilde, b,
        [&](std::vector<std::vector<double>>& r0) {
          fill_sharded_block(sm, params, first, b, r0);
        },
        n, rows, ws);
    for (std::size_t j = 0; j < b; ++j) obs::record(obs::Histo::InstanceModelNs, instance_ticks);
  };

  if (serial_path) {
    ShardWorkspace ws(sm, eff_block);
    std::vector<double> rows(eff_block * n);
    for (std::size_t g = 0; g < groups; ++g) {
      std::fill(rows.begin(), rows.end(), 0.0);
      run_group(g, ws, rows);
      const std::size_t b = std::min(eff_block, executed - g * eff_block);
      for (std::size_t j = 0; j < b; ++j) {
        const double* row = rows.data() + j * n;
        for (std::size_t k = 0; k < n; ++k) mu_sum[k] += row[k];
      }
    }
  } else {
    if (!pool_ || pool_->size() != static_cast<std::size_t>(config_.threads))
      pool_ = std::make_unique<common::ThreadPool>(static_cast<std::size_t>(config_.threads));
    // Instance-major contribution rows, summed in instance order below —
    // the same thread-invariance contract as CpuParallelMomentEngine.
    std::vector<double> contributions(executed * n, 0.0);
    obs::sharded_parallel_for(
        *pool_, groups, [&](std::size_t /*lane*/, std::size_t begin, std::size_t end) {
          ShardWorkspace ws(sm, eff_block);
          const std::span<double> rows(contributions);
          for (std::size_t g = begin; g < end; ++g) {
            const std::size_t first = g * eff_block;
            const std::size_t b = std::min(eff_block, executed - first);
            run_group(g, ws, rows.subspan(first * n, b * n));
          }
        });
    for (std::size_t inst = 0; inst < executed; ++inst) {
      const double* row = contributions.data() + inst * n;
      for (std::size_t k = 0; k < n; ++k) mu_sum[k] += row[k];
    }
  }

  MomentResult result;
  result.engine = name();
  result.instances_executed = executed;
  result.instances_total = total;
  result.threads_used = serial_path ? 1 : config_.threads;
  result.wall_seconds = wall.seconds();
  result.mu.resize(n);
  const double denom = static_cast<double>(d) * static_cast<double>(executed);
  for (std::size_t k = 0; k < n; ++k) result.mu[k] = mu_sum[k] / denom;

  // Cost model, extrapolated to all `total` instances: full groups of
  // `block` plus one ragged group.
  const std::size_t full = total / eff_block;
  const std::size_t rem = total % eff_block;
  const GroupCost gc = group_cost(sm, specs, config_.link, n, eff_block);
  scaling_ = ClusterScalingReport{};
  scaling_.nodes = sm.nodes();
  const auto add_groups = [&](const GroupCost& g, double count) {
    scaling_.parallel_seconds += count * g.parallel;
    scaling_.serialized_seconds += count * g.serialized;
    scaling_.halo_seconds += count * g.halo;
    scaling_.exposed_halo_seconds += count * g.exposed;
    scaling_.allreduce_seconds += count * g.allreduce_s;
    scaling_.halo_bytes_total += count * static_cast<double>(n - 1) * g.halo_bytes_step;
    scaling_.allreduce_bytes_total += count * g.allreduce_bytes;
  };
  add_groups(gc, static_cast<double>(full));
  if (rem > 0) add_groups(group_cost(sm, specs, config_.link, n, rem), 1.0);
  scaling_.halo_bytes_per_step = gc.halo_bytes_step;
  scaling_.communication_seconds = scaling_.halo_seconds + scaling_.allreduce_seconds;
  scaling_.efficiency =
      scaling_.parallel_seconds > 0.0
          ? scaling_.serialized_seconds /
                (static_cast<double>(sm.nodes()) * scaling_.parallel_seconds)
          : 0.0;

  result.model_seconds = scaling_.parallel_seconds;
  result.transfer_seconds = scaling_.allreduce_seconds + scaling_.exposed_halo_seconds;
  result.compute_seconds = result.model_seconds - result.transfer_seconds;

  emit_node_timelines(name(), sm, specs, full > 0 ? gc : group_cost(sm, specs, config_.link, n, rem),
                      n, full > 0 ? eff_block : rem);
  return result;
}

std::vector<double> cluster_ldos_moments(const linalg::MatrixOperator& h_tilde,
                                         const linalg::Decomposition& dec, std::size_t site,
                                         std::size_t num_moments) {
  KPM_REQUIRE(site < h_tilde.dim(), "cluster_ldos_moments: site out of range");
  KPM_REQUIRE(num_moments >= 1, "cluster_ldos_moments: need at least one moment");
  KPM_REQUIRE(dec.dim() == h_tilde.dim(),
              "cluster_ldos_moments: decomposition does not match the operator");
  obs::ScopedSpan span("ldos.cluster-sharded");
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(num_moments));
  const linalg::Storage shard_storage =
      h_tilde.storage() == linalg::Storage::Sell ? linalg::Storage::Sell : linalg::Storage::Crs;
  const linalg::ShardedMatrix sm(h_tilde, dec, shard_storage);
  std::vector<double> mu(num_moments, 0.0);

  const auto fill_unit = [&](std::vector<std::vector<double>>& r0) {
    for (auto& v : r0) std::fill(v.begin(), v.end(), 0.0);
    const std::size_t owner = dec.owner_of(site);
    const linalg::MatrixShard& s = sm.shard(owner);
    r0[owner][s.owned_offset() + (site - s.row_begin)] = 1.0;
  };

  if (num_moments == 1) {
    // Degenerate n = 1: just mu_0 = <e|e> (mirrors ldos_moments' early out).
    ShardWorkspace ws(sm, 1);
    fill_unit(ws.r0);
    obs::add(obs::Counter::InstancesExecuted, 1.0);
    obs::meter_stream_bytes(2.0 * static_cast<double>(h_tilde.dim()) * sizeof(double));
    linalg::DotLanes lanes;
    for (std::size_t p = 0; p < sm.nodes(); ++p) {
      const linalg::MatrixShard& s = sm.shard(p);
      linalg::dot_lanes_carry(
          std::span<const double>(ws.r0[p].data() + s.owned_offset(), s.local_rows()),
          std::span<const double>(ws.r0[p].data() + s.owned_offset(), s.local_rows()),
          s.row_begin, lanes);
    }
    mu[0] = lanes.combine();
    obs::meter_dot(h_tilde.dim());
    return mu;
  }

  ShardWorkspace ws(sm, 1);
  accumulate_sharded_group(sm, h_tilde, 1, fill_unit, num_moments, mu, ws);
  return mu;
}

}  // namespace kpm::core
