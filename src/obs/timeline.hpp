// Captured gpusim device timelines, ready for profile export.
//
// `obs::record_device` snapshots the raw per-event timeline of a simulated
// device (kind, stream, modeled [start, end], per-kernel cost counters and
// occupancy) plus the device peaks into the active report.  The Chrome
// trace exporter turns each snapshot into per-stream and copy-engine
// tracks, and the hotspot tables use the peaks for roofline attribution.
// Everything here is modeled simulator state — deterministic for a
// deterministic workload, bit-identical across runs and thread counts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace kpm::obs {

/// One captured timeline event (mirrors gpusim::TimelineEvent, decoupled
/// from the gpusim headers so report consumers need no simulator types).
struct TimelineEventRecord {
  std::string kind;   ///< "alloc", "h2d", "d2h", "kernel" or "memset"
  std::string label;  ///< kernel or buffer name
  std::size_t stream = 0;
  double start_seconds = 0.0;  ///< position on the stream's simulated clock
  double end_seconds = 0.0;
  double bytes = 0.0;         ///< payload (transfers/allocs/memsets)
  double flops = 0.0;         ///< kernel launches only
  double global_bytes = 0.0;  ///< kernel launches only
  double shared_bytes = 0.0;  ///< kernel launches only
  double occupancy = 0.0;     ///< kernel launches only, [0, 1]
  std::string bound;          ///< dominant roofline term for kernels

  [[nodiscard]] double seconds() const noexcept { return end_seconds - start_seconds; }
};

/// One device run: every event plus the peaks needed for roofline ratios.
struct DeviceTimelineRecord {
  std::string label;   ///< engine label passed to record_device
  std::string device;  ///< DeviceSpec name
  double peak_flops = 0.0;      ///< peak double-precision FLOP/s
  double peak_bandwidth = 0.0;  ///< peak global-memory bytes/s
  std::size_t streams = 1;
  double critical_path_seconds = 0.0;
  std::vector<TimelineEventRecord> events;
};

}  // namespace kpm::obs
