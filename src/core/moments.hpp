// Moment-engine interface and result type.
//
// A moment engine evaluates the KPM moments mu_n = (1/D) Tr[T_n(H~)]
// stochastically (paper Eqs. 16-19) on some execution platform: the serial
// CPU reference, the paired-moment CPU optimization, or the simulated GPU.
// Engines report both *functional* output (the moments) and *cost* output
// (modeled seconds on the platform they represent, plus the real host time
// of the run).
//
// Instance sampling: engines can be asked to execute only the first K of
// the S*R instances functionally and extrapolate the cost to all instances
// (exact, because per-instance operation counts are identical for a fixed
// matrix; see DESIGN.md §2).  K = 0 means "execute all".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "linalg/operator.hpp"

namespace kpm::core {

/// Output of one moment computation.
struct MomentResult {
  /// mu[n] ~ (1/D) Tr[T_n(H~)], averaged over the executed instances.
  std::vector<double> mu;

  std::size_t instances_executed = 0;  ///< functionally executed instances
  std::size_t instances_total = 0;     ///< S*R the cost model accounts for

  /// Host threads that executed the functional run (1 for serial engines
  /// and for the simulated platforms; the parallel CPU engine reports its
  /// worker count so benches can label measured speedups correctly).
  int threads_used = 1;

  /// Simulated seconds on the modeled platform, extrapolated to
  /// instances_total.  The number every fig* bench reports.
  double model_seconds = 0.0;
  /// Real wall-clock seconds of the functional execution on the host
  /// (depends on the build machine; secondary diagnostic only).
  double wall_seconds = 0.0;

  // Model-time breakdown (all platforms; transfer/allocation stay 0 for CPU
  // engines).
  double compute_seconds = 0.0;
  double transfer_seconds = 0.0;
  double allocation_seconds = 0.0;

  std::string engine;  ///< engine name for reports
};

/// Abstract moment engine.
class MomentEngine {
 public:
  virtual ~MomentEngine() = default;

  /// Platform/algorithm label, e.g. "cpu-reference" or "gpu-instance-per-thread".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Computes moments of the rescaled operator `h_tilde` (spectrum inside
  /// [-1, 1]).  `sample_instances` = 0 executes all S*R instances; K > 0
  /// executes min(K, S*R) and extrapolates the cost.
  [[nodiscard]] virtual MomentResult compute(const linalg::MatrixOperator& h_tilde,
                                             const MomentParams& params,
                                             std::size_t sample_instances = 0) = 0;
};

}  // namespace kpm::core
