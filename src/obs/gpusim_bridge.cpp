#include "obs/gpusim_bridge.hpp"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/device_spec.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace kpm::obs {

namespace {

DeviceTimelineRecord snapshot_timeline(const gpusim::Device& device, std::string_view label,
                                       const gpusim::TimelineSummary& summary) {
  DeviceTimelineRecord record;
  record.label = std::string(label);
  record.device = device.spec().name;
  record.peak_flops = device.spec().peak_dp_flops();
  record.peak_bandwidth = device.spec().global_mem_bandwidth;
  record.streams = device.stream_count();
  record.critical_path_seconds = summary.critical_path_seconds;
  record.events.reserve(device.timeline().size());
  for (const gpusim::TimelineEvent& event : device.timeline()) {
    TimelineEventRecord out;
    out.kind = gpusim::to_string(event.kind);
    out.label = event.label;
    out.stream = event.stream;
    out.start_seconds = event.start_seconds;
    out.end_seconds = event.end_seconds;
    out.bytes = event.bytes;
    if (event.kind == gpusim::TimelineEvent::Kind::KernelLaunch) {
      out.flops = event.counters.flops;
      out.global_bytes = event.counters.total_global_bytes();
      out.shared_bytes = event.counters.shared_bytes;
      out.occupancy = event.kernel_stats.occupancy;
      out.bound = event.kernel_stats.bound();
    }
    record.events.push_back(std::move(out));
  }
  return record;
}

}  // namespace

void record_device(const gpusim::Device& device, std::string_view label) {
  CounterSet* counters = active_counters();
  Trace* trace = active_trace();
  HistogramSet* histograms = active_histograms();
  Report* report = active_report();
  if (counters == nullptr && trace == nullptr && histograms == nullptr && report == nullptr)
    return;

  const gpusim::TimelineSummary summary = device.summarize_timeline();

  if (counters != nullptr) {
    double global_bytes = 0.0;
    double shared_bytes = 0.0;
    for (const gpusim::TimelineEvent& event : device.timeline()) {
      if (event.kind != gpusim::TimelineEvent::Kind::KernelLaunch) continue;
      global_bytes += event.counters.total_global_bytes();
      shared_bytes += event.counters.shared_bytes;
    }
    add(Counter::GpuKernelLaunches, static_cast<double>(summary.launches));
    add(Counter::GpuFlops, summary.total_flops);
    add(Counter::GpuGlobalBytes, global_bytes);
    add(Counter::GpuSharedBytes, shared_bytes);
    add(Counter::GpuBytesH2D, summary.bytes_to_device);
    add(Counter::GpuBytesD2H, summary.bytes_to_host);
  }

  if (histograms != nullptr) {
    for (const gpusim::TimelineEvent& event : device.timeline()) {
      switch (event.kind) {
        case gpusim::TimelineEvent::Kind::KernelLaunch:
          record_seconds(Histo::KernelModelNs, event.seconds);
          break;
        case gpusim::TimelineEvent::Kind::TransferToDevice:
        case gpusim::TimelineEvent::Kind::TransferToHost:
          record(Histo::TransferBytes, static_cast<std::uint64_t>(std::llround(event.bytes)));
          break;
        default:
          break;
      }
    }
  }

  if (trace != nullptr) {
    const std::size_t root = trace->begin_modeled(label, summary.total_seconds);
    trace->add_modeled("alloc", summary.allocation_seconds);
    trace->add_modeled("transfers", summary.transfer_seconds);
    // Kernel time grouped per kernel label, in first-seen timeline order so
    // the span list is deterministic for a deterministic timeline.
    std::vector<std::pair<std::string, double>> per_kernel;
    for (const gpusim::TimelineEvent& event : device.timeline()) {
      if (event.kind != gpusim::TimelineEvent::Kind::KernelLaunch) continue;
      bool merged = false;
      for (auto& [name, seconds] : per_kernel) {
        if (name == event.label) {
          seconds += event.seconds;
          merged = true;
          break;
        }
      }
      if (!merged) per_kernel.emplace_back(event.label, event.seconds);
    }
    for (const auto& [name, seconds] : per_kernel) {
      trace->add_modeled("kernel:" + name, seconds);
    }
    trace->end_modeled(root);
  }

  if (report != nullptr) {
    report->timelines.push_back(snapshot_timeline(device, label, summary));
  }
}

}  // namespace kpm::obs
