// Consistent-hash routing of content-addressed moment keys.
//
// A fleet spreads requests over N shared-nothing server shards.  Routing
// must (a) send every occurrence of the same moment key to the same shard —
// coalescing and the content-addressed cache only work within a shard — and
// (b) move only ~1/N of the key space when a shard joins or leaves.  The
// classic consistent-hash ring does both: each shard owns `virtual_nodes`
// points on a 64-bit ring (FNV-1a over ring seed, shard name, vnode index),
// and a key lands on the first point clockwise from its hash.
//
// Everything is a pure function of (ring seed, shard names, vnode count):
// insertion order never matters (points are sorted with a total tie-break),
// so a fleet built from a permuted shard list routes identically — the
// property the fleet fingerprint tests pin down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kpm::serve {

struct RingConfig {
  std::size_t virtual_nodes = 64;               ///< ring points per shard
  std::uint64_t seed = 0x6b706d666c656574ULL;   ///< "kpmfleet": salts every point

  void validate() const;
};

class ConsistentHashRouter {
 public:
  explicit ConsistentHashRouter(RingConfig config = {});

  /// Adds `name` (must be new and non-empty) to the ring.
  void add_shard(const std::string& name);

  /// Removes `name` (must be present) and its ring points.
  void remove_shard(const std::string& name);

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Shard names in sorted order; `route_index` indexes into this.
  [[nodiscard]] const std::vector<std::string>& shards() const noexcept { return shards_; }

  /// Owning shard of `key_hash` (typically MomentKey::hash()).  Requires a
  /// non-empty ring.
  [[nodiscard]] const std::string& route(std::uint64_t key_hash) const;

  /// Index of `route(key_hash)` within `shards()`.
  [[nodiscard]] std::size_t route_index(std::uint64_t key_hash) const;

  /// FNV-1a over the sorted ring points — identifies the routing function
  /// itself (seed, membership, vnode count) independent of build order.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  [[nodiscard]] const RingConfig& config() const noexcept { return config_; }

 private:
  struct Point {
    std::uint64_t hash = 0;
    std::uint32_t vnode = 0;
    std::size_t shard = 0;  ///< into shards_
  };

  [[nodiscard]] std::uint64_t point_hash(const std::string& name,
                                         std::uint32_t vnode) const noexcept;
  void rebuild_points();

  RingConfig config_;
  std::vector<std::string> shards_;  ///< sorted
  std::vector<Point> ring_;          ///< sorted by (hash, shard name, vnode)
};

}  // namespace kpm::serve
