// Row-range domain decomposition for sharded (multi-node) operators.
//
// A `Decomposition` splits the row index space [0, dim) of a sparse
// operator into P contiguous, ordered, non-overlapping node-local ranges
// plus a halo width: the number of ghost layers (sparsity-graph hops) a
// node exchanges with its neighbours each recursion step.  The functional
// ghost set of a shard is always its 1-hop sparsity neighbourhood — that
// is what one y = A x needs — while `halo_width` > 1 models the wider
// exchange windows used by communication-avoiding schemes (more bytes per
// exchange, same computed values).  Kreutzer et al. (arXiv:1410.5242)
// describe exactly this split for cluster-scale KPM.
//
// The type lives in linalg (not lattice) so the core engines can consume
// it without a lattice dependency; lattice-aware factories (slab splits of
// the cubic model, honeycomb cell rows) live in lattice/decompose.hpp.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace kpm::linalg {

/// One node's contiguous global row range [begin, end).
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

/// Validated partition of [0, dim) into ordered contiguous node ranges.
class Decomposition {
 public:
  Decomposition() = default;

  /// Explicit ranges; validates on construction (kpm::Error on a partition
  /// with zero nodes, an empty range, gaps/overlaps, ranges that do not
  /// cover [0, dim) exactly, or a halo wider than the smallest subdomain).
  Decomposition(std::size_t dim, std::vector<ShardRange> ranges, std::size_t halo_width = 1);

  /// Even row split: `nodes` ranges of dim/nodes rows, the first dim%nodes
  /// ranges one row longer.  Requires 1 <= nodes <= dim.
  [[nodiscard]] static Decomposition uniform(std::size_t dim, std::size_t nodes,
                                             std::size_t halo_width = 1);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t nodes() const noexcept { return ranges_.size(); }
  [[nodiscard]] std::size_t halo_width() const noexcept { return halo_width_; }
  [[nodiscard]] const std::vector<ShardRange>& ranges() const noexcept { return ranges_; }
  [[nodiscard]] const ShardRange& range(std::size_t node) const;

  /// Rows of the smallest shard (the halo-width validation bound).
  [[nodiscard]] std::size_t min_shard_rows() const;

  /// Node owning global row `row` (O(log P)).
  [[nodiscard]] std::size_t owner_of(std::size_t row) const;

  /// e.g. "4 nodes x ~250 rows, halo 1".
  [[nodiscard]] std::string describe() const;

 private:
  std::size_t dim_ = 0;
  std::size_t halo_width_ = 1;
  std::vector<ShardRange> ranges_;
};

}  // namespace kpm::linalg
