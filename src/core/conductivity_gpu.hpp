// GPU-mapped Kubo-Greenwood 2D moment computation.
//
// Same mathematics as conductivity_moments() (see conductivity.hpp) mapped
// onto the stream-computing model: one thread block per stochastic
// instance.  Each block keeps its r0 and the N beta-vectors
// (beta_m = T_m(H~) A |r>) resident in device global memory, streams the
// psi_n recursion, and accumulates its own N x N partial moment matrix;
// a final reduction kernel averages the per-instance matrices.
//
// Memory: instances * (N + 4) * D + instances * N^2 doubles of VRAM — the
// N beta-vectors per instance are the price of the 2D moment algorithm
// and limit N * D per instance on a 3 GB card (the engine reports an OOM
// error exactly where cudaMalloc would fail).
#pragma once

#include "core/conductivity.hpp"
#include "core/moments_gpu.hpp"

namespace kpm::core {

/// Computes the Kubo-Greenwood moment matrix on the simulated GPU.
/// Functional results are bit-identical to conductivity_moments() (same
/// per-instance arithmetic and accumulation order).
class GpuConductivityEngine {
 public:
  explicit GpuConductivityEngine(GpuEngineConfig config = {});

  [[nodiscard]] std::string name() const { return "gpu-conductivity-instance-per-block"; }

  /// See conductivity_moments() for the parameters; returns the same
  /// matrix plus modeled timing via last_timeline()/last_model_seconds().
  [[nodiscard]] ConductivityMoments compute(const linalg::MatrixOperator& h_tilde,
                                            const linalg::MatrixOperator& a_current,
                                            const MomentParams& params,
                                            std::size_t sample_instances = 0);

  /// Simulated seconds of the last compute() (context + timeline).
  [[nodiscard]] double last_model_seconds() const noexcept { return last_model_seconds_; }
  [[nodiscard]] const gpusim::TimelineSummary& last_timeline() const noexcept {
    return last_summary_;
  }

 private:
  GpuEngineConfig config_;
  gpusim::TimelineSummary last_summary_{};
  double last_model_seconds_ = 0.0;
};

}  // namespace kpm::core
