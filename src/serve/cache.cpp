#include "serve/cache.hpp"

#include <cstring>

#include "common/error.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"

namespace kpm::serve {

std::uint64_t fnv1a64(const void* data, std::size_t bytes, std::uint64_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t checksum_doubles(std::span<const double> values, std::uint64_t seed) noexcept {
  return fnv1a64(values.data(), values.size_bytes(), seed);
}

std::uint64_t fingerprint_crs(const linalg::CrsMatrix& matrix,
                              const linalg::SpectralTransform& transform) noexcept {
  std::uint64_t h = kFnvOffset;
  const std::uint64_t dims[2] = {matrix.rows(), matrix.cols()};
  h = fnv1a64(dims, sizeof(dims), h);
  h = fnv1a64(matrix.row_ptr().data(), matrix.row_ptr().size_bytes(), h);
  h = fnv1a64(matrix.col_idx().data(), matrix.col_idx().size_bytes(), h);
  h = fnv1a64(matrix.values().data(), matrix.values().size_bytes(), h);
  const double scale[2] = {transform.center(), transform.half_width()};
  h = fnv1a64(scale, sizeof(scale), h);
  return h;
}

EngineClass engine_class_of(core::EngineKind kind) noexcept {
  switch (kind) {
    case core::EngineKind::CpuReference:
    case core::EngineKind::CpuParallel:
    case core::EngineKind::ClusterSharded:
      // Bit-identical to each other at any thread/node count (tested
      // properties), so they share one cache class.
      return EngineClass::Ref64;
    case core::EngineKind::CpuPaired:
      return EngineClass::Paired;
    case core::EngineKind::Gpu:
      return EngineClass::Gpu;
    case core::EngineKind::GpuCluster:
      return EngineClass::GpuCluster;
  }
  return EngineClass::Ref64;
}

const char* to_string(EngineClass c) noexcept {
  switch (c) {
    case EngineClass::Ref64:
      return "ref64";
    case EngineClass::Paired:
      return "paired";
    case EngineClass::Gpu:
      return "gpu";
    case EngineClass::GpuCluster:
      return "gpu-cluster";
  }
  return "?";
}

std::uint64_t MomentKey::hash() const noexcept {
  const std::uint64_t words[8] = {
      content,
      static_cast<std::uint64_t>(kind),
      detail,
      static_cast<std::uint64_t>(num_moments),
      static_cast<std::uint64_t>(random_vectors),
      static_cast<std::uint64_t>(realizations),
      seed,
      (static_cast<std::uint64_t>(vector_kind) << 8) |
          static_cast<std::uint64_t>(engine_class),
  };
  return fnv1a64(words, sizeof(words));
}

const char* to_string(CachePolicy p) noexcept {
  switch (p) {
    case CachePolicy::Lru:
      return "lru";
    case CachePolicy::CostAware:
      return "cost-aware";
  }
  return "?";
}

CachePolicy cache_policy_from_string(const std::string& name) {
  if (name == "lru") return CachePolicy::Lru;
  if (name == "cost-aware" || name == "cost") return CachePolicy::CostAware;
  KPM_FAIL("unknown cache policy '" + name + "' (lru|cost-aware)");
}

MomentCache::MomentCache(std::size_t byte_budget, CachePolicy policy)
    : byte_budget_(byte_budget), policy_(policy) {}

const std::vector<double>* MomentCache::find(const MomentKey& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.misses += 1;
    obs::add(obs::Counter::ServeCacheMisses, 1.0);
    return nullptr;
  }
  stats_.hits += 1;
  obs::add(obs::Counter::ServeCacheHits, 1.0);
  const std::uint64_t saved = obs::seconds_to_ns_ticks(it->second->recompute_seconds);
  stats_.cost_saved_ns += saved;
  obs::add(obs::Counter::ServeCacheCostSavedNs, static_cast<double>(saved));
  lru_.splice(lru_.begin(), lru_, it->second);  // most recent
  return &it->second->mu;
}

void MomentCache::evict(LruList::iterator victim) {
  bytes_used_ -= bytes_of(victim->mu);
  entries_.erase(victim->key);
  lru_.erase(victim);
  stats_.evictions += 1;
  obs::add(obs::Counter::ServeCacheEvictions, 1.0);
}

void MomentCache::evict_lru_to_fit(std::size_t incoming_bytes) {
  while (!lru_.empty() && bytes_used_ + incoming_bytes > byte_budget_) {
    evict(std::prev(lru_.end()));
  }
}

// Evicts ascending cost-per-byte until `incoming` fits, refusing admission
// (returns false, nothing evicted in that round) as soon as the cheapest
// resident is at least as dense as the incoming entry: replacing equal-value
// bytes would only thrash.  Densities compare by cross-multiplication so no
// division is involved (exactly reproducible).
bool MomentCache::evict_cost_aware_to_fit(std::size_t incoming_bytes,
                                          double incoming_seconds) {
  while (bytes_used_ + incoming_bytes > byte_budget_) {
    KPM_REQUIRE(!lru_.empty(), "MomentCache: budget accounting underflow");
    // Least-dense resident; scanning back-to-front with strict < prefers the
    // least-recently-used entry among equals.
    auto victim = std::prev(lru_.end());
    for (auto it = victim; it != lru_.begin();) {
      --it;
      const bool less_dense = it->recompute_seconds *
                                  static_cast<double>(bytes_of(victim->mu)) <
                              victim->recompute_seconds *
                                  static_cast<double>(bytes_of(it->mu));
      if (less_dense) victim = it;
    }
    const bool incoming_beats_victim =
        incoming_seconds * static_cast<double>(bytes_of(victim->mu)) >
        victim->recompute_seconds * static_cast<double>(incoming_bytes);
    if (!incoming_beats_victim) {
      stats_.admit_refused += 1;
      obs::add(obs::Counter::ServeCacheAdmitRefused, 1.0);
      return false;
    }
    evict(victim);
  }
  return true;
}

const std::vector<double>& MomentCache::insert(const MomentKey& key, std::vector<double> mu,
                                               double recompute_seconds) {
  KPM_REQUIRE(entries_.find(key) == entries_.end(),
              "MomentCache::insert: key already present");
  const std::size_t incoming = bytes_of(mu);
  if (incoming > byte_budget_) {
    // Does not fit even in an empty cache: hand the caller a stable home
    // without disturbing resident entries.
    unstored_ = std::move(mu);
    return unstored_;
  }
  if (policy_ == CachePolicy::Lru) {
    evict_lru_to_fit(incoming);
  } else if (!evict_cost_aware_to_fit(incoming, recompute_seconds)) {
    unstored_ = std::move(mu);
    return unstored_;
  }
  lru_.push_front(Entry{key, std::move(mu), recompute_seconds});
  entries_.emplace(key, lru_.begin());
  bytes_used_ += incoming;
  return lru_.front().mu;
}

}  // namespace kpm::serve
