// Cache-line / SIMD aligned storage used by the numeric kernels.
//
// `AlignedBuffer<T>` owns a contiguous, 64-byte aligned, zero-initialized
// array.  Unlike std::vector it guarantees alignment suitable for streaming
// loads and makes accidental reallocation impossible: the size is fixed at
// construction (Per.14: minimize allocations; Per.19: access memory
// predictably).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

#include "common/error.hpp"

namespace kpm {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer requires trivially copyable element types");

 public:
  AlignedBuffer() = default;

  /// Allocates `n` zero-initialized elements aligned to 64 bytes.
  explicit AlignedBuffer(std::size_t n) : size_(n) {
    if (n == 0) return;
    const std::size_t bytes = round_up(n * sizeof(T), kCacheLineBytes);
    data_ = static_cast<T*>(::operator new[](bytes, std::align_val_t{kCacheLineBytes}));
    std::memset(static_cast<void*>(data_), 0, bytes);
  }

  AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_) {
    if (size_ != 0) std::memcpy(static_cast<void*>(data_), other.data_, size_ * sizeof(T));
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer other) noexcept {
    swap(other);
    return *this;
  }

  ~AlignedBuffer() {
    if (data_ != nullptr) ::operator delete[](data_, std::align_val_t{kCacheLineBytes});
  }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

  [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept { return {data_, size_}; }

  /// Sets every element to `v`.
  void fill(const T& v) { std::fill(begin(), end(), v); }

 private:
  static std::size_t round_up(std::size_t v, std::size_t align) {
    return (v + align - 1) / align * align;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace kpm
