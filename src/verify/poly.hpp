// Exact rational multivariate polynomials for symbolic access summaries.
//
// The static verifier (src/verify/) fits every observed access site to a
// polynomial over launch parameters (dim, nmom, total, bs, ...) and
// per-event variables (bid, tid, it).  All arithmetic is exact: Rat is a
// normalized rational over 64-bit integers with __int128 intermediates,
// and every overflow throws RatOverflow instead of wrapping — a verifier
// that silently overflows would "prove" nonsense.
//
// Polynomials are sparse maps from monomials to coefficients.  A monomial
// is a sorted multiset of variable ids ({} = the constant term, {3, 3} =
// the square of variable 3).  The fitted summaries are multilinear in the
// per-event variables by construction (the fit basis has no squares), which
// the prover exploits: a multilinear polynomial attains its extrema over a
// box at the corners.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace kpm::verify {

/// Thrown when exact rational arithmetic would exceed 128-bit intermediates.
/// Fitting code catches this and treats the offending system as having no
/// affine summary (an honest demotion); it never wraps silently — a verifier
/// that overflows quietly would "prove" nonsense.
class RatOverflow : public Error {
 public:
  explicit RatOverflow(const std::string& what) : Error(what) {}
};

/// Normalized exact rational (den > 0, gcd(|num|, den) == 1).  Stored over
/// 128-bit integers: exact Gaussian elimination grows intermediates far
/// beyond the 64-bit inputs, and every operation throws RatOverflow instead
/// of wrapping.
struct Rat {
  __extension__ __int128 num = 0;
  __extension__ __int128 den = 1;

  Rat() = default;
  Rat(long long n) : num(n), den(1) {}  // NOLINT(google-explicit-constructor)
  Rat(long long n, long long d);

  [[nodiscard]] bool is_zero() const noexcept { return num == 0; }
  [[nodiscard]] bool is_integer() const noexcept { return den == 1; }
  [[nodiscard]] bool negative() const noexcept { return num < 0; }
  /// The value as a 64-bit integer; requires is_integer() and range.
  [[nodiscard]] long long as_ll() const;

  friend Rat operator+(const Rat& a, const Rat& b);
  friend Rat operator-(const Rat& a, const Rat& b);
  friend Rat operator*(const Rat& a, const Rat& b);
  friend Rat operator/(const Rat& a, const Rat& b);
  friend Rat operator-(const Rat& a) {
    Rat r;
    r.num = -a.num;
    r.den = a.den;
    return r;
  }
  friend bool operator==(const Rat& a, const Rat& b) noexcept {
    return a.num == b.num && a.den == b.den;
  }
  friend bool operator!=(const Rat& a, const Rat& b) noexcept { return !(a == b); }
  /// Exact comparison via cross multiplication (checked).
  friend bool operator<(const Rat& a, const Rat& b);

  [[nodiscard]] std::string str() const;
};

/// Registry of symbolic variable names; ids are indices into names().
class VarTable {
 public:
  /// Returns the id of `name`, interning it on first use.
  int intern(const std::string& name);
  /// Id of `name`, or -1 when never interned.
  [[nodiscard]] int find(const std::string& name) const;
  [[nodiscard]] const std::string& name(int id) const { return names_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::map<std::string, int> ids_;
};

/// Sorted multiset of variable ids; {} is the constant monomial.
using Monomial = std::vector<int>;

/// Sparse exact-rational polynomial.
class Poly {
 public:
  Poly() = default;
  static Poly constant(const Rat& c);
  static Poly var(int id);

  [[nodiscard]] bool is_zero() const noexcept { return terms_.empty(); }
  [[nodiscard]] bool is_constant() const noexcept;
  /// Constant term (the whole value when is_constant()).
  [[nodiscard]] Rat constant_value() const;
  [[nodiscard]] const std::map<Monomial, Rat>& terms() const noexcept { return terms_; }

  /// Highest power of `id` across all monomials.
  [[nodiscard]] int degree_in(int id) const;
  [[nodiscard]] bool contains(int id) const { return degree_in(id) > 0; }
  /// d/d(id) for polynomials linear in `id`: the sum of terms containing
  /// `id` once, with that factor removed.  Requires degree_in(id) <= 1.
  [[nodiscard]] Poly linear_coeff(int id) const;
  /// The polynomial with every monomial containing `id` dropped.
  [[nodiscard]] Poly without(int id) const;

  /// Substitutes `value` for variable `id` (handles powers by repeated
  /// multiplication; degrees here never exceed 2).
  [[nodiscard]] Poly subst(int id, const Poly& value) const;
  /// Evaluates with values[id] for every variable present.
  [[nodiscard]] Rat eval(const std::vector<Rat>& values) const;
  /// All coefficients (not necessarily the values) are integers.
  [[nodiscard]] bool integer_coeffs() const;
  /// True when no monomial's variable set intersects `ids`.
  [[nodiscard]] bool independent_of(const std::vector<int>& ids) const;

  friend Poly operator+(const Poly& a, const Poly& b);
  friend Poly operator-(const Poly& a, const Poly& b);
  friend Poly operator*(const Poly& a, const Poly& b);
  friend Poly operator*(const Rat& c, const Poly& p);
  friend bool operator==(const Poly& a, const Poly& b) noexcept { return a.terms_ == b.terms_; }
  friend bool operator!=(const Poly& a, const Poly& b) noexcept { return !(a == b); }

  /// Human-readable form, e.g. "8*dim*bid + 16".
  [[nodiscard]] std::string str(const VarTable& vars) const;

  void add_term(Monomial m, const Rat& c);

 private:
  std::map<Monomial, Rat> terms_;  // no zero coefficients stored
};

/// Exact linear solve: find coefficients c so that for every row i,
/// sum_j c[j] * columns[i][j] == target[i].  Columns are tried as pivots in
/// order (earlier columns are preferred when the system is underdetermined);
/// free columns get coefficient 0.  Returns false when inconsistent.
bool solve_exact(const std::vector<std::vector<Rat>>& rows, const std::vector<Rat>& target,
                 std::vector<Rat>& coeffs);

}  // namespace kpm::verify
