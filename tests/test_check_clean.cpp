// Production kernels must pass the hazard analyses cleanly, and the
// checker must be strictly observational: moment results with checking on
// are bit-identical to checking off, and the obs work counters match.
#include <gtest/gtest.h>

#include "check/checker.hpp"
#include "check/scenarios.hpp"
#include "core/moments_gpu.hpp"
#include "core/moments_gpu_chunked.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"
#include "obs/report.hpp"
#include "verify/observer.hpp"

namespace {

using namespace kpm;

linalg::CrsMatrix cube_h_tilde() {
  const auto lat = lattice::HypercubicLattice::cubic(3, 3, 3);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  return linalg::rescale(h, linalg::make_spectral_transform(op));
}

core::MomentParams small_params() {
  core::MomentParams p;
  p.num_moments = 16;
  p.random_vectors = 3;
  p.realizations = 2;
  return p;
}

TEST(CheckClean, EveryProductionScenarioIsClean) {
  for (const auto& report : check::run_all_scenarios()) {
    EXPECT_TRUE(report.clean()) << report.name << ": "
                                << (report.findings.empty()
                                        ? ""
                                        : check::to_string(report.findings.front()));
    EXPECT_GT(report.stats.launches, 0u) << report.name << " observed no launches";
    EXPECT_GT(report.stats.blocks, 0u) << report.name;
  }
}

TEST(CheckClean, ChunkedScenarioExercisesStreamsAndTransfers) {
  const auto report = check::run_scenario("moments-gpu-chunked");
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.stats.stream_ops, 0u) << "expected record/wait events under the checker";
  EXPECT_GT(report.stats.transfers, 0u);
}

// Satellite property test: CheckConfig on vs off produces bit-identical
// moments and identical obs work counters (the checker observes, never
// participates).
TEST(CheckClean, CheckerOnVsOffIsBitIdenticalWithEqualWorkCounters) {
  const auto h = cube_h_tilde();
  linalg::MatrixOperator op(h);
  const auto p = small_params();

  obs::Report plain_report;
  core::MomentResult plain;
  {
    obs::Collect collect(plain_report);
    core::GpuMomentEngine engine;
    plain = engine.compute(op, p);
  }

  obs::Report checked_report;
  core::MomentResult checked;
  check::Checker checker;
  {
    obs::Collect collect(checked_report);
    check::ScopedCheck scope(checker);
    core::GpuMomentEngine engine;
    checked = engine.compute(op, p);
  }

  EXPECT_TRUE(checker.clean());
  EXPECT_GT(checker.stats().launches, 0u);
  ASSERT_EQ(plain.mu.size(), checked.mu.size());
  for (std::size_t n = 0; n < plain.mu.size(); ++n)
    EXPECT_EQ(plain.mu[n], checked.mu[n]) << "moment " << n << " differs under the checker";
  EXPECT_EQ(plain.model_seconds, checked.model_seconds);

  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    EXPECT_EQ(plain_report.counters.get(c), checked_report.counters.get(c))
        << "obs counter '" << obs::to_string(c) << "' differs under the checker";
  }
}

TEST(CheckClean, CheckerOnVsOffIsBitIdenticalForChunkedEngine) {
  const auto h = cube_h_tilde();
  linalg::MatrixOperator op(h);
  const auto p = small_params();

  core::ChunkedGpuEngineConfig cfg;
  cfg.workspace_bytes = 2048;  // several chunks, double-buffered streams
  core::ChunkedGpuMomentEngine plain_engine(cfg);
  const auto plain = plain_engine.compute(op, p);

  check::Checker checker;
  check::ScopedCheck scope(checker);
  core::ChunkedGpuMomentEngine checked_engine(cfg);
  const auto checked = checked_engine.compute(op, p);

  EXPECT_TRUE(checker.clean());
  ASSERT_EQ(plain.mu.size(), checked.mu.size());
  for (std::size_t n = 0; n < plain.mu.size(); ++n) EXPECT_EQ(plain.mu[n], checked.mu[n]);
  EXPECT_EQ(plain.model_seconds, checked.model_seconds);
}

// A run observed by the dynamic checker AND the static-verification
// recorder simultaneously (MultiObserver fan-out) must still be
// bit-identical to an unobserved run: both layers are strictly passive.
TEST(CheckClean, CheckedAndVerifiedRunStaysBitIdentical) {
  const auto h = cube_h_tilde();
  linalg::MatrixOperator op(h);
  const auto p = small_params();

  obs::Report plain_report;
  core::MomentResult plain;
  {
    obs::Collect collect(plain_report);
    core::GpuMomentEngine engine;
    plain = engine.compute(op, p);
  }

  obs::Report watched_report;
  core::MomentResult watched;
  check::Checker checker;
  verify::VerifyObserver recorder;
  verify::MultiObserver fan({&checker, &recorder});
  {
    obs::Collect collect(watched_report);
    verify::ScopedVerify scope(fan);
    core::GpuMomentEngine engine;
    watched = engine.compute(op, p);
  }

  EXPECT_TRUE(checker.clean());
  EXPECT_GT(checker.stats().launches, 0u);
  ASSERT_FALSE(recorder.run().launches.empty());
  EXPECT_FALSE(recorder.run().launches.front().events.empty())
      << "verify recorder saw launches but no instrumented accesses";

  ASSERT_EQ(plain.mu.size(), watched.mu.size());
  for (std::size_t n = 0; n < plain.mu.size(); ++n)
    EXPECT_EQ(plain.mu[n], watched.mu[n]) << "moment " << n << " differs when observed";
  EXPECT_EQ(plain.model_seconds, watched.model_seconds);
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    EXPECT_EQ(plain_report.counters.get(c), watched_report.counters.get(c))
        << "obs counter '" << obs::to_string(c) << "' differs when observed";
  }
}

TEST(CheckClean, ScenarioNamesAndRunnerAgree) {
  const auto names = check::scenario_names();
  EXPECT_EQ(names.size(), 9u);
  const auto reports = check::run_all_scenarios();
  ASSERT_EQ(reports.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) EXPECT_EQ(reports[i].name, names[i]);
}

}  // namespace
