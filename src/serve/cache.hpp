// Content-addressed moment cache.
//
// KPM's cost asymmetry: the moments mu_n are the expensive part and depend
// only on (H~, kind-specific detail, N, R, S, seed, vector kind, engine
// class); reconstruction (damping kernel, energy grid, resolution) is
// cheap.  `MomentCache` exploits this by keying computed moment sets on
// exactly that tuple — queries differing only in reconstruction parameters
// never touch an engine.
//
// The Hamiltonian enters the key by *content*: an FNV-1a fingerprint over
// the rescaled CRS arrays and the spectral transform, so two models with
// identical matrices share entries and any numeric change invalidates them.
//
// The engine class is part of the key because cached bytes must be
// bit-identical to a cold compute: cpu-reference and cpu-parallel share the
// class "ref64" (their bit-identity at any thread count is a tested
// property); the paired and simulated-GPU recursions use different
// summation orders and get their own classes rather than risk serving
// almost-equal moments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/highlevel.hpp"
#include "linalg/crs_matrix.hpp"
#include "linalg/spectral_transform.hpp"
#include "serve/request.hpp"

namespace kpm::serve {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

/// FNV-1a64 over raw bytes, chainable via `seed`.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                                    std::uint64_t seed = kFnvOffset) noexcept;

/// FNV-1a64 over the bit patterns of a double array (bit-exact: two arrays
/// hash equal iff they are bitwise equal).
[[nodiscard]] std::uint64_t checksum_doubles(std::span<const double> values,
                                             std::uint64_t seed = kFnvOffset) noexcept;

/// Content fingerprint of a rescaled operator: dims, CRS structure, values
/// and the spectral transform that produced it.
[[nodiscard]] std::uint64_t fingerprint_crs(const linalg::CrsMatrix& matrix,
                                            const linalg::SpectralTransform& transform) noexcept;

/// Bit-identity class of an engine hint (see file comment).
enum class EngineClass : std::uint8_t { Ref64, Paired, Gpu, GpuCluster };

[[nodiscard]] EngineClass engine_class_of(core::EngineKind kind) noexcept;

/// "ref64", "paired", "gpu" or "gpu-cluster".
[[nodiscard]] const char* to_string(EngineClass c) noexcept;

/// Everything a moment set depends on.  LDOS keys zero the stochastic
/// fields (R, S, seed, vector kind) — the deterministic recursion does not
/// consume them, so LDOS queries differing only there share one entry.
struct MomentKey {
  std::uint64_t content = 0;       ///< fingerprint of H~ (+ current op for sigma)
  RequestKind kind = RequestKind::Dos;
  std::uint64_t detail = 0;        ///< ldos site / sigma axis
  std::size_t num_moments = 0;     ///< N actually computed (degraded != full)
  std::size_t random_vectors = 0;  ///< R (0 for ldos)
  std::size_t realizations = 0;    ///< S (0 for ldos)
  std::uint64_t seed = 0;          ///< RNG seed (0 for ldos)
  int vector_kind = 0;             ///< rng::RandomVectorKind (0 for ldos)
  EngineClass engine_class = EngineClass::Ref64;

  bool operator==(const MomentKey&) const = default;

  [[nodiscard]] std::uint64_t hash() const noexcept;
};

struct MomentKeyHash {
  std::size_t operator()(const MomentKey& key) const noexcept {
    return static_cast<std::size_t>(key.hash());
  }
};

/// Running cache statistics (exact integers).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t admit_refused = 0;  ///< cost-aware refusals (incoming density too low)
  std::uint64_t cost_saved_ns = 0;  ///< modeled recompute ns avoided by hits
};

/// Replacement policy.  `Lru` is classic least-recently-used by bytes.
/// `CostAware` ranks entries by modeled recompute cost per byte: eviction
/// removes the lowest-density entry first (LRU order breaks ties), and an
/// incoming entry whose density does not beat its would-be victims is
/// refused admission instead of thrashing residents.  Cost-aware wins when
/// moment sizes are similar but recompute costs vary widely by kind (one
/// LDOS instance vs R*S stochastic DoS instances).
enum class CachePolicy : std::uint8_t { Lru, CostAware };

/// "lru" or "cost-aware".
[[nodiscard]] const char* to_string(CachePolicy p) noexcept;

/// Inverse of `to_string`.  Throws kpm::Error for unknown names.
[[nodiscard]] CachePolicy cache_policy_from_string(const std::string& name);

/// Moment cache with a byte budget and a selectable replacement policy.
/// Single-threaded by design: the serve scheduler is the only caller, and
/// it runs on one thread (workers only execute inside a batch).  Lookups
/// and insertions record the serve_cache_* obs counters into the calling
/// thread's sink.
class MomentCache {
 public:
  /// `byte_budget` bounds the sum of stored moment bytes; 0 disables
  /// caching entirely (every lookup misses, nothing is stored).
  explicit MomentCache(std::size_t byte_budget, CachePolicy policy = CachePolicy::Lru);

  /// Returns the cached moments for `key` (touching its LRU position) or
  /// nullptr.  Counts a hit or a miss; a hit also banks the entry's
  /// modeled recompute cost as `cost_saved_ns`.
  [[nodiscard]] const std::vector<double>* find(const MomentKey& key);

  /// Stores `mu` under `key` (which must not be present), evicting entries
  /// per the policy while over budget.  `recompute_seconds` is the modeled
  /// engine cost of rebuilding `mu` from scratch (the cost-aware policy's
  /// ranking signal; ignored by LRU eviction but still banked on hits).
  /// Entries larger than the whole budget — and cost-aware refusals — are
  /// not stored.  Returns the stored moments, or `mu`'s new home in the
  /// caller-visible fallback when not stored.
  const std::vector<double>& insert(const MomentKey& key, std::vector<double> mu,
                                    double recompute_seconds = 0.0);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t entries() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t bytes_used() const noexcept { return bytes_used_; }
  [[nodiscard]] std::size_t byte_budget() const noexcept { return byte_budget_; }
  [[nodiscard]] CachePolicy policy() const noexcept { return policy_; }

 private:
  struct Entry {
    MomentKey key;
    std::vector<double> mu;
    double recompute_seconds = 0.0;
  };
  using LruList = std::list<Entry>;

  static std::size_t bytes_of(const std::vector<double>& mu) noexcept {
    return mu.size() * sizeof(double);
  }
  void evict(LruList::iterator victim);
  void evict_lru_to_fit(std::size_t incoming_bytes);
  [[nodiscard]] bool evict_cost_aware_to_fit(std::size_t incoming_bytes,
                                             double incoming_seconds);

  std::size_t byte_budget_;
  CachePolicy policy_;
  std::size_t bytes_used_ = 0;
  LruList lru_;  ///< front = most recent
  std::unordered_map<MomentKey, LruList::iterator, MomentKeyHash> entries_;
  CacheStats stats_;
  std::vector<double> unstored_;  ///< home of oversized / refused / budget-0 inserts
};

}  // namespace kpm::serve
