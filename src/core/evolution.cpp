#include "core/evolution.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace kpm::core {
namespace {

using Complex = std::complex<double>;

/// y = H~ x on complex vectors (H~ is real, so it acts on re/im alike).
void spmv_complex(const linalg::MatrixOperator& op, std::span<const Complex> x,
                  std::span<Complex> y) {
  const std::size_t d = op.dim();
  if (op.storage() == linalg::Storage::Dense) {
    const auto& m = *op.dense();
    for (std::size_t r = 0; r < d; ++r) {
      Complex acc{0.0, 0.0};
      const auto row = m.row(r);
      for (std::size_t c = 0; c < d; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
  } else if (op.storage() == linalg::Storage::Crs) {
    const auto& m = *op.crs();
    const auto row_ptr = m.row_ptr();
    const auto col_idx = m.col_idx();
    const auto values = m.values();
    for (std::size_t r = 0; r < d; ++r) {
      Complex acc{0.0, 0.0};
      for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        acc += values[kk] * x[static_cast<std::size_t>(col_idx[kk])];
      }
      y[r] = acc;
    }
  } else {
    const auto& m = *op.sell();
    const auto chunk_ptr = m.chunk_ptr();
    const auto row_len = m.row_len();
    const auto perm = m.perm();
    const auto col_idx = m.col_idx();
    const auto values = m.values();
    const std::size_t c_sz = m.chunk_size();
    for (std::size_t c = 0; c < m.chunks(); ++c) {
      const auto base = static_cast<std::size_t>(chunk_ptr[c]);
      for (std::size_t l = 0; l < c_sz; ++l) {
        const std::size_t slot = c * c_sz + l;
        if (perm[slot] < 0) continue;
        Complex acc{0.0, 0.0};
        for (std::size_t j = 0; j < static_cast<std::size_t>(row_len[slot]); ++j) {
          const std::size_t k = base + j * c_sz + l;
          acc += values[k] * x[static_cast<std::size_t>(col_idx[k])];
        }
        y[static_cast<std::size_t>(perm[slot])] = acc;
      }
    }
  }
}

}  // namespace

std::vector<double> bessel_j_array(double x, std::size_t count) {
  KPM_REQUIRE(count >= 1, "bessel_j_array: need at least one order");
  std::vector<double> j(count, 0.0);
  if (x == 0.0) {
    j[0] = 1.0;
    return j;
  }
  const double ax = std::abs(x);

  // Miller's algorithm: start the downward recurrence well above both the
  // requested order and the turning point n ~ |x|.
  const std::size_t start =
      count + static_cast<std::size_t>(ax + 20.0 * std::cbrt(ax + 1.0) + 32.0);
  double jp1 = 0.0;        // J_{n+1} (unnormalized)
  double jn = 1e-30;       // J_n
  double norm = 0.0;       // accumulates J_0 + 2 sum_{k>=1} J_{2k}
  for (std::size_t n = start; n-- > 0;) {
    const double jm1 = (2.0 * (static_cast<double>(n) + 1.0) / ax) * jn - jp1;
    jp1 = jn;
    jn = jm1;
    if (n < count) j[n] = jn;
    if (n % 2 == 0) norm += (n == 0 ? 1.0 : 2.0) * jn;
    // Rescale to avoid overflow of the unnormalized recurrence.
    if (std::abs(jn) > 1e250) {
      jn *= 1e-250;
      jp1 *= 1e-250;
      norm *= 1e-250;
      for (auto& v : j) v *= 1e-250;
    }
  }
  for (auto& v : j) v /= norm;

  // J_n(-x) = (-1)^n J_n(x).
  if (x < 0.0)
    for (std::size_t n = 1; n < count; n += 2) j[n] = -j[n];
  return j;
}

ChebyshevPropagator::ChebyshevPropagator(const linalg::MatrixOperator& h_tilde,
                                         const linalg::SpectralTransform& transform,
                                         double tolerance)
    : h_(&h_tilde), transform_(&transform), tolerance_(tolerance) {
  KPM_REQUIRE(tolerance > 0, "ChebyshevPropagator: tolerance must be positive");
}

EvolutionReport ChebyshevPropagator::step(std::span<Complex> state, double dt) const {
  const std::size_t d = h_->dim();
  KPM_REQUIRE(state.size() == d, "ChebyshevPropagator::step: state dimension mismatch");

  const double omega = transform_->half_width() * dt;  // scaled time a- * dt
  // Expansion order: coefficients die superexponentially past n = |omega|.
  const std::size_t terms =
      2 + static_cast<std::size_t>(std::abs(omega) + 12.0 * std::cbrt(std::abs(omega) + 1.0) +
                                   24.0);
  const auto bessel = bessel_j_array(omega, terms + 1);

  // Coefficients c_n = (2 - delta_n0) (-i)^n J_n(omega).
  auto coefficient = [&](std::size_t n) {
    const double scale = (n == 0 ? 1.0 : 2.0) * bessel[n];
    switch (n % 4) {  // (-i)^n
      case 0:
        return Complex{scale, 0.0};
      case 1:
        return Complex{0.0, -scale};
      case 2:
        return Complex{-scale, 0.0};
      default:
        return Complex{0.0, scale};
    }
  };

  // Chebyshev recursion on the state vector.
  std::vector<Complex> t_prev(state.begin(), state.end());  // T_0 |psi>
  std::vector<Complex> t_cur(d), t_next(d);
  std::vector<Complex> acc(d);

  for (std::size_t i = 0; i < d; ++i) acc[i] = coefficient(0) * t_prev[i];

  spmv_complex(*h_, t_prev, t_cur);  // T_1 |psi> = H~ |psi>
  std::size_t used = 1;
  for (std::size_t n = 1; n <= terms; ++n) {
    const Complex c = coefficient(n);
    for (std::size_t i = 0; i < d; ++i) acc[i] += c * t_cur[i];
    used = n + 1;
    if (n >= static_cast<std::size_t>(std::abs(omega)) + 2 &&
        std::abs(bessel[n]) < tolerance_ && std::abs(bessel[n + 1]) < tolerance_)
      break;
    if (n == terms) break;
    spmv_complex(*h_, t_cur, t_next);
    for (std::size_t i = 0; i < d; ++i) t_next[i] = 2.0 * t_next[i] - t_prev[i];
    std::swap(t_prev, t_cur);
    std::swap(t_cur, t_next);
  }

  // Global phase from the spectrum center: exp(-i a+ dt).
  const double phase_angle = -transform_->center() * dt;
  const Complex phase{std::cos(phase_angle), std::sin(phase_angle)};
  for (std::size_t i = 0; i < d; ++i) state[i] = phase * acc[i];

  EvolutionReport report;
  report.terms = used;
  report.coefficient_tail = used < bessel.size() ? std::abs(bessel[used]) : 0.0;
  return report;
}

EvolutionReport ChebyshevPropagator::evolve(std::span<Complex> state, double total_time,
                                            std::size_t steps, Observer observer,
                                            void* observer_ctx) const {
  KPM_REQUIRE(steps >= 1, "ChebyshevPropagator::evolve: need at least one step");
  const double dt = total_time / static_cast<double>(steps);
  EvolutionReport last;
  for (std::size_t s = 0; s < steps; ++s) {
    last = step(state, dt);
    if (observer != nullptr) observer(s, state, observer_ctx);
  }
  return last;
}

double state_norm(std::span<const Complex> state) {
  double acc = 0.0;
  for (const auto& v : state) acc += std::norm(v);
  return std::sqrt(acc);
}

double energy_expectation(const linalg::MatrixOperator& h, std::span<const Complex> state) {
  KPM_REQUIRE(state.size() == h.dim(), "energy_expectation: dimension mismatch");
  std::vector<Complex> hx(state.size());
  spmv_complex(h, state, hx);
  double acc = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i)
    acc += (std::conj(state[i]) * hx[i]).real();
  return acc;
}

}  // namespace kpm::core
