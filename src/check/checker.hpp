// The kpmcheck hazard analyzer: an AccessObserver with shadow state.
//
// Checker watches every instrumented access of one or more simulated
// devices and reports four hazard classes as structured Findings
// (finding.hpp, docs/checking.md):
//
//   1. Shared-memory racecheck — per (block, phase), per-thread read/write
//      byte intervals over the shared arena; two distinct threads touching
//      the same byte within one barrier interval with at least one write is
//      a race (cuda-memcheck racecheck).  Block-scope accesses
//      (gpusim::kBlockScope) model cooperative primitives with internal
//      barriers and are exempt.
//
//   2. Allocation-divergence check — within a phase, every thread of a
//      block must perform the identical shared_array() sequence (CUDA
//      __shared__ declarations are per-block, not per-thread); across
//      phases a non-empty shared sequence must be a prefix of the block's
//      reference sequence (the arena rewinds each phase, so a shorter
//      re-declaration aliases the same storage safely, a different one
//      aliases the *wrong* storage silently).  local_array() call
//      sequences must repeat exactly across phases per thread: the
//      runtime only hard-fails on a size mismatch at the same slot, while
//      a shortened call sequence silently hands back the wrong slot.
//
//   3. Global-memory hazard check — per launch and per buffer, byte
//      intervals read/written by each block; a byte written by two
//      different blocks (write-write) or written by one and read by
//      another (read-write) is flagged at launch end: blocks are
//      concurrent on real hardware, so the simulator's deterministic
//      block order hides a data race.  Reads of bytes never seeded by
//      h2d / memset / a prior view write are flagged as uninit-read
//      (cuda-memcheck initcheck).
//
//   4. Stream-order analysis — a vector clock per (device, stream),
//      advanced by every issued operation and joined through
//      record_event/wait_event snapshots and synchronize().  An access to
//      a buffer whose last writer on another stream does not
//      happen-before the accessing operation (e.g. a D2H on stream 0
//      racing a kernel write on stream 1 with no event in between) is a
//      stream hazard.
//
// The checker is strictly observational: it never throws on a finding and
// never mutates simulator state, so a checked run is bit-identical to an
// unchecked one (asserted by test_check_clean).  Duplicate findings are
// folded: each distinct (kind, kernel, location) is reported once.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/finding.hpp"
#include "common/table.hpp"
#include "gpusim/check.hpp"

namespace kpm::check {

/// Half-open byte interval [begin, end).
struct ByteRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// A sorted, disjoint set of byte intervals.
class IntervalSet {
 public:
  void add(std::size_t begin, std::size_t end);
  /// True when [begin, end) is fully covered.
  [[nodiscard]] bool covers(std::size_t begin, std::size_t end) const;
  /// First byte range overlapping [begin, end), or {0, 0} when none.
  [[nodiscard]] ByteRange first_overlap(std::size_t begin, std::size_t end) const;
  [[nodiscard]] bool empty() const noexcept { return ranges_.empty(); }
  [[nodiscard]] const std::vector<ByteRange>& ranges() const noexcept { return ranges_; }

 private:
  std::vector<ByteRange> ranges_;  // sorted by begin, disjoint, coalesced
};

/// A vector clock: logical time per stream id (index).  vc[s] is the
/// number of operations of stream s known to have happened before.
using VectorClock = std::vector<std::size_t>;

/// Aggregate counters describing how much work the checker observed.
struct CheckStats {
  std::size_t launches = 0;
  std::size_t blocks = 0;
  std::size_t global_accesses = 0;  ///< view loads/stores observed
  std::size_t shared_accesses = 0;  ///< annotated shared loads/stores
  std::size_t transfers = 0;        ///< h2d + d2h + memset
  std::size_t stream_ops = 0;       ///< record/wait/synchronize events
  /// Kernel names actually launched while the checker was installed —
  /// scenario coverage audits diff this against the kernels a scenario
  /// *registers* (scenario_expected_kernels), so "0 findings" can never
  /// silently mean "0 coverage".
  std::set<std::string> kernels;
};

/// The hazard analyzer.  Install via ScopedCheck (process default, picked
/// up by devices constructed inside engines) or Device::set_check.
class Checker final : public gpusim::AccessObserver {
 public:
  /// Stop recording after this many findings (dedup still applies).
  static constexpr std::size_t kMaxFindings = 256;

  [[nodiscard]] const std::vector<Finding>& findings() const noexcept { return findings_; }
  [[nodiscard]] const CheckStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool clean() const noexcept { return findings_.empty(); }

  /// {kind, kernel, buffer, location, detail} table of all findings.
  [[nodiscard]] kpm::Table findings_table() const;

  /// JSON object {"findings": [...], "stats": {...}} for an obs report
  /// section (sub-schema "kpm.check/1").
  [[nodiscard]] std::string to_json_section() const;

  // --- AccessObserver ---
  void on_launch_begin(const void* device, const char* kernel, const gpusim::ExecConfig& cfg,
                       std::size_t stream) override;
  void on_launch_end() override;
  void on_block_begin(std::size_t bid, std::size_t threads) override;
  void on_phase_begin(int phase) override;
  void on_thread_begin(std::ptrdiff_t tid) override;
  void on_global_read(const void* base, std::size_t offset, std::size_t bytes) override;
  void on_global_write(const void* base, std::size_t offset, std::size_t bytes) override;
  void on_shared_alloc(std::size_t offset, std::size_t bytes) override;
  void on_shared_read(std::size_t offset, std::size_t bytes) override;
  void on_shared_write(std::size_t offset, std::size_t bytes) override;
  void on_local_alloc(std::size_t slot, std::size_t bytes) override;
  void on_alloc(const void* device, const void* base, std::size_t bytes,
                const std::string& label) override;
  void on_memset(const void* device, const void* base, std::size_t bytes,
                 std::size_t stream) override;
  void on_h2d(const void* device, const void* base, std::size_t bytes,
              std::size_t stream) override;
  void on_d2h(const void* device, const void* base, std::size_t bytes,
              std::size_t stream) override;
  void on_stream_created(const void* device, std::size_t stream) override;
  void on_record_event(const void* device, std::size_t stream, double seconds) override;
  void on_wait_event(const void* device, std::size_t stream, double seconds) override;
  void on_synchronize(const void* device) override;

 private:
  /// Per-stream access record for the stream-order analysis.
  struct StreamAccess {
    const void* device = nullptr;
    std::size_t stream = 0;
    std::size_t clock = 0;  ///< the op's position on its own stream
    std::string op;         ///< kernel name or "h2d"/"d2h"/"memset"
  };

  /// Shadow state of one device buffer.
  struct BufferState {
    std::string label;
    std::size_t bytes = 0;
    const void* device = nullptr;
    IntervalSet initialized;
    StreamAccess last_write;
    bool has_write = false;
    std::vector<StreamAccess> reads_since_write;
  };

  /// Per-thread shared-arena access sets within the current (block, phase).
  struct ThreadAccess {
    IntervalSet reads;
    IntervalSet writes;
  };

  /// One shared_array() call: (arena offset, bytes).
  using AllocSeq = std::vector<std::pair<std::size_t, std::size_t>>;

  struct DeviceState {
    std::vector<VectorClock> stream_clocks;  // index = StreamId
  };

  void report(Finding f);
  [[nodiscard]] BufferState* find_buffer(const void* base);
  DeviceState& device_state(const void* device);
  /// Advances `stream`'s own component and returns the op's clock value.
  std::size_t advance_stream(const void* device, std::size_t stream);
  /// True when `access` happens-before the current head of (device, stream).
  [[nodiscard]] bool ordered_before(const StreamAccess& access, const void* device,
                                    std::size_t stream);
  void check_stream_write(BufferState& buf, const void* device, std::size_t stream,
                          std::size_t clock, const std::string& op);
  void check_stream_read(BufferState& buf, const void* device, std::size_t stream,
                         std::size_t clock, const std::string& op);
  void flush_phase();  ///< racecheck + divergence for the finished phase
  void flush_block();  ///< cross-phase local/shared sequence checks
  void flush_launch(); ///< cross-block global overlap detection

  std::vector<Finding> findings_;
  std::set<std::string> finding_keys_;  // dedup
  CheckStats stats_;

  // Buffer registry, keyed by storage base address.
  std::map<const void*, BufferState> buffers_;

  // Stream-order state.
  std::map<const void*, DeviceState> devices_;
  std::map<std::pair<const void*, double>, VectorClock> event_snapshots_;

  // Launch-scoped state.
  bool in_launch_ = false;
  std::string kernel_;
  const void* launch_device_ = nullptr;
  std::size_t launch_stream_ = 0;
  std::size_t launch_clock_ = 0;
  // Per buffer: per block, bytes read / written during this launch.
  std::map<const void*, std::map<std::size_t, ThreadAccess>> launch_global_;

  // Block-scoped state.
  bool block_active_ = false;
  std::size_t block_ = 0;
  int phase_ = 0;
  std::ptrdiff_t thread_ = gpusim::kBlockScope;
  std::map<std::ptrdiff_t, ThreadAccess> shared_access_;       // current phase
  std::map<std::ptrdiff_t, AllocSeq> shared_allocs_;           // current phase
  AllocSeq block_shared_ref_;                                  // block reference
  bool block_shared_ref_set_ = false;
  std::map<std::ptrdiff_t, std::vector<std::size_t>> local_allocs_;  // current phase
  // Per thread: the first non-empty local_array() call sequence of this
  // block — later phases must repeat it exactly.
  std::map<std::ptrdiff_t, std::vector<std::size_t>> block_local_ref_;
};

/// RAII: installs `checker` as the process-wide default CheckConfig so
/// devices constructed inside engines adopt it; restores the previous
/// default on destruction.
class ScopedCheck {
 public:
  explicit ScopedCheck(Checker& checker) noexcept : prev_(gpusim::default_check()) {
    gpusim::set_default_check({&checker});
  }
  ~ScopedCheck() { gpusim::set_default_check(prev_); }
  ScopedCheck(const ScopedCheck&) = delete;
  ScopedCheck& operator=(const ScopedCheck&) = delete;

 private:
  gpusim::CheckConfig prev_;
};

}  // namespace kpm::check
