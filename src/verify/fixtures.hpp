// Verification fixtures: minimal kernels with known symbolic verdicts.
//
// Each fixture is one tiny kernel whose access pattern exercises exactly
// one prover rule or hazard class, run over a parameterized launch
// geometry (tpb, nb, w) so the verifier must generalize beyond the pilot
// runs.  The clean fixtures must verify (interval separation, stride
// congruence, corner bounds); each broken fixture must produce exactly its
// advertised finding kind.
//
// fx-geom-race is the showcase: its accesses are disjoint at every pilot
// geometry (and at the dynamic checker's default launch), but collide once
// threads-per-block exceeds the hard-coded 128 stride — a hazard only the
// symbolic summary can see.  run_fixture_under_checker() runs it under the
// dynamic Checker at the default geometry to document that blind spot.
#pragma once

#include <string>
#include <vector>

#include "check/finding.hpp"
#include "check/scenarios.hpp"

namespace kpm::verify {

/// Launch geometry of one fixture pilot run.
struct FixtureScale {
  long long tpb = 128;  ///< threads per block (even, <= 128: see fx-bounds-escape)
  long long nb = 2;     ///< blocks
  long long w = 3;      ///< per-thread / per-block work items
};

/// Names of all verification fixtures (each is also its kernel name).
[[nodiscard]] std::vector<std::string> fixture_names();

/// Runs fixture `name` at `scale` under whatever AccessObserver is
/// installed as the process default (ScopedVerify / ScopedCheck); returns
/// the workload parameters of the run for the summary fit.
check::ScenarioParams run_fixture_workload(const std::string& name, const FixtureScale& scale = {});

/// Runs fixture `name` at the default scale under the dynamic Checker and
/// returns its findings (empty for every clean fixture AND for
/// fx-geom-race, whose hazard is invisible at the default geometry).
std::vector<check::Finding> run_fixture_under_checker(const std::string& name);

}  // namespace kpm::verify
