// Ablation: weak scaling of the cluster-sharded KPM engine.
//
// Weak scaling holds the PER-NODE subdomain fixed — every node owns
// `planes` z-planes of an edge x edge cross-section — and doubles the node
// count, so the global Hamiltonian grows linearly with P while each node's
// compute stays constant.  Because a slab's halo is always two planes
// (surface, not volume), the per-step exchange bytes per node are constant
// too: the only terms that grow with P are the ring all-reduce latency and
// the widening bulk-synchronous max over node clocks.  That is the
// signature cluster-KPM trade Kreutzer et al. (arXiv:1410.5242) report,
// reproduced here on the modeled interconnect.
//
// Every swept point re-verifies the determinism contract: the sharded
// moments must equal the serial reference BIT-FOR-BIT on the executed
// sample before the row is printed.
#include <cmath>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "core/moments_cluster.hpp"
#include "lattice/decompose.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("ablation_cluster", "weak scaling of domain-decomposed KPM");
  const auto* edge = cli.add_int("edge", 8, "cross-section edge (rows per plane = edge^2)");
  const auto* planes = cli.add_int("planes", 2, "z-planes per node (fixed subdomain)");
  const auto* nodes_max = cli.add_int("nodes-max", 256, "largest node count (doubling sweep)");
  const auto* n = cli.add_int("N", 128, "number of moments");
  const auto* r = cli.add_int("R", 8, "random vectors");
  const auto* s = cli.add_int("S", 2, "realizations");
  const auto* sample = cli.add_int("sample", 2, "instances executed functionally (0 = all)");
  const auto* link_name =
      cli.add_string("interconnect", "ib-qdr", "cluster fabric: ib-qdr|pcie|ideal");
  const auto* csv = cli.add_string("csv", "ablation_cluster.csv", "CSV output path");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  KPM_REQUIRE(*edge >= 2, "ablation_cluster: --edge must be >= 2");
  KPM_REQUIRE(*planes >= 1, "ablation_cluster: --planes must be >= 1");
  KPM_REQUIRE(*nodes_max >= 1, "ablation_cluster: --nodes-max must be >= 1");
  const auto link = gpusim::InterconnectSpec::from_name(*link_name);

  bench::BenchMetrics metrics("ablation_cluster");

  core::MomentParams params;
  params.num_moments = static_cast<std::size_t>(*n);
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = static_cast<std::size_t>(*s);

  bench::print_banner("=== Ablation: cluster weak scaling ===",
                      "slab " + std::to_string(*edge) + "x" + std::to_string(*edge) + "x" +
                          std::to_string(*planes) + " per node, fabric " + link.name,
                      params, static_cast<std::size_t>(*sample));

  Table table({"nodes", "D", "parallel s", "efficiency", "halo s", "allreduce s", "comm %"});
  double max_diff = 0.0;
  for (std::size_t nodes = 1; nodes <= static_cast<std::size_t>(*nodes_max); nodes *= 2) {
    // Fixed subdomain: the lattice grows with the node count.
    const std::size_t lz = static_cast<std::size_t>(*planes) * nodes;
    const auto lat = lattice::HypercubicLattice::cubic(static_cast<std::size_t>(*edge),
                                                       static_cast<std::size_t>(*edge), lz);
    const auto h = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator raw(h);
    const auto ht = linalg::rescale(h, linalg::make_spectral_transform(raw));
    const linalg::MatrixOperator op(ht);

    core::ClusterEngineConfig cfg;
    cfg.decomposition = lattice::slab_decomposition(lat, nodes);
    cfg.link = link;
    core::ClusterMomentEngine cluster(cfg);
    const auto result = cluster.compute(op, params, static_cast<std::size_t>(*sample));

    // Determinism contract: the executed sample must reproduce the serial
    // reference bit-for-bit at every node count.
    core::CpuMomentEngine cpu;
    const auto ref = cpu.compute(op, params, static_cast<std::size_t>(*sample));
    for (std::size_t k = 0; k < ref.mu.size(); ++k)
      max_diff = std::max(max_diff, std::abs(result.mu[k] - ref.mu[k]));

    const auto& sc = cluster.last_scaling();
    table.add_row({strprintf("%zu", nodes), strprintf("%zu", op.dim()),
                   strprintf("%.4f", sc.parallel_seconds),
                   strprintf("%.3f", sc.efficiency), strprintf("%.5f", sc.halo_seconds),
                   strprintf("%.5f", sc.allreduce_seconds),
                   strprintf("%.2f", 100.0 * sc.communication_seconds /
                                         (sc.parallel_seconds > 0.0 ? sc.parallel_seconds
                                                                    : 1.0))});
  }
  KPM_REQUIRE(max_diff == 0.0, "ablation_cluster: sharded moments must be bit-identical");
  bench::finish(table, bench::resolve_output(*out_dir, *csv));

  // Reference trace for schedule regressions: a fixed 4-node shard (or the
  // sweep maximum when smaller), exported modeled-only with one timeline
  // per node and round-tripped through the tracediff loader.
  {
    const std::size_t ref_nodes = std::min<std::size_t>(4, static_cast<std::size_t>(*nodes_max));
    const std::size_t lz = static_cast<std::size_t>(*planes) * ref_nodes;
    const auto lat = lattice::HypercubicLattice::cubic(static_cast<std::size_t>(*edge),
                                                       static_cast<std::size_t>(*edge), lz);
    const auto h = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator raw(h);
    const auto ht = linalg::rescale(h, linalg::make_spectral_transform(raw));
    const linalg::MatrixOperator op(ht);
    core::ClusterEngineConfig cfg;
    cfg.decomposition = lattice::slab_decomposition(lat, ref_nodes);
    cfg.link = link;
    bench::reference_trace_selfcheck(
        "ablation_cluster",
        bench::resolve_output(*out_dir, "ablation_cluster.reference.trace.json"), [&] {
          core::ClusterMomentEngine engine(cfg);
          (void)engine.compute(op, params, static_cast<std::size_t>(*sample));
        });
  }
  std::printf(
      "\nmax |mu_cluster - mu_serial| = %.3g over every node count\n"
      "expected: per-node halo bytes are CONSTANT under weak scaling (slab surface),\n"
      "so efficiency decays only through the ring all-reduce latency term growing\n"
      "with P and the synchronous step max; an --interconnect=ideal sweep isolates\n"
      "the pure compute scaling.\n",
      max_diff);
  return 0;
}
