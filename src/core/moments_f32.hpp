// Single-precision moment engine — the precision ablation.
//
// The paper stresses that "all KPM calculations are performed with double
// precision"; on 2010-era GPUs single precision ran 2x (Fermi Tesla) to
// 12x (GT200) faster, so the natural question is what accuracy that buys.
// This engine runs the identical recursion entirely in IEEE binary32
// (storage AND arithmetic, including float dot accumulation — what a naive
// SP port would do) and reports the moments in double for comparison.
// bench/ablation_precision quantifies the error growth with N against the
// modeled speed advantage.
#pragma once

#include "cpumodel/cpu_spec.hpp"
#include "core/moments.hpp"

namespace kpm::core {

/// CPU engine computing the Chebyshev recursion in single precision.
class CpuMomentEngineF32 final : public MomentEngine {
 public:
  explicit CpuMomentEngineF32(cpumodel::CpuSpec spec = cpumodel::CpuSpec::core_i7_930());

  [[nodiscard]] std::string name() const override { return "cpu-reference-f32"; }

  [[nodiscard]] MomentResult compute(const linalg::MatrixOperator& h_tilde,
                                     const MomentParams& params,
                                     std::size_t sample_instances = 0) override;

 private:
  cpumodel::CpuSpec spec_;
};

}  // namespace kpm::core
