// Symbolic discharge rules: nonnegativity over box domains, interval
// separation, congruence disjointness, and the witness search that turns
// an unprovable overlap into a definite counterexample.
#include <gtest/gtest.h>

#include "verify/prover.hpp"

namespace {

using namespace kpm::verify;

struct ProverRig {
  UnitVars vars = make_unit_vars({"n"});
  ClassSummary cls;
  int n = vars.table.find("n");

  ProverRig() {
    cls.kernel = "rig";
    // tpb and nb fixed affine: tpb = n, nb = 2 (keeps geometry closed).
    cls.tpb_affine = true;
    cls.tpb = Poly::var(n);
    cls.nb_affine = true;
    cls.nb = Poly::constant(Rat{2});
  }

  [[nodiscard]] Domain param_domain(long long lo, long long hi) const {
    Domain dom;
    dom.set(n, Poly::constant(Rat{lo}), Poly::constant(Rat{hi}));
    return dom;
  }

  [[nodiscard]] SiteSummary write_site(const Poly& offset, const Poly& bytes,
                                       const Poly& count) const {
    SiteSummary site;
    site.key.space = Space::Global;
    site.key.op = Op::Write;
    site.key.buffer = "buf";
    site.offset = offset;
    site.bytes = bytes;
    site.count = count;
    return site;
  }
};

TEST(VerifyProver, ProveNonnegOverBox) {
  UnitVars vars = make_unit_vars({"n"});
  const int n = vars.table.find("n");
  Domain dom;
  dom.set(n, Poly::constant(Rat{1}), Poly::constant(Rat{64}));
  // n - 1 >= 0 on [1, 64]; n - 65 is not.
  EXPECT_TRUE(prove_nonneg(Poly::var(n) - Poly::constant(Rat{1}), dom));
  EXPECT_FALSE(prove_nonneg(Poly::var(n) - Poly::constant(Rat{65}), dom));
  // Multilinear: (n - 1) * n >= 0.
  EXPECT_TRUE(
      prove_nonneg((Poly::var(n) - Poly::constant(Rat{1})) * Poly::var(n), dom));
}

TEST(VerifyProver, ThreadStrideBoundsAndDisjointnessProve) {
  ProverRig rig;
  // offset = 8 * (tid + n * bid), bytes = 8, count = 1, buffer = 16 * n.
  const Poly offset = Rat{8} * (Poly::var(rig.vars.tid) +
                                Poly::var(rig.n) * Poly::var(rig.vars.bid));
  const SiteSummary site =
      rig.write_site(offset, Poly::constant(Rat{8}), Poly::constant(Rat{1}));
  Prover prover(rig.vars, rig.cls, rig.param_domain(1, 256), {{rig.n, {1, 8, 256}}});

  const auto bounds =
      prover.check_bounds(site, Rat{16} * Poly::var(rig.n));
  EXPECT_EQ(bounds.result, Tri::Proven) << bounds.rule;

  const auto same_block = prover.check_disjoint(site, site, rig.vars.tid);
  EXPECT_EQ(same_block.result, Tri::Proven) << same_block.rule;
  const auto cross_block = prover.check_disjoint(site, site, rig.vars.bid);
  EXPECT_EQ(cross_block.result, Tri::Proven) << cross_block.rule;
}

TEST(VerifyProver, OverlapProducesConcreteWitness) {
  ProverRig rig;
  // Every thread writes the same 8 bytes: a same-block race with witness.
  const SiteSummary site = rig.write_site(Poly::constant(Rat{0}),
                                          Poly::constant(Rat{8}),
                                          Poly::constant(Rat{1}));
  Prover prover(rig.vars, rig.cls, rig.param_domain(2, 8), {{rig.n, {2, 8}}});
  const auto outcome = prover.check_disjoint(site, site, rig.vars.tid);
  EXPECT_EQ(outcome.result, Tri::Violated);
  ASSERT_TRUE(outcome.witness.has_value());
  EXPECT_EQ(outcome.witness->offset_a, 0);
  EXPECT_EQ(outcome.witness->bytes_a, 8);
  EXPECT_NE(outcome.witness->tid_a, outcome.witness->tid_b);
}

TEST(VerifyProver, BoundsEscapeProducesWitnessAtExtremeGeometry) {
  ProverRig rig;
  // offset = 8 * tid into a fixed 64-byte buffer: escapes once n > 8.
  const SiteSummary site =
      rig.write_site(Rat{8} * Poly::var(rig.vars.tid), Poly::constant(Rat{8}),
                     Poly::constant(Rat{1}));
  Prover prover(rig.vars, rig.cls, rig.param_domain(1, 64), {{rig.n, {1, 4, 64}}});
  const auto outcome = prover.check_bounds(site, Poly::constant(Rat{64}));
  EXPECT_EQ(outcome.result, Tri::Violated);
  ASSERT_TRUE(outcome.witness.has_value());
  EXPECT_GE(outcome.witness->offset_a + outcome.witness->bytes_a, 64);
}

TEST(VerifyProver, InterleavedStrideNeedsCongruenceRule) {
  ProverRig rig;
  // offset = 8 * (it * n + tid), count = 2: interleaved round-robin whose
  // per-thread intervals overlap as ranges but never as residues.
  const Poly offset = Rat{8} * (Poly::var(rig.vars.it) * Poly::var(rig.n) +
                                Poly::var(rig.vars.tid));
  const SiteSummary site =
      rig.write_site(offset, Poly::constant(Rat{8}), Poly::constant(Rat{2}));
  Prover prover(rig.vars, rig.cls, rig.param_domain(2, 128), {{rig.n, {2, 8, 128}}});
  const auto outcome = prover.check_disjoint(site, site, rig.vars.tid);
  EXPECT_EQ(outcome.result, Tri::Proven) << outcome.rule;
  EXPECT_NE(outcome.rule.find("congruence"), std::string::npos) << outcome.rule;
}

}  // namespace
