#include "linalg/decomposition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace kpm::linalg {

Decomposition::Decomposition(std::size_t dim, std::vector<ShardRange> ranges,
                             std::size_t halo_width)
    : dim_(dim), halo_width_(halo_width), ranges_(std::move(ranges)) {
  KPM_REQUIRE(dim_ > 0, "Decomposition: operator dimension must be positive");
  KPM_REQUIRE(!ranges_.empty(), "Decomposition: needs at least one node");
  KPM_REQUIRE(halo_width_ >= 1, "Decomposition: halo width must be >= 1");
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < ranges_.size(); ++p) {
    const ShardRange& r = ranges_[p];
    KPM_REQUIRE(r.end > r.begin, "Decomposition: node " + std::to_string(p) +
                                     " owns an empty row range");
    KPM_REQUIRE(r.begin == cursor,
                "Decomposition: ranges must cover [0, dim) contiguously and in order (node " +
                    std::to_string(p) + " starts at row " + std::to_string(r.begin) +
                    ", expected " + std::to_string(cursor) + ")");
    cursor = r.end;
  }
  KPM_REQUIRE(cursor == dim_, "Decomposition: ranges cover rows [0, " + std::to_string(cursor) +
                                  ") but the operator has " + std::to_string(dim_) + " rows");
  KPM_REQUIRE(halo_width_ <= min_shard_rows(),
              "Decomposition: halo width " + std::to_string(halo_width_) +
                  " is wider than the smallest subdomain (" +
                  std::to_string(min_shard_rows()) + " rows)");
}

Decomposition Decomposition::uniform(std::size_t dim, std::size_t nodes,
                                     std::size_t halo_width) {
  KPM_REQUIRE(nodes >= 1, "Decomposition::uniform: needs at least one node");
  KPM_REQUIRE(nodes <= dim, "Decomposition::uniform: more nodes (" + std::to_string(nodes) +
                                ") than rows (" + std::to_string(dim) + ")");
  std::vector<ShardRange> ranges;
  ranges.reserve(nodes);
  const std::size_t base = dim / nodes;
  const std::size_t rem = dim % nodes;
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < nodes; ++p) {
    const std::size_t len = base + (p < rem ? 1 : 0);
    ranges.push_back({cursor, cursor + len});
    cursor += len;
  }
  return Decomposition(dim, std::move(ranges), halo_width);
}

const ShardRange& Decomposition::range(std::size_t node) const {
  KPM_REQUIRE(node < ranges_.size(), "Decomposition::range: node index out of range");
  return ranges_[node];
}

std::size_t Decomposition::min_shard_rows() const {
  std::size_t m = dim_;
  for (const ShardRange& r : ranges_) m = std::min(m, r.size());
  return m;
}

std::size_t Decomposition::owner_of(std::size_t row) const {
  KPM_REQUIRE(row < dim_, "Decomposition::owner_of: row out of range");
  const auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), row,
      [](std::size_t value, const ShardRange& r) { return value < r.end; });
  return static_cast<std::size_t>(it - ranges_.begin());
}

std::string Decomposition::describe() const {
  return std::to_string(nodes()) + " nodes x ~" + std::to_string(dim_ / nodes()) +
         " rows, halo " + std::to_string(halo_width_);
}

}  // namespace kpm::linalg
