#include "lattice/current.hpp"

#include <cmath>

#include "common/error.hpp"

namespace kpm::lattice {

linalg::CrsMatrix build_current_operator_crs(const HypercubicLattice& lat, std::size_t axis,
                                             const TightBindingParams& params) {
  KPM_REQUIRE(axis < 3, "build_current_operator_crs: axis must be 0, 1 or 2");
  const auto dims = lat.dims();
  // Extent 2 is excluded: under periodic boundaries both hop directions
  // reach the same site with opposite displacements, so the operator is
  // identically zero (and the neighbour list cannot distinguish them).
  KPM_REQUIRE(dims[axis] > 2 || lat.boundary() == Boundary::Open,
              "build_current_operator_crs: periodic axis extent must exceed 2");
  KPM_REQUIRE(dims[axis] > 1, "build_current_operator_crs: axis has extent 1");

  const std::size_t n = lat.sites();
  linalg::TripletBuilder b(n, n);
  const auto extent = static_cast<double>(dims[axis]);

  for (std::size_t i = 0; i < n; ++i) {
    const auto ci = lat.site_coords(i);
    for (std::size_t j : lat.neighbours(i)) {
      const auto cj = lat.site_coords(j);
      // Displacement along the requested axis with minimum-image wrap.
      double dr = static_cast<double>(cj[axis]) - static_cast<double>(ci[axis]);
      if (dr > extent / 2.0) dr -= extent;
      if (dr < -extent / 2.0) dr += extent;
      if (dr == 0.0) continue;  // hop along another axis
      // A_ij = t * (r_j - r_i)_a on the directed bond i -> j; neighbour
      // duplicates (extent-2 wrap) accumulate, matching the doubled
      // Hamiltonian hopping.
      b.add(i, j, params.hopping * dr);
    }
  }
  auto a = b.build();
  // Antisymmetry is structural; verify in debug builds.
  KPM_ASSERT(([&] {
               for (std::size_t r = 0; r < n; ++r)
                 for (auto k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
                   const auto kk = static_cast<std::size_t>(k);
                   const auto c = static_cast<std::size_t>(a.col_idx()[kk]);
                   if (std::abs(a.values()[kk] + a.at(c, r)) > 1e-12) return false;
                 }
               return true;
             }()),
             "current operator must be antisymmetric");
  return a;
}

}  // namespace kpm::lattice
