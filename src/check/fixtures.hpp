// Deliberately-broken fixture kernels: one per hazard class.
//
// Each fixture exists in a broken and a clean variant (same structure,
// hazard removed) so tests can assert both that the checker fires with an
// exact Finding and that the fix silences it.  The fixtures double as the
// minimal offending kernels documented in docs/checking.md.
#pragma once

#include <string>
#include <vector>

#include "check/finding.hpp"

namespace kpm::check {

/// Names accepted by run_fixture: "shared-race", "shared-alloc-divergence",
/// "local-alloc-divergence", "global-race", "uninit-read",
/// "sell-chunk-stage", "stream-hazard".
[[nodiscard]] std::vector<std::string> fixture_names();

/// Runs the named fixture on a small simulated device under a fresh
/// Checker and returns its findings.  `broken` selects the hazardous
/// variant; the clean variant must return no findings.  Throws kpm::Error
/// for unknown names.
[[nodiscard]] std::vector<Finding> run_fixture(const std::string& name, bool broken);

}  // namespace kpm::check
