// Parameterized property sweeps across lattices, kernels, block sizes and
// engines: invariants that must hold for every configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/kpm.hpp"
#include "core/moments_cluster.hpp"
#include "core/moments_f32.hpp"
#include "lattice/decompose.hpp"
#include "linalg/shard.hpp"
#include "obs/counters.hpp"
#include "obs/report.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

// ---------------------------------------------------------------------------
// Sweep 1: DoS invariants across lattice geometries and boundaries.
// ---------------------------------------------------------------------------

struct LatticeCase {
  const char* label;
  lattice::HypercubicLattice lat;
};

class LatticeSweep : public ::testing::TestWithParam<LatticeCase> {};

TEST_P(LatticeSweep, DosIntegratesToOneAndIsNonNegative) {
  const auto& lat = GetParam().lat;
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto t = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, t);
  linalg::MatrixOperator op_t(ht);

  MomentParams p;
  p.num_moments = 48;
  p.random_vectors = 8;
  p.realizations = 4;
  CpuMomentEngine engine;
  const auto r = engine.compute(op_t, p);
  EXPECT_DOUBLE_EQ(r.mu[0], 1.0);
  const auto curve = reconstruct_dos(r.mu, t, {.points = 512});
  EXPECT_NEAR(dos_integral(curve), 1.0, 0.01);
  for (double d : curve.density) EXPECT_GT(d, -1e-9);
}

TEST_P(LatticeSweep, GershgorinContainsSpectrum) {
  const auto& lat = GetParam().lat;
  const auto h = lattice::build_tight_binding_dense(lat);
  const auto b = linalg::gershgorin_bounds(h);
  const auto eig = diag::symmetric_eigenvalues(h);
  EXPECT_GE(eig.front(), b.lower - 1e-10);
  EXPECT_LE(eig.back(), b.upper + 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LatticeSweep,
    ::testing::Values(
        LatticeCase{"chain16_periodic", lattice::HypercubicLattice::chain(16)},
        LatticeCase{"chain16_open",
                    lattice::HypercubicLattice::chain(16, lattice::Boundary::Open)},
        LatticeCase{"square6x5", lattice::HypercubicLattice::square(6, 5)},
        LatticeCase{"square4x4_open",
                    lattice::HypercubicLattice::square(4, 4, lattice::Boundary::Open)},
        LatticeCase{"cubic4", lattice::HypercubicLattice::cubic(4, 4, 4)},
        LatticeCase{"cubic3_open",
                    lattice::HypercubicLattice::cubic(3, 3, 3, lattice::Boundary::Open)}),
    [](const auto& info) { return info.param.label; });

// ---------------------------------------------------------------------------
// Sweep 2: damping kernels preserve normalization.
// ---------------------------------------------------------------------------

class KernelSweep : public ::testing::TestWithParam<DampingKernel> {};

TEST_P(KernelSweep, NormalizationSurvivesDamping) {
  // g_0 = 1 for every kernel, so the integral of the reconstructed DoS is
  // exactly mu_0 = 1 in Chebyshev-Gauss quadrature regardless of kernel.
  const auto lat = lattice::HypercubicLattice::cubic(3, 3, 3);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto t = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, t);
  linalg::MatrixOperator op_t(ht);

  MomentParams p;
  p.num_moments = 64;
  p.random_vectors = 4;
  p.realizations = 4;
  CpuMomentEngine engine;
  const auto r = engine.compute(op_t, p);
  const auto curve = reconstruct_dos(r.mu, t, {.kernel = GetParam(), .points = 1024});
  EXPECT_NEAR(dos_integral(curve), 1.0, 0.02) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweep,
                         ::testing::Values(DampingKernel::Jackson, DampingKernel::Lorentz,
                                           DampingKernel::Fejer, DampingKernel::Dirichlet),
                         [](const auto& info) { return to_string(info.param); });

// ---------------------------------------------------------------------------
// Sweep 3: GPU/CPU equivalence across block sizes and mappings.
// ---------------------------------------------------------------------------

using BlockCase = std::tuple<GpuMapping, std::uint32_t>;

class BlockSweep : public ::testing::TestWithParam<BlockCase> {};

TEST_P(BlockSweep, BlockSizeNeverChangesTheMoments) {
  const auto [mapping, block_size] = GetParam();
  const auto lat = lattice::HypercubicLattice::cubic(3, 3, 3);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto t = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, t);
  linalg::MatrixOperator op_t(ht);

  MomentParams p;
  p.num_moments = 12;
  p.random_vectors = 5;
  p.realizations = 1;
  CpuMomentEngine cpu;
  const auto reference = cpu.compute(op_t, p);

  GpuEngineConfig cfg;
  cfg.mapping = mapping;
  cfg.block_size = block_size;
  GpuMomentEngine gpu(cfg);
  const auto r = gpu.compute(op_t, p);
  for (std::size_t n = 0; n < r.mu.size(); ++n)
    EXPECT_EQ(r.mu[n], reference.mu[n]) << "moment " << n;
}

INSTANTIATE_TEST_SUITE_P(
    MappingsAndBlocks, BlockSweep,
    ::testing::Combine(::testing::Values(GpuMapping::InstancePerBlock,
                                         GpuMapping::InstancePerThread),
                       ::testing::Values(32u, 64u, 128u, 256u, 512u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == GpuMapping::InstancePerBlock ? "block"
                                                                                 : "thread") +
             "_" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 4: moment-count scaling of the estimator (N never changes mu_n for
// n < N, engines are prefix-consistent).
// ---------------------------------------------------------------------------

class PrefixSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefixSweep, MomentsArePrefixStableInN) {
  // Computing more moments must not change the earlier ones.
  const std::size_t n_small = GetParam();
  const auto lat = lattice::HypercubicLattice::square(4, 4);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto t = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, t);
  linalg::MatrixOperator op_t(ht);

  MomentParams p;
  p.random_vectors = 2;
  p.realizations = 2;
  CpuMomentEngine engine;
  p.num_moments = n_small;
  const auto a = engine.compute(op_t, p);
  p.num_moments = 2 * n_small;
  const auto b = engine.compute(op_t, p);
  for (std::size_t n = 0; n < n_small; ++n) EXPECT_DOUBLE_EQ(a.mu[n], b.mu[n]);
}

INSTANTIATE_TEST_SUITE_P(Prefixes, PrefixSweep, ::testing::Values(4u, 8u, 16u, 32u, 64u),
                         [](const auto& info) { return "N" + std::to_string(info.param); });

// ---------------------------------------------------------------------------
// Sweep 5: disorder strength raises the band width monotonically.
// ---------------------------------------------------------------------------

class DisorderSweep : public ::testing::TestWithParam<double> {};

TEST_P(DisorderSweep, GershgorinWindowGrowsWithDisorder) {
  const double w = GetParam();
  const auto lat = lattice::HypercubicLattice::cubic(4, 4, 4);
  const auto clean = lattice::build_tight_binding_crs(lat);
  const auto dirty =
      lattice::build_tight_binding_crs(lat, {}, lattice::anderson_disorder(w, 99));
  const auto bc = linalg::gershgorin_bounds(clean);
  const auto bd = linalg::gershgorin_bounds(dirty);
  EXPECT_GE(bd.upper - bd.lower, bc.upper - bc.lower);
  if (w > 0.0) EXPECT_GT(bd.upper - bd.lower, bc.upper - bc.lower);
}

INSTANTIATE_TEST_SUITE_P(Widths, DisorderSweep, ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0),
                         [](const auto& info) {
                           return "W" + std::to_string(static_cast<int>(info.param * 10));
                         });

// ---------------------------------------------------------------------------
// Sweep 6: differential engine sweep on random sparse Hamiltonians — every
// engine must agree on the moments AND report the same functional work
// (instances executed, moments produced) through the obs counter registry.
// ---------------------------------------------------------------------------

struct RandomHamiltonianCase {
  const char* label;
  double disorder;
  std::uint64_t seed;
};

class EngineDifferentialSweep : public ::testing::TestWithParam<RandomHamiltonianCase> {};

TEST_P(EngineDifferentialSweep, EnginesAgreeOnMomentsAndReportedWork) {
  const auto& c = GetParam();
  const auto lat = lattice::HypercubicLattice::square(5, 5);
  const auto h =
      lattice::build_tight_binding_crs(lat, {}, lattice::anderson_disorder(c.disorder, c.seed));
  linalg::MatrixOperator op(h);
  const auto t = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, t);
  linalg::MatrixOperator op_t(ht);

  MomentParams p;
  p.num_moments = 16;
  p.random_vectors = 3;
  p.realizations = 2;
  p.seed = c.seed;

  // Runs an engine under a fresh counter sink; returns (result, counters).
  const auto run = [&](MomentEngine& engine) {
    obs::CounterSet counters;
    MomentResult result;
    {
      obs::CounterScope scope(counters);
      result = engine.compute(op_t, p);
    }
    return std::pair{std::move(result), counters};
  };

  CpuMomentEngine serial;
  const auto [ref, ref_counts] = run(serial);
  ASSERT_EQ(ref.mu.size(), p.num_moments);
  EXPECT_EQ(ref_counts[obs::Counter::InstancesExecuted],
            static_cast<double>(p.instances()));
  EXPECT_EQ(ref_counts[obs::Counter::MomentsProduced],
            static_cast<double>(p.num_moments));

  CpuParallelMomentEngine parallel(3);
  CpuPairedMomentEngine paired;
  CpuMomentEngineF32 f32;
  GpuMomentEngine gpu;
  struct Row {
    MomentEngine* engine;
    double tol;  // 0 = bitwise
  };
  for (const auto& row : {Row{&parallel, 0.0}, Row{&paired, 1e-9}, Row{&f32, 5e-3},
                          Row{&gpu, 0.0}}) {
    const auto [r, counts] = run(*row.engine);
    // Identical functional work reported, whatever the execution strategy.
    EXPECT_EQ(counts[obs::Counter::InstancesExecuted],
              ref_counts[obs::Counter::InstancesExecuted])
        << row.engine->name();
    EXPECT_EQ(counts[obs::Counter::MomentsProduced],
              ref_counts[obs::Counter::MomentsProduced])
        << row.engine->name();
    EXPECT_EQ(r.instances_executed, ref.instances_executed) << row.engine->name();
    ASSERT_EQ(r.mu.size(), ref.mu.size()) << row.engine->name();
    for (std::size_t n = 0; n < ref.mu.size(); ++n) {
      if (row.tol == 0.0) {
        EXPECT_EQ(r.mu[n], ref.mu[n]) << row.engine->name() << " moment " << n;
      } else {
        EXPECT_NEAR(r.mu[n], ref.mu[n], row.tol) << row.engine->name() << " moment " << n;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomHamiltonians, EngineDifferentialSweep,
    ::testing::Values(RandomHamiltonianCase{"clean", 0.0, 11},
                      RandomHamiltonianCase{"weak_disorder", 1.0, 23},
                      RandomHamiltonianCase{"strong_disorder", 3.0, 47},
                      RandomHamiltonianCase{"strong_disorder_reseeded", 3.0, 48}),
    [](const auto& info) { return info.param.label; });

// ---------------------------------------------------------------------------
// Sweep 7: decomposition invariance.  ANY valid partition geometry and halo
// width must yield identical moments, Gershgorin bounds and counter totals
// — only the modeled communication time may move.
// ---------------------------------------------------------------------------

struct DecompositionCase {
  const char* label;
  linalg::Decomposition dec;  // partitions the cubic-4 operator (dim 64)
};

class DecompositionSweep : public ::testing::TestWithParam<DecompositionCase> {};

TEST_P(DecompositionSweep, PartitionNeverChangesValuesBoundsOrCounters) {
  const auto lat = lattice::HypercubicLattice::cubic(4, 4, 4);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto ht = linalg::rescale(h, linalg::make_spectral_transform(op));
  const linalg::MatrixOperator op_t(ht);

  MomentParams p;
  p.num_moments = 24;
  p.random_vectors = 4;
  p.realizations = 2;

  obs::Report ref_report;
  MomentResult ref;
  {
    obs::Collect scope(ref_report);
    CpuMomentEngine cpu;
    ref = cpu.compute(op_t, p);
  }

  const auto& dec = GetParam().dec;
  obs::Report report;
  MomentResult got;
  ClusterEngineConfig cfg;
  cfg.decomposition = dec;
  ClusterMomentEngine cluster(cfg);
  {
    obs::Collect scope(report);
    got = cluster.compute(op_t, p);
  }

  // Moments: bitwise.
  ASSERT_EQ(got.mu.size(), ref.mu.size());
  for (std::size_t n = 0; n < ref.mu.size(); ++n)
    EXPECT_EQ(got.mu[n], ref.mu[n]) << "moment " << n;

  // Gershgorin bounds assembled shard-by-shard: bitwise.
  const linalg::ShardedMatrix sm(op_t, dec, linalg::Storage::Crs);
  const auto sharded = sm.gershgorin_bounds();
  const auto global = linalg::gershgorin_bounds(ht);
  EXPECT_EQ(sharded.lower, global.lower);
  EXPECT_EQ(sharded.upper, global.upper);

  // Counter totals: the partition must not change the accounted work.
  EXPECT_EQ(report.counters, ref_report.counters);
}

TEST_P(DecompositionSweep, ModeledCommTimeIsMonotoneInHaloBytes) {
  const auto lat = lattice::HypercubicLattice::cubic(4, 4, 4);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto ht = linalg::rescale(h, linalg::make_spectral_transform(op));
  const linalg::MatrixOperator op_t(ht);

  MomentParams p;
  p.num_moments = 24;
  p.random_vectors = 4;
  p.realizations = 2;

  const auto& base = GetParam().dec;
  if (base.nodes() == 1) return;  // one node never communicates

  // Same partition at growing halo width: wider exchange windows never move
  // FEWER bytes (the w-hop neighbourhood can saturate on a small periodic
  // box), modeled halo seconds follow the bytes exactly, and no computed
  // value may change.
  double prev_bytes = -1.0, prev_seconds = -1.0;
  std::vector<double> first_mu;
  for (std::size_t width = 1; width <= std::min<std::size_t>(base.min_shard_rows(), 3); ++width) {
    std::vector<linalg::ShardRange> ranges(base.ranges());
    ClusterEngineConfig cfg;
    cfg.decomposition = linalg::Decomposition(base.dim(), std::move(ranges), width);
    ClusterMomentEngine cluster(cfg);
    const auto got = cluster.compute(op_t, p);
    if (first_mu.empty()) {
      first_mu = got.mu;
    } else {
      for (std::size_t n = 0; n < first_mu.size(); ++n)
        EXPECT_EQ(got.mu[n], first_mu[n]) << "halo width changed moment " << n;
    }
    const auto& s = cluster.last_scaling();
    if (prev_bytes >= 0.0) {
      EXPECT_GE(s.halo_bytes_per_step, prev_bytes) << "width " << width;
      if (s.halo_bytes_per_step > prev_bytes) {
        EXPECT_GT(s.halo_seconds, prev_seconds) << "width " << width;
      } else {
        EXPECT_EQ(s.halo_seconds, prev_seconds) << "width " << width;
      }
    }
    prev_bytes = s.halo_bytes_per_step;
    prev_seconds = s.halo_seconds;
  }
}

// On a long chain the w-hop neighbourhood genuinely widens with every extra
// ghost layer, so the byte count — and with it the modeled comm time — must
// grow STRICTLY.
TEST(DecompositionComm, HaloSecondsGrowStrictlyOnAChain) {
  const auto lat = lattice::HypercubicLattice::chain(64);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto ht = linalg::rescale(h, linalg::make_spectral_transform(op));
  const linalg::MatrixOperator op_t(ht);

  MomentParams p;
  p.num_moments = 16;
  p.random_vectors = 2;
  p.realizations = 2;

  double prev_bytes = 0.0, prev_seconds = 0.0;
  for (std::size_t width = 1; width <= 4; ++width) {
    ClusterEngineConfig cfg;
    cfg.decomposition = linalg::Decomposition::uniform(64, 4, width);
    ClusterMomentEngine cluster(cfg);
    (void)cluster.compute(op_t, p);
    const auto& s = cluster.last_scaling();
    EXPECT_GT(s.halo_bytes_per_step, prev_bytes) << "width " << width;
    EXPECT_GT(s.halo_seconds, prev_seconds) << "width " << width;
    prev_bytes = s.halo_bytes_per_step;
    prev_seconds = s.halo_seconds;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Partitions, DecompositionSweep,
    ::testing::Values(
        DecompositionCase{"uniform1", linalg::Decomposition::uniform(64, 1)},
        DecompositionCase{"uniform2", linalg::Decomposition::uniform(64, 2)},
        DecompositionCase{"uniform3", linalg::Decomposition::uniform(64, 3)},
        DecompositionCase{"uniform8", linalg::Decomposition::uniform(64, 8)},
        DecompositionCase{"uneven", linalg::Decomposition(64, {{0, 5}, {5, 40}, {40, 64}})},
        DecompositionCase{"lopsided",
                          linalg::Decomposition(64, {{0, 56}, {56, 60}, {60, 64}})},
        DecompositionCase{"slab4",
                          lattice::slab_decomposition(
                              lattice::HypercubicLattice::cubic(4, 4, 4), 4)}),
    [](const auto& info) { return info.param.label; });

}  // namespace
