// KPM moment-computation parameters.
//
// Follows the paper's notation: N moments, R random vectors per
// realization, S realizations of the random-variable set; the stochastic
// trace averages over the S*R independent instances (Eq. 16/19).  A note on
// the paper's parameters: Section IV-A states "S = 14 and R = 128" while
// Fig. 6 and Sections IV-B/C state "R = 14 and S = 128"; only the product
// S*R = 1792 enters the cost, and this library adopts R = 14, S = 128.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/error.hpp"
#include "rng/distributions.hpp"

namespace kpm::core {

/// Parameters of one stochastic moment computation.
struct MomentParams {
  std::size_t num_moments = 256;        ///< N: truncation order of the expansion
  std::size_t random_vectors = 14;      ///< R: random vectors per realization
  std::size_t realizations = 128;       ///< S: realizations of the random-variable set
  std::uint64_t seed = 0x6b706d2d313035ULL;  ///< base RNG seed
  rng::RandomVectorKind vector_kind = rng::RandomVectorKind::Rademacher;

  /// B: random vectors advanced together per matrix pass (SpMMV blocking,
  /// Kreutzer et al. arXiv:1410.5242).  1 = the paper's per-vector
  /// recursion; B > 1 amortizes matrix traffic 1/B without changing any
  /// computed value (blocked recursion is bit-identical per instance).
  std::size_t block_r = 1;

  /// Total independent trace-estimator instances S*R.
  [[nodiscard]] std::size_t instances() const noexcept { return random_vectors * realizations; }

  /// RNG stream id of instance (s, r); streams are disjoint per instance so
  /// execution order is irrelevant.
  [[nodiscard]] std::uint64_t stream_of(std::size_t s, std::size_t r) const noexcept {
    return s * random_vectors + r;
  }

  /// Throws kpm::Error when any field is out of range.
  void validate() const {
    KPM_REQUIRE(num_moments >= 2, "MomentParams: need at least two moments");
    KPM_REQUIRE(random_vectors >= 1, "MomentParams: need at least one random vector");
    KPM_REQUIRE(realizations >= 1, "MomentParams: need at least one realization");
    KPM_REQUIRE(block_r >= 1, "MomentParams: block_r must be >= 1");
  }
};

}  // namespace kpm::core
