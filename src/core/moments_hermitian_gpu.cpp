#include "core/moments_hermitian_gpu.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <utility>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "core/gpu_kernels.hpp"
#include "core/moments_cpu.hpp"
#include "gpusim/view.hpp"
#include "obs/counters.hpp"
#include "obs/gpusim_bridge.hpp"
#include "obs/trace.hpp"
#include "rng/distributions.hpp"

namespace kpm::core {
namespace {

using Complex = std::complex<double>;
using gpusim::AccessPattern;

/// Device-resident complex CRS matrix.
struct DeviceMatrixZ {
  gpusim::DeviceBuffer<Complex> values;
  gpusim::DeviceBuffer<std::int32_t> row_ptr;
  gpusim::DeviceBuffer<std::int32_t> col_idx;
  std::size_t dim = 0;
  std::size_t nnz = 0;

  DeviceMatrixZ(gpusim::Device& device, const linalg::CrsMatrixZ& h)
      : values(device.alloc<Complex>(h.nnz(), "H~ complex values")),
        row_ptr(device.alloc<std::int32_t>(h.rows() + 1, "H~ row_ptr")),
        col_idx(device.alloc<std::int32_t>(h.nnz(), "H~ col_idx")),
        dim(h.rows()),
        nnz(h.nnz()) {
    device.copy_to_device<Complex>(h.values(), values, "H~ complex upload");
    device.copy_to_device<std::int32_t>(h.row_ptr(), row_ptr, "H~ row_ptr upload");
    device.copy_to_device<std::int32_t>(h.col_idx(), col_idx, "H~ col_idx upload");
  }

  [[nodiscard]] double traversal_bytes() const {
    return static_cast<double>(nnz) * (sizeof(Complex) + sizeof(std::int32_t)) +
           static_cast<double>(dim + 1) * sizeof(std::int32_t);
  }

  void multiply(std::span<const Complex> x, std::span<Complex> y) const {
    const auto rp = row_ptr.raw();
    const auto ci = col_idx.raw();
    const auto v = values.raw();
    for (std::size_t r = 0; r < dim; ++r) {
      Complex acc{0.0, 0.0};
      for (auto k = rp[r]; k < rp[r + 1]; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        acc += v[kk] * x[static_cast<std::size_t>(ci[kk])];
      }
      y[r] = acc;
    }
  }
};

/// Fills complex r0 vectors (real Rademacher components, zero imaginary).
class FillRandomKernelZ final : public gpusim::Kernel {
 public:
  FillRandomKernelZ(const MomentParams& params, std::size_t dim, std::size_t active,
                    gpusim::DeviceBuffer<Complex>& r0)
      : params_(&params), dim_(dim), active_(active), r0_(&r0) {}

  [[nodiscard]] const char* name() const override { return "kpm_fill_random_z"; }

  void block_phase(int /*phase*/, gpusim::BlockContext& block) override {
    const std::size_t inst = block.bid();
    if (inst >= active_) return;
    gpusim::GlobalView<Complex> r0(*r0_, AccessPattern::Coalesced, block.counters());
    auto out = r0.bulk_store(inst * dim_, dim_);
    obs::add(obs::Counter::RngElements, static_cast<double>(dim_));
    for (std::size_t i = 0; i < dim_; ++i)
      out[i] = Complex{
          rng::draw_random_element(params_->vector_kind, params_->seed, inst, i), 0.0};
    block.flop(10.0 * static_cast<double>(dim_));
  }

 private:
  const MomentParams* params_;
  std::size_t dim_;
  std::size_t active_;
  gpusim::DeviceBuffer<Complex>* r0_;
};

/// Complex Chebyshev recursion, one instance per block; mu~_n = Re<r0|r_n>.
class HermitianRecursionKernel final : public gpusim::Kernel {
 public:
  HermitianRecursionKernel(const MomentParams& params, const DeviceMatrixZ& h,
                           std::size_t active, std::size_t l2_bytes,
                           gpusim::DeviceBuffer<Complex>& r0,
                           gpusim::DeviceBuffer<Complex>& work_a,
                           gpusim::DeviceBuffer<Complex>& work_b,
                           gpusim::DeviceBuffer<double>& mu_tilde)
      : params_(&params),
        h_(&h),
        active_(active),
        l2_bytes_(l2_bytes),
        r0_(&r0),
        work_a_(&work_a),
        work_b_(&work_b),
        mu_tilde_(&mu_tilde) {}

  [[nodiscard]] const char* name() const override { return "kpm_recursion_hermitian"; }

  void block_phase(int /*phase*/, gpusim::BlockContext& block) override {
    const std::size_t inst = block.bid();
    if (inst >= active_) return;
    const std::size_t d = h_->dim;
    const std::size_t n = params_->num_moments;
    const auto r0 = r0_->raw().subspan(inst * d, d);
    auto a = work_a_->raw().subspan(inst * d, d);
    auto b = work_b_->raw().subspan(inst * d, d);
    auto mu = mu_tilde_->raw().subspan(inst * n, n);

    // Functional-work counters, matching the CPU Hermitian engine.
    obs::add(obs::Counter::InstancesExecuted, 1.0);
    obs::add(obs::Counter::SpmvCalls, n >= 2 ? static_cast<double>(n - 1) : 0.0);
    obs::add(obs::Counter::DotCalls, static_cast<double>(n));

    auto dot_re = [&](std::span<const Complex> v) {
      double acc = 0.0;
      for (std::size_t i = 0; i < d; ++i) acc += (std::conj(r0[i]) * v[i]).real();
      return acc;
    };

    mu[0] = dot_re(r0);
    if (n > 1) {
      h_->multiply(r0, a);
      mu[1] = dot_re(a);
    }
    if (n > 2) {
      h_->multiply(a, b);
      for (std::size_t i = 0; i < d; ++i) b[i] = 2.0 * b[i] - r0[i];
      mu[2] = dot_re(b);
    }
    std::span<Complex> cur = b;
    std::span<Complex> other = a;
    for (std::size_t k = 3; k < n; ++k) {
      const auto rp = h_->row_ptr.raw();
      const auto ci = h_->col_idx.raw();
      const auto v = h_->values.raw();
      for (std::size_t r = 0; r < d; ++r) {
        Complex acc{0.0, 0.0};
        for (auto kk = rp[r]; kk < rp[r + 1]; ++kk) {
          const auto idx = static_cast<std::size_t>(kk);
          acc += v[idx] * cur[static_cast<std::size_t>(ci[idx])];
        }
        other[r] = 2.0 * acc - other[r];
      }
      mu[k] = dot_re(other);
      std::swap(cur, other);
    }
    meter_instance(block);
  }

 private:
  void meter_instance(gpusim::BlockContext& block) const {
    const auto d = static_cast<double>(h_->dim);
    const auto n = static_cast<double>(params_->num_moments);
    const double entries = static_cast<double>(h_->nnz);
    const double matrix_bytes = h_->traversal_bytes();
    auto& c = block.counters();
    const auto mat = static_cast<std::size_t>(matrix_bytes <= static_cast<double>(l2_bytes_)
                                                  ? AccessPattern::Broadcast
                                                  : AccessPattern::Strided);
    const auto coal = static_cast<std::size_t>(AccessPattern::Coalesced);
    const double spmvs = n - 1.0;
    const double elem = sizeof(Complex);  // 16 B per vector element

    c.global_read_bytes[mat] += spmvs * matrix_bytes;
    c.global_read_bytes[coal] += spmvs * d * elem;             // x stage
    c.shared_bytes += spmvs * (entries * elem + matrix_bytes);
    c.global_write_bytes[coal] += spmvs * d * elem;            // y
    c.global_read_bytes[coal] += (n - 2.0) * d * elem;         // prev2
    c.global_read_bytes[coal] += n * 2.0 * d * elem;           // dots
    const auto threads = static_cast<double>(block.threads());
    c.shared_bytes += n * 2.0 * threads * sizeof(double);
    c.barriers += n * (std::ceil(std::log2(std::max(2.0, threads))) + 2.0);
    c.global_write_bytes[coal] += n * sizeof(double);          // mu~ (real)

    // Complex arithmetic: a complex FMA is ~8 real flops (4 mul + 4 add).
    c.flops += spmvs * 8.0 * entries + (n - 2.0) * 4.0 * d + n * 4.0 * d;
  }

  const MomentParams* params_;
  const DeviceMatrixZ* h_;
  std::size_t active_;
  std::size_t l2_bytes_;
  gpusim::DeviceBuffer<Complex>* r0_;
  gpusim::DeviceBuffer<Complex>* work_a_;
  gpusim::DeviceBuffer<Complex>* work_b_;
  gpusim::DeviceBuffer<double>* mu_tilde_;
};

}  // namespace

GpuHermitianMomentEngine::GpuHermitianMomentEngine(GpuEngineConfig config)
    : config_(std::move(config)) {
  config_.device.validate();
  KPM_REQUIRE(config_.block_size > 0 && config_.block_size % 32 == 0,
              "GpuHermitianMomentEngine: block_size must be a positive multiple of 32");
}

MomentResult GpuHermitianMomentEngine::compute(const linalg::CrsMatrixZ& h_tilde,
                                               const MomentParams& params,
                                               std::size_t sample_instances) {
  params.validate();
  KPM_REQUIRE(h_tilde.rows() == h_tilde.cols(), "GpuHermitianMomentEngine: matrix must be square");
  const std::size_t d = h_tilde.rows();
  const std::size_t n = params.num_moments;
  const std::size_t total = params.instances();
  const std::size_t executed = resolve_sample_count(sample_instances, total);
  const double cost_scale = static_cast<double>(total) / static_cast<double>(executed);

  obs::ScopedSpan span("moments." + name());
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(n));
  Stopwatch wall;
  gpusim::Device device(config_.device);
  DeviceMatrixZ h_dev(device, h_tilde);
  auto r0 = device.alloc<Complex>(total * d, "r0 vectors (complex)");
  auto work_a = device.alloc<Complex>(total * d, "work a (complex)");
  auto work_b = device.alloc<Complex>(total * d, "work b (complex)");
  auto mu_tilde = device.alloc<double>(total * n, "mu~ per instance");
  auto mu_dev = device.alloc<double>(n, "mu");

  gpusim::ExecConfig cfg;
  cfg.grid = gpusim::Dim3{static_cast<std::uint32_t>(total)};
  cfg.block = gpusim::Dim3{config_.block_size};
  {
    FillRandomKernelZ fill(params, d, executed, r0);
    device.launch(cfg, fill, cost_scale);
  }
  {
    cfg.shared_bytes = std::min<std::size_t>(config_.device.shared_mem_per_sm / 2,
                                             2 * config_.block_size * sizeof(Complex) * 4);
    HermitianRecursionKernel rec(params, h_dev, executed, config_.device.l2_cache_bytes, r0,
                                 work_a, work_b, mu_tilde);
    device.launch(cfg, rec, cost_scale);
    cfg.shared_bytes = 0;
  }
  MomentResult result;
  result.engine = name();
  result.mu.resize(n);
  {
    AverageMomentsKernel avg(n, d, executed, total, mu_tilde, mu_dev);
    device.launch(gpusim::ExecConfig::linear(n, 128), avg);
  }
  device.copy_to_host<double>(mu_dev, result.mu, "mu download");

  result.instances_executed = executed;
  result.instances_total = total;
  result.wall_seconds = wall.seconds();
  obs::record_device(device, name());
  last_summary_ = device.summarize_timeline();
  result.model_seconds = config_.context_setup_seconds + last_summary_.total_seconds;
  result.compute_seconds = last_summary_.kernel_seconds;
  result.transfer_seconds = last_summary_.transfer_seconds;
  result.allocation_seconds = config_.context_setup_seconds + last_summary_.allocation_seconds;
  return result;
}

}  // namespace kpm::core
