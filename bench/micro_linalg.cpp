// Real wall-clock microbenchmarks (google-benchmark) of the numeric
// kernels underlying the KPM recursion: dot, axpby, the fused Chebyshev
// combine, and dense/CRS SpMV.  These time the *functional* host
// implementations on the build machine — unlike the fig* benches, no
// platform model is involved.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "core/reconstruct.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/crs_matrix.hpp"
#include "linalg/spectral_transform.hpp"
#include "linalg/vector_ops.hpp"
#include "rng/distributions.hpp"
#include "rng/philox.hpp"

namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = kpm::rng::u64_to_uniform(kpm::rng::philox_u64(seed, 0, i), -1.0, 1.0);
  return v;
}

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vector(n, 1);
  const auto y = random_vector(n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(kpm::linalg::dot(x, y));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Dot)->Arg(1000)->Arg(16384)->Arg(262144);

void BM_Axpby(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vector(n, 3);
  auto y = random_vector(n, 4);
  for (auto _ : state) {
    kpm::linalg::axpby(1.5, x, 0.5, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Axpby)->Arg(1000)->Arg(262144);

void BM_ChebyshevCombine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto hx = random_vector(n, 5);
  const auto prev = random_vector(n, 6);
  std::vector<double> next(n);
  for (auto _ : state) {
    kpm::linalg::chebyshev_combine(hx, prev, next);
    benchmark::DoNotOptimize(next.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChebyshevCombine)->Arg(1000)->Arg(262144);

void BM_SpmvCrsCubicLattice(benchmark::State& state) {
  const auto edge = static_cast<std::size_t>(state.range(0));
  const auto lat = kpm::lattice::HypercubicLattice::cubic(edge, edge, edge);
  const auto h = kpm::lattice::build_tight_binding_crs(lat);
  const auto x = random_vector(h.cols(), 7);
  std::vector<double> y(h.rows());
  for (auto _ : state) {
    h.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(h.nnz()));
}
BENCHMARK(BM_SpmvCrsCubicLattice)->Arg(10)->Arg(16)->Arg(24);

void BM_SpmvDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto h = kpm::lattice::random_symmetric_dense(n, 8);
  const auto x = random_vector(n, 9);
  std::vector<double> y(n);
  for (auto _ : state) {
    h.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SpmvDense)->Arg(128)->Arg(512)->Arg(1024);

void BM_PhiloxFill(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> v(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i)
      v[i] = kpm::rng::draw_random_element(kpm::rng::RandomVectorKind::Rademacher, 42, 1, i);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PhiloxFill)->Arg(1000)->Arg(262144);

/// Direct (Clenshaw per point) vs FFT reconstruction of the same curve.
void BM_ReconstructDirect(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  std::vector<double> mu(512);
  const double theta0 = std::acos(0.37);
  for (std::size_t n = 0; n < mu.size(); ++n) mu[n] = std::cos(static_cast<double>(n) * theta0);
  const kpm::linalg::SpectralTransform t({-1.0, 1.0}, 0.0);
  kpm::core::ReconstructOptions opts;
  opts.points = m;
  for (auto _ : state) benchmark::DoNotOptimize(kpm::core::reconstruct_dos(mu, t, opts));
}
BENCHMARK(BM_ReconstructDirect)->Arg(1024)->Arg(8192);

void BM_ReconstructFft(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  std::vector<double> mu(512);
  const double theta0 = std::acos(0.37);
  for (std::size_t n = 0; n < mu.size(); ++n) mu[n] = std::cos(static_cast<double>(n) * theta0);
  const kpm::linalg::SpectralTransform t({-1.0, 1.0}, 0.0);
  kpm::core::ReconstructOptions opts;
  opts.points = m;
  for (auto _ : state) benchmark::DoNotOptimize(kpm::core::reconstruct_dos_fft(mu, t, opts));
}
BENCHMARK(BM_ReconstructFft)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
