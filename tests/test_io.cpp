// Tests for the moment-file persistence format.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "common/error.hpp"
#include "core/io.hpp"

namespace {

using namespace kpm::core;

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

MomentFile sample() {
  MomentFile f;
  f.mu = {1.0, -0.123456789012345678, 3.0e-17, 0.25};
  f.transform_center = 0.75;
  f.transform_half_width = 6.0600000000000005;
  f.dim = 1000;
  f.engine = "gpu-instance-per-block";
  return f;
}

TEST(MomentIo, RoundTripsExactly) {
  const auto path = temp_path("roundtrip.kpm");
  const auto original = sample();
  save_moments(path, original);
  const auto loaded = load_moments(path);
  EXPECT_EQ(loaded.dim, original.dim);
  EXPECT_EQ(loaded.engine, original.engine);
  EXPECT_EQ(loaded.transform_center, original.transform_center);
  EXPECT_EQ(loaded.transform_half_width, original.transform_half_width);
  ASSERT_EQ(loaded.mu.size(), original.mu.size());
  for (std::size_t i = 0; i < original.mu.size(); ++i)
    EXPECT_EQ(loaded.mu[i], original.mu[i]) << "moment " << i << " must round-trip bitwise";
}

TEST(MomentIo, TransformReconstruction) {
  const auto f = sample();
  const auto t = f.transform();
  EXPECT_DOUBLE_EQ(t.center(), f.transform_center);
  EXPECT_DOUBLE_EQ(t.half_width(), f.transform_half_width);
}

TEST(MomentIo, RejectsWrongMagic) {
  const auto path = temp_path("bad_magic.kpm");
  std::ofstream(path) << "not-a-moment-file\n";
  EXPECT_THROW((void)load_moments(path), kpm::Error);
}

TEST(MomentIo, RejectsTruncatedMomentList) {
  const auto path = temp_path("truncated.kpm");
  std::ofstream(path) << "kpm-moments v1\ndim 4\ntransform 0 1\ncount 3\n1.0\n2.0\n";
  EXPECT_THROW((void)load_moments(path), kpm::Error);
}

TEST(MomentIo, RejectsMissingHeaderFields) {
  const auto path = temp_path("no_transform.kpm");
  std::ofstream(path) << "kpm-moments v1\ndim 4\ncount 1\n1.0\n";
  EXPECT_THROW((void)load_moments(path), kpm::Error);
}

TEST(MomentIo, RejectsUnknownHeaderField) {
  const auto path = temp_path("unknown_field.kpm");
  std::ofstream(path) << "kpm-moments v1\nflavor vanilla\ncount 1\n1.0\n";
  EXPECT_THROW((void)load_moments(path), kpm::Error);
}

TEST(MomentIo, RejectsGarbageNumbers) {
  const auto path = temp_path("garbage.kpm");
  std::ofstream(path) << "kpm-moments v1\ndim 4\ntransform 0 1\ncount 1\nbanana\n";
  EXPECT_THROW((void)load_moments(path), kpm::Error);
}

TEST(MomentIo, RejectsNonPositiveHalfWidth) {
  const auto path = temp_path("bad_width.kpm");
  std::ofstream(path) << "kpm-moments v1\ndim 4\ntransform 0 -1\ncount 1\n1.0\n";
  EXPECT_THROW((void)load_moments(path), kpm::Error);
}

TEST(MomentIo, SaveRejectsEmptyAndBadData) {
  MomentFile empty;
  EXPECT_THROW(save_moments(temp_path("x.kpm"), empty), kpm::Error);
  auto f = sample();
  f.transform_half_width = 0.0;
  EXPECT_THROW(save_moments(temp_path("x.kpm"), f), kpm::Error);
  EXPECT_THROW(save_moments("/nonexistent_dir_zzz/x.kpm", sample()), kpm::Error);
}

TEST(MomentIo, MissingFileThrows) {
  EXPECT_THROW((void)load_moments(temp_path("does_not_exist.kpm")), kpm::Error);
}

}  // namespace
