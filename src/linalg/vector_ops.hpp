// Dense vector kernels (BLAS-1 level) used by the KPM recursion.
//
// All functions operate on std::span<double> views so callers can use
// AlignedBuffer, std::vector or raw stack arrays.  Lengths are validated
// with KPM_REQUIRE at the boundary; inner loops are branch-free.
#pragma once

#include <span>

namespace kpm::linalg {

/// y[i] = alpha * x[i] + beta * y[i]
void axpby(double alpha, std::span<const double> x, double beta, std::span<double> y);

/// y[i] += alpha * x[i]
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x[i] *= alpha
void scale(double alpha, std::span<double> x);

/// out[i] = x[i]  (sizes must match)
void copy(std::span<const double> x, std::span<double> out);

/// Returns sum_i x[i] * y[i] with the library's canonical summation order:
/// four independent accumulator lanes for instruction-level parallelism,
/// where element i feeds lane (i mod 4) and the final total is
/// (lane0 + lane1) + (lane2 + lane3).  Every dot product in the library —
/// including the fused recursion kernels and the simulated GPU kernels —
/// uses this exact order so engines stay bit-identical to each other.
/// Requires non-empty spans of equal length.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// Returns the Euclidean norm sqrt(sum x_i^2) without intermediate overflow
/// for the magnitudes used here.  Requires a non-empty span.
[[nodiscard]] double nrm2(std::span<const double> x);

/// Returns sum_i x[i].  Requires a non-empty span.
[[nodiscard]] double asum_signed(std::span<const double> x);

/// Returns max_i |x[i]|.  Requires a non-empty span.
[[nodiscard]] double amax(std::span<const double> x);

/// Chebyshev recursion update specialized for KPM (Eq. 18 of the paper):
///   next[i] = 2 * hx[i] - prev[i]
/// where hx = H~ * current was produced by an SpMV.  Fusing the scale and
/// subtraction halves the memory traffic of the update step.
void chebyshev_combine(std::span<const double> hx, std::span<const double> prev,
                       std::span<double> next);

}  // namespace kpm::linalg
