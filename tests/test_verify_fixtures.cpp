// Fixture verdicts: each clean fixture must *prove*, each broken fixture
// must produce exactly its advertised hazard kind, and fx-geom-race must
// demonstrate the static verifier's reason to exist — a race the dynamic
// checker cannot see at the geometry it actually runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "verify/fixtures.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace kpm::verify;
namespace check = kpm::check;
using kpm::check::Kind;

const KernelVerdict& only_kernel(const UnitReport& report) {
  EXPECT_EQ(report.kernels.size(), 1u) << report.unit;
  return report.kernels.front();
}

TEST(VerifyFixtures, EveryFixtureHasItsDesignedVerdict) {
  const std::map<std::string, KernelStatus> expected{
      {"fx-block-stride-clean", KernelStatus::Proven},
      {"fx-thread-stride-clean", KernelStatus::Proven},
      {"fx-shared-stage-clean", KernelStatus::Proven},
      {"fx-geom-race", KernelStatus::Findings},
      {"fx-global-overlap", KernelStatus::Findings},
      {"fx-bounds-escape", KernelStatus::Findings},
      {"fx-shared-race", KernelStatus::Findings},
      {"fx-alloc-divergent", KernelStatus::Findings},
      {"fx-nonaffine", KernelStatus::Demoted},
  };
  const auto names = fixture_names();
  ASSERT_EQ(names.size(), expected.size());
  for (const auto& name : names) {
    const UnitReport report = verify_unit(name);
    const KernelVerdict& v = only_kernel(report);
    ASSERT_TRUE(expected.contains(name)) << name;
    EXPECT_EQ(v.status, expected.at(name))
        << name << " got status " << to_string(v.status);
  }
}

TEST(VerifyFixtures, BrokenFixturesReportTheirHazardKind) {
  const std::map<std::string, Kind> expected{
      {"fx-geom-race", Kind::GlobalRace},
      {"fx-global-overlap", Kind::GlobalRace},
      {"fx-bounds-escape", Kind::Bounds},
      {"fx-shared-race", Kind::SharedRace},
      {"fx-alloc-divergent", Kind::AllocDivergence},
  };
  for (const auto& [name, kind] : expected) {
    const UnitReport report = verify_unit(name);
    const KernelVerdict& v = only_kernel(report);
    ASSERT_FALSE(v.findings.empty()) << name;
    EXPECT_TRUE(std::any_of(v.findings.begin(), v.findings.end(),
                            [&](const check::Finding& f) { return f.kind == kind; }))
        << name << " missing kind " << check::to_string(kind);
    for (const auto& f : v.findings)
      if (is_hazard(f.kind))
        EXPECT_FALSE(f.detail.empty()) << name << " hazard without a witness detail";
  }
}

TEST(VerifyFixtures, CleanFixturesCarryNoFindingsAtAll) {
  for (const auto* name :
       {"fx-block-stride-clean", "fx-thread-stride-clean", "fx-shared-stage-clean"}) {
    const UnitReport report = verify_unit(name);
    const KernelVerdict& v = only_kernel(report);
    EXPECT_TRUE(v.findings.empty()) << name;
    EXPECT_GT(v.sites, 0u) << name;
    EXPECT_TRUE(report.hazard_free());
  }
}

TEST(VerifyFixtures, NonAffineFixtureDemotesWithoutHazard) {
  const UnitReport report = verify_unit("fx-nonaffine");
  const KernelVerdict& v = only_kernel(report);
  EXPECT_EQ(v.status, KernelStatus::Demoted);
  EXPECT_TRUE(report.hazard_free());
  ASSERT_FALSE(v.findings.empty());
  for (const auto& f : v.findings) EXPECT_EQ(f.kind, Kind::NonAffine);
}

// The launch-geometry blind spot, demonstrated end to end: the dynamic
// checker runs fx-geom-race at its default geometry and sees nothing; the
// static verifier proves the race exists at tpb > 128 with a concrete
// witness.  This is the hazard class that motivates kpmverify.
TEST(VerifyFixtures, GeomRaceIsInvisibleToTheDynamicCheckerAtDefaultLaunch) {
  EXPECT_TRUE(run_fixture_under_checker("fx-geom-race").empty())
      << "dynamic checker unexpectedly caught the geometry-dependent race";

  const UnitReport report = verify_unit("fx-geom-race");
  const KernelVerdict& v = only_kernel(report);
  EXPECT_EQ(v.status, KernelStatus::Findings);
  ASSERT_FALSE(v.findings.empty());
  const auto& f = v.findings.front();
  EXPECT_EQ(f.kind, Kind::GlobalRace);
  // The witness must name a geometry beyond the default tpb = 128.
  EXPECT_NE(f.detail.find("tpb=256"), std::string::npos) << f.detail;
}

TEST(VerifyFixtures, CleanFixturesAreAlsoDynamicallyClean) {
  for (const auto* name :
       {"fx-block-stride-clean", "fx-thread-stride-clean", "fx-shared-stage-clean",
        "fx-nonaffine"}) {
    EXPECT_TRUE(run_fixture_under_checker(name).empty()) << name;
  }
}

TEST(VerifyFixtures, FixtureVerdictsAreSeedInvariant) {
  for (const auto& name : fixture_names()) {
    const KernelStatus base = only_kernel(verify_unit(name)).status;
    for (unsigned seed : {1U, 2U, 5U}) {
      VerifyOptions opts;
      opts.pilot_seed = seed;
      EXPECT_EQ(only_kernel(verify_unit(name, opts)).status, base)
          << name << " verdict flipped at seed " << seed;
    }
  }
}

}  // namespace
