// End-to-end integration tests: the full paper pipeline (lattice ->
// Hamiltonian -> Gershgorin rescale -> stochastic KPM moments on the
// simulated GPU -> Jackson reconstruction) validated against full
// diagonalization, for the same physics Fig. 6 plots.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/kpm.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

TEST(IntegrationDos, CubicLatticeKpmMatchesExactDiagonalization) {
  // 6x6x6 cubic lattice (D = 216): compare the KPM DoS (GPU engine) with
  // the eigenvalue histogram from the O(D^3) baseline at matching
  // resolution.
  const auto lat = lattice::HypercubicLattice::cubic(6, 6, 6);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto t = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, t);
  linalg::MatrixOperator op_t(ht);

  MomentParams p;
  p.num_moments = 64;
  p.random_vectors = 14;
  p.realizations = 16;  // 224 instances
  GpuMomentEngine engine;
  const auto moments = engine.compute(op_t, p);
  const auto curve = reconstruct_dos(moments.mu, t, {.points = 200});

  // Exact spectrum via the closed form (periodic lattice).
  const auto spectrum = lattice::periodic_tight_binding_spectrum(lat);

  // Smooth the exact spectrum with the same Jackson resolution by
  // evaluating the exact-moment KPM curve — this isolates stochastic error
  // from truncation error.
  const auto exact_mu = diag::exact_chebyshev_moments(spectrum, t, p.num_moments);
  const auto exact_curve = reconstruct_dos(exact_mu, t, {.points = 200});

  double max_err = 0.0;
  for (std::size_t j = 0; j < curve.density.size(); ++j)
    max_err = std::max(max_err, std::abs(curve.density[j] - exact_curve.density[j]));
  // Stochastic noise with 224 * 216 samples is small.
  EXPECT_LT(max_err, 0.01);
  EXPECT_NEAR(dos_integral(curve), 1.0, 5e-3);
}

TEST(IntegrationDos, BandEdgesAndBandwidthAreRight) {
  // The simple-cubic band spans [-6t, 6t]: the DoS must be essentially zero
  // outside and positive inside.
  const auto lat = lattice::HypercubicLattice::cubic(8, 8, 8);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto t = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, t);
  linalg::MatrixOperator op_t(ht);

  MomentParams p;
  p.num_moments = 128;
  p.random_vectors = 8;
  p.realizations = 8;
  CpuMomentEngine engine;
  const auto moments = engine.compute(op_t, p);
  const auto curve = reconstruct_dos(moments.mu, t, {.points = 512});

  for (std::size_t j = 0; j < curve.energy.size(); ++j) {
    const double e = curve.energy[j];
    if (std::abs(e) < 3.0) EXPECT_GT(curve.density[j], 0.01) << "energy " << e;
    if (std::abs(e) > 6.3) EXPECT_LT(std::abs(curve.density[j]), 5e-3) << "energy " << e;
  }
}

TEST(IntegrationDos, BipartiteSymmetryOfTheDos) {
  // The cubic lattice with EVEN periodic extents is bipartite (odd extents
  // wrap into odd cycles and break the sublattice structure): rho(E) =
  // rho(-E).  With the symmetric Gershgorin window the KPM curve must be
  // even in E up to stochastic noise.
  const auto lat = lattice::HypercubicLattice::cubic(4, 4, 4);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto t = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, t);
  linalg::MatrixOperator op_t(ht);

  MomentParams p;
  p.num_moments = 64;
  p.random_vectors = 16;
  p.realizations = 8;
  GpuMomentEngine engine;
  const auto r = engine.compute(op_t, p);
  const auto curve = reconstruct_dos(r.mu, t, {.points = 256});
  const std::size_t m = curve.density.size();
  for (std::size_t j = 0; j < m / 2; ++j)
    EXPECT_NEAR(curve.density[j], curve.density[m - 1 - j], 0.02);
}

TEST(IntegrationDos, HigherNSharpensTheDosLikeFig6) {
  // Fig. 6's message: larger N resolves more structure.  Measure the
  // sharpening as stronger curvature (larger max |second difference|).
  const auto lat = lattice::HypercubicLattice::cubic(4, 4, 4);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  const auto t = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, t);
  linalg::MatrixOperator op_t(ht);

  const auto spectrum = lattice::periodic_tight_binding_spectrum(lat);
  auto curvature = [&](std::size_t n_moments) {
    const auto mu = diag::exact_chebyshev_moments(spectrum, t, n_moments);
    const auto curve = reconstruct_dos(mu, t, {.points = 256});
    double c = 0.0;
    for (std::size_t j = 1; j + 1 < curve.density.size(); ++j)
      c = std::max(c, std::abs(curve.density[j + 1] - 2 * curve.density[j] +
                               curve.density[j - 1]));
    return c;
  };
  EXPECT_GT(curvature(512), 2.0 * curvature(128));
}

TEST(IntegrationDos, LanczosAndGershgorinWindowsAgreeOnPhysics) {
  // The DoS must not depend on which bound estimator defined the window.
  // Needs a lattice large enough that the DoS is smooth at this resolution
  // (pointwise comparison of two differently-broadened spiky discrete
  // spectra would never converge).
  const auto lat = lattice::HypercubicLattice::cubic(8, 8, 8);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);

  const auto t_g = linalg::make_spectral_transform(op);
  const auto lb = diag::lanczos_bounds(op);
  const linalg::SpectralTransform t_l(lb.bounds, 0.05);

  MomentParams p;
  p.num_moments = 128;
  p.random_vectors = 16;
  p.realizations = 8;
  CpuMomentEngine engine;

  const auto ht_g = linalg::rescale(h, t_g);
  linalg::MatrixOperator og(ht_g);
  const auto curve_g = reconstruct_dos(engine.compute(og, p).mu, t_g, {.points = 128});

  const auto ht_l = linalg::rescale(h, t_l);
  linalg::MatrixOperator ol(ht_l);
  const auto curve_l = reconstruct_dos_at(engine.compute(ol, p).mu, t_l, curve_g.energy,
                                          {.points = 128});

  for (std::size_t j = 0; j < curve_g.energy.size(); ++j) {
    if (std::abs(curve_g.energy[j]) < 5.0)
      EXPECT_NEAR(curve_g.density[j], curve_l.density[j], 0.02)
          << "energy " << curve_g.energy[j];
  }
}

}  // namespace
