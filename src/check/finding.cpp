#include "check/finding.hpp"

#include <sstream>

#include "obs/json.hpp"

namespace kpm::check {

const char* to_string(Kind k) noexcept {
  switch (k) {
    case Kind::SharedRace:
      return "shared-race";
    case Kind::AllocDivergence:
      return "alloc-divergence";
    case Kind::GlobalRace:
      return "global-race";
    case Kind::UninitRead:
      return "uninit-read";
    case Kind::StreamHazard:
      return "stream-hazard";
    case Kind::Bounds:
      return "bounds";
    case Kind::NonAffine:
      return "non-affine";
    case Kind::Unproven:
      return "unproven";
  }
  return "?";
}

std::string to_string(const Finding& f) {
  std::ostringstream os;
  os << to_string(f.kind) << " in '" << f.kernel << "'";
  if (!f.buffer.empty()) os << " buffer '" << f.buffer << "'";
  os << " (block " << f.block << ", phase " << f.phase;
  if (f.thread_a != kNoThread || f.thread_b != kNoThread)
    os << ", threads " << f.thread_a << "/" << f.thread_b;
  os << ", bytes [" << f.offset << ", " << f.offset + f.bytes << ")): " << f.detail;
  return os.str();
}

std::string findings_to_json(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "" : ", ") << "{\"kind\": \"" << to_string(f.kind) << "\", \"kernel\": \""
       << obs::json_escape(f.kernel) << "\", \"buffer\": \"" << obs::json_escape(f.buffer)
       << "\", \"block\": " << f.block << ", \"phase\": " << f.phase
       << ", \"thread_a\": " << f.thread_a << ", \"thread_b\": " << f.thread_b
       << ", \"offset\": " << f.offset << ", \"bytes\": " << f.bytes << ", \"detail\": \""
       << obs::json_escape(f.detail) << "\"}";
  }
  os << "]";
  return os.str();
}

}  // namespace kpm::check
