// Tests for the stochastic-trace estimator diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/estimator_stats.hpp"
#include "core/ldos.hpp"
#include "core/moments_cpu.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

struct Fixture {
  linalg::CrsMatrix h_tilde;

  Fixture() {
    const auto lat = lattice::HypercubicLattice::cubic(3, 3, 3);
    const auto h = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator op(h);
    h_tilde = linalg::rescale(h, linalg::make_spectral_transform(op));
  }
};

TEST(EstimatorStats, MeanMatchesEngineMoments) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 12;
  p.random_vectors = 4;
  p.realizations = 2;
  const auto stats = estimate_moment_statistics(op, p, 8);
  CpuMomentEngine engine;
  const auto r = engine.compute(op, p);  // same 8 instances (streams 0..7)
  for (std::size_t n = 0; n < 12; ++n) EXPECT_NEAR(stats.mean[n], r.mu[n], 1e-12);
}

TEST(EstimatorStats, Mu0HasZeroVarianceForRademacher) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 4;
  const auto stats = estimate_moment_statistics(op, p, 16);
  EXPECT_DOUBLE_EQ(stats.mean[0], 1.0);
  EXPECT_NEAR(stats.standard_error[0], 0.0, 1e-12);
}

TEST(EstimatorStats, ErrorShrinksWithMoreInstances) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 8;
  const auto small = estimate_moment_statistics(op, p, 8);
  const auto large = estimate_moment_statistics(op, p, 128);
  // Standard error of the mean falls ~1/sqrt(K): compare a mid moment.
  EXPECT_LT(large.standard_error[4], small.standard_error[4]);
}

TEST(EstimatorStats, ErrorBracketsTruth) {
  // |mean - exact| should rarely exceed ~4 standard errors.
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 8;
  const auto stats = estimate_moment_statistics(op, p, 64);
  const auto exact = deterministic_trace_moments(op, 8);
  for (std::size_t n = 1; n < 8; ++n)
    EXPECT_LE(std::abs(stats.mean[n] - exact[n]), 5.0 * stats.standard_error[n] + 1e-9)
        << "moment " << n;
}

TEST(EstimatorStats, RequiresTwoInstances) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  EXPECT_THROW((void)estimate_moment_statistics(op, p, 1), kpm::Error);
}

}  // namespace
