// Complex Hermitian sparse matrices (CRS) — the magnetic-field extension.
//
// Real symmetric Hamiltonians cover the paper's scope; adding a magnetic
// field threads Peierls phases e^{i theta} through the hoppings, making H
// complex Hermitian.  The KPM carries over unchanged (T_n(H~) is Hermitian,
// moments stay real); only the vector arithmetic becomes complex.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/gershgorin.hpp"
#include "linalg/spectral_transform.hpp"

namespace kpm::linalg {

/// Immutable CRS sparse matrix of complex doubles.
class CrsMatrixZ {
 public:
  using Index = std::int32_t;
  using Complex = std::complex<double>;

  CrsMatrixZ() = default;

  /// Same validation rules as the real CrsMatrix.
  CrsMatrixZ(std::size_t rows, std::size_t cols, std::vector<Index> row_ptr,
             std::vector<Index> col_idx, std::vector<Complex> values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  [[nodiscard]] std::span<const Index> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const Index> col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] std::span<const Complex> values() const noexcept { return values_; }

  /// Element access (0 if not stored).
  [[nodiscard]] Complex at(std::size_t r, std::size_t c) const;

  /// y = A x.
  void multiply(std::span<const Complex> x, std::span<Complex> y) const;

  /// True if A == A^dagger within tol.
  [[nodiscard]] bool is_hermitian(double tol = 0.0) const;

  /// Gershgorin bounds (real, since the matrix is Hermitian): discs
  /// centered at Re(a_ii) with radius sum |a_ij|.
  [[nodiscard]] SpectralBounds gershgorin() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Index> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<Complex> values_;
};

/// Triplet assembly for complex matrices (duplicates accumulate).
class TripletBuilderZ {
 public:
  TripletBuilderZ(std::size_t rows, std::size_t cols);

  void add(std::size_t r, std::size_t c, CrsMatrixZ::Complex value);

  /// Adds value at (r, c) and conj(value) at (c, r); the diagonal is added
  /// once (and must be real for a Hermitian matrix).
  void add_hermitian(std::size_t r, std::size_t c, CrsMatrixZ::Complex value);

  [[nodiscard]] CrsMatrixZ build();

 private:
  struct Entry {
    std::size_t r, c;
    CrsMatrixZ::Complex v;
  };
  std::size_t rows_, cols_;
  std::vector<Entry> entries_;
};

/// H~ = (H - a+ I)/a- for the Hermitian case (a+ real).
[[nodiscard]] CrsMatrixZ rescale(const CrsMatrixZ& h, const SpectralTransform& t);

}  // namespace kpm::linalg
