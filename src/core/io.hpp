// Persistence for KPM moment data.
//
// Computing moments is the expensive step (hours on the paper's scale);
// reconstruction is free.  This module stores a moment set together with
// the spectral transform that produced it in a small, versioned,
// line-oriented text format, so kernels/grids/observables can be swapped
// offline (kpmcli dos --save-moments / kpmcli reconstruct).
//
// Format ("kpm-moments v1"):
//
//   kpm-moments v1
//   dim <D>
//   transform <center> <half_width>
//   engine <name>
//   count <N>
//   <mu_0>
//   ...
//   <mu_{N-1}>
//
// Doubles are written with %.17g and round-trip exactly.
#pragma once

#include <string>
#include <vector>

#include "linalg/spectral_transform.hpp"

namespace kpm::core {

/// A moment set as stored on disk.
struct MomentFile {
  std::vector<double> mu;
  double transform_center = 0.0;
  double transform_half_width = 1.0;
  std::size_t dim = 0;          ///< D of the Hamiltonian (metadata)
  std::string engine = "unknown";

  /// Rebuilds the spectral transform (already padded — epsilon 0).
  [[nodiscard]] linalg::SpectralTransform transform() const {
    return linalg::SpectralTransform(
        {transform_center - transform_half_width, transform_center + transform_half_width}, 0.0);
  }
};

/// Writes `data` to `path`; throws kpm::Error on I/O failure.
void save_moments(const std::string& path, const MomentFile& data);

/// Reads a moment file; throws kpm::Error on malformed input (wrong magic,
/// missing fields, truncated moment list, non-numeric values).
[[nodiscard]] MomentFile load_moments(const std::string& path);

}  // namespace kpm::core
