#include "linalg/shard.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace kpm::linalg {

void dot_lanes_carry(std::span<const double> x, std::span<const double> y,
                     std::size_t global_offset, DotLanes& lanes) {
  KPM_REQUIRE(x.size() == y.size(), "dot_lanes_carry: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i)
    lanes.lane[(global_offset + i) % 4] += x[i] * y[i];
}

void block_dot_lanes_carry(std::span<const double> x, std::span<const double> y,
                           std::size_t block, std::size_t global_offset,
                           std::span<DotLanes> lanes) {
  KPM_REQUIRE(block >= 1, "block_dot_lanes_carry: block must be >= 1");
  KPM_REQUIRE(x.size() == y.size() && x.size() % block == 0,
              "block_dot_lanes_carry: size mismatch");
  KPM_REQUIRE(lanes.size() >= block, "block_dot_lanes_carry: lanes size mismatch");
  const std::size_t d = x.size() / block;
  for (std::size_t i = 0; i < d; ++i) {
    const std::size_t lane = (global_offset + i) % 4;
    for (std::size_t j = 0; j < block; ++j)
      lanes[j].lane[lane] += x[i * block + j] * y[i * block + j];
  }
}

namespace {

/// Bytes one multiply streams for a shard's matrix data (CRS model:
/// values + column indices + row pointers; SELL: the padded layout's own
/// accounting).
std::size_t shard_matrix_bytes(const MatrixShard& s, Storage storage) {
  if (storage == Storage::Sell) return s.sell.spmv_matrix_bytes();
  return s.local.nnz() * (sizeof(double) + sizeof(CrsMatrix::Index)) +
         (s.local.rows() + 1) * sizeof(CrsMatrix::Index);
}

}  // namespace

ShardedMatrix::ShardedMatrix(const MatrixOperator& op, const Decomposition& dec,
                             Storage storage)
    : dec_(dec), storage_(storage) {
  KPM_REQUIRE(op.storage() != Storage::Dense,
              "ShardedMatrix: dense operators cannot be sharded — every dense row references "
              "every column, so there is no halo to exchange (use CRS or SELL storage)");
  KPM_REQUIRE(storage_ != Storage::Dense, "ShardedMatrix: shard storage must be CRS or SELL");
  KPM_REQUIRE(op.dim() == dec_.dim(),
              "ShardedMatrix: decomposition covers " + std::to_string(dec_.dim()) +
                  " rows but the operator has " + std::to_string(op.dim()));

  // Work from the CRS form (SELL round-trips through its logical-row CRS;
  // entry values and per-row order are identical by construction).
  const CrsMatrix* global = op.crs();
  CrsMatrix from_sell;
  if (global == nullptr) {
    from_sell = op.sell()->to_crs();
    global = &from_sell;
  }
  const auto row_ptr = global->row_ptr();
  const auto col_idx = global->col_idx();
  const auto values = global->values();
  const std::size_t nodes = dec_.nodes();
  shards_.resize(nodes);

  for (std::size_t p = 0; p < nodes; ++p) {
    MatrixShard& s = shards_[p];
    s.row_begin = dec_.range(p).begin;
    s.row_end = dec_.range(p).end;

    // 1-hop ghost set: every referenced column outside the owned range.
    for (std::size_t r = s.row_begin; r < s.row_end; ++r)
      for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const auto c = col_idx[static_cast<std::size_t>(k)];
        if (static_cast<std::size_t>(c) < s.row_begin ||
            static_cast<std::size_t>(c) >= s.row_end)
          s.ghost_rows.push_back(c);
      }
    std::sort(s.ghost_rows.begin(), s.ghost_rows.end());
    s.ghost_rows.erase(std::unique(s.ghost_rows.begin(), s.ghost_rows.end()),
                       s.ghost_rows.end());
    s.left_ghosts = static_cast<std::size_t>(
        std::lower_bound(s.ghost_rows.begin(), s.ghost_rows.end(),
                         static_cast<std::int32_t>(s.row_begin)) -
        s.ghost_rows.begin());

    // Resolve ghost owners once; count distinct neighbours.
    s.ghost_sources.reserve(s.ghost_rows.size());
    std::vector<bool> from(nodes, false);
    for (const std::int32_t g : s.ghost_rows) {
      const std::size_t owner = dec_.owner_of(static_cast<std::size_t>(g));
      from[owner] = true;
      s.ghost_sources.push_back(
          {static_cast<std::uint32_t>(owner),
           static_cast<std::uint32_t>(static_cast<std::size_t>(g) - dec_.range(owner).begin)});
    }
    s.neighbour_count =
        static_cast<std::size_t>(std::count(from.begin(), from.end(), true));

    // Local rectangular CRS: remap each column to its working-vector slot.
    // The [left ghosts | owned | right ghosts] layout is monotone in the
    // global column, so rows stay sorted and keep their entry order.
    const std::size_t local = s.local_rows();
    std::vector<CrsMatrix::Index> lrow_ptr(local + 1, 0);
    std::vector<CrsMatrix::Index> lcol;
    std::vector<double> lval;
    const auto remap = [&](CrsMatrix::Index c) -> CrsMatrix::Index {
      const auto cc = static_cast<std::size_t>(c);
      if (cc >= s.row_begin && cc < s.row_end)
        return static_cast<CrsMatrix::Index>(s.left_ghosts + (cc - s.row_begin));
      const auto gi = static_cast<std::size_t>(
          std::lower_bound(s.ghost_rows.begin(), s.ghost_rows.end(), c) -
          s.ghost_rows.begin());
      return static_cast<CrsMatrix::Index>(s.ghost_position(gi));
    };
    for (std::size_t lr = 0; lr < local; ++lr) {
      const std::size_t r = s.row_begin + lr;
      for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        lcol.push_back(remap(col_idx[kk]));
        lval.push_back(values[kk]);
      }
      lrow_ptr[lr + 1] = static_cast<CrsMatrix::Index>(lcol.size());
    }
    s.local = CrsMatrix(local, s.working_size(), std::move(lrow_ptr), std::move(lcol),
                        std::move(lval));
    if (storage_ == Storage::Sell) s.sell = SellMatrix::from_crs(s.local);
  }

  // Boundary rows: owned rows some other shard gathers (their fresh values
  // gate that neighbour's halo exchange).
  for (std::size_t p = 0; p < nodes; ++p) {
    std::vector<bool> needed(shards_[p].local_rows(), false);
    for (std::size_t q = 0; q < nodes; ++q) {
      if (q == p) continue;
      const MatrixShard& other = shards_[q];
      for (std::size_t gi = 0; gi < other.ghost_rows.size(); ++gi)
        if (other.ghost_sources[gi].owner == p)
          needed[other.ghost_sources[gi].local_row] = true;
    }
    MatrixShard& s = shards_[p];
    const auto lrp = s.local.row_ptr();
    for (std::size_t lr = 0; lr < needed.size(); ++lr)
      if (needed[lr]) {
        ++s.boundary_rows;
        s.boundary_nnz += static_cast<std::size_t>(lrp[lr + 1] - lrp[lr]);
      }
  }

  // Modeled halo volume under the decomposition's ghost-layer width: the
  // w-hop sparsity neighbourhood (a BFS over the global adjacency).  Only
  // the 1-hop layer is gathered functionally; wider windows model
  // communication-avoiding exchanges — more bytes, identical values.
  for (std::size_t p = 0; p < nodes; ++p) {
    MatrixShard& s = shards_[p];
    std::vector<bool> visited(dec_.dim(), false);
    for (std::size_t r = s.row_begin; r < s.row_end; ++r) visited[r] = true;
    std::vector<std::size_t> frontier;
    for (const std::int32_t g : s.ghost_rows) {
      visited[static_cast<std::size_t>(g)] = true;
      frontier.push_back(static_cast<std::size_t>(g));
    }
    s.halo_recv_doubles = s.ghost_rows.size();
    for (std::size_t hop = 2; hop <= dec_.halo_width(); ++hop) {
      std::vector<std::size_t> next;
      for (const std::size_t r : frontier)
        for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
          const auto c = static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]);
          if (!visited[c]) {
            visited[c] = true;
            next.push_back(c);
          }
        }
      s.halo_recv_doubles += next.size();
      frontier = std::move(next);
    }
    halo_doubles_ += s.halo_recv_doubles;
    s.matrix_bytes = shard_matrix_bytes(s, storage_);
    spmv_flops_ += 2 * s.local.nnz();
    spmv_matrix_bytes_ += s.matrix_bytes;
  }
}

const MatrixShard& ShardedMatrix::shard(std::size_t p) const {
  KPM_REQUIRE(p < shards_.size(), "ShardedMatrix::shard: node index out of range");
  return shards_[p];
}

SpectralBounds ShardedMatrix::gershgorin_bounds() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const MatrixShard& s : shards_) {
    const auto row_ptr = s.local.row_ptr();
    const auto col_idx = s.local.col_idx();
    const auto values = s.local.values();
    for (std::size_t lr = 0; lr < s.local.rows(); ++lr) {
      // The diagonal of global row (row_begin + lr) remaps to working slot
      // owned_offset() + lr.
      const auto diag = static_cast<std::size_t>(s.owned_offset() + lr);
      double center = 0.0;
      double radius = 0.0;
      for (auto k = row_ptr[lr]; k < row_ptr[lr + 1]; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        if (static_cast<std::size_t>(col_idx[kk]) == diag)
          center = values[kk];
        else
          radius += std::abs(values[kk]);
      }
      lo = std::min(lo, center - radius);
      hi = std::max(hi, center + radius);
    }
  }
  return {lo, hi};
}

void ShardedMatrix::shard_multiply(std::size_t p, std::span<const double> x_work,
                                   std::span<double> y) const {
  const MatrixShard& s = shard(p);
  if (storage_ == Storage::Sell)
    s.sell.multiply(x_work, y);
  else
    s.local.multiply(x_work, y);
}

void ShardedMatrix::shard_multiply_block(std::size_t p, std::size_t block,
                                         std::span<const double> x_work, std::span<double> y,
                                         std::span<double> acc) const {
  const MatrixShard& s = shard(p);
  KPM_REQUIRE(block >= 1, "shard_multiply_block: block must be >= 1");
  KPM_REQUIRE(x_work.size() == s.working_size() * block && y.size() == s.local_rows() * block,
              "shard_multiply_block: block size mismatch");
  KPM_REQUIRE(acc.size() >= block, "shard_multiply_block: acc scratch too small");
  // Each member's per-row accumulation runs in entry order with its own
  // register accumulator — identical to linalg::spmmv_multiply member-wise.
  if (storage_ == Storage::Sell) {
    const SellMatrix& m = s.sell;
    const auto chunk_ptr = m.chunk_ptr();
    const auto row_len = m.row_len();
    const auto slot_of = m.slot_of();
    const auto col_idx = m.col_idx();
    const auto values = m.values();
    const std::size_t c_sz = m.chunk_size();
    for (std::size_t r = 0; r < m.rows(); ++r) {
      const auto slot = static_cast<std::size_t>(slot_of[r]);
      const std::size_t chunk = slot / c_sz;
      const std::size_t lane = slot % c_sz;
      const auto base = static_cast<std::size_t>(chunk_ptr[chunk]);
      for (std::size_t j = 0; j < block; ++j) acc[j] = 0.0;
      for (std::size_t e = 0; e < static_cast<std::size_t>(row_len[slot]); ++e) {
        const std::size_t k = base + e * c_sz + lane;
        const double v = values[k];
        const auto c = static_cast<std::size_t>(col_idx[k]);
        for (std::size_t j = 0; j < block; ++j) acc[j] += v * x_work[c * block + j];
      }
      for (std::size_t j = 0; j < block; ++j) y[r * block + j] = acc[j];
    }
    return;
  }
  const CrsMatrix& m = s.local;
  const auto row_ptr = m.row_ptr();
  const auto col_idx = m.col_idx();
  const auto values = m.values();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t j = 0; j < block; ++j) acc[j] = 0.0;
    for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      const double v = values[kk];
      const auto c = static_cast<std::size_t>(col_idx[kk]);
      for (std::size_t j = 0; j < block; ++j) acc[j] += v * x_work[c * block + j];
    }
    for (std::size_t j = 0; j < block; ++j) y[r * block + j] = acc[j];
  }
}

}  // namespace kpm::linalg
