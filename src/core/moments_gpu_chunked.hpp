// VRAM-aware chunked GPU moment engine with copy/compute overlap.
//
// The plain GpuMomentEngine sizes its work vectors for all S*R instances
// at once, so large D x instances products exhaust the 3 GB card (exactly
// as the real code would).  This engine processes instances in chunks that
// fit a VRAM budget and — using the gpusim stream model — fills the next
// chunk's random vectors on a second stream while the current chunk's
// recursion runs, hiding the RNG kernel entirely (classic CUDA
// double-buffering).  Functional results are bit-identical to the plain
// engine and the CPU reference.
#pragma once

#include "core/moments.hpp"
#include "core/moments_gpu.hpp"

namespace kpm::core {

/// Configuration of the chunked engine.
struct ChunkedGpuEngineConfig {
  GpuEngineConfig base{};
  /// VRAM budget for the per-chunk work vectors (the matrix and the mu~
  /// buffer are allocated on top).  Default: half of the device memory.
  std::size_t workspace_bytes = 0;  ///< 0 = spec.global_mem_bytes / 2
  bool overlap_fill = true;         ///< double-buffer the RNG fill on a second stream
};

/// Chunked/double-buffered GPU moment engine.
class ChunkedGpuMomentEngine final : public MomentEngine {
 public:
  explicit ChunkedGpuMomentEngine(ChunkedGpuEngineConfig config = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MomentResult compute(const linalg::MatrixOperator& h_tilde,
                                     const MomentParams& params,
                                     std::size_t sample_instances = 0) override;

  /// Instances per chunk chosen for the last compute() call.
  [[nodiscard]] std::size_t last_chunk_instances() const noexcept { return last_chunk_; }
  [[nodiscard]] std::size_t last_chunk_count() const noexcept { return last_chunks_; }

 private:
  ChunkedGpuEngineConfig config_;
  std::size_t last_chunk_ = 0;
  std::size_t last_chunks_ = 0;
};

}  // namespace kpm::core
