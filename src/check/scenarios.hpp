// kpmcheck scenarios: every production GPU workload run under the Checker.
//
// A scenario builds a small representative problem (tight-binding cube,
// magnetic square lattice, ...) and runs one of the repo's GPU engines
// with hazard analysis installed.  Production kernels must come out clean;
// `kpmcli check --all` and test_check_clean gate on exactly that.
//
// Scenarios are scale-parameterized (ScenarioScale) so the static verifier
// (src/verify/) can drive the same production workloads at a pilot set of
// geometries and fit symbolic access summaries; run_scenario_workload
// reports the workload parameters it actually produced, which become the
// verifier's symbolic parameter space.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "check/checker.hpp"
#include "check/finding.hpp"

namespace kpm::check {

/// Knobs a scenario can be scaled by.  Defaults reproduce the historical
/// fixed-size scenario runs, so run_scenario(name) behaves as before.
struct ScenarioScale {
  std::size_t edge = 3;            ///< cube edge (cubic lattices) / square edge
  std::size_t num_moments = 12;    ///< Chebyshev moments N
  std::size_t random_vectors = 3;  ///< R
  std::size_t realizations = 2;    ///< S (instances = R*S)
  std::size_t block_size = 128;    ///< GPU threads per block (multiple of 32)
  std::size_t ldos_sites = 3;      ///< site count for the ldos scenario
  std::size_t spmmv_block = 2;     ///< vector-block width b for spmmv-sell
};

/// Workload parameters a scenario run actually produced (name -> value),
/// in a deterministic order.  These are the symbolic variables the static
/// verifier fits launch geometries and access summaries over.
using ScenarioParams = std::vector<std::pair<std::string, long long>>;

/// Result of one checked scenario run.
struct ScenarioReport {
  std::string name;
  std::vector<Finding> findings;
  CheckStats stats;
  /// Kernels the scenario registers (scenario_expected_kernels) that were
  /// never launched — a coverage gap, counted as a failure by kpmcli check.
  std::vector<std::string> missing_kernels;
  [[nodiscard]] bool clean() const noexcept { return findings.empty() && missing_kernels.empty(); }
};

/// Names accepted by run_scenario, in execution order: the moment engines
/// (block/thread/paired/chunked/multigpu/hermitian), LDOS, conductivity,
/// and the staged SELL-C-sigma SpMMV kernel ("spmmv-sell").
[[nodiscard]] std::vector<std::string> scenario_names();

/// The kernel names the scenario is expected to launch.  run_scenario
/// diffs this against the kernels the Checker actually observed.
[[nodiscard]] std::vector<std::string> scenario_expected_kernels(const std::string& name);

/// Runs the named workload at the given scale with NO checker installed
/// (callers install their own observer first — this is the verifier's
/// pilot-run entry point).  Returns the produced workload parameters.
/// Throws kpm::Error for unknown names.
ScenarioParams run_scenario_workload(const std::string& name, const ScenarioScale& scale = {});

/// Runs the named workload under a fresh Checker.  Throws kpm::Error for
/// unknown names.
[[nodiscard]] ScenarioReport run_scenario(const std::string& name);

/// Runs every scenario (scenario_names() order).
[[nodiscard]] std::vector<ScenarioReport> run_all_scenarios();

}  // namespace kpm::check
