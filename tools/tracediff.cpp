// tracediff — deterministic trace alignment and schedule-regression gate.
//
//   tracediff A.trace.json B.trace.json [options]
//
// Both inputs must be `kpm.trace/1` exports (kpmcli --trace /
// --trace-modeled, or the bench reference traces).  Spans and timeline
// events are aligned by identity (hierarchical span path / timeline + kind
// + kernel label) with run-length + LCS sequence alignment, so traces whose
// phases repeat a different number of times still align phase to phase.
// The report covers added/removed/re-ordered keys, per-key model-time
// deltas, per-lane busy/idle shifts, and the critical-path composition
// shift between the two schedules.
//
// Exit codes mirror tools/benchgate: 0 = within thresholds, 1 = divergence
// beyond thresholds, 2 = usage/configuration error.  `--json=FILE` writes
// the versioned `kpm.tracediff/1` document (stable fingerprint included),
// byte-identical across runs for deterministic inputs.  `--perturb=SEED`
// applies the seeded negative-control perturbation to B before diffing —
// CI uses it to prove the gate can actually trip.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "obs/tracediff.hpp"

namespace {

using kpm::obs::TraceDiff;
using kpm::obs::TraceDiffThresholds;
using kpm::obs::TraceFile;

struct Options {
  std::string path_a;
  std::string path_b;
  std::string json_out;
  TraceDiffThresholds limits;
  std::size_t max_rows = 20;
  std::uint64_t perturb_seed = 0;  // 0 = off
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "tracediff — align two deterministic kpm.trace/1 exports and gate on divergence\n\n"
      "usage: tracediff A.trace.json B.trace.json [options]\n\n"
      "options:\n"
      "  --json=FILE                  write the kpm.tracediff/1 report (stable fingerprint)\n"
      "  --max-rows=N                 span-delta rows to print (default 20, 0 = all)\n"
      "  --perturb=SEED               perturb B before diffing (seeded negative control)\n"
      "thresholds (gate trips when exceeded):\n"
      "  --max-makespan-drift-pct=X   modeled makespan drift vs A (default 2)\n"
      "  --max-span-drift-pct=X       per-key model-time drift vs A (default 10)\n"
      "  --min-span-ns=N              ignore relative drift of keys under N ns (default 1000)\n"
      "  --max-added=N                occurrences only in B (default 0)\n"
      "  --max-removed=N              occurrences only in A (default 0)\n"
      "  --max-reordered=N            off-order occurrences present in both (default 0)\n"
      "  --max-overlap-drop=X         absolute copy-hidden-fraction drop (default 0.02)\n"
      "  --max-idle-growth-pct=X      total stream idle growth vs A (default 10)\n");
}

int run(const Options& opts) {
  const TraceFile a = kpm::obs::load_trace_file(opts.path_a);
  TraceFile b = kpm::obs::load_trace_file(opts.path_b);
  if (opts.perturb_seed != 0) {
    kpm::obs::perturb_trace(b, opts.perturb_seed);
    std::printf("note: B perturbed with seed %llu (negative control)\n",
                static_cast<unsigned long long>(opts.perturb_seed));
  }

  const TraceDiff diff = kpm::obs::diff_traces(a, b);
  const std::vector<std::string> violations = kpm::obs::tracediff_violations(diff, opts.limits);

  std::printf("A: %s  (%s)\n", opts.path_a.c_str(), diff.label_a.c_str());
  std::printf("B: %s  (%s)\n", opts.path_b.c_str(), diff.label_b.c_str());
  std::printf("alignment: %zu matched, %zu added, %zu removed, %zu re-ordered\n", diff.matched,
              diff.added, diff.removed, diff.reordered);
  std::printf("makespan: %.6f ms -> %.6f ms   idle: %.6f ms -> %.6f ms   copy hidden: %.4f -> "
              "%.4f\n\n",
              static_cast<double>(diff.makespan_ns_a) * 1e-6,
              static_cast<double>(diff.makespan_ns_b) * 1e-6,
              static_cast<double>(diff.idle_ns_a) * 1e-6,
              static_cast<double>(diff.idle_ns_b) * 1e-6, diff.overlap_a, diff.overlap_b);
  std::printf("span deltas (top %zu by |delta|):\n%s\n", opts.max_rows,
              kpm::obs::tracediff_span_table(diff, opts.max_rows).to_text().c_str());
  std::printf("lane busy/idle shifts:\n%s\n",
              kpm::obs::tracediff_lane_table(diff).to_text().c_str());
  std::printf("critical-path composition shift:\n%s\n",
              kpm::obs::tracediff_composition_table(diff).to_text().c_str());

  if (!opts.json_out.empty()) {
    const std::string doc = kpm::obs::tracediff_to_json(diff, violations);
    std::ofstream out(opts.json_out);
    KPM_REQUIRE(out.good(), "tracediff: cannot write " + opts.json_out);
    out << doc;
    out.flush();
    KPM_REQUIRE(out.good(), "tracediff: failed writing " + opts.json_out);
    std::printf("wrote %s\n", opts.json_out.c_str());
  }

  if (violations.empty()) {
    std::printf("tracediff: schedules agree within thresholds\n");
    return 0;
  }
  for (const std::string& violation : violations) {
    std::printf("  FAIL %s\n", violation.c_str());
  }
  std::printf("tracediff: %zu violation(s)\n", violations.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> positional;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&arg](std::size_t prefix) { return arg.substr(prefix); };
      if (arg == "--help" || arg == "-h") {
        usage(stdout);
        return 0;
      } else if (arg.rfind("--json=", 0) == 0) {
        opts.json_out = value(7);
      } else if (arg.rfind("--max-rows=", 0) == 0) {
        opts.max_rows = std::stoul(value(11));
      } else if (arg.rfind("--perturb=", 0) == 0) {
        opts.perturb_seed = std::stoull(value(10));
      } else if (arg.rfind("--max-makespan-drift-pct=", 0) == 0) {
        opts.limits.max_makespan_drift_pct = std::stod(value(25));
      } else if (arg.rfind("--max-span-drift-pct=", 0) == 0) {
        opts.limits.max_span_drift_pct = std::stod(value(21));
      } else if (arg.rfind("--min-span-ns=", 0) == 0) {
        opts.limits.min_span_ns = std::stoll(value(14));
      } else if (arg.rfind("--max-added=", 0) == 0) {
        opts.limits.max_added = std::stoul(value(12));
      } else if (arg.rfind("--max-removed=", 0) == 0) {
        opts.limits.max_removed = std::stoul(value(14));
      } else if (arg.rfind("--max-reordered=", 0) == 0) {
        opts.limits.max_reordered = std::stoul(value(16));
      } else if (arg.rfind("--max-overlap-drop=", 0) == 0) {
        opts.limits.max_overlap_drop = std::stod(value(19));
      } else if (arg.rfind("--max-idle-growth-pct=", 0) == 0) {
        opts.limits.max_idle_growth_pct = std::stod(value(22));
      } else if (arg.rfind("--", 0) == 0) {
        std::fprintf(stderr, "tracediff: unknown option %s\n\n", arg.c_str());
        usage(stderr);
        return 2;
      } else {
        positional.push_back(arg);
      }
    }
    if (positional.size() != 2) {
      std::fprintf(stderr, "tracediff: exactly two trace files are required\n\n");
      usage(stderr);
      return 2;
    }
    opts.path_a = positional[0];
    opts.path_b = positional[1];
    return run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tracediff: %s\n", e.what());
    return 2;
  }
}
