#include "core/moments_gpu.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "core/moments_cpu.hpp"
#include "obs/counters.hpp"
#include "obs/gpusim_bridge.hpp"
#include "obs/trace.hpp"

namespace kpm::core {

GpuMomentEngine::GpuMomentEngine(GpuEngineConfig config) : config_(std::move(config)) {
  config_.device.validate();
  KPM_REQUIRE(config_.block_size > 0 && config_.block_size % 32 == 0,
              "GpuEngineConfig: block_size must be a positive multiple of the warp size");
  KPM_REQUIRE(config_.context_setup_seconds >= 0,
              "GpuEngineConfig: context_setup_seconds must be non-negative");
  KPM_REQUIRE(!config_.paired_moments || config_.mapping == GpuMapping::InstancePerBlock,
              "GpuEngineConfig: paired_moments requires the instance-per-block mapping");
}

std::string GpuMomentEngine::name() const {
  return std::string("gpu-") + to_string(config_.mapping) +
         (config_.paired_moments ? "-paired" : "");
}

MomentResult GpuMomentEngine::compute(const linalg::MatrixOperator& h_tilde,
                                      const MomentParams& params,
                                      std::size_t sample_instances) {
  params.validate();
  const std::size_t d = h_tilde.dim();
  const std::size_t n = params.num_moments;
  const std::size_t total = params.instances();
  const std::size_t executed = resolve_sample_count(sample_instances, total);
  const double cost_scale = static_cast<double>(total) / static_cast<double>(executed);

  obs::ScopedSpan span("moments." + name());
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(n));
  Stopwatch wall;
  gpusim::Device device(config_.device);

  // --- Device memory layout: H~, r0/a/b work vectors (instance-major,
  // sized for ALL instances: this is the real VRAM footprint, and alloc
  // failure here mirrors cudaMalloc failure), mu~ and mu.
  DeviceMatrix h_dev(device, h_tilde);
  auto r0 = device.alloc<double>(total * d, "r0 vectors");
  auto work_a = device.alloc<double>(total * d, "work vectors a");
  auto work_b = device.alloc<double>(total * d, "work vectors b");
  auto mu_tilde = device.alloc<double>(total * n, "mu~ per instance");
  auto mu_dev = device.alloc<double>(n, "mu");

  // --- Step (1): random vectors.  One block per instance.
  {
    gpusim::ExecConfig cfg;
    cfg.grid = gpusim::Dim3{static_cast<std::uint32_t>(total)};
    cfg.block = gpusim::Dim3{config_.block_size};
    FillRandomKernel fill(params, d, executed, r0);
    device.launch(cfg, fill, cost_scale);
  }

  // --- Step (2): the recursion.
  if (config_.mapping == GpuMapping::InstancePerBlock) {
    gpusim::ExecConfig cfg;
    cfg.grid = gpusim::Dim3{static_cast<std::uint32_t>(total)};
    cfg.block = gpusim::Dim3{config_.block_size};
    // Shared staging region: a tile of x plus a tile of the matrix stream.
    cfg.shared_bytes = std::min<std::size_t>(config_.device.shared_mem_per_sm / 2,
                                             2 * config_.block_size * sizeof(double) * 4);
    if (config_.paired_moments) {
      RecursionBlockPairedKernel rec(params, h_dev.ref(), executed,
                                     config_.device.l2_cache_bytes, r0, work_a, work_b,
                                     mu_tilde);
      device.launch(cfg, rec, cost_scale);
    } else {
      RecursionBlockKernel rec(params, h_dev.ref(), executed, config_.device.l2_cache_bytes, r0,
                               work_a, work_b, mu_tilde);
      device.launch(cfg, rec, cost_scale);
    }
  } else {
    const auto blocks =
        static_cast<std::uint32_t>((total + config_.block_size - 1) / config_.block_size);
    gpusim::ExecConfig cfg;
    cfg.grid = gpusim::Dim3{blocks};
    cfg.block = gpusim::Dim3{config_.block_size};
    RecursionThreadKernel rec(params, h_dev.ref(), executed, config_.device.l2_cache_bytes, r0,
                              work_a, work_b, mu_tilde);
    device.launch(cfg, rec, cost_scale);
  }

  // --- Step (3): average mu~ over instances.  Launched unscaled: the
  // kernel meters its own cost against the full instance count (see its
  // doc comment).
  {
    const std::uint32_t avg_block = 128;
    AverageMomentsKernel avg(n, d, executed, total, mu_tilde, mu_dev);
    device.launch(gpusim::ExecConfig::linear(n, avg_block), avg);
  }

  // --- Results back to the host.
  MomentResult result;
  result.engine = name();
  result.mu.resize(n);
  device.copy_to_host<double>(mu_dev, result.mu, "mu download");

  result.instances_executed = executed;
  result.instances_total = total;
  result.wall_seconds = wall.seconds();

  obs::record_device(device, name());
  last_summary_ = device.summarize_timeline();
  result.model_seconds = config_.context_setup_seconds + last_summary_.total_seconds;
  result.compute_seconds = last_summary_.kernel_seconds;
  result.transfer_seconds = last_summary_.transfer_seconds;
  result.allocation_seconds =
      config_.context_setup_seconds + last_summary_.allocation_seconds;
  return result;
}

}  // namespace kpm::core
