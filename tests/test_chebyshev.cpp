// Tests for the scalar Chebyshev utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/chebyshev.hpp"

namespace {

using namespace kpm::core;

TEST(Chebyshev, LowOrderClosedForms) {
  for (double x : {-0.9, -0.3, 0.0, 0.4, 0.99}) {
    EXPECT_NEAR(chebyshev_t(0, x), 1.0, 1e-14);
    EXPECT_NEAR(chebyshev_t(1, x), x, 1e-14);
    EXPECT_NEAR(chebyshev_t(2, x), 2 * x * x - 1, 1e-13);
    EXPECT_NEAR(chebyshev_t(3, x), 4 * x * x * x - 3 * x, 1e-13);
  }
}

TEST(Chebyshev, RecursionMatchesTrigForm) {
  // The paper's Eqs. (4)-(5) recursion vs Eq. (3) trig definition.
  std::vector<double> values(64);
  for (double x : {-0.7, 0.1, 0.8}) {
    chebyshev_t_all(x, values);
    for (std::size_t n = 0; n < values.size(); ++n)
      EXPECT_NEAR(values[n], chebyshev_t(n, x), 1e-11) << "n=" << n << " x=" << x;
  }
}

TEST(Chebyshev, BoundedByOneOnInterval) {
  std::vector<double> values(128);
  for (double x = -1.0; x <= 1.0; x += 0.05) {
    chebyshev_t_all(x, values);
    for (double v : values) EXPECT_LE(std::abs(v), 1.0 + 1e-9);
  }
}

TEST(Chebyshev, EndpointValues) {
  // T_n(1) = 1, T_n(-1) = (-1)^n.
  std::vector<double> at_one(10), at_minus(10);
  chebyshev_t_all(1.0, at_one);
  chebyshev_t_all(-1.0, at_minus);
  for (std::size_t n = 0; n < 10; ++n) {
    EXPECT_DOUBLE_EQ(at_one[n], 1.0);
    EXPECT_DOUBLE_EQ(at_minus[n], n % 2 == 0 ? 1.0 : -1.0);
  }
}

TEST(Chebyshev, ClenshawMatchesDirectSum) {
  std::vector<double> a{0.5, -0.25, 0.125, 0.3, -0.1};
  for (double x : {-0.8, 0.0, 0.6}) {
    double direct = 0.0;
    for (std::size_t n = 0; n < a.size(); ++n) direct += a[n] * chebyshev_t(n, x);
    EXPECT_NEAR(clenshaw(a, x), direct, 1e-13);
  }
}

TEST(Chebyshev, ClenshawEdgeCases) {
  EXPECT_DOUBLE_EQ(clenshaw({}, 0.5), 0.0);
  std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(clenshaw(one, -0.2), 3.0);
}

TEST(Chebyshev, GaussGridIsSortedSymmetricAndInterior) {
  const auto grid = chebyshev_gauss_grid(33);
  EXPECT_EQ(grid.size(), 33u);
  for (std::size_t j = 1; j < grid.size(); ++j) EXPECT_LT(grid[j - 1], grid[j]);
  for (double x : grid) {
    EXPECT_GT(x, -1.0);
    EXPECT_LT(x, 1.0);
  }
  // Symmetric about zero.
  for (std::size_t j = 0; j < grid.size(); ++j)
    EXPECT_NEAR(grid[j], -grid[grid.size() - 1 - j], 1e-14);
}

TEST(Chebyshev, GaussGridQuadratureIsExact) {
  // sum_j T_n(x_j) = 0 for 0 < n < M (discrete orthogonality at the
  // Chebyshev-Gauss points).
  const std::size_t m = 16;
  const auto grid = chebyshev_gauss_grid(m);
  for (std::size_t n = 1; n < m; ++n) {
    double sum = 0.0;
    for (double x : grid) sum += chebyshev_t(n, x);
    EXPECT_NEAR(sum, 0.0, 1e-11) << "n=" << n;
  }
}

}  // namespace
