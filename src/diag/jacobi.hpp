// Cyclic Jacobi eigensolver for real symmetric matrices.
//
// This is the "straightforward method to calculate the DoS by diagonalizing
// a Hamiltonian matrix [with] computational complexity O(D^3)" that the
// paper's introduction contrasts with the KPM.  It doubles as the ground
// truth for the KPM validation tests: for D small enough the KPM moments
// must converge to (1/D) sum_k T_n(E~_k) computed from these eigenvalues.
//
// The cyclic Jacobi method sweeps all off-diagonal (p, q) pairs, each time
// applying the rotation that zeroes a_pq.  Quadratic convergence, excellent
// accuracy (every rotation is orthogonal to machine precision).
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"

namespace kpm::diag {

/// Options for the Jacobi eigensolver.
struct JacobiOptions {
  int max_sweeps = 64;         ///< hard cap on full sweeps
  double tolerance = 1e-13;    ///< stop when off(A) <= tolerance * ||A||_F
  bool compute_vectors = false;///< accumulate eigenvectors (adds ~2x cost)
};

/// Result of a symmetric eigendecomposition.
struct EigenDecomposition {
  std::vector<double> eigenvalues;       ///< ascending order
  linalg::DenseMatrix eigenvectors;      ///< column k ~ eigenvalues[k]; empty unless requested
  int sweeps = 0;                        ///< sweeps actually performed
  double off_diagonal_norm = 0.0;        ///< residual sqrt(sum_{p<q} a_pq^2)
};

/// Diagonalizes a symmetric matrix with the cyclic Jacobi method.
/// Throws kpm::Error if `a` is not square or not symmetric (1e-12 tolerance
/// relative to its Frobenius norm), or if convergence fails.
[[nodiscard]] EigenDecomposition jacobi_eigensolve(const linalg::DenseMatrix& a,
                                                   const JacobiOptions& options = {});

}  // namespace kpm::diag
