#include "cpumodel/roofline.hpp"

#include <algorithm>

namespace kpm::cpumodel {

CpuStats model_cpu_time(const CpuSpec& spec, const CpuWorkload& workload) {
  CpuStats stats;
  stats.compute_seconds = workload.flops / spec.peak_flops();
  stats.memory_seconds =
      workload.bytes_streamed / spec.effective_bandwidth(workload.working_set_bytes);
  stats.seconds = std::max(stats.compute_seconds, stats.memory_seconds);
  return stats;
}

CpuStats model_cpu_time_parallel(const CpuSpec& spec, const CpuWorkload& workload, int threads) {
  const int t = std::clamp(threads, 1, spec.cores);
  CpuStats stats;
  stats.compute_seconds = workload.flops / (spec.peak_flops() * t);
  stats.memory_seconds =
      workload.bytes_streamed /
      spec.effective_bandwidth_parallel(workload.working_set_bytes, t);
  stats.seconds = std::max(stats.compute_seconds, stats.memory_seconds);
  return stats;
}

}  // namespace kpm::cpumodel
