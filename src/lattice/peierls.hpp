// Peierls substitution: tight-binding lattices in a magnetic field.
//
// A uniform perpendicular field B through a square lattice multiplies each
// hopping by the Peierls phase exp(i (e/hbar) integral A.dl).  In Landau
// gauge A = (0, B x, 0) only the y-bonds acquire phases:
//
//   t_{(x,y) -> (x,y+1)} = -t exp(i 2 pi phi x)
//
// with phi = B a^2 / Phi_0 the flux per plaquette in flux quanta.  At
// rational phi = p/q the spectrum splits into q magnetic subbands — the
// Hofstadter butterfly that examples/hofstadter_butterfly.cpp renders via
// the Hermitian KPM.
#pragma once

#include "lattice/lattice.hpp"
#include "linalg/hermitian_matrix.hpp"

namespace kpm::lattice {

/// Builds the square-lattice Hamiltonian with flux `phi` (in flux quanta
/// per plaquette) in Landau gauge.  Periodic boundaries along x require
/// phi * Lx to be an integer for a consistent flux (checked); use open
/// boundaries along... the builder requires `phi * lx` integral within
/// 1e-9 when the lattice is periodic.  `hopping` is t.
[[nodiscard]] linalg::CrsMatrixZ build_square_flux_crs(std::size_t lx, std::size_t ly, double phi,
                                                       double hopping = 1.0,
                                                       Boundary boundary = Boundary::Periodic);

/// Builds the honeycomb (graphene) Hamiltonian with flux `phi` per
/// hexagonal plaquette (flux quanta), periodic in both directions.  Gauge:
/// the A(c1,c2) -> B(c1,c2-1) bond carries phase exp(i 2 pi phi c1); each
/// hexagon then encloses exactly 2 pi phi.  Requires phi * l1 integral.
/// The zero-field Dirac cones split into relativistic Landau levels
/// E_n ~ +-sqrt(n B) with a field-independent n = 0 level pinned at E = 0
/// (see examples/landau_levels.cpp).
[[nodiscard]] linalg::CrsMatrixZ build_honeycomb_flux_crs(std::size_t l1, std::size_t l2,
                                                          double phi, double hopping = 1.0);

}  // namespace kpm::lattice
