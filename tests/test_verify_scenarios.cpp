// Production-scenario verification: every production kernel must be
// proven for all launch geometries or honestly demoted with a NonAffine
// reason — never a hazard.  Verdicts must be invariant under the pilot
// seed, and the seeded negative control (a one-byte stride bug injected
// into every global write) must always surface as definite hazards.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/scenarios.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace kpm::verify;
namespace check = kpm::check;

std::vector<std::string> verdict_signature(const std::vector<UnitReport>& reports) {
  std::vector<std::string> sig;
  for (const auto& r : reports)
    for (const auto& k : r.kernels)
      sig.push_back(r.unit + "/" + k.kernel + "=" + to_string(k.status));
  return sig;
}

TEST(VerifyScenarios, EveryProductionKernelProvenOrHonestlyDemoted) {
  const auto reports = verify_all();
  ASSERT_EQ(reports.size(), check::scenario_names().size());
  EXPECT_EQ(hazard_count(reports), 0u);
  std::size_t proven = 0;
  for (const auto& r : reports) {
    EXPECT_TRUE(r.hazard_free()) << r.unit;
    for (const auto& k : r.kernels) {
      EXPECT_NE(k.status, KernelStatus::Findings) << r.unit << "/" << k.kernel;
      if (k.status == KernelStatus::Proven) ++proven;
      if (k.status == KernelStatus::Demoted) {
        // A demotion must say why (the NonAffine records carry the reason).
        bool reason = false;
        for (const auto& f : k.findings)
          reason = reason || (f.kind == check::Kind::NonAffine && !f.detail.empty());
        EXPECT_TRUE(reason) << r.unit << "/" << k.kernel << " demoted without a reason";
      }
    }
  }
  // The instrumented fill kernels across the scenarios must actually prove.
  EXPECT_GE(proven, 6u);
}

// Satellite property test: the fit/holdout rotation must not change any
// verdict — the accepted predicate quantifies over the pilot set.
TEST(VerifyScenarios, VerdictsAreInvariantUnderThePilotSeed) {
  const auto base = verdict_signature(verify_all());
  for (unsigned seed : {1U, 2U}) {
    VerifyOptions opts;
    opts.pilot_seed = seed;
    EXPECT_EQ(verdict_signature(verify_all(opts)), base) << "seed " << seed;
  }
}

// Seeded negative control: widening every recorded global write by one
// byte must break verification loudly (bounds or overlap hazards), at any
// seed — the analysis pipeline cannot silently pass corrupted summaries.
TEST(VerifyScenarios, InjectedStrideBugIsAlwaysCaught) {
  for (unsigned seed : {0U, 3U}) {
    VerifyOptions opts;
    opts.pilot_seed = seed;
    opts.inject_stride_bug = true;
    const auto reports = verify_all(opts);
    EXPECT_GT(hazard_count(reports), 0u) << "stride bug survived at seed " << seed;
  }
}

TEST(VerifyScenarios, JsonSectionCarriesSchemaAndVerdicts) {
  const auto reports = verify_all();
  const std::string json = verify_to_json_section(reports);
  EXPECT_NE(json.find("\"kpm.verify/1\""), std::string::npos);
  EXPECT_NE(json.find("\"hazards\""), std::string::npos);
  for (const auto& r : reports) EXPECT_NE(json.find("\"" + r.unit + "\""), std::string::npos);
}

}  // namespace
