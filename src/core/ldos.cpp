#include "core/ldos.hpp"

#include <vector>

#include "common/error.hpp"
#include "linalg/fused_kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace kpm::core {
namespace {

/// One Chebyshev recursion from start vector `r0`, accumulating
/// mu_n += <r0|r_n> into `mu_acc`.  Counted as one instance: a unit start
/// vector plays the role a random vector plays in the stochastic engines.
void accumulate_recursion_moments(const linalg::MatrixOperator& h, std::span<const double> r0,
                                  std::span<double> mu_acc) {
  const std::size_t d = h.dim();
  const std::size_t n = mu_acc.size();
  std::vector<double> r_prev2(r0.begin(), r0.end());
  std::vector<double> r_prev(d), r_next(d);
  obs::add(obs::Counter::InstancesExecuted, 1.0);
  obs::meter_stream_bytes(2.0 * static_cast<double>(d) * sizeof(double));  // r_prev2 copy

  mu_acc[0] += linalg::dot(r0, r0);
  obs::meter_dot(d);
  if (n == 1) return;
  h.multiply(r0, r_prev);
  obs::meter_spmv(h.spmv_flops(), h.spmv_matrix_bytes(), d);
  mu_acc[1] += linalg::dot(r0, r_prev);
  obs::meter_dot(d);
  for (std::size_t k = 2; k < n; ++k) {
    mu_acc[k] += linalg::spmv_combine_dot(h, r_prev, r_prev2, r0, r_next);
    std::swap(r_prev2, r_prev);
    std::swap(r_prev, r_next);
  }
}

}  // namespace

std::vector<double> ldos_moments(const linalg::MatrixOperator& h_tilde, std::size_t site,
                                 std::size_t num_moments) {
  KPM_REQUIRE(site < h_tilde.dim(), "ldos_moments: site out of range");
  KPM_REQUIRE(num_moments >= 1, "ldos_moments: need at least one moment");
  obs::ScopedSpan span("ldos.moments");
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(num_moments));
  std::vector<double> e(h_tilde.dim(), 0.0);
  e[site] = 1.0;
  std::vector<double> mu(num_moments, 0.0);
  accumulate_recursion_moments(h_tilde, e, mu);
  return mu;
}

DosCurve ldos_curve(const linalg::MatrixOperator& h_tilde,
                    const linalg::SpectralTransform& transform, std::size_t site,
                    std::size_t num_moments, const ReconstructOptions& options) {
  const auto mu = ldos_moments(h_tilde, site, num_moments);
  return reconstruct_dos(mu, transform, options);
}

std::vector<double> deterministic_trace_moments(const linalg::MatrixOperator& h_tilde,
                                                std::size_t num_moments) {
  KPM_REQUIRE(num_moments >= 1, "deterministic_trace_moments: need at least one moment");
  obs::ScopedSpan span("ldos.deterministic-trace");
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(num_moments));
  const std::size_t d = h_tilde.dim();
  std::vector<double> e(d, 0.0);
  std::vector<double> mu(num_moments, 0.0);
  for (std::size_t site = 0; site < d; ++site) {
    e.assign(d, 0.0);
    e[site] = 1.0;
    accumulate_recursion_moments(h_tilde, e, mu);
  }
  for (double& m : mu) m /= static_cast<double>(d);
  return mu;
}

}  // namespace kpm::core
