// Symbolic discharge of hazard obligations over fitted access summaries.
//
// Given a kernel class summary (summary.hpp), the prover decides, for ALL
// launch geometries in the declared parameter domain — not just the pilot
// geometries that produced the fit:
//
//   * bounds safety     — every access of a site stays inside its buffer
//     (or the shared arena),
//   * pairwise disjointness — two accesses from different threads of a
//     block (racecheck) or from different blocks (global overlap) never
//     touch the same byte,
//   * allocation uniformity — shared allocations do not depend on the
//     thread id.
//
// The core primitive is prove_nonneg: P >= 0 over a box domain, decided by
// branching multilinear variables to their interval corners and a final
// corner-shift test (substitute v := lo + u, u >= 0: all-nonnegative
// coefficients prove nonnegativity).  Disjointness uses an interval
// separation rule, then a congruence (stride residue) rule for interleaved
// patterns like offset = c*(it*TPB + tid), and finally a concrete witness
// search over small integer geometries that upgrades an unprovable overlap
// into a definite finding with a reproducible witness.  Everything else is
// Unknown — reported as an Unproven hazard, never silently passed.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "verify/poly.hpp"
#include "verify/summary.hpp"

namespace kpm::verify {

/// Inclusive lower bound and optional inclusive upper bound, as polynomials
/// over other domain variables (e.g. tid in [0, tpb - 1]).
struct VarBound {
  Poly lo;
  std::optional<Poly> hi;
};

/// Box domain: per-variable bounds plus the branching preference order
/// (per-event variables first, so their bounds — which mention launch
/// variables — are eliminated before the launch variables themselves).
struct Domain {
  std::map<int, VarBound> bounds;
  std::vector<int> order;

  void set(int id, Poly lo, std::optional<Poly> hi);
};

/// True when `p` is provably >= 0 for every integer point of `dom`.
/// Conservative: false means "not proven", not "negative somewhere".
bool prove_nonneg(const Poly& p, const Domain& dom);

/// Three-valued proof outcome.
enum class Tri { Proven, Violated, Unknown };

/// Concrete counterexample from the witness search.
struct Witness {
  std::string geometry;  ///< e.g. "dim=8 total=4 tpb=256 nb=2"
  long long bid_a = 0, tid_a = 0, it_a = 0;
  long long bid_b = 0, tid_b = 0, it_b = 0;
  long long offset_a = 0, bytes_a = 0;
  long long offset_b = 0, bytes_b = 0;
  [[nodiscard]] std::string str() const;
};

struct ProofOutcome {
  Tri result = Tri::Unknown;
  std::string rule;  ///< discharge rule or failure note
  std::optional<Witness> witness;
};

/// Discharges obligations for one kernel class.  `param_dom` bounds the
/// declared parameter ranges; `candidates` supplies small integer values
/// per launch variable for the witness search (pilot values plus domain
/// extremes).
class Prover {
 public:
  Prover(const UnitVars& vars, const ClassSummary& cls, Domain param_dom,
         std::map<int, std::vector<long long>> candidates);

  /// offset >= 0 and offset + bytes <= limit for every geometry.
  [[nodiscard]] ProofOutcome check_bounds(const SiteSummary& site, const Poly& limit);

  /// Accesses of `a` and `b` never overlap when the distinguishing
  /// variable differs: `var` is vars.tid (same block, different threads)
  /// or vars.bid (different blocks).  `a` and `b` may be the same family.
  [[nodiscard]] ProofOutcome check_disjoint(const SiteSummary& a, const SiteSummary& b, int var);

 private:
  [[nodiscard]] Poly tpb_expr() const;
  [[nodiscard]] Poly nb_expr() const;
  /// Base domain + per-event bounds for the unprimed (and optionally
  /// primed) event variables.
  [[nodiscard]] Domain event_domain(const SiteSummary& a, const SiteSummary* b) const;
  [[nodiscard]] Poly rename_primed(const Poly& p) const;
  [[nodiscard]] bool congruence_disjoint(const SiteSummary& a, int var, const Poly& modulus);
  [[nodiscard]] std::optional<Witness> search_overlap(const SiteSummary& a, const SiteSummary& b,
                                                      int var);
  [[nodiscard]] std::optional<Witness> search_bounds(const SiteSummary& site, const Poly& limit);

  /// One concrete launch-variable assignment for the witness search.
  struct Geometry {
    std::vector<Rat> values;
    std::string desc;
  };
  [[nodiscard]] std::vector<Geometry> geometries() const;

  const UnitVars& vars_;
  const ClassSummary& cls_;
  Domain param_dom_;
  std::map<int, std::vector<long long>> candidates_;
};

}  // namespace kpm::verify
