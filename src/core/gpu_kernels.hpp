// The KPM kernels of the paper, written against the gpusim substrate.
//
// Two parallelization mappings are provided (Section III of the paper
// describes both views and is internally inconsistent about which it uses;
// see DESIGN.md):
//
//  * InstancePerBlock (default, matches Fig. 4(a)'s "four r vectors per
//    block" and the shared-memory staging of Fig. 8's discussion): one
//    thread block per stochastic-trace instance; the block's threads split
//    the vector elements, dot products use a shared-memory tree reduction,
//    x and the matrix stream through shared memory.
//
//  * InstancePerThread (matches the text's "maximum parallelism = SR"): one
//    thread per instance executing its entire recursion serially; matrix
//    reads are warp-broadcast (all lanes traverse H~ in lockstep), vector
//    accesses are uncoalesced (instance-major layout).
//
// Functional math is identical between the two (and bit-identical to the
// CPU reference); only the metered access patterns differ.  Work vector
// layout is instance-major: vector v of instance k occupies
// [k*D, (k+1)*D).  Moment buffer: mu~ of instance k at [k*N, (k+1)*N).
#pragma once

#include <cstdint>

#include "core/device_matrix.hpp"
#include "core/params.hpp"
#include "gpusim/device.hpp"

namespace kpm::core {

/// Which parallelization mapping a GPU engine uses.
enum class GpuMapping {
  InstancePerBlock,   ///< block = instance, threads = vector elements
  InstancePerThread,  ///< thread = instance (full recursion per thread)
};

/// Returns "instance-per-block" or "instance-per-thread".
const char* to_string(GpuMapping m) noexcept;

/// Fills the r0 buffer with each instance's random vector (paper step (1)).
/// Launch with one block per instance (threads split elements).
/// `stream_offset` maps local instance ids to global RNG streams so a
/// distributed (multi-GPU) run draws the same vectors as a single device.
class FillRandomKernel final : public gpusim::Kernel {
 public:
  FillRandomKernel(const MomentParams& params, std::size_t dim, std::size_t active_instances,
                   gpusim::DeviceBuffer<double>& r0, std::size_t stream_offset = 0)
      : params_(&params),
        dim_(dim),
        active_(active_instances),
        r0_(&r0),
        stream_offset_(stream_offset) {}

  [[nodiscard]] const char* name() const override { return "kpm_fill_random"; }
  void block_phase(int phase, gpusim::BlockContext& block) override;

 private:
  const MomentParams* params_;
  std::size_t dim_;
  std::size_t active_;
  gpusim::DeviceBuffer<double>* r0_;
  std::size_t stream_offset_;
};

/// Full Chebyshev recursion + per-moment dot products (paper steps (2),
/// (2.1), (2.2)), one instance per *block*.
class RecursionBlockKernel final : public gpusim::Kernel {
 public:
  RecursionBlockKernel(const MomentParams& params, DeviceMatrixRef h,
                       std::size_t active_instances, std::size_t l2_cache_bytes,
                       gpusim::DeviceBuffer<double>& r0, gpusim::DeviceBuffer<double>& work_a,
                       gpusim::DeviceBuffer<double>& work_b,
                       gpusim::DeviceBuffer<double>& mu_tilde)
      : params_(&params),
        h_(h),
        active_(active_instances),
        l2_bytes_(l2_cache_bytes),
        r0_(&r0),
        work_a_(&work_a),
        work_b_(&work_b),
        mu_tilde_(&mu_tilde) {}

  [[nodiscard]] const char* name() const override { return "kpm_recursion_block"; }
  void block_phase(int phase, gpusim::BlockContext& block) override;

 private:
  void meter_instance(gpusim::BlockContext& block) const;

  const MomentParams* params_;
  DeviceMatrixRef h_;
  std::size_t active_;
  std::size_t l2_bytes_;
  gpusim::DeviceBuffer<double>* r0_;
  gpusim::DeviceBuffer<double>* work_a_;
  gpusim::DeviceBuffer<double>* work_b_;
  gpusim::DeviceBuffer<double>* mu_tilde_;
};

/// Paired-moment variant of the block recursion: extracts mu~_{2k} and
/// mu~_{2k+1} from <r_k|r_k> and <r_{k+1}|r_k> (Weisse et al. §II.D),
/// halving the SpMV count for the same N — the GPU side of the
/// ablation_moment_pairs study.  Functionally bit-identical to
/// CpuPairedMomentEngine.
class RecursionBlockPairedKernel final : public gpusim::Kernel {
 public:
  RecursionBlockPairedKernel(const MomentParams& params, DeviceMatrixRef h,
                             std::size_t active_instances, std::size_t l2_cache_bytes,
                             gpusim::DeviceBuffer<double>& r0,
                             gpusim::DeviceBuffer<double>& work_a,
                             gpusim::DeviceBuffer<double>& work_b,
                             gpusim::DeviceBuffer<double>& mu_tilde)
      : params_(&params),
        h_(h),
        active_(active_instances),
        l2_bytes_(l2_cache_bytes),
        r0_(&r0),
        work_a_(&work_a),
        work_b_(&work_b),
        mu_tilde_(&mu_tilde) {}

  [[nodiscard]] const char* name() const override { return "kpm_recursion_block_paired"; }
  void block_phase(int phase, gpusim::BlockContext& block) override;

 private:
  void meter_instance(gpusim::BlockContext& block) const;

  const MomentParams* params_;
  DeviceMatrixRef h_;
  std::size_t active_;
  std::size_t l2_bytes_;
  gpusim::DeviceBuffer<double>* r0_;
  gpusim::DeviceBuffer<double>* work_a_;
  gpusim::DeviceBuffer<double>* work_b_;
  gpusim::DeviceBuffer<double>* mu_tilde_;
};

/// Same computation, one instance per *thread*.
class RecursionThreadKernel final : public gpusim::Kernel {
 public:
  RecursionThreadKernel(const MomentParams& params, DeviceMatrixRef h,
                        std::size_t active_instances, std::size_t l2_cache_bytes,
                        gpusim::DeviceBuffer<double>& r0, gpusim::DeviceBuffer<double>& work_a,
                        gpusim::DeviceBuffer<double>& work_b,
                        gpusim::DeviceBuffer<double>& mu_tilde)
      : params_(&params),
        h_(h),
        active_(active_instances),
        l2_bytes_(l2_cache_bytes),
        r0_(&r0),
        work_a_(&work_a),
        work_b_(&work_b),
        mu_tilde_(&mu_tilde) {}

  [[nodiscard]] const char* name() const override { return "kpm_recursion_thread"; }
  void block_phase(int phase, gpusim::BlockContext& block) override;

 private:
  const MomentParams* params_;
  DeviceMatrixRef h_;
  std::size_t active_;
  std::size_t l2_bytes_;
  gpusim::DeviceBuffer<double>* r0_;
  gpusim::DeviceBuffer<double>* work_a_;
  gpusim::DeviceBuffer<double>* work_b_;
  gpusim::DeviceBuffer<double>* mu_tilde_;
};

/// Averages mu~ over instances (paper step (3) / Fig. 4(b)):
/// mu[n] = sum_k mu~[k][n] / (D * K).  Launch with one thread per moment.
///
/// Unlike the recursion kernels this one mixes instance-proportional work
/// (the sum) with fixed work (one store per moment), so it meters its own
/// cost against `modeled_instances` and must be launched with
/// cost_scale = 1.
class AverageMomentsKernel final : public gpusim::Kernel {
 public:
  AverageMomentsKernel(std::size_t num_moments, std::size_t dim, std::size_t active_instances,
                       std::size_t modeled_instances,
                       const gpusim::DeviceBuffer<double>& mu_tilde,
                       gpusim::DeviceBuffer<double>& mu)
      : n_(num_moments),
        dim_(dim),
        active_(active_instances),
        modeled_(modeled_instances),
        mu_tilde_(&mu_tilde),
        mu_(&mu) {}

  [[nodiscard]] const char* name() const override { return "kpm_average_moments"; }
  void thread_phase(int phase, gpusim::ThreadContext& thread) override;

 private:
  std::size_t n_;
  std::size_t dim_;
  std::size_t active_;
  std::size_t modeled_;
  const gpusim::DeviceBuffer<double>* mu_tilde_;
  gpusim::DeviceBuffer<double>* mu_;
};

namespace detail {

/// Shared functional core: one instance's full recursion, writing mu~[n]
/// for n in [0, N).  `r0` is the instance's random vector (read-only);
/// `a` and `b` are its two work vectors.  Pure math on raw spans; metering
/// is the caller's responsibility.
void instance_recursion(const DeviceMatrixRef& h, std::span<const double> r0,
                        std::span<double> a, std::span<double> b, std::span<double> mu_tilde,
                        std::size_t num_moments);

}  // namespace detail
}  // namespace kpm::core
