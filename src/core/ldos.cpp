#include "core/ldos.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "linalg/fused_kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace kpm::core {
namespace {

/// One Chebyshev recursion from start vector `r0`, accumulating
/// mu_n += <r0|r_n> into `mu_acc`.  Counted as one instance: a unit start
/// vector plays the role a random vector plays in the stochastic engines.
void accumulate_recursion_moments(const linalg::MatrixOperator& h, std::span<const double> r0,
                                  std::span<double> mu_acc) {
  const std::size_t d = h.dim();
  const std::size_t n = mu_acc.size();
  std::vector<double> r_prev2(r0.begin(), r0.end());
  std::vector<double> r_prev(d), r_next(d);
  obs::add(obs::Counter::InstancesExecuted, 1.0);
  obs::meter_stream_bytes(2.0 * static_cast<double>(d) * sizeof(double));  // r_prev2 copy

  mu_acc[0] += linalg::dot(r0, r0);
  obs::meter_dot(d);
  if (n == 1) return;
  h.multiply(r0, r_prev);
  obs::meter_spmv(h.spmv_flops(), h.spmv_matrix_bytes(), d);
  mu_acc[1] += linalg::dot(r0, r_prev);
  obs::meter_dot(d);
  for (std::size_t k = 2; k < n; ++k) {
    mu_acc[k] += linalg::spmv_combine_dot(h, r_prev, r_prev2, r0, r_next);
    std::swap(r_prev2, r_prev);
    std::swap(r_prev, r_next);
  }
}

}  // namespace

std::vector<double> ldos_moments(const linalg::MatrixOperator& h_tilde, std::size_t site,
                                 std::size_t num_moments) {
  KPM_REQUIRE(site < h_tilde.dim(), "ldos_moments: site out of range");
  KPM_REQUIRE(num_moments >= 1, "ldos_moments: need at least one moment");
  obs::ScopedSpan span("ldos.moments");
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(num_moments));
  std::vector<double> e(h_tilde.dim(), 0.0);
  e[site] = 1.0;
  std::vector<double> mu(num_moments, 0.0);
  accumulate_recursion_moments(h_tilde, e, mu);
  return mu;
}

DosCurve ldos_curve(const linalg::MatrixOperator& h_tilde,
                    const linalg::SpectralTransform& transform, std::size_t site,
                    std::size_t num_moments, const ReconstructOptions& options) {
  const auto mu = ldos_moments(h_tilde, site, num_moments);
  return reconstruct_dos(mu, transform, options);
}

std::vector<double> deterministic_trace_moments(const linalg::MatrixOperator& h_tilde,
                                                std::size_t num_moments, std::size_t block) {
  KPM_REQUIRE(num_moments >= 1, "deterministic_trace_moments: need at least one moment");
  KPM_REQUIRE(block >= 1, "deterministic_trace_moments: block must be >= 1");
  obs::ScopedSpan span("ldos.deterministic-trace");
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(num_moments));
  const std::size_t d = h_tilde.dim();
  const std::size_t n = num_moments;
  std::vector<double> mu(n, 0.0);
  if (block <= 1) {
    std::vector<double> e(d, 0.0);
    for (std::size_t site = 0; site < d; ++site) {
      e.assign(d, 0.0);
      e[site] = 1.0;
      accumulate_recursion_moments(h_tilde, e, mu);
    }
  } else {
    // Blocked basis sweep: `block` unit vectors share each matrix stream.
    // Member rows are summed in site order, so the result is bit-identical
    // to the per-vector sweep.
    std::vector<double> e(d * block), r_prev2(d * block), r_prev(d * block),
        r_next(d * block), dots(block), rows(block * n);
    for (std::size_t first = 0; first < d; first += block) {
      const std::size_t b = std::min(block, d - first);
      const std::size_t len = d * b;
      const auto sub = [len](std::vector<double>& v) {
        return std::span<double>(v.data(), len);
      };
      const std::span<double> dv(dots.data(), b);
      std::fill(e.begin(), e.begin() + static_cast<std::ptrdiff_t>(len), 0.0);
      for (std::size_t j = 0; j < b; ++j) e[(first + j) * b + j] = 1.0;
      std::fill(rows.begin(), rows.end(), 0.0);

      obs::add(obs::Counter::InstancesExecuted, static_cast<double>(b));
      std::copy(e.begin(), e.begin() + static_cast<std::ptrdiff_t>(len), r_prev2.begin());
      obs::meter_stream_bytes(2.0 * static_cast<double>(len) * sizeof(double));
      linalg::block_dot(sub(e), sub(e), b, dv);
      for (std::size_t j = 0; j < b; ++j) {
        rows[j * n] += dv[j];
        obs::meter_dot(d);
      }
      if (n > 1) {
        linalg::spmmv_multiply(h_tilde, b, sub(e), sub(r_prev));
        linalg::block_dot(sub(e), sub(r_prev), b, dv);
        for (std::size_t j = 0; j < b; ++j) {
          rows[j * n + 1] += dv[j];
          obs::meter_dot(d);
        }
        for (std::size_t k = 2; k < n; ++k) {
          linalg::spmmv_combine_dot(h_tilde, b, sub(r_prev), sub(r_prev2), sub(e),
                                    sub(r_next), dv);
          for (std::size_t j = 0; j < b; ++j) rows[j * n + k] += dv[j];
          std::swap(r_prev2, r_prev);
          std::swap(r_prev, r_next);
        }
      }
      for (std::size_t j = 0; j < b; ++j) {
        const double* row = rows.data() + j * n;
        for (std::size_t k = 0; k < n; ++k) mu[k] += row[k];
      }
    }
  }
  for (double& m : mu) m /= static_cast<double>(d);
  return mu;
}

}  // namespace kpm::core
