#include "core/moments_gpu_chunked.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "core/device_matrix.hpp"
#include "core/gpu_kernels.hpp"
#include "core/moments_cpu.hpp"
#include "gpusim/view.hpp"
#include "obs/counters.hpp"
#include "obs/gpusim_bridge.hpp"
#include "obs/trace.hpp"

namespace kpm::core {
namespace {

using gpusim::AccessPattern;

/// Adds a chunk's mu~ columns onto the running device-side moment sums
/// (one thread per moment).  Instance order is ascending within the chunk
/// and chunks are processed in order, so the accumulated sum association
/// is identical to the single-pass average kernel — bit-for-bit.
class AccumulateMomentsKernel final : public gpusim::Kernel {
 public:
  AccumulateMomentsKernel(std::size_t n, std::size_t chunk_active, double modeled_instances,
                          const gpusim::DeviceBuffer<double>& mu_tilde,
                          gpusim::DeviceBuffer<double>& mu_sum)
      : n_(n),
        chunk_active_(chunk_active),
        modeled_(modeled_instances),
        mu_tilde_(&mu_tilde),
        mu_sum_(&mu_sum) {}

  [[nodiscard]] const char* name() const override { return "kpm_accumulate_moments"; }

  void thread_phase(int /*phase*/, gpusim::ThreadContext& thread) override {
    const std::size_t n = thread.global_tid();
    if (n >= n_) return;
    const auto src = mu_tilde_->raw();
    double acc = mu_sum_->raw()[n];
    for (std::size_t k = 0; k < chunk_active_; ++k) acc += src[k * n_ + n];
    mu_sum_->raw()[n] = acc;

    auto& c = thread.block().counters();
    c.global_read_bytes[static_cast<std::size_t>(AccessPattern::Strided)] +=
        modeled_ * sizeof(double);
    c.global_read_bytes[static_cast<std::size_t>(AccessPattern::Coalesced)] += sizeof(double);
    c.global_write_bytes[static_cast<std::size_t>(AccessPattern::Coalesced)] += sizeof(double);
    c.flops += modeled_;
  }

 private:
  std::size_t n_;
  std::size_t chunk_active_;
  double modeled_;
  const gpusim::DeviceBuffer<double>* mu_tilde_;
  gpusim::DeviceBuffer<double>* mu_sum_;
};

}  // namespace

ChunkedGpuMomentEngine::ChunkedGpuMomentEngine(ChunkedGpuEngineConfig config)
    : config_(std::move(config)) {
  config_.base.device.validate();
  KPM_REQUIRE(config_.base.block_size > 0 && config_.base.block_size % 32 == 0,
              "ChunkedGpuEngineConfig: block_size must be a positive multiple of the warp size");
}

std::string ChunkedGpuMomentEngine::name() const {
  return std::string("gpu-chunked-") + to_string(config_.base.mapping) +
         (config_.overlap_fill ? "-overlap" : "-serial");
}

MomentResult ChunkedGpuMomentEngine::compute(const linalg::MatrixOperator& h_tilde,
                                             const MomentParams& params,
                                             std::size_t sample_instances) {
  params.validate();
  const std::size_t d = h_tilde.dim();
  const std::size_t n = params.num_moments;
  const std::size_t total = params.instances();
  const std::size_t executed = resolve_sample_count(sample_instances, total);
  const double cost_scale = static_cast<double>(total) / static_cast<double>(executed);

  obs::ScopedSpan span("moments." + name());
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(n));
  Stopwatch wall;
  gpusim::Device device(config_.base.device);

  // Chunk sizing: two r0 buffers (double buffering) + two work vectors +
  // the chunk's mu~ block must fit the workspace budget.
  const std::size_t budget = config_.workspace_bytes != 0
                                 ? config_.workspace_bytes
                                 : config_.base.device.global_mem_bytes / 2;
  const std::size_t per_instance = 4 * d * sizeof(double) + n * sizeof(double);
  std::size_t chunk = std::max<std::size_t>(1, budget / per_instance);
  chunk = std::min(chunk, executed);
  const std::size_t chunks = (executed + chunk - 1) / chunk;
  last_chunk_ = chunk;
  last_chunks_ = chunks;

  DeviceMatrix h_dev(device, h_tilde);
  gpusim::DeviceBuffer<double> r0[2] = {device.alloc<double>(chunk * d, "r0 buffer A"),
                                        device.alloc<double>(chunk * d, "r0 buffer B")};
  auto work_a = device.alloc<double>(chunk * d, "work vectors a");
  auto work_b = device.alloc<double>(chunk * d, "work vectors b");
  auto mu_tilde = device.alloc<double>(chunk * n, "mu~ per chunk");
  auto mu_sum = device.alloc<double>(n, "mu sums");
  // The accumulate kernel reads-modifies-writes mu_sum from the first chunk
  // on; cudaMalloc does not zero memory, so the zero seed must be explicit
  // (found by the kpmcheck audit — the simulator's buffers happen to
  // zero-initialize, which hid the missing memset).
  device.memset(mu_sum, 0, "mu sums memset");

  const gpusim::StreamId s_rec = 0;
  const gpusim::StreamId s_fill = config_.overlap_fill ? device.create_stream() : 0;

  auto chunk_range = [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    return std::pair{begin, std::min(chunk, executed - begin)};
  };

  gpusim::ExecConfig chunk_cfg;
  chunk_cfg.block = gpusim::Dim3{config_.base.block_size};

  auto launch_fill = [&](std::size_t c, gpusim::StreamId stream) {
    const auto [begin, count] = chunk_range(c);
    chunk_cfg.grid = gpusim::Dim3{static_cast<std::uint32_t>(count)};
    FillRandomKernel fill(params, d, count, r0[c % 2], begin);
    device.launch(chunk_cfg, fill, cost_scale, stream);
  };

  // Prime the pipeline: fill chunk 0.
  double fill_done[2] = {0.0, 0.0};
  double rec_done[2] = {0.0, 0.0};
  launch_fill(0, s_fill);
  fill_done[0] = device.record_event(s_fill);

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t cur = c % 2;
    const auto [begin, count] = chunk_range(c);
    (void)begin;

    device.wait_event(s_rec, fill_done[cur]);
    chunk_cfg.grid = gpusim::Dim3{static_cast<std::uint32_t>(count)};
    if (config_.base.mapping == GpuMapping::InstancePerBlock) {
      chunk_cfg.shared_bytes = std::min<std::size_t>(
          config_.base.device.shared_mem_per_sm / 2,
          2 * config_.base.block_size * sizeof(double) * 4);
      RecursionBlockKernel rec(params, h_dev.ref(), count, config_.base.device.l2_cache_bytes,
                               r0[cur], work_a, work_b, mu_tilde);
      device.launch(chunk_cfg, rec, cost_scale, s_rec);
      chunk_cfg.shared_bytes = 0;
    } else {
      gpusim::ExecConfig thread_cfg = gpusim::ExecConfig::linear(count, config_.base.block_size);
      RecursionThreadKernel rec(params, h_dev.ref(), count, config_.base.device.l2_cache_bytes,
                                r0[cur], work_a, work_b, mu_tilde);
      device.launch(thread_cfg, rec, cost_scale, s_rec);
    }
    {
      AccumulateMomentsKernel acc(n, count, static_cast<double>(count) * cost_scale, mu_tilde,
                                  mu_sum);
      device.launch(gpusim::ExecConfig::linear(n, 128), acc, 1.0, s_rec);
    }
    rec_done[cur] = device.record_event(s_rec);

    if (c + 1 < chunks) {
      const std::size_t next = (c + 1) % 2;
      // The next fill reuses the buffer the recursion of chunk c-1 read.
      device.wait_event(s_fill, rec_done[next]);
      launch_fill(c + 1, s_fill);
      fill_done[next] = device.record_event(s_fill);
    }
  }
  device.synchronize();

  MomentResult result;
  result.engine = name();
  result.mu.resize(n);
  device.copy_to_host<double>(mu_sum, result.mu, "mu sums download");
  const double denom = static_cast<double>(d) * static_cast<double>(executed);
  for (double& m : result.mu) m /= denom;

  result.instances_executed = executed;
  result.instances_total = total;
  result.wall_seconds = wall.seconds();
  obs::record_device(device, name());
  const auto summary = device.summarize_timeline();
  result.model_seconds = config_.base.context_setup_seconds + summary.critical_path_seconds;
  result.compute_seconds = summary.kernel_seconds;
  result.transfer_seconds = summary.transfer_seconds;
  result.allocation_seconds = config_.base.context_setup_seconds + summary.allocation_seconds;
  return result;
}

}  // namespace kpm::core
