// Lattice-aware domain decompositions for the cluster engine.
//
// The hypercubic site indexing is row-major — index = (z*Ly + y)*Lx + x —
// so slicing the outermost used axis into slabs yields CONTIGUOUS row
// ranges: exactly what linalg::Decomposition partitions.  Each slab
// touches only the neighbouring planes (plus the periodic wrap), so the
// halo is two planes per node regardless of P — the surface-to-volume
// property that makes weak scaling work (Kreutzer et al. arXiv:1410.5242).
// The honeycomb indexing is c2-major with 2*l1 sites per cell row, giving
// the same contiguity along c2.
#pragma once

#include <cstddef>

#include "lattice/honeycomb.hpp"
#include "lattice/lattice.hpp"
#include "linalg/decomposition.hpp"

namespace kpm::lattice {

/// Slab decomposition of a hypercubic lattice along its outermost used
/// axis (z for 3D, y for 2D, x for a chain): `nodes` slabs of whole
/// planes, the first planes%nodes slabs one plane thicker.  Requires
/// nodes <= planes along that axis and a halo no deeper than the thinnest
/// slab (`halo_width` counts ghost layers = lattice planes here).
[[nodiscard]] linalg::Decomposition slab_decomposition(const HypercubicLattice& lat,
                                                       std::size_t nodes,
                                                       std::size_t halo_width = 1);

/// Cell-row decomposition of a honeycomb lattice along c2: `nodes` bands
/// of whole cell rows (2*l1 sites each).  Requires nodes <= l2.
[[nodiscard]] linalg::Decomposition honeycomb_decomposition(const HoneycombLattice& lat,
                                                            std::size_t nodes,
                                                            std::size_t halo_width = 1);

}  // namespace kpm::lattice
