// Tests for the one-call DoS study facade.
#include <gtest/gtest.h>

#include <cmath>

#include "core/highlevel.hpp"
#include "core/moments_cpu.hpp"
#include "core/reconstruct.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

DosStudyOptions small_options(EngineKind engine) {
  DosStudyOptions o;
  o.engine = engine;
  o.params.num_moments = 32;
  o.params.random_vectors = 4;
  o.params.realizations = 2;
  o.reconstruct.points = 128;
  return o;
}

class EngineSweep : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineSweep, FacadeMatchesManualPipeline) {
  const auto lat = lattice::HypercubicLattice::cubic(3, 3, 3);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);

  const auto study = compute_dos_study(op, small_options(GetParam()));

  // Manual pipeline with the CPU reference: the facade must agree to
  // reduction-reassociation tolerance (bitwise except for the cluster).
  const auto t = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, t);
  linalg::MatrixOperator op_t(ht);
  CpuMomentEngine manual;
  const auto manual_moments = manual.compute(op_t, small_options(GetParam()).params);
  ASSERT_EQ(study.moments.mu.size(), manual_moments.mu.size());
  for (std::size_t n = 0; n < manual_moments.mu.size(); ++n)
    EXPECT_NEAR(study.moments.mu[n], manual_moments.mu[n], 1e-13) << "moment " << n;

  EXPECT_DOUBLE_EQ(study.transform.center(), t.center());
  EXPECT_DOUBLE_EQ(study.transform.half_width(), t.half_width());
  EXPECT_NEAR(dos_integral(study.curve), 1.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineSweep,
                         ::testing::Values(EngineKind::CpuReference, EngineKind::CpuPaired,
                                           EngineKind::CpuParallel, EngineKind::Gpu,
                                           EngineKind::GpuCluster),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (auto& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(Highlevel, CpuParallelEngineMatchesReferenceBitwise) {
  const auto lat = lattice::HypercubicLattice::cubic(3, 3, 3);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  auto o = small_options(EngineKind::CpuReference);
  const auto ref = compute_dos_study(op, o);
  o.engine = EngineKind::CpuParallel;
  o.cpu_threads = 3;
  const auto par = compute_dos_study(op, o);
  ASSERT_EQ(ref.moments.mu.size(), par.moments.mu.size());
  for (std::size_t n = 0; n < ref.moments.mu.size(); ++n)
    EXPECT_EQ(ref.moments.mu[n], par.moments.mu[n]);
  EXPECT_EQ(par.moments.threads_used, 3);
}

TEST(Highlevel, DenseStorageWorks) {
  const auto h = lattice::random_symmetric_dense(24, 5);
  linalg::MatrixOperator op(h);
  const auto study = compute_dos_study(op, small_options(EngineKind::Gpu));
  EXPECT_EQ(study.moments.mu.size(), 32u);
  EXPECT_NEAR(dos_integral(study.curve), 1.0, 0.02);
}

TEST(Highlevel, LanczosBoundsGiveTighterWindow) {
  const auto h = lattice::random_symmetric_dense(32, 9);
  linalg::MatrixOperator op(h);
  auto o = small_options(EngineKind::CpuReference);
  const auto gersh = compute_dos_study(op, o);
  o.use_lanczos_bounds = true;
  const auto lancz = compute_dos_study(op, o);
  EXPECT_LT(lancz.transform.half_width(), gersh.transform.half_width());
  EXPECT_NEAR(dos_integral(lancz.curve), 1.0, 0.02);
}

TEST(Highlevel, SamplingPropagates) {
  const auto lat = lattice::HypercubicLattice::square(4, 4);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  auto o = small_options(EngineKind::Gpu);
  o.sample_instances = 2;
  const auto study = compute_dos_study(op, o);
  EXPECT_EQ(study.moments.instances_executed, 2u);
  EXPECT_EQ(study.moments.instances_total, 8u);
}

TEST(Highlevel, ModelSecondsOrdering) {
  // For the same physics at PAPER scale: gpu < cpu-reference; paired <
  // reference.  (At toy scale the GPU's fixed context cost dominates and
  // the ordering legitimately flips — that regime is covered by Fig. 7.)
  const auto lat = lattice::HypercubicLattice::cubic(10, 10, 10);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  auto o = small_options(EngineKind::CpuReference);
  o.params.num_moments = 512;
  o.params.random_vectors = 14;
  o.params.realizations = 128;
  o.sample_instances = 2;
  const double t_ref = compute_dos_study(op, o).moments.model_seconds;
  o.engine = EngineKind::CpuPaired;
  const double t_paired = compute_dos_study(op, o).moments.model_seconds;
  o.engine = EngineKind::Gpu;
  const double t_gpu = compute_dos_study(op, o).moments.model_seconds;
  EXPECT_LT(t_paired, t_ref);
  EXPECT_LT(t_gpu, t_ref);
}

}  // namespace
