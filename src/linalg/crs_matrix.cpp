#include "linalg/crs_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace kpm::linalg {

CrsMatrix::CrsMatrix(std::size_t rows, std::size_t cols, std::vector<Index> row_ptr,
                     std::vector<Index> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  KPM_REQUIRE(row_ptr_.size() == rows_ + 1, "CrsMatrix: row_ptr must have rows+1 entries");
  KPM_REQUIRE(row_ptr_.front() == 0, "CrsMatrix: row_ptr[0] must be 0");
  KPM_REQUIRE(static_cast<std::size_t>(row_ptr_.back()) == values_.size(),
              "CrsMatrix: row_ptr[rows] must equal nnz");
  KPM_REQUIRE(col_idx_.size() == values_.size(), "CrsMatrix: col_idx/values size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    KPM_REQUIRE(row_ptr_[r] <= row_ptr_[r + 1], "CrsMatrix: row_ptr must be non-decreasing");
    for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      KPM_REQUIRE(col_idx_[static_cast<std::size_t>(k)] >= 0 &&
                      static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)]) < cols_,
                  "CrsMatrix: column index out of range");
      if (k > row_ptr_[r])
        KPM_REQUIRE(col_idx_[static_cast<std::size_t>(k - 1)] < col_idx_[static_cast<std::size_t>(k)],
                    "CrsMatrix: columns must be sorted and unique within a row");
    }
  }
}

double CrsMatrix::at(std::size_t r, std::size_t c) const {
  KPM_REQUIRE(r < rows_ && c < cols_, "CrsMatrix::at: index out of range");
  const auto* begin = col_idx_.data() + row_ptr_[r];
  const auto* end = col_idx_.data() + row_ptr_[r + 1];
  const auto* it = std::lower_bound(begin, end, static_cast<Index>(c));
  if (it == end || *it != static_cast<Index>(c)) return 0.0;
  return values_[static_cast<std::size_t>(row_ptr_[r] + (it - begin))];
}

std::size_t CrsMatrix::max_row_nnz() const {
  std::size_t m = 0;
  for (std::size_t r = 0; r < rows_; ++r)
    m = std::max(m, static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r]));
  return m;
}

void CrsMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  KPM_REQUIRE(x.size() == cols_ && y.size() == rows_, "CrsMatrix::multiply: dimension mismatch");
  KPM_REQUIRE(x.data() != y.data(), "CrsMatrix::multiply: x and y must not alias");
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      acc += values_[kk] * x[static_cast<std::size_t>(col_idx_[kk])];
    }
    y[r] = acc;
  }
}

bool CrsMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      const auto c = static_cast<std::size_t>(col_idx_[kk]);
      if (std::abs(values_[kk] - at(c, r)) > tol) return false;
    }
  return true;
}

DenseMatrix CrsMatrix::to_dense() const {
  DenseMatrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      m(r, static_cast<std::size_t>(col_idx_[kk])) = values_[kk];
    }
  return m;
}

TripletBuilder::TripletBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
  KPM_REQUIRE(rows > 0 && cols > 0, "TripletBuilder dimensions must be positive");
}

void TripletBuilder::add(std::size_t r, std::size_t c, double value) {
  KPM_REQUIRE(r < rows_ && c < cols_, "TripletBuilder::add: index out of range");
  entries_.push_back({r, c, value});
}

void TripletBuilder::add_symmetric(std::size_t r, std::size_t c, double value) {
  add(r, c, value);
  if (r != c) add(c, r, value);
}

CrsMatrix TripletBuilder::build() {
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return a.r != b.r ? a.r < b.r : a.c < b.c;
  });

  std::vector<CrsMatrix::Index> row_ptr(rows_ + 1, 0);
  std::vector<CrsMatrix::Index> col_idx;
  std::vector<double> values;
  col_idx.reserve(entries_.size());
  values.reserve(entries_.size());

  for (std::size_t i = 0; i < entries_.size();) {
    const std::size_t r = entries_[i].r;
    const std::size_t c = entries_[i].c;
    double v = 0.0;
    while (i < entries_.size() && entries_[i].r == r && entries_[i].c == c) v += entries_[i++].v;
    if (v != 0.0) {
      col_idx.push_back(static_cast<CrsMatrix::Index>(c));
      values.push_back(v);
      ++row_ptr[r + 1];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr[r + 1] += row_ptr[r];

  entries_.clear();
  return CrsMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx), std::move(values));
}

CrsMatrix with_structural_diagonal(const CrsMatrix& m) {
  KPM_REQUIRE(m.rows() == m.cols(), "with_structural_diagonal requires a square matrix");
  const std::size_t n = m.rows();
  const auto row_ptr = m.row_ptr();
  const auto col_idx = m.col_idx();
  const auto values = m.values();
  std::vector<CrsMatrix::Index> new_row_ptr(n + 1, 0);
  std::vector<CrsMatrix::Index> new_col;
  std::vector<double> new_val;
  new_col.reserve(m.nnz() + n);
  new_val.reserve(m.nnz() + n);
  for (std::size_t r = 0; r < n; ++r) {
    bool diag_seen = false;
    for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      const auto c = static_cast<std::size_t>(col_idx[kk]);
      if (!diag_seen && c > r) {
        new_col.push_back(static_cast<CrsMatrix::Index>(r));
        new_val.push_back(0.0);
        diag_seen = true;
      }
      if (c == r) diag_seen = true;
      new_col.push_back(col_idx[kk]);
      new_val.push_back(values[kk]);
    }
    if (!diag_seen) {
      new_col.push_back(static_cast<CrsMatrix::Index>(r));
      new_val.push_back(0.0);
    }
    new_row_ptr[r + 1] = static_cast<CrsMatrix::Index>(new_val.size());
  }
  return CrsMatrix(n, n, std::move(new_row_ptr), std::move(new_col), std::move(new_val));
}

CrsMatrix dense_to_crs(const DenseMatrix& m, double drop_tol) {
  TripletBuilder b(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (std::abs(m(r, c)) > drop_tol) b.add(r, c, m(r, c));
  return b.build();
}

}  // namespace kpm::linalg
