#include "core/estimator_stats.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/moments_cpu.hpp"
#include "linalg/fused_kernels.hpp"
#include "linalg/vector_ops.hpp"

namespace kpm::core {

MomentStatistics estimate_moment_statistics(const linalg::MatrixOperator& h_tilde,
                                            const MomentParams& params, std::size_t instances) {
  params.validate();
  KPM_REQUIRE(instances >= 2, "estimate_moment_statistics: need at least two instances");
  const std::size_t d = h_tilde.dim();
  const std::size_t n = params.num_moments;

  // Per-instance normalized moments: mu_n^(k) = <r0|r_n> / D.
  std::vector<double> sum(n, 0.0), sum_sq(n, 0.0);
  const std::size_t block = params.block_r;

  if (block <= 1) {
    std::vector<double> r0(d), r_prev2(d), r_prev(d), r_next(d), mu_inst(n);
    for (std::size_t inst = 0; inst < instances; ++inst) {
      fill_random_vector(params, inst, r0);
      mu_inst[0] = linalg::dot(r0, r0);
      h_tilde.multiply(r0, r_prev);
      if (n > 1) mu_inst[1] = linalg::dot(r0, r_prev);
      linalg::copy(r0, r_prev2);
      for (std::size_t k = 2; k < n; ++k) {
        mu_inst[k] = linalg::spmv_combine_dot(h_tilde, r_prev, r_prev2, r0, r_next);
        std::swap(r_prev2, r_prev);
        std::swap(r_prev, r_next);
      }
      for (std::size_t k = 0; k < n; ++k) {
        const double v = mu_inst[k] / static_cast<double>(d);
        sum[k] += v;
        sum_sq[k] += v * v;
      }
    }
  } else {
    // Blocked recursion: each member's mu_inst row is bit-identical to the
    // per-vector loop above, and the normalization/accumulation below runs
    // in instance order, so the statistics are unchanged by blocking.
    std::vector<double> r0(d * block), r_prev2(d * block), r_prev(d * block),
        r_next(d * block), dots(block), mu_rows(block * n);
    for (std::size_t first = 0; first < instances; first += block) {
      const std::size_t b = std::min(block, instances - first);
      const std::size_t len = d * b;
      const auto sub = [len](std::vector<double>& v) {
        return std::span<double>(v.data(), len);
      };
      const std::span<double> dv(dots.data(), b);
      fill_random_vector_block(params, first, b, sub(r0));
      linalg::block_dot(sub(r0), sub(r0), b, dv);
      for (std::size_t j = 0; j < b; ++j) mu_rows[j * n] = dv[j];
      linalg::spmmv_multiply(h_tilde, b, sub(r0), sub(r_prev));
      if (n > 1) {
        linalg::block_dot(sub(r0), sub(r_prev), b, dv);
        for (std::size_t j = 0; j < b; ++j) mu_rows[j * n + 1] = dv[j];
      }
      std::copy(r0.begin(), r0.begin() + static_cast<std::ptrdiff_t>(len), r_prev2.begin());
      for (std::size_t k = 2; k < n; ++k) {
        linalg::spmmv_combine_dot(h_tilde, b, sub(r_prev), sub(r_prev2), sub(r0),
                                  sub(r_next), dv);
        for (std::size_t j = 0; j < b; ++j) mu_rows[j * n + k] = dv[j];
        std::swap(r_prev2, r_prev);
        std::swap(r_prev, r_next);
      }
      for (std::size_t j = 0; j < b; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          const double v = mu_rows[j * n + k] / static_cast<double>(d);
          sum[k] += v;
          sum_sq[k] += v * v;
        }
      }
    }
  }

  MomentStatistics stats;
  stats.instances = instances;
  stats.mean.resize(n);
  stats.standard_error.resize(n);
  const auto m = static_cast<double>(instances);
  for (std::size_t k = 0; k < n; ++k) {
    stats.mean[k] = sum[k] / m;
    const double var = std::max(0.0, sum_sq[k] / m - stats.mean[k] * stats.mean[k]);
    // Unbiased sample variance, then standard error of the mean.
    stats.standard_error[k] = std::sqrt(var * m / (m - 1.0)) / std::sqrt(m);
  }
  return stats;
}

}  // namespace kpm::core
