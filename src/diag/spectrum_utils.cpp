#include "diag/spectrum_utils.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace kpm::diag {

DosHistogram dos_histogram(std::span<const double> eigenvalues, double lo, double hi,
                           std::size_t bins) {
  KPM_REQUIRE(bins > 0, "dos_histogram: need at least one bin");
  KPM_REQUIRE(hi > lo, "dos_histogram: hi must exceed lo");
  KPM_REQUIRE(!eigenvalues.empty(), "dos_histogram: empty spectrum");

  DosHistogram h;
  h.bin_width = (hi - lo) / static_cast<double>(bins);
  h.energy.resize(bins);
  h.density.assign(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b)
    h.energy[b] = lo + (static_cast<double>(b) + 0.5) * h.bin_width;

  for (double e : eigenvalues) {
    auto b = static_cast<std::ptrdiff_t>(std::floor((e - lo) / h.bin_width));
    b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    h.density[static_cast<std::size_t>(b)] += 1.0;
  }
  const double norm = 1.0 / (static_cast<double>(eigenvalues.size()) * h.bin_width);
  for (double& d : h.density) d *= norm;
  return h;
}

std::vector<double> exact_chebyshev_moments(std::span<const double> eigenvalues,
                                            const linalg::SpectralTransform& transform,
                                            std::size_t count) {
  KPM_REQUIRE(!eigenvalues.empty(), "exact_chebyshev_moments: empty spectrum");
  std::vector<double> mu(count, 0.0);
  for (double e : eigenvalues) {
    const double x = transform.to_unit(e);
    KPM_REQUIRE(x >= -1.0 && x <= 1.0,
                "exact_chebyshev_moments: eigenvalue outside the transform interval");
    // T_n(x) = cos(n arccos x): numerically exact for |x| <= 1.
    const double theta = std::acos(std::clamp(x, -1.0, 1.0));
    for (std::size_t n = 0; n < count; ++n) mu[n] += std::cos(static_cast<double>(n) * theta);
  }
  const double inv_d = 1.0 / static_cast<double>(eigenvalues.size());
  for (double& m : mu) m *= inv_d;
  return mu;
}

}  // namespace kpm::diag
