#include "core/moments_hermitian.hpp"

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "core/moments_cpu.hpp"
#include "linalg/fused_kernels.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "rng/distributions.hpp"

namespace kpm::core {
namespace {

using Complex = std::complex<double>;

/// Runs one instance's complex Chebyshev recursion, adding Re<r0|r_n> to
/// mu_sum[n].
void hermitian_instance(const linalg::CrsMatrixZ& h, std::span<const Complex> r0,
                        std::vector<Complex>& prev2, std::vector<Complex>& prev,
                        std::vector<Complex>& next, std::span<double> mu_sum) {
  const std::size_t d = r0.size();
  const std::size_t n = mu_sum.size();
  auto dot_re = [&](std::span<const Complex> v) {
    double acc = 0.0;
    for (std::size_t i = 0; i < d; ++i) acc += (std::conj(r0[i]) * v[i]).real();
    return acc;
  };

  // Instance + non-fused-call meters (the fused complex kernel below meters
  // itself); complex elements are 16 bytes, complex SpMV is 8 flops/entry.
  obs::add(obs::Counter::InstancesExecuted, 1.0);
  const double dd = static_cast<double>(d);
  const auto meter_dot_re = [&] {
    obs::add(obs::Counter::DotCalls, 1.0);
    obs::add(obs::Counter::Flops, 4.0 * dd);
    obs::add(obs::Counter::BytesStreamed, 2.0 * dd * sizeof(Complex));
  };

  mu_sum[0] += dot_re(r0);
  meter_dot_re();
  if (n == 1) return;
  h.multiply(r0, prev);
  obs::add(obs::Counter::SpmvCalls, 1.0);
  obs::add(obs::Counter::Flops, 8.0 * static_cast<double>(h.nnz()));
  obs::add(obs::Counter::BytesStreamed,
           static_cast<double>(h.nnz() * (sizeof(Complex) + sizeof(linalg::CrsMatrixZ::Index)) +
                               (h.rows() + 1) * sizeof(linalg::CrsMatrixZ::Index)) +
               2.0 * dd * sizeof(Complex));
  mu_sum[1] += dot_re(prev);
  meter_dot_re();
  prev2.assign(r0.begin(), r0.end());
  obs::meter_stream_bytes(2.0 * dd * sizeof(Complex));
  for (std::size_t k = 2; k < n; ++k) {
    // Fused SpMV + combine + Re-dot (one pass; same accumulation order as
    // the unfused sequence, so results are unchanged bit-for-bit).
    mu_sum[k] += linalg::spmv_combine_dot_re(h, prev, prev2, r0, next);
    std::swap(prev2, prev);
    std::swap(prev, next);
  }
}

}  // namespace

MomentResult HermitianMomentEngine::compute(const linalg::CrsMatrixZ& h_tilde,
                                            const MomentParams& params,
                                            std::size_t sample_instances) const {
  params.validate();
  KPM_REQUIRE(h_tilde.rows() == h_tilde.cols(), "HermitianMomentEngine: matrix must be square");
  const std::size_t d = h_tilde.rows();
  const std::size_t n = params.num_moments;
  const std::size_t total = params.instances();
  const std::size_t executed = resolve_sample_count(sample_instances, total);

  obs::ScopedSpan span("moments." + name());
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(n));
  Stopwatch wall;
  std::vector<double> mu_sum(n, 0.0);
  std::vector<Complex> r0(d), prev2(d), prev(d), next(d);

  for (std::size_t inst = 0; inst < executed; ++inst) {
    obs::add(obs::Counter::RngElements, static_cast<double>(d));
    for (std::size_t i = 0; i < d; ++i)
      r0[i] = Complex{
          rng::draw_random_element(params.vector_kind, params.seed, inst, i), 0.0};
    hermitian_instance(h_tilde, r0, prev2, prev, next, mu_sum);
  }

  MomentResult result;
  result.engine = name();
  result.instances_executed = executed;
  result.instances_total = total;
  result.wall_seconds = wall.seconds();
  result.mu.resize(n);
  const double denom = static_cast<double>(d) * static_cast<double>(executed);
  for (std::size_t k = 0; k < n; ++k) result.mu[k] = mu_sum[k] / denom;
  // No platform model for the complex path (extension feature): report the
  // host wall-clock as the model time.
  result.model_seconds = result.wall_seconds;
  result.compute_seconds = result.wall_seconds;
  return result;
}

std::vector<double> ldos_moments_hermitian(const linalg::CrsMatrixZ& h_tilde, std::size_t site,
                                           std::size_t num_moments) {
  KPM_REQUIRE(h_tilde.rows() == h_tilde.cols(), "ldos_moments_hermitian: matrix must be square");
  KPM_REQUIRE(site < h_tilde.rows(), "ldos_moments_hermitian: site out of range");
  KPM_REQUIRE(num_moments >= 1, "ldos_moments_hermitian: need at least one moment");
  const std::size_t d = h_tilde.rows();
  std::vector<double> mu(num_moments, 0.0);
  std::vector<Complex> e(d, Complex{0.0, 0.0}), prev2(d), prev(d), next(d);
  e[site] = Complex{1.0, 0.0};
  hermitian_instance(h_tilde, e, prev2, prev, next, mu);
  return mu;
}

std::vector<double> deterministic_trace_moments_hermitian(const linalg::CrsMatrixZ& h_tilde,
                                                          std::size_t num_moments) {
  KPM_REQUIRE(num_moments >= 1, "deterministic_trace_moments_hermitian: need >= 1 moment");
  KPM_REQUIRE(h_tilde.rows() == h_tilde.cols(), "matrix must be square");
  const std::size_t d = h_tilde.rows();
  std::vector<double> mu(num_moments, 0.0);
  std::vector<Complex> e(d), prev2(d), prev(d), next(d);
  for (std::size_t site = 0; site < d; ++site) {
    std::fill(e.begin(), e.end(), Complex{0.0, 0.0});
    e[site] = Complex{1.0, 0.0};
    hermitian_instance(h_tilde, e, prev2, prev, next, mu);
  }
  for (double& m : mu) m /= static_cast<double>(d);
  return mu;
}

}  // namespace kpm::core
