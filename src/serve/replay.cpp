#include "serve/replay.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/damping.hpp"
#include "lattice/current.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "obs/json.hpp"

namespace kpm::serve {

namespace {

using obs::JsonValue;

double number_or(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  KPM_REQUIRE(v->kind == JsonValue::Kind::Number,
              "workload: field '" + std::string(key) + "' must be a number");
  return v->number;
}

std::size_t size_or(const JsonValue& obj, std::string_view key, std::size_t fallback) {
  const double v = number_or(obj, key, static_cast<double>(fallback));
  KPM_REQUIRE(v >= 0.0, "workload: field '" + std::string(key) + "' must be >= 0");
  return static_cast<std::size_t>(v);
}

std::string string_or(const JsonValue& obj, std::string_view key,
                      const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  KPM_REQUIRE(v->kind == JsonValue::Kind::String,
              "workload: field '" + std::string(key) + "' must be a string");
  return v->string;
}

RequestBase parse_base(const JsonValue& r) {
  RequestBase b;
  b.id = static_cast<std::uint64_t>(size_or(r, "id", 0));
  b.model = string_or(r, "model", "");
  KPM_REQUIRE(!b.model.empty(), "workload: request is missing 'model'");
  b.arrival_seconds = number_or(r, "arrival", 0.0);
  KPM_REQUIRE(b.arrival_seconds >= 0.0,
              "workload: request 'arrival' must be >= 0 (the simulated clock starts at 0)");
  b.priority = static_cast<int>(number_or(r, "priority", 0.0));
  b.deadline_seconds = number_or(r, "deadline", 0.0);
  b.engine = engine_kind_from_string(string_or(r, "engine", "cpu-parallel"));
  b.moments.num_moments = size_or(r, "moments", b.moments.num_moments);
  b.moments.random_vectors = size_or(r, "R", b.moments.random_vectors);
  b.moments.realizations = size_or(r, "S", b.moments.realizations);
  b.moments.seed = static_cast<std::uint64_t>(
      size_or(r, "seed", static_cast<std::size_t>(b.moments.seed)));
  const std::string kernel = string_or(r, "kernel", "");
  if (!kernel.empty()) b.reconstruct.kernel = core::damping_kernel_from_string(kernel);
  b.reconstruct.points = size_or(r, "points", b.reconstruct.points);
  return b;
}

Request parse_request(const JsonValue& r) {
  const std::string kind = string_or(r, "kind", "dos");
  if (kind == "dos") {
    DosRequest req;
    static_cast<RequestBase&>(req) = parse_base(r);
    return req;
  }
  if (kind == "ldos") {
    LdosRequest req;
    static_cast<RequestBase&>(req) = parse_base(r);
    req.site = size_or(r, "site", 0);
    return req;
  }
  if (kind == "sigma") {
    SigmaRequest req;
    static_cast<RequestBase&>(req) = parse_base(r);
    req.axis = size_or(r, "axis", 0);
    req.sigma.kernel = req.reconstruct.kernel;
    req.sigma.lorentz_lambda = req.reconstruct.lorentz_lambda;
    req.sigma.points = size_or(r, "points", req.sigma.points);
    return req;
  }
  KPM_FAIL("workload: unknown request kind '" + kind + "' (dos|ldos|sigma)");
}

}  // namespace

core::EngineKind engine_kind_from_string(const std::string& name) {
  if (name == "cpu" || name == "cpu-reference") return core::EngineKind::CpuReference;
  if (name == "cpu-paired") return core::EngineKind::CpuPaired;
  if (name == "cpu-parallel") return core::EngineKind::CpuParallel;
  if (name == "gpu") return core::EngineKind::Gpu;
  if (name == "gpu-cluster") return core::EngineKind::GpuCluster;
  KPM_FAIL("unknown engine '" + name +
           "' (cpu|cpu-reference|cpu-paired|cpu-parallel|gpu|gpu-cluster)");
}

ReplayWorkload parse_workload(const std::string& json_text) {
  const JsonValue doc = obs::parse_json(json_text);
  KPM_REQUIRE(doc.kind == JsonValue::Kind::Object, "workload: document must be an object");
  const std::string schema = string_or(doc, "schema", "");
  KPM_REQUIRE(schema == "kpm.serve.workload/1",
              "workload: expected schema kpm.serve.workload/1, got '" + schema + "'");

  ReplayWorkload w;
  w.label = string_or(doc, "label", "serve-replay");

  if (const JsonValue* config = doc.find("config")) {
    KPM_REQUIRE(config->kind == JsonValue::Kind::Object,
                "workload: 'config' must be an object");
    w.config_sets_workers = config->find("workers") != nullptr;
    w.config.workers = size_or(*config, "workers", w.config.workers);
    w.config.max_queue = size_or(*config, "max_queue", w.config.max_queue);
    w.config.max_batch = size_or(*config, "max_batch", w.config.max_batch);
    w.config.policy =
        shed_policy_from_string(string_or(*config, "policy", to_string(w.config.policy)));
    w.config.degrade_floor = size_or(*config, "degrade_floor", w.config.degrade_floor);
    w.config.cache_bytes = size_or(*config, "cache_bytes", w.config.cache_bytes);
    w.config.cache_policy = cache_policy_from_string(
        string_or(*config, "cache_policy", to_string(w.config.cache_policy)));
    w.config.pricing = batch_pricing_from_string(
        string_or(*config, "pricing", to_string(w.config.pricing)));
    w.config.validate();
  }

  const JsonValue& models = doc.at("models");
  KPM_REQUIRE(models.kind == JsonValue::Kind::Array, "workload: 'models' must be an array");
  for (const JsonValue& m : models.array) {
    KPM_REQUIRE(m.kind == JsonValue::Kind::Object, "workload: model must be an object");
    ModelSpec spec;
    spec.name = string_or(m, "name", "");
    KPM_REQUIRE(!spec.name.empty(), "workload: model is missing 'name'");
    spec.lattice = string_or(m, "lattice", spec.lattice);
    spec.edge = size_or(m, "edge", spec.edge);
    spec.disorder = number_or(m, "disorder", spec.disorder);
    spec.seed = static_cast<std::uint64_t>(
        size_or(m, "seed", static_cast<std::size_t>(spec.seed)));
    if (const JsonValue* currents = m.find("currents")) {
      KPM_REQUIRE(currents->kind == JsonValue::Kind::Array,
                  "workload: 'currents' must be an array of axes");
      for (const JsonValue& axis : currents->array)
        spec.currents.push_back(static_cast<std::size_t>(axis.number));
    }
    w.models.push_back(std::move(spec));
  }

  const JsonValue& requests = doc.at("requests");
  KPM_REQUIRE(requests.kind == JsonValue::Kind::Array,
              "workload: 'requests' must be an array");
  for (const JsonValue& r : requests.array) {
    KPM_REQUIRE(r.kind == JsonValue::Kind::Object, "workload: request must be an object");
    w.requests.push_back(parse_request(r));
  }
  return w;
}

ReplayWorkload load_workload(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  KPM_REQUIRE(in.good(), "cannot open workload file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_workload(text.str());
}

namespace {

lattice::HypercubicLattice lattice_of(const ModelSpec& spec) {
  if (spec.lattice == "chain") return lattice::HypercubicLattice::chain(spec.edge);
  if (spec.lattice == "square")
    return lattice::HypercubicLattice::square(spec.edge, spec.edge);
  if (spec.lattice == "cubic")
    return lattice::HypercubicLattice::cubic(spec.edge, spec.edge, spec.edge);
  KPM_FAIL("workload: unknown lattice '" + spec.lattice + "' (chain|square|cubic)");
}

}  // namespace

linalg::CrsMatrix build_model_matrix(const ModelSpec& spec) {
  const auto onsite = spec.disorder > 0.0
                          ? lattice::anderson_disorder(spec.disorder, spec.seed)
                          : lattice::OnsiteFunction{};
  return lattice::build_tight_binding_crs(lattice_of(spec), {}, onsite);
}

linalg::CrsMatrix build_model_current(const ModelSpec& spec, std::size_t axis) {
  return lattice::build_current_operator_crs(lattice_of(spec), axis);
}

void register_models(Server& server, const ReplayWorkload& workload) {
  for (const ModelSpec& spec : workload.models) {
    server.register_model(spec.name, build_model_matrix(spec));
    for (const std::size_t axis : spec.currents)
      server.register_current(spec.name, axis, build_model_current(spec, axis));
  }
}

}  // namespace kpm::serve
