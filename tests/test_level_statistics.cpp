// Tests for the level-spacing statistics (localization diagnostics).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "diag/level_statistics.hpp"
#include "diag/tridiag.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using namespace kpm::diag;

TEST(LevelSpacings, BasicProperties) {
  std::vector<double> spectrum{0.0, 1.0, 3.0, 6.0};
  const auto s = level_spacings(spectrum);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 3.0);
  std::vector<double> unsorted{1.0, 0.0};
  EXPECT_THROW((void)level_spacings(unsorted), kpm::Error);
}

TEST(GapRatio, EquallySpacedSpectrumGivesOne) {
  std::vector<double> picket;
  for (int k = 0; k < 100; ++k) picket.push_back(k);
  const auto stats = gap_ratio_statistics(picket, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_ratio, 1.0);
}

TEST(GapRatio, PoissonSpectrumMatchesReference) {
  // Uncorrelated levels: <r> = 2 ln 2 - 1 ~ 0.3863.
  kpm::rng::Xoshiro256 gen(12345);
  std::vector<double> levels(20000);
  for (auto& e : levels) e = kpm::rng::u64_to_unit_double(gen.next());
  std::sort(levels.begin(), levels.end());
  const auto stats = gap_ratio_statistics(levels, 1.0);
  EXPECT_NEAR(stats.mean_ratio, kPoissonMeanGapRatio, 5.0 * stats.standard_error + 0.005);
}

TEST(GapRatio, GoeMatrixMatchesReference) {
  // A dense random symmetric matrix is a GOE draw: <r> ~ 0.5307.
  const auto h = kpm::lattice::random_symmetric_dense(400, 77);
  const auto spectrum = symmetric_eigenvalues(h);
  const auto stats = gap_ratio_statistics(spectrum, 0.6);
  EXPECT_NEAR(stats.mean_ratio, kGoeMeanGapRatio, 5.0 * stats.standard_error + 0.01);
}

TEST(GapRatio, StrongDisorderDrivesTowardPoisson) {
  // 1D Anderson at strong disorder: localized -> Poisson-like statistics.
  // A clean periodic chain has massive degeneracies -> near-zero ratios
  // after merging; strong disorder must push <r> toward 0.39.
  const auto lat = kpm::lattice::HypercubicLattice::chain(400);
  const auto dirty = kpm::lattice::build_tight_binding_dense(
      lat, {}, kpm::lattice::anderson_disorder(8.0, 3));
  const auto spectrum = symmetric_eigenvalues(dirty);
  const auto stats = gap_ratio_statistics(spectrum, 0.5);
  EXPECT_NEAR(stats.mean_ratio, kPoissonMeanGapRatio, 0.05);
}

TEST(GapRatio, DegeneracyMergingPreventsFakeAttraction) {
  // A spectrum of exact doublets: without merging, half the spacings are
  // zero and <r> would collapse to 0.
  std::vector<double> doublets;
  for (int k = 0; k < 50; ++k) {
    doublets.push_back(k);
    doublets.push_back(k + 1e-14);
  }
  const auto stats = gap_ratio_statistics(doublets, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_ratio, 1.0);  // merged picket fence
}

TEST(GapRatio, RejectsBadInput) {
  std::vector<double> tiny{0.0, 1.0};
  EXPECT_THROW((void)gap_ratio_statistics(tiny), kpm::Error);
  std::vector<double> ok{0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW((void)gap_ratio_statistics(ok, 0.0), kpm::Error);
  EXPECT_THROW((void)gap_ratio_statistics(ok, 1.5), kpm::Error);
}

}  // namespace
