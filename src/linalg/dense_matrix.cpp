#include "linalg/dense_matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace kpm::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {
  KPM_REQUIRE(rows > 0 && cols > 0, "DenseMatrix dimensions must be positive");
}

double DenseMatrix::symmetry_defect() const {
  KPM_REQUIRE(square(), "symmetry_defect requires a square matrix");
  double defect = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      defect = std::max(defect, std::abs((*this)(r, c) - (*this)(c, r)));
  return defect;
}

void DenseMatrix::symmetrize() {
  KPM_REQUIRE(square(), "symmetrize requires a square matrix");
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
}

double DenseMatrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_.span()) acc += v * v;
  return std::sqrt(acc);
}

void DenseMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  KPM_REQUIRE(x.size() == cols_ && y.size() == rows_, "multiply: dimension mismatch");
  KPM_REQUIRE(x.data() != y.data(), "multiply: x and y must not alias");
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
    y[r] = acc;
  }
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

}  // namespace kpm::linalg
