#include "linalg/spectral_transform.hpp"

#include "common/error.hpp"

namespace kpm::linalg {

SpectralTransform::SpectralTransform(SpectralBounds bounds, double epsilon) {
  KPM_REQUIRE(bounds.upper > bounds.lower, "SpectralTransform: upper must exceed lower");
  KPM_REQUIRE(epsilon >= 0.0, "SpectralTransform: epsilon must be non-negative");
  center_ = bounds.center();
  half_width_ = bounds.half_width() * (1.0 + epsilon);
  KPM_REQUIRE(half_width_ > 0.0, "SpectralTransform: degenerate spectrum");
}

SpectralTransform make_spectral_transform(const MatrixOperator& op, double epsilon) {
  return SpectralTransform(gershgorin_bounds(op), epsilon);
}

DenseMatrix rescale(const DenseMatrix& h, const SpectralTransform& t) {
  KPM_REQUIRE(h.square(), "rescale requires a square matrix");
  DenseMatrix out(h.rows(), h.cols());
  const double inv = 1.0 / t.half_width();
  for (std::size_t r = 0; r < h.rows(); ++r)
    for (std::size_t c = 0; c < h.cols(); ++c)
      out(r, c) = (h(r, c) - (r == c ? t.center() : 0.0)) * inv;
  return out;
}

CrsMatrix rescale(const CrsMatrix& h, const SpectralTransform& t) {
  KPM_REQUIRE(h.rows() == h.cols(), "rescale requires a square matrix");
  TripletBuilder b(h.rows(), h.cols());
  const double inv = 1.0 / t.half_width();
  const auto row_ptr = h.row_ptr();
  const auto col_idx = h.col_idx();
  const auto values = h.values();
  for (std::size_t r = 0; r < h.rows(); ++r)
    for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      b.add(r, static_cast<std::size_t>(col_idx[kk]), values[kk] * inv);
    }
  if (t.center() != 0.0)
    for (std::size_t r = 0; r < h.rows(); ++r) b.add(r, r, -t.center() * inv);
  return b.build();
}

}  // namespace kpm::linalg
