// Tests for the chunked double-buffered GPU moment engine.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/moments_cpu.hpp"
#include "core/moments_gpu.hpp"
#include "core/moments_gpu_chunked.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

struct Fixture {
  linalg::CrsMatrix h_tilde;

  explicit Fixture(std::size_t l = 4) {
    const auto lat = lattice::HypercubicLattice::cubic(l, l, l);
    const auto h = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator op(h);
    h_tilde = linalg::rescale(h, linalg::make_spectral_transform(op));
  }
};

MomentParams params_24() {
  MomentParams p;
  p.num_moments = 16;
  p.random_vectors = 6;
  p.realizations = 4;  // 24 instances
  return p;
}

ChunkedGpuEngineConfig tiny_chunks() {
  ChunkedGpuEngineConfig cfg;
  // Workspace sized so only ~5 instances fit per chunk (D=64, N=16):
  // per-instance = 4*64*8 + 16*8 = 2176 B.
  cfg.workspace_bytes = 11000;
  return cfg;
}

TEST(ChunkedGpu, BitwiseEqualToPlainEngineAcrossChunkBoundaries) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  const auto p = params_24();
  GpuMomentEngine plain;
  const auto a = plain.compute(op, p);
  ChunkedGpuMomentEngine chunked(tiny_chunks());
  const auto b = chunked.compute(op, p);
  EXPECT_GT(chunked.last_chunk_count(), 3u) << "the test must actually chunk";
  ASSERT_EQ(a.mu.size(), b.mu.size());
  for (std::size_t n = 0; n < a.mu.size(); ++n) EXPECT_EQ(a.mu[n], b.mu[n]) << "moment " << n;
}

TEST(ChunkedGpu, MatchesCpuReferenceBitwise) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  const auto p = params_24();
  CpuMomentEngine cpu;
  const auto a = cpu.compute(op, p);
  ChunkedGpuMomentEngine chunked(tiny_chunks());
  const auto b = chunked.compute(op, p);
  for (std::size_t n = 0; n < a.mu.size(); ++n) EXPECT_EQ(a.mu[n], b.mu[n]);
}

TEST(ChunkedGpu, HandlesWorkloadsThePlainEngineCannot) {
  // Plain engine: 3 vectors * instances * D * 8 B exceed 3 GB; chunked
  // engine runs it in bounded workspace.
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 4;
  p.random_vectors = 1 << 13;
  p.realizations = 1 << 10;  // 2^23 instances * 64 * 8 = 4 GB: first alloc already fails
  GpuMomentEngine plain;
  EXPECT_THROW((void)plain.compute(op, p, 2), kpm::Error);
  ChunkedGpuEngineConfig cfg;
  cfg.workspace_bytes = 1 << 20;
  ChunkedGpuMomentEngine chunked(cfg);
  EXPECT_NO_THROW((void)chunked.compute(op, p, 2));
}

TEST(ChunkedGpu, OverlapHidesTheFillKernel) {
  // Same computation with and without the second stream: the overlapped
  // variant must model a strictly shorter wall clock, and at most the
  // serial one.
  Fixture f(6);
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 32;
  p.random_vectors = 16;
  p.realizations = 4;

  ChunkedGpuEngineConfig cfg;
  cfg.base.context_setup_seconds = 0.0;
  cfg.workspace_bytes = 16 * (4 * 216 * 8 + 32 * 8);  // 16 instances/chunk
  cfg.overlap_fill = false;
  const double serial = ChunkedGpuMomentEngine(cfg).compute(op, p).model_seconds;
  cfg.overlap_fill = true;
  const double overlapped = ChunkedGpuMomentEngine(cfg).compute(op, p).model_seconds;
  EXPECT_LT(overlapped, serial);
}

TEST(ChunkedGpu, SingleChunkDegeneratesToPlainFlow) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  const auto p = params_24();
  ChunkedGpuEngineConfig cfg;  // default huge workspace: one chunk
  ChunkedGpuMomentEngine chunked(cfg);
  const auto r = chunked.compute(op, p);
  EXPECT_EQ(chunked.last_chunk_count(), 1u);
  GpuMomentEngine plain;
  const auto a = plain.compute(op, p);
  for (std::size_t n = 0; n < a.mu.size(); ++n) EXPECT_EQ(a.mu[n], r.mu[n]);
}

TEST(ChunkedGpu, BothMappingsSupported) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  const auto p = params_24();
  CpuMomentEngine cpu;
  const auto reference = cpu.compute(op, p);
  for (auto mapping : {GpuMapping::InstancePerBlock, GpuMapping::InstancePerThread}) {
    auto cfg = tiny_chunks();
    cfg.base.mapping = mapping;
    ChunkedGpuMomentEngine chunked(cfg);
    const auto r = chunked.compute(op, p);
    for (std::size_t n = 0; n < r.mu.size(); ++n)
      EXPECT_EQ(r.mu[n], reference.mu[n]) << to_string(mapping) << " moment " << n;
  }
}

TEST(ChunkedGpu, NameEncodesConfiguration) {
  ChunkedGpuEngineConfig cfg;
  cfg.overlap_fill = true;
  EXPECT_EQ(ChunkedGpuMomentEngine(cfg).name(), "gpu-chunked-instance-per-block-overlap");
  cfg.overlap_fill = false;
  cfg.base.mapping = GpuMapping::InstancePerThread;
  EXPECT_EQ(ChunkedGpuMomentEngine(cfg).name(), "gpu-chunked-instance-per-thread-serial");
}

}  // namespace
