// Ablation: SpMV -> SpMMV vector blocking of the KPM recursion.
//
// One Chebyshev step streams the matrix once per random vector; blocking R
// vectors into one SpMMV pass streams it once per GROUP, so the matrix
// share of the per-step traffic drops by 1/R while the vector share is
// unchanged (Kreutzer et al., arXiv:1410.5242).  This bench sweeps the
// block width over the Fig. 5 cube lattice and reports, per width and per
// storage layout (CRS and SELL-C-sigma):
//
//  * "AI"        — modeled flops / streamed byte of one fused step
//                  (CpuWorkload::arithmetic_intensity; rises toward the
//                  vector-traffic asymptote as R grows),
//  * "model s"   — the i7-930 roofline on the blocked workload,
//  * "wall s"    — the measured functional execution on THIS host.
//
// Every row reproduces the block=1 CRS moments BIT-FOR-BIT (the blocked
// kernels' per-member arithmetic is the scalar sequence), which the bench
// asserts before printing the table.
#include <cmath>

#include "bench_common.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("ablation_spmmv", "SpMMV vector blocking of the KPM recursion");
  const auto* l = cli.add_int("edge", 10, "lattice edge length");
  const auto* n = cli.add_int("N", 256, "number of moments");
  const auto* r = cli.add_int("R", 32, "random vectors (also the largest block width)");
  const auto* sample = cli.add_int("sample", 0, "instances executed functionally (0 = all)");
  const auto* csv = cli.add_string("csv", "ablation_spmmv.csv", "CSV output path");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  bench::BenchMetrics metrics("ablation_spmmv");
  KPM_REQUIRE(*r >= 1, "ablation_spmmv: --R must be >= 1");

  const auto lat = lattice::HypercubicLattice::cubic(
      static_cast<std::size_t>(*l), static_cast<std::size_t>(*l), static_cast<std::size_t>(*l));
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw(h);
  const auto transform = linalg::make_spectral_transform(raw);
  const auto ht_crs = linalg::rescale(h, transform);
  const auto ht_sell = linalg::SellMatrix::from_crs(ht_crs);

  core::MomentParams params;
  params.num_moments = static_cast<std::size_t>(*n);
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = 1;

  bench::print_banner("=== Ablation: SpMV -> SpMMV vector blocking ===",
                      lat.describe() + ", N=" + std::to_string(params.num_moments), params,
                      static_cast<std::size_t>(*sample));

  // Block widths: powers of two up to R (inclusive of R itself).
  std::vector<std::size_t> widths{1};
  for (std::size_t b = 2; b < params.random_vectors; b *= 2) widths.push_back(b);
  if (params.random_vectors > 1) widths.push_back(params.random_vectors);

  Table table({"storage", "block", "AI", "model s", "model speedup", "wall s", "wall speedup"});
  core::MomentResult baseline;
  double max_diff = 0.0;
  for (const bool sell : {false, true}) {
    linalg::MatrixOperator op =
        sell ? linalg::MatrixOperator(ht_sell) : linalg::MatrixOperator(ht_crs);
    double model1 = 0.0, wall1 = 0.0;
    for (const std::size_t b : widths) {
      params.block_r = b;
      core::CpuMomentEngine engine;
      const auto result = engine.compute(op, params, static_cast<std::size_t>(*sample));
      if (baseline.mu.empty()) baseline = result;
      for (std::size_t k = 0; k < baseline.mu.size(); ++k)
        max_diff = std::max(max_diff, std::abs(result.mu[k] - baseline.mu[k]));
      if (b == 1) {
        model1 = result.model_seconds;
        wall1 = result.wall_seconds;
      }
      // Per-step arithmetic intensity of the blocked fused kernel: the
      // matrix bytes amortize over b members, the 4D-doubles vector
      // traffic does not.
      const auto step = core::fused_step_workload(op, 1, b);
      table.add_row({sell ? "SELL-C-sigma" : "CRS", strprintf("%zu", b),
                     strprintf("%.3f", step.arithmetic_intensity()),
                     strprintf("%.3f", result.model_seconds),
                     strprintf("%.2fx", model1 / result.model_seconds),
                     strprintf("%.4f", result.wall_seconds),
                     result.wall_seconds > 0.0 ? strprintf("%.2fx", wall1 / result.wall_seconds)
                                               : "-"});
    }
  }
  KPM_REQUIRE(max_diff == 0.0, "ablation_spmmv: blocked moments must be bit-identical");
  bench::finish(table, bench::resolve_output(*out_dir, *csv));
  std::printf(
      "\nmax |mu_blocked - mu_scalar| = %.3g over every width and both storages\n"
      "expected: AI and model speedup rise with the block until the vector traffic\n"
      "(4D doubles/step, not amortized) dominates; wall speedup tracks it on a\n"
      "memory-bound host and saturates earlier when the matrix already fits in cache.\n",
      max_diff);
  return 0;
}
