#include "diag/haydock.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"

namespace kpm::diag {

RecursionCoefficients haydock_coefficients(const linalg::MatrixOperator& h,
                                           std::span<const double> start, std::size_t steps) {
  const std::size_t d = h.dim();
  KPM_REQUIRE(start.size() == d, "haydock_coefficients: start vector dimension mismatch");
  KPM_REQUIRE(steps >= 1, "haydock_coefficients: need at least one step");

  std::vector<double> v(start.begin(), start.end());
  const double norm0 = linalg::nrm2(v);
  KPM_REQUIRE(norm0 > 0.0, "haydock_coefficients: zero start vector");
  linalg::scale(1.0 / norm0, v);

  std::vector<double> v_prev(d, 0.0), w(d);
  RecursionCoefficients rc;
  rc.a.reserve(steps);
  rc.b.reserve(steps);
  double beta = 0.0;

  for (std::size_t k = 0; k < steps; ++k) {
    h.multiply(v, w);
    const double alpha = linalg::dot(v, w);
    rc.a.push_back(alpha);
    for (std::size_t i = 0; i < d; ++i) w[i] -= alpha * v[i] + beta * v_prev[i];
    beta = linalg::nrm2(w);
    // Breakdown = invariant subspace found: the continued fraction
    // terminates exactly (no terminator should be applied).  Guaranteed to
    // trigger by step d at the latest.
    if (beta < 1e-13 * std::max(1.0, std::abs(alpha))) {
      rc.exhausted = true;
      break;
    }
    if (k + 1 == steps) break;
    rc.b.push_back(beta);
    for (std::size_t i = 0; i < d; ++i) {
      v_prev[i] = v[i];
      v[i] = w[i] / beta;
    }
  }
  return rc;
}

std::complex<double> haydock_green(const RecursionCoefficients& coeffs, double energy,
                                   const HaydockOptions& options) {
  KPM_REQUIRE(!coeffs.a.empty(), "haydock_green: empty coefficient set");
  KPM_REQUIRE(options.eta > 0.0, "haydock_green: eta must be positive");
  const std::complex<double> z(energy, options.eta);

  // Terminator: continue the tail with the constant-coefficient continued
  // fraction t(z) = (z - a_inf - sqrt((z - a_inf)^2 - 4 b_inf^2)) / 2,
  // using the tail averages as (a_inf, b_inf); the branch with Im t < 0
  // is retarded.
  std::complex<double> tail(0.0, 0.0);
  if (options.square_root_terminator && !coeffs.b.empty() && !coeffs.exhausted) {
    const std::size_t tail_window = std::max<std::size_t>(1, coeffs.b.size() / 4);
    double a_inf = 0.0, b_inf = 0.0;
    for (std::size_t k = coeffs.a.size() - tail_window; k < coeffs.a.size(); ++k)
      a_inf += coeffs.a[k];
    for (std::size_t k = coeffs.b.size() - tail_window; k < coeffs.b.size(); ++k)
      b_inf += coeffs.b[k];
    a_inf /= static_cast<double>(tail_window);
    b_inf /= static_cast<double>(tail_window);

    const std::complex<double> zs = z - a_inf;
    std::complex<double> root = std::sqrt(zs * zs - 4.0 * b_inf * b_inf);
    if (root.imag() < 0.0) root = -root;  // pick the branch with Im(root) >= 0
    tail = 0.5 * (zs - root);             // Im(tail) <= 0: retarded self-energy
  }

  // Evaluate bottom-up: G = 1 / (z - a_0 - b_1^2 / (z - a_1 - ...)).
  std::complex<double> g = tail;
  for (std::size_t k = coeffs.a.size(); k-- > 0;) {
    const std::complex<double> denom = z - coeffs.a[k] - g;
    g = (k > 0 ? coeffs.b[k - 1] * coeffs.b[k - 1] : std::complex<double>(1.0, 0.0)) / denom;
    if (k == 0) return g;
  }
  return g;
}

std::vector<double> haydock_ldos(const linalg::MatrixOperator& h, std::size_t site,
                                 std::span<const double> energies,
                                 const HaydockOptions& options) {
  KPM_REQUIRE(site < h.dim(), "haydock_ldos: site out of range");
  std::vector<double> start(h.dim(), 0.0);
  start[site] = 1.0;
  const auto coeffs = haydock_coefficients(h, start, options.steps);

  std::vector<double> rho(energies.size());
  for (std::size_t j = 0; j < energies.size(); ++j)
    rho[j] = -haydock_green(coeffs, energies[j], options).imag() / std::numbers::pi;
  return rho;
}

}  // namespace kpm::diag
