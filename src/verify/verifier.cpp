#include "verify/verifier.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "check/scenarios.hpp"
#include "common/error.hpp"
#include "obs/json.hpp"
#include "verify/fixtures.hpp"
#include "verify/observer.hpp"
#include "verify/prover.hpp"
#include "verify/summary.hpp"

namespace kpm::verify {
namespace {

constexpr std::size_t kPilots = 9;
constexpr std::size_t kFitPilots = 7;

/// Pilot geometries for the production scenarios.  Deliberately diverse and
/// in general position: the exact fits are underdetermined per geometry, so
/// the pilot set must make every spurious affine combination of parameters
/// inconsistent instead of silently plausible.  With three launch variables
/// the multilinear launch basis has seven functions, so seven geometries
/// feed the fit (pinning down product terms like nb*w uniquely) and two are
/// held out for cross-validation; conductivity needs edge > 2 (periodic
/// current operator), so all edges are at least 3.
const check::ScenarioScale kScenarioScales[kPilots] = {
    {.edge = 3, .num_moments = 8, .random_vectors = 2, .realizations = 2, .block_size = 32,
     .ldos_sites = 2, .spmmv_block = 1},
    {.edge = 4, .num_moments = 12, .random_vectors = 3, .realizations = 2, .block_size = 64,
     .ldos_sites = 3, .spmmv_block = 2},
    {.edge = 5, .num_moments = 16, .random_vectors = 2, .realizations = 4, .block_size = 96,
     .ldos_sites = 4, .spmmv_block = 3},
    {.edge = 6, .num_moments = 10, .random_vectors = 4, .realizations = 2, .block_size = 128,
     .ldos_sites = 3, .spmmv_block = 2},
    {.edge = 7, .num_moments = 14, .random_vectors = 3, .realizations = 3, .block_size = 160,
     .ldos_sites = 2, .spmmv_block = 1},
    {.edge = 8, .num_moments = 18, .random_vectors = 2, .realizations = 2, .block_size = 192,
     .ldos_sites = 5, .spmmv_block = 2},
    {.edge = 9, .num_moments = 8, .random_vectors = 5, .realizations = 2, .block_size = 224,
     .ldos_sites = 2, .spmmv_block = 4},
    {.edge = 10, .num_moments = 12, .random_vectors = 3, .realizations = 3, .block_size = 256,
     .ldos_sites = 3, .spmmv_block = 3},
    {.edge = 11, .num_moments = 14, .random_vectors = 2, .realizations = 4, .block_size = 32,
     .ldos_sites = 4, .spmmv_block = 2},
};

const FixtureScale kFixtureScales[kPilots] = {
    {.tpb = 32, .nb = 2, .w = 2},  {.tpb = 64, .nb = 3, .w = 5},  {.tpb = 96, .nb = 5, .w = 3},
    {.tpb = 128, .nb = 4, .w = 7}, {.tpb = 48, .nb = 7, .w = 4},  {.tpb = 80, .nb = 2, .w = 6},
    {.tpb = 112, .nb = 6, .w = 2}, {.tpb = 16, .nb = 3, .w = 8},  {.tpb = 64, .nb = 8, .w = 3},
};

/// Declared domain of a workload parameter, by name.  Everything the
/// prover concludes holds for all geometries inside these ranges.
struct ParamRange {
  long long lo = 1;
  std::optional<long long> hi;
};

ParamRange param_range(const std::string& name) {
  if (name == "total") return {1, 32};    // instances per engine pass
  if (name == "bs") return {32, 256};     // production block sizes
  if (name == "tpb") return {1, 256};     // threads per block (hardware cap)
  return {1, std::nullopt};               // dim, nmom, nb, w, sites, b, chunk, ...
}

struct PilotRun {
  check::ScenarioParams params;
  RunRecord record;
};

struct Obligation {
  std::string what;
  ProofOutcome outcome;
  check::Kind hazard_kind = check::Kind::Unproven;  ///< kind when Violated
  const SiteSummary* site_a = nullptr;
  const SiteSummary* site_b = nullptr;
};

check::Finding finding_of(const std::string& kernel, const Obligation& ob) {
  check::Finding f;
  f.kernel = kernel;
  if (ob.site_a != nullptr) {
    f.buffer = ob.site_a->key.buffer;
    f.phase = ob.site_a->key.phase;
  }
  if (ob.outcome.result == Tri::Unknown) {
    f.kind = check::Kind::Unproven;
    f.detail = ob.what + ": " + ob.outcome.rule;
    return f;
  }
  f.kind = ob.hazard_kind;
  if (ob.outcome.witness.has_value()) {
    const Witness& w = *ob.outcome.witness;
    f.block = static_cast<std::size_t>(w.bid_a < 0 ? 0 : w.bid_a);
    f.thread_a = static_cast<std::ptrdiff_t>(w.tid_a);
    f.thread_b = static_cast<std::ptrdiff_t>(f.kind == check::Kind::SharedRace ? w.tid_b : w.bid_b);
    const long long start = std::max(w.offset_a, w.offset_b);
    f.offset = static_cast<std::size_t>(start < 0 ? 0 : start);
    if (f.kind == check::Kind::Bounds) {
      f.offset = static_cast<std::size_t>(w.offset_a < 0 ? 0 : w.offset_a);
      f.bytes = static_cast<std::size_t>(w.bytes_a);
    } else {
      const long long end = std::min(w.offset_a + w.bytes_a, w.offset_b + w.bytes_b);
      f.bytes = static_cast<std::size_t>(end > start ? end - start : 0);
    }
    f.detail = ob.what + ": " + ob.outcome.rule + " " + w.str();
  } else {
    f.detail = ob.what + ": " + ob.outcome.rule;
  }
  return f;
}

/// Everything discharge_class() concluded about one kernel class.
struct ClassOutcome {
  std::vector<std::string> notes;
  std::vector<check::Finding> findings;
};

bool involves_write(const SiteSummary& a, const SiteSummary& b) {
  return a.key.op == Op::Write || b.key.op == Op::Write;
}

ClassOutcome discharge_class(const UnitVars& vars, const ClassSummary& cls,
                             const std::vector<PilotRun>& pilots) {
  ClassOutcome out;

  // Demotions (non-affine structure) are recorded as NonAffine findings:
  // visible in reports and JSON, but not hazards — the dynamic checker
  // still covers these kernels at the geometries it runs.
  for (const auto& reason : cls.demotions) {
    check::Finding f;
    f.kind = check::Kind::NonAffine;
    f.kernel = cls.kernel;
    f.detail = reason;
    out.findings.push_back(std::move(f));
  }
  for (const auto& label : cls.unsized_buffers) {
    check::Finding f;
    f.kind = check::Kind::NonAffine;
    f.kernel = cls.kernel;
    f.buffer = label;
    f.detail = "buffer '" + label + "' byte size has no affine fit; bounds demoted to dynamic coverage";
    out.findings.push_back(std::move(f));
  }

  if (cls.sites.empty()) return out;

  // Declared parameter domain + candidate values for the witness search.
  Domain param_dom;
  std::map<int, std::vector<long long>> candidates;
  for (std::size_t i = 0; i < vars.params.size(); ++i) {
    const int id = vars.params[i];
    const ParamRange r = param_range(vars.table.name(id));
    std::optional<Poly> hi;
    if (r.hi.has_value()) hi = Poly::constant(Rat{*r.hi});
    param_dom.set(id, Poly::constant(Rat{r.lo}), std::move(hi));
    for (const auto& run : pilots) candidates[id].push_back(run.params[i].second);
  }
  const auto in_params = [&](int id) {
    return std::find(vars.params.begin(), vars.params.end(), id) != vars.params.end();
  };
  // Free (non-affine) geometry variables need bounds and witness values of
  // their own: collect the values this class actually launched with.
  const auto class_launches = [&]() {
    std::vector<const LaunchRecord*> ls;
    for (const auto& run : pilots)
      for (const auto& launch : run.record.launches) {
        if (launch.kernel != cls.kernel) continue;
        std::vector<std::string> labels;
        for (const auto& [label, bytes] : launch.buffer_bytes) labels.push_back(label);
        if (labels == cls.buffers) ls.push_back(&launch);
      }
    return ls;
  }();
  if (!cls.tpb_affine && !in_params(vars.tpb)) {
    param_dom.set(vars.tpb, Poly::constant(Rat{1}), Poly::constant(Rat{256}));
    for (const auto* launch : class_launches) candidates[vars.tpb].push_back(launch->tpb);
  }
  if (!cls.nb_affine && !in_params(vars.nb)) {
    param_dom.set(vars.nb, Poly::constant(Rat{1}), std::nullopt);
    for (const auto* launch : class_launches) candidates[vars.nb].push_back(launch->nb);
  }

  Prover prover(vars, cls, param_dom, candidates);
  const Poly one = Poly::constant(Rat{1});
  const bool single_thread = cls.tpb_affine && cls.tpb == one;
  const bool single_block = cls.nb_affine && cls.nb == one;

  std::vector<Obligation> obligations;

  // 1. Shared-allocation uniformity: per-thread allocations must not
  // depend on the thread id (a __shared__ declaration is per-block).
  for (const SiteSummary& s : cls.sites) {
    if (s.key.space != Space::Shared || s.key.op != Op::Alloc || s.key.block_scope) continue;
    Obligation ob;
    ob.what = "allocation uniformity of " + s.key.str();
    ob.site_a = &s;
    ob.hazard_kind = check::Kind::AllocDivergence;
    if (s.offset.contains(vars.tid) || s.bytes.contains(vars.tid)) {
      ob.outcome.result = Tri::Violated;
      ob.outcome.rule = "allocation depends on the thread id: offset " +
                        s.offset.str(vars.table) + ", bytes " + s.bytes.str(vars.table);
    } else {
      ob.outcome.result = Tri::Proven;
      ob.outcome.rule = "tid-independent";
    }
    obligations.push_back(std::move(ob));
  }

  // 2. Same-block disjointness (shared-memory racecheck and intra-block
  // global races): thread-scope pairs within one phase, at least one write.
  if (!single_thread) {
    for (std::size_t i = 0; i < cls.sites.size(); ++i) {
      for (std::size_t j = i; j < cls.sites.size(); ++j) {
        const SiteSummary& a = cls.sites[i];
        const SiteSummary& b = cls.sites[j];
        if (a.key.block_scope || b.key.block_scope) continue;
        if (a.key.op == Op::Alloc || b.key.op == Op::Alloc) continue;
        if (a.key.space != b.key.space || a.key.phase != b.key.phase) continue;
        if (a.key.space == Space::Global && a.key.buffer != b.key.buffer) continue;
        if (!involves_write(a, b)) continue;
        Obligation ob;
        ob.site_a = &a;
        ob.site_b = &b;
        ob.hazard_kind =
            a.key.space == Space::Shared ? check::Kind::SharedRace : check::Kind::GlobalRace;
        ob.what = "same-block disjointness of " + a.key.str() +
                  (i == j ? " (self)" : " vs " + b.key.str());
        ob.outcome = prover.check_disjoint(a, b, vars.tid);
        obligations.push_back(std::move(ob));
      }
    }
  }

  // 3. Cross-block disjointness (global overlap): blocks are concurrent
  // across the whole launch, so phases do not order them.
  if (!single_block) {
    for (std::size_t i = 0; i < cls.sites.size(); ++i) {
      for (std::size_t j = i; j < cls.sites.size(); ++j) {
        const SiteSummary& a = cls.sites[i];
        const SiteSummary& b = cls.sites[j];
        if (a.key.space != Space::Global || b.key.space != Space::Global) continue;
        if (a.key.buffer != b.key.buffer) continue;
        if (!involves_write(a, b)) continue;
        Obligation ob;
        ob.site_a = &a;
        ob.site_b = &b;
        ob.hazard_kind = check::Kind::GlobalRace;
        ob.what = "cross-block disjointness of " + a.key.str() +
                  (i == j ? " (self)" : " vs " + b.key.str());
        ob.outcome = prover.check_disjoint(a, b, vars.bid);
        obligations.push_back(std::move(ob));
      }
    }
  }

  // 4. Bounds: every summarized site stays inside its buffer / the arena.
  bool shared_bounds_demoted = false;
  for (const SiteSummary& s : cls.sites) {
    std::optional<Poly> limit;
    if (s.key.space == Space::Global) {
      const auto it = cls.buffer_sizes.find(s.key.buffer);
      if (it == cls.buffer_sizes.end()) continue;  // already a NonAffine record
      limit = it->second;
    } else {
      if (!cls.shared_affine) {
        if (!shared_bounds_demoted) {
          check::Finding f;
          f.kind = check::Kind::NonAffine;
          f.kernel = cls.kernel;
          f.detail = "shared arena size has no affine fit; shared bounds demoted to dynamic coverage";
          out.findings.push_back(std::move(f));
          shared_bounds_demoted = true;
        }
        continue;
      }
      limit = cls.shared_bytes;
    }
    Obligation ob;
    ob.site_a = &s;
    ob.hazard_kind = check::Kind::Bounds;
    ob.what = "bounds of " + s.key.str();
    ob.outcome = prover.check_bounds(s, *limit);
    obligations.push_back(std::move(ob));
  }

  // Fold outcomes: proofs aggregate into one note per rule, failures
  // become findings.
  std::map<std::string, std::size_t> proven_rules;
  for (const Obligation& ob : obligations) {
    if (ob.outcome.result == Tri::Proven)
      proven_rules[ob.outcome.rule] += 1;
    else
      out.findings.push_back(finding_of(cls.kernel, ob));
  }
  if (!obligations.empty()) {
    std::ostringstream note;
    note << obligations.size() << " obligation" << (obligations.size() == 1 ? "" : "s");
    if (!proven_rules.empty()) {
      note << ", proven via ";
      bool first = true;
      for (const auto& [rule, count] : proven_rules) {
        note << (first ? "" : ", ") << rule << " (" << count << ")";
        first = false;
      }
    }
    if (cls.tpb_affine) note << "; tpb = " << cls.tpb.str(vars.table);
    if (cls.nb_affine) note << ", nb = " << cls.nb.str(vars.table);
    out.notes.push_back(note.str());
  }
  return out;
}

bool is_fixture_name(const std::string& name) {
  const auto names = fixture_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

const char* to_string(KernelStatus s) noexcept {
  switch (s) {
    case KernelStatus::Proven: return "proven";
    case KernelStatus::NoSites: return "no-sites";
    case KernelStatus::Demoted: return "demoted";
    case KernelStatus::Findings: return "findings";
  }
  return "?";
}

bool is_hazard(check::Kind kind) noexcept { return kind != check::Kind::NonAffine; }

bool UnitReport::hazard_free() const {
  for (const auto& k : kernels)
    for (const auto& f : k.findings)
      if (is_hazard(f.kind)) return false;
  return true;
}

std::size_t hazard_count(const std::vector<UnitReport>& reports) {
  std::size_t n = 0;
  for (const auto& r : reports)
    for (const auto& k : r.kernels)
      for (const auto& f : k.findings)
        if (is_hazard(f.kind)) ++n;
  return n;
}

UnitReport verify_unit(const std::string& unit, const VerifyOptions& opts) {
  const bool fixture = is_fixture_name(unit);
  if (!fixture) {
    const auto names = check::scenario_names();
    KPM_REQUIRE(std::find(names.begin(), names.end(), unit) != names.end(),
                "unknown verification unit '" + unit + "'");
  }

  // Pilot runs, in an order rotated by the seed; verdicts must not depend
  // on which pilots land in the fit vs the holdout split.
  std::vector<PilotRun> pilots;
  for (std::size_t i = 0; i < kPilots; ++i) {
    const std::size_t idx = (i + static_cast<std::size_t>(opts.pilot_seed)) % kPilots;
    PilotRun run;
    VerifyObserver obs;
    {
      ScopedVerify guard(obs);
      run.params = fixture ? run_fixture_workload(unit, kFixtureScales[idx])
                           : check::run_scenario_workload(unit, kScenarioScales[idx]);
    }
    run.record = std::move(obs.run());
    pilots.push_back(std::move(run));
  }

  if (opts.inject_stride_bug) {
    // Negative control: every global write one byte wider than recorded.
    for (auto& run : pilots)
      for (auto& launch : run.record.launches)
        for (auto& ev : launch.events)
          if (ev.space == Space::Global && ev.op == Op::Write) ev.bytes += 1;
  }

  std::vector<std::string> param_names;
  for (const auto& [name, value] : pilots.front().params) param_names.push_back(name);
  UnitVars vars = make_unit_vars(param_names);

  std::vector<RunSample> fit, holdout;
  for (std::size_t i = 0; i < pilots.size(); ++i) {
    RunSample sample{pilots[i].params, &pilots[i].record};
    (i < kFitPilots ? fit : holdout).push_back(std::move(sample));
  }
  const std::vector<ClassSummary> classes = summarize(vars, fit, holdout);

  std::map<std::string, KernelVerdict> verdicts;
  for (const ClassSummary& cls : classes) {
    KernelVerdict& v = verdicts[cls.kernel];
    v.kernel = cls.kernel;
    v.sites += cls.sites.size();
    v.launches += cls.launches;
    ClassOutcome outcome;
    try {
      outcome = discharge_class(vars, cls, pilots);
    } catch (const RatOverflow&) {
      // Proof search outgrew exact 128-bit arithmetic: nothing is proven,
      // so the kernel honestly demotes to dynamic coverage.
      outcome = ClassOutcome{};
      check::Finding f;
      f.kind = check::Kind::NonAffine;
      f.kernel = cls.kernel;
      f.detail = "exact arithmetic exceeded 128-bit range during proof search; "
                 "demoted to dynamic coverage";
      outcome.findings.push_back(std::move(f));
    }
    for (auto& n : outcome.notes) v.notes.push_back(std::move(n));
    for (auto& f : outcome.findings) v.findings.push_back(std::move(f));
  }

  UnitReport report;
  report.unit = unit;
  report.fixture = fixture;
  for (auto& [name, v] : verdicts) {
    const bool hazards = std::any_of(v.findings.begin(), v.findings.end(),
                                     [](const check::Finding& f) { return is_hazard(f.kind); });
    const bool demoted = std::any_of(v.findings.begin(), v.findings.end(),
                                     [](const check::Finding& f) { return !is_hazard(f.kind); });
    v.status = hazards ? KernelStatus::Findings
                       : (demoted ? KernelStatus::Demoted
                                  : (v.sites > 0 ? KernelStatus::Proven : KernelStatus::NoSites));
    report.kernels.push_back(std::move(v));
  }
  return report;
}

std::vector<UnitReport> verify_all(const VerifyOptions& opts) {
  std::vector<UnitReport> reports;
  for (const auto& name : check::scenario_names()) reports.push_back(verify_unit(name, opts));
  return reports;
}

std::vector<UnitReport> verify_fixtures(const VerifyOptions& opts) {
  std::vector<UnitReport> reports;
  for (const auto& name : fixture_names()) reports.push_back(verify_unit(name, opts));
  return reports;
}

kpm::Table verify_table(const std::vector<UnitReport>& reports) {
  kpm::Table table({"unit", "kernel", "status", "sites", "findings", "detail"});
  for (const auto& r : reports) {
    for (const auto& k : r.kernels) {
      std::string detail;
      for (const auto& f : k.findings) {
        if (!is_hazard(f.kind)) continue;
        detail = std::string(check::to_string(f.kind)) + ": " + f.detail;
        break;
      }
      if (detail.empty() && !k.findings.empty() && k.status == KernelStatus::Demoted)
        detail = std::string("non-affine: ") + k.findings.front().detail;
      if (detail.empty() && !k.notes.empty()) detail = k.notes.front();
      table.add_row({r.unit, k.kernel, to_string(k.status), std::to_string(k.sites),
                     std::to_string(k.findings.size()), detail});
    }
  }
  return table;
}

std::string verify_to_json_section(const std::vector<UnitReport>& reports,
                                   const VerifyOptions& opts) {
  std::ostringstream os;
  os << "{\"schema\": \"kpm.verify/1\", \"pilot_seed\": " << opts.pilot_seed
     << ", \"inject_stride_bug\": " << (opts.inject_stride_bug ? "true" : "false")
     << ", \"hazards\": " << hazard_count(reports) << ", \"units\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const UnitReport& r = reports[i];
    os << (i == 0 ? "" : ", ") << "{\"unit\": \"" << obs::json_escape(r.unit)
       << "\", \"fixture\": " << (r.fixture ? "true" : "false") << ", \"kernels\": [";
    for (std::size_t j = 0; j < r.kernels.size(); ++j) {
      const KernelVerdict& k = r.kernels[j];
      os << (j == 0 ? "" : ", ") << "{\"kernel\": \"" << obs::json_escape(k.kernel)
         << "\", \"status\": \"" << to_string(k.status) << "\", \"sites\": " << k.sites
         << ", \"launches\": " << k.launches << ", \"notes\": [";
      for (std::size_t n = 0; n < k.notes.size(); ++n)
        os << (n == 0 ? "" : ", ") << "\"" << obs::json_escape(k.notes[n]) << "\"";
      os << "], \"findings\": " << check::findings_to_json(k.findings) << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace kpm::verify
