// bench_serve — offered load vs latency / shed rate through the serving layer.
//
// Sweeps the arrival rate of a synthetic request stream (as a multiple of
// the modeled single-request service rate) through serve::Server and reports
// what admission control and the coalescer/cache do to latency and the shed
// rate.  Everything is on the simulated serve clock, so the swept columns
// are deterministic; each sweep point also records its own slice of the
// serve histograms (queue depth, batch occupancy, wait, service) into the
// metrics sidecar's `histogram_series`.
#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "obs/report.hpp"
#include "serve/server.hpp"

using namespace kpm;

namespace {

/// Deterministic request stream: a mix of repeated DoS queries (two seeds,
/// so the cache sees both hits and misses), reconstruction-only variants and
/// a fixed-site LDOS, arriving at a uniform spacing.
std::vector<serve::Request> build_stream(std::size_t count, double spacing) {
  std::vector<serve::Request> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double arrival = static_cast<double>(i) * spacing;
    const std::uint64_t id = i + 1;
    switch (i % 4) {
      case 0:
      case 1: {
        serve::DosRequest r;
        r.id = id;
        r.model = "square";
        r.arrival_seconds = arrival;
        r.moments.num_moments = 128;
        r.moments.random_vectors = 4;
        r.moments.realizations = 2;
        r.moments.seed = 11;
        r.reconstruct.points = 64 + 16 * (i % 3);  // same key, different grids
        requests.push_back(r);
        break;
      }
      case 2: {
        serve::LdosRequest r;
        r.id = id;
        r.model = "square";
        r.arrival_seconds = arrival;
        r.moments.num_moments = 128;
        r.site = 20;
        r.reconstruct.points = 48;
        requests.push_back(r);
        break;
      }
      default: {
        serve::DosRequest r;
        r.id = id;
        r.model = "square";
        r.arrival_seconds = arrival;
        r.moments.num_moments = 128;
        r.moments.random_vectors = 4;
        r.moments.realizations = 2;
        r.moments.seed = 23;  // second population: cold key per N
        r.reconstruct.points = 64;
        requests.push_back(r);
        break;
      }
    }
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_serve",
                "offered-load sweep through the deterministic serving layer "
                "(batching, moment cache, admission control)");
  const auto* edge = cli.add_int("edge", 8, "square-lattice edge");
  const auto* count = cli.add_int("requests", 24, "requests per sweep point");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  bench::BenchMetrics metrics("bench_serve");

  const auto lat = lattice::HypercubicLattice::square(static_cast<std::size_t>(*edge),
                                                      static_cast<std::size_t>(*edge));
  const linalg::CrsMatrix h =
      lattice::build_tight_binding_crs(lat, {}, lattice::anderson_disorder(1.0, 3));

  // Capacity unit: the modeled serial service time of the repeated DoS
  // template.  `load` is the arrival rate in units of 1/unit, so load > 1
  // offers more work than one channel can serve (before cache/coalescing
  // relief) and admission control must act.
  const double unit = [&] {
    linalg::MatrixOperator raw(h);
    const auto transform = linalg::make_spectral_transform(raw);
    const linalg::CrsMatrix h_tilde = linalg::rescale(h, transform);
    const linalg::MatrixOperator op(h_tilde);
    return core::modeled_reference_seconds(op, 128, 8);
  }();
  std::printf("bench_serve — offered load vs latency / shed rate\n");
  std::printf("workload : square %lld x %lld, %zu requests per point, unit %.3g s\n\n",
              static_cast<long long>(*edge), static_cast<long long>(*edge),
              static_cast<std::size_t>(*count), unit);

  Table table({"load", "requests", "served", "shed", "degraded", "hit rate", "mean wait s",
               "max wait s", "makespan s"});
  for (const double load : {0.5, 1.0, 2.0, 4.0}) {
    obs::SweepPoint point(metrics.report(), strprintf("load=%.2f", load));

    serve::ServeConfig config;
    config.workers = 2;
    config.max_queue = 4;
    config.max_batch = 4;
    config.degrade_floor = 16;
    serve::Server server(config);
    server.register_model("square", h);

    const auto responses =
        server.run(build_stream(static_cast<std::size_t>(*count), unit / load));

    std::size_t served = 0, shed = 0, degraded = 0, hits = 0;
    double wait_sum = 0.0, wait_max = 0.0, makespan = 0.0;
    for (const auto& r : responses) {
      if (r.status != serve::ResponseStatus::Ok) {
        shed += 1;
        continue;
      }
      served += 1;
      if (r.degraded) degraded += 1;
      if (r.cache_hit) hits += 1;
      wait_sum += r.wait_seconds();
      wait_max = std::max(wait_max, r.wait_seconds());
      makespan = std::max(makespan, r.finish_seconds);
    }
    table.add_row({strprintf("%.2f", load), std::to_string(responses.size()),
                   std::to_string(served), std::to_string(shed), std::to_string(degraded),
                   strprintf("%.2f", served > 0 ? static_cast<double>(hits) /
                                                      static_cast<double>(served)
                                                : 0.0),
                   strprintf("%.4f", served > 0 ? wait_sum / static_cast<double>(served) : 0.0),
                   strprintf("%.4f", wait_max), strprintf("%.4f", makespan)});
  }

  bench::finish(table, bench::resolve_output(*out_dir, "serve_load.csv"));
  return 0;
}
