// Tests for the damping kernels g_n.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "core/damping.hpp"

namespace {

using namespace kpm::core;

TEST(Damping, G0IsOneForAllKernels) {
  for (auto k : {DampingKernel::Jackson, DampingKernel::Lorentz, DampingKernel::Fejer,
                 DampingKernel::Dirichlet}) {
    const auto g = damping_coefficients(k, 64);
    EXPECT_NEAR(g[0], 1.0, 1e-12) << to_string(k);
  }
}

TEST(Damping, DirichletIsAllOnes) {
  const auto g = damping_coefficients(DampingKernel::Dirichlet, 16);
  for (double v : g) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Damping, FejerIsLinearRamp) {
  const auto g = damping_coefficients(DampingKernel::Fejer, 8);
  for (std::size_t n = 0; n < 8; ++n) EXPECT_DOUBLE_EQ(g[n], 1.0 - static_cast<double>(n) / 8.0);
}

TEST(Damping, JacksonMonotoneDecreasingPositive) {
  const auto g = damping_coefficients(DampingKernel::Jackson, 256);
  for (std::size_t n = 1; n < g.size(); ++n) {
    EXPECT_LT(g[n], g[n - 1]) << "n=" << n;
    EXPECT_GT(g[n], 0.0) << "n=" << n;
  }
  // The tail must be strongly damped.
  EXPECT_LT(g.back(), 0.01);
}

TEST(Damping, JacksonMatchesClosedFormSmallN) {
  // N = 2: g_0 = 1, g_1 = [2 cos(pi/3) + sin(pi/3) cot(pi/3)] / 3 = 2/3...
  // compute directly from the formula to guard regressions.
  const auto g = damping_coefficients(DampingKernel::Jackson, 2);
  const double q = std::numbers::pi / 3.0;
  const double expected = (2.0 * std::cos(q) + std::sin(q) * std::cos(q) / std::sin(q)) / 3.0;
  EXPECT_NEAR(g[1], expected, 1e-14);
}

TEST(Damping, LorentzDecaysWithLambda) {
  const auto g_soft = damping_coefficients(DampingKernel::Lorentz, 64, 1.0);
  const auto g_hard = damping_coefficients(DampingKernel::Lorentz, 64, 5.0);
  // Larger lambda damps the tail harder.
  EXPECT_GT(g_soft[50], g_hard[50]);
  for (std::size_t n = 1; n < 64; ++n) {
    EXPECT_LT(g_hard[n], g_hard[n - 1]);
    EXPECT_GT(g_hard[n], 0.0);
  }
}

TEST(Damping, LorentzRejectsNonPositiveLambda) {
  EXPECT_THROW(damping_coefficients(DampingKernel::Lorentz, 8, 0.0), kpm::Error);
  EXPECT_THROW(damping_coefficients(DampingKernel::Lorentz, 8, -1.0), kpm::Error);
}

TEST(Damping, NamesRoundTrip) {
  for (auto k : {DampingKernel::Jackson, DampingKernel::Lorentz, DampingKernel::Fejer,
                 DampingKernel::Dirichlet})
    EXPECT_EQ(damping_kernel_from_string(to_string(k)), k);
  EXPECT_THROW(damping_kernel_from_string("gauss"), kpm::Error);
}

TEST(Damping, ZeroMomentCountRejected) {
  EXPECT_THROW(damping_coefficients(DampingKernel::Jackson, 0), kpm::Error);
}

}  // namespace
