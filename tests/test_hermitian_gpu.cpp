// Tests for the GPU-mapped Hermitian moment engine.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/moments_gpu.hpp"
#include "core/moments_hermitian.hpp"
#include "core/moments_hermitian_gpu.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "lattice/peierls.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

struct Fixture {
  linalg::CrsMatrixZ h_tilde;

  explicit Fixture(double phi = 1.0 / 6.0) {
    const auto h = lattice::build_square_flux_crs(6, 6, phi);
    const linalg::SpectralTransform t(h.gershgorin(), 0.02);
    h_tilde = linalg::rescale(h, t);
  }
};

MomentParams small_params() {
  MomentParams p;
  p.num_moments = 16;
  p.random_vectors = 4;
  p.realizations = 2;
  return p;
}

TEST(GpuHermitian, BitwiseEqualToCpuHermitianEngine) {
  Fixture f;
  const auto p = small_params();
  HermitianMomentEngine cpu;
  const auto a = cpu.compute(f.h_tilde, p);
  GpuHermitianMomentEngine gpu;
  const auto b = gpu.compute(f.h_tilde, p);
  ASSERT_EQ(a.mu.size(), b.mu.size());
  for (std::size_t n = 0; n < a.mu.size(); ++n) EXPECT_EQ(a.mu[n], b.mu[n]) << "moment " << n;
}

TEST(GpuHermitian, SampledRunMatchesCpu) {
  Fixture f;
  const auto p = small_params();
  HermitianMomentEngine cpu;
  GpuHermitianMomentEngine gpu;
  const auto a = cpu.compute(f.h_tilde, p, 3);
  const auto b = gpu.compute(f.h_tilde, p, 3);
  EXPECT_EQ(b.instances_executed, 3u);
  for (std::size_t n = 0; n < a.mu.size(); ++n) EXPECT_EQ(a.mu[n], b.mu[n]);
}

TEST(GpuHermitian, ComplexArithmeticCostsMoreThanReal) {
  // Same lattice at zero field: the complex engine must model more kernel
  // time than the real engine (16-byte elements, ~4x flops per entry).
  const auto lat = lattice::HypercubicLattice::square(8, 8);
  const auto hr = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator opr(hr);
  const auto t = linalg::make_spectral_transform(opr);
  const auto hr_tilde = linalg::rescale(hr, t);
  linalg::MatrixOperator opr_tilde(hr_tilde);
  const auto hz = lattice::build_square_flux_crs(8, 8, 0.0);
  const auto hz_tilde = linalg::rescale(hz, t);

  MomentParams p;
  p.num_moments = 64;
  p.random_vectors = 14;
  p.realizations = 16;
  GpuEngineConfig cfg;
  cfg.context_setup_seconds = 0.0;
  GpuMomentEngine real_engine(cfg);
  GpuHermitianMomentEngine complex_engine(cfg);
  const double t_real = real_engine.compute(opr_tilde, p, 8).compute_seconds;
  const double t_complex = complex_engine.compute(hz_tilde, p, 8).compute_seconds;
  EXPECT_GT(t_complex, 1.5 * t_real);
  EXPECT_LT(t_complex, 6.0 * t_real);
}

TEST(GpuHermitian, TimelinePopulatedAndVramChecked) {
  Fixture f;
  GpuHermitianMomentEngine gpu;
  (void)gpu.compute(f.h_tilde, small_params());
  EXPECT_EQ(gpu.last_timeline().launches, 3u);
  EXPECT_GT(gpu.last_timeline().bytes_to_device, 0.0);

  MomentParams huge;
  huge.num_moments = 4;
  huge.random_vectors = 1 << 13;
  huge.realizations = 1 << 10;  // complex vectors: 2^23 * 36 * 16 B = 4.8 GB
  EXPECT_THROW((void)gpu.compute(f.h_tilde, huge, 1), kpm::Error);
}

TEST(GpuHermitian, RejectsBadConfig) {
  GpuEngineConfig cfg;
  cfg.block_size = 33;
  EXPECT_THROW(GpuHermitianMomentEngine{cfg}, kpm::Error);
}

}  // namespace
