#include "diag/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace kpm::diag {
namespace {

/// sqrt(sum_{p<q} a_pq^2) — the quantity Jacobi drives to zero.
double off_norm(const linalg::DenseMatrix& a) {
  double acc = 0.0;
  for (std::size_t p = 0; p < a.rows(); ++p)
    for (std::size_t q = p + 1; q < a.cols(); ++q) acc += a(p, q) * a(p, q);
  return std::sqrt(2.0 * acc);
}

}  // namespace

EigenDecomposition jacobi_eigensolve(const linalg::DenseMatrix& input,
                                     const JacobiOptions& options) {
  KPM_REQUIRE(input.square(), "jacobi_eigensolve requires a square matrix");
  const std::size_t n = input.rows();
  const double fro = input.frobenius_norm();
  KPM_REQUIRE(input.symmetry_defect() <= 1e-12 * std::max(1.0, fro),
              "jacobi_eigensolve requires a symmetric matrix");

  linalg::DenseMatrix a = input;  // working copy, rotated in place
  linalg::DenseMatrix v;
  if (options.compute_vectors) v = linalg::DenseMatrix::identity(n);

  EigenDecomposition result;
  const double stop = options.tolerance * std::max(fro, 1e-300);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    const double off = off_norm(a);
    result.off_diagonal_norm = off;
    result.sweeps = sweep;
    if (off <= stop) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;

        // Rotation angle from the standard stable formulation
        // (Golub & Van Loan, Algorithm 8.4.1).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // A <- J^T A J applied to rows/cols p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        if (options.compute_vectors) {
          for (std::size_t k = 0; k < n; ++k) {
            const double vkp = v(k, p);
            const double vkq = v(k, q);
            v(k, p) = c * vkp - s * vkq;
            v(k, q) = s * vkp + c * vkq;
          }
        }
      }
    }
    result.sweeps = sweep + 1;
  }

  result.off_diagonal_norm = off_norm(a);
  KPM_REQUIRE(result.off_diagonal_norm <= std::max(stop, 1e-10 * std::max(fro, 1.0)),
              "jacobi_eigensolve failed to converge");

  // Extract and sort eigenvalues (with matching eigenvector permutation).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) < a(j, j); });

  result.eigenvalues.resize(n);
  for (std::size_t k = 0; k < n; ++k) result.eigenvalues[k] = a(order[k], order[k]);

  if (options.compute_vectors) {
    result.eigenvectors = linalg::DenseMatrix(n, n);
    for (std::size_t col = 0; col < n; ++col)
      for (std::size_t row = 0; row < n; ++row)
        result.eigenvectors(row, col) = v(row, order[col]);
  }
  return result;
}

}  // namespace kpm::diag
