// Figure 6 reproduction: "The DoS comparison with truncations between
// N=256 and N=512 when the lattice is made of cubes placed in 10x10x10,
// R=14 and S=128."
//
// Regenerates both DoS curves from stochastic KPM moments (GPU engine) and
// prints the series the figure plots, plus the exact-diagonalization
// reference (closed-form spectrum smoothed at matching resolution) and the
// truncation-resolution metrics the paper discusses: N=512 resolves more
// structure but costs proportionally more time.
#include <cmath>

#include "bench_common.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("fig6_dos_resolution", "Reproduces Fig. 6: DoS at N=256 vs N=512");
  const auto* l = cli.add_int("edge", 10, "lattice edge length (paper: 10)");
  const auto* r = cli.add_int("R", 14, "random vectors per realization");
  const auto* s = cli.add_int("S", 128, "realizations");
  const auto* sample = cli.add_int("sample", 16, "instances executed functionally (0 = all)");
  const auto* points = cli.add_int("points", 64, "energy grid points in the printed series");
  const auto* csv = cli.add_string("csv", "fig6_dos_resolution.csv", "CSV output path");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  bench::BenchMetrics metrics("fig6_dos_resolution");

  const auto lat = lattice::HypercubicLattice::cubic(
      static_cast<std::size_t>(*l), static_cast<std::size_t>(*l), static_cast<std::size_t>(*l));
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw(h);
  const auto transform = linalg::make_spectral_transform(raw);
  const auto ht = linalg::rescale(h, transform);
  linalg::MatrixOperator op(ht);

  core::MomentParams params;
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = static_cast<std::size_t>(*s);

  bench::print_banner("=== Fig. 6: DoS resolution, N=256 vs N=512 (Jackson kernel) ===",
                      lat.describe() + ", D=" + std::to_string(op.dim()), params,
                      static_cast<std::size_t>(*sample));

  // KPM moments at the two truncations (the N=512 run subsumes N=256 as a
  // prefix, but we time both separately like the paper's runs did).
  core::GpuMomentEngine gpu;
  params.num_moments = 256;
  const auto m256 = gpu.compute(op, params, static_cast<std::size_t>(*sample));
  params.num_moments = 512;
  const auto m512 = gpu.compute(op, params, static_cast<std::size_t>(*sample));

  // Exact reference: closed-form spectrum of the periodic lattice, smoothed
  // with the same Jackson resolution as the N=512 curve.
  const auto spectrum = lattice::periodic_tight_binding_spectrum(lat);
  const auto exact_mu = diag::exact_chebyshev_moments(spectrum, transform, 512);

  // Common energy grid for the printed series.
  std::vector<double> energies(static_cast<std::size_t>(*points));
  for (std::size_t j = 0; j < energies.size(); ++j) {
    const double x = -0.98 + 1.96 * static_cast<double>(j) / (static_cast<double>(energies.size()) - 1.0);
    energies[j] = transform.to_physical(x);
  }
  const auto c256 = core::reconstruct_dos_at(m256.mu, transform, energies);
  const auto c512 = core::reconstruct_dos_at(m512.mu, transform, energies);
  const auto cref = core::reconstruct_dos_at(exact_mu, transform, energies);

  Table table({"omega", "rho N=256", "rho N=512", "rho exact(512)"});
  for (std::size_t j = 0; j < energies.size(); ++j)
    table.add_row({strprintf("%.4f", c256.energy[j]), strprintf("%.6f", c256.density[j]),
                   strprintf("%.6f", c512.density[j]), strprintf("%.6f", cref.density[j])});
  bench::finish(table, bench::resolve_output(*out_dir, *csv));

  // Resolution metric: max curvature (sharper features <-> larger value).
  auto curvature = [](const core::DosCurve& c) {
    double m = 0.0;
    for (std::size_t j = 1; j + 1 < c.density.size(); ++j)
      m = std::max(m, std::abs(c.density[j + 1] - 2.0 * c.density[j] + c.density[j - 1]));
    return m;
  };
  std::printf("\nresolution (max |second difference|): N=256: %.4g, N=512: %.4g\n",
              curvature(c256), curvature(c512));
  std::printf("GPU model time: N=256: %.3f s, N=512: %.3f s (x%.2f)\n", m256.model_seconds,
              m512.model_seconds, m512.model_seconds / m256.model_seconds);
  std::printf("paper shape: N=512 resolves more structure at ~2x the cost\n");
  return 0;
}
