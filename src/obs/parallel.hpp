// Deterministic counter and histogram aggregation across a ThreadPool.
//
// `sharded_parallel_for` gives every pool lane a private CounterSet (and
// HistogramSet) shard for the duration of the loop, then — after the pool
// has joined — reduces the shards into the caller's sinks in lane order
// 0..L-1.  Because all library counters are exact integers in doubles and
// histograms hold exact integer ticks, the reduction is exact and the
// totals are bit-identical for any lane count and any work split.
#pragma once

#include <utility>

#include "common/thread_pool.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"

namespace kpm::obs {

/// Drop-in replacement for `pool.parallel_for(count, body)` that shards the
/// caller's active counter and histogram sinks per lane.  When no sink is
/// installed the plain parallel_for runs with zero overhead.
template <typename Body>
void sharded_parallel_for(kpm::common::ThreadPool& pool, std::size_t count, Body&& body) {
  CounterSet* counter_sink = active_counters();
  HistogramSet* histogram_sink = active_histograms();
  if (counter_sink == nullptr && histogram_sink == nullptr) {
    pool.parallel_for(count, std::forward<Body>(body));
    return;
  }
  ShardedCounters counter_shards(pool.size());
  ShardedHistograms histogram_shards(pool.size());
  pool.parallel_for(count, [&](std::size_t lane, std::size_t begin, std::size_t end) {
    CounterScope counters(counter_shards.shard(lane));
    HistogramScope histograms(histogram_shards.shard(lane));
    body(lane, begin, end);
  });
  if (counter_sink != nullptr) *counter_sink += counter_shards.reduce();
  if (histogram_sink != nullptr) *histogram_sink += histogram_shards.reduce();
}

}  // namespace kpm::obs
