#include "verify/fixtures.hpp"

#include <span>

#include "check/checker.hpp"
#include "common/error.hpp"
#include "gpusim/device.hpp"
#include "gpusim/view.hpp"
#include "verify/observer.hpp"

namespace kpm::verify {
namespace {

using gpusim::AccessPattern;
using gpusim::BlockContext;
using gpusim::Device;
using gpusim::ExecConfig;
using gpusim::GlobalView;
using gpusim::ThreadContext;

ExecConfig geometry(const FixtureScale& s, std::size_t shared_bytes = 0) {
  ExecConfig cfg;
  cfg.grid = gpusim::Dim3{static_cast<std::uint32_t>(s.nb)};
  cfg.block = gpusim::Dim3{static_cast<std::uint32_t>(s.tpb)};
  cfg.shared_bytes = shared_bytes;
  return cfg;
}

// Clean: each block bulk-stores its own w-element slice (offset = 8*w*bid,
// bytes = 8*w).  Proven by interval separation.
class BlockStrideCleanKernel final : public gpusim::Kernel {
 public:
  BlockStrideCleanKernel(gpusim::DeviceBuffer<double>& buf, std::size_t w) : buf_(&buf), w_(w) {}
  [[nodiscard]] const char* name() const override { return "fx-block-stride-clean"; }
  void block_phase(int /*phase*/, BlockContext& block) override {
    GlobalView<double> v(*buf_, AccessPattern::Coalesced, block.counters());
    for (double& x : v.bulk_store(block.bid() * w_, w_)) x = static_cast<double>(block.bid());
  }

 private:
  gpusim::DeviceBuffer<double>* buf_;
  std::size_t w_;
};

// Clean: one element per thread at bid*tpb + tid.  Proven by interval
// separation within the block and across blocks.
class ThreadStrideCleanKernel final : public gpusim::Kernel {
 public:
  explicit ThreadStrideCleanKernel(gpusim::DeviceBuffer<double>& buf) : buf_(&buf) {}
  [[nodiscard]] const char* name() const override { return "fx-thread-stride-clean"; }
  void thread_phase(int /*phase*/, ThreadContext& t) override {
    GlobalView<double> v(*buf_, AccessPattern::Coalesced, t.block().counters());
    v.store(t.block().bid() * t.block().threads() + t.tid(), static_cast<double>(t.tid()));
  }

 private:
  gpusim::DeviceBuffer<double>* buf_;
};

// Broken only at large launches: the block stride is hard-coded to 128
// while the buffer is sized to the actual geometry, so neighbouring blocks
// collide exactly when tpb > 128.  Every pilot run (tpb <= 128) — and the
// dynamic checker's default launch — is race-free; the verifier's witness
// search at the domain edge (tpb = 256) exposes the overlap.
class GeomRaceKernel final : public gpusim::Kernel {
 public:
  explicit GeomRaceKernel(gpusim::DeviceBuffer<double>& buf) : buf_(&buf) {}
  [[nodiscard]] const char* name() const override { return "fx-geom-race"; }
  void thread_phase(int /*phase*/, ThreadContext& t) override {
    GlobalView<double> v(*buf_, AccessPattern::Coalesced, t.block().counters());
    v.store(t.block().bid() * 128 + t.tid(), static_cast<double>(t.tid()));
  }

 private:
  gpusim::DeviceBuffer<double>* buf_;
};

// Broken: each block stores w+1 elements at stride w, so block b's last
// element lands on block b+1's first.  Definite cross-block overlap with a
// concrete witness at every geometry with nb >= 2.
class GlobalOverlapKernel final : public gpusim::Kernel {
 public:
  GlobalOverlapKernel(gpusim::DeviceBuffer<double>& buf, std::size_t w) : buf_(&buf), w_(w) {}
  [[nodiscard]] const char* name() const override { return "fx-global-overlap"; }
  void block_phase(int /*phase*/, BlockContext& block) override {
    GlobalView<double> v(*buf_, AccessPattern::Coalesced, block.counters());
    for (double& x : v.bulk_store(block.bid() * w_, w_ + 1)) x = static_cast<double>(block.bid());
  }

 private:
  gpusim::DeviceBuffer<double>* buf_;
  std::size_t w_;
};

// Broken only at large launches: two elements per thread into a buffer of
// fixed 256 elements with a single block.  In bounds for tpb <= 128; the
// verifier proves the escape at the domain edge tpb = 256.  (Pilot scales
// must keep tpb <= 128 or the simulator itself hard-fails.)
class BoundsEscapeKernel final : public gpusim::Kernel {
 public:
  explicit BoundsEscapeKernel(gpusim::DeviceBuffer<double>& buf) : buf_(&buf) {}
  [[nodiscard]] const char* name() const override { return "fx-bounds-escape"; }
  void thread_phase(int /*phase*/, ThreadContext& t) override {
    GlobalView<double> v(*buf_, AccessPattern::Coalesced, t.block().counters());
    for (double& x : v.bulk_store(2 * t.tid(), 2)) x = static_cast<double>(t.tid());
  }

 private:
  gpusim::DeviceBuffer<double>* buf_;
};

// Broken: within one phase, thread t stores shared slot t (site 1) and
// slot tpb-1-t (site 2); threads t and tpb-1-t collide.  The site
// annotations split the two stores into separate affine families — fitted
// together they would need a non-affine summary and demote instead of
// producing the race finding.
class SharedRaceFixtureKernel final : public gpusim::Kernel {
 public:
  [[nodiscard]] const char* name() const override { return "fx-shared-race"; }
  void thread_phase(int /*phase*/, ThreadContext& t) override {
    const std::size_t n = t.block().threads();
    std::span<double> s = t.block().shared_array<double>(n);
    gpusim::annotate_site(1);
    t.shared_store(s, t.tid(), static_cast<double>(t.tid()));
    gpusim::annotate_site(2);
    t.shared_store(s, n - 1 - t.tid(), static_cast<double>(t.tid()));
  }
};

// Clean: w interleaved stores per thread at slot it*tpb + tid — the SELL
// staging pattern.  Interval separation fails (consecutive iterations of
// different threads interleave); the stride-congruence rule proves it.
class SharedStageCleanKernel final : public gpusim::Kernel {
 public:
  explicit SharedStageCleanKernel(std::size_t w) : w_(w) {}
  [[nodiscard]] const char* name() const override { return "fx-shared-stage-clean"; }
  void thread_phase(int /*phase*/, ThreadContext& t) override {
    const std::size_t n = t.block().threads();
    std::span<double> s = t.block().shared_array<double>(w_ * n);
    for (std::size_t it = 0; it < w_; ++it)
      t.shared_store(s, it * n + t.tid(), static_cast<double>(it));
  }

 private:
  std::size_t w_;
};

// Broken: the shared allocation size depends on the thread id — on real
// hardware a __shared__ declaration is per-block.  The fitted allocation
// summary contains `tid`, a definite alloc-divergence finding.
class AllocDivergentKernel final : public gpusim::Kernel {
 public:
  [[nodiscard]] const char* name() const override { return "fx-alloc-divergent"; }
  void thread_phase(int /*phase*/, ThreadContext& t) override {
    std::span<double> s = t.block().shared_array<double>(t.tid() + 1);
    s[0] = static_cast<double>(t.tid());  // raw touch: only the allocation is under test
  }
};

// Demoted: the store index XORs the thread id, which has no exact affine
// summary — the verifier must refuse to fit and demote the kernel to
// dynamic-only coverage rather than guess.  (tpb must be even so tid^1
// stays inside the block.)
class NonAffineKernel final : public gpusim::Kernel {
 public:
  explicit NonAffineKernel(gpusim::DeviceBuffer<double>& buf) : buf_(&buf) {}
  [[nodiscard]] const char* name() const override { return "fx-nonaffine"; }
  void thread_phase(int /*phase*/, ThreadContext& t) override {
    GlobalView<double> v(*buf_, AccessPattern::Coalesced, t.block().counters());
    const std::size_t i = (t.tid() ^ 1U) + t.block().bid() * t.block().threads();
    v.store(i, static_cast<double>(t.tid()));
  }

 private:
  gpusim::DeviceBuffer<double>* buf_;
};

void run_one(const std::string& name, const FixtureScale& s) {
  const auto tpb = static_cast<std::size_t>(s.tpb);
  const auto nb = static_cast<std::size_t>(s.nb);
  const auto w = static_cast<std::size_t>(s.w);
  KPM_REQUIRE(s.tpb >= 2 && s.tpb <= 128 && s.tpb % 2 == 0 && s.nb >= 1 && s.w >= 1,
              "verify fixture scale out of range (need even tpb in [2,128], nb,w >= 1)");
  Device device(gpusim::DeviceSpec::tesla_c2050());
  if (name == "fx-block-stride-clean") {
    auto buf = device.alloc<double>(nb * w, "fx-out");
    BlockStrideCleanKernel kernel(buf, w);
    (void)device.launch(geometry(s), kernel);
  } else if (name == "fx-thread-stride-clean") {
    auto buf = device.alloc<double>(nb * tpb, "fx-out");
    ThreadStrideCleanKernel kernel(buf);
    (void)device.launch(geometry(s), kernel);
  } else if (name == "fx-geom-race") {
    auto buf = device.alloc<double>(128 * (nb - 1) + tpb, "fx-out");
    GeomRaceKernel kernel(buf);
    (void)device.launch(geometry(s), kernel);
  } else if (name == "fx-global-overlap") {
    auto buf = device.alloc<double>(nb * w + 1, "fx-out");
    GlobalOverlapKernel kernel(buf, w);
    (void)device.launch(geometry(s), kernel);
  } else if (name == "fx-bounds-escape") {
    auto buf = device.alloc<double>(256, "fx-out");
    BoundsEscapeKernel kernel(buf);
    FixtureScale pinned = s;
    pinned.nb = 1;  // single block: the hazard under test is bounds, not overlap
    (void)device.launch(geometry(pinned), kernel);
  } else if (name == "fx-shared-race") {
    SharedRaceFixtureKernel kernel;
    (void)device.launch(geometry(s, tpb * sizeof(double)), kernel);
  } else if (name == "fx-shared-stage-clean") {
    SharedStageCleanKernel kernel(w);
    (void)device.launch(geometry(s, w * tpb * sizeof(double)), kernel);
  } else if (name == "fx-alloc-divergent") {
    AllocDivergentKernel kernel;
    (void)device.launch(geometry(s, tpb * sizeof(double)), kernel);
  } else if (name == "fx-nonaffine") {
    auto buf = device.alloc<double>(nb * tpb, "fx-out");
    NonAffineKernel kernel(buf);
    (void)device.launch(geometry(s), kernel);
  } else {
    KPM_REQUIRE(false, "unknown verify fixture '" + name + "'");
  }
}

}  // namespace

std::vector<std::string> fixture_names() {
  return {"fx-block-stride-clean", "fx-thread-stride-clean", "fx-geom-race",
          "fx-global-overlap",     "fx-bounds-escape",       "fx-shared-race",
          "fx-shared-stage-clean", "fx-alloc-divergent",     "fx-nonaffine"};
}

check::ScenarioParams run_fixture_workload(const std::string& name, const FixtureScale& scale) {
  run_one(name, scale);
  return {{"tpb", scale.tpb}, {"nb", scale.nb}, {"w", scale.w}};
}

std::vector<check::Finding> run_fixture_under_checker(const std::string& name) {
  check::Checker checker;
  ScopedVerify guard(checker);
  run_one(name, FixtureScale{});
  return checker.findings();
}

}  // namespace kpm::verify
