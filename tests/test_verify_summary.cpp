// Exact-rational polynomial layer and symbolic summary fitting: the
// verifier only ever trusts a summary that reproduces every recorded
// access exactly, so the algebra underneath must be exact, overflow-safe,
// and deterministic.
#include <gtest/gtest.h>

#include "verify/observer.hpp"
#include "verify/poly.hpp"
#include "verify/summary.hpp"

namespace {

using namespace kpm::verify;

TEST(VerifyPoly, RatNormalizesAndCompares) {
  const Rat a{6, 4};
  EXPECT_EQ(a, (Rat{3, 2}));
  EXPECT_EQ((Rat{-6, -4}), (Rat{3, 2}));
  EXPECT_EQ((Rat{6, -4}), (Rat{-3, 2}));
  EXPECT_TRUE(Rat{1} < (Rat{3, 2}));
  EXPECT_FALSE((Rat{3, 2}) < (Rat{3, 2}));
  EXPECT_EQ((Rat{1, 3} + Rat{1, 6}), (Rat{1, 2}));
  EXPECT_EQ((Rat{1, 2}) * Rat{4}, Rat{2});
  EXPECT_EQ(Rat{5} / Rat{2}, (Rat{5, 2}));
  EXPECT_EQ((Rat{7, 2}).str(), "7/2");
  EXPECT_EQ(Rat{42}.as_ll(), 42);
}

TEST(VerifyPoly, RatOverflowThrowsInsteadOfWrapping) {
  Rat big;  // 2^126, built field-wise (no 64-bit constructor path)
  big.num = 1;
  for (int i = 0; i < 126; ++i) big.num *= 2;
  big.den = 1;
  EXPECT_THROW((void)(big * big), RatOverflow);
  EXPECT_THROW((void)(big + big), RatOverflow);
}

TEST(VerifyPoly, AsLlRejectsNonIntegerAndOutOfRange) {
  EXPECT_THROW((void)(Rat{1, 2}).as_ll(), kpm::Error);
  Rat wide;
  wide.num = 1;
  for (int i = 0; i < 80; ++i) wide.num *= 2;  // integer, beyond 64-bit
  wide.den = 1;
  EXPECT_THROW((void)wide.as_ll(), kpm::Error);
}

TEST(VerifyPoly, SolveExactRecoversCoefficients) {
  // target = 3*x + 2 over rows x = 0..2; columns {1, x}.
  std::vector<std::vector<Rat>> rows{{Rat{1}, Rat{0}}, {Rat{1}, Rat{1}}, {Rat{1}, Rat{2}}};
  std::vector<Rat> target{Rat{2}, Rat{5}, Rat{8}};
  std::vector<Rat> coeffs;
  ASSERT_TRUE(solve_exact(rows, target, coeffs));
  EXPECT_EQ(coeffs[0], Rat{2});
  EXPECT_EQ(coeffs[1], Rat{3});
}

TEST(VerifyPoly, SolveExactPrefersEarlierColumnsWhenUnderdetermined) {
  // One row, two identical columns: the earlier column takes the weight.
  std::vector<std::vector<Rat>> rows{{Rat{1}, Rat{1}}};
  std::vector<Rat> target{Rat{7}};
  std::vector<Rat> coeffs;
  ASSERT_TRUE(solve_exact(rows, target, coeffs));
  EXPECT_EQ(coeffs[0], Rat{7});
  EXPECT_EQ(coeffs[1], Rat{0});
}

TEST(VerifyPoly, SolveExactDetectsInconsistency) {
  std::vector<std::vector<Rat>> rows{{Rat{1}}, {Rat{1}}};
  std::vector<Rat> target{Rat{1}, Rat{2}};
  std::vector<Rat> coeffs;
  EXPECT_FALSE(solve_exact(rows, target, coeffs));
}

TEST(VerifyPoly, SubstAndEval) {
  VarTable table;
  const int x = table.intern("x");
  const int y = table.intern("y");
  Poly p = Rat{2} * Poly::var(x) * Poly::var(y) + Poly::constant(Rat{1});
  p = p.subst(y, Rat{3} * Poly::var(x));  // 6*x^2 + 1
  std::vector<Rat> values(table.size(), Rat{0});
  values[static_cast<std::size_t>(x)] = Rat{2};
  EXPECT_EQ(p.eval(values), Rat{25});
  EXPECT_EQ(p.degree_in(x), 2);
}

// --- summarize() on synthetic pilot recordings. ---

// One launch whose only site writes offset = stride * (tpb*bid + tid).
kpm::verify::LaunchRecord affine_launch(long long tpb, long long nb, long long stride) {
  LaunchRecord launch;
  launch.kernel = "synthetic";
  launch.tpb = tpb;
  launch.nb = nb;
  launch.buffer_bytes["out"] = stride * tpb * nb;
  for (long long bid = 0; bid < nb; ++bid)
    for (long long tid = 0; tid < tpb; ++tid) {
      AccessEvent ev;
      ev.bid = bid;
      ev.tid = tid;
      ev.space = Space::Global;
      ev.op = Op::Write;
      ev.buffer = "out";
      ev.offset = stride * (tpb * bid + tid);
      ev.bytes = stride;
      launch.events.push_back(ev);
    }
  return launch;
}

TEST(VerifySummary, FitsAffineFamilyAcrossGeometries) {
  // Pilot geometries vary tpb and nb; need enough general position to pin
  // every product term of the launch basis.
  const long long stride = 8;
  std::vector<RunRecord> records;
  std::vector<std::vector<std::pair<std::string, long long>>> params;
  const long long tpbs[] = {2, 3, 4, 5, 6, 7, 8};
  const long long nbs[] = {3, 5, 2, 7, 4, 6, 8};
  for (int i = 0; i < 7; ++i) {
    RunRecord rec;
    rec.launches.push_back(affine_launch(tpbs[i], nbs[i], stride));
    records.push_back(std::move(rec));
    params.push_back({{"tpb", tpbs[i]}, {"nb", nbs[i]}});
  }
  UnitVars vars = make_unit_vars({"tpb", "nb"});
  std::vector<RunSample> fit, holdout;
  for (std::size_t i = 0; i < records.size(); ++i)
    (i < 5 ? fit : holdout).push_back(RunSample{params[i], &records[i]});

  const auto classes = summarize(vars, fit, holdout);
  ASSERT_EQ(classes.size(), 1u);
  const ClassSummary& cls = classes.front();
  EXPECT_TRUE(cls.demotions.empty()) << cls.demotions.front();
  EXPECT_TRUE(cls.unsized_buffers.empty());
  ASSERT_EQ(cls.sites.size(), 1u);

  // offset(tid=1, bid=0) - offset(0, 0) == stride for every geometry.
  std::vector<Rat> at(vars.table.size(), Rat{0});
  at[static_cast<std::size_t>(vars.table.find("tpb"))] = Rat{16};
  at[static_cast<std::size_t>(vars.table.find("nb"))] = Rat{4};
  std::vector<Rat> shifted = at;
  shifted[static_cast<std::size_t>(vars.tid)] = Rat{1};
  EXPECT_EQ(cls.sites.front().offset.eval(shifted) - cls.sites.front().offset.eval(at),
            Rat{stride});
  EXPECT_EQ(cls.sites.front().bytes.eval(at), Rat{stride});
}

TEST(VerifySummary, DataDependentOffsetsDemoteInsteadOfFitting) {
  std::vector<RunRecord> records;
  std::vector<std::vector<std::pair<std::string, long long>>> params;
  const long long tpbs[] = {2, 3, 4, 5, 6, 7, 8};
  const long long nbs[] = {3, 5, 2, 7, 4, 6, 8};
  for (int i = 0; i < 7; ++i) {
    RunRecord rec;
    LaunchRecord launch = affine_launch(tpbs[i], nbs[i], 8);
    // Scramble offsets with a value no affine form reproduces.
    for (auto& ev : launch.events)
      ev.offset = (ev.offset * 2654435761LL) % 4093;
    rec.launches.push_back(std::move(launch));
    records.push_back(std::move(rec));
    params.push_back({{"tpb", tpbs[i]}, {"nb", nbs[i]}});
  }
  UnitVars vars = make_unit_vars({"tpb", "nb"});
  std::vector<RunSample> fit, holdout;
  for (std::size_t i = 0; i < records.size(); ++i)
    (i < 5 ? fit : holdout).push_back(RunSample{params[i], &records[i]});

  const auto classes = summarize(vars, fit, holdout);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_TRUE(classes.front().sites.empty());
  ASSERT_FALSE(classes.front().demotions.empty());
}

TEST(VerifySummary, VerdictsDependOnlyOnThePilotSetNotTheSplit) {
  // The same seven runs passed with every rotation of the fit/holdout
  // boundary must produce identical summaries.
  const long long stride = 16;
  std::vector<RunRecord> records;
  std::vector<std::vector<std::pair<std::string, long long>>> params;
  const long long tpbs[] = {2, 3, 4, 5, 6, 7, 8};
  const long long nbs[] = {3, 5, 2, 7, 4, 6, 8};
  for (int i = 0; i < 7; ++i) {
    RunRecord rec;
    rec.launches.push_back(affine_launch(tpbs[i], nbs[i], stride));
    records.push_back(std::move(rec));
    params.push_back({{"tpb", tpbs[i]}, {"nb", nbs[i]}});
  }
  std::vector<std::string> site_strs;
  for (int rot = 0; rot < 7; ++rot) {
    UnitVars vars = make_unit_vars({"tpb", "nb"});
    std::vector<RunSample> fit, holdout;
    for (int i = 0; i < 7; ++i) {
      const int idx = (i + rot) % 7;
      (i < 5 ? fit : holdout).push_back(RunSample{params[idx], &records[idx]});
    }
    const auto classes = summarize(vars, fit, holdout);
    ASSERT_EQ(classes.size(), 1u);
    ASSERT_EQ(classes.front().sites.size(), 1u) << "rotation " << rot;
    site_strs.push_back(classes.front().sites.front().offset.str(vars.table));
  }
  for (const auto& s : site_strs) EXPECT_EQ(s, site_strs.front());
}

}  // namespace
