// Kubo-Greenwood conductivity sigma(E_F) of a 2D lattice via 2D KPM
// moments — clean vs Anderson-disordered.
//
// The clean square lattice conducts throughout its band; with on-site
// disorder the conductivity collapses, strongest near the band edges
// (precursor of localization).  Everything runs through the public API:
// current operator -> mu_nm -> sigma(E).
//
//   $ kubo_conductivity [--edge=24] [--disorder=2.0]
#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/kpm.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("kubo_conductivity", "sigma(E_F) of the square lattice, clean vs disordered");
  const auto* edge = cli.add_int("edge", 24, "square lattice edge");
  const auto* n = cli.add_int("moments", 32, "Chebyshev moments per index");
  const auto* w = cli.add_double("disorder", 4.0, "Anderson disorder width");
  const auto* r = cli.add_int("R", 24, "random vectors");
  const auto* csv = cli.add_string("csv", "kubo_conductivity.csv", "output CSV");
  cli.parse(argc, argv);

  const auto l = static_cast<std::size_t>(*edge);
  const auto lat = lattice::HypercubicLattice::square(l, l);
  core::MomentParams params;
  params.num_moments = static_cast<std::size_t>(*n);
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = 2;

  std::printf("lattice: %s (D = %zu), N = %zu, %zu instances, disorder W = %.1f\n\n",
              lat.describe().c_str(), lat.sites(), params.num_moments, params.instances(), *w);

  auto run = [&](double width) {
    const auto onsite =
        width > 0.0 ? lattice::anderson_disorder(width, 0xD15C0) : lattice::OnsiteFunction{};
    const auto h = lattice::build_tight_binding_crs(lat, {}, onsite);
    linalg::MatrixOperator op(h);
    const auto transform = linalg::make_spectral_transform(op);
    const auto ht = linalg::rescale(h, transform);
    const auto a = lattice::build_current_operator_crs(lat, 0);
    linalg::MatrixOperator op_t(ht), op_a(a);
    const auto mu = core::conductivity_moments(op_t, op_a, params);
    return core::reconstruct_conductivity(mu, transform, {.points = 41});
  };

  const auto clean = run(0.0);
  const auto dirty = run(*w);

  Table table({"E_F", "sigma clean", "sigma disordered", "ratio"});
  for (std::size_t j = 0; j < clean.energy.size(); ++j) {
    const double ratio = clean.sigma[j] > 1e-9 ? dirty.sigma[j] / clean.sigma[j] : 0.0;
    table.add_row({strprintf("%.3f", clean.energy[j]), strprintf("%.5f", clean.sigma[j]),
                   strprintf("%.5f", dirty.sigma[j]), strprintf("%.2f", ratio)});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(*csv);

  const double peak_clean = *std::max_element(clean.sigma.begin(), clean.sigma.end());
  const double peak_dirty = *std::max_element(dirty.sigma.begin(), dirty.sigma.end());
  std::printf("peak sigma: clean %.4f -> W=%.1f: %.4f (%.0f%% suppression)\n", peak_clean, *w,
              peak_dirty, 100.0 * (1.0 - peak_dirty / peak_clean));
  std::printf("series written to %s\n", csv->c_str());
  return 0;
}
