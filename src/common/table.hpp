// Plain-text table and CSV emission for the bench harness.
//
// Every fig*/ablation_* bench builds one `Table` with the same rows the
// paper's figure plots, prints it aligned to stdout, and writes a CSV file
// next to the binary so the series can be re-plotted.
#pragma once

#include <string>
#include <vector>

namespace kpm {

/// A simple column-aligned text table with CSV export.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each value with printf-style "%g"/string mix.
  /// Cells are already strings; use fmt helpers in callers.

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }

  /// Renders the table with aligned columns and a header separator.
  [[nodiscard]] std::string to_text() const;

  /// Renders the table as RFC-4180-ish CSV (cells containing commas or
  /// quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Writes the CSV rendering to `path`.  Throws kpm::Error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace kpm
