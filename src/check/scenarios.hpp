// kpmcheck scenarios: every production GPU workload run under the Checker.
//
// A scenario builds a small representative problem (tight-binding cube,
// magnetic square lattice, ...) and runs one of the repo's GPU engines
// with hazard analysis installed.  Production kernels must come out clean;
// `kpmcli check --all` and test_check_clean gate on exactly that.
#pragma once

#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/finding.hpp"

namespace kpm::check {

/// Result of one checked scenario run.
struct ScenarioReport {
  std::string name;
  std::vector<Finding> findings;
  CheckStats stats;
  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

/// Names accepted by run_scenario, in execution order: the moment engines
/// (block/thread/paired/chunked/multigpu/hermitian), LDOS, conductivity,
/// and the staged SELL-C-sigma SpMMV kernel ("spmmv-sell").
[[nodiscard]] std::vector<std::string> scenario_names();

/// Runs the named workload under a fresh Checker.  Throws kpm::Error for
/// unknown names.
[[nodiscard]] ScenarioReport run_scenario(const std::string& name);

/// Runs every scenario (scenario_names() order).
[[nodiscard]] std::vector<ScenarioReport> run_all_scenarios();

}  // namespace kpm::check
