#include "cpumodel/cpu_spec.hpp"

#include "common/error.hpp"

namespace kpm::cpumodel {

void CpuSpec::validate() const {
  KPM_REQUIRE(clock_hz > 0, "CpuSpec: clock_hz must be positive");
  KPM_REQUIRE(flops_per_cycle > 0, "CpuSpec: flops_per_cycle must be positive");
  KPM_REQUIRE(dram_bandwidth > 0, "CpuSpec: dram_bandwidth must be positive");
  KPM_REQUIRE(cores >= 1, "CpuSpec: cores must be positive");
  KPM_REQUIRE(shared_cache_saturated_bandwidth > 0 && dram_saturated_bandwidth > 0,
              "CpuSpec: saturated bandwidths must be positive");
  std::size_t prev = 0;
  for (const auto& level : caches) {
    KPM_REQUIRE(level.capacity_bytes > prev, "CpuSpec: cache levels must grow monotonically");
    KPM_REQUIRE(level.bandwidth > 0, "CpuSpec: cache bandwidth must be positive");
    prev = level.capacity_bytes;
  }
}

CpuSpec CpuSpec::core_i7_930() {
  CpuSpec s;
  s.name = "Intel Core i7-930 @ 2.80 GHz (1 thread, simulated)";
  s.clock_hz = 2.8e9;
  // Scalar/SSE2 double-precision multiply-add chains sustained by gcc -O3
  // on a dot-product-shaped loop: ~2 flops/cycle.
  s.flops_per_cycle = 2.0;
  s.caches = {
      {"L1d", 32 * 1024, 40.0e9},
      {"L2", 256 * 1024, 28.0e9},
      {"L3", 8 * 1024 * 1024, 18.0e9},
  };
  s.dram_bandwidth = 9.5e9;  // triple-channel DDR3-1066, one thread
  s.cores = 4;               // Bloomfield: 4 cores / 8 threads
  s.private_cache_levels = 2;
  s.shared_cache_saturated_bandwidth = 36.0e9;
  s.dram_saturated_bandwidth = 17.0e9;  // all-core triple-channel ceiling
  return s;
}

}  // namespace kpm::cpumodel
