#include "obs/report.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace kpm::obs {

namespace {

/// Unsigned-integer JSON number (all histogram fields are exact integers).
std::string json_u64(std::uint64_t v) { return std::to_string(v); }

void append_counters(std::ostringstream& os, const CounterSet& counters,
                     const std::string& indent) {
  os << "{\n";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const Counter c = static_cast<Counter>(i);
    os << indent << "  \"" << to_string(c) << "\": " << json_number(counters.get(c));
    os << (i + 1 < kCounterCount ? ",\n" : "\n");
  }
  os << indent << "}";
}

void append_histogram(std::ostringstream& os, Histo id, const Histogram& h,
                      const std::string& indent) {
  os << "{\"unit\": \"" << unit_of(id) << "\", \"deterministic\": "
     << (is_deterministic(id) ? "true" : "false") << ", \"count\": " << json_u64(h.count())
     << ", \"sum\": " << json_u64(h.sum()) << ", \"min\": " << json_u64(h.min())
     << ", \"max\": " << json_u64(h.max()) << ",\n"
     << indent << " \"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.bucket_count(b) == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"ge\": " << json_u64(Histogram::bucket_floor(b))
       << ", \"lt\": " << json_u64(Histogram::bucket_floor(b + 1))
       << ", \"count\": " << json_u64(h.bucket_count(b)) << "}";
  }
  os << "]}";
}

/// Emits `"histograms": {...}` for every non-empty histogram that passes
/// `filter`; returns false (emitting nothing) when none qualify.
template <typename Filter>
bool append_histograms(std::ostringstream& os, const HistogramSet& histograms,
                       const std::string& indent, Filter&& filter) {
  bool any = false;
  for (std::size_t i = 0; i < kHistoCount; ++i) {
    const Histo id = static_cast<Histo>(i);
    if (histograms[id].empty() || !filter(id)) continue;
    if (!any) os << "\"histograms\": {\n";
    if (any) os << ",\n";
    any = true;
    os << indent << "  \"" << to_string(id) << "\": ";
    append_histogram(os, id, histograms[id], indent + "  ");
  }
  if (any) os << "\n" << indent << "}";
  return any;
}

/// Emits `"histogram_series": [...]` with one `{point, histograms}` object
/// per sweep point; returns false (emitting nothing) when the series is
/// empty.  Points whose shard has no histogram passing `filter` still emit
/// their label, so the sweep structure is visible (and fingerprinted).
template <typename Filter>
bool append_histogram_series(std::ostringstream& os,
                             const std::vector<HistogramSeriesPoint>& series,
                             const std::string& indent, Filter&& filter) {
  if (series.empty()) return false;
  os << "\"histogram_series\": [";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n" << indent << "  {\"point\": \"" << json_escape(series[i].label) << "\"";
    std::ostringstream hos;
    if (append_histograms(hos, series[i].histograms, indent + "   ", filter))
      os << ",\n" << indent << "   " << hos.str();
    os << "}";
  }
  os << "\n" << indent << "]";
  return true;
}

void append_timeline_events(std::ostringstream& os, const DeviceTimelineRecord& timeline,
                            const std::string& indent) {
  os << "[";
  for (std::size_t e = 0; e < timeline.events.size(); ++e) {
    const TimelineEventRecord& ev = timeline.events[e];
    if (e > 0) os << ",";
    os << "\n"
       << indent << "{\"kind\": \"" << ev.kind << "\", \"label\": \"" << json_escape(ev.label)
       << "\", \"stream\": " << ev.stream << ", \"start_s\": " << json_number(ev.start_seconds)
       << ", \"end_s\": " << json_number(ev.end_seconds)
       << ", \"bytes\": " << json_number(ev.bytes) << ", \"flops\": " << json_number(ev.flops)
       << ", \"occupancy\": " << json_number(ev.occupancy) << "}";
  }
  os << (timeline.events.empty() ? "]" : "\n" + indent.substr(2) + "]");
}

}  // namespace

double Report::wall_seconds() const noexcept {
  double total = 0.0;
  for (const SpanRecord& span : trace.spans()) {
    if (span.parent == kNoParent && !span.modeled) total += span.seconds;
  }
  return total;
}

std::string to_json(const Report& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"" << kReportSchema << "\",\n";
  os << "  \"label\": \"" << json_escape(report.label) << "\",\n";
  os << "  \"wall_seconds\": " << json_number(report.wall_seconds()) << ",\n";
  os << "  \"counters\": ";
  append_counters(os, report.counters, "  ");
  os << ",\n";
  os << "  \"spans\": [\n";
  const auto& spans = report.trace.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    const long long parent =
        span.parent == kNoParent ? -1 : static_cast<long long>(span.parent);
    os << "    {\"name\": \"" << json_escape(span.name) << "\", \"parent\": " << parent
       << ", \"depth\": " << span.depth << ", \"start_s\": " << json_number(span.start_seconds)
       << ", \"seconds\": " << json_number(span.seconds)
       << ", \"modeled\": " << (span.modeled ? "true" : "false");
    if (span.flops != 0.0 || span.bytes_streamed != 0.0) {
      os << ", \"flops\": " << json_number(span.flops)
         << ", \"bytes_streamed\": " << json_number(span.bytes_streamed);
    }
    os << "}";
    os << (i + 1 < spans.size() ? ",\n" : "\n");
  }
  os << "  ]";
  if (!report.histograms.empty()) {
    std::ostringstream hos;
    if (append_histograms(hos, report.histograms, "  ", [](Histo) { return true; }))
      os << ",\n  " << hos.str();
  }
  {
    std::ostringstream sos;
    if (append_histogram_series(sos, report.histogram_series, "  ",
                                [](Histo) { return true; }))
      os << ",\n  " << sos.str();
  }
  if (!report.timelines.empty()) {
    os << ",\n  \"timelines\": [\n";
    for (std::size_t t = 0; t < report.timelines.size(); ++t) {
      const DeviceTimelineRecord& tl = report.timelines[t];
      double kernel_s = 0.0, transfer_s = 0.0, alloc_s = 0.0;
      for (const TimelineEventRecord& ev : tl.events) {
        if (ev.kind == "kernel" || ev.kind == "memset") kernel_s += ev.seconds();
        if (ev.kind == "h2d" || ev.kind == "d2h") transfer_s += ev.seconds();
        if (ev.kind == "alloc") alloc_s += ev.seconds();
      }
      os << "    {\"label\": \"" << json_escape(tl.label) << "\", \"device\": \""
         << json_escape(tl.device) << "\", \"streams\": " << tl.streams
         << ", \"events\": " << tl.events.size()
         << ", \"kernel_seconds\": " << json_number(kernel_s)
         << ", \"transfer_seconds\": " << json_number(transfer_s)
         << ", \"alloc_seconds\": " << json_number(alloc_s)
         << ", \"critical_path_seconds\": " << json_number(tl.critical_path_seconds) << "}";
      os << (t + 1 < report.timelines.size() ? ",\n" : "\n");
    }
    os << "  ]";
  }
  if (!report.sections.empty()) {
    os << ",\n  \"sections\": {\n";
    for (std::size_t i = 0; i < report.sections.size(); ++i) {
      const ReportSection& section = report.sections[i];
      os << "    \"" << json_escape(section.name) << "\": " << section.body;
      os << (i + 1 < report.sections.size() ? ",\n" : "\n");
    }
    os << "  }";
  }
  os << "\n}\n";
  return os.str();
}

void write_json(const Report& report, const std::string& path) {
  std::ofstream out(path);
  KPM_REQUIRE(out.good(), "cannot open metrics file for writing: " + path);
  out << to_json(report);
  out.flush();
  KPM_REQUIRE(out.good(), "failed writing metrics file: " + path);
}

kpm::Table counters_to_table(const CounterSet& counters) {
  kpm::Table table({"counter", "value"});
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const Counter c = static_cast<Counter>(i);
    table.add_row({to_string(c), json_number(counters.get(c))});
  }
  return table;
}

kpm::Table trace_to_table(const Trace& trace) {
  kpm::Table table({"span", "seconds", "kind"});
  for (const SpanRecord& span : trace.spans()) {
    std::string name(2 * span.depth, ' ');
    name += span.name;
    table.add_row({std::move(name), strprintf("%.6f", span.seconds),
                   span.modeled ? "modeled" : "measured"});
  }
  return table;
}

kpm::Table histograms_to_table(const HistogramSet& histograms) {
  kpm::Table table({"histogram", "unit", "count", "sum", "min", "max"});
  for (std::size_t i = 0; i < kHistoCount; ++i) {
    const Histo id = static_cast<Histo>(i);
    const Histogram& h = histograms[id];
    if (h.empty()) continue;
    table.add_row({to_string(id), unit_of(id), json_u64(h.count()), json_u64(h.sum()),
                   json_u64(h.min()), json_u64(h.max())});
  }
  return table;
}

std::string deterministic_fingerprint(const Report& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"label\": \"" << json_escape(report.label) << "\",\n";
  os << "  \"counters\": ";
  append_counters(os, report.counters, "  ");
  os << ",\n  ";
  if (append_histograms(os, report.histograms, "  ",
                        [](Histo id) { return is_deterministic(id); }))
    os << ",\n  ";
  if (append_histogram_series(os, report.histogram_series, "  ",
                              [](Histo id) { return is_deterministic(id); }))
    os << ",\n  ";
  // Span structure: names, nesting and modeled durations are deterministic;
  // measured wall times are not and are omitted.
  os << "\"spans\": [";
  const auto& spans = report.trace.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    const long long parent =
        span.parent == kNoParent ? -1 : static_cast<long long>(span.parent);
    if (i > 0) os << ",";
    os << "\n    {\"name\": \"" << json_escape(span.name) << "\", \"parent\": " << parent
       << ", \"modeled\": " << (span.modeled ? "true" : "false");
    if (span.modeled)
      os << ", \"start_s\": " << json_number(span.start_seconds)
         << ", \"seconds\": " << json_number(span.seconds);
    os << "}";
  }
  os << (spans.empty() ? "]" : "\n  ]");
  if (!report.timelines.empty()) {
    os << ",\n  \"timelines\": [";
    for (std::size_t t = 0; t < report.timelines.size(); ++t) {
      const DeviceTimelineRecord& tl = report.timelines[t];
      if (t > 0) os << ",";
      os << "\n    {\"label\": \"" << json_escape(tl.label) << "\", \"device\": \""
         << json_escape(tl.device) << "\", \"streams\": " << tl.streams
         << ", \"critical_path_seconds\": " << json_number(tl.critical_path_seconds)
         << ",\n     \"events\": ";
      append_timeline_events(os, tl, "       ");
      os << "}";
    }
    os << "\n  ]";
  }
  // Sections are contributed by subsystems whose sub-schemas are defined to
  // be deterministic (kpm.check/1 findings, kpm.serve/1 responses), so they
  // participate in the fingerprint verbatim.
  if (!report.sections.empty()) {
    os << ",\n  \"sections\": {\n";
    for (std::size_t i = 0; i < report.sections.size(); ++i) {
      const ReportSection& section = report.sections[i];
      os << "    \"" << json_escape(section.name) << "\": " << section.body;
      os << (i + 1 < report.sections.size() ? ",\n" : "\n");
    }
    os << "  }";
  }
  os << "\n}\n";
  return os.str();
}

HistogramSet histograms_from_json(const JsonValue& report_doc) {
  HistogramSet set;
  const JsonValue* histograms = report_doc.find("histograms");
  if (histograms == nullptr) return set;
  KPM_REQUIRE(histograms->kind == JsonValue::Kind::Object,
              "histograms_from_json: \"histograms\" is not an object");
  for (const auto& [name, value] : histograms->object) {
    const Histo id = histo_from_name(name);
    Histogram h;
    const auto& buckets = value.at("buckets");
    for (const JsonValue& bucket : buckets.array) {
      const auto ge = static_cast<std::uint64_t>(bucket.at("ge").number);
      const auto count = static_cast<std::uint64_t>(bucket.at("count").number);
      KPM_REQUIRE(Histogram::bucket_floor(Histogram::bucket_of(ge)) == ge,
                  "histograms_from_json: bucket bound is not a bucket floor");
      h.restore_bucket(Histogram::bucket_of(ge), count);
    }
    h.restore_totals(static_cast<std::uint64_t>(value.at("count").number),
                     static_cast<std::uint64_t>(value.at("sum").number),
                     static_cast<std::uint64_t>(value.at("min").number),
                     static_cast<std::uint64_t>(value.at("max").number));
    set.get(id) = h;
  }
  return set;
}

}  // namespace kpm::obs
