#include "gpusim/timeline_report.hpp"

#include "common/table.hpp"
#include "common/units.hpp"

namespace gpusim {

std::string timeline_to_text(const Device& device) {
  kpm::Table table({"stream", "start", "end", "kind", "label", "detail"});
  for (const auto& ev : device.timeline()) {
    std::string detail;
    switch (ev.kind) {
      case TimelineEvent::Kind::KernelLaunch:
        detail = std::string(ev.kernel_stats.bound()) + "-bound, occupancy " +
                 kpm::strprintf("%.0f%%", 100.0 * ev.kernel_stats.occupancy);
        break;
      case TimelineEvent::Kind::TransferToDevice:
      case TimelineEvent::Kind::TransferToHost:
        detail = kpm::format_bytes(ev.bytes);
        break;
      case TimelineEvent::Kind::Allocation:
      case TimelineEvent::Kind::Memset:
        detail = kpm::format_bytes(ev.bytes);
        break;
    }
    table.add_row({std::to_string(ev.stream), kpm::format_seconds(ev.start_seconds),
                   kpm::format_seconds(ev.end_seconds), to_string(ev.kind), ev.label,
                   detail});
  }
  return table.to_text();
}

std::string timeline_summary_line(const Device& device) {
  const auto s = device.summarize_timeline();
  const double overlap =
      s.total_seconds > 0.0 ? 100.0 * (1.0 - s.critical_path_seconds / s.total_seconds) : 0.0;
  return kpm::strprintf("%zu events, %s critical path (%s serialized), %.1f%% overlapped",
                        device.timeline().size(),
                        kpm::format_seconds(s.critical_path_seconds).c_str(),
                        kpm::format_seconds(s.total_seconds).c_str(), overlap);
}

}  // namespace gpusim
