// Functional-execution tests of the gpusim kernel model: grids, blocks,
// phases (barrier semantics), shared memory, thread locals, reductions.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "gpusim/device.hpp"
#include "gpusim/reduce.hpp"
#include "gpusim/view.hpp"

namespace {

using namespace gpusim;

/// Classic CUDA hello world: C[i] = A[i] + B[i] (paper Fig. 2(b)).
class VectorAddKernel final : public Kernel {
 public:
  VectorAddKernel(std::size_t n, const DeviceBuffer<double>& a, const DeviceBuffer<double>& b,
                  DeviceBuffer<double>& c)
      : n_(n), a_(&a), b_(&b), c_(&c) {}

  const char* name() const override { return "vector_add"; }

  void thread_phase(int, ThreadContext& t) override {
    const std::size_t i = t.global_tid();
    if (i >= n_) return;
    GlobalView<double> a(*a_, AccessPattern::Coalesced, t.block().counters());
    GlobalView<double> b(*b_, AccessPattern::Coalesced, t.block().counters());
    GlobalView<double> c(*c_, AccessPattern::Coalesced, t.block().counters());
    c.store(i, a.load(i) + b.load(i));
    t.flop(1);
  }

 private:
  std::size_t n_;
  const DeviceBuffer<double>* a_;
  const DeviceBuffer<double>* b_;
  DeviceBuffer<double>* c_;
};

TEST(GpusimExec, VectorAddProducesCorrectResult) {
  Device dev(DeviceSpec::tesla_c2050());
  const std::size_t n = 1000;
  std::vector<double> ha(n), hb(n), hc(n);
  for (std::size_t i = 0; i < n; ++i) {
    ha[i] = static_cast<double>(i);
    hb[i] = 2.0 * static_cast<double>(i);
  }
  auto a = dev.alloc<double>(n);
  auto b = dev.alloc<double>(n);
  auto c = dev.alloc<double>(n);
  dev.copy_to_device<double>(ha, a);
  dev.copy_to_device<double>(hb, b);

  VectorAddKernel k(n, a, b, c);
  dev.launch(ExecConfig::linear(n, 128), k);
  dev.copy_to_host<double>(c, hc);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(hc[i], 3.0 * static_cast<double>(i));
}

/// Two-phase kernel exercising barrier semantics: phase 0 writes shared,
/// phase 1 reads what *other* threads wrote.
class PhaseExchangeKernel final : public Kernel {
 public:
  explicit PhaseExchangeKernel(DeviceBuffer<double>& out) : out_(&out) {}
  const char* name() const override { return "phase_exchange"; }
  int phase_count() const override { return 2; }

  void thread_phase(int phase, ThreadContext& t) override {
    auto shared = t.block().shared_array<double>(t.block().threads());
    const std::size_t tid = t.tid();
    if (phase == 0) {
      shared[tid] = static_cast<double>(tid);
    } else {
      // Read the partner thread's value — only correct if the barrier held.
      const std::size_t partner = (tid + 1) % t.block().threads();
      GlobalView<double> out(*out_, AccessPattern::Coalesced, t.block().counters());
      out.store(t.global_tid(), shared[partner]);
    }
  }

 private:
  DeviceBuffer<double>* out_;
};

TEST(GpusimExec, PhasesProvideBarrierSemantics) {
  Device dev(DeviceSpec::tesla_c2050());
  const std::uint32_t threads = 64;
  auto out = dev.alloc<double>(threads);
  PhaseExchangeKernel k(out);
  ExecConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{threads};
  cfg.shared_bytes = threads * sizeof(double);
  dev.launch(cfg, k);
  std::vector<double> host(threads);
  dev.copy_to_host<double>(out, host);
  for (std::size_t i = 0; i < threads; ++i)
    EXPECT_DOUBLE_EQ(host[i], static_cast<double>((i + 1) % threads));
}

/// Kernel using persistent thread locals across phases.
class LocalPersistKernel final : public Kernel {
 public:
  explicit LocalPersistKernel(DeviceBuffer<double>& out) : out_(&out) {}
  const char* name() const override { return "local_persist"; }
  int phase_count() const override { return 3; }

  void thread_phase(int phase, ThreadContext& t) override {
    auto local = t.local_array<double>(1);
    if (phase == 0)
      local[0] = static_cast<double>(t.tid());
    else if (phase == 1)
      local[0] *= 2.0;
    else {
      GlobalView<double> out(*out_, AccessPattern::Coalesced, t.block().counters());
      out.store(t.global_tid(), local[0]);
    }
  }

 private:
  DeviceBuffer<double>* out_;
};

TEST(GpusimExec, ThreadLocalsPersistAcrossPhases) {
  Device dev(DeviceSpec::tesla_c2050());
  auto out = dev.alloc<double>(32);
  LocalPersistKernel k(out);
  ExecConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  dev.launch(cfg, k);
  std::vector<double> host(32);
  dev.copy_to_host<double>(out, host);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(host[i], 2.0 * static_cast<double>(i));
}

TEST(GpusimExec, SharedMemoryOverflowThrows) {
  Device dev(DeviceSpec::tesla_c2050());
  auto out = dev.alloc<double>(1);

  class Hungry final : public Kernel {
   public:
    const char* name() const override { return "hungry"; }
    void block_phase(int, BlockContext& b) override { b.shared_array<double>(1 << 20); }
  } k;

  ExecConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{32};
  cfg.shared_bytes = 256;  // far less than 8 MiB requested inside
  EXPECT_THROW(dev.launch(cfg, k), kpm::Error);
}

TEST(GpusimExec, BlockReduceSumsAndMeters) {
  Device dev(DeviceSpec::tesla_c2050());
  auto out = dev.alloc<double>(1);

  class ReduceKernel final : public Kernel {
   public:
    explicit ReduceKernel(DeviceBuffer<double>& out) : out_(&out) {}
    const char* name() const override { return "reduce"; }
    void block_phase(int, BlockContext& b) override {
      auto partials = b.shared_array<double>(b.threads());
      for (std::size_t t = 0; t < b.threads(); ++t) partials[t] = static_cast<double>(t + 1);
      const double total = block_reduce_sum(b, partials);
      GlobalView<double> out(*out_, AccessPattern::Coalesced, b.counters());
      out.store(0, total);
    }

   private:
    DeviceBuffer<double>* out_;
  } k(out);

  ExecConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{64};
  cfg.shared_bytes = 64 * sizeof(double);
  const auto stats = dev.launch(cfg, k);
  std::vector<double> host(1);
  dev.copy_to_host<double>(out, host);
  EXPECT_DOUBLE_EQ(host[0], 64.0 * 65.0 / 2.0);
  EXPECT_GT(stats.seconds, 0.0);
  // The reduction must have metered shared traffic and barriers.
  const auto& ev = dev.timeline().back();
  // timeline: allocs, launch, d2h — find the kernel event.
  bool found = false;
  for (const auto& e : dev.timeline())
    if (e.kind == TimelineEvent::Kind::KernelLaunch) {
      EXPECT_GT(e.counters.shared_bytes, 0.0);
      EXPECT_GT(e.counters.barriers, 0.0);
      found = true;
    }
  EXPECT_TRUE(found);
  (void)ev;
}

TEST(GpusimExec, MultiDimGridCoversAllBlocks) {
  Device dev(DeviceSpec::tesla_c2050());
  const std::size_t nx = 4, ny = 3;
  auto out = dev.alloc<double>(nx * ny);

  class GridStamp final : public Kernel {
   public:
    GridStamp(std::size_t nx, DeviceBuffer<double>& out) : nx_(nx), out_(&out) {}
    const char* name() const override { return "grid_stamp"; }
    void block_phase(int, BlockContext& b) override {
      GlobalView<double> out(*out_, AccessPattern::Coalesced, b.counters());
      const auto idx = b.block_idx();
      out.store(idx.y * nx_ + idx.x, static_cast<double>(b.bid()));
    }

   private:
    std::size_t nx_;
    DeviceBuffer<double>* out_;
  } k(nx, out);

  ExecConfig cfg;
  cfg.grid = Dim3{static_cast<std::uint32_t>(nx), static_cast<std::uint32_t>(ny)};
  cfg.block = Dim3{32};
  dev.launch(cfg, k);
  std::vector<double> host(nx * ny);
  dev.copy_to_host<double>(out, host);
  for (std::size_t i = 0; i < nx * ny; ++i) EXPECT_DOUBLE_EQ(host[i], static_cast<double>(i));
}

TEST(GpusimExec, KernelWithoutOverridesThrows) {
  Device dev(DeviceSpec::tesla_c2050());
  class Empty final : public Kernel {
    const char* name() const override { return "empty"; }
  } k;
  ExecConfig cfg;
  cfg.grid = Dim3{1};
  cfg.block = Dim3{1};
  EXPECT_THROW(dev.launch(cfg, k), kpm::Error);
}

TEST(GpusimExec, ExecConfigLinearRoundsUp) {
  const auto cfg = ExecConfig::linear(1000, 128);
  EXPECT_EQ(cfg.grid.x, 8u);
  EXPECT_EQ(cfg.block.x, 128u);
  EXPECT_EQ(cfg.total_threads(), 1024u);
  EXPECT_EQ(cfg.describe(), "<<<8, 128>>>");
}

}  // namespace
