// DoS reconstruction from Chebyshev moments (paper Eq. 6).
//
//   rho(x) = 1 / (pi sqrt(1 - x^2)) * [ g_0 mu_0 + 2 sum_{n>=1} g_n mu_n T_n(x) ]
//
// on the Chebyshev interval; mapped back to physical energies with the
// spectral transform, rho(omega) = rho(x(omega)) / a-.
#pragma once

#include <span>
#include <vector>

#include "core/damping.hpp"
#include "linalg/spectral_transform.hpp"

namespace kpm::core {

/// A reconstructed density of states: energies and densities, plus the grid
/// kind used.
struct DosCurve {
  std::vector<double> energy;   ///< physical energies omega (ascending)
  std::vector<double> density;  ///< rho(omega), normalized to unit integral
};

/// Options of the reconstruction.
struct ReconstructOptions {
  DampingKernel kernel = DampingKernel::Jackson;
  double lorentz_lambda = 4.0;  ///< used when kernel == Lorentz
  std::size_t points = 512;     ///< evaluation points
};

/// Evaluates the damped series at one Chebyshev coordinate x in (-1, 1).
/// `damped` are the products g_n mu_n.
[[nodiscard]] double evaluate_dos_series(std::span<const double> damped, double x);

/// Reconstructs rho(omega) on the Chebyshev-Gauss grid (the canonical KPM
/// evaluation grid: uniform resolution in arccos x, integrates exactly).
[[nodiscard]] DosCurve reconstruct_dos(std::span<const double> mu,
                                       const linalg::SpectralTransform& transform,
                                       const ReconstructOptions& options = {});

/// FFT-accelerated reconstruction on the same Chebyshev-Gauss grid:
/// O(M log M) via one zero-padded 2M-point complex FFT (the DCT-III
/// evaluation Weisse et al. recommend) instead of O(M N) Clenshaw sums.
/// Requires options.points to be a power of two >= mu.size(); the result
/// matches reconstruct_dos to roundoff.
[[nodiscard]] DosCurve reconstruct_dos_fft(std::span<const double> mu,
                                           const linalg::SpectralTransform& transform,
                                           const ReconstructOptions& options = {});

/// Reconstructs rho at caller-provided physical energies (each must map
/// inside (-1, 1)).
[[nodiscard]] DosCurve reconstruct_dos_at(std::span<const double> mu,
                                          const linalg::SpectralTransform& transform,
                                          std::span<const double> energies,
                                          const ReconstructOptions& options = {});

/// Integral of a DoS curve over its grid via the trapezoidal rule; ~1 for a
/// properly normalized curve sampled densely enough.
[[nodiscard]] double dos_integral(const DosCurve& curve);

/// Integral of omega * rho(omega) (the spectral mean); handy invariant:
/// equals a- * mu_1 + a+ for exact moments.
[[nodiscard]] double dos_mean_energy(const DosCurve& curve);

}  // namespace kpm::core
