// Tests for the KPM spectral filter.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "core/spectral_filter.hpp"
#include "diag/jacobi.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

struct Fixture {
  linalg::DenseMatrix h;
  linalg::SpectralTransform transform{{-1.0, 1.0}, 0.0};
  linalg::DenseMatrix h_tilde;

  explicit Fixture(std::size_t edge = 5) : h(1, 1), h_tilde(1, 1) {
    const auto lat = lattice::HypercubicLattice::cubic(edge, edge, edge);
    h = lattice::build_tight_binding_dense(lat);
    linalg::MatrixOperator op(h);
    transform = linalg::make_spectral_transform(op);
    h_tilde = linalg::rescale(h, transform);
  }
};

TEST(SpectralFilter, CoefficientsReconstructTheDeltaWeight) {
  // sum_n c_n T_n(x0) = rho_KPM of a delta at x0, evaluated at x0 (the
  // filter's peak value).
  Fixture f;
  const double e0 = 1.0;
  const auto c = filter_coefficients(e0, f.transform, {.num_moments = 128});
  EXPECT_EQ(c.size(), 128u);
  EXPECT_GT(c[0], 0.0);
  // Tail damped by Jackson.
  EXPECT_LT(std::abs(c.back()), std::abs(c[1]));
}

TEST(SpectralFilter, FilteredStateConcentratesAtTargetEnergy) {
  Fixture f;
  linalg::MatrixOperator op(f.h), op_t(f.h_tilde);
  for (double e0 : {-3.0, 0.5, 2.5}) {
    const auto report =
        filter_random_state(op, op_t, f.transform, e0, 42, 0, {.num_moments = 256});
    EXPECT_NEAR(report.energy_mean, e0, 0.25) << "target " << e0;
    // Width ~ pi * a- / N ~ 0.075; spread reflects local DoS weighting,
    // allow a broad but meaningful bound.
    EXPECT_LT(report.energy_spread, 0.6) << "target " << e0;
  }
}

TEST(SpectralFilter, SharpensWithMoreMoments) {
  Fixture f;
  linalg::MatrixOperator op(f.h), op_t(f.h_tilde);
  const auto wide = filter_random_state(op, op_t, f.transform, 0.5, 7, 0, {.num_moments = 64});
  const auto sharp =
      filter_random_state(op, op_t, f.transform, 0.5, 7, 0, {.num_moments = 512});
  EXPECT_LT(sharp.energy_spread, 0.6 * wide.energy_spread);
}

TEST(SpectralFilter, ActsAsProjectorOnEigenvectors) {
  // Filtering an eigenvector at its own energy preserves it (up to the
  // filter's scalar weight); filtering far away suppresses it.
  const auto h = lattice::random_symmetric_dense(24, 5);
  linalg::MatrixOperator op(h);
  const auto transform = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, transform);
  linalg::MatrixOperator op_t(ht);

  diag::JacobiOptions jopts;
  jopts.compute_vectors = true;
  const auto ed = diag::jacobi_eigensolve(h, jopts);
  const std::size_t k = 12;  // a middle eigenpair
  std::vector<double> v(24), out_on(24), out_off(24);
  for (std::size_t i = 0; i < 24; ++i) v[i] = ed.eigenvectors(i, k);

  FilterOptions opts{.num_moments = 256};
  apply_spectral_filter(op_t, transform, ed.eigenvalues[k], v, out_on, opts);
  // Off-target: filter at the far end of the spectrum.
  apply_spectral_filter(op_t, transform, ed.eigenvalues.front(), v, out_off, opts);

  // On target the output is parallel to v with the delta's peak weight.
  const double overlap_on = std::abs(linalg::dot(v, out_on));
  const double overlap_off = std::abs(linalg::dot(v, out_off));
  EXPECT_GT(overlap_on, 20.0 * overlap_off);
  // Direction preserved: |<v|out>| ~ |out|.
  EXPECT_NEAR(overlap_on, linalg::nrm2(out_on), 1e-6 * overlap_on + 1e-9);
}

TEST(SpectralFilter, NormEstimatesLocalDos) {
  // E[ |delta_KPM(E0 - H) r|^2 ] relates to the DoS squared-kernel weight:
  // compare the filtered norm at a high-DoS energy vs a band-edge energy.
  Fixture f;
  linalg::MatrixOperator op(f.h), op_t(f.h_tilde);
  const auto center = filter_random_state(op, op_t, f.transform, 0.5, 3, 1);
  const auto edge = filter_random_state(op, op_t, f.transform, 5.9, 3, 1);
  EXPECT_GT(center.norm, 2.0 * edge.norm);
}

TEST(SpectralFilter, RejectsBadInput) {
  Fixture f;
  linalg::MatrixOperator op_t(f.h_tilde);
  std::vector<double> in(op_t.dim(), 1.0), out(op_t.dim());
  EXPECT_THROW(apply_spectral_filter(op_t, f.transform, 99.0, in, out), kpm::Error);
  EXPECT_THROW(apply_spectral_filter(op_t, f.transform, 0.0, in, in), kpm::Error);
  std::vector<double> wrong(3);
  EXPECT_THROW(apply_spectral_filter(op_t, f.transform, 0.0, wrong, out), kpm::Error);
  EXPECT_THROW((void)filter_coefficients(0.0, f.transform, {.num_moments = 1}), kpm::Error);
}

}  // namespace
