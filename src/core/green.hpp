// Green's function reconstruction from Chebyshev moments.
//
// The retarded Green's function admits the same moment data as the DoS
// (the paper's abstract cites "DoS and Green's functions" as the targets):
//
//   G(omega + i0+) -> G(x) = -2i / sqrt(1 - x^2) *
//       sum_{n} g_n mu_n exp(-i n arccos x) / (1 + delta_{n0})
//
// whose imaginary part reproduces -pi rho(x), giving a built-in
// cross-check, and whose real part is the Hilbert-transform partner
// (Weisse et al. Eq. 74).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "core/damping.hpp"
#include "linalg/spectral_transform.hpp"

namespace kpm::core {

/// A reconstructed Green's function on a physical energy grid.
struct GreenCurve {
  std::vector<double> energy;
  std::vector<std::complex<double>> green;  ///< G(omega + i0+), per-site normalized (trace / D)

  /// Spectral function A(omega) = -Im G(omega) / pi (equals the DoS for
  /// trace moments).
  [[nodiscard]] std::vector<double> spectral_function() const;
};

/// Options of the Green's function reconstruction.
struct GreenOptions {
  DampingKernel kernel = DampingKernel::Jackson;
  double lorentz_lambda = 4.0;
  std::size_t points = 512;
};

/// Evaluates G at one Chebyshev coordinate x in (-1, 1) from damped
/// products g_n mu_n (pre-multiplied).
[[nodiscard]] std::complex<double> evaluate_green_series(std::span<const double> damped, double x);

/// Reconstructs G(omega) on the Chebyshev-Gauss grid mapped to physical
/// energies (Jacobian applied, so Im G integrates like a physical DoS).
[[nodiscard]] GreenCurve reconstruct_green(std::span<const double> mu,
                                           const linalg::SpectralTransform& transform,
                                           const GreenOptions& options = {});

}  // namespace kpm::core
