#include "core/damping.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace kpm::core {

const char* to_string(DampingKernel k) noexcept {
  switch (k) {
    case DampingKernel::Jackson:
      return "jackson";
    case DampingKernel::Lorentz:
      return "lorentz";
    case DampingKernel::Fejer:
      return "fejer";
    case DampingKernel::Dirichlet:
      return "dirichlet";
  }
  return "?";
}

DampingKernel damping_kernel_from_string(const std::string& name) {
  if (name == "jackson") return DampingKernel::Jackson;
  if (name == "lorentz") return DampingKernel::Lorentz;
  if (name == "fejer") return DampingKernel::Fejer;
  if (name == "dirichlet") return DampingKernel::Dirichlet;
  KPM_FAIL("unknown damping kernel: " + name);
}

std::vector<double> damping_coefficients(DampingKernel kernel, std::size_t n, double lambda) {
  KPM_REQUIRE(n > 0, "damping_coefficients: need at least one moment");
  std::vector<double> g(n);
  const auto nd = static_cast<double>(n);
  switch (kernel) {
    case DampingKernel::Jackson: {
      // g_n = [(N - n + 1) cos(pi n / (N+1)) + sin(pi n / (N+1)) cot(pi / (N+1))] / (N + 1)
      const double q = std::numbers::pi / (nd + 1.0);
      const double cot_q = std::cos(q) / std::sin(q);
      for (std::size_t k = 0; k < n; ++k) {
        const auto kd = static_cast<double>(k);
        g[k] = ((nd - kd + 1.0) * std::cos(q * kd) + std::sin(q * kd) * cot_q) / (nd + 1.0);
      }
      break;
    }
    case DampingKernel::Lorentz: {
      KPM_REQUIRE(lambda > 0, "Lorentz kernel requires lambda > 0");
      const double denom = std::sinh(lambda);
      for (std::size_t k = 0; k < n; ++k)
        g[k] = std::sinh(lambda * (1.0 - static_cast<double>(k) / nd)) / denom;
      break;
    }
    case DampingKernel::Fejer:
      for (std::size_t k = 0; k < n; ++k) g[k] = 1.0 - static_cast<double>(k) / nd;
      break;
    case DampingKernel::Dirichlet:
      for (std::size_t k = 0; k < n; ++k) g[k] = 1.0;
      break;
  }
  return g;
}

}  // namespace kpm::core
