// Local density of states (LDOS) via deterministic KPM moments.
//
// The LDOS at site i replaces the stochastic trace by a single unit start
// vector |i>:  mu_n^i = <i| T_n(H~) |i>.  No averaging, no stochastic
// error — just one Chebyshev recursion per site.  Useful for impurity /
// disorder studies (the anderson_disorder example) and as a deterministic
// validation path for the recursion machinery.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/reconstruct.hpp"
#include "linalg/operator.hpp"
#include "linalg/spectral_transform.hpp"

namespace kpm::core {

/// Computes the N deterministic moments mu_n^site = <site|T_n(H~)|site>.
[[nodiscard]] std::vector<double> ldos_moments(const linalg::MatrixOperator& h_tilde,
                                               std::size_t site, std::size_t num_moments);

/// Convenience: reconstructs the LDOS curve at `site`.
[[nodiscard]] DosCurve ldos_curve(const linalg::MatrixOperator& h_tilde,
                                  const linalg::SpectralTransform& transform, std::size_t site,
                                  std::size_t num_moments, const ReconstructOptions& options = {});

/// Deterministic full-trace moments: mu_n = (1/D) sum_i <i|T_n(H~)|i>,
/// exact (up to roundoff) but O(D) recursions — the "R = D basis vectors"
/// limit of the stochastic estimator.  Ground truth for estimator tests.
/// `block` > 1 advances that many basis vectors per matrix pass (blocked
/// SpMMV recursion; bit-identical to the per-vector sweep).
[[nodiscard]] std::vector<double> deterministic_trace_moments(const linalg::MatrixOperator& h_tilde,
                                                              std::size_t num_moments,
                                                              std::size_t block = 1);

}  // namespace kpm::core
