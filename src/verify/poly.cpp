#include "verify/poly.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace kpm::verify {
namespace {

__extension__ typedef __int128 I128;  // pedantic-clean 128-bit spelling

I128 checked_mul(I128 a, I128 b, const char* what) {
  I128 out = 0;
  if (__builtin_mul_overflow(a, b, &out))
    throw RatOverflow(std::string("verify: rational overflow in ") + what);
  return out;
}

I128 checked_add(I128 a, I128 b, const char* what) {
  I128 out = 0;
  if (__builtin_add_overflow(a, b, &out))
    throw RatOverflow(std::string("verify: rational overflow in ") + what);
  return out;
}

I128 gcd128(I128 a, I128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const I128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

Rat make_rat(I128 n, I128 d, const char* what) {
  KPM_REQUIRE(d != 0, std::string("verify: rational with zero denominator in ") + what);
  if (d < 0) {
    n = -n;
    d = -d;
  }
  const I128 g = gcd128(n, d);
  Rat r;
  r.num = g != 0 ? n / g : 0;
  r.den = g != 0 ? d / g : 1;
  return r;
}

std::string i128_str(I128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  std::string digits;
  while (v != 0) {
    const auto d = static_cast<int>(neg ? -(v % 10) : v % 10);
    digits.push_back(static_cast<char>('0' + d));
    v /= 10;
  }
  if (neg) digits.push_back('-');
  return {digits.rbegin(), digits.rend()};
}

}  // namespace

Rat::Rat(long long n, long long d) { *this = make_rat(n, d, "ctor"); }

long long Rat::as_ll() const {
  KPM_REQUIRE(den == 1, "verify: as_ll on a non-integer rational");
  KPM_REQUIRE(num <= I128(9223372036854775807LL) && num >= -I128(9223372036854775807LL) - 1,
              "verify: rational exceeds 64-bit range");
  return static_cast<long long>(num);
}

Rat operator+(const Rat& a, const Rat& b) {
  const I128 n = checked_add(checked_mul(a.num, b.den, "+"), checked_mul(b.num, a.den, "+"), "+");
  const I128 d = checked_mul(a.den, b.den, "+");
  return make_rat(n, d, "+");
}

Rat operator-(const Rat& a, const Rat& b) { return a + (-b); }

Rat operator*(const Rat& a, const Rat& b) {
  // Cross-reduce before multiplying to keep intermediates small.
  const I128 g1 = gcd128(a.num, b.den);
  const I128 g2 = gcd128(b.num, a.den);
  const I128 an = g1 != 0 ? a.num / g1 : a.num;
  const I128 bd = g1 != 0 ? b.den / g1 : b.den;
  const I128 bn = g2 != 0 ? b.num / g2 : b.num;
  const I128 ad = g2 != 0 ? a.den / g2 : a.den;
  return make_rat(checked_mul(an, bn, "*"), checked_mul(ad, bd, "*"), "*");
}

Rat operator/(const Rat& a, const Rat& b) {
  KPM_REQUIRE(b.num != 0, "verify: rational division by zero");
  Rat inv;
  inv.num = b.den;
  inv.den = b.num;
  if (inv.den < 0) {
    inv.num = -inv.num;
    inv.den = -inv.den;
  }
  return a * inv;
}

bool operator<(const Rat& a, const Rat& b) {
  return checked_mul(a.num, b.den, "<") < checked_mul(b.num, a.den, "<");
}

std::string Rat::str() const {
  std::string s = i128_str(num);
  if (den != 1) s += "/" + i128_str(den);
  return s;
}

int VarTable::intern(const std::string& name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(names_.size());
  names_.push_back(name);
  ids_[name] = id;
  return id;
}

int VarTable::find(const std::string& name) const {
  const auto it = ids_.find(name);
  return it == ids_.end() ? -1 : it->second;
}

Poly Poly::constant(const Rat& c) {
  Poly p;
  p.add_term({}, c);
  return p;
}

Poly Poly::var(int id) {
  Poly p;
  p.add_term({id}, Rat{1});
  return p;
}

void Poly::add_term(Monomial m, const Rat& c) {
  if (c.is_zero()) return;
  std::sort(m.begin(), m.end());
  auto [it, inserted] = terms_.try_emplace(std::move(m), c);
  if (!inserted) {
    it->second = it->second + c;
    if (it->second.is_zero()) terms_.erase(it);
  }
}

bool Poly::is_constant() const noexcept {
  return terms_.empty() || (terms_.size() == 1 && terms_.begin()->first.empty());
}

Rat Poly::constant_value() const {
  const auto it = terms_.find(Monomial{});
  return it == terms_.end() ? Rat{0} : it->second;
}

int Poly::degree_in(int id) const {
  int deg = 0;
  for (const auto& [m, c] : terms_)
    deg = std::max(deg, static_cast<int>(std::count(m.begin(), m.end(), id)));
  return deg;
}

Poly Poly::linear_coeff(int id) const {
  KPM_REQUIRE(degree_in(id) <= 1, "verify: linear_coeff on a nonlinear variable");
  Poly out;
  for (const auto& [m, c] : terms_) {
    const auto it = std::find(m.begin(), m.end(), id);
    if (it == m.end()) continue;
    Monomial rest;
    rest.reserve(m.size() - 1);
    for (auto jt = m.begin(); jt != m.end(); ++jt)
      if (jt != it) rest.push_back(*jt);
    out.add_term(std::move(rest), c);
  }
  return out;
}

Poly Poly::without(int id) const {
  Poly out;
  for (const auto& [m, c] : terms_)
    if (std::find(m.begin(), m.end(), id) == m.end()) out.add_term(m, c);
  return out;
}

Poly Poly::subst(int id, const Poly& value) const {
  Poly out;
  for (const auto& [m, c] : terms_) {
    Monomial rest;
    int power = 0;
    for (const int v : m) {
      if (v == id)
        ++power;
      else
        rest.push_back(v);
    }
    Poly term;
    term.add_term(std::move(rest), c);
    for (int k = 0; k < power; ++k) term = term * value;
    out = out + term;
  }
  return out;
}

Rat Poly::eval(const std::vector<Rat>& values) const {
  Rat acc{0};
  for (const auto& [m, c] : terms_) {
    Rat v = c;
    for (const int id : m) {
      KPM_REQUIRE(static_cast<std::size_t>(id) < values.size(), "verify: eval missing variable");
      v = v * values[static_cast<std::size_t>(id)];
    }
    acc = acc + v;
  }
  return acc;
}

bool Poly::integer_coeffs() const {
  for (const auto& [m, c] : terms_)
    if (!c.is_integer()) return false;
  return true;
}

bool Poly::independent_of(const std::vector<int>& ids) const {
  for (const auto& [m, c] : terms_)
    for (const int v : m)
      if (std::find(ids.begin(), ids.end(), v) != ids.end()) return false;
  return true;
}

Poly operator+(const Poly& a, const Poly& b) {
  Poly out = a;
  for (const auto& [m, c] : b.terms_) out.add_term(m, c);
  return out;
}

Poly operator-(const Poly& a, const Poly& b) { return a + Rat{-1} * b; }

Poly operator*(const Poly& a, const Poly& b) {
  Poly out;
  for (const auto& [ma, ca] : a.terms_)
    for (const auto& [mb, cb] : b.terms_) {
      Monomial m = ma;
      m.insert(m.end(), mb.begin(), mb.end());
      out.add_term(std::move(m), ca * cb);
    }
  return out;
}

Poly operator*(const Rat& c, const Poly& p) {
  Poly out;
  for (const auto& [m, pc] : p.terms_) out.add_term(m, c * pc);
  return out;
}

std::string Poly::str(const VarTable& vars) const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  // Print simple monomials first (constant, then by ascending length).
  std::vector<const std::pair<const Monomial, Rat>*> order;
  order.reserve(terms_.size());
  for (const auto& t : terms_) order.push_back(&t);
  std::stable_sort(order.begin(), order.end(),
                   [](const auto* a, const auto* b) { return a->first.size() < b->first.size(); });
  for (const auto* t : order) {
    const auto& [m, c] = *t;
    if (!first) os << (c.negative() ? " - " : " + ");
    if (first && c.negative()) os << "-";
    first = false;
    const Rat a = c.negative() ? -c : c;
    const bool unit = a == Rat{1} && !m.empty();
    if (!unit) os << a.str();
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (!unit || i > 0) os << "*";
      os << vars.name(m[i]);
    }
  }
  return os.str();
}

bool solve_exact(const std::vector<std::vector<Rat>>& rows, const std::vector<Rat>& target,
                 std::vector<Rat>& coeffs) {
  KPM_REQUIRE(rows.size() == target.size(), "verify: solve_exact shape mismatch");
  const std::size_t ncols = rows.empty() ? 0 : rows[0].size();
  // Augmented working copy.
  std::vector<std::vector<Rat>> a(rows.size(), std::vector<Rat>(ncols + 1));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    KPM_REQUIRE(rows[i].size() == ncols, "verify: ragged solve_exact rows");
    for (std::size_t j = 0; j < ncols; ++j) a[i][j] = rows[i][j];
    a[i][ncols] = target[i];
  }
  std::vector<int> pivot_row_of(ncols, -1);
  std::size_t next_row = 0;
  for (std::size_t col = 0; col < ncols && next_row < a.size(); ++col) {
    std::size_t piv = next_row;
    while (piv < a.size() && a[piv][col].is_zero()) ++piv;
    if (piv == a.size()) continue;  // free column (preference: earlier columns pivot first)
    std::swap(a[piv], a[next_row]);
    const Rat inv = Rat{1} / a[next_row][col];
    for (std::size_t j = col; j <= ncols; ++j) a[next_row][j] = a[next_row][j] * inv;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i == next_row || a[i][col].is_zero()) continue;
      const Rat f = a[i][col];
      for (std::size_t j = col; j <= ncols; ++j) a[i][j] = a[i][j] - f * a[next_row][j];
    }
    pivot_row_of[col] = static_cast<int>(next_row);
    ++next_row;
  }
  // Inconsistent when a zero row has a nonzero right-hand side.
  for (std::size_t i = next_row; i < a.size(); ++i)
    if (!a[i][ncols].is_zero()) return false;
  coeffs.assign(ncols, Rat{0});
  for (std::size_t col = 0; col < ncols; ++col)
    if (pivot_row_of[col] >= 0)
      coeffs[col] = a[static_cast<std::size_t>(pivot_row_of[col])][ncols];
  return true;
}

}  // namespace kpm::verify
