#include "lattice/decompose.hpp"

#include <vector>

#include "common/error.hpp"

namespace kpm::lattice {
namespace {

/// Bands of whole "planes" (plane_sites consecutive rows each): the first
/// planes%nodes bands get one extra plane.
linalg::Decomposition banded(std::size_t planes, std::size_t plane_sites, std::size_t nodes,
                             std::size_t halo_width, const char* what) {
  KPM_REQUIRE(nodes >= 1, std::string(what) + ": needs at least one node");
  KPM_REQUIRE(nodes <= planes, std::string(what) + ": more nodes (" + std::to_string(nodes) +
                                   ") than lattice planes (" + std::to_string(planes) + ")");
  const std::size_t base = planes / nodes;
  const std::size_t rem = planes % nodes;
  KPM_REQUIRE(halo_width >= 1 && halo_width <= base,
              std::string(what) + ": halo of " + std::to_string(halo_width) +
                  " planes is wider than the thinnest slab (" + std::to_string(base) +
                  " planes)");
  std::vector<linalg::ShardRange> ranges;
  ranges.reserve(nodes);
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < nodes; ++p) {
    const std::size_t len = (base + (p < rem ? 1 : 0)) * plane_sites;
    ranges.push_back({cursor, cursor + len});
    cursor += len;
  }
  return linalg::Decomposition(planes * plane_sites, std::move(ranges), halo_width);
}

}  // namespace

linalg::Decomposition slab_decomposition(const HypercubicLattice& lat, std::size_t nodes,
                                         std::size_t halo_width) {
  const auto dims = lat.dims();
  // Outermost used axis: z when 3D, y when 2D, x for a chain.
  const std::size_t axis = dims[2] > 1 ? 2 : (dims[1] > 1 ? 1 : 0);
  const std::size_t planes = dims[axis];
  const std::size_t plane_sites = lat.sites() / planes;
  return banded(planes, plane_sites, nodes, halo_width, "slab_decomposition");
}

linalg::Decomposition honeycomb_decomposition(const HoneycombLattice& lat, std::size_t nodes,
                                              std::size_t halo_width) {
  // site_index(c1, c2, s) = (c2*l1 + c1)*2 + s: each c2 value owns a
  // contiguous band of 2*l1 sites, so bands along c2 are contiguous row
  // ranges.
  return banded(lat.l2(), 2 * lat.l1(), nodes, halo_width, "honeycomb_decomposition");
}

}  // namespace kpm::lattice
