// Thermodynamic observables from KPM moments.
//
// Once the moments mu_n are known, any spectral average
//
//   <f> = integral f(E) rho(E) dE  =  (1/D) sum_k f(E_k)
//
// follows without touching the Hamiltonian again, using Chebyshev-Gauss
// quadrature (exact for the damped moment series): electron filling,
// internal energy, entropy and grand potential of non-interacting
// electrons at temperature T, plus chemical-potential search — the
// quantities condensed-matter KPM studies actually report.
#pragma once

#include <functional>
#include <span>

#include "core/damping.hpp"
#include "linalg/spectral_transform.hpp"

namespace kpm::core {

/// Fermi-Dirac occupation f(E) at chemical potential mu and temperature T
/// (energy units, k_B = 1).  T = 0 gives the sharp step.
[[nodiscard]] double fermi_dirac(double energy, double mu, double temperature);

/// Options for the quadrature.
struct QuadratureOptions {
  DampingKernel kernel = DampingKernel::Jackson;
  double lorentz_lambda = 4.0;
  std::size_t points = 1024;  ///< Chebyshev-Gauss abscissas
};

/// Computes integral f(E) rho(E) dE from the damped moment series by
/// Chebyshev-Gauss quadrature; `f` is evaluated at physical energies.
[[nodiscard]] double spectral_average(std::span<const double> mu,
                                      const linalg::SpectralTransform& transform,
                                      const std::function<double(double)>& f,
                                      const QuadratureOptions& options = {});

/// Electron filling n(mu, T) = integral f_FD(E) rho(E) dE in [0, 1]
/// (states per site, spinless convention).
[[nodiscard]] double electron_filling(std::span<const double> mu_moments,
                                      const linalg::SpectralTransform& transform,
                                      double chemical_potential, double temperature,
                                      const QuadratureOptions& options = {});

/// Internal energy per site u(mu, T) = integral E f_FD(E) rho(E) dE.
[[nodiscard]] double internal_energy(std::span<const double> mu_moments,
                                     const linalg::SpectralTransform& transform,
                                     double chemical_potential, double temperature,
                                     const QuadratureOptions& options = {});

/// Electronic entropy per site s(mu, T) =
/// -integral [f ln f + (1-f) ln(1-f)] rho(E) dE  (>= 0, -> 0 as T -> 0).
[[nodiscard]] double electronic_entropy(std::span<const double> mu_moments,
                                        const linalg::SpectralTransform& transform,
                                        double chemical_potential, double temperature,
                                        const QuadratureOptions& options = {});

/// Finds the chemical potential giving `target_filling` at temperature T
/// by bisection over the spectral window.  Throws kpm::Error when the
/// filling is not bracketed (target outside (0, 1)).
[[nodiscard]] double find_chemical_potential(std::span<const double> mu_moments,
                                             const linalg::SpectralTransform& transform,
                                             double target_filling, double temperature,
                                             const QuadratureOptions& options = {});

}  // namespace kpm::core
