#include "core/moments_f32.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "cpumodel/roofline.hpp"
#include "core/moments_cpu.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "rng/distributions.hpp"

namespace kpm::core {
namespace {

/// y = A x in pure float arithmetic (A's doubles are narrowed once here;
/// a real SP port would store the matrix in float to begin with).
void spmv_f32(const linalg::MatrixOperator& op, const std::vector<float>& x,
              std::vector<float>& y) {
  const std::size_t dim = op.dim();
  if (op.storage() == linalg::Storage::Dense) {
    const auto& m = *op.dense();
    for (std::size_t r = 0; r < dim; ++r) {
      float acc = 0.0f;
      const auto row = m.row(r);
      for (std::size_t c = 0; c < dim; ++c) acc += static_cast<float>(row[c]) * x[c];
      y[r] = acc;
    }
  } else if (op.storage() == linalg::Storage::Crs) {
    const auto& m = *op.crs();
    const auto row_ptr = m.row_ptr();
    const auto col_idx = m.col_idx();
    const auto values = m.values();
    for (std::size_t r = 0; r < dim; ++r) {
      float acc = 0.0f;
      for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        acc += static_cast<float>(values[kk]) * x[static_cast<std::size_t>(col_idx[kk])];
      }
      y[r] = acc;
    }
  } else {
    // SELL-C-sigma: logical row order via slot_of, per-row entry order
    // matching CRS, so the float accumulation is bit-identical to CRS.
    const auto& m = *op.sell();
    const auto chunk_ptr = m.chunk_ptr();
    const auto row_len = m.row_len();
    const auto slot_of = m.slot_of();
    const auto col_idx = m.col_idx();
    const auto values = m.values();
    const std::size_t c_sz = m.chunk_size();
    for (std::size_t r = 0; r < dim; ++r) {
      const auto slot = static_cast<std::size_t>(slot_of[r]);
      const auto base = static_cast<std::size_t>(chunk_ptr[slot / c_sz]);
      const std::size_t lane = slot % c_sz;
      float acc = 0.0f;
      for (std::size_t j = 0; j < static_cast<std::size_t>(row_len[slot]); ++j) {
        const std::size_t k = base + j * c_sz + lane;
        acc += static_cast<float>(values[k]) * x[static_cast<std::size_t>(col_idx[k])];
      }
      y[r] = acc;
    }
  }
}

float dot_f32(const std::vector<float>& a, const std::vector<float>& b) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

/// Blocked y_j = A x_j in float on the interleaved block layout; each
/// member's per-row accumulation matches spmv_f32 bit-for-bit.
void spmmv_f32(const linalg::MatrixOperator& op, std::size_t block,
               const std::vector<float>& x, std::vector<float>& y) {
  const std::size_t dim = op.dim();
  std::vector<float> acc(block);
  const auto row_block = [&](std::size_t r, auto&& each_entry) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    each_entry();
    float* yr = y.data() + r * block;
    for (std::size_t j = 0; j < block; ++j) yr[j] = acc[j];
  };
  const auto fma_block = [&](double v, std::size_t c) {
    const float vf = static_cast<float>(v);
    const float* xc = x.data() + c * block;
    for (std::size_t j = 0; j < block; ++j) acc[j] += vf * xc[j];
  };
  if (op.storage() == linalg::Storage::Dense) {
    const auto& m = *op.dense();
    for (std::size_t r = 0; r < dim; ++r)
      row_block(r, [&] {
        const auto row = m.row(r);
        for (std::size_t c = 0; c < dim; ++c) fma_block(row[c], c);
      });
  } else if (op.storage() == linalg::Storage::Crs) {
    const auto& m = *op.crs();
    const auto row_ptr = m.row_ptr();
    const auto col_idx = m.col_idx();
    const auto values = m.values();
    for (std::size_t r = 0; r < dim; ++r)
      row_block(r, [&] {
        for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          fma_block(values[kk], static_cast<std::size_t>(col_idx[kk]));
        }
      });
  } else {
    const auto& m = *op.sell();
    const auto chunk_ptr = m.chunk_ptr();
    const auto row_len = m.row_len();
    const auto slot_of = m.slot_of();
    const auto col_idx = m.col_idx();
    const auto values = m.values();
    const std::size_t c_sz = m.chunk_size();
    for (std::size_t r = 0; r < dim; ++r)
      row_block(r, [&] {
        const auto slot = static_cast<std::size_t>(slot_of[r]);
        const auto base = static_cast<std::size_t>(chunk_ptr[slot / c_sz]);
        const std::size_t lane = slot % c_sz;
        for (std::size_t j = 0; j < static_cast<std::size_t>(row_len[slot]); ++j) {
          const std::size_t k = base + j * c_sz + lane;
          fma_block(values[k], static_cast<std::size_t>(col_idx[k]));
        }
      });
  }
}

/// Per-member left-fold float dots of two interleaved blocks, matching
/// dot_f32 on the deinterleaved vectors bit-for-bit.
void block_dot_f32(const std::vector<float>& a, const std::vector<float>& b,
                   std::size_t block, std::size_t dim, std::vector<float>& dots) {
  std::fill(dots.begin(), dots.end(), 0.0f);
  for (std::size_t i = 0; i < dim; ++i) {
    const float* ai = a.data() + i * block;
    const float* bi = b.data() + i * block;
    for (std::size_t j = 0; j < block; ++j) dots[j] += ai[j] * bi[j];
  }
}

}  // namespace

CpuMomentEngineF32::CpuMomentEngineF32(cpumodel::CpuSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

MomentResult CpuMomentEngineF32::compute(const linalg::MatrixOperator& h_tilde,
                                         const MomentParams& params,
                                         std::size_t sample_instances) {
  params.validate();
  const std::size_t d = h_tilde.dim();
  const std::size_t n = params.num_moments;
  const std::size_t total = params.instances();
  const std::size_t executed = resolve_sample_count(sample_instances, total);

  obs::ScopedSpan span("moments." + name());
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(n));
  Stopwatch wall;
  std::vector<double> mu_sum(n, 0.0);  // cross-instance reduction in double
  std::vector<float> r0(d), r_prev2(d), r_prev(d), r_next(d);

  // Per-call obs meters in binary32: 4-byte vector elements, half the
  // matrix traffic of the double engines, identical flop counts.
  const double dd_obs = static_cast<double>(d);
  const double matrix_bytes_f32 = static_cast<double>(h_tilde.spmv_matrix_bytes()) / 2.0;
  const double spmv_flops = static_cast<double>(h_tilde.spmv_flops());
  const auto meter_dot32 = [&] {
    obs::add(obs::Counter::DotCalls, 1.0);
    obs::add(obs::Counter::Flops, 2.0 * dd_obs);
    obs::add(obs::Counter::BytesStreamed, 2.0 * dd_obs * sizeof(float));
  };
  const auto meter_spmv32 = [&] {
    obs::add(obs::Counter::SpmvCalls, 1.0);
    obs::add(obs::Counter::Flops, spmv_flops);
    obs::add(obs::Counter::BytesStreamed, matrix_bytes_f32 + 2.0 * dd_obs * sizeof(float));
  };

  const std::size_t block = params.block_r;
  if (block <= 1) {
    for (std::size_t inst = 0; inst < executed; ++inst) {
      obs::add(obs::Counter::InstancesExecuted, 1.0);
      obs::add(obs::Counter::RngElements, dd_obs);
      for (std::size_t i = 0; i < d; ++i)
        r0[i] = static_cast<float>(
            rng::draw_random_element(params.vector_kind, params.seed, inst, i));

      mu_sum[0] += static_cast<double>(dot_f32(r0, r0));
      meter_dot32();
      spmv_f32(h_tilde, r0, r_prev);
      meter_spmv32();
      if (n > 1) {
        mu_sum[1] += static_cast<double>(dot_f32(r0, r_prev));
        meter_dot32();
      }
      r_prev2 = r0;
      obs::add(obs::Counter::BytesStreamed, 2.0 * dd_obs * sizeof(float));

      for (std::size_t k = 2; k < n; ++k) {
        spmv_f32(h_tilde, r_prev, r_next);
        meter_spmv32();
        for (std::size_t i = 0; i < d; ++i) r_next[i] = 2.0f * r_next[i] - r_prev2[i];
        obs::add(obs::Counter::Flops, 2.0 * dd_obs);
        obs::add(obs::Counter::BytesStreamed, 3.0 * dd_obs * sizeof(float));
        mu_sum[k] += static_cast<double>(dot_f32(r0, r_next));
        meter_dot32();
        std::swap(r_prev2, r_prev);
        std::swap(r_prev, r_next);
      }
    }
  } else {
    // Blocked (SpMMV) path: a group of `b` instances advances through one
    // unfused recursion; the matrix is narrowed/streamed once per step for
    // the whole group, and each member's float arithmetic matches the
    // per-vector loop bit-for-bit.  Member rows are summed in instance
    // order after each group.
    const auto meter_spmmv32 = [&](std::size_t b) {
      obs::add(obs::Counter::SpmvCalls, static_cast<double>(b));
      obs::add(obs::Counter::Flops, static_cast<double>(b) * spmv_flops);
      obs::add(obs::Counter::BytesStreamed,
               matrix_bytes_f32 + 2.0 * static_cast<double>(b) * dd_obs * sizeof(float));
    };
    std::vector<float> b0(d * block), b_prev2(d * block), b_prev(d * block),
        b_next(d * block), dots(block);
    std::vector<double> rows(block * n);
    const std::size_t groups = (executed + block - 1) / block;
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t first = g * block;
      const std::size_t b = std::min(block, executed - first);
      b0.resize(d * b);
      b_prev2.resize(d * b);
      b_prev.resize(d * b);
      b_next.resize(d * b);
      dots.resize(b);
      std::fill(rows.begin(), rows.end(), 0.0);
      obs::add(obs::Counter::InstancesExecuted, static_cast<double>(b));
      obs::add(obs::Counter::RngElements, static_cast<double>(b) * dd_obs);
      for (std::size_t j = 0; j < b; ++j)
        for (std::size_t i = 0; i < d; ++i)
          b0[i * b + j] = static_cast<float>(
              rng::draw_random_element(params.vector_kind, params.seed, first + j, i));

      block_dot_f32(b0, b0, b, d, dots);
      for (std::size_t j = 0; j < b; ++j) {
        rows[j * n] += static_cast<double>(dots[j]);
        meter_dot32();
      }
      spmmv_f32(h_tilde, b, b0, b_prev);
      meter_spmmv32(b);
      if (n > 1) {
        block_dot_f32(b0, b_prev, b, d, dots);
        for (std::size_t j = 0; j < b; ++j) {
          rows[j * n + 1] += static_cast<double>(dots[j]);
          meter_dot32();
        }
      }
      b_prev2 = b0;
      obs::add(obs::Counter::BytesStreamed,
               2.0 * static_cast<double>(b) * dd_obs * sizeof(float));

      for (std::size_t k = 2; k < n; ++k) {
        spmmv_f32(h_tilde, b, b_prev, b_next);
        meter_spmmv32(b);
        for (std::size_t i = 0; i < d * b; ++i) b_next[i] = 2.0f * b_next[i] - b_prev2[i];
        obs::add(obs::Counter::Flops, 2.0 * static_cast<double>(b) * dd_obs);
        obs::add(obs::Counter::BytesStreamed,
                 3.0 * static_cast<double>(b) * dd_obs * sizeof(float));
        block_dot_f32(b0, b_next, b, d, dots);
        for (std::size_t j = 0; j < b; ++j) {
          rows[j * n + k] += static_cast<double>(dots[j]);
          meter_dot32();
        }
        std::swap(b_prev2, b_prev);
        std::swap(b_prev, b_next);
      }

      for (std::size_t j = 0; j < b; ++j) {
        const double* row = rows.data() + j * n;
        for (std::size_t k = 0; k < n; ++k) mu_sum[k] += row[k];
      }
    }
  }

  MomentResult result;
  result.engine = name();
  result.instances_executed = executed;
  result.instances_total = total;
  result.wall_seconds = wall.seconds();
  result.mu.resize(n);
  const double denom = static_cast<double>(d) * static_cast<double>(executed);
  for (std::size_t k = 0; k < n; ++k) result.mu[k] = mu_sum[k] / denom;

  // Cost model: same operation counts as the reference engine but with
  // 4-byte elements (half the traffic, half the working set) and double
  // the SIMD flop rate.  Blocked runs stream the matrix once per group
  // step instead of once per member step.
  const auto dd = static_cast<double>(d);
  const double matrix_bytes = static_cast<double>(h_tilde.spmv_matrix_bytes()) / 2.0;
  const auto group_work = [&](std::size_t b) {
    const auto bb = static_cast<double>(b);
    cpumodel::CpuWorkload gw;
    gw.flops = (10.0 * dd + 2.0 * dd) * bb;
    gw.bytes_streamed = 2.0 * bb * dd * sizeof(float);
    for (std::size_t k = 1; k < n; ++k) {
      gw.flops += bb * (static_cast<double>(h_tilde.spmv_flops()) + 4.0 * dd);
      gw.bytes_streamed += matrix_bytes + 7.0 * bb * dd * sizeof(float);
    }
    gw.working_set_bytes = matrix_bytes + 4.0 * bb * dd * sizeof(float);
    return gw;
  };
  cpumodel::CpuWorkload w;
  if (block <= 1) {
    w = group_work(1);
    w.scale(static_cast<double>(total));
  } else {
    const std::size_t full = total / block;
    const std::size_t rem = total % block;
    w = group_work(block);
    const double ws_bytes = w.working_set_bytes;
    w.scale(static_cast<double>(full));
    w.working_set_bytes = full > 0 ? ws_bytes : 0.0;
    if (rem > 0) w += group_work(rem);
  }

  cpumodel::CpuSpec sp = spec_;
  sp.flops_per_cycle *= 2.0;  // twice the SIMD lanes in binary32
  const cpumodel::CpuStats stats = cpumodel::model_cpu_time(sp, w);
  result.model_seconds = stats.seconds;
  result.compute_seconds = stats.compute_seconds;
  return result;
}

}  // namespace kpm::core
