// Fused KPM recursion kernels: SpMV + Chebyshev combine + dot in one pass.
//
// The unfused recursion step
//     hx     = H~ * r_prev            (multiply: streams matrix, x, y)
//     r_next = 2 * hx - r_prev2       (chebyshev_combine: 2 reads, 1 write)
//     mu~_n  = <r0 | r_next>          (dot: 2 reads)
// touches the vectors three times.  Fusing keeps the row result in a
// register: per row the SpMV accumulator becomes r_next[r] directly and the
// dot contribution is added on the spot, so the combine's hx read/write and
// the dot's r_next re-read disappear.  Per step the vector traffic drops
// from 7 D doubles to 4 D (matrix traffic is unchanged) — the kernel-fusion
// lever of Kreutzer et al. (arXiv:1410.5242) applied to the host engines.
//
// Bit-compatibility contract: the fused kernels produce results that are
// bit-identical to the unfused multiply + chebyshev_combine + dot sequence.
// The per-row SpMV accumulation order matches CrsMatrix/DenseMatrix
// ::multiply exactly, and the dot accumulation uses linalg::dot's canonical
// 4-lane order (row r feeds lane r mod 4; total = (l0 + l1) + (l2 + l3)).
#pragma once

#include <complex>
#include <span>

#include "linalg/crs_matrix.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/hermitian_matrix.hpp"
#include "linalg/operator.hpp"

namespace kpm::linalg {

/// r_next = 2 * A * r_prev - r_prev2; returns <r0 | r_next>.
/// Preconditions: all spans have length A.rows() == A.cols(); r_next must
/// not alias r_prev, r_prev2 or r0 (the SpMV gathers r_prev while r_next is
/// written, and the dot reads r0 against freshly written rows).
[[nodiscard]] double spmv_combine_dot(const CrsMatrix& a, std::span<const double> r_prev,
                                      std::span<const double> r_prev2, std::span<const double> r0,
                                      std::span<double> r_next);
[[nodiscard]] double spmv_combine_dot(const DenseMatrix& a, std::span<const double> r_prev,
                                      std::span<const double> r_prev2, std::span<const double> r0,
                                      std::span<double> r_next);
/// Storage-dispatching overload for engine code.
[[nodiscard]] double spmv_combine_dot(const MatrixOperator& op, std::span<const double> r_prev,
                                      std::span<const double> r_prev2, std::span<const double> r0,
                                      std::span<double> r_next);

/// Both dot products the paired-moment recursion needs from one pass.
struct PairedDots {
  double next_prev = 0.0;  ///< <r_next | r_prev>  (feeds mu~_{2k+1})
  double prev_prev = 0.0;  ///< <r_prev | r_prev>  (feeds mu~_{2k})
};

/// r_next = 2 * A * r_prev - r_prev2; returns <r_next|r_prev> and
/// <r_prev|r_prev> computed in the same pass.  Same alias preconditions as
/// spmv_combine_dot.
[[nodiscard]] PairedDots spmv_combine_dot2(const CrsMatrix& a, std::span<const double> r_prev,
                                           std::span<const double> r_prev2,
                                           std::span<double> r_next);
[[nodiscard]] PairedDots spmv_combine_dot2(const DenseMatrix& a, std::span<const double> r_prev,
                                           std::span<const double> r_prev2,
                                           std::span<double> r_next);
[[nodiscard]] PairedDots spmv_combine_dot2(const MatrixOperator& op,
                                           std::span<const double> r_prev,
                                           std::span<const double> r_prev2,
                                           std::span<double> r_next);

/// Complex-Hermitian variant: r_next = 2 * A * r_prev - r_prev2; returns
/// Re<r0 | r_next> = sum_r Re(conj(r0[r]) * r_next[r]).  Accumulates the
/// dot left-to-right (single lane), matching the pre-fusion Hermitian
/// moment path bit-for-bit.  Same alias preconditions as spmv_combine_dot.
[[nodiscard]] double spmv_combine_dot_re(const CrsMatrixZ& a,
                                         std::span<const std::complex<double>> r_prev,
                                         std::span<const std::complex<double>> r_prev2,
                                         std::span<const std::complex<double>> r0,
                                         std::span<std::complex<double>> r_next);

}  // namespace kpm::linalg
