// Haydock recursion method: LDOS via Lanczos + continued fraction.
//
// The classical alternative to the KPM for local spectral densities
// (Haydock, Heine, Kelly 1972): run the Lanczos three-term recurrence from
// the start vector, then evaluate
//
//   G_00(E + i eta) = 1 / (E + i eta - a_0 - b_1^2 / (E + i eta - a_1 - ...))
//
// with a square-root terminator continuing the (a_n, b_n) tail, and
// rho(E) = -Im G_00 / pi.  Compared in bench/ablation_haydock against the
// KPM at equal matrix-vector-product budgets: KPM needs no eta parameter
// and its resolution is uniform; Haydock converges faster on smooth parts
// but rings near band edges without a good terminator.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "linalg/operator.hpp"

namespace kpm::diag {

/// Lanczos recursion coefficients from a start vector.
struct RecursionCoefficients {
  std::vector<double> a;  ///< diagonal, size = steps
  std::vector<double> b;  ///< off-diagonal, size = steps - 1 (b_1..)
  bool exhausted = false; ///< Krylov space ran out before the cap
};

/// Options for the Haydock evaluation.
struct HaydockOptions {
  std::size_t steps = 100;    ///< Lanczos depth (= matrix-vector products)
  double eta = 1e-3;          ///< broadening of E + i eta
  bool square_root_terminator = true;  ///< continue the tail analytically
};

/// Runs the Lanczos recurrence from `start` (need not be normalized).
/// The operator must be symmetric with spectrum anywhere (no rescaling
/// required — an advantage over KPM worth demonstrating).
[[nodiscard]] RecursionCoefficients haydock_coefficients(const linalg::MatrixOperator& h,
                                                         std::span<const double> start,
                                                         std::size_t steps);

/// Evaluates the continued fraction G_00(E + i eta) from the coefficients.
[[nodiscard]] std::complex<double> haydock_green(const RecursionCoefficients& coeffs, double energy,
                                                 const HaydockOptions& options);

/// LDOS rho_i(E) = -Im G_00 / pi at the given energies, from a unit start
/// vector at `site`.
[[nodiscard]] std::vector<double> haydock_ldos(const linalg::MatrixOperator& h, std::size_t site,
                                               std::span<const double> energies,
                                               const HaydockOptions& options = {});

}  // namespace kpm::diag
