// Correctness tests of the CPU moment engines against exact diagonalization
// and each other.
#include <gtest/gtest.h>

#include <cmath>

#include "core/moments_cpu.hpp"
#include "diag/spectrum_utils.hpp"
#include "diag/tridiag.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm;
using core::CpuMomentEngine;
using core::CpuPairedMomentEngine;
using core::MomentParams;

/// Builds the rescaled cubic-lattice operator used across the tests.
struct Fixture {
  linalg::CrsMatrix h_tilde;
  linalg::DenseMatrix h_dense;
  linalg::SpectralTransform transform;

  explicit Fixture(std::size_t l = 4)
      : h_tilde(linalg::CrsMatrix{}),
        h_dense(1, 1),
        transform({-1.0, 1.0}, 0.0) {
    const auto lat = lattice::HypercubicLattice::cubic(l, l, l);
    const auto h = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator op(h);
    transform = linalg::make_spectral_transform(op);
    h_tilde = linalg::rescale(h, transform);
    h_dense = lattice::build_tight_binding_dense(lat);
  }
};

TEST(CpuMoments, Mu0IsExactlyOneForRademacher) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 8;
  p.random_vectors = 2;
  p.realizations = 2;
  CpuMomentEngine engine;
  const auto r = engine.compute(op, p);
  // <r|r> = D exactly for +-1 entries, so mu_0 = 1 in exact arithmetic.
  EXPECT_DOUBLE_EQ(r.mu[0], 1.0);
}

TEST(CpuMoments, ConvergesToExactMomentsWithManyInstances) {
  Fixture f(3);  // D = 27
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 16;
  p.random_vectors = 16;
  p.realizations = 16;  // 256 instances
  CpuMomentEngine engine;
  const auto r = engine.compute(op, p);

  // Exact moments from the closed-form spectrum.
  const auto lat = lattice::HypercubicLattice::cubic(3, 3, 3);
  const auto spectrum = lattice::periodic_tight_binding_spectrum(lat);
  const auto exact = diag::exact_chebyshev_moments(spectrum, f.transform, 16);

  // Stochastic error ~ 1/sqrt(K D); allow 5 sigma-ish slack.
  const double tol = 5.0 / std::sqrt(256.0 * 27.0);
  for (std::size_t n = 0; n < 16; ++n)
    EXPECT_NEAR(r.mu[n], exact[n], tol) << "moment " << n;
}

TEST(CpuMoments, PairedEngineMatchesReferenceClosely) {
  // The paired identities are exact per instance in exact arithmetic; in
  // floating point the two engines agree to ~1e-12 on these scales.
  Fixture f(3);
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 33;  // odd count exercises the tail handling
  p.random_vectors = 3;
  p.realizations = 2;
  CpuMomentEngine ref;
  CpuPairedMomentEngine paired;
  const auto a = ref.compute(op, p);
  const auto b = paired.compute(op, p);
  ASSERT_EQ(a.mu.size(), b.mu.size());
  for (std::size_t n = 0; n < a.mu.size(); ++n)
    EXPECT_NEAR(a.mu[n], b.mu[n], 1e-11) << "moment " << n;
}

TEST(CpuMoments, DeterministicAcrossRuns) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 12;
  p.random_vectors = 2;
  p.realizations = 3;
  CpuMomentEngine engine;
  const auto a = engine.compute(op, p);
  const auto b = engine.compute(op, p);
  for (std::size_t n = 0; n < a.mu.size(); ++n) EXPECT_DOUBLE_EQ(a.mu[n], b.mu[n]);
}

TEST(CpuMoments, SeedChangesMoments) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 8;
  p.random_vectors = 1;
  p.realizations = 1;
  CpuMomentEngine engine;
  const auto a = engine.compute(op, p);
  p.seed += 1;
  const auto b = engine.compute(op, p);
  bool any_diff = false;
  for (std::size_t n = 1; n < a.mu.size(); ++n) any_diff |= a.mu[n] != b.mu[n];
  EXPECT_TRUE(any_diff);
}

TEST(CpuMoments, SamplingExtrapolatesCostNotMoments) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 8;
  p.random_vectors = 4;
  p.realizations = 4;
  CpuMomentEngine engine;
  const auto full = engine.compute(op, p);
  const auto sampled = engine.compute(op, p, 4);
  EXPECT_EQ(full.instances_executed, 16u);
  EXPECT_EQ(sampled.instances_executed, 4u);
  EXPECT_EQ(sampled.instances_total, 16u);
  // Model time covers ALL instances in both cases.
  EXPECT_NEAR(sampled.model_seconds, full.model_seconds, 1e-12);
  // The sampled moments equal a full run restricted to 4 instances — i.e.
  // deterministic, not equal to the 16-instance average in general.
  MomentParams p4 = p;
  p4.random_vectors = 4;
  p4.realizations = 1;
  const auto small = engine.compute(op, p4);
  for (std::size_t n = 0; n < 8; ++n) EXPECT_DOUBLE_EQ(sampled.mu[n], small.mu[n]);
}

TEST(CpuMoments, DenseAndCrsStorageGiveSameMoments) {
  Fixture f(3);
  const auto dense_tilde = linalg::rescale(f.h_dense, f.transform);
  linalg::MatrixOperator op_crs(f.h_tilde);
  linalg::MatrixOperator op_dense(dense_tilde);
  MomentParams p;
  p.num_moments = 10;
  p.random_vectors = 2;
  p.realizations = 2;
  CpuMomentEngine engine;
  const auto a = engine.compute(op_crs, p);
  const auto b = engine.compute(op_dense, p);
  for (std::size_t n = 0; n < 10; ++n) EXPECT_NEAR(a.mu[n], b.mu[n], 1e-12);
}

TEST(CpuMoments, ModelTimeScalesLinearlyWithN) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.random_vectors = 2;
  p.realizations = 2;
  CpuMomentEngine engine;
  p.num_moments = 128;
  const double t128 = engine.compute(op, p, 1).model_seconds;
  p.num_moments = 256;
  const double t256 = engine.compute(op, p, 1).model_seconds;
  EXPECT_NEAR(t256 / t128, 2.0, 0.05);
}

TEST(CpuMoments, PairedEngineModelsLessWork) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 256;
  p.random_vectors = 2;
  p.realizations = 2;
  const double t_ref = CpuMomentEngine().compute(op, p, 1).model_seconds;
  const double t_paired = CpuPairedMomentEngine().compute(op, p, 1).model_seconds;
  EXPECT_LT(t_paired, 0.75 * t_ref);
}

TEST(CpuMoments, InvalidParamsThrow) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  CpuMomentEngine engine;
  MomentParams p;
  p.num_moments = 1;
  EXPECT_THROW((void)engine.compute(op, p), kpm::Error);
  p.num_moments = 4;
  p.random_vectors = 0;
  EXPECT_THROW((void)engine.compute(op, p), kpm::Error);
}

TEST(CpuMoments, GaussianVectorsAlsoConverge) {
  Fixture f(3);
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = 8;
  p.random_vectors = 32;
  p.realizations = 8;
  p.vector_kind = rng::RandomVectorKind::Gaussian;
  CpuMomentEngine engine;
  const auto r = engine.compute(op, p);
  const auto lat = lattice::HypercubicLattice::cubic(3, 3, 3);
  const auto exact = diag::exact_chebyshev_moments(
      lattice::periodic_tight_binding_spectrum(lat), f.transform, 8);
  // Gaussian estimator has higher variance than Rademacher; looser tol.
  for (std::size_t n = 0; n < 8; ++n) EXPECT_NEAR(r.mu[n], exact[n], 0.05) << "moment " << n;
}

}  // namespace
