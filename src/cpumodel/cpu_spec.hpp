// Analytic CPU description for the paper's baseline platform.
//
// Fig. 8 of the paper hinges on CPU behaviour as the dense H~ grows past
// the last-level cache: "the CPU version needs to read/write the memory as
// increased the size of [the] H~ matrix".  The model is a classic roofline
// with a cache-hierarchy-aware effective bandwidth: the per-iteration
// working set selects the smallest cache level that contains it, and
// streaming bandwidth falls accordingly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace kpm::cpumodel {

/// One cache level: capacity and sustainable streaming bandwidth.
struct CacheLevel {
  std::string name;
  std::size_t capacity_bytes;
  double bandwidth;  ///< bytes/s sustained for a single thread
};

/// Static description of a CPU execution platform (single- and
/// multi-threaded; the paper's baseline uses one thread).
struct CpuSpec {
  std::string name;
  double clock_hz = 2.8e9;
  double flops_per_cycle = 2.0;  ///< sustained DP flops/cycle for this code shape
  std::vector<CacheLevel> caches;  ///< ordered smallest to largest
  double dram_bandwidth = 9.5e9;   ///< bytes/s, single-threaded

  // Multithreaded scaling (for the paper's §V "shared memory paradigm"
  // future-work engine): private caches scale with threads, shared
  // resources saturate.
  int cores = 4;                               ///< physical cores
  std::size_t private_cache_levels = 2;        ///< first K cache levels are per-core
  double shared_cache_saturated_bandwidth = 36.0e9;  ///< all-core LLC ceiling
  double dram_saturated_bandwidth = 17.0e9;    ///< all-core DRAM ceiling

  /// Peak sustained flop rate of one thread in FLOP/s.
  [[nodiscard]] double peak_flops() const noexcept { return clock_hz * flops_per_cycle; }

  /// Effective streaming bandwidth for a working set of `bytes`: the
  /// bandwidth of the smallest cache level that fits it, else DRAM.
  [[nodiscard]] double effective_bandwidth(double bytes) const noexcept {
    for (const auto& level : caches)
      if (bytes <= static_cast<double>(level.capacity_bytes)) return level.bandwidth;
    return dram_bandwidth;
  }

  /// Aggregate streaming bandwidth for `threads` cooperating threads, each
  /// with per-thread working set `bytes`: private levels scale linearly,
  /// shared levels saturate at their all-core ceilings.
  [[nodiscard]] double effective_bandwidth_parallel(double bytes, int threads) const noexcept {
    const auto t = static_cast<double>(threads < 1 ? 1 : (threads > cores ? cores : threads));
    for (std::size_t i = 0; i < caches.size(); ++i) {
      if (bytes <= static_cast<double>(caches[i].capacity_bytes)) {
        if (i < private_cache_levels) return caches[i].bandwidth * t;
        const double linear = caches[i].bandwidth * t;
        return linear < shared_cache_saturated_bandwidth ? linear
                                                         : shared_cache_saturated_bandwidth;
      }
    }
    const double linear = dram_bandwidth * t;
    return linear < dram_saturated_bandwidth ? linear : dram_saturated_bandwidth;
  }

  /// Throws kpm::Error if any parameter is non-physical.
  void validate() const;

  /// Intel Core i7-930 @ 2.80 GHz, one thread, gcc -O3 (the paper's CPU).
  static CpuSpec core_i7_930();
};

}  // namespace kpm::cpumodel
