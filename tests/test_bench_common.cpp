// bench_common scaffolding tests: --out-dir resolution must create nested
// directories, honor explicit paths, and fail with a clear message instead
// of letting a later fopen die cryptically.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "common/error.hpp"

namespace {

namespace fs = std::filesystem;
using kpm::bench::resolve_output;

struct TempDir {
  fs::path path;
  TempDir() : path(fs::temp_directory_path() / "kpm_bench_common_test") {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(ResolveOutput, CreatesNestedDirectories) {
  TempDir tmp;
  const std::string dir = (tmp.path / "a" / "b" / "c").string();
  const std::string out = resolve_output(dir, "series.csv");
  EXPECT_EQ(out, dir + "/series.csv");
  EXPECT_TRUE(fs::is_directory(dir)) << "--out-dir must be created recursively";
}

TEST(ResolveOutput, IsIdempotentForExistingDirectories) {
  TempDir tmp;
  const std::string dir = tmp.path.string();
  ASSERT_EQ(resolve_output(dir, "a.csv"), dir + "/a.csv");
  EXPECT_EQ(resolve_output(dir, "b.csv"), dir + "/b.csv");
}

TEST(ResolveOutput, HonorsExplicitPathsAndEmptyDir) {
  EXPECT_EQ(resolve_output("results", "/abs/path.csv"), "/abs/path.csv");
  EXPECT_EQ(resolve_output("results", "sub/rel.csv"), "sub/rel.csv");
  EXPECT_EQ(resolve_output("", "plain.csv"), "plain.csv");
}

TEST(ResolveOutput, FailsClearlyWhenOutDirIsAFile) {
  TempDir tmp;
  fs::create_directories(tmp.path);
  const std::string blocker = (tmp.path / "blocker").string();
  std::ofstream(blocker) << "not a directory";
  try {
    (void)resolve_output(blocker, "series.csv");
    FAIL() << "expected kpm::Error";
  } catch (const kpm::Error& e) {
    EXPECT_NE(std::string(e.what()).find(blocker), std::string::npos)
        << "the message must name the offending path";
  }
}

}  // namespace
