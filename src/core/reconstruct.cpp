#include "core/reconstruct.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "common/error.hpp"
#include "common/fft.hpp"
#include "core/chebyshev.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace kpm::core {
namespace {

// Counters for one reconstruction: `points` evaluations of an N-term
// Clenshaw recurrence (4 flops per term per point).
void meter_reconstruct(std::size_t points, std::size_t num_moments) {
  obs::add(obs::Counter::ReconstructPoints, static_cast<double>(points));
  obs::add(obs::Counter::Flops,
           4.0 * static_cast<double>(points) * static_cast<double>(num_moments));
}

std::vector<double> damp_moments(std::span<const double> mu, const ReconstructOptions& options) {
  const auto g = damping_coefficients(options.kernel, mu.size(), options.lorentz_lambda);
  std::vector<double> damped(mu.size());
  for (std::size_t k = 0; k < mu.size(); ++k) damped[k] = g[k] * mu[k];
  return damped;
}

}  // namespace

double evaluate_dos_series(std::span<const double> damped, double x) {
  KPM_REQUIRE(x > -1.0 && x < 1.0, "evaluate_dos_series: x must lie strictly inside (-1, 1)");
  // Clenshaw on coefficients a_0 = g0 mu0, a_n = 2 g_n mu_n.
  double b1 = 0.0, b2 = 0.0;
  for (std::size_t k = damped.size(); k-- > 1;) {
    const double b0 = 2.0 * damped[k] + 2.0 * x * b1 - b2;
    b2 = b1;
    b1 = b0;
  }
  const double series = damped[0] + x * b1 - b2;
  return series / (std::numbers::pi * std::sqrt(1.0 - x * x));
}

DosCurve reconstruct_dos(std::span<const double> mu, const linalg::SpectralTransform& transform,
                         const ReconstructOptions& options) {
  KPM_REQUIRE(!mu.empty(), "reconstruct_dos: no moments");
  KPM_REQUIRE(options.points > 0, "reconstruct_dos: need at least one point");
  obs::ScopedSpan span("reconstruct.dos");
  meter_reconstruct(options.points, mu.size());
  const auto damped = damp_moments(mu, options);
  const auto grid = chebyshev_gauss_grid(options.points);

  DosCurve curve;
  curve.energy.resize(grid.size());
  curve.density.resize(grid.size());
  const double jac = transform.density_jacobian();
  for (std::size_t j = 0; j < grid.size(); ++j) {
    curve.energy[j] = transform.to_physical(grid[j]);
    curve.density[j] = evaluate_dos_series(damped, grid[j]) * jac;
  }
  return curve;
}

DosCurve reconstruct_dos_fft(std::span<const double> mu,
                             const linalg::SpectralTransform& transform,
                             const ReconstructOptions& options) {
  KPM_REQUIRE(!mu.empty(), "reconstruct_dos_fft: no moments");
  const std::size_t m = options.points;
  KPM_REQUIRE(is_power_of_two(m), "reconstruct_dos_fft: points must be a power of two");
  KPM_REQUIRE(m >= mu.size(), "reconstruct_dos_fft: points must be >= the moment count");
  obs::ScopedSpan span("reconstruct.dos-fft");
  obs::add(obs::Counter::ReconstructPoints, static_cast<double>(m));
  // Radix-2 FFT of length 2M: ~5 * 2M * log2(2M) real flops.
  obs::add(obs::Counter::Flops, 5.0 * 2.0 * static_cast<double>(m) *
                                    (std::log2(2.0 * static_cast<double>(m))));
  const auto damped = damp_moments(mu, options);

  // gamma(theta_j) = a_0 + 2 sum_{n>=1} a_n cos(n theta_j) with
  // theta_j = pi (j + 1/2) / M.  Writing cos via e^{i n theta_j} and
  // absorbing the half-sample shift into b_n = a~_n e^{i pi n / 2M}, the
  // values are the real part of the inverse-sign FFT of b zero-padded to
  // 2M: gamma_j = Re sum_n b_n e^{i pi n j / M} = Re FFT^{+}_{2M}(b)[j].
  std::vector<std::complex<double>> b(2 * m, {0.0, 0.0});
  for (std::size_t n = 0; n < damped.size(); ++n) {
    const double scale = (n == 0 ? 1.0 : 2.0) * damped[n];
    const double phase = std::numbers::pi * static_cast<double>(n) / (2.0 * static_cast<double>(m));
    b[n] = scale * std::complex<double>(std::cos(phase), std::sin(phase));
  }
  fft_radix2(b, +1);

  DosCurve curve;
  curve.energy.resize(m);
  curve.density.resize(m);
  const double jac = transform.density_jacobian();
  for (std::size_t j = 0; j < m; ++j) {
    const double theta = std::numbers::pi * (static_cast<double>(j) + 0.5) /
                         static_cast<double>(m);
    const double x = std::cos(theta);
    // chebyshev_gauss_grid orders ascending in x = descending in j.
    const std::size_t out = m - 1 - j;
    curve.energy[out] = transform.to_physical(x);
    curve.density[out] = b[j].real() / (std::numbers::pi * std::sin(theta)) * jac;
  }
  return curve;
}

DosCurve reconstruct_dos_at(std::span<const double> mu,
                            const linalg::SpectralTransform& transform,
                            std::span<const double> energies,
                            const ReconstructOptions& options) {
  KPM_REQUIRE(!mu.empty(), "reconstruct_dos_at: no moments");
  obs::ScopedSpan span("reconstruct.dos-at");
  meter_reconstruct(energies.size(), mu.size());
  const auto damped = damp_moments(mu, options);

  DosCurve curve;
  curve.energy.assign(energies.begin(), energies.end());
  curve.density.resize(energies.size());
  const double jac = transform.density_jacobian();
  for (std::size_t j = 0; j < energies.size(); ++j) {
    const double x = transform.to_unit(energies[j]);
    KPM_REQUIRE(x > -1.0 && x < 1.0,
                "reconstruct_dos_at: energy outside the rescaled spectrum interval");
    curve.density[j] = evaluate_dos_series(damped, x) * jac;
  }
  return curve;
}

double dos_integral(const DosCurve& curve) {
  KPM_REQUIRE(curve.energy.size() == curve.density.size() && curve.energy.size() >= 2,
              "dos_integral: need a sampled curve");
  double acc = 0.0;
  for (std::size_t j = 1; j < curve.energy.size(); ++j)
    acc += 0.5 * (curve.density[j] + curve.density[j - 1]) *
           (curve.energy[j] - curve.energy[j - 1]);
  return acc;
}

double dos_mean_energy(const DosCurve& curve) {
  KPM_REQUIRE(curve.energy.size() == curve.density.size() && curve.energy.size() >= 2,
              "dos_mean_energy: need a sampled curve");
  double acc = 0.0;
  for (std::size_t j = 1; j < curve.energy.size(); ++j) {
    const double fa = curve.energy[j - 1] * curve.density[j - 1];
    const double fb = curve.energy[j] * curve.density[j];
    acc += 0.5 * (fa + fb) * (curve.energy[j] - curve.energy[j - 1]);
  }
  return acc;
}

}  // namespace kpm::core
