// Umbrella header: the full public API of the KPM library.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto lat = kpm::lattice::HypercubicLattice::cubic(10, 10, 10);
//   auto h   = kpm::lattice::build_tight_binding_crs(lat);
//   kpm::linalg::MatrixOperator op(h);
//   auto t   = kpm::linalg::make_spectral_transform(op);
//   auto ht  = kpm::linalg::rescale(h, t);
//   kpm::linalg::MatrixOperator op_t(ht);
//
//   kpm::core::MomentParams params{.num_moments = 512};
//   kpm::core::GpuMomentEngine engine;            // simulated Tesla C2050
//   auto moments = engine.compute(op_t, params);
//   auto dos = kpm::core::reconstruct_dos(moments.mu, t);
#pragma once

#include "core/chebyshev.hpp"
#include "core/conductivity.hpp"
#include "core/conductivity_gpu.hpp"
#include "core/damping.hpp"
#include "core/estimator_stats.hpp"
#include "core/evolution.hpp"
#include "core/green.hpp"
#include "core/disorder_study.hpp"
#include "core/highlevel.hpp"
#include "core/io.hpp"
#include "core/ldos.hpp"
#include "core/ldos_gpu.hpp"
#include "core/moments.hpp"
#include "core/moments_cpu.hpp"
#include "core/moments_f32.hpp"
#include "core/moments_gpu.hpp"
#include "core/moments_gpu_chunked.hpp"
#include "core/moments_hermitian.hpp"
#include "core/moments_hermitian_gpu.hpp"
#include "core/moments_multigpu.hpp"
#include "core/params.hpp"
#include "core/reconstruct.hpp"
#include "core/spectral_filter.hpp"
#include "core/thermodynamics.hpp"
#include "diag/haydock.hpp"
#include "diag/jacobi.hpp"
#include "diag/lanczos.hpp"
#include "diag/level_statistics.hpp"
#include "diag/spectrum_utils.hpp"
#include "diag/tridiag.hpp"
#include "lattice/current.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/honeycomb.hpp"
#include "lattice/lattice.hpp"
#include "lattice/peierls.hpp"
#include "linalg/gershgorin.hpp"
#include "linalg/operator.hpp"
#include "linalg/spectral_transform.hpp"
