#include "core/gpu_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "gpusim/view.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/counters.hpp"
#include "rng/distributions.hpp"

namespace kpm::core {

using gpusim::AccessPattern;

const char* to_string(GpuMapping m) noexcept {
  return m == GpuMapping::InstancePerBlock ? "instance-per-block" : "instance-per-thread";
}

namespace detail {

void instance_recursion(const DeviceMatrixRef& h, std::span<const double> r0, std::span<double> a,
                        std::span<double> b, std::span<double> mu_tilde,
                        std::size_t num_moments) {
  const std::size_t d = h.dim;
  // Functional-work counters (instances, SpMVs, dots) match the serial CPU
  // reference exactly; modeled GPU flop/byte totals stay in the gpu_*
  // counters via the gpusim timeline bridge.
  obs::add(obs::Counter::InstancesExecuted, 1.0);
  obs::add(obs::Counter::SpmvCalls,
           num_moments >= 2 ? static_cast<double>(num_moments - 1) : 0.0);
  obs::add(obs::Counter::DotCalls, static_cast<double>(num_moments));
  // linalg::dot's canonical 4-lane order — keeps this simulated kernel
  // bit-identical to the (fused) CPU reference engine.
  auto dot_r0 = [&](std::span<const double> v) { return linalg::dot(r0, v); };

  // mu~_0 = <r0|r0>.
  mu_tilde[0] = dot_r0(r0);
  if (num_moments == 1) return;

  // |r1> = H~|r0>;  mu~_1 = <r0|r1>.
  h.multiply(r0, a);
  mu_tilde[1] = dot_r0(a);

  // n = 2: |r2> = 2 H~|r1> - |r0>  (prev2 is the read-only r0; target b).
  if (num_moments > 2) {
    h.multiply(a, b);
    for (std::size_t i = 0; i < d; ++i) b[i] = 2.0 * b[i] - r0[i];
    mu_tilde[2] = dot_r0(b);
  }

  // n >= 3: |r_n> = 2 H~|r_{n-1}> - |r_{n-2}>, overwriting prev2 in place.
  // cur alternates between b and a; the SpMV result lands in a scratch
  // accumulation per row, so in-place combine against prev2 is safe.
  std::span<double> cur = b;
  std::span<double> other = a;  // holds r_{n-2}; becomes r_n
  for (std::size_t n = 3; n < num_moments; ++n) {
    if (h.storage == linalg::Storage::Dense) {
      for (std::size_t r = 0; r < d; ++r) {
        const double* row = h.values.data() + r * d;
        double acc = 0.0;
        for (std::size_t c = 0; c < d; ++c) acc += row[c] * cur[c];
        other[r] = 2.0 * acc - other[r];
      }
    } else {
      for (std::size_t r = 0; r < d; ++r) {
        double acc = 0.0;
        for (auto k = h.row_ptr[r]; k < h.row_ptr[r + 1]; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          acc += h.values[kk] * cur[static_cast<std::size_t>(h.col_idx[kk])];
        }
        other[r] = 2.0 * acc - other[r];
      }
    }
    mu_tilde[n] = dot_r0(other);
    std::swap(cur, other);
  }
}

}  // namespace detail

void FillRandomKernel::block_phase(int /*phase*/, gpusim::BlockContext& block) {
  const std::size_t inst = block.bid();
  if (inst >= active_) return;

  gpusim::GlobalView<double> r0(*r0_, AccessPattern::Coalesced, block.counters());
  const std::size_t base = inst * dim_;

  // Threads stride the vector elements (coalesced layout within the
  // instance's slice); counter-based RNG makes the result order-free.
  auto out = r0.bulk_store(base, dim_);
  obs::add(obs::Counter::RngElements, static_cast<double>(dim_));
  const std::uint64_t stream = inst + stream_offset_;
  for (std::size_t i = 0; i < dim_; ++i)
    out[i] = rng::draw_random_element(params_->vector_kind, params_->seed, stream, i);
  // ~10 flops/element for the Philox rounds + transform.
  block.flop(10.0 * static_cast<double>(dim_));
}

void RecursionBlockKernel::block_phase(int /*phase*/, gpusim::BlockContext& block) {
  const std::size_t inst = block.bid();
  if (inst >= active_) return;

  const std::size_t d = h_.dim;
  const std::size_t n = params_->num_moments;
  const std::size_t base = inst * d;

  detail::instance_recursion(h_, r0_->raw().subspan(base, d), work_a_->raw().subspan(base, d),
                             work_b_->raw().subspan(base, d),
                             mu_tilde_->raw().subspan(inst * n, n), n);
  meter_instance(block);
}

void RecursionBlockKernel::meter_instance(gpusim::BlockContext& block) const {
  // Analytic traffic of one instance's recursion under the
  // instance-per-block mapping (see header).  Data-independent, so adding
  // totals after the functional loop is exact.
  const auto d = static_cast<double>(h_.dim);
  const auto n = static_cast<double>(params_->num_moments);
  const double entries = static_cast<double>(h_.stored_entries);
  const double matrix_bytes = h_.traversal_bytes();
  auto& c = block.counters();

  // The matrix streams once per SpMV; when it fits the device L2 the
  // re-reads across concurrently resident blocks are served on-chip
  // (Broadcast-rate), otherwise each block's traversal reaches DRAM with
  // partial-transaction efficiency (Strided).
  const auto mat_pattern = matrix_bytes <= static_cast<double>(l2_bytes_)
                               ? AccessPattern::Broadcast
                               : AccessPattern::Strided;
  const std::size_t mat = static_cast<std::size_t>(mat_pattern);
  const std::size_t coal = static_cast<std::size_t>(AccessPattern::Coalesced);

  const double spmvs = n - 1.0;  // one per moment from n = 1
  c.global_read_bytes[mat] += spmvs * matrix_bytes;
  // x staged into shared once per SpMV (coalesced global read), then the
  // per-entry gathers hit shared memory; matrix words also pass through
  // shared after the global stream.
  c.global_read_bytes[coal] += spmvs * d * sizeof(double);
  c.shared_bytes += spmvs * (entries * sizeof(double) + matrix_bytes);
  // y / combine: write next (D), read prev2 (D) per step from n = 2.
  c.global_write_bytes[coal] += spmvs * d * sizeof(double);
  c.global_read_bytes[coal] += (n - 2.0) * d * sizeof(double);
  // Dots <r0|r_n>: read r0 + r_n per moment (r_n often still in registers,
  // charged anyway: the paper's kernel re-reads it), plus the tree
  // reduction.
  c.global_read_bytes[coal] += n * 2.0 * d * sizeof(double);
  const auto threads = static_cast<double>(block.threads());
  c.shared_bytes += n * 2.0 * threads * sizeof(double);  // reduction traffic
  c.barriers += n * (std::ceil(std::log2(std::max(2.0, threads))) + 2.0);
  // mu~ writes.
  c.global_write_bytes[coal] += n * sizeof(double);

  // Flops: SpMV (2/entry) + combine (2/element) + dots (2/element).
  c.flops += spmvs * 2.0 * entries + (n - 2.0) * 2.0 * d + n * 2.0 * d;
}

void RecursionBlockPairedKernel::block_phase(int /*phase*/, gpusim::BlockContext& block) {
  const std::size_t inst = block.bid();
  if (inst >= active_) return;

  const std::size_t d = h_.dim;
  const std::size_t n = params_->num_moments;
  const std::size_t half = (n + 1) / 2;
  const auto r0 = r0_->raw().subspan(inst * d, d);
  auto a = work_a_->raw().subspan(inst * d, d);
  auto b = work_b_->raw().subspan(inst * d, d);
  auto mu = mu_tilde_->raw().subspan(inst * n, n);

  // r_1 plus (half - 1) recursion steps — same SpMV count as the fused CPU
  // paired engine.
  obs::add(obs::Counter::InstancesExecuted, 1.0);
  obs::add(obs::Counter::SpmvCalls, static_cast<double>(half));

  // Same canonical dot order as the fused CPU paired engine (bitwise tests
  // compare the two engines moment-by-moment).
  auto dot = [&](std::span<const double> x, std::span<const double> y) {
    return linalg::dot(x, y);
  };

  const double mu0 = dot(r0, r0);
  mu[0] = mu0;
  h_.multiply(r0, a);  // r_1
  double mu1 = 0.0;
  if (n > 1) {
    mu1 = dot(r0, a);
    mu[1] = mu1;
  }

  // cur = r_k, other = r_{k-1} (overwritten in place with r_{k+1}).
  std::span<double> cur = a;
  std::span<double> other = b;
  bool other_is_r0 = true;  // at k = 1 the prev2 vector is r0 itself
  for (std::size_t k = 1; k < half; ++k) {
    const std::size_t even = 2 * k;
    if (even < n) mu[even] = 2.0 * dot(cur, cur) - mu0;

    // r_{k+1} = 2 H r_k - r_{k-1}, written into `other`.
    const std::span<const double> prev2 = other_is_r0 ? std::span<const double>(r0) : other;
    if (h_.storage == linalg::Storage::Dense) {
      for (std::size_t r = 0; r < d; ++r) {
        const double* row = h_.values.data() + r * d;
        double acc = 0.0;
        for (std::size_t c = 0; c < d; ++c) acc += row[c] * cur[c];
        other[r] = 2.0 * acc - prev2[r];
      }
    } else {
      for (std::size_t r = 0; r < d; ++r) {
        double acc = 0.0;
        for (auto kk = h_.row_ptr[r]; kk < h_.row_ptr[r + 1]; ++kk) {
          const auto idx = static_cast<std::size_t>(kk);
          acc += h_.values[idx] * cur[static_cast<std::size_t>(h_.col_idx[idx])];
        }
        other[r] = 2.0 * acc - prev2[r];
      }
    }
    other_is_r0 = false;

    const std::size_t odd = 2 * k + 1;
    if (odd < n) mu[odd] = 2.0 * dot(other, cur) - mu1;
    std::swap(cur, other);
  }
  meter_instance(block);
}

void RecursionBlockPairedKernel::meter_instance(gpusim::BlockContext& block) const {
  const auto d = static_cast<double>(h_.dim);
  const auto n = static_cast<double>(params_->num_moments);
  const double half = std::ceil(n / 2.0);
  const double entries = static_cast<double>(h_.stored_entries);
  const double matrix_bytes = h_.traversal_bytes();
  auto& c = block.counters();

  const auto mat = static_cast<std::size_t>(matrix_bytes <= static_cast<double>(l2_bytes_)
                                                ? gpusim::AccessPattern::Broadcast
                                                : gpusim::AccessPattern::Strided);
  const auto coal = static_cast<std::size_t>(gpusim::AccessPattern::Coalesced);
  const double spmvs = half;  // r_1 plus (half - 1) steps
  c.global_read_bytes[mat] += spmvs * matrix_bytes;
  c.global_read_bytes[coal] += spmvs * d * sizeof(double);
  c.shared_bytes += spmvs * (entries * sizeof(double) + matrix_bytes);
  c.global_write_bytes[coal] += spmvs * d * sizeof(double);
  c.global_read_bytes[coal] += (half - 1.0) * d * sizeof(double);        // prev2
  c.global_read_bytes[coal] += (n + 1.0) * 2.0 * d * sizeof(double);     // the dots
  const auto threads = static_cast<double>(block.threads());
  c.shared_bytes += (n + 1.0) * 2.0 * threads * sizeof(double);
  c.barriers += half * (std::ceil(std::log2(std::max(2.0, threads))) + 2.0);
  c.global_write_bytes[coal] += n * sizeof(double);
  c.flops += spmvs * 2.0 * entries + (half - 1.0) * 2.0 * d + (n + 1.0) * 2.0 * d;
}

void RecursionThreadKernel::block_phase(int /*phase*/, gpusim::BlockContext& block) {
  const std::size_t threads = block.threads();
  const std::size_t d = h_.dim;
  const std::size_t n = params_->num_moments;
  std::size_t active_in_block = 0;

  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t inst = block.bid() * threads + t;
    if (inst >= active_) continue;
    ++active_in_block;
    const std::size_t base = inst * d;
    detail::instance_recursion(h_, r0_->raw().subspan(base, d), work_a_->raw().subspan(base, d),
                               work_b_->raw().subspan(base, d),
                               mu_tilde_->raw().subspan(inst * n, n), n);
  }
  if (active_in_block == 0) return;

  // --- Metering (per block, covering its active threads). ---
  const auto dd = static_cast<double>(d);
  const auto nn = static_cast<double>(n);
  const double entries = static_cast<double>(h_.stored_entries);
  const double matrix_bytes = h_.traversal_bytes();
  auto& c = block.counters();

  // All lanes of a warp traverse H~ in lockstep: one broadcast-served
  // stream per warp (not per thread) — unless the matrix exceeds L2, in
  // which case warps drift and each warp's stream pays DRAM strided cost.
  // Fractional warps keep the count exactly linear in active instances, so
  // instance-sampling extrapolation (cost_scale) is exact.
  const double warps = static_cast<double>(active_in_block) / 32.0;
  const auto mat_pattern = matrix_bytes <= static_cast<double>(l2_bytes_)
                               ? AccessPattern::Broadcast
                               : AccessPattern::Strided;
  const auto mat = static_cast<std::size_t>(mat_pattern);
  const auto strided = static_cast<std::size_t>(AccessPattern::Strided);
  const double spmvs = nn - 1.0;
  c.global_read_bytes[mat] += warps * spmvs * matrix_bytes;

  // Vector traffic is per thread and uncoalesced (instance-major layout:
  // lane k's element i lives D elements away from lane k+1's).
  const auto k = static_cast<double>(active_in_block);
  c.global_read_bytes[strided] += k * spmvs * entries * sizeof(double);        // x gathers
  c.global_write_bytes[strided] += k * spmvs * dd * sizeof(double);            // next writes
  c.global_read_bytes[strided] += k * (nn - 2.0) * dd * sizeof(double);        // prev2 reads
  c.global_read_bytes[strided] += k * nn * 2.0 * dd * sizeof(double);          // dot reads
  c.global_write_bytes[strided] += k * nn * sizeof(double);                    // mu~ writes

  c.flops += k * (spmvs * 2.0 * entries + (nn - 2.0) * 2.0 * dd + nn * 2.0 * dd);
}

void AverageMomentsKernel::thread_phase(int /*phase*/, gpusim::ThreadContext& thread) {
  const std::size_t n = thread.global_tid();
  if (n >= n_) return;

  // Ordered sum over the executed instances (matches the CPU reference
  // bit-for-bit); functional access is unmetered, the cost below is
  // modeled analytically for the FULL instance count.
  const auto src = mu_tilde_->raw();
  double acc = 0.0;
  for (std::size_t k = 0; k < active_; ++k) acc += src[k * n_ + n];
  mu_->raw()[n] = acc / (static_cast<double>(dim_) * static_cast<double>(active_));

  auto& c = thread.block().counters();
  const auto modeled = static_cast<double>(modeled_);
  c.global_read_bytes[static_cast<std::size_t>(AccessPattern::Strided)] +=
      modeled * sizeof(double);
  c.global_write_bytes[static_cast<std::size_t>(AccessPattern::Coalesced)] += sizeof(double);
  c.flops += modeled + 1.0;  // the adds plus the final division
}

}  // namespace kpm::core
