// Driving the gpusim substrate directly: a profiled KPM pipeline.
//
// The other examples use the moment engines; this one shows the simulator
// as a standalone library — allocate, upload, launch the three KPM kernels
// by hand on two streams, and print the nvprof-style timeline with the
// copy/compute overlap visible.
//
//   $ device_profile [--edge=10] [--moments=128]
#include <cstdio>

#include "common/cli.hpp"
#include "core/device_matrix.hpp"
#include "core/gpu_kernels.hpp"
#include "common/units.hpp"
#include "core/kpm.hpp"
#include "gpusim/timeline_report.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("device_profile", "hand-driven gpusim pipeline with timeline output");
  const auto* edge = cli.add_int("edge", 10, "cubic lattice edge");
  const auto* n = cli.add_int("moments", 128, "Chebyshev moments");
  const auto* insts = cli.add_int("instances", 64, "stochastic instances");
  cli.parse(argc, argv);

  // Workload: the paper's lattice, rescaled.
  const auto lat = lattice::HypercubicLattice::cubic(static_cast<std::size_t>(*edge),
                                                     static_cast<std::size_t>(*edge),
                                                     static_cast<std::size_t>(*edge));
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw(h);
  const auto transform = linalg::make_spectral_transform(raw);
  const auto ht = linalg::rescale(h, transform);
  linalg::MatrixOperator op(ht);

  const std::size_t d = op.dim();
  const auto total = static_cast<std::size_t>(*insts);
  core::MomentParams params;
  params.num_moments = static_cast<std::size_t>(*n);
  params.random_vectors = total;
  params.realizations = 1;

  // --- The CUDA-style host program, spelled out. ---
  gpusim::Device device(gpusim::DeviceSpec::tesla_c2050());
  const gpusim::StreamId io_stream = device.create_stream();

  core::DeviceMatrix h_dev(device, op);  // allocs + H~ upload
  auto r0 = device.alloc<double>(total * d, "r0 vectors");
  auto work_a = device.alloc<double>(total * d, "work a");
  auto work_b = device.alloc<double>(total * d, "work b");
  auto mu_tilde = device.alloc<double>(total * params.num_moments, "mu~");
  auto mu_dev = device.alloc<double>(params.num_moments, "mu");

  gpusim::ExecConfig cfg;
  cfg.grid = gpusim::Dim3{static_cast<std::uint32_t>(total)};
  cfg.block = gpusim::Dim3{128};

  // RNG fill on the I/O stream (overlaps nothing here, but shows the API).
  core::FillRandomKernel fill(params, d, total, r0);
  device.launch(cfg, fill, 1.0, io_stream);
  device.wait_event(0, device.record_event(io_stream));

  core::RecursionBlockKernel rec(params, h_dev.ref(), total,
                                 device.spec().l2_cache_bytes, r0, work_a, work_b, mu_tilde);
  device.launch(cfg, rec);

  core::AverageMomentsKernel avg(params.num_moments, d, total, total, mu_tilde, mu_dev);
  device.launch(gpusim::ExecConfig::linear(params.num_moments, 128), avg);

  // Gate the download on the averaging kernel (cross-stream dependency —
  // without this event the modeled copy would start before the result
  // exists, like a missing cudaStreamWaitEvent in real code).
  device.wait_event(io_stream, device.record_event(0));
  std::vector<double> mu(params.num_moments);
  device.copy_to_host<double>(mu_dev, mu, "mu download", io_stream);
  device.synchronize();

  // --- The profile. ---
  std::printf("%s\n", gpusim::timeline_to_text(device).c_str());
  std::printf("%s\n", gpusim::timeline_summary_line(device).c_str());
  std::printf("VRAM peak: %s of %s\n",
              format_bytes(static_cast<double>(device.vram_peak())).c_str(),
              format_bytes(static_cast<double>(device.vram_capacity())).c_str());
  std::printf("\nmu_0 = %.6f (must be 1), mu_2 = %.6f\n", mu[0], mu[2]);
  return 0;
}
