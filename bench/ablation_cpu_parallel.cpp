// Ablation: shared-memory CPU parallelization — the paper's other §V
// future-work axis ("the parallelization of the KPM on a message passing
// and a shared memory paradigm").
//
// The recursion itself is serial, but the S*R instances are independent,
// so an OpenMP port would parallelize across instances.  This bench models
// the i7-930 with 1..4 cores on the Fig. 5 (cache-resident) and Fig. 8
// (DRAM-bound) workloads: the cache-resident case scales, the DRAM-bound
// one saturates the memory controller — the quantitative argument for the
// paper's GPU choice.
#include "bench_common.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("ablation_cpu_parallel", "multicore CPU scaling vs the GPU");
  const auto* n = cli.add_int("N", 256, "number of moments");
  const auto* r = cli.add_int("R", 14, "random vectors per realization");
  const auto* s = cli.add_int("S", 128, "realizations");
  const auto* sample = cli.add_int("sample", 4, "instances executed functionally (0 = all)");
  const auto* csv = cli.add_string("csv", "ablation_cpu_parallel.csv", "CSV output path");
  cli.parse(argc, argv);

  core::MomentParams params;
  params.num_moments = static_cast<std::size_t>(*n);
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = static_cast<std::size_t>(*s);

  // Workload A: the sparse lattice (matrix lives in L2) — compute-bound.
  const auto lat = lattice::HypercubicLattice::cubic(10, 10, 10);
  const auto h_sparse = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw_sparse(h_sparse);
  const auto t_sparse = linalg::make_spectral_transform(raw_sparse);
  const auto ht_sparse = linalg::rescale(h_sparse, t_sparse);

  // Workload B: dense H_SIZE = 2048 — DRAM-bound on the CPU.
  const auto h_dense = lattice::random_symmetric_dense(2048, 0xCAFE);
  linalg::MatrixOperator raw_dense(h_dense);
  const auto t_dense = linalg::make_spectral_transform(raw_dense);
  const auto ht_dense = linalg::rescale(h_dense, t_dense);

  bench::print_banner("=== Ablation: multicore CPU vs GPU (paper section V) ===",
                      "A: " + lat.describe() + " sparse; B: dense H_SIZE=2048", params,
                      static_cast<std::size_t>(*sample));

  Table table({"workload", "platform", "time s", "scaling vs 1 core"});
  for (const bool dense : {false, true}) {
    linalg::MatrixOperator op = dense ? linalg::MatrixOperator(ht_dense)
                                      : linalg::MatrixOperator(ht_sparse);
    const char* label = dense ? "B dense 2048 (DRAM)" : "A sparse 1000 (cache)";

    double t1 = 0.0;
    for (int threads : {1, 2, 4}) {
      core::CpuParallelMomentEngine engine(threads);
      const auto result = engine.compute(op, params, static_cast<std::size_t>(*sample));
      if (threads == 1) t1 = result.model_seconds;
      table.add_row({label, strprintf("CPU x%d", threads),
                     strprintf("%.3f", result.model_seconds),
                     strprintf("%.2fx", t1 / result.model_seconds)});
    }
    core::GpuMomentEngine gpu;
    const auto g = gpu.compute(op, params, static_cast<std::size_t>(*sample));
    table.add_row({label, "GPU C2050", strprintf("%.3f", g.model_seconds),
                   strprintf("%.2fx", t1 / g.model_seconds)});
  }
  bench::finish(table, *csv);
  std::printf("expected: the cache-resident workload scales ~linearly on cores; the\n"
              "DRAM-bound one saturates near 1.8x — while the GPU keeps its margin.\n");
  return 0;
}
