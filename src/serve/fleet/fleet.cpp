#include "serve/fleet/fleet.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/error.hpp"
#include "common/table.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace kpm::serve {

void FleetConfig::validate() const {
  KPM_REQUIRE(!shards.empty(), "FleetConfig: need at least one shard");
  std::unordered_set<std::string> names;
  for (const FleetShardSpec& spec : shards) {
    KPM_REQUIRE(!spec.name.empty(), "FleetConfig: shard name must not be empty");
    KPM_REQUIRE(names.insert(spec.name).second,
                "FleetConfig: duplicate shard name '" + spec.name + "'");
  }
  ring.validate();
  shard_config.validate();
}

Fleet::Fleet(FleetConfig config) : config_(std::move(config)), router_(config_.ring) {
  config_.validate();
  // Canonical order: every downstream loop (and the ring itself) is then a
  // pure function of the shard *set*, never of enumeration order.
  std::sort(config_.shards.begin(), config_.shards.end(),
            [](const FleetShardSpec& a, const FleetShardSpec& b) { return a.name < b.name; });
  servers_.reserve(config_.shards.size());
  for (const FleetShardSpec& spec : config_.shards) {
    router_.add_shard(spec.name);
    ServeConfig sc = config_.shard_config;
    sc.pricing = spec.pricing;
    sc.cache_policy = spec.cache_policy;
    servers_.push_back(std::make_unique<Server>(sc));
  }
}

Fleet::~Fleet() = default;

void Fleet::register_model(const std::string& name, const linalg::CrsMatrix& h) {
  for (const auto& server : servers_) server->register_model(name, h);
}

void Fleet::register_current(const std::string& model, std::size_t axis,
                             const linalg::CrsMatrix& a) {
  for (const auto& server : servers_) server->register_current(model, axis, a);
}

FleetResult Fleet::run(const std::vector<Request>& requests) {
  obs::ScopedSpan run_span("fleet.run");
  obs::add(obs::Counter::FleetShards, static_cast<double>(servers_.size()));

  // Fleet-wide id uniqueness up front: per-shard validation cannot see
  // duplicates the ring happens to separate.
  std::unordered_set<std::uint64_t> seen_ids;
  for (const Request& req : requests) {
    const std::uint64_t id = base_of(req).id;
    KPM_REQUIRE(seen_ids.insert(id).second,
                "fleet: duplicate request id " + std::to_string(id));
  }

  // Route on the canonical key (shard 0's key_of — every shard registers
  // the same models, so any shard computes the same key).
  std::vector<std::vector<Request>> partitions(servers_.size());
  for (const Request& req : requests) {
    const MomentKey key = servers_[0]->key_of(req);
    partitions[router_.route_index(key.hash())].push_back(req);
    obs::add(obs::Counter::FleetRequestsRouted, 1.0);
  }

  FleetResult result;
  result.ring_fingerprint = router_.fingerprint();
  result.responses.reserve(requests.size());
  obs::Report* report = obs::active_report();

  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const FleetShardSpec& spec = config_.shards[i];
    const std::size_t timelines_before = report != nullptr ? report->timelines.size() : 0;
    std::vector<Response> responses;
    {
      obs::ScopedSpan shard_span("fleet.shard." + spec.name);
      responses = servers_[i]->run(partitions[i]);
    }
    if (report != nullptr) {
      // Prefix device timelines the shard's engines emitted so the Chrome
      // export renders one Perfetto process per shard.
      for (std::size_t t = timelines_before; t < report->timelines.size(); ++t)
        report->timelines[t].label = spec.name + ":" + report->timelines[t].label;
      report->sections.push_back({"serve." + spec.name, servers_[i]->section_json()});
    }
    obs::record(obs::Histo::FleetShardRequests, partitions[i].size());

    FleetShardOutcome outcome;
    outcome.name = spec.name;
    outcome.pricing = spec.pricing;
    outcome.cache_policy = spec.cache_policy;
    outcome.routed = partitions[i].size();
    outcome.stats = servers_[i]->stats();
    for (const Response& r : responses)
      outcome.makespan_seconds = std::max(outcome.makespan_seconds, r.finish_seconds);
    result.makespan_seconds = std::max(result.makespan_seconds, outcome.makespan_seconds);
    result.shards.push_back(std::move(outcome));
    result.responses.insert(result.responses.end(),
                            std::make_move_iterator(responses.begin()),
                            std::make_move_iterator(responses.end()));
  }

  for (const Response& r : result.responses) {
    if (r.status != ResponseStatus::Ok) {
      result.shed += 1;
      continue;
    }
    result.served += 1;
    const double latency = r.finish_seconds - r.arrival_seconds;
    obs::record(obs::Histo::FleetLatencyNs, obs::seconds_to_ns_ticks(latency));
    if (config_.slo_seconds > 0.0 && latency <= config_.slo_seconds) result.slo_met += 1;
  }
  result.machine_seconds =
      static_cast<double>(servers_.size()) * result.makespan_seconds;

  std::sort(result.responses.begin(), result.responses.end(),
            [](const Response& a, const Response& b) { return a.id < b.id; });

  // kpm.serve.fleet/1: the routing function, per-shard summary and fleet
  // totals.  Per-response records live in the per-shard serve.* sections.
  std::ostringstream os;
  os << "{\n      \"schema\": \"kpm.serve.fleet/1\",\n";
  os << "      \"ring\": {\"virtual_nodes\": " << config_.ring.virtual_nodes
     << ", \"seed\": " << config_.ring.seed << ", \"fingerprint\": \""
     << strprintf("0x%016llx", static_cast<unsigned long long>(result.ring_fingerprint))
     << "\"},\n";
  os << "      \"slo_seconds\": " << obs::json_number(config_.slo_seconds) << ",\n";
  os << "      \"shards\": [";
  for (std::size_t i = 0; i < result.shards.size(); ++i) {
    const FleetShardOutcome& o = result.shards[i];
    if (i > 0) os << ",";
    os << "\n        {\"name\": \"" << obs::json_escape(o.name) << "\", \"pricing\": \""
       << to_string(o.pricing) << "\", \"cache_policy\": \"" << to_string(o.cache_policy)
       << "\", \"routed\": " << o.routed << ", \"batches\": " << o.stats.batches
       << ", \"coalesced\": " << o.stats.coalesced << ",\n"
       << "         \"shed\": " << o.stats.rejected + o.stats.expired
       << ", \"degraded\": " << o.stats.degraded << ", \"cache_hits\": " << o.stats.cache.hits
       << ", \"cache_misses\": " << o.stats.cache.misses
       << ", \"cache_evictions\": " << o.stats.cache.evictions
       << ", \"admit_refused\": " << o.stats.cache.admit_refused
       << ", \"cost_saved_ns\": " << o.stats.cache.cost_saved_ns << ",\n"
       << "         \"makespan_s\": " << obs::json_number(o.makespan_seconds) << "}";
  }
  os << (result.shards.empty() ? "]" : "\n      ]") << ",\n";
  os << "      \"totals\": {\"requests\": " << requests.size()
     << ", \"served\": " << result.served << ", \"shed\": " << result.shed
     << ", \"slo_met\": " << result.slo_met << ", \"makespan_s\": "
     << obs::json_number(result.makespan_seconds) << ", \"machine_seconds\": "
     << obs::json_number(result.machine_seconds) << "}\n    }";
  result.section_json = os.str();
  if (report != nullptr) report->sections.push_back({"fleet", result.section_json});

  return result;
}

void register_models(Fleet& fleet, const ReplayWorkload& workload) {
  for (const ModelSpec& spec : workload.models) {
    fleet.register_model(spec.name, build_model_matrix(spec));
    for (const std::size_t axis : spec.currents)
      fleet.register_current(spec.name, axis, build_model_current(spec, axis));
  }
}

}  // namespace kpm::serve
