// Bridge from the simulated GPU's cost accounting into an obs report.
//
// `record_device` folds a `gpusim::Device` timeline into the calling
// thread's active sinks: CostCounters land in the gpu_* counters, and the
// timeline phases become *modeled* spans (flagged so they are never confused
// with measured wall time) nested under one span named `label`.
#pragma once

#include <string_view>

namespace gpusim {
class Device;
}

namespace kpm::obs {

/// Folds `device`'s timeline (counters + phase/kernel durations) into the
/// calling thread's active counter sink and trace.  No-op when neither is
/// installed.  Call after the device work is complete (typically right
/// before an engine returns).
void record_device(const gpusim::Device& device, std::string_view label);

}  // namespace kpm::obs
