#include "gpusim/cluster.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gpusim {

void InterconnectSpec::validate() const {
  KPM_REQUIRE(bandwidth > 0, "InterconnectSpec: bandwidth must be positive");
  KPM_REQUIRE(latency_s >= 0, "InterconnectSpec: latency must be non-negative");
}

InterconnectSpec InterconnectSpec::infiniband_qdr() {
  InterconnectSpec s;
  s.name = "InfiniBand QDR (host-staged)";
  s.bandwidth = 3.2e9;
  s.latency_s = 20e-6;
  return s;
}

InterconnectSpec InterconnectSpec::pcie_peer() {
  InterconnectSpec s;
  s.name = "PCIe Gen2 peer-to-peer";
  s.bandwidth = 5.0e9;
  s.latency_s = 10e-6;
  return s;
}

InterconnectSpec InterconnectSpec::ideal() {
  InterconnectSpec s;
  s.name = "ideal (infinite fabric)";
  s.bandwidth = 1.0e18;
  s.latency_s = 0.0;
  return s;
}

InterconnectSpec InterconnectSpec::from_name(const std::string& name) {
  if (name == "ib-qdr") return infiniband_qdr();
  if (name == "pcie") return pcie_peer();
  if (name == "ideal") return ideal();
  KPM_FAIL("unknown interconnect '" + name + "' (valid: ib-qdr, pcie, ideal)");
}

double ring_all_reduce_seconds(const InterconnectSpec& link, std::size_t members, double bytes) {
  KPM_REQUIRE(bytes >= 0, "ring_all_reduce_seconds: negative byte count");
  if (members <= 1) return 0.0;
  const auto g = static_cast<double>(members);
  return 2.0 * (g - 1.0) / g * bytes / link.bandwidth + 2.0 * (g - 1.0) * link.latency_s;
}

double halo_exchange_seconds(const InterconnectSpec& link, std::size_t neighbours, double bytes) {
  KPM_REQUIRE(bytes >= 0, "halo_exchange_seconds: negative byte count");
  if (neighbours == 0) return 0.0;
  return static_cast<double>(neighbours) * link.latency_s + bytes / link.bandwidth;
}

Cluster::Cluster(const DeviceSpec& spec, std::size_t device_count, InterconnectSpec link)
    : link_(std::move(link)) {
  KPM_REQUIRE(device_count >= 1, "Cluster needs at least one device");
  link_.validate();
  devices_.reserve(device_count);
  for (std::size_t i = 0; i < device_count; ++i) devices_.push_back(std::make_unique<Device>(spec));
}

double Cluster::parallel_seconds() const {
  double max_clock = 0.0;
  for (const auto& d : devices_) max_clock = std::max(max_clock, d->seconds());
  return max_clock + comm_seconds_;
}

double Cluster::total_device_seconds() const {
  double total = 0.0;
  for (const auto& d : devices_) total += d->seconds();
  return total;
}

double Cluster::all_reduce(double bytes) {
  const double t = ring_all_reduce_seconds(link_, devices_.size(), bytes);
  comm_seconds_ += t;
  return t;
}

void Cluster::reset() {
  for (auto& d : devices_) d->reset_timeline();
  comm_seconds_ = 0.0;
}

}  // namespace gpusim
