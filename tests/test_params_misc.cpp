// Small-surface coverage: parameter structs, enum names, config geometry.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/highlevel.hpp"
#include "core/params.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/dim3.hpp"
#include "linalg/operator.hpp"

namespace {

using namespace kpm;

TEST(MomentParams, InstanceCountAndStreams) {
  core::MomentParams p;
  p.random_vectors = 3;
  p.realizations = 4;
  EXPECT_EQ(p.instances(), 12u);
  EXPECT_EQ(p.stream_of(0, 0), 0u);
  EXPECT_EQ(p.stream_of(0, 2), 2u);
  EXPECT_EQ(p.stream_of(1, 0), 3u);
  EXPECT_EQ(p.stream_of(3, 2), 11u);
}

TEST(MomentParams, ValidationRules) {
  core::MomentParams p;
  EXPECT_NO_THROW(p.validate());
  p.num_moments = 1;
  EXPECT_THROW(p.validate(), kpm::Error);
  p = {};
  p.random_vectors = 0;
  EXPECT_THROW(p.validate(), kpm::Error);
  p = {};
  p.realizations = 0;
  EXPECT_THROW(p.validate(), kpm::Error);
}

TEST(EnumNames, StorageAndMappingsAndEngines) {
  EXPECT_STREQ(linalg::to_string(linalg::Storage::Dense), "dense");
  EXPECT_STREQ(linalg::to_string(linalg::Storage::Crs), "crs");
  EXPECT_STREQ(core::to_string(core::GpuMapping::InstancePerBlock), "instance-per-block");
  EXPECT_STREQ(core::to_string(core::GpuMapping::InstancePerThread), "instance-per-thread");
  EXPECT_STREQ(core::to_string(core::EngineKind::CpuReference), "cpu-reference");
  EXPECT_STREQ(core::to_string(core::EngineKind::CpuPaired), "cpu-paired");
  EXPECT_STREQ(core::to_string(core::EngineKind::Gpu), "gpu");
  EXPECT_STREQ(core::to_string(core::EngineKind::GpuCluster), "gpu-cluster");
  EXPECT_STREQ(gpusim::to_string(gpusim::AccessPattern::Coalesced), "coalesced");
  EXPECT_STREQ(gpusim::to_string(gpusim::AccessPattern::Broadcast), "broadcast");
  EXPECT_STREQ(gpusim::to_string(gpusim::AccessPattern::Strided), "strided");
  EXPECT_STREQ(gpusim::to_string(gpusim::AccessPattern::Random), "random");
}

TEST(Dim3, CountsAndLinearization) {
  gpusim::Dim3 d{4, 3, 2};
  EXPECT_EQ(d.count(), 24u);
  EXPECT_EQ(d.linear(0, 0, 0), 0u);
  EXPECT_EQ(d.linear(3, 0, 0), 3u);
  EXPECT_EQ(d.linear(0, 1, 0), 4u);
  EXPECT_EQ(d.linear(0, 0, 1), 12u);
  EXPECT_EQ(d.linear(3, 2, 1), 23u);
  EXPECT_EQ(gpusim::Dim3{}.count(), 1u);
}

TEST(ExecConfig, DescribeShapes) {
  gpusim::ExecConfig cfg;
  cfg.grid = gpusim::Dim3{8, 4};
  cfg.block = gpusim::Dim3{32};
  EXPECT_EQ(cfg.describe(), "<<<8x4, 32>>>");
  cfg.shared_bytes = 1024;
  EXPECT_EQ(cfg.describe(), "<<<8x4, 32, 1024B>>>");
  EXPECT_EQ(cfg.total_threads(), 1024u);
  EXPECT_THROW(gpusim::ExecConfig::linear(0, 32), kpm::Error);
  EXPECT_THROW(gpusim::ExecConfig::linear(10, 0), kpm::Error);
}

TEST(DeviceSpec, PeakRatesAreConsistent) {
  const auto spec = gpusim::DeviceSpec::tesla_c2050();
  EXPECT_DOUBLE_EQ(spec.peak_sp_flops(), 2.0 * spec.peak_dp_flops());
  EXPECT_GT(spec.effective_bandwidth(gpusim::AccessPattern::Broadcast),
            spec.effective_bandwidth(gpusim::AccessPattern::Random));
}

}  // namespace
