// Direct unit tests of the KPM GPU kernels (below the engine layer).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/device_matrix.hpp"
#include "core/gpu_kernels.hpp"
#include "core/ldos.hpp"
#include "core/moments_cpu.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"
#include "rng/distributions.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

struct DeviceFixture {
  gpusim::Device device{gpusim::DeviceSpec::tesla_c2050()};
  linalg::CrsMatrix h_tilde;

  DeviceFixture() {
    const auto lat = lattice::HypercubicLattice::cubic(3, 3, 3);
    const auto h = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator op(h);
    h_tilde = linalg::rescale(h, linalg::make_spectral_transform(op));
  }
};

TEST(GpuKernels, FillRandomMatchesCpuHelper) {
  DeviceFixture f;
  const std::size_t d = 27, instances = 4;
  MomentParams p;
  auto r0 = f.device.alloc<double>(instances * d);
  FillRandomKernel fill(p, d, instances, r0);
  gpusim::ExecConfig cfg;
  cfg.grid = gpusim::Dim3{instances};
  cfg.block = gpusim::Dim3{32};
  f.device.launch(cfg, fill);

  std::vector<double> host(instances * d);
  f.device.copy_to_host<double>(r0, host);
  std::vector<double> expected(d);
  for (std::size_t inst = 0; inst < instances; ++inst) {
    fill_random_vector(p, inst, expected);
    for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(host[inst * d + i], expected[i]);
  }
}

TEST(GpuKernels, FillRandomStreamOffsetShiftsInstances) {
  DeviceFixture f;
  const std::size_t d = 27;
  MomentParams p;
  auto a = f.device.alloc<double>(d);
  auto b = f.device.alloc<double>(d);
  gpusim::ExecConfig cfg;
  cfg.grid = gpusim::Dim3{1};
  cfg.block = gpusim::Dim3{32};
  FillRandomKernel fill_a(p, d, 1, a, /*stream_offset=*/5);
  f.device.launch(cfg, fill_a);
  FillRandomKernel fill_b(p, d, 1, b, /*stream_offset=*/0);
  f.device.launch(cfg, fill_b);

  std::vector<double> ha(d), hb(d), expected5(d);
  f.device.copy_to_host<double>(a, ha);
  f.device.copy_to_host<double>(b, hb);
  fill_random_vector(p, 5, expected5);
  for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(ha[i], expected5[i]);
  bool differ = false;
  for (std::size_t i = 0; i < d; ++i) differ |= ha[i] != hb[i];
  EXPECT_TRUE(differ);
}

TEST(GpuKernels, RecursionMatchesDeterministicMomentsForUnitVector) {
  // Seed the r0 buffer with a basis vector: the kernel's mu~ row must equal
  // the (unnormalized) LDOS moments from the deterministic CPU path.
  DeviceFixture f;
  const std::size_t d = 27, n = 12, site = 13;
  linalg::MatrixOperator op(f.h_tilde);
  DeviceMatrix h_dev(f.device, op);

  auto r0 = f.device.alloc<double>(d);
  auto wa = f.device.alloc<double>(d);
  auto wb = f.device.alloc<double>(d);
  auto mu = f.device.alloc<double>(n);
  std::vector<double> basis(d, 0.0);
  basis[site] = 1.0;
  f.device.copy_to_device<double>(basis, r0);

  MomentParams p;
  p.num_moments = n;
  gpusim::ExecConfig cfg;
  cfg.grid = gpusim::Dim3{1};
  cfg.block = gpusim::Dim3{64};
  RecursionBlockKernel rec(p, h_dev.ref(), 1, 768 * 1024, r0, wa, wb, mu);
  f.device.launch(cfg, rec);

  std::vector<double> mu_host(n);
  f.device.copy_to_host<double>(mu, mu_host);
  const auto expected = ldos_moments(op, site, n);
  for (std::size_t k = 0; k < n; ++k) EXPECT_NEAR(mu_host[k], expected[k], 1e-12) << k;
}

TEST(GpuKernels, ThreadAndBlockRecursionAgreeBitwise) {
  DeviceFixture f;
  const std::size_t d = 27, n = 10, instances = 6;
  linalg::MatrixOperator op(f.h_tilde);
  MomentParams p;
  p.num_moments = n;

  auto run = [&](bool per_thread) {
    gpusim::Device device{gpusim::DeviceSpec::tesla_c2050()};
    DeviceMatrix h_dev(device, op);
    auto r0 = device.alloc<double>(instances * d);
    auto wa = device.alloc<double>(instances * d);
    auto wb = device.alloc<double>(instances * d);
    auto mu = device.alloc<double>(instances * n);
    gpusim::ExecConfig fill_cfg;
    fill_cfg.grid = gpusim::Dim3{instances};
    fill_cfg.block = gpusim::Dim3{32};
    FillRandomKernel fill(p, d, instances, r0);
    device.launch(fill_cfg, fill);
    if (per_thread) {
      RecursionThreadKernel rec(p, h_dev.ref(), instances, 768 * 1024, r0, wa, wb, mu);
      device.launch(gpusim::ExecConfig::linear(instances, 32), rec);
    } else {
      RecursionBlockKernel rec(p, h_dev.ref(), instances, 768 * 1024, r0, wa, wb, mu);
      device.launch(fill_cfg, rec);
    }
    std::vector<double> host(instances * n);
    device.copy_to_host<double>(mu, host);
    return host;
  };

  const auto a = run(false);
  const auto b = run(true);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(GpuKernels, AverageKernelComputesWeightedMean) {
  DeviceFixture f;
  const std::size_t n = 4, d = 10, instances = 3;
  auto mu_tilde = f.device.alloc<double>(instances * n);
  auto mu = f.device.alloc<double>(n);
  std::vector<double> host(instances * n);
  for (std::size_t k = 0; k < instances; ++k)
    for (std::size_t m = 0; m < n; ++m) host[k * n + m] = static_cast<double>(k + 1) * (m + 1);
  f.device.copy_to_device<double>(host, mu_tilde);

  AverageMomentsKernel avg(n, d, instances, instances, mu_tilde, mu);
  f.device.launch(gpusim::ExecConfig::linear(n, 32), avg);
  std::vector<double> out(n);
  f.device.copy_to_host<double>(mu, out);
  for (std::size_t m = 0; m < n; ++m) {
    const double sum = (1.0 + 2.0 + 3.0) * (m + 1);
    EXPECT_DOUBLE_EQ(out[m], sum / (d * instances));
  }
}

TEST(GpuKernels, DeviceMatrixUploadRoundTrips) {
  DeviceFixture f;
  linalg::MatrixOperator op(f.h_tilde);
  DeviceMatrix dev(f.device, op);
  const auto ref = dev.ref();
  EXPECT_EQ(ref.dim, 27u);
  EXPECT_EQ(ref.storage, linalg::Storage::Crs);
  EXPECT_EQ(ref.stored_entries, f.h_tilde.nnz());
  // The device-side multiply must agree with the host matrix.
  std::vector<double> x(27), y_dev(27), y_host(27);
  for (std::size_t i = 0; i < 27; ++i) x[i] = std::sin(static_cast<double>(i));
  ref.multiply(x, y_dev);
  f.h_tilde.multiply(x, y_host);
  for (std::size_t i = 0; i < 27; ++i) EXPECT_EQ(y_dev[i], y_host[i]);
}

TEST(GpuKernels, DenseDeviceMatrixMultiply) {
  gpusim::Device device{gpusim::DeviceSpec::tesla_c2050()};
  const auto h = lattice::random_symmetric_dense(16, 3);
  linalg::MatrixOperator op(h);
  DeviceMatrix dev(device, op);
  std::vector<double> x(16, 1.0), y_dev(16), y_host(16);
  dev.ref().multiply(x, y_dev);
  h.multiply(x, y_host);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(y_dev[i], y_host[i]);
  EXPECT_DOUBLE_EQ(dev.ref().traversal_bytes(), 16.0 * 16.0 * 8.0);
}

TEST(GpuKernels, InactiveInstancesLeaveBuffersUntouched) {
  DeviceFixture f;
  const std::size_t d = 27, instances = 4, active = 2;
  MomentParams p;
  auto r0 = f.device.alloc<double>(instances * d);
  gpusim::ExecConfig cfg;
  cfg.grid = gpusim::Dim3{instances};
  cfg.block = gpusim::Dim3{32};
  FillRandomKernel fill(p, d, active, r0);
  f.device.launch(cfg, fill);
  std::vector<double> host(instances * d);
  f.device.copy_to_host<double>(r0, host);
  for (std::size_t i = active * d; i < instances * d; ++i)
    EXPECT_EQ(host[i], 0.0) << "inactive instance data must stay zero-initialized";
}

}  // namespace
