// tracediff tests: the exporter/loader round-trip must be exact (the
// TraceFile parsed back from an exported document equals the TraceFile
// built straight from the report), identical traces must diff clean with a
// stable fingerprint, repetition-count differences must align rather than
// explode into added/removed noise, and the seeded perturbation must trip
// the gate deterministically.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/moments_gpu_chunked.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace_file.hpp"
#include "obs/tracediff.hpp"

namespace {

using namespace kpm;

obs::Report gpu_report() {
  const auto lat = lattice::HypercubicLattice::chain(32);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw(h);
  const auto ht = linalg::rescale(h, linalg::make_spectral_transform(raw));
  linalg::MatrixOperator op(ht);
  obs::Report report;
  report.label = "tracediff-test";
  {
    obs::Collect collect(report);
    core::MomentParams params;
    params.num_moments = 16;
    params.random_vectors = 2;
    params.realizations = 2;
    params.seed = 7;
    core::ChunkedGpuMomentEngine engine;
    (void)engine.compute(op, params);
  }
  return report;
}

obs::TraceFileEvent make_event(std::string kind, std::string label, std::int64_t start_ns,
                               std::int64_t end_ns) {
  obs::TraceFileEvent ev;
  ev.kind = std::move(kind);
  ev.label = std::move(label);
  ev.start_ns = start_ns;
  ev.end_ns = end_ns;
  return ev;
}

obs::TraceFile single_lane_trace(const std::vector<std::pair<std::string, std::int64_t>>& kernels) {
  obs::TraceFile trace;
  trace.schema = std::string(obs::kTraceSchema);
  trace.label = "hand-built";
  obs::TraceFileTimeline tl;
  tl.label = "dev";
  tl.streams = 1;
  std::int64_t cursor = 0;
  for (const auto& [label, dur] : kernels) {
    tl.events.push_back(make_event("kernel", label, cursor, cursor + dur));
    cursor += dur;
  }
  trace.timelines.push_back(std::move(tl));
  return trace;
}

TEST(TraceFile, LoaderRoundTripsTheExportedDocumentExactly) {
  const obs::Report report = gpu_report();
  for (const bool include_measured : {true, false}) {
    const obs::ChromeTraceOptions options{.include_measured = include_measured};
    const obs::TraceFile direct = obs::trace_from_report(report, options);
    const obs::TraceFile loaded =
        obs::trace_from_json(obs::parse_json(obs::to_chrome_trace(report, options)));
    EXPECT_EQ(direct, loaded) << "include_measured=" << include_measured;
    EXPECT_EQ(loaded.schema, std::string(obs::kTraceSchema));
    EXPECT_EQ(loaded.include_measured, include_measured);
    EXPECT_FALSE(loaded.timelines.empty());
    EXPECT_FALSE(loaded.counters.empty());
    EXPECT_EQ(loaded.spans.empty(), !include_measured);
  }
}

TEST(TraceFile, LoadsFromDisk) {
  const obs::Report report = gpu_report();
  const std::string path = testing::TempDir() + "/tracediff_roundtrip.trace.json";
  obs::write_chrome_trace(report, path, {.include_measured = false});
  const obs::TraceFile loaded = obs::load_trace_file(path);
  EXPECT_EQ(loaded, obs::trace_from_report(report, {.include_measured = false}));
  std::remove(path.c_str());
}

TEST(TraceFile, RejectsDocumentsWithoutTheSchemaStamp) {
  EXPECT_THROW((void)obs::trace_from_json(obs::parse_json("{\"traceEvents\": []}")),
               kpm::Error);
}

TEST(TraceDiff, IdenticalTracesDiffCleanAtZeroTolerance) {
  const obs::Report report = gpu_report();
  const obs::TraceFile trace = obs::trace_from_report(report, {.include_measured = false});
  const obs::TraceDiff diff = obs::diff_traces(trace, trace);
  EXPECT_GT(diff.matched, 0u);
  EXPECT_EQ(diff.added, 0u);
  EXPECT_EQ(diff.removed, 0u);
  EXPECT_EQ(diff.reordered, 0u);
  EXPECT_EQ(diff.makespan_ns_a, diff.makespan_ns_b);
  EXPECT_TRUE(obs::tracediff_violations(diff, obs::TraceDiffThresholds{}).empty());
}

TEST(TraceDiff, RepetitionCountDifferencesAlignAsAddedOccurrences) {
  // A runs the phase 3 times, B runs it 5 times: the alignment must match
  // the common 3 and report 2 added — not treat the whole sequence as
  // disjoint.
  const obs::TraceFile a =
      single_lane_trace({{"fill", 10}, {"step", 50}, {"step", 50}, {"step", 50}, {"mu", 20}});
  const obs::TraceFile b = single_lane_trace({{"fill", 10},
                                              {"step", 50},
                                              {"step", 50},
                                              {"step", 50},
                                              {"step", 50},
                                              {"step", 50},
                                              {"mu", 20}});
  const obs::TraceDiff diff = obs::diff_traces(a, b);
  EXPECT_EQ(diff.matched, 5u);  // fill + 3 steps + mu
  EXPECT_EQ(diff.added, 2u);
  EXPECT_EQ(diff.removed, 0u);
  EXPECT_EQ(diff.reordered, 0u);
}

TEST(TraceDiff, SwappedPhasesCountAsReordered) {
  const obs::TraceFile a = single_lane_trace({{"fill", 10}, {"step", 50}});
  const obs::TraceFile b = single_lane_trace({{"step", 50}, {"fill", 10}});
  const obs::TraceDiff diff = obs::diff_traces(a, b);
  EXPECT_EQ(diff.added, 0u);
  EXPECT_EQ(diff.removed, 0u);
  EXPECT_EQ(diff.reordered, 1u);
  const auto violations = obs::tracediff_violations(diff, obs::TraceDiffThresholds{});
  EXPECT_FALSE(violations.empty());
}

TEST(TraceDiff, MakespanDriftTripsTheGate) {
  const obs::TraceFile a = single_lane_trace({{"step", 1000000}});
  const obs::TraceFile b = single_lane_trace({{"step", 1100000}});  // +10%
  const obs::TraceDiff diff = obs::diff_traces(a, b);
  const auto violations = obs::tracediff_violations(diff, obs::TraceDiffThresholds{});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("makespan"), std::string::npos);
  // Raising the limits clears the gate without touching the diff.
  obs::TraceDiffThresholds relaxed;
  relaxed.max_makespan_drift_pct = 15.0;
  relaxed.max_span_drift_pct = 15.0;
  EXPECT_TRUE(obs::tracediff_violations(diff, relaxed).empty());
}

TEST(TraceDiff, JsonReportIsDeterministicWithStableFingerprint) {
  const obs::Report report = gpu_report();
  const obs::TraceFile trace = obs::trace_from_report(report, {.include_measured = false});
  const obs::TraceDiff diff = obs::diff_traces(trace, trace);
  const auto violations = obs::tracediff_violations(diff, obs::TraceDiffThresholds{});
  const std::string first = obs::tracediff_to_json(diff, violations);
  const std::string second = obs::tracediff_to_json(diff, violations);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find(std::string(obs::kTraceDiffSchema)), std::string::npos);
  EXPECT_NE(first.find("\"fingerprint\": \"0x"), std::string::npos);
}

TEST(TraceDiff, SeededPerturbationTripsTheGateDeterministically) {
  const obs::Report report = gpu_report();
  const obs::TraceFile trace = obs::trace_from_report(report, {.include_measured = false});

  obs::TraceFile perturbed = trace;
  obs::perturb_trace(perturbed, 13);
  EXPECT_NE(perturbed, trace);
  obs::TraceFile again = trace;
  obs::perturb_trace(again, 13);
  EXPECT_EQ(perturbed, again) << "perturbation must be a pure function of (trace, seed)";

  const obs::TraceDiff diff = obs::diff_traces(trace, perturbed);
  const auto violations = obs::tracediff_violations(diff, obs::TraceDiffThresholds{});
  EXPECT_FALSE(violations.empty());
}

}  // namespace
