// Scalar Chebyshev utilities: T_n evaluation and Clenshaw summation.
//
// T_n(x) = cos(n arccos x) on [-1, 1], with the recursions T_0 = 1,
// T_1 = x, T_{n+2}(x) = 2 x T_{n+1}(x) - T_n(x) (paper Eqs. 3-5).
#pragma once

#include <cmath>
#include <numbers>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace kpm::core {

/// Evaluates T_n(x) for |x| <= 1 through the trigonometric form (the most
/// accurate for high n).
inline double chebyshev_t(std::size_t n, double x) {
  KPM_ASSERT(x >= -1.0 && x <= 1.0, "chebyshev_t: x outside [-1, 1]");
  return std::cos(static_cast<double>(n) * std::acos(x));
}

/// Fills values[n] = T_n(x) for n in [0, values.size()) using the three-term
/// recursion (one pass, O(N)).
inline void chebyshev_t_all(double x, std::span<double> values) {
  const std::size_t n = values.size();
  if (n == 0) return;
  values[0] = 1.0;
  if (n == 1) return;
  values[1] = x;
  for (std::size_t k = 2; k < n; ++k) values[k] = 2.0 * x * values[k - 1] - values[k - 2];
}

/// Clenshaw evaluation of sum_{n=0}^{N-1} a_n T_n(x); numerically stable
/// alternative to summing chebyshev_t_all terms.
inline double clenshaw(std::span<const double> a, double x) {
  if (a.empty()) return 0.0;
  double b1 = 0.0, b2 = 0.0;
  for (std::size_t k = a.size(); k-- > 1;) {
    const double b0 = a[k] + 2.0 * x * b1 - b2;
    b2 = b1;
    b1 = b0;
  }
  return a[0] + x * b1 - b2;
}

/// Chebyshev-Gauss abscissas x_j = cos(pi (j + 1/2) / M), j = 0..M-1,
/// returned in increasing order.  The natural reconstruction grid: the
/// 1/sqrt(1-x^2) weight cancels in quadrature sums over these points.
[[nodiscard]] inline std::vector<double> chebyshev_gauss_grid(std::size_t points) {
  KPM_REQUIRE(points > 0, "chebyshev_gauss_grid: need at least one point");
  std::vector<double> x(points);
  for (std::size_t j = 0; j < points; ++j)
    x[points - 1 - j] =
        std::cos(std::numbers::pi * (static_cast<double>(j) + 0.5) / static_cast<double>(points));
  return x;
}

}  // namespace kpm::core
