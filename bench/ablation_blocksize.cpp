// Ablation: BLOCK_SIZE sweep — the paper's stated future work ("quest a
// method to find the best block size used in the GPU").
//
// Sweeps the threads-per-block over {32..512} for both parallelization
// mappings on the Fig. 5 workload and reports the modeled GPU time: the
// occupancy model makes the trade-offs visible (small blocks underfill
// SMs; the mapping determines how much that matters).
#include "bench_common.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("ablation_blocksize", "BLOCK_SIZE sweep for both GPU mappings");
  const auto* n = cli.add_int("N", 256, "number of moments");
  const auto* r = cli.add_int("R", 14, "random vectors per realization");
  const auto* s = cli.add_int("S", 128, "realizations");
  const auto* sample = cli.add_int("sample", 8, "instances executed functionally (0 = all)");
  const auto* csv = cli.add_string("csv", "ablation_blocksize.csv", "CSV output path");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  bench::BenchMetrics metrics("ablation_blocksize");

  const auto lat = lattice::HypercubicLattice::cubic(10, 10, 10);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw(h);
  const auto transform = linalg::make_spectral_transform(raw);
  const auto ht = linalg::rescale(h, transform);
  linalg::MatrixOperator op(ht);

  core::MomentParams params;
  params.num_moments = static_cast<std::size_t>(*n);
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = static_cast<std::size_t>(*s);

  bench::print_banner("=== Ablation: BLOCK_SIZE sweep (paper section V future work) ===",
                      lat.describe() + ", N=" + std::to_string(params.num_moments), params,
                      static_cast<std::size_t>(*sample));

  Table table({"BLOCK_SIZE", "mapping", "GPU s", "kernel s", "vs best"});
  struct Entry {
    std::uint32_t block;
    core::GpuMapping mapping;
    double total, kernel;
  };
  std::vector<Entry> entries;
  for (const auto mapping :
       {core::GpuMapping::InstancePerBlock, core::GpuMapping::InstancePerThread}) {
    for (std::uint32_t block = 32; block <= 512; block *= 2) {
      core::GpuEngineConfig cfg;
      cfg.mapping = mapping;
      cfg.block_size = block;
      core::GpuMomentEngine gpu(cfg);
      const auto result = gpu.compute(op, params, static_cast<std::size_t>(*sample));
      entries.push_back({block, mapping, result.model_seconds, result.compute_seconds});
    }
  }
  double best = entries.front().total;
  for (const auto& e : entries) best = std::min(best, e.total);
  for (const auto& e : entries)
    table.add_row({std::to_string(e.block), core::to_string(e.mapping),
                   strprintf("%.3f", e.total), strprintf("%.3f", e.kernel),
                   strprintf("%.2fx", e.total / best)});
  bench::finish(table, bench::resolve_output(*out_dir, *csv));
  return 0;
}
