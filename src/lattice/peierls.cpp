#include "lattice/peierls.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "lattice/honeycomb.hpp"

namespace kpm::lattice {

linalg::CrsMatrixZ build_square_flux_crs(std::size_t lx, std::size_t ly, double phi,
                                         double hopping, Boundary boundary) {
  KPM_REQUIRE(lx >= 2 && ly >= 2, "build_square_flux_crs: extents must be >= 2");
  if (boundary == Boundary::Periodic) {
    // Wrapping the x direction is only gauge-consistent when the total
    // phase around the torus is a multiple of 2 pi per y-row.
    const double total = phi * static_cast<double>(lx);
    KPM_REQUIRE(std::abs(total - std::round(total)) < 1e-9,
                "build_square_flux_crs: periodic boundaries need phi * Lx integral "
                "(use phi = p/Lx or open boundaries)");
  }

  const std::size_t n = lx * ly;
  linalg::TripletBuilderZ b(n, n);
  auto site = [&](std::size_t x, std::size_t y) { return y * lx + x; };

  for (std::size_t y = 0; y < ly; ++y)
    for (std::size_t x = 0; x < lx; ++x) {
      // x-bond (no phase in Landau gauge).
      if (x + 1 < lx)
        b.add_hermitian(site(x, y), site(x + 1, y), {-hopping, 0.0});
      else if (boundary == Boundary::Periodic && lx > 2)
        b.add_hermitian(site(x, y), site(0, y), {-hopping, 0.0});

      // y-bond with Peierls phase exp(i 2 pi phi x).
      const double theta = 2.0 * std::numbers::pi * phi * static_cast<double>(x);
      const linalg::CrsMatrixZ::Complex t_y{-hopping * std::cos(theta),
                                            -hopping * std::sin(theta)};
      if (y + 1 < ly)
        b.add_hermitian(site(x, y), site(x, y + 1), t_y);
      else if (boundary == Boundary::Periodic && ly > 2)
        b.add_hermitian(site(x, y), site(x, 0), t_y);
    }
  return b.build();
}

linalg::CrsMatrixZ build_honeycomb_flux_crs(std::size_t l1, std::size_t l2, double phi,
                                            double hopping) {
  KPM_REQUIRE(l1 >= 2 && l2 >= 2, "build_honeycomb_flux_crs: extents must be >= 2");
  const double total = phi * static_cast<double>(l1);
  KPM_REQUIRE(std::abs(total - std::round(total)) < 1e-9,
              "build_honeycomb_flux_crs: periodic boundaries need phi * L1 integral");

  const HoneycombLattice lat(l1, l2);
  linalg::TripletBuilderZ b(lat.sites(), lat.sites());
  for (std::size_t c2 = 0; c2 < l2; ++c2)
    for (std::size_t c1 = 0; c1 < l1; ++c1) {
      const std::size_t a = lat.site_index(c1, c2, 0);
      const std::size_t c1m = (c1 + l1 - 1) % l1;
      const std::size_t c2m = (c2 + l2 - 1) % l2;
      // delta_1: same-cell bond, no phase.
      b.add_hermitian(a, lat.site_index(c1, c2, 1), {-hopping, 0.0});
      // delta_2: -a1 bond, no phase in this gauge.
      b.add_hermitian(a, lat.site_index(c1m, c2, 1), {-hopping, 0.0});
      // delta_3: -a2 bond carries exp(i 2 pi phi c1).
      const double theta = 2.0 * std::numbers::pi * phi * static_cast<double>(c1);
      b.add_hermitian(a, lat.site_index(c1, c2m, 1),
                      {-hopping * std::cos(theta), -hopping * std::sin(theta)});
    }
  return b.build();
}

}  // namespace kpm::lattice
