// Ablation: shared-memory CPU parallelization — the paper's other §V
// future-work axis ("the parallelization of the KPM on a message passing
// and a shared memory paradigm").
//
// The recursion itself is serial, but the S*R instances are independent,
// so CpuParallelMomentEngine parallelizes across instances on a real
// thread pool.  Two numbers per row:
//
//  * "model s" — the i7-930 roofline with 1..T cores: the cache-resident
//    workload scales, the DRAM-bound one saturates the memory controller —
//    the quantitative argument for the paper's GPU choice.
//  * "wall s"  — the measured multithreaded run on THIS host.  Speedup
//    here depends on the machine's actual core count (a single-core
//    container shows ~1.0x for every T; see docs/performance.md).
//
// `--workload=sparse --N=1000 --sample=64` runs the Fig. 5 D=1000 point
// functionally at full moment count without the dense 2048 workload.
#include "bench_common.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("ablation_cpu_parallel", "multicore CPU scaling vs the GPU");
  const auto* n = cli.add_int("N", 256, "number of moments");
  const auto* r = cli.add_int("R", 14, "random vectors per realization");
  const auto* s = cli.add_int("S", 128, "realizations");
  const auto* sample = cli.add_int("sample", 4, "instances executed functionally (0 = all)");
  const auto* max_threads = cli.add_int("threads", 4, "largest thread count to run");
  const auto* workload = cli.add_string("workload", "both", "both|sparse|dense");
  const auto* csv = cli.add_string("csv", "ablation_cpu_parallel.csv", "CSV output path");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  bench::BenchMetrics metrics("ablation_cpu_parallel");
  KPM_REQUIRE(*max_threads >= 1, "ablation_cpu_parallel: --threads must be >= 1");
  KPM_REQUIRE(*workload == "both" || *workload == "sparse" || *workload == "dense",
              "ablation_cpu_parallel: --workload must be both|sparse|dense");

  core::MomentParams params;
  params.num_moments = static_cast<std::size_t>(*n);
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = static_cast<std::size_t>(*s);

  // Thread counts: powers of two up to the requested maximum (inclusive).
  std::vector<int> thread_counts{1};
  for (int t = 2; t < *max_threads; t *= 2) thread_counts.push_back(t);
  if (*max_threads > 1) thread_counts.push_back(static_cast<int>(*max_threads));

  // Workload A: the sparse lattice (matrix lives in L2) — compute-bound.
  const auto lat = lattice::HypercubicLattice::cubic(10, 10, 10);
  const auto h_sparse = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw_sparse(h_sparse);
  const auto t_sparse = linalg::make_spectral_transform(raw_sparse);
  const auto ht_sparse = linalg::rescale(h_sparse, t_sparse);

  // Workload B: dense H_SIZE = 2048 — DRAM-bound on the CPU.  Only built
  // when requested (the Fig. 5 sparse run shouldn't pay for it).
  linalg::DenseMatrix ht_dense(1, 1);
  if (*workload != "sparse") {
    const auto h_dense = lattice::random_symmetric_dense(2048, 0xCAFE);
    linalg::MatrixOperator raw_dense(h_dense);
    const auto t_dense = linalg::make_spectral_transform(raw_dense);
    ht_dense = linalg::rescale(h_dense, t_dense);
  }

  bench::print_banner("=== Ablation: multicore CPU vs GPU (paper section V) ===",
                      "A: " + lat.describe() + " sparse; B: dense H_SIZE=2048", params,
                      static_cast<std::size_t>(*sample));

  std::vector<bool> runs;
  if (*workload != "dense") runs.push_back(false);
  if (*workload != "sparse") runs.push_back(true);

  Table table({"workload", "platform", "model s", "model scaling", "wall s", "wall speedup"});
  for (const bool dense : runs) {
    linalg::MatrixOperator op = dense ? linalg::MatrixOperator(ht_dense)
                                      : linalg::MatrixOperator(ht_sparse);
    const char* label = dense ? "B dense 2048 (DRAM)" : "A sparse 1000 (cache)";

    double model1 = 0.0, wall1 = 0.0;
    for (const int threads : thread_counts) {
      core::CpuParallelMomentEngine engine(threads);
      const auto result = engine.compute(op, params, static_cast<std::size_t>(*sample));
      if (threads == 1) {
        model1 = result.model_seconds;
        wall1 = result.wall_seconds;
      }
      table.add_row({label, strprintf("CPU x%d", result.threads_used),
                     strprintf("%.3f", result.model_seconds),
                     strprintf("%.2fx", model1 / result.model_seconds),
                     strprintf("%.3f", result.wall_seconds),
                     result.wall_seconds > 0.0 ? strprintf("%.2fx", wall1 / result.wall_seconds)
                                               : "-"});
    }
    core::GpuMomentEngine gpu;
    const auto g = gpu.compute(op, params, static_cast<std::size_t>(*sample));
    table.add_row({label, "GPU C2050", strprintf("%.3f", g.model_seconds),
                   strprintf("%.2fx", model1 / g.model_seconds), strprintf("%.3f", g.wall_seconds),
                   "-"});
  }
  bench::finish(table, bench::resolve_output(*out_dir, *csv));
  std::printf(
      "expected (model): the cache-resident workload scales ~linearly on cores; the\n"
      "DRAM-bound one saturates near 1.8x — while the GPU keeps its margin.\n"
      "wall speedup is whatever THIS host's cores allow (1.0x on a single-core box).\n");
  return 0;
}
