// Tests for the local DoS and the deterministic trace.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "core/ldos.hpp"
#include "core/moments_cpu.hpp"
#include "diag/jacobi.hpp"
#include "diag/spectrum_utils.hpp"
#include "diag/tridiag.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

struct Fixture {
  linalg::DenseMatrix h_tilde;
  linalg::SpectralTransform transform;

  Fixture() : h_tilde(1, 1), transform({-1.0, 1.0}, 0.0) {
    const auto lat = lattice::HypercubicLattice::cubic(3, 3, 3);
    const auto h = lattice::build_tight_binding_dense(lat);
    linalg::MatrixOperator op(h);
    transform = linalg::make_spectral_transform(op);
    h_tilde = linalg::rescale(h, transform);
  }
};

TEST(Ldos, MomentsMatchEigenvectorExpansion) {
  // mu_n^i = sum_k |<i|k>|^2 T_n(E~_k) from the exact eigendecomposition.
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  const std::size_t site = 5, n_mom = 24;
  const auto mu = ldos_moments(op, site, n_mom);

  diag::JacobiOptions jopts;
  jopts.compute_vectors = true;
  const auto d = diag::jacobi_eigensolve(f.h_tilde, jopts);
  for (std::size_t n = 0; n < n_mom; ++n) {
    double expected = 0.0;
    for (std::size_t k = 0; k < d.eigenvalues.size(); ++k) {
      const double w = d.eigenvectors(site, k) * d.eigenvectors(site, k);
      expected += w * std::cos(static_cast<double>(n) * std::acos(std::clamp(d.eigenvalues[k], -1.0, 1.0)));
    }
    EXPECT_NEAR(mu[n], expected, 1e-9) << "moment " << n;
  }
}

TEST(Ldos, Mu0IsOne) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  const auto mu = ldos_moments(op, 0, 4);
  EXPECT_DOUBLE_EQ(mu[0], 1.0);  // <i|i> = 1
}

TEST(Ldos, TranslationInvarianceOnCleanPeriodicLattice) {
  // Every site of the clean periodic lattice has the same LDOS.
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  const auto mu_a = ldos_moments(op, 0, 16);
  const auto mu_b = ldos_moments(op, 13, 16);
  for (std::size_t n = 0; n < 16; ++n) EXPECT_NEAR(mu_a[n], mu_b[n], 1e-12);
}

TEST(Ldos, CurveIntegratesToOne) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  const auto curve = ldos_curve(op, f.transform, 3, 64, {.points = 1024});
  double integral = 0.0;
  for (std::size_t j = 1; j < curve.energy.size(); ++j)
    integral += 0.5 * (curve.density[j] + curve.density[j - 1]) *
                (curve.energy[j] - curve.energy[j - 1]);
  EXPECT_NEAR(integral, 1.0, 2e-3);
}

TEST(Ldos, SiteOutOfRangeThrows) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  EXPECT_THROW((void)ldos_moments(op, 27, 8), kpm::Error);
}

TEST(DeterministicTrace, MatchesExactMoments) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  const auto mu = deterministic_trace_moments(op, 20);
  const auto eig = diag::symmetric_eigenvalues(f.h_tilde);
  const linalg::SpectralTransform unit({-1.0, 1.0}, 0.0);
  const auto exact = diag::exact_chebyshev_moments(eig, unit, 20);
  for (std::size_t n = 0; n < 20; ++n) EXPECT_NEAR(mu[n], exact[n], 1e-9) << "moment " << n;
}

TEST(DeterministicTrace, AveragesLdosOverSites) {
  Fixture f;
  linalg::MatrixOperator op(f.h_tilde);
  const auto trace = deterministic_trace_moments(op, 12);
  std::vector<double> avg(12, 0.0);
  for (std::size_t site = 0; site < op.dim(); ++site) {
    const auto mu = ldos_moments(op, site, 12);
    for (std::size_t n = 0; n < 12; ++n) avg[n] += mu[n];
  }
  for (std::size_t n = 0; n < 12; ++n)
    EXPECT_NEAR(trace[n], avg[n] / static_cast<double>(op.dim()), 1e-12);
}

}  // namespace
