// Ablation: GPU-cluster scaling — the paper's §V plan to "extend the
// GPU-based implementation to a GPU cluster", quantified.
//
// Strong scaling: the Fig. 5 workload split across 1..8 simulated C2050s
// (instances are embarrassingly parallel; one all-reduce of N doubles at
// the end).  Also prints the serialized/parallel efficiency so the reader
// sees where the fixed per-device costs (H~ replication, context) erode
// the scaling.
#include "bench_common.hpp"
#include "common/cli.hpp"
#include "core/moments_multigpu.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("ablation_multigpu", "strong scaling over a simulated C2050 cluster");
  const auto* n = cli.add_int("N", 512, "number of moments");
  const auto* r = cli.add_int("R", 14, "random vectors per realization");
  const auto* s = cli.add_int("S", 128, "realizations");
  const auto* sample = cli.add_int("sample", 16, "instances executed functionally (0 = all)");
  const auto* csv = cli.add_string("csv", "ablation_multigpu.csv", "CSV output path");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  bench::BenchMetrics metrics("ablation_multigpu");

  const auto lat = lattice::HypercubicLattice::cubic(10, 10, 10);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw(h);
  const auto transform = linalg::make_spectral_transform(raw);
  const auto ht = linalg::rescale(h, transform);
  linalg::MatrixOperator op(ht);

  core::MomentParams params;
  params.num_moments = static_cast<std::size_t>(*n);
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = static_cast<std::size_t>(*s);

  bench::print_banner("=== Ablation: GPU cluster strong scaling (paper section V) ===",
                      lat.describe() + ", N=" + std::to_string(params.num_moments), params,
                      static_cast<std::size_t>(*sample));

  core::CpuMomentEngine cpu;
  const auto cpu_result = cpu.compute(op, params, static_cast<std::size_t>(*sample));

  Table table({"GPUs", "cluster s", "speedup vs 1 CPU", "scaling", "efficiency", "comm s"});
  double t1 = 0.0;
  for (std::size_t g : {1u, 2u, 4u, 8u}) {
    core::MultiGpuEngineConfig cfg;
    cfg.device_count = g;
    core::MultiGpuMomentEngine engine(cfg);
    const auto result = engine.compute(op, params, static_cast<std::size_t>(*sample));
    if (g == 1) t1 = result.model_seconds;
    const auto& scaling = engine.last_scaling();
    table.add_row({std::to_string(g), strprintf("%.3f", result.model_seconds),
                   strprintf("%.2fx", cpu_result.model_seconds / result.model_seconds),
                   strprintf("%.2fx", t1 / result.model_seconds),
                   strprintf("%.0f%%", 100.0 * scaling.efficiency),
                   strprintf("%.2g", scaling.communication_seconds)});
  }
  bench::finish(table, bench::resolve_output(*out_dir, *csv));
  std::printf("expected: near-linear scaling (instances are independent; the only\n"
              "collective is one N-double all-reduce)\n");
  return 0;
}
