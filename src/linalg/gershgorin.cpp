#include "linalg/gershgorin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace kpm::linalg {

SpectralBounds gershgorin_bounds(const DenseMatrix& m) {
  KPM_REQUIRE(m.square(), "gershgorin_bounds requires a square matrix");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double center = m(r, r);
    double radius = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (c != r) radius += std::abs(m(r, c));
    lo = std::min(lo, center - radius);
    hi = std::max(hi, center + radius);
  }
  return {lo, hi};
}

SpectralBounds gershgorin_bounds(const CrsMatrix& m) {
  KPM_REQUIRE(m.rows() == m.cols(), "gershgorin_bounds requires a square matrix");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const auto row_ptr = m.row_ptr();
  const auto col_idx = m.col_idx();
  const auto values = m.values();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double center = 0.0;
    double radius = 0.0;
    for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      if (static_cast<std::size_t>(col_idx[kk]) == r)
        center = values[kk];
      else
        radius += std::abs(values[kk]);
    }
    lo = std::min(lo, center - radius);
    hi = std::max(hi, center + radius);
  }
  return {lo, hi};
}

SpectralBounds gershgorin_bounds(const SellMatrix& m) {
  KPM_REQUIRE(m.rows() == m.cols(), "gershgorin_bounds requires a square matrix");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const auto chunk_ptr = m.chunk_ptr();
  const auto row_len = m.row_len();
  const auto perm = m.perm();
  const auto col_idx = m.col_idx();
  const auto values = m.values();
  const std::size_t c_sz = m.chunk_size();
  for (std::size_t c = 0; c < m.chunks(); ++c) {
    const auto base = static_cast<std::size_t>(chunk_ptr[c]);
    for (std::size_t l = 0; l < c_sz; ++l) {
      const std::size_t slot = c * c_sz + l;
      if (perm[slot] < 0) continue;
      const auto r = static_cast<std::size_t>(perm[slot]);
      double center = 0.0;
      double radius = 0.0;
      for (std::size_t j = 0; j < static_cast<std::size_t>(row_len[slot]); ++j) {
        const std::size_t k = base + j * c_sz + l;
        if (static_cast<std::size_t>(col_idx[k]) == r)
          center = values[k];
        else
          radius += std::abs(values[k]);
      }
      lo = std::min(lo, center - radius);
      hi = std::max(hi, center + radius);
    }
  }
  return {lo, hi};
}

SpectralBounds gershgorin_bounds(const MatrixOperator& op) {
  if (op.storage() == Storage::Dense) return gershgorin_bounds(*op.dense());
  if (op.storage() == Storage::Crs) return gershgorin_bounds(*op.crs());
  return gershgorin_bounds(*op.sell());
}

}  // namespace kpm::linalg
