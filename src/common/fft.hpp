// Iterative radix-2 complex FFT.
//
// Self-contained (no external FFT dependency), used by the fast KPM
// reconstruction: evaluating N damped moments on an M-point Chebyshev-
// Gauss grid is a zero-padded 2M-point transform — O(M log M) instead of
// the O(M N) of direct Clenshaw evaluation per point.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace kpm {

/// In-place iterative Cooley-Tukey FFT.  `data.size()` must be a power of
/// two.  `sign` = -1 gives the forward transform sum x_n e^{-2 pi i nk/N},
/// +1 the unnormalized inverse (divide by N yourself if needed).
void fft_radix2(std::span<std::complex<double>> data, int sign);

/// Convenience: returns the transform of `input` (copied), sign as above.
[[nodiscard]] std::vector<std::complex<double>> fft(std::span<const std::complex<double>> input,
                                                    int sign);

/// True if n is a power of two (n >= 1).
[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace kpm
