// bench_serve — offered load vs latency / shed rate through the serving layer.
//
// Sweeps the arrival rate of a synthetic request stream (as a multiple of
// the modeled single-request service rate) through serve::Server and reports
// what admission control and the coalescer/cache do to latency and the shed
// rate.  Everything is on the simulated serve clock, so the swept columns
// are deterministic; each sweep point also records its own slice of the
// serve histograms (queue depth, batch occupancy, wait, service) into the
// metrics sidecar's `histogram_series`.
#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "obs/report.hpp"
#include "serve/fleet/workload.hpp"
#include "serve/server.hpp"

using namespace kpm;

namespace {

/// Deterministic request stream from the workload synthesizer: a uniform
/// drip of DoS/LDOS requests over two stochastic-seed populations, so the
/// cache sees both hits and misses and coalescing has material.
std::vector<serve::Request> build_stream(std::size_t count, double spacing,
                                         std::size_t edge) {
  serve::SynthConfig cfg;
  cfg.seed = 11;
  cfg.count = count;
  cfg.process = serve::ArrivalProcess::Uniform;
  cfg.rate = 1.0 / spacing;
  cfg.dos_weight = 3.0;
  cfg.ldos_weight = 1.0;
  cfg.sigma_weight = 0.0;
  cfg.moment_choices = {128};
  cfg.point_choices = {48, 64, 80};  // repeated keys, different grids
  cfg.random_vectors = 4;
  cfg.realizations = 2;
  cfg.seed_population = 2;
  cfg.priority_fraction = 0.0;
  serve::ModelSpec spec;
  spec.name = "square";
  spec.lattice = "square";
  spec.edge = edge;  // bounds the LDOS site draws to the registered model
  return serve::synthesize_requests(cfg, {spec});
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_serve",
                "offered-load sweep through the deterministic serving layer "
                "(batching, moment cache, admission control)");
  const auto* edge = cli.add_int("edge", 8, "square-lattice edge");
  const auto* count = cli.add_int("requests", 24, "requests per sweep point");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  bench::BenchMetrics metrics("bench_serve");

  const auto lat = lattice::HypercubicLattice::square(static_cast<std::size_t>(*edge),
                                                      static_cast<std::size_t>(*edge));
  const linalg::CrsMatrix h =
      lattice::build_tight_binding_crs(lat, {}, lattice::anderson_disorder(1.0, 3));

  // Capacity unit: the modeled serial service time of the repeated DoS
  // template.  `load` is the arrival rate in units of 1/unit, so load > 1
  // offers more work than one channel can serve (before cache/coalescing
  // relief) and admission control must act.
  const double unit = [&] {
    linalg::MatrixOperator raw(h);
    const auto transform = linalg::make_spectral_transform(raw);
    const linalg::CrsMatrix h_tilde = linalg::rescale(h, transform);
    const linalg::MatrixOperator op(h_tilde);
    return core::modeled_reference_seconds(op, 128, 8);
  }();
  std::printf("bench_serve — offered load vs latency / shed rate\n");
  std::printf("workload : square %lld x %lld, %zu requests per point, unit %.3g s\n\n",
              static_cast<long long>(*edge), static_cast<long long>(*edge),
              static_cast<std::size_t>(*count), unit);

  Table table({"load", "requests", "served", "shed", "degraded", "hit rate", "mean wait s",
               "max wait s", "makespan s"});
  for (const double load : {0.5, 1.0, 2.0, 4.0}) {
    obs::SweepPoint point(metrics.report(), strprintf("load=%.2f", load));

    serve::ServeConfig config;
    config.workers = 2;
    config.max_queue = 4;
    config.max_batch = 4;
    config.degrade_floor = 16;
    serve::Server server(config);
    server.register_model("square", h);

    const auto responses = server.run(build_stream(static_cast<std::size_t>(*count),
                                                   unit / load,
                                                   static_cast<std::size_t>(*edge)));

    std::size_t served = 0, shed = 0, degraded = 0, hits = 0;
    double wait_sum = 0.0, wait_max = 0.0, makespan = 0.0;
    for (const auto& r : responses) {
      if (r.status != serve::ResponseStatus::Ok) {
        shed += 1;
        continue;
      }
      served += 1;
      if (r.degraded) degraded += 1;
      if (r.cache_hit) hits += 1;
      wait_sum += r.wait_seconds();
      wait_max = std::max(wait_max, r.wait_seconds());
      makespan = std::max(makespan, r.finish_seconds);
    }
    table.add_row({strprintf("%.2f", load), std::to_string(responses.size()),
                   std::to_string(served), std::to_string(shed), std::to_string(degraded),
                   strprintf("%.2f", served > 0 ? static_cast<double>(hits) /
                                                      static_cast<double>(served)
                                                : 0.0),
                   strprintf("%.4f", served > 0 ? wait_sum / static_cast<double>(served) : 0.0),
                   strprintf("%.4f", wait_max), strprintf("%.4f", makespan)});
  }

  bench::finish(table, bench::resolve_output(*out_dir, "serve_load.csv"));
  return 0;
}
