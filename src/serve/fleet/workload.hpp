// Seeded synthetic serve workloads.
//
// Real serving traffic is not a uniform drip: arrivals cluster (bursts),
// breathe with the day (diurnal), and mix request kinds whose recompute
// costs differ by orders of magnitude.  `synthesize_requests` generates
// such traces deterministically from a single SplitMix64 seed — the same
// config always yields the same byte-identical workload — over four
// arrival processes:
//
//   uniform   fixed inter-arrival 1/rate (the old bench_serve drip)
//   poisson   exponential inter-arrivals at `rate`
//   bursty    2-state Markov-modulated Poisson process: a calm state at
//             `rate` and a burst state at `rate * burst_factor`, switching
//             per arrival with probabilities burst_on / burst_off
//   diurnal   inhomogeneous Poisson via thinning against
//             rate * (1 + amplitude * sin(2*pi*t / period))
//
// Kind, moment size, stochastic seed, points, priority and deadline are
// drawn from small configurable populations, so repeated keys occur at
// realistic frequencies and the moment cache has something to do.  The
// draw sequence is part of the determinism contract: adding a draw changes
// every workload downstream of it, which is fine (workloads are pinned by
// seed, not bit-archaeology) but should be deliberate.
//
// `workload_json` serializes to the `kpm.serve.workload/1` schema consumed
// by `parse_workload`, round-tripping bit-exactly (doubles via the exact
// obs JSON number format).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/replay.hpp"

namespace kpm::serve {

/// Arrival process shapes (see file comment).
enum class ArrivalProcess : std::uint8_t { Uniform, Poisson, Bursty, Diurnal };

/// "uniform", "poisson", "bursty" or "diurnal".
[[nodiscard]] const char* to_string(ArrivalProcess p) noexcept;

/// Inverse of `to_string`.  Throws kpm::Error for unknown names.
[[nodiscard]] ArrivalProcess arrival_process_from_string(const std::string& name);

struct SynthConfig {
  std::string label = "synth";
  std::uint64_t seed = 1;
  std::size_t count = 64;

  ArrivalProcess process = ArrivalProcess::Poisson;
  double rate = 8.0;  ///< mean arrivals per simulated second (calm state)

  // Bursty (2-state MMPP) knobs.
  double burst_factor = 8.0;  ///< burst-state rate multiplier
  double burst_on = 0.15;     ///< P(calm -> burst) checked per arrival
  double burst_off = 0.35;    ///< P(burst -> calm) checked per arrival

  // Diurnal knobs.
  double period_seconds = 60.0;  ///< one simulated "day"
  double amplitude = 0.8;        ///< rate modulation depth, in [0, 1)

  // Request-kind mix (relative weights; sigma falls back to dos for models
  // without a registered current operator).
  double dos_weight = 4.0;
  double ldos_weight = 2.0;
  double sigma_weight = 1.0;

  // Request-shape populations.  Small populations make repeats (and thus
  // cache hits / coalescing) likely.
  std::vector<std::size_t> moment_choices = {64, 128};  ///< N values
  std::vector<std::size_t> point_choices = {64, 128, 256};
  std::size_t random_vectors = 2;  ///< R
  std::size_t realizations = 2;    ///< S
  std::size_t seed_population = 3;  ///< distinct stochastic seeds in the trace

  double priority_fraction = 0.25;  ///< fraction with priority in {1, 2, 3}
  double deadline_fraction = 0.0;   ///< fraction with an absolute deadline
  double deadline_slack_seconds = 1.0;

  core::EngineKind engine = core::EngineKind::CpuParallel;

  void validate() const;
};

/// Generates `cfg.count` requests against `models` (ids 1..count, arrivals
/// nondecreasing).  Pure function of (cfg, models).
[[nodiscard]] std::vector<Request> synthesize_requests(const SynthConfig& cfg,
                                                       const std::vector<ModelSpec>& models);

/// Bundles synthesized requests with `models` and a server config into a
/// replayable workload (label taken from `cfg.label`).
[[nodiscard]] ReplayWorkload synthesize_workload(const SynthConfig& cfg,
                                                 std::vector<ModelSpec> models,
                                                 ServeConfig server_config = {});

/// Serializes `w` as a `kpm.serve.workload/1` document; `parse_workload`
/// of the result reproduces the workload bit-exactly.
[[nodiscard]] std::string workload_json(const ReplayWorkload& w);

}  // namespace kpm::serve
