// Each hazard class must be tripped by exactly its deliberately-broken
// fixture kernel — with an exact Finding — and silenced by the clean twin.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/fixtures.hpp"
#include "common/error.hpp"
#include "gpusim/check.hpp"

namespace {

using namespace kpm;
using check::Finding;
using check::Kind;

bool has_kind(const std::vector<Finding>& findings, Kind kind) {
  return std::any_of(findings.begin(), findings.end(),
                     [kind](const Finding& f) { return f.kind == kind; });
}

TEST(CheckFixtures, EveryFixtureHasABrokenAndACleanVariant) {
  for (const auto& name : check::fixture_names()) {
    EXPECT_FALSE(check::run_fixture(name, true).empty()) << name << " (broken) found nothing";
    EXPECT_TRUE(check::run_fixture(name, false).empty()) << name << " (clean) reported findings";
  }
}

TEST(CheckFixtures, SharedRaceIsExact) {
  const auto findings = check::run_fixture("shared-race", true);
  ASSERT_FALSE(findings.empty());
  const Finding& f = findings.front();
  EXPECT_EQ(f.kind, Kind::SharedRace);
  EXPECT_EQ(f.kernel, "fixture-shared-race");
  EXPECT_EQ(f.block, 0u);
  EXPECT_EQ(f.phase, 0);
  EXPECT_EQ(f.thread_a, 0);
  EXPECT_EQ(f.thread_b, 1);
  EXPECT_EQ(f.offset, 0u);
  EXPECT_EQ(f.bytes, sizeof(double));
  for (const Finding& each : findings) EXPECT_EQ(each.kind, Kind::SharedRace);
}

TEST(CheckFixtures, SharedRaceCleanTwinStoresPerThreadAndReadsAfterBarrier) {
  EXPECT_TRUE(check::run_fixture("shared-race", false).empty());
}

TEST(CheckFixtures, SharedAllocDivergenceIsExact) {
  const auto findings = check::run_fixture("shared-alloc-divergence", true);
  ASSERT_FALSE(findings.empty());
  const Finding& f = findings.front();
  EXPECT_EQ(f.kind, Kind::AllocDivergence);
  EXPECT_EQ(f.kernel, "fixture-shared-alloc");
  EXPECT_EQ(f.block, 0u);
  EXPECT_EQ(f.phase, 0);
  EXPECT_EQ(f.thread_a, 0);  // reference thread
  EXPECT_EQ(f.thread_b, 1);  // first diverging thread
}

TEST(CheckFixtures, LocalAllocDivergenceIsExact) {
  const auto findings = check::run_fixture("local-alloc-divergence", true);
  ASSERT_FALSE(findings.empty());
  const Finding& f = findings.front();
  EXPECT_EQ(f.kind, Kind::AllocDivergence);
  EXPECT_EQ(f.kernel, "fixture-local-alloc");
  EXPECT_EQ(f.phase, 1);  // the diverging phase
  EXPECT_EQ(f.thread_a, 0);
  EXPECT_NE(f.detail.find("local_array"), std::string::npos);
}

TEST(CheckFixtures, GlobalRaceIsExact) {
  const auto findings = check::run_fixture("global-race", true);
  ASSERT_FALSE(findings.empty());
  const Finding& f = findings.front();
  EXPECT_EQ(f.kind, Kind::GlobalRace);
  EXPECT_EQ(f.kernel, "fixture-global-race");
  EXPECT_EQ(f.buffer, "fixture-out");
  EXPECT_EQ(f.thread_a, 0);  // block pair
  EXPECT_EQ(f.thread_b, 1);
  EXPECT_EQ(f.offset, 0u);
  EXPECT_EQ(f.bytes, 4 * sizeof(double));
  EXPECT_NE(f.detail.find("write-write"), std::string::npos);
}

TEST(CheckFixtures, UninitReadIsExact) {
  const auto findings = check::run_fixture("uninit-read", true);
  ASSERT_FALSE(findings.empty());
  const Finding& f = findings.front();
  EXPECT_EQ(f.kind, Kind::UninitRead);
  EXPECT_EQ(f.kernel, "fixture-uninit-read");
  EXPECT_EQ(f.buffer, "fixture-src");
  EXPECT_EQ(f.block, 0u);
  EXPECT_EQ(f.thread_a, gpusim::kBlockScope);  // overridden block_phase
  EXPECT_EQ(f.offset, 0u);
  EXPECT_EQ(f.bytes, 4 * sizeof(double));
}

TEST(CheckFixtures, StreamHazardIsExact) {
  const auto findings = check::run_fixture("stream-hazard", true);
  ASSERT_FALSE(findings.empty());
  const Finding& f = findings.front();
  EXPECT_EQ(f.kind, Kind::StreamHazard);
  EXPECT_EQ(f.kernel, "d2h");
  EXPECT_EQ(f.buffer, "fixture-buf");
  EXPECT_EQ(f.thread_a, 0);  // reading stream
  EXPECT_EQ(f.thread_b, 1);  // writing stream
  EXPECT_NE(f.detail.find("races write"), std::string::npos);
}

TEST(CheckFixtures, FixturesReportOnlyTheirOwnHazardClass) {
  EXPECT_TRUE(has_kind(check::run_fixture("shared-race", true), Kind::SharedRace));
  EXPECT_FALSE(has_kind(check::run_fixture("shared-race", true), Kind::GlobalRace));
  EXPECT_FALSE(has_kind(check::run_fixture("global-race", true), Kind::SharedRace));
  EXPECT_FALSE(has_kind(check::run_fixture("uninit-read", true), Kind::StreamHazard));
  EXPECT_FALSE(has_kind(check::run_fixture("stream-hazard", true), Kind::UninitRead));
}

TEST(CheckFixtures, UnknownFixtureNameThrows) {
  EXPECT_THROW((void)check::run_fixture("no-such-fixture", true), kpm::Error);
}

}  // namespace
