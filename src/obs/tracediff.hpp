// Deterministic alignment and divergence analysis of two exported traces.
//
// Spans and timeline events are keyed by *identity*, not position: a host
// span's key is its "/"-joined name path, a device event's key is its
// timeline label + kind + label (streams excluded — a kernel migrating to
// another stream is a schedule shift, visible in the lane deltas, not a
// different kernel).  Occurrence sequences are run-length encoded and
// aligned with an LCS over the runs, so two traces that differ only in how
// many times a phase repeats (more chunks, more moments) still align phase
// to phase; runs off the common subsequence whose key exists on both sides
// count as re-ordered, the rest as added/removed.
//
// All quantities are exact ns ticks, so a diff of two deterministic traces
// is itself deterministic: `tracediff_to_json` carries a stable FNV-1a
// fingerprint, and `tracediff_violations` turns thresholds into the same
// kind of gate `tools/benchgate` provides for counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/critical_path.hpp"
#include "obs/trace_file.hpp"

namespace kpm::obs {

inline constexpr std::string_view kTraceDiffSchema = "kpm.tracediff/1";

/// Gate configuration; every limit is inclusive (violation when exceeded).
struct TraceDiffThresholds {
  double max_makespan_drift_pct = 2.0;  ///< |Δ makespan| relative to A
  double max_span_drift_pct = 10.0;     ///< per-key |Δ model time| relative to A
  std::int64_t min_span_ns = 1000;      ///< ignore relative drift of keys under this
  std::size_t max_added = 0;
  std::size_t max_removed = 0;
  std::size_t max_reordered = 0;
  double max_overlap_drop = 0.02;       ///< absolute drop in copy-hidden fraction
  double max_idle_growth_pct = 10.0;    ///< total idle ticks, relative to A
};

/// How one key fared in the alignment.
enum class SpanState { Matched, Added, Removed, Reordered };
[[nodiscard]] const char* to_string(SpanState state) noexcept;

/// Aggregate of one key on both sides.
struct SpanDelta {
  std::string key;
  SpanState state = SpanState::Matched;
  std::size_t count_a = 0;
  std::size_t count_b = 0;
  std::int64_t ns_a = 0;
  std::int64_t ns_b = 0;
  bool operator==(const SpanDelta&) const = default;
};

/// Busy/idle shift of one lane, matched by (timeline label, stream, copy).
struct LaneDelta {
  std::string timeline;
  std::size_t stream = 0;
  bool copy = false;
  std::int64_t busy_ns_a = 0;
  std::int64_t busy_ns_b = 0;
  std::int64_t idle_ns_a = 0;
  std::int64_t idle_ns_b = 0;
  bool operator==(const LaneDelta&) const = default;
};

/// Critical-path composition entry on both sides (label or "(waiting-on-*)").
struct CompositionShift {
  std::string label;
  std::int64_t ns_a = 0;
  std::int64_t ns_b = 0;
  bool operator==(const CompositionShift&) const = default;
};

struct TraceDiff {
  std::string label_a;
  std::string label_b;
  std::vector<SpanDelta> spans;  ///< sorted by |Δns| desc, then key
  std::size_t matched = 0;       ///< aligned occurrences (min of run lengths)
  std::size_t added = 0;         ///< occurrences only in B
  std::size_t removed = 0;       ///< occurrences only in A
  std::size_t reordered = 0;     ///< off-LCS occurrences present on both sides
  std::vector<LaneDelta> lanes;
  std::vector<CompositionShift> composition;
  std::int64_t makespan_ns_a = 0;
  std::int64_t makespan_ns_b = 0;
  std::int64_t idle_ns_a = 0;  ///< summed over lanes
  std::int64_t idle_ns_b = 0;
  double overlap_a = 0.0;  ///< copy-hidden fraction
  double overlap_b = 0.0;
  bool operator==(const TraceDiff&) const = default;
};

/// Aligns and diffs two traces (runs the critical-path analysis on both).
[[nodiscard]] TraceDiff diff_traces(const TraceFile& a, const TraceFile& b);

/// Human-readable violation messages; empty means the gate passes.
[[nodiscard]] std::vector<std::string> tracediff_violations(const TraceDiff& diff,
                                                            const TraceDiffThresholds& limits);

/// Versioned kpm.tracediff/1 document with a trailing stable fingerprint
/// (FNV-1a 64 over the document body).
[[nodiscard]] std::string tracediff_to_json(const TraceDiff& diff,
                                            const std::vector<std::string>& violations);

/// Per-key model-time deltas (top `max_rows`; 0 = all).
[[nodiscard]] kpm::Table tracediff_span_table(const TraceDiff& diff, std::size_t max_rows = 0);

/// Per-lane busy/idle shifts.
[[nodiscard]] kpm::Table tracediff_lane_table(const TraceDiff& diff);

/// Critical-path composition shift.
[[nodiscard]] kpm::Table tracediff_composition_table(const TraceDiff& diff);

/// Seeded negative control: stretches every instant by 25% and renames one
/// event, guaranteeing both timing and identity divergence.  seed picks the
/// renamed event deterministically.
void perturb_trace(TraceFile& trace, std::uint64_t seed);

}  // namespace kpm::obs
