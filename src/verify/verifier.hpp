// The kpmverify driver: pilot runs -> summaries -> discharged obligations.
//
// A verification *unit* is one production scenario (check/scenarios.hpp) or
// one fixture (verify/fixtures.hpp).  verify_unit() runs the unit at nine
// pilot geometries under a VerifyObserver, fits symbolic access summaries
// (summary.hpp) on cyclic seven-run windows (each fit is cross-validated
// exactly against the geometries its window holds out; verdicts depend
// only on the pilot set), and then discharges every hazard obligation with
// the prover
// (prover.hpp) over the *declared* parameter domain — i.e. for all launch
// geometries, not just the pilots:
//
//   * shared-memory race-freedom    (same block, same phase, >=1 write)
//   * global race-freedom           (same block and cross-block, >=1 write)
//   * bounds safety                 (buffer and shared-arena limits)
//   * shared-allocation uniformity  (allocation independent of tid)
//
// Verdict per kernel: Proven (all obligations discharged), NoSites (no
// instrumented accesses — dynamic coverage only), Demoted (some site has no
// affine summary; NonAffine notes say why; remaining obligations still
// proven) or Findings (a definite hazard witness, or an obligation that no
// rule discharges — fail closed).  Only Findings is a failure.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/finding.hpp"
#include "common/table.hpp"

namespace kpm::verify {

struct VerifyOptions {
  /// Rotates which pilot geometries are fitted vs held out; verdicts must
  /// be invariant under it (asserted by test_verify_scenarios).
  unsigned pilot_seed = 0;
  /// Seeded negative control: widens every recorded global write by one
  /// byte before fitting, which must surface as definite findings.
  bool inject_stride_bug = false;
};

enum class KernelStatus {
  Proven,   ///< every obligation discharged for all geometries
  NoSites,  ///< no instrumented accesses recorded (dynamic coverage only)
  Demoted,  ///< non-affine sites: NonAffine notes, rest still proven
  Findings, ///< definite hazard witness or undischarged obligation
};

[[nodiscard]] const char* to_string(KernelStatus s) noexcept;

/// Aggregated verdict for one kernel name within one unit.
struct KernelVerdict {
  std::string kernel;
  KernelStatus status = KernelStatus::NoSites;
  std::vector<std::string> notes;          ///< discharge rules and demotion reasons
  std::vector<check::Finding> findings;    ///< hazards + NonAffine demotion records
  std::size_t sites = 0;                   ///< fitted site families
  std::size_t launches = 0;                ///< pilot launches observed
};

struct UnitReport {
  std::string unit;
  bool fixture = false;
  std::vector<KernelVerdict> kernels;
  /// True when no kernel carries a hazard finding (NonAffine records are
  /// demotions, not hazards).
  [[nodiscard]] bool hazard_free() const;
};

/// True for hazard kinds (Bounds / races / alloc-divergence / Unproven);
/// false for NonAffine demotion records.
[[nodiscard]] bool is_hazard(check::Kind kind) noexcept;

/// Total hazard findings across `reports`.
[[nodiscard]] std::size_t hazard_count(const std::vector<UnitReport>& reports);

/// Verifies one unit by name (a scenario or a fixture).
[[nodiscard]] UnitReport verify_unit(const std::string& unit, const VerifyOptions& opts = {});

/// Verifies every production scenario.
[[nodiscard]] std::vector<UnitReport> verify_all(const VerifyOptions& opts = {});

/// Verifies every fixture (the broken ones report findings by design).
[[nodiscard]] std::vector<UnitReport> verify_fixtures(const VerifyOptions& opts = {});

/// {unit, kernel, status, sites, launches, detail} summary table.
[[nodiscard]] kpm::Table verify_table(const std::vector<UnitReport>& reports);

/// JSON object for an obs report section (sub-schema "kpm.verify/1").
[[nodiscard]] std::string verify_to_json_section(const std::vector<UnitReport>& reports,
                                                 const VerifyOptions& opts = {});

}  // namespace kpm::verify
