// Multi-GPU moment engine — the paper's GPU-cluster future work, built.
//
// The stochastic-trace instances are embarrassingly parallel across
// devices: device g owns a contiguous chunk of the S*R instances, runs the
// same fill/recursion/average kernels as the single-GPU engine on its
// chunk, and the per-device partial moment sums are combined with one
// ring all-reduce of N doubles.  H~ is replicated on every device (each
// pays its own upload).
//
// Functional note: per-device partial sums are added device-major, which
// reorders the floating-point reduction relative to the single-GPU engine;
// results agree to roundoff (~1e-14), not bitwise.
#pragma once

#include "core/moments.hpp"
#include "core/moments_gpu.hpp"
#include "gpusim/cluster.hpp"

namespace kpm::core {

/// Configuration of the multi-GPU engine.
struct MultiGpuEngineConfig {
  GpuEngineConfig per_device{};  ///< device spec, mapping, block size
  std::size_t device_count = 4;
  gpusim::InterconnectSpec link = gpusim::InterconnectSpec::infiniband_qdr();
};

/// Scaling diagnostics of the last run.
struct MultiGpuScalingReport {
  double parallel_seconds = 0.0;       ///< modeled cluster wall-clock
  double serialized_seconds = 0.0;     ///< sum of device clocks (1-GPU equivalent work)
  double communication_seconds = 0.0;  ///< all-reduce cost
  double efficiency = 0.0;             ///< serialized / (devices * parallel)
};

/// Moment engine distributing instances over a simulated GPU cluster.
class MultiGpuMomentEngine final : public MomentEngine {
 public:
  explicit MultiGpuMomentEngine(MultiGpuEngineConfig config = {});

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MomentResult compute(const linalg::MatrixOperator& h_tilde,
                                     const MomentParams& params,
                                     std::size_t sample_instances = 0) override;

  [[nodiscard]] const MultiGpuScalingReport& last_scaling() const noexcept { return scaling_; }

 private:
  MultiGpuEngineConfig config_;
  MultiGpuScalingReport scaling_{};
};

}  // namespace kpm::core
