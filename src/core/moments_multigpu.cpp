#include "core/moments_multigpu.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "core/device_matrix.hpp"
#include "core/gpu_kernels.hpp"
#include "core/moments_cpu.hpp"
#include "obs/counters.hpp"
#include "obs/gpusim_bridge.hpp"
#include "obs/trace.hpp"

namespace kpm::core {

MultiGpuMomentEngine::MultiGpuMomentEngine(MultiGpuEngineConfig config)
    : config_(std::move(config)) {
  config_.per_device.device.validate();
  config_.link.validate();
  KPM_REQUIRE(config_.device_count >= 1, "MultiGpuEngineConfig: need at least one device");
  KPM_REQUIRE(config_.per_device.block_size > 0 && config_.per_device.block_size % 32 == 0,
              "MultiGpuEngineConfig: block_size must be a positive multiple of the warp size");
}

std::string MultiGpuMomentEngine::name() const {
  return "gpu-cluster-x" + std::to_string(config_.device_count) + "-" +
         to_string(config_.per_device.mapping);
}

MomentResult MultiGpuMomentEngine::compute(const linalg::MatrixOperator& h_tilde,
                                           const MomentParams& params,
                                           std::size_t sample_instances) {
  params.validate();
  const std::size_t d = h_tilde.dim();
  const std::size_t n = params.num_moments;
  const std::size_t total = params.instances();
  const std::size_t executed_target = resolve_sample_count(sample_instances, total);

  obs::ScopedSpan span("moments." + name());
  obs::add(obs::Counter::MomentsProduced, static_cast<double>(n));
  Stopwatch wall;
  gpusim::Cluster cluster(config_.per_device.device, config_.device_count, config_.link);
  const std::size_t devices = cluster.size();

  // Contiguous instance chunks per device (last device takes the
  // remainder).  The per-device functional sample is an even share of the
  // requested sample, capped by the chunk.
  const std::size_t chunk = (total + devices - 1) / devices;
  const std::size_t sample_share = (executed_target + devices - 1) / devices;

  std::vector<double> mu_weighted_sum(n, 0.0);
  std::size_t executed_actual = 0;

  for (std::size_t g = 0; g < devices; ++g) {
    const std::size_t begin = g * chunk;
    if (begin >= total) break;
    const std::size_t count = std::min(chunk, total - begin);
    const std::size_t local_sample = std::min(sample_share, count);
    const double cost_scale = static_cast<double>(count) / static_cast<double>(local_sample);

    gpusim::Device& dev = cluster.device(g);

    // Replicated H~ upload + per-chunk work buffers.
    DeviceMatrix h_dev(dev, h_tilde);
    auto r0 = dev.alloc<double>(count * d, "r0 vectors");
    auto work_a = dev.alloc<double>(count * d, "work vectors a");
    auto work_b = dev.alloc<double>(count * d, "work vectors b");
    auto mu_tilde = dev.alloc<double>(count * n, "mu~ per instance");
    auto mu_dev = dev.alloc<double>(n, "mu");

    // Fill: RNG streams are the GLOBAL instance ids, so the distributed
    // run draws exactly the same random vectors as a single-GPU run.
    {
      gpusim::ExecConfig cfg;
      cfg.grid = gpusim::Dim3{static_cast<std::uint32_t>(count)};
      cfg.block = gpusim::Dim3{config_.per_device.block_size};
      FillRandomKernel fill(params, d, local_sample, r0, begin);
      dev.launch(cfg, fill, cost_scale);
    }

    // Recursion on the chunk.
    if (config_.per_device.mapping == GpuMapping::InstancePerBlock) {
      gpusim::ExecConfig cfg;
      cfg.grid = gpusim::Dim3{static_cast<std::uint32_t>(count)};
      cfg.block = gpusim::Dim3{config_.per_device.block_size};
      cfg.shared_bytes = std::min<std::size_t>(
          config_.per_device.device.shared_mem_per_sm / 2,
          2 * config_.per_device.block_size * sizeof(double) * 4);
      RecursionBlockKernel rec(params, h_dev.ref(), local_sample,
                               config_.per_device.device.l2_cache_bytes, r0, work_a, work_b,
                               mu_tilde);
      dev.launch(cfg, rec, cost_scale);
    } else {
      const auto blocks = static_cast<std::uint32_t>(
          (count + config_.per_device.block_size - 1) / config_.per_device.block_size);
      gpusim::ExecConfig cfg;
      cfg.grid = gpusim::Dim3{blocks};
      cfg.block = gpusim::Dim3{config_.per_device.block_size};
      RecursionThreadKernel rec(params, h_dev.ref(), local_sample,
                                config_.per_device.device.l2_cache_bytes, r0, work_a, work_b,
                                mu_tilde);
      dev.launch(cfg, rec, cost_scale);
    }

    // Per-device average, then host-side weighted recombination.
    {
      AverageMomentsKernel avg(n, d, local_sample, count, mu_tilde, mu_dev);
      dev.launch(gpusim::ExecConfig::linear(n, 128), avg);
    }
    std::vector<double> mu_local(n);
    dev.copy_to_host<double>(mu_dev, mu_local, "partial mu download");
    for (std::size_t k = 0; k < n; ++k)
      mu_weighted_sum[k] += mu_local[k] * static_cast<double>(local_sample);
    executed_actual += local_sample;
    obs::record_device(dev, name() + ".dev" + std::to_string(g));
  }

  // One all-reduce of the N partial sums across the cluster.
  cluster.all_reduce(static_cast<double>(n) * sizeof(double));

  MomentResult result;
  result.engine = name();
  result.mu.resize(n);
  for (std::size_t k = 0; k < n; ++k)
    result.mu[k] = mu_weighted_sum[k] / static_cast<double>(executed_actual);
  result.instances_executed = executed_actual;
  result.instances_total = total;
  result.wall_seconds = wall.seconds();

  scaling_.parallel_seconds = cluster.parallel_seconds();
  scaling_.serialized_seconds = cluster.total_device_seconds();
  scaling_.communication_seconds = cluster.communication_seconds();
  scaling_.efficiency = scaling_.serialized_seconds /
                        (static_cast<double>(devices) * scaling_.parallel_seconds);

  result.model_seconds = config_.per_device.context_setup_seconds + scaling_.parallel_seconds;
  result.compute_seconds = scaling_.parallel_seconds - scaling_.communication_seconds;
  result.transfer_seconds = scaling_.communication_seconds;
  result.allocation_seconds = config_.per_device.context_setup_seconds;
  return result;
}

}  // namespace kpm::core
