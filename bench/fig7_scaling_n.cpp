// Figure 7 reproduction: "Performance comparison increasing N."
//
// Fixed H_SIZE = 128 (dense random symmetric H~), R = 14, S = 128; N swept
// over {128 .. 2048}.  The paper's observation: the speedup *grows* with N
// (to ~4x) because the computation intensifies while the memory footprint
// is fixed — in model terms, the one-time context/allocation/transfer
// overheads amortize over more recursion work.
#include "bench_common.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("fig7_scaling_n", "Reproduces Fig. 7: dense H_SIZE=128, N sweep");
  const auto* d = cli.add_int("h-size", 128, "dense matrix dimension (paper: 128)");
  const auto* r = cli.add_int("R", 14, "random vectors per realization");
  const auto* s = cli.add_int("S", 128, "realizations");
  const auto* sample = cli.add_int("sample", 8, "instances executed functionally (0 = all)");
  const auto* n_max = cli.add_int("n-max", 2048, "largest moment count");
  const auto* csv = cli.add_string("csv", "fig7_scaling_n.csv", "CSV output path");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  bench::BenchMetrics metrics("fig7_scaling_n");

  const auto h = lattice::random_symmetric_dense(static_cast<std::size_t>(*d), 0x51CAu);
  linalg::MatrixOperator raw(h);
  const auto transform = linalg::make_spectral_transform(raw);
  const auto ht = linalg::rescale(h, transform);
  linalg::MatrixOperator op(ht);

  core::MomentParams params;
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = static_cast<std::size_t>(*s);

  bench::print_banner("=== Fig. 7: execution time and speedup vs N (dense storage) ===",
                      "random symmetric dense, H_SIZE=" + std::to_string(op.dim()),
                      params, static_cast<std::size_t>(*sample));

  Table table({"N", "CPU s", "GPU s", "speedup", "GPU fixed s", "host s"});
  for (std::size_t n = 128; n <= static_cast<std::size_t>(*n_max); n *= 2) {
    params.num_moments = n;
    const auto c = bench::compare_engines(op, params, static_cast<std::size_t>(*sample));
    const double fixed = c.gpu.allocation_seconds + c.gpu.transfer_seconds;
    table.add_row({std::to_string(n), strprintf("%.3f", c.cpu.model_seconds),
                   strprintf("%.3f", c.gpu.model_seconds), strprintf("%.2f", c.speedup()),
                   strprintf("%.3f", fixed),
                   strprintf("%.3f", c.cpu.wall_seconds + c.gpu.wall_seconds)});
  }
  bench::finish(table, bench::resolve_output(*out_dir, *csv));
  std::printf("paper shape: speedup rises with N toward ~4x as fixed costs amortize\n");
  return 0;
}
