// Unit tests for CrsMatrix, TripletBuilder and the fused recursion kernels
// on the CRS path.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "linalg/crs_matrix.hpp"
#include "linalg/fused_kernels.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using kpm::linalg::CrsMatrix;
using kpm::linalg::dense_to_crs;
using kpm::linalg::DenseMatrix;
using kpm::linalg::TripletBuilder;

CrsMatrix small_example() {
  // [ 1 0 2 ]
  // [ 0 0 3 ]
  // [ 4 5 0 ]
  TripletBuilder b(3, 3);
  b.add(0, 0, 1);
  b.add(0, 2, 2);
  b.add(1, 2, 3);
  b.add(2, 0, 4);
  b.add(2, 1, 5);
  return b.build();
}

TEST(TripletBuilder, BuildsSortedCrs) {
  const auto m = small_example();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.nnz(), 5u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);  // not stored
}

TEST(TripletBuilder, DuplicatesAccumulate) {
  TripletBuilder b(2, 2);
  b.add(0, 1, 1.5);
  b.add(0, 1, 2.5);
  const auto m = b.build();
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
}

TEST(TripletBuilder, ExactZeroSumsAreDropped) {
  TripletBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, -1.0);
  b.add(1, 1, 2.0);
  const auto m = b.build();
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(TripletBuilder, AddSymmetricMirrorsOffDiagonal) {
  TripletBuilder b(3, 3);
  b.add_symmetric(0, 2, -1.0);
  b.add_symmetric(1, 1, 5.0);  // diagonal added once
  const auto m = b.build();
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 2), -1.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
}

TEST(TripletBuilder, OutOfRangeThrows) {
  TripletBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), kpm::Error);
  EXPECT_THROW(b.add(0, 2, 1.0), kpm::Error);
}

TEST(CrsMatrix, MultiplyMatchesDense) {
  const auto m = small_example();
  const auto dense = m.to_dense();
  std::vector<double> x{1, 2, 3};
  std::vector<double> y_crs(3), y_dense(3);
  m.multiply(x, y_crs);
  dense.multiply(x, y_dense);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y_crs[static_cast<std::size_t>(i)], y_dense[static_cast<std::size_t>(i)]);
}

TEST(CrsMatrix, MaxRowNnz) { EXPECT_EQ(small_example().max_row_nnz(), 2u); }

TEST(CrsMatrix, SymmetryDetection) {
  TripletBuilder b(2, 2);
  b.add_symmetric(0, 1, 3.0);
  EXPECT_TRUE(b.build().is_symmetric());
  TripletBuilder b2(2, 2);
  b2.add(0, 1, 3.0);
  EXPECT_FALSE(b2.build().is_symmetric());
}

TEST(CrsMatrix, DenseRoundTrip) {
  DenseMatrix d(2, 3);
  d(0, 1) = 2.0;
  d(1, 2) = -4.0;
  const auto m = dense_to_crs(d);
  EXPECT_EQ(m.nnz(), 2u);
  const auto back = m.to_dense();
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(back(r, c), d(r, c));
}

TEST(CrsMatrix, DropToleranceFilters) {
  DenseMatrix d(1, 3);
  d(0, 0) = 1e-14;
  d(0, 1) = 0.5;
  const auto m = dense_to_crs(d, 1e-12);
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(CrsMatrix, ValidationRejectsMalformedArrays) {
  // row_ptr wrong length.
  EXPECT_THROW(CrsMatrix(2, 2, {0, 1}, {0}, {1.0}), kpm::Error);
  // row_ptr not starting at 0.
  EXPECT_THROW(CrsMatrix(1, 1, {1, 1}, {}, {}), kpm::Error);
  // column out of range.
  EXPECT_THROW(CrsMatrix(1, 1, {0, 1}, {5}, {1.0}), kpm::Error);
  // unsorted columns within a row.
  EXPECT_THROW(CrsMatrix(1, 3, {0, 2}, {2, 0}, {1.0, 2.0}), kpm::Error);
  // nnz mismatch.
  EXPECT_THROW(CrsMatrix(1, 2, {0, 2}, {0, 1}, {1.0}), kpm::Error);
}

TEST(CrsMatrix, StorageBytesAccounting) {
  const auto m = small_example();
  const std::size_t expected = 4 * sizeof(std::int32_t)        // row_ptr
                               + 5 * sizeof(std::int32_t)      // col_idx
                               + 5 * sizeof(double);           // values
  EXPECT_EQ(m.storage_bytes(), expected);
}

TEST(CrsMatrix, MultiplyRejectsAliasing) {
  const auto m = small_example();
  std::vector<double> x{1, 2, 3};
  EXPECT_THROW(m.multiply(x, x), kpm::Error);
}

// ---------------------------------------------------------------------------
// Fused recursion kernels, CRS path.

/// Deterministic awkward values so accumulation-order changes show up bitwise.
double wiggle(std::size_t i) {
  return std::sin(static_cast<double>(i) * 2.414213562373095 + 0.5) * 1.25;
}

/// Sparse square matrix with irregular row lengths (some rows empty).
CrsMatrix sparse_example(std::size_t d) {
  TripletBuilder b(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    if (r % 5 == 4) continue;  // leave some rows entirely empty
    b.add(r, r, wiggle(r + 1));
    b.add(r, (r * 3 + 1) % d, wiggle(2 * r + 3));
    if (r % 2 == 0) b.add(r, (r + 7) % d, wiggle(4 * r + 1));
  }
  return b.build();
}

TEST(CrsFusedKernels, SpmvCombineDotMatchesUnfusedBitwise) {
  for (std::size_t d : {1u, 4u, 11u, 64u}) {
    const auto a = sparse_example(d);
    std::vector<double> r_prev(d), r_prev2(d), r0(d);
    for (std::size_t i = 0; i < d; ++i) {
      r_prev[i] = wiggle(i + 2);
      r_prev2[i] = wiggle(3 * i + 5);
      r0[i] = wiggle(7 * i + 1);
    }
    std::vector<double> hx(d), expected_next(d);
    a.multiply(r_prev, hx);
    kpm::linalg::chebyshev_combine(hx, r_prev2, expected_next);
    const double expected_mu = kpm::linalg::dot(r0, expected_next);

    std::vector<double> r_next(d);
    const double mu = kpm::linalg::spmv_combine_dot(a, r_prev, r_prev2, r0, r_next);
    EXPECT_EQ(mu, expected_mu) << "d=" << d;  // bitwise equality required
    for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(r_next[i], expected_next[i]);
  }
}

TEST(CrsFusedKernels, SpmvCombineDot2MatchesUnfusedBitwise) {
  const std::size_t d = 17;
  const auto a = sparse_example(d);
  std::vector<double> r_prev(d), r_prev2(d);
  for (std::size_t i = 0; i < d; ++i) {
    r_prev[i] = wiggle(5 * i + 2);
    r_prev2[i] = wiggle(11 * i + 3);
  }
  std::vector<double> hx(d), expected_next(d);
  a.multiply(r_prev, hx);
  kpm::linalg::chebyshev_combine(hx, r_prev2, expected_next);
  const double expected_np = kpm::linalg::dot(expected_next, r_prev);
  const double expected_pp = kpm::linalg::dot(r_prev, r_prev);

  std::vector<double> r_next(d);
  const auto dots = kpm::linalg::spmv_combine_dot2(a, r_prev, r_prev2, r_next);
  EXPECT_EQ(dots.next_prev, expected_np);
  EXPECT_EQ(dots.prev_prev, expected_pp);
  for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(r_next[i], expected_next[i]);
}

TEST(CrsFusedKernels, RejectsAliasedOutputAndMismatchedSizes) {
  const auto a = sparse_example(6);
  std::vector<double> r_prev(6, 1.0), r_prev2(6, 1.0), r0(6, 1.0), out(6);
  EXPECT_THROW((void)kpm::linalg::spmv_combine_dot(a, r_prev, r_prev2, r0, r_prev), kpm::Error);
  EXPECT_THROW((void)kpm::linalg::spmv_combine_dot(a, r_prev, r_prev2, r0, r_prev2), kpm::Error);
  EXPECT_THROW((void)kpm::linalg::spmv_combine_dot2(a, r_prev, r_prev2, r_prev), kpm::Error);
  std::vector<double> bad(5, 1.0);
  EXPECT_THROW((void)kpm::linalg::spmv_combine_dot(a, bad, r_prev2, r0, out), kpm::Error);
  EXPECT_THROW((void)kpm::linalg::spmv_combine_dot2(a, r_prev, bad, out), kpm::Error);
}

}  // namespace
