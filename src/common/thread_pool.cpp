#include "common/thread_pool.hpp"

#include "common/error.hpp"

namespace kpm::common {

ThreadPool::ThreadPool(std::size_t lanes) {
  KPM_REQUIRE(lanes >= 1, "ThreadPool: need at least one lane");
  workers_.reserve(lanes - 1);
  for (std::size_t lane = 1; lane < lanes; ++lane)
    workers_.emplace_back([this, lane] { worker_loop(lane); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::record_exception() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!first_error_) first_error_ = std::current_exception();
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      task = task_;
    }
    try {
      (*task)(lane);
    } catch (...) {
      record_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::run(const std::function<void(std::size_t)>& task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    first_error_ = nullptr;
    pending_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();

  // Lane 0 is the calling thread: it works instead of blocking.
  try {
    task(0);
  } catch (...) {
    record_exception();
  }

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    task_ = nullptr;
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_range(std::size_t count, std::size_t chunks,
                                                            std::size_t chunk) {
  KPM_REQUIRE(chunks >= 1 && chunk < chunks, "ThreadPool::chunk_range: chunk out of range");
  // i * count / chunks distributes the remainder one element at a time, so
  // chunk sizes differ by at most one and cover [0, count) exactly.
  return {chunk * count / chunks, (chunk + 1) * count / chunks};
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t lanes = size();
  run([&](std::size_t lane) {
    const auto [begin, end] = chunk_range(count, lanes, lane);
    if (begin < end) body(lane, begin, end);
  });
}

}  // namespace kpm::common
