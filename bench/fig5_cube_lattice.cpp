// Figure 5 reproduction: "Performances applying the lattice made of cubes
// placed in 10x10x10."
//
// The paper's headline experiment: DoS moments of the 10x10x10 cubic
// tight-binding lattice (D = 1000, 7 entries/row), R = 14, S = 128,
// N swept over {128, 256, 512, 1024}; execution times on CPU vs GPU and
// the speedup, which the paper reports as ~3.5x across the whole sweep.
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("fig5_cube_lattice", "Reproduces Fig. 5: 10x10x10 lattice, N sweep");
  const auto* l = cli.add_int("edge", 10, "lattice edge length (paper: 10)");
  const auto* r = cli.add_int("R", 14, "random vectors per realization");
  const auto* s = cli.add_int("S", 128, "realizations");
  const auto* sample = cli.add_int("sample", 8, "instances executed functionally (0 = all)");
  const auto* n_max = cli.add_int("n-max", 1024, "largest moment count");
  const auto* csv = cli.add_string("csv", "fig5_cube_lattice.csv", "CSV output path");
  const auto* out_dir = bench::add_out_dir(cli);
  cli.parse(argc, argv);

  bench::BenchMetrics metrics("fig5_cube_lattice");

  const auto lat = lattice::HypercubicLattice::cubic(
      static_cast<std::size_t>(*l), static_cast<std::size_t>(*l), static_cast<std::size_t>(*l));
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator raw(h);
  const auto transform = linalg::make_spectral_transform(raw);
  const auto ht = linalg::rescale(h, transform);
  linalg::MatrixOperator op(ht);

  core::MomentParams params;
  params.random_vectors = static_cast<std::size_t>(*r);
  params.realizations = static_cast<std::size_t>(*s);

  bench::print_banner("=== Fig. 5: execution time and speedup, cubic lattice (sparse CRS) ===",
                      lat.describe() + ", D=" + std::to_string(op.dim()) +
                          ", nnz/row=" + std::to_string(h.max_row_nnz()),
                      params, static_cast<std::size_t>(*sample));

  Table table({"N", "CPU s", "GPU s", "speedup", "GPU kernel s", "GPU xfer s", "host s"});
  for (std::size_t n = 128; n <= static_cast<std::size_t>(*n_max); n *= 2) {
    params.num_moments = n;
    const auto c = bench::compare_engines(op, params, static_cast<std::size_t>(*sample));
    table.add_row({std::to_string(n), strprintf("%.3f", c.cpu.model_seconds),
                   strprintf("%.3f", c.gpu.model_seconds), strprintf("%.2f", c.speedup()),
                   strprintf("%.3f", c.gpu.compute_seconds),
                   strprintf("%.4f", c.gpu.transfer_seconds),
                   strprintf("%.3f", c.cpu.wall_seconds + c.gpu.wall_seconds)});
  }
  bench::finish(table, bench::resolve_output(*out_dir, *csv));
  std::printf("paper shape: speedup ~3.5x, roughly flat across N\n");
  return 0;
}
