// Device-resident Hamiltonian: the H~ matrix uploaded to GPU global memory.
//
// Holds either dense values or the three CRS arrays, plus a lightweight
// non-owning `DeviceMatrixRef` that kernels capture.  The upload charges
// PCIe transfer time to the device timeline, exactly like the cudaMemcpy
// the paper's host code performs before launching.
#pragma once

#include <cstdint>
#include <span>

#include "gpusim/device.hpp"
#include "linalg/operator.hpp"

namespace kpm::core {

/// Non-owning view of a device-resident matrix, usable inside kernels.
struct DeviceMatrixRef {
  linalg::Storage storage = linalg::Storage::Dense;
  std::size_t dim = 0;
  std::size_t stored_entries = 0;
  std::span<const double> values;           // dense: dim*dim row-major; crs: nnz
  std::span<const std::int32_t> row_ptr;    // crs only
  std::span<const std::int32_t> col_idx;    // crs only

  /// Bytes one full traversal of the matrix streams from global memory.
  [[nodiscard]] double traversal_bytes() const noexcept {
    if (storage == linalg::Storage::Dense)
      return static_cast<double>(stored_entries) * sizeof(double);
    return static_cast<double>(stored_entries) * (sizeof(double) + sizeof(std::int32_t)) +
           static_cast<double>(dim + 1) * sizeof(std::int32_t);
  }

  /// y = H~ x on raw spans (no metering; kernels meter analytically).
  void multiply(std::span<const double> x, std::span<double> y) const noexcept {
    if (storage == linalg::Storage::Dense) {
      for (std::size_t r = 0; r < dim; ++r) {
        const double* row = values.data() + r * dim;
        double acc = 0.0;
        for (std::size_t c = 0; c < dim; ++c) acc += row[c] * x[c];
        y[r] = acc;
      }
    } else {
      for (std::size_t r = 0; r < dim; ++r) {
        double acc = 0.0;
        for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          acc += values[kk] * x[static_cast<std::size_t>(col_idx[kk])];
        }
        y[r] = acc;
      }
    }
  }
};

/// Owning device-side matrix storage.
class DeviceMatrix {
 public:
  /// Allocates device buffers for `op` and copies the host data across
  /// (charging allocation + PCIe time on `device`).
  DeviceMatrix(gpusim::Device& device, const linalg::MatrixOperator& op)
      : storage_(op.storage()), dim_(op.dim()), stored_entries_(op.stored_entries()) {
    KPM_REQUIRE(storage_ != linalg::Storage::Sell,
                "DeviceMatrix: SELL-C-sigma operators are host-only; upload the CRS form "
                "for the GPU engines");
    if (storage_ == linalg::Storage::Dense) {
      const auto& m = *op.dense();
      values_ = device.alloc<double>(m.rows() * m.cols(), "H~ dense values");
      device.copy_to_device<double>(m.data(), values_, "H~ dense upload");
    } else {
      const auto& m = *op.crs();
      values_ = device.alloc<double>(m.nnz(), "H~ crs values");
      row_ptr_ = device.alloc<std::int32_t>(m.rows() + 1, "H~ crs row_ptr");
      col_idx_ = device.alloc<std::int32_t>(m.nnz(), "H~ crs col_idx");
      device.copy_to_device<double>(m.values(), values_, "H~ crs values upload");
      device.copy_to_device<std::int32_t>(m.row_ptr(), row_ptr_, "H~ crs row_ptr upload");
      device.copy_to_device<std::int32_t>(m.col_idx(), col_idx_, "H~ crs col_idx upload");
    }
  }

  [[nodiscard]] DeviceMatrixRef ref() const noexcept {
    DeviceMatrixRef r;
    r.storage = storage_;
    r.dim = dim_;
    r.stored_entries = stored_entries_;
    r.values = values_.raw();
    if (storage_ == linalg::Storage::Crs) {
      r.row_ptr = row_ptr_.raw();
      r.col_idx = col_idx_.raw();
    }
    return r;
  }

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

 private:
  linalg::Storage storage_;
  std::size_t dim_;
  std::size_t stored_entries_;
  gpusim::DeviceBuffer<double> values_;
  gpusim::DeviceBuffer<std::int32_t> row_ptr_;
  gpusim::DeviceBuffer<std::int32_t> col_idx_;
};

}  // namespace kpm::core
