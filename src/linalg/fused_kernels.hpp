// Fused KPM recursion kernels: SpMV + Chebyshev combine + dot in one pass.
//
// The unfused recursion step
//     hx     = H~ * r_prev            (multiply: streams matrix, x, y)
//     r_next = 2 * hx - r_prev2       (chebyshev_combine: 2 reads, 1 write)
//     mu~_n  = <r0 | r_next>          (dot: 2 reads)
// touches the vectors three times.  Fusing keeps the row result in a
// register: per row the SpMV accumulator becomes r_next[r] directly and the
// dot contribution is added on the spot, so the combine's hx read/write and
// the dot's r_next re-read disappear.  Per step the vector traffic drops
// from 7 D doubles to 4 D (matrix traffic is unchanged) — the kernel-fusion
// lever of Kreutzer et al. (arXiv:1410.5242) applied to the host engines.
//
// Bit-compatibility contract: the fused kernels produce results that are
// bit-identical to the unfused multiply + chebyshev_combine + dot sequence.
// The per-row SpMV accumulation order matches CrsMatrix/DenseMatrix
// ::multiply exactly, and the dot accumulation uses linalg::dot's canonical
// 4-lane order (row r feeds lane r mod 4; total = (l0 + l1) + (l2 + l3)).
//
// Vector-block (SpMMV) variants: the spmmv_* kernels process a BLOCK of B
// independent recursion vectors per matrix pass — the decisive KPM lever of
// Kreutzer et al.: matrix traffic is amortized 1/B while the per-member
// arithmetic is untouched.  Block vectors are stored INTERLEAVED: element i
// of member j lives at x[i*B + j], so the inner member loop reads
// unit-stride memory at every gathered row.  Every member's accumulation
// (per-row entry order AND dot lane order, with the member's own 4 lanes)
// is identical to the corresponding single-vector kernel, so blocked
// results are bit-identical to B per-vector passes.  SELL-C-sigma operators
// traverse rows in LOGICAL order through `slot_of()`, with per-row entry
// order matching CRS, so SELL results are bit-identical to CRS too.
#pragma once

#include <complex>
#include <cstddef>
#include <span>

#include "linalg/crs_matrix.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/hermitian_matrix.hpp"
#include "linalg/operator.hpp"
#include "linalg/sell_matrix.hpp"

namespace kpm::linalg {

/// r_next = 2 * A * r_prev - r_prev2; returns <r0 | r_next>.
/// Preconditions: all spans have length A.rows() == A.cols(); r_next must
/// not alias r_prev, r_prev2 or r0 (the SpMV gathers r_prev while r_next is
/// written, and the dot reads r0 against freshly written rows).
[[nodiscard]] double spmv_combine_dot(const CrsMatrix& a, std::span<const double> r_prev,
                                      std::span<const double> r_prev2, std::span<const double> r0,
                                      std::span<double> r_next);
[[nodiscard]] double spmv_combine_dot(const DenseMatrix& a, std::span<const double> r_prev,
                                      std::span<const double> r_prev2, std::span<const double> r0,
                                      std::span<double> r_next);
[[nodiscard]] double spmv_combine_dot(const SellMatrix& a, std::span<const double> r_prev,
                                      std::span<const double> r_prev2, std::span<const double> r0,
                                      std::span<double> r_next);
/// Storage-dispatching overload for engine code.
[[nodiscard]] double spmv_combine_dot(const MatrixOperator& op, std::span<const double> r_prev,
                                      std::span<const double> r_prev2, std::span<const double> r0,
                                      std::span<double> r_next);

/// Both dot products the paired-moment recursion needs from one pass.
struct PairedDots {
  double next_prev = 0.0;  ///< <r_next | r_prev>  (feeds mu~_{2k+1})
  double prev_prev = 0.0;  ///< <r_prev | r_prev>  (feeds mu~_{2k})
};

/// r_next = 2 * A * r_prev - r_prev2; returns <r_next|r_prev> and
/// <r_prev|r_prev> computed in the same pass.  Same alias preconditions as
/// spmv_combine_dot.
[[nodiscard]] PairedDots spmv_combine_dot2(const CrsMatrix& a, std::span<const double> r_prev,
                                           std::span<const double> r_prev2,
                                           std::span<double> r_next);
[[nodiscard]] PairedDots spmv_combine_dot2(const DenseMatrix& a, std::span<const double> r_prev,
                                           std::span<const double> r_prev2,
                                           std::span<double> r_next);
[[nodiscard]] PairedDots spmv_combine_dot2(const SellMatrix& a, std::span<const double> r_prev,
                                           std::span<const double> r_prev2,
                                           std::span<double> r_next);
[[nodiscard]] PairedDots spmv_combine_dot2(const MatrixOperator& op,
                                           std::span<const double> r_prev,
                                           std::span<const double> r_prev2,
                                           std::span<double> r_next);

/// Complex-Hermitian variant: r_next = 2 * A * r_prev - r_prev2; returns
/// Re<r0 | r_next> = sum_r Re(conj(r0[r]) * r_next[r]).  Accumulates the
/// dot left-to-right (single lane), matching the pre-fusion Hermitian
/// moment path bit-for-bit.  Same alias preconditions as spmv_combine_dot.
[[nodiscard]] double spmv_combine_dot_re(const CrsMatrixZ& a,
                                         std::span<const std::complex<double>> r_prev,
                                         std::span<const std::complex<double>> r_prev2,
                                         std::span<const std::complex<double>> r0,
                                         std::span<std::complex<double>> r_next);

// ---------------------------------------------------------------------------
// Vector-block (SpMMV) kernels.  `block` is B >= 1; block spans hold
// dim * B doubles in the interleaved layout described above, and `dots`
// outputs hold one value per member.  Every kernel streams the matrix ONCE
// for all B members.

/// Per-member dot products <x_j | y_j> of two interleaved blocks, each in
/// linalg::dot's canonical 4-lane order (element i feeds lane i mod 4).
/// Member j's result is bit-identical to linalg::dot on its deinterleaved
/// vectors.  Unmetered, like linalg::dot.
void block_dot(std::span<const double> x, std::span<const double> y, std::size_t block,
               std::span<double> dots);

/// y_j = A * x_j for all B members in one matrix pass (no combine, no dot;
/// the blocked analogue of MatrixOperator::multiply, used for the r_1 =
/// H~ r_0 step).  Meters B SpMV products over one matrix stream.
void spmmv_multiply(const CrsMatrix& a, std::size_t block, std::span<const double> x,
                    std::span<double> y);
void spmmv_multiply(const SellMatrix& a, std::size_t block, std::span<const double> x,
                    std::span<double> y);
void spmmv_multiply(const DenseMatrix& a, std::size_t block, std::span<const double> x,
                    std::span<double> y);
void spmmv_multiply(const MatrixOperator& op, std::size_t block, std::span<const double> x,
                    std::span<double> y);

/// r_next_j = 2 * A * r_prev_j - r_prev2_j and dots[j] = <r0_j | r_next_j>
/// for all B members in one matrix pass.  Same alias preconditions as
/// spmv_combine_dot; member j's outputs are bit-identical to the
/// single-vector kernel on its deinterleaved vectors.
void spmmv_combine_dot(const CrsMatrix& a, std::size_t block, std::span<const double> r_prev,
                       std::span<const double> r_prev2, std::span<const double> r0,
                       std::span<double> r_next, std::span<double> dots);
void spmmv_combine_dot(const SellMatrix& a, std::size_t block, std::span<const double> r_prev,
                       std::span<const double> r_prev2, std::span<const double> r0,
                       std::span<double> r_next, std::span<double> dots);
void spmmv_combine_dot(const DenseMatrix& a, std::size_t block, std::span<const double> r_prev,
                       std::span<const double> r_prev2, std::span<const double> r0,
                       std::span<double> r_next, std::span<double> dots);
void spmmv_combine_dot(const MatrixOperator& op, std::size_t block,
                       std::span<const double> r_prev, std::span<const double> r_prev2,
                       std::span<const double> r0, std::span<double> r_next,
                       std::span<double> dots);

/// Blocked paired-moment pass: r_next_j = 2 * A * r_prev_j - r_prev2_j with
/// dots[j] = {<r_next_j|r_prev_j>, <r_prev_j|r_prev_j>} per member.
void spmmv_combine_dot2(const CrsMatrix& a, std::size_t block, std::span<const double> r_prev,
                        std::span<const double> r_prev2, std::span<double> r_next,
                        std::span<PairedDots> dots);
void spmmv_combine_dot2(const SellMatrix& a, std::size_t block, std::span<const double> r_prev,
                        std::span<const double> r_prev2, std::span<double> r_next,
                        std::span<PairedDots> dots);
void spmmv_combine_dot2(const DenseMatrix& a, std::size_t block, std::span<const double> r_prev,
                        std::span<const double> r_prev2, std::span<double> r_next,
                        std::span<PairedDots> dots);
void spmmv_combine_dot2(const MatrixOperator& op, std::size_t block,
                        std::span<const double> r_prev, std::span<const double> r_prev2,
                        std::span<double> r_next, std::span<PairedDots> dots);

/// Blocked complex-Hermitian pass: per member, dots[j] = Re<r0_j|r_next_j>
/// accumulated as a single-lane left fold (matching spmv_combine_dot_re).
void spmmv_combine_dot_re(const CrsMatrixZ& a, std::size_t block,
                          std::span<const std::complex<double>> r_prev,
                          std::span<const std::complex<double>> r_prev2,
                          std::span<const std::complex<double>> r0,
                          std::span<std::complex<double>> r_next, std::span<double> dots);

}  // namespace kpm::linalg
