#include "obs/tracediff.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "obs/json.hpp"

namespace kpm::obs {

namespace {

constexpr double kMsPerNs = 1e-6;

/// FNV-1a 64-bit over the serialised document body.  (Deliberately local:
/// obs must not depend on the serving layer's hashing helpers.)
std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

struct Occurrence {
  std::string key;
  std::int64_t ns = 0;
};

/// Identity sequence of a trace, in trace order: host spans by hierarchical
/// name path, then every timeline event by timeline/kind/label (streams
/// excluded so stream migration shows as a lane delta, not a new key).
std::vector<Occurrence> occurrence_sequence(const TraceFile& trace) {
  std::vector<Occurrence> seq;
  std::vector<std::string> path(trace.spans.size());
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const TraceFileSpan& span = trace.spans[i];
    path[i] = span.parent == kNoParent ? span.name : path[span.parent] + "/" + span.name;
    seq.push_back({"host:" + path[i], span.dur_ns});
  }
  for (const TraceFileTimeline& timeline : trace.timelines) {
    for (const TraceFileEvent& event : timeline.events) {
      seq.push_back({"tl:" + timeline.label + "/" + event.kind + ":" + event.label,
                     event.duration_ns()});
    }
  }
  return seq;
}

struct Run {
  std::size_t key_id = 0;
  std::size_t count = 0;
};

std::vector<Run> run_length_encode(const std::vector<Occurrence>& seq,
                                   std::map<std::string, std::size_t>& key_ids,
                                   std::vector<std::string>& keys) {
  std::vector<Run> runs;
  for (const Occurrence& occ : seq) {
    auto [slot, inserted] = key_ids.try_emplace(occ.key, keys.size());
    if (inserted) keys.push_back(occ.key);
    if (!runs.empty() && runs.back().key_id == slot->second) {
      runs.back().count += 1;
    } else {
      runs.push_back({slot->second, 1});
    }
  }
  return runs;
}

/// Aligned occurrence count per key from an LCS over the RLE runs.  For the
/// (unrealistically large) traces where the quadratic table would not fit,
/// falls back to pure multiset matching — order violations then simply do
/// not surface as "reordered", but nothing else changes.
std::vector<std::size_t> aligned_occurrences(const std::vector<Run>& a, const std::vector<Run>& b,
                                             std::size_t key_count) {
  std::vector<std::size_t> aligned(key_count, 0);
  constexpr std::size_t kMaxCells = 4U * 1024U * 1024U;
  if (a.empty() || b.empty()) return aligned;
  if (a.size() * b.size() > kMaxCells) {
    for (std::size_t k = 0; k < key_count; ++k) aligned[k] = static_cast<std::size_t>(-1);
    return aligned;  // sentinel: caller treats every common occurrence as aligned
  }
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // dp[i][j] = LCS weight of a[i..] vs b[j..], weight of an aligned run pair
  // being min(count) occurrences.
  std::vector<std::uint32_t> dp((n + 1) * (m + 1), 0);
  const auto at = [m](std::size_t i, std::size_t j) { return i * (m + 1) + j; };
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = m; j-- > 0;) {
      std::uint32_t best = std::max(dp[at(i + 1, j)], dp[at(i, j + 1)]);
      if (a[i].key_id == b[j].key_id) {
        best = std::max(best, static_cast<std::uint32_t>(std::min(a[i].count, b[j].count)) +
                                  dp[at(i + 1, j + 1)]);
      }
      dp[at(i, j)] = best;
    }
  }
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < n && j < m) {
    if (a[i].key_id == b[j].key_id &&
        dp[at(i, j)] == static_cast<std::uint32_t>(std::min(a[i].count, b[j].count)) +
                            dp[at(i + 1, j + 1)]) {
      aligned[a[i].key_id] += std::min(a[i].count, b[j].count);
      ++i;
      ++j;
    } else if (dp[at(i + 1, j)] >= dp[at(i, j + 1)]) {
      ++i;
    } else {
      ++j;
    }
  }
  return aligned;
}

std::string format_ms(std::int64_t ns) {
  return kpm::strprintf("%.6f", static_cast<double>(ns) * kMsPerNs);
}

std::string lane_name(std::size_t stream, bool copy) {
  std::string name = "s";
  name += std::to_string(stream);
  if (copy) name += " copy";
  return name;
}

/// Lists up to `limit` keys of the given state, "+k more" beyond that.
std::string list_keys(const TraceDiff& diff, SpanState state, std::size_t limit) {
  std::vector<std::string> names;
  std::size_t total = 0;
  for (const SpanDelta& span : diff.spans) {
    if (span.state != state) continue;
    ++total;
    if (names.size() < limit) names.push_back(span.key);
  }
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) out += ", ";
    out += names[i];
  }
  if (total > names.size()) {
    out += kpm::strprintf(" (+%zu more)", total - names.size());
  }
  return out;
}

}  // namespace

const char* to_string(SpanState state) noexcept {
  switch (state) {
    case SpanState::Matched: return "matched";
    case SpanState::Added: return "added";
    case SpanState::Removed: return "removed";
    case SpanState::Reordered: return "reordered";
  }
  return "?";
}

TraceDiff diff_traces(const TraceFile& a, const TraceFile& b) {
  TraceDiff diff;
  diff.label_a = a.label;
  diff.label_b = b.label;

  const std::vector<Occurrence> seq_a = occurrence_sequence(a);
  const std::vector<Occurrence> seq_b = occurrence_sequence(b);
  std::map<std::string, std::size_t> key_ids;
  std::vector<std::string> keys;
  const std::vector<Run> runs_a = run_length_encode(seq_a, key_ids, keys);
  const std::vector<Run> runs_b = run_length_encode(seq_b, key_ids, keys);

  struct SideAgg {
    std::size_t count = 0;
    std::int64_t ns = 0;
  };
  std::vector<SideAgg> agg_a(keys.size());
  std::vector<SideAgg> agg_b(keys.size());
  for (const Occurrence& occ : seq_a) {
    SideAgg& agg = agg_a[key_ids.at(occ.key)];
    agg.count += 1;
    agg.ns += occ.ns;
  }
  for (const Occurrence& occ : seq_b) {
    SideAgg& agg = agg_b[key_ids.at(occ.key)];
    agg.count += 1;
    agg.ns += occ.ns;
  }

  std::vector<std::size_t> aligned = aligned_occurrences(runs_a, runs_b, keys.size());
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const std::size_t common = std::min(agg_a[k].count, agg_b[k].count);
    if (aligned[k] == static_cast<std::size_t>(-1)) aligned[k] = common;  // LCS fallback
    SpanDelta span;
    span.key = keys[k];
    span.count_a = agg_a[k].count;
    span.count_b = agg_b[k].count;
    span.ns_a = agg_a[k].ns;
    span.ns_b = agg_b[k].ns;
    if (span.count_a == 0) {
      span.state = SpanState::Added;
    } else if (span.count_b == 0) {
      span.state = SpanState::Removed;
    } else if (aligned[k] < common) {
      span.state = SpanState::Reordered;
    } else {
      span.state = SpanState::Matched;
    }
    diff.matched += common;
    diff.added += span.count_b - common;
    diff.removed += span.count_a - common;
    diff.reordered += common - std::min(aligned[k], common);
    diff.spans.push_back(std::move(span));
  }
  std::stable_sort(diff.spans.begin(), diff.spans.end(), [](const SpanDelta& x, const SpanDelta& y) {
    const std::int64_t dx = std::abs(x.ns_b - x.ns_a);
    const std::int64_t dy = std::abs(y.ns_b - y.ns_a);
    if (dx != dy) return dx > dy;
    return x.key < y.key;
  });

  const CriticalPathReport cp_a = critical_path(a);
  const CriticalPathReport cp_b = critical_path(b);
  diff.makespan_ns_a = cp_a.makespan_ns;
  diff.makespan_ns_b = cp_b.makespan_ns;
  diff.overlap_a = cp_a.overlap_fraction();
  diff.overlap_b = cp_b.overlap_fraction();

  // Lanes matched by (timeline label, stream, copy), A's order first.
  const auto lane_key = [](const TraceFile& trace, const LaneStats& lane) {
    return trace.timelines[lane.timeline].label + "\x1f" + lane_name(lane.stream, lane.copy);
  };
  std::map<std::string, std::size_t> lane_slot;
  for (const LaneStats& lane : cp_a.lanes) {
    diff.idle_ns_a += lane.idle_ns;
    lane_slot[lane_key(a, lane)] = diff.lanes.size();
    LaneDelta delta;
    delta.timeline = a.timelines[lane.timeline].label;
    delta.stream = lane.stream;
    delta.copy = lane.copy;
    delta.busy_ns_a = lane.busy_ns;
    delta.idle_ns_a = lane.idle_ns;
    diff.lanes.push_back(std::move(delta));
  }
  for (const LaneStats& lane : cp_b.lanes) {
    diff.idle_ns_b += lane.idle_ns;
    const std::string key = lane_key(b, lane);
    auto slot = lane_slot.find(key);
    if (slot == lane_slot.end()) {
      slot = lane_slot.emplace(key, diff.lanes.size()).first;
      LaneDelta delta;
      delta.timeline = b.timelines[lane.timeline].label;
      delta.stream = lane.stream;
      delta.copy = lane.copy;
      diff.lanes.push_back(std::move(delta));
    }
    diff.lanes[slot->second].busy_ns_b = lane.busy_ns;
    diff.lanes[slot->second].idle_ns_b = lane.idle_ns;
  }

  // Critical-path composition, union of entries in A's order.
  std::map<std::string, std::size_t> comp_slot;
  for (const auto& [label, ns] : cp_a.composition) {
    comp_slot[label] = diff.composition.size();
    diff.composition.push_back({label, ns, 0});
  }
  for (const auto& [label, ns] : cp_b.composition) {
    auto slot = comp_slot.find(label);
    if (slot == comp_slot.end()) {
      slot = comp_slot.emplace(label, diff.composition.size()).first;
      diff.composition.push_back({label, 0, 0});
    }
    diff.composition[slot->second].ns_b = ns;
  }
  return diff;
}

std::vector<std::string> tracediff_violations(const TraceDiff& diff,
                                              const TraceDiffThresholds& limits) {
  std::vector<std::string> violations;
  const auto pct_of = [](std::int64_t delta, std::int64_t base) {
    return 100.0 * static_cast<double>(delta) / static_cast<double>(base);
  };

  const std::int64_t makespan_delta = std::abs(diff.makespan_ns_b - diff.makespan_ns_a);
  if (std::max(diff.makespan_ns_a, diff.makespan_ns_b) >= limits.min_span_ns) {
    if (diff.makespan_ns_a == 0) {
      violations.push_back("modeled makespan appeared out of nowhere (A 0 ns, B " +
                           std::to_string(diff.makespan_ns_b) + " ns)");
    } else if (pct_of(makespan_delta, diff.makespan_ns_a) > limits.max_makespan_drift_pct) {
      violations.push_back(kpm::strprintf(
          "modeled makespan drifted %.2f%% (A %lld ns -> B %lld ns, limit %.2f%%)",
          pct_of(makespan_delta, diff.makespan_ns_a),
          static_cast<long long>(diff.makespan_ns_a), static_cast<long long>(diff.makespan_ns_b),
          limits.max_makespan_drift_pct));
    }
  }

  if (diff.added > limits.max_added) {
    violations.push_back(kpm::strprintf("%zu occurrence(s) added (limit %zu): ", diff.added,
                                        limits.max_added) +
                         list_keys(diff, SpanState::Added, 5));
  }
  if (diff.removed > limits.max_removed) {
    violations.push_back(kpm::strprintf("%zu occurrence(s) removed (limit %zu): ", diff.removed,
                                        limits.max_removed) +
                         list_keys(diff, SpanState::Removed, 5));
  }
  if (diff.reordered > limits.max_reordered) {
    violations.push_back(kpm::strprintf("%zu occurrence(s) re-ordered (limit %zu): ",
                                        diff.reordered, limits.max_reordered) +
                         list_keys(diff, SpanState::Reordered, 5));
  }

  std::size_t drift_overflow = 0;
  for (const SpanDelta& span : diff.spans) {
    if (span.count_a == 0 || span.count_b == 0) continue;  // covered by added/removed
    if (std::max(span.ns_a, span.ns_b) < limits.min_span_ns || span.ns_a <= 0) continue;
    const double drift = pct_of(std::abs(span.ns_b - span.ns_a), span.ns_a);
    if (drift <= limits.max_span_drift_pct) continue;
    if (violations.size() < 32) {
      violations.push_back(kpm::strprintf("span '%s' model time drifted %.2f%% (%lld ns -> %lld "
                                          "ns, limit %.2f%%)",
                                          span.key.c_str(), drift,
                                          static_cast<long long>(span.ns_a),
                                          static_cast<long long>(span.ns_b),
                                          limits.max_span_drift_pct));
    } else {
      ++drift_overflow;
    }
  }
  if (drift_overflow > 0) {
    violations.push_back(kpm::strprintf("... and %zu more span drift violation(s)",
                                        drift_overflow));
  }

  if (diff.overlap_a - diff.overlap_b > limits.max_overlap_drop) {
    violations.push_back(kpm::strprintf(
        "copy/compute overlap dropped %.4f (A %.4f -> B %.4f, limit %.4f)",
        diff.overlap_a - diff.overlap_b, diff.overlap_a, diff.overlap_b,
        limits.max_overlap_drop));
  }

  const std::int64_t idle_growth = diff.idle_ns_b - diff.idle_ns_a;
  if (idle_growth >= limits.min_span_ns) {
    if (diff.idle_ns_a == 0) {
      violations.push_back("stream idle time appeared (A 0 ns, B " +
                           std::to_string(diff.idle_ns_b) + " ns)");
    } else if (pct_of(idle_growth, diff.idle_ns_a) > limits.max_idle_growth_pct) {
      violations.push_back(kpm::strprintf(
          "stream idle time grew %.2f%% (A %lld ns -> B %lld ns, limit %.2f%%)",
          pct_of(idle_growth, diff.idle_ns_a), static_cast<long long>(diff.idle_ns_a),
          static_cast<long long>(diff.idle_ns_b), limits.max_idle_growth_pct));
    }
  }
  return violations;
}

std::string tracediff_to_json(const TraceDiff& diff, const std::vector<std::string>& violations) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kTraceDiffSchema << "\",\n";
  const auto side = [&os](const char* name, const std::string& label, std::int64_t makespan,
                          std::int64_t idle, double overlap) {
    os << "  \"" << name << "\": {\"label\": \"" << json_escape(label)
       << "\", \"makespan_ns\": " << makespan << ", \"idle_ns\": " << idle
       << ", \"copy_hidden_fraction\": " << json_number(overlap) << "},\n";
  };
  side("a", diff.label_a, diff.makespan_ns_a, diff.idle_ns_a, diff.overlap_a);
  side("b", diff.label_b, diff.makespan_ns_b, diff.idle_ns_b, diff.overlap_b);
  os << "  \"alignment\": {\"matched\": " << diff.matched << ", \"added\": " << diff.added
     << ", \"removed\": " << diff.removed << ", \"reordered\": " << diff.reordered << "},\n";
  os << "  \"spans\": [";
  for (std::size_t i = 0; i < diff.spans.size(); ++i) {
    const SpanDelta& span = diff.spans[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"key\": \"" << json_escape(span.key)
       << "\", \"state\": \"" << to_string(span.state) << "\", \"count_a\": " << span.count_a
       << ", \"count_b\": " << span.count_b << ", \"ns_a\": " << span.ns_a
       << ", \"ns_b\": " << span.ns_b << "}";
  }
  os << "\n  ],\n  \"lanes\": [";
  for (std::size_t i = 0; i < diff.lanes.size(); ++i) {
    const LaneDelta& lane = diff.lanes[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"timeline\": \"" << json_escape(lane.timeline)
       << "\", \"lane\": \"" << lane_name(lane.stream, lane.copy)
       << "\", \"busy_ns_a\": " << lane.busy_ns_a << ", \"busy_ns_b\": " << lane.busy_ns_b
       << ", \"idle_ns_a\": " << lane.idle_ns_a << ", \"idle_ns_b\": " << lane.idle_ns_b << "}";
  }
  os << "\n  ],\n  \"critical_path\": [";
  for (std::size_t i = 0; i < diff.composition.size(); ++i) {
    const CompositionShift& entry = diff.composition[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"label\": \"" << json_escape(entry.label)
       << "\", \"ns_a\": " << entry.ns_a << ", \"ns_b\": " << entry.ns_b << "}";
  }
  os << "\n  ],\n  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(violations[i]) << "\"";
  }
  os << "\n  ],\n";
  std::string body = os.str();
  body += kpm::strprintf("  \"fingerprint\": \"0x%016llx\"\n}\n",
                         static_cast<unsigned long long>(fnv1a64(body)));
  return body;
}

kpm::Table tracediff_span_table(const TraceDiff& diff, std::size_t max_rows) {
  kpm::Table table({"key", "state", "n_a", "n_b", "ms_a", "ms_b", "delta_ms"});
  for (const SpanDelta& span : diff.spans) {
    if (max_rows != 0 && table.rows() >= max_rows) break;
    table.add_row({span.key, to_string(span.state), std::to_string(span.count_a),
                   std::to_string(span.count_b), format_ms(span.ns_a), format_ms(span.ns_b),
                   format_ms(span.ns_b - span.ns_a)});
  }
  return table;
}

kpm::Table tracediff_lane_table(const TraceDiff& diff) {
  kpm::Table table({"timeline", "lane", "busy_ms_a", "busy_ms_b", "idle_ms_a", "idle_ms_b",
                    "idle_delta_ms"});
  for (const LaneDelta& lane : diff.lanes) {
    table.add_row({lane.timeline, lane_name(lane.stream, lane.copy), format_ms(lane.busy_ns_a),
                   format_ms(lane.busy_ns_b), format_ms(lane.idle_ns_a),
                   format_ms(lane.idle_ns_b), format_ms(lane.idle_ns_b - lane.idle_ns_a)});
  }
  return table;
}

kpm::Table tracediff_composition_table(const TraceDiff& diff) {
  kpm::Table table({"path_entry", "ms_a", "ms_b", "delta_ms"});
  for (const CompositionShift& entry : diff.composition) {
    table.add_row({entry.label, format_ms(entry.ns_a), format_ms(entry.ns_b),
                   format_ms(entry.ns_b - entry.ns_a)});
  }
  return table;
}

void perturb_trace(TraceFile& trace, std::uint64_t seed) {
  // A 25% stretch of every instant plus one renamed event: guaranteed to
  // trip both the timing thresholds and the identity alignment, which is
  // exactly what a negative control should do.
  const auto stretch = [](std::int64_t ns) { return ns + ns / 4; };
  for (TraceFileSpan& span : trace.spans) {
    span.start_ns = stretch(span.start_ns);
    span.dur_ns = stretch(span.dur_ns) + 1000;
  }
  std::size_t total_events = 0;
  for (TraceFileTimeline& timeline : trace.timelines) {
    total_events += timeline.events.size();
    for (TraceFileEvent& event : timeline.events) {
      event.start_ns = stretch(event.start_ns);
      event.end_ns = stretch(event.end_ns) + 1000;
    }
  }
  std::uint64_t state = seed != 0 ? seed : 0x9e3779b97f4a7c15ULL;
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  if (total_events > 0) {
    std::size_t target = static_cast<std::size_t>(state % total_events);
    for (TraceFileTimeline& timeline : trace.timelines) {
      if (target < timeline.events.size()) {
        timeline.events[target].label += "~perturbed";
        break;
      }
      target -= timeline.events.size();
    }
  } else if (!trace.spans.empty()) {
    trace.spans[state % trace.spans.size()].name += "~perturbed";
  }
}

}  // namespace kpm::obs
