// Deterministic simulated serving fleet.
//
// A `Fleet` fronts N shared-nothing `serve::Server` shards behind a
// consistent-hash ring: every request's *canonical* content-addressed
// moment key (Server::key_of — a pure function of request and model
// content) is hashed onto the ring, requests partition per shard, and each
// shard replays its partition through the single-server discrete-event
// loop with its own queue, admission control and `MomentCache`.  Shards
// never share state, so a fleet run is exactly N independent server runs
// plus deterministic aggregation:
//
//   clients -> key_of(request) -> hash ring -> shard_k -> Server::run
//
// Per-shard knobs: `BatchPricing` (a gpu-timeline shard prices DoS batches
// from gpusim device timelines and emits a per-shard Perfetto process) and
// `CachePolicy` (LRU vs cost-aware admission/eviction).
//
// Determinism contract, inherited from the single server and the
// order-free ring: responses, per-shard accounting and the report
// fingerprint are bit-identical at any worker count AND for any shard
// enumeration order (shards are canonicalized by name; ring points are a
// pure function of membership).  `machine_seconds` — shard count times the
// fleet makespan — is the cost axis the autoscaling sweep in
// bench/bench_fleet.cpp trades against latency-SLO attainment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/fleet/router.hpp"
#include "serve/replay.hpp"
#include "serve/server.hpp"

namespace kpm::serve {

/// One shard's identity and per-shard policy knobs.
struct FleetShardSpec {
  std::string name;
  BatchPricing pricing = BatchPricing::SerialRoofline;
  CachePolicy cache_policy = CachePolicy::Lru;
};

struct FleetConfig {
  /// Shard set; enumeration order is irrelevant (canonicalized by name).
  std::vector<FleetShardSpec> shards;
  RingConfig ring;
  /// Per-shard server knobs (workers, queue/batch bounds, cache budget,
  /// gpu device spec); pricing and cache_policy come from each spec.
  ServeConfig shard_config;
  /// Latency SLO for attainment accounting; <= 0 disables it.
  double slo_seconds = 0.0;

  void validate() const;
};

/// Accounting of one shard within a fleet run.
struct FleetShardOutcome {
  std::string name;
  BatchPricing pricing = BatchPricing::SerialRoofline;
  CachePolicy cache_policy = CachePolicy::Lru;
  std::uint64_t routed = 0;           ///< requests the ring sent here
  ServeStats stats;                   ///< the shard's run accounting
  double makespan_seconds = 0.0;      ///< last simulated event on this shard
};

/// Aggregate result of one fleet run.
struct FleetResult {
  std::vector<Response> responses;        ///< merged, sorted by id
  std::vector<FleetShardOutcome> shards;  ///< canonical (name-sorted) order
  std::uint64_t ring_fingerprint = 0;
  std::uint64_t served = 0;    ///< responses with status Ok
  std::uint64_t shed = 0;      ///< rejected + expired
  std::uint64_t slo_met = 0;   ///< served within slo_seconds (0 when disabled)
  double makespan_seconds = 0.0;  ///< max shard makespan
  /// Simulated fleet cost: every shard is reserved until the slowest one
  /// drains, so cost = shards * makespan.
  double machine_seconds = 0.0;
  std::string section_json;  ///< pre-rendered `kpm.serve.fleet/1` section
};

/// The fleet front end.  Register models once (they land on every shard —
/// any shard must be able to serve any key the ring assigns it), then
/// `run` request vectors.
class Fleet {
 public:
  explicit Fleet(FleetConfig config);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  void register_model(const std::string& name, const linalg::CrsMatrix& h);
  void register_current(const std::string& model, std::size_t axis,
                        const linalg::CrsMatrix& a);

  /// Routes and serves `requests`.  Ids must be unique fleet-wide.  When an
  /// obs report is active, pushes one `serve.<shard>` section per shard
  /// plus the `fleet` section, relabels shard-emitted device timelines with
  /// the shard name, and records fleet_* counters/histograms.
  [[nodiscard]] FleetResult run(const std::vector<Request>& requests);

  [[nodiscard]] std::size_t shard_count() const noexcept { return servers_.size(); }
  [[nodiscard]] const ConsistentHashRouter& router() const noexcept { return router_; }
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

 private:
  FleetConfig config_;  ///< shards canonicalized by name
  ConsistentHashRouter router_;
  std::vector<std::unique_ptr<Server>> servers_;  ///< parallel to config_.shards
};

/// Builds and registers every model of `workload` into `fleet` (same
/// recipes as the single-server overload).
void register_models(Fleet& fleet, const ReplayWorkload& workload);

}  // namespace kpm::serve
