// Unit tests for the BLAS-1 vector kernels and the fused recursion kernels
// (dense path; the CRS path is covered in test_crs_matrix.cpp).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/fused_kernels.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using namespace kpm::linalg;

TEST(VectorOps, AxpbyComputesLinearCombination) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  axpby(2.0, x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 14.0);
  EXPECT_DOUBLE_EQ(y[2], 21.0);
}

TEST(VectorOps, AxpyAccumulates) {
  std::vector<double> x{1, -1};
  std::vector<double> y{0, 0};
  axpy(3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
}

TEST(VectorOps, ScaleMultiplies) {
  std::vector<double> x{2, 4};
  scale(0.5, x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(VectorOps, CopyDuplicates) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y(3);
  copy(x, y);
  EXPECT_EQ(x, y);
}

TEST(VectorOps, DotMatchesHandComputation) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOps, DotOfEmptyThrows) {
  std::vector<double> x, y;
  EXPECT_THROW((void)dot(x, y), kpm::Error);
}

TEST(VectorOps, DotUsesFourLaneOrderForAllTailLengths) {
  // The library-wide canonical order: element i feeds lane (i mod 4), total
  // is (lane0 + lane1) + (lane2 + lane3).  Verify bitwise for every tail
  // length so the fused kernels can rely on it.
  for (std::size_t n = 1; n <= 9; ++n) {
    std::vector<double> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = 1.0 + 1e-13 * static_cast<double>(i * i + 1);
      y[i] = -0.5 + 1e-13 * static_cast<double>(3 * i + 2);
    }
    double lane[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) lane[i % 4] += x[i] * y[i];
    const double expected = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    EXPECT_EQ(dot(x, y), expected) << "n=" << n;
  }
}

TEST(VectorOps, Nrm2IsEuclidean) {
  std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
}

TEST(VectorOps, SignedSumAndAmax) {
  std::vector<double> x{1, -4, 2};
  EXPECT_DOUBLE_EQ(asum_signed(x), -1.0);
  EXPECT_DOUBLE_EQ(amax(x), 4.0);
}

TEST(VectorOps, ReductionsRejectEmptySpans) {
  std::vector<double> empty;
  EXPECT_THROW((void)amax(empty), kpm::Error);
  EXPECT_THROW((void)asum_signed(empty), kpm::Error);
  EXPECT_THROW((void)nrm2(empty), kpm::Error);
}

TEST(VectorOps, ChebyshevCombineMatchesDefinition) {
  // next = 2*hx - prev (Eq. 18's vector update).
  std::vector<double> hx{1, 2};
  std::vector<double> prev{10, 20};
  std::vector<double> next(2);
  chebyshev_combine(hx, prev, next);
  EXPECT_DOUBLE_EQ(next[0], -8.0);
  EXPECT_DOUBLE_EQ(next[1], -16.0);
}

TEST(VectorOps, ChebyshevCombineAllowsInPlaceOnPrev) {
  // The GPU kernels overwrite prev2 in place; the CPU helper must support
  // hx aliasing next (hx was stored into next's buffer by the SpMV).
  std::vector<double> next{1, 2};   // holds hx on entry
  std::vector<double> prev{10, 20};
  chebyshev_combine(next, prev, next);
  EXPECT_DOUBLE_EQ(next[0], -8.0);
  EXPECT_DOUBLE_EQ(next[1], -16.0);
}

TEST(VectorOps, SizeMismatchesThrow) {
  std::vector<double> a(3), b(4);
  EXPECT_THROW(axpby(1.0, a, 1.0, b), kpm::Error);
  EXPECT_THROW(axpy(1.0, a, b), kpm::Error);
  EXPECT_THROW(copy(a, b), kpm::Error);
  EXPECT_THROW((void)dot(a, b), kpm::Error);
  std::vector<double> c(3);
  EXPECT_THROW(chebyshev_combine(a, b, c), kpm::Error);
}

// ---------------------------------------------------------------------------
// Fused recursion kernels, dense path.

/// Deterministic awkward values: irrational-ish magnitudes so any change in
/// floating-point accumulation order shows up bitwise.
double wiggle(std::size_t i) {
  return std::sin(static_cast<double>(i) * 1.618033988749895 + 0.25) * 1.5;
}

DenseMatrix dense_example(std::size_t d) {
  DenseMatrix a(d, d);
  for (std::size_t r = 0; r < d; ++r)
    for (std::size_t c = 0; c < d; ++c) a(r, c) = wiggle(r * d + c + 7);
  return a;
}

TEST(FusedKernels, DenseSpmvCombineDotMatchesUnfusedBitwise) {
  // Odd dimension exercises the dot's tail lanes too.
  for (std::size_t d : {1u, 4u, 7u, 33u}) {
    const auto a = dense_example(d);
    std::vector<double> r_prev(d), r_prev2(d), r0(d);
    for (std::size_t i = 0; i < d; ++i) {
      r_prev[i] = wiggle(i + 1);
      r_prev2[i] = wiggle(3 * i + 2);
      r0[i] = wiggle(5 * i + 3);
    }
    // Unfused reference: multiply, combine, dot.
    std::vector<double> hx(d), expected_next(d);
    a.multiply(r_prev, hx);
    chebyshev_combine(hx, r_prev2, expected_next);
    const double expected_mu = dot(r0, expected_next);

    std::vector<double> r_next(d);
    const double mu = spmv_combine_dot(a, r_prev, r_prev2, r0, r_next);
    EXPECT_EQ(mu, expected_mu) << "d=" << d;  // bitwise, not approximate
    for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(r_next[i], expected_next[i]);
  }
}

TEST(FusedKernels, DenseSpmvCombineDot2MatchesUnfusedBitwise) {
  const std::size_t d = 13;
  const auto a = dense_example(d);
  std::vector<double> r_prev(d), r_prev2(d);
  for (std::size_t i = 0; i < d; ++i) {
    r_prev[i] = wiggle(2 * i + 1);
    r_prev2[i] = wiggle(7 * i + 5);
  }
  std::vector<double> hx(d), expected_next(d);
  a.multiply(r_prev, hx);
  chebyshev_combine(hx, r_prev2, expected_next);
  const double expected_np = dot(expected_next, r_prev);
  const double expected_pp = dot(r_prev, r_prev);

  std::vector<double> r_next(d);
  const auto dots = spmv_combine_dot2(a, r_prev, r_prev2, r_next);
  EXPECT_EQ(dots.next_prev, expected_np);
  EXPECT_EQ(dots.prev_prev, expected_pp);
  for (std::size_t i = 0; i < d; ++i) EXPECT_EQ(r_next[i], expected_next[i]);
}

TEST(FusedKernels, RejectsAliasedOutput) {
  const std::size_t d = 4;
  const auto a = dense_example(d);
  std::vector<double> r_prev(d, 1.0), r_prev2(d, 1.0), r0(d, 1.0);
  // The output must be a distinct buffer: the SpMV gathers r_prev while
  // r_next is being written.
  EXPECT_THROW((void)spmv_combine_dot(a, r_prev, r_prev2, r0, r_prev), kpm::Error);
  EXPECT_THROW((void)spmv_combine_dot(a, r_prev, r_prev2, r0, r_prev2), kpm::Error);
  EXPECT_THROW((void)spmv_combine_dot2(a, r_prev, r_prev2, r_prev), kpm::Error);
  EXPECT_THROW((void)spmv_combine_dot2(a, r_prev, r_prev2, r_prev2), kpm::Error);
}

TEST(FusedKernels, RejectsSizeMismatch) {
  const auto a = dense_example(4);
  std::vector<double> good(4, 1.0), bad(3, 1.0), out(4);
  EXPECT_THROW((void)spmv_combine_dot(a, bad, good, good, out), kpm::Error);
  EXPECT_THROW((void)spmv_combine_dot(a, good, bad, good, out), kpm::Error);
  EXPECT_THROW((void)spmv_combine_dot(a, good, good, bad, out), kpm::Error);
  std::vector<double> out_bad(3);
  EXPECT_THROW((void)spmv_combine_dot(a, good, good, good, out_bad), kpm::Error);
}

}  // namespace
