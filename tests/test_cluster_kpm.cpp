// Differential test harness for the cluster-sharded KPM engine: sharded
// moments must be BITWISE identical to the serial reference for every node
// count, block width, thread count and storage format, and every invalid
// cluster configuration must be rejected with a clear error.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "core/ldos.hpp"
#include "core/moments_cluster.hpp"
#include "core/moments_cpu.hpp"
#include "gpusim/cluster.hpp"
#include "lattice/decompose.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/honeycomb.hpp"
#include "lattice/lattice.hpp"
#include "linalg/decomposition.hpp"
#include "linalg/sell_matrix.hpp"
#include "linalg/spectral_transform.hpp"
#include "obs/report.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

struct Fixture {
  linalg::CrsMatrix h_tilde;
  linalg::SellMatrix sell;

  explicit Fixture(std::size_t l = 4) {
    const auto lat = lattice::HypercubicLattice::cubic(l, l, l);
    const auto h = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator op(h);
    h_tilde = linalg::rescale(h, linalg::make_spectral_transform(op));
    sell = linalg::SellMatrix::from_crs(h_tilde, 4, 8);
  }
};

MomentParams small_params(std::size_t block = 1) {
  MomentParams p;
  p.num_moments = 16;
  p.random_vectors = 4;
  p.realizations = 2;  // 8 instances
  p.block_r = block;
  return p;
}

void expect_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t n = 0; n < a.size(); ++n) {
    // EXPECT_EQ on doubles is exact — but compare bit patterns so that a
    // -0.0 vs 0.0 or NaN discrepancy cannot hide.
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a[n], sizeof ba);
    std::memcpy(&bb, &b[n], sizeof bb);
    EXPECT_EQ(ba, bb) << what << ": moment " << n << " differs: " << a[n] << " vs " << b[n];
  }
}

// --- Tentpole: differential bit-identity sweep -----------------------------

TEST(ClusterKpm, BitIdenticalToSerialAcrossNodeCounts) {
  Fixture f;
  const linalg::MatrixOperator op(f.h_tilde);
  const auto p = small_params();
  CpuMomentEngine cpu;
  const auto ref = cpu.compute(op, p);
  for (std::size_t nodes : {1u, 2u, 3u, 4u, 8u}) {
    ClusterEngineConfig cfg;
    cfg.node_count = nodes;
    ClusterMomentEngine cluster(cfg);
    const auto got = cluster.compute(op, p);
    expect_bitwise_equal(ref.mu, got.mu, "P=" + std::to_string(nodes));
    EXPECT_EQ(got.instances_executed, ref.instances_executed);
    EXPECT_EQ(got.engine, "cluster-sharded-x" + std::to_string(nodes));
  }
}

TEST(ClusterKpm, BitIdenticalAcrossThreadsBlocksAndStorage) {
  Fixture f;
  const linalg::MatrixOperator crs_op(f.h_tilde);
  const linalg::MatrixOperator sell_op(f.sell);
  CpuMomentEngine cpu;
  const auto ref = cpu.compute(crs_op, small_params());
  for (const auto* op : {&crs_op, &sell_op}) {
    for (std::size_t nodes : {2u, 4u, 8u}) {
      for (int threads : {1, 2, 4, 7}) {
        for (std::size_t block : {1u, 4u}) {
          ClusterEngineConfig cfg;
          cfg.node_count = nodes;
          cfg.threads = threads;
          ClusterMomentEngine cluster(cfg);
          const auto got = cluster.compute(*op, small_params(block));
          expect_bitwise_equal(ref.mu, got.mu,
                               linalg::to_string(op->storage()) + std::string(" P=") +
                                   std::to_string(nodes) + " t=" + std::to_string(threads) +
                                   " b=" + std::to_string(block));
          EXPECT_EQ(got.threads_used, threads == 1 ? 1 : threads);
        }
      }
    }
  }
}

TEST(ClusterKpm, SlabAndUniformDecompositionsAgreeBitwise) {
  Fixture f;
  const linalg::MatrixOperator op(f.h_tilde);
  const auto lat = lattice::HypercubicLattice::cubic(4, 4, 4);
  const auto p = small_params();
  CpuMomentEngine cpu;
  const auto ref = cpu.compute(op, p);
  for (std::size_t nodes : {2u, 4u}) {
    ClusterEngineConfig cfg;
    cfg.decomposition = lattice::slab_decomposition(lat, nodes);
    ClusterMomentEngine cluster(cfg);
    const auto got = cluster.compute(op, p);
    expect_bitwise_equal(ref.mu, got.mu, "slab P=" + std::to_string(nodes));
  }
}

TEST(ClusterKpm, HoneycombDecompositionBitIdentical) {
  const auto lat = lattice::HoneycombLattice(6, 5);
  const auto h = lat.hamiltonian();
  const linalg::MatrixOperator raw(h);
  const auto h_tilde = linalg::rescale(h, linalg::make_spectral_transform(raw));
  const linalg::MatrixOperator op(h_tilde);
  const auto p = small_params();
  CpuMomentEngine cpu;
  const auto ref = cpu.compute(op, p);
  for (std::size_t nodes : {1u, 2u, 5u}) {
    ClusterEngineConfig cfg;
    cfg.decomposition = lattice::honeycomb_decomposition(lat, nodes);
    ClusterMomentEngine cluster(cfg);
    const auto got = cluster.compute(op, p);
    expect_bitwise_equal(ref.mu, got.mu, "honeycomb P=" + std::to_string(nodes));
  }
}

TEST(ClusterKpm, HeterogeneousNodesChangeCostButNotValues) {
  Fixture f;
  const linalg::MatrixOperator op(f.h_tilde);
  const auto p = small_params();
  CpuMomentEngine cpu;
  const auto ref = cpu.compute(op, p);

  ClusterEngineConfig hetero;
  hetero.nodes = {ClusterNodeSpec::gpu_node(gpusim::DeviceSpec::tesla_c2050()),
                  ClusterNodeSpec::cpu_node(),
                  ClusterNodeSpec::gpu_node(gpusim::DeviceSpec::geforce_gtx285())};
  ClusterMomentEngine mixed(hetero);
  const auto got = mixed.compute(op, p);
  expect_bitwise_equal(ref.mu, got.mu, "heterogeneous P=3");

  ClusterEngineConfig homo;
  homo.node_count = 3;
  ClusterMomentEngine cpus(homo);
  const auto cpu_only = cpus.compute(op, p);
  expect_bitwise_equal(got.mu, cpu_only.mu, "hetero vs homo");
  // A slow CPU node gates the bulk-synchronous cluster: the mixed cluster's
  // modeled wall-clock differs from the all-CPU one, while the values do not.
  EXPECT_GT(mixed.last_scaling().parallel_seconds, 0.0);
  EXPECT_GT(cpus.last_scaling().parallel_seconds, 0.0);
  EXPECT_NE(mixed.last_scaling().parallel_seconds, cpus.last_scaling().parallel_seconds);
}

TEST(ClusterKpm, LdosBitIdenticalToSerial) {
  Fixture f;
  const linalg::MatrixOperator op(f.h_tilde);
  for (std::size_t site : {0u, 17u, 63u}) {
    const auto ref = ldos_moments(op, site, 12);
    for (std::size_t nodes : {1u, 3u, 4u}) {
      const auto dec = linalg::Decomposition::uniform(op.dim(), nodes);
      const auto got = cluster_ldos_moments(op, dec, site, 12);
      expect_bitwise_equal(ref, got,
                           "ldos site=" + std::to_string(site) + " P=" + std::to_string(nodes));
    }
  }
  // Degenerate single-moment request.
  const auto one = cluster_ldos_moments(op, linalg::Decomposition::uniform(op.dim(), 2), 5, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 1.0);
}

// --- Observability: counters, histograms and timelines ---------------------

TEST(ClusterKpm, CountersAndHistogramsArePartitionAndThreadInvariant) {
  Fixture f;
  const linalg::MatrixOperator op(f.h_tilde);
  const auto p = small_params();

  obs::Report serial_report;
  {
    obs::Collect scope(serial_report);
    CpuMomentEngine cpu;
    (void)cpu.compute(op, p);
  }
  for (std::size_t nodes : {1u, 2u, 4u}) {
    for (int threads : {1, 4}) {
      obs::Report report;
      {
        obs::Collect scope(report);
        ClusterEngineConfig cfg;
        cfg.node_count = nodes;
        cfg.threads = threads;
        ClusterMomentEngine cluster(cfg);
        (void)cluster.compute(op, p);
      }
      EXPECT_EQ(report.counters, serial_report.counters)
          << "P=" << nodes << " threads=" << threads;
      // SpanWallNs measures real host time and is never deterministic;
      // the modeled per-instance histogram must match the serial engine's.
      EXPECT_EQ(report.histograms[obs::Histo::InstanceModelNs],
                serial_report.histograms[obs::Histo::InstanceModelNs])
          << "P=" << nodes << " threads=" << threads;
    }
  }
}

TEST(ClusterKpm, EachNodeExportsItsOwnTimeline) {
  Fixture f;
  const linalg::MatrixOperator op(f.h_tilde);
  obs::Report report;
  {
    obs::Collect scope(report);
    ClusterEngineConfig cfg;
    cfg.node_count = 3;
    ClusterMomentEngine cluster(cfg);
    (void)cluster.compute(op, small_params());
  }
  ASSERT_EQ(report.timelines.size(), 3u);
  for (std::size_t pnode = 0; pnode < 3; ++pnode) {
    const auto& rec = report.timelines[pnode];
    EXPECT_EQ(rec.label, "cluster-sharded-x3.node" + std::to_string(pnode));
    EXPECT_EQ(rec.streams, 2u);
    EXPECT_GT(rec.critical_path_seconds, 0.0);
    bool saw_halo = false, saw_allreduce = false, saw_kernel = false;
    for (const auto& ev : rec.events) {
      EXPECT_GE(ev.end_seconds, ev.start_seconds);
      if (ev.kind == "h2d") saw_halo = true;
      if (ev.kind == "d2h") saw_allreduce = true;
      if (ev.kind == "kernel") saw_kernel = true;
    }
    EXPECT_TRUE(saw_halo) << "node " << pnode << " missing halo-recv copy event";
    EXPECT_TRUE(saw_allreduce) << "node " << pnode << " missing all-reduce event";
    EXPECT_TRUE(saw_kernel);
  }
}

TEST(ClusterKpm, ScalingReportIsConsistent) {
  Fixture f;
  const linalg::MatrixOperator op(f.h_tilde);
  ClusterEngineConfig cfg;
  cfg.node_count = 4;
  ClusterMomentEngine cluster(cfg);
  const auto result = cluster.compute(op, small_params());
  const auto& s = cluster.last_scaling();
  EXPECT_EQ(s.nodes, 4u);
  EXPECT_GT(s.parallel_seconds, 0.0);
  EXPECT_GT(s.serialized_seconds, 0.0);
  EXPECT_GT(s.halo_seconds, 0.0);
  EXPECT_GT(s.allreduce_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.communication_seconds, s.halo_seconds + s.allreduce_seconds);
  EXPECT_GT(s.efficiency, 0.0);
  EXPECT_LE(s.efficiency, 1.0);
  EXPECT_GE(s.halo_seconds, s.exposed_halo_seconds);
  EXPECT_GT(s.halo_bytes_per_step, 0.0);
  EXPECT_GT(s.halo_bytes_total, 0.0);
  EXPECT_GT(s.allreduce_bytes_total, 0.0);
  EXPECT_DOUBLE_EQ(result.model_seconds, s.parallel_seconds);
  EXPECT_DOUBLE_EQ(result.transfer_seconds, s.allreduce_seconds + s.exposed_halo_seconds);
  EXPECT_DOUBLE_EQ(result.compute_seconds, result.model_seconds - result.transfer_seconds);
}

TEST(ClusterKpm, IdealFabricHidesAllCommunication) {
  Fixture f;
  const linalg::MatrixOperator op(f.h_tilde);
  ClusterEngineConfig cfg;
  cfg.node_count = 4;
  cfg.link = gpusim::InterconnectSpec::ideal();
  ClusterMomentEngine cluster(cfg);
  (void)cluster.compute(op, small_params());
  const auto& s = cluster.last_scaling();
  // Zero latency and ~infinite bandwidth: the 1-plane slabs of this split
  // have no interior rows to hide behind, but the exposed halo time is the
  // raw wire time — vanishingly small on the ideal fabric.
  EXPECT_LT(s.exposed_halo_seconds, 1e-12);
  EXPECT_LT(s.communication_seconds, 1e-12);
}

// --- Negative paths ---------------------------------------------------------

TEST(ClusterKpm, RejectsZeroNodeCluster) {
  ClusterEngineConfig cfg;
  cfg.node_count = 0;
  EXPECT_THROW(ClusterMomentEngine{cfg}, kpm::Error);
}

TEST(ClusterKpm, RejectsNonCoveringPartition) {
  // Gap: [0, 10) + [20, 64) misses rows 10..19.
  EXPECT_THROW(linalg::Decomposition(64, {{0, 10}, {20, 64}}), kpm::Error);
  // Overlap.
  EXPECT_THROW(linalg::Decomposition(64, {{0, 40}, {30, 64}}), kpm::Error);
  // Short coverage.
  EXPECT_THROW(linalg::Decomposition(64, {{0, 32}}), kpm::Error);
  // Empty range.
  EXPECT_THROW(linalg::Decomposition(64, {{0, 0}, {0, 64}}), kpm::Error);
}

TEST(ClusterKpm, RejectsHaloWiderThanSubdomain) {
  // Thinnest shard has 2 rows; a 3-layer halo cannot fit.
  EXPECT_THROW(linalg::Decomposition(64, {{0, 2}, {2, 64}}, 3), kpm::Error);
  const auto lat = lattice::HypercubicLattice::cubic(4, 4, 4);
  EXPECT_THROW((void)lattice::slab_decomposition(lat, 4, 2), kpm::Error);
}

TEST(ClusterKpm, RejectsMoreNodesThanLatticePlanes) {
  const auto lat = lattice::HypercubicLattice::cubic(4, 4, 4);
  EXPECT_THROW((void)lattice::slab_decomposition(lat, 5), kpm::Error);
  const auto hex = lattice::HoneycombLattice(4, 3);
  EXPECT_THROW((void)lattice::honeycomb_decomposition(hex, 4), kpm::Error);
}

TEST(ClusterKpm, RejectsUnknownInterconnect) {
  EXPECT_THROW((void)gpusim::InterconnectSpec::from_name("carrier-pigeon"), kpm::Error);
  EXPECT_EQ(gpusim::InterconnectSpec::from_name("ib-qdr").bandwidth,
            gpusim::InterconnectSpec::infiniband_qdr().bandwidth);
  EXPECT_EQ(gpusim::InterconnectSpec::from_name("pcie").bandwidth,
            gpusim::InterconnectSpec::pcie_peer().bandwidth);
  EXPECT_EQ(gpusim::InterconnectSpec::from_name("ideal").latency_s, 0.0);
}

TEST(ClusterKpm, RejectsMismatchedConfigurations) {
  Fixture f;
  const linalg::MatrixOperator op(f.h_tilde);
  // Decomposition for a different operator size.
  {
    ClusterEngineConfig cfg;
    cfg.decomposition = linalg::Decomposition::uniform(32, 2);
    ClusterMomentEngine cluster(cfg);
    EXPECT_THROW((void)cluster.compute(op, small_params()), kpm::Error);
  }
  // Node-spec count disagreeing with the decomposition.
  {
    ClusterEngineConfig cfg;
    cfg.decomposition = linalg::Decomposition::uniform(64, 3);
    cfg.nodes = {ClusterNodeSpec::cpu_node(), ClusterNodeSpec::cpu_node()};
    EXPECT_THROW(ClusterMomentEngine{cfg}, kpm::Error);
  }
  // More nodes than rows.
  {
    ClusterEngineConfig cfg;
    cfg.node_count = 65;
    ClusterMomentEngine cluster(cfg);
    EXPECT_THROW((void)cluster.compute(op, small_params()), kpm::Error);
  }
  // Dense operators cannot be sharded (no halo structure).
  {
    const auto dense = f.h_tilde.to_dense();
    const linalg::MatrixOperator dense_op(dense);
    ClusterMomentEngine cluster;
    EXPECT_THROW((void)cluster.compute(dense_op, small_params()), kpm::Error);
  }
}

}  // namespace
