#include "linalg/vector_ops.hpp"

#include <cmath>

#include "common/error.hpp"

namespace kpm::linalg {

void axpby(double alpha, std::span<const double> x, double beta, std::span<double> y) {
  KPM_REQUIRE(x.size() == y.size(), "axpby: size mismatch");
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  KPM_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

void copy(std::span<const double> x, std::span<double> out) {
  KPM_REQUIRE(x.size() == out.size(), "copy: size mismatch");
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i];
}

double dot(std::span<const double> x, std::span<const double> y) {
  KPM_REQUIRE(x.size() == y.size(), "dot: size mismatch");
  KPM_REQUIRE(!x.empty(), "dot: empty span");
  // Canonical 4-lane order (see header): element i feeds lane i mod 4.  Four
  // independent dependency chains let the FPU overlap the adds; the fused
  // kernels replicate this order row-by-row so fused == unfused bitwise.
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  if (i < n) a0 += x[i] * y[i];
  if (i + 1 < n) a1 += x[i + 1] * y[i + 1];
  if (i + 2 < n) a2 += x[i + 2] * y[i + 2];
  return (a0 + a1) + (a2 + a3);
}

double nrm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double asum_signed(std::span<const double> x) {
  KPM_REQUIRE(!x.empty(), "asum_signed: empty span");
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

double amax(std::span<const double> x) {
  KPM_REQUIRE(!x.empty(), "amax: empty span");
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

void chebyshev_combine(std::span<const double> hx, std::span<const double> prev,
                       std::span<double> next) {
  KPM_REQUIRE(hx.size() == prev.size() && hx.size() == next.size(),
              "chebyshev_combine: size mismatch");
  const std::size_t n = hx.size();
  for (std::size_t i = 0; i < n; ++i) next[i] = 2.0 * hx[i] - prev[i];
}

}  // namespace kpm::linalg
