// CPU roofline evaluation: workload counts -> simulated seconds.
#pragma once

#include "cpumodel/cpu_spec.hpp"

namespace kpm::cpumodel {

/// Operation counts of a CPU code region.
struct CpuWorkload {
  double flops = 0.0;              ///< double-precision operations
  double bytes_streamed = 0.0;     ///< bytes moved through the memory hierarchy
  double working_set_bytes = 0.0;  ///< bytes re-touched per pass (selects the cache level)

  CpuWorkload& operator+=(const CpuWorkload& o) {
    flops += o.flops;
    bytes_streamed += o.bytes_streamed;
    working_set_bytes = working_set_bytes > o.working_set_bytes ? working_set_bytes
                                                                : o.working_set_bytes;
    return *this;
  }

  void scale(double factor) {
    flops *= factor;
    bytes_streamed *= factor;
    // working_set_bytes is a per-pass property; sampling more instances of
    // the same pass does not grow it.
  }

  /// Flops per streamed byte — the roofline x-axis.  SpMMV blocking raises
  /// this by amortizing the matrix stream across the vector block.
  [[nodiscard]] double arithmetic_intensity() const noexcept {
    return bytes_streamed > 0.0 ? flops / bytes_streamed : 0.0;
  }
};

/// Timing breakdown of a modeled CPU region.
struct CpuStats {
  double seconds = 0.0;
  double compute_seconds = 0.0;
  double memory_seconds = 0.0;

  [[nodiscard]] const char* bound() const noexcept {
    return memory_seconds >= compute_seconds ? "memory" : "compute";
  }
};

/// Evaluates the roofline: time = max(flops / peak, bytes / bw(working set)).
[[nodiscard]] CpuStats model_cpu_time(const CpuSpec& spec, const CpuWorkload& workload);

/// Multithreaded roofline: compute scales with min(threads, cores); memory
/// uses the parallel bandwidth model (private caches scale, shared
/// resources saturate).  `workload` holds the TOTAL work across threads and
/// the PER-THREAD working set.
[[nodiscard]] CpuStats model_cpu_time_parallel(const CpuSpec& spec, const CpuWorkload& workload,
                                               int threads);

}  // namespace kpm::cpumodel
