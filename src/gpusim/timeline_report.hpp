// Human-readable rendering of a device timeline — the simulator's answer
// to `nvprof`.
#pragma once

#include <string>

#include "gpusim/device.hpp"

namespace gpusim {

/// Renders the timeline as an aligned table: stream, [start, end], kind,
/// label and the dominant bound for kernels.  Intended for debugging and
/// for the profiling story in the examples.
[[nodiscard]] std::string timeline_to_text(const Device& device);

/// One-line summary: "N events, X ms critical path (Y ms serialized), Z%
/// overlap".
[[nodiscard]] std::string timeline_summary_line(const Device& device);

}  // namespace gpusim
