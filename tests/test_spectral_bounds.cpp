// Tests for Gershgorin bounds and the spectral transform (paper Eqs. 8-9).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "diag/tridiag.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/gershgorin.hpp"
#include "linalg/operator.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm::linalg;
using kpm::lattice::build_tight_binding_crs;
using kpm::lattice::build_tight_binding_dense;
using kpm::lattice::HypercubicLattice;

TEST(Gershgorin, DiagonalMatrixBoundsAreExact) {
  DenseMatrix m(3, 3);
  m(0, 0) = -2;
  m(1, 1) = 1;
  m(2, 2) = 5;
  const auto b = gershgorin_bounds(m);
  EXPECT_DOUBLE_EQ(b.lower, -2.0);
  EXPECT_DOUBLE_EQ(b.upper, 5.0);
  EXPECT_DOUBLE_EQ(b.center(), 1.5);
  EXPECT_DOUBLE_EQ(b.half_width(), 3.5);
}

TEST(Gershgorin, CubicLatticeBoundsArePlusMinusSix) {
  // Zero diagonal, six -1 neighbours per row: every disc is [-6, 6].
  const auto lat = HypercubicLattice::cubic(4, 4, 4);
  const auto h = build_tight_binding_crs(lat);
  const auto b = gershgorin_bounds(h);
  EXPECT_DOUBLE_EQ(b.lower, -6.0);
  EXPECT_DOUBLE_EQ(b.upper, 6.0);
}

TEST(Gershgorin, DenseAndCrsAgree) {
  const auto lat = HypercubicLattice::square(5, 4);
  const auto hc = build_tight_binding_crs(lat);
  const auto hd = build_tight_binding_dense(lat);
  const auto bc = gershgorin_bounds(hc);
  const auto bd = gershgorin_bounds(hd);
  EXPECT_DOUBLE_EQ(bc.lower, bd.lower);
  EXPECT_DOUBLE_EQ(bc.upper, bd.upper);
}

TEST(Gershgorin, ContainsTrueSpectrum) {
  const auto h = kpm::lattice::random_symmetric_dense(24, 5);
  const auto b = gershgorin_bounds(h);
  const auto eig = kpm::diag::symmetric_eigenvalues(h);
  EXPECT_GE(eig.front(), b.lower - 1e-12);
  EXPECT_LE(eig.back(), b.upper + 1e-12);
}

TEST(SpectralTransform, MapsBoundsInsideUnitInterval) {
  const SpectralTransform t({-6.0, 6.0}, 0.01);
  EXPECT_DOUBLE_EQ(t.center(), 0.0);
  EXPECT_DOUBLE_EQ(t.half_width(), 6.06);
  EXPECT_LT(t.to_unit(6.0), 1.0);
  EXPECT_GT(t.to_unit(-6.0), -1.0);
}

TEST(SpectralTransform, RoundTripsAndJacobian) {
  const SpectralTransform t({-1.0, 3.0}, 0.0);
  for (double omega : {-1.0, 0.0, 0.7, 3.0}) {
    EXPECT_NEAR(t.to_physical(t.to_unit(omega)), omega, 1e-14);
  }
  EXPECT_DOUBLE_EQ(t.density_jacobian(), 0.5);
}

TEST(SpectralTransform, RejectsDegenerateBounds) {
  EXPECT_THROW(SpectralTransform({2.0, 2.0}), kpm::Error);
  EXPECT_THROW(SpectralTransform({3.0, 1.0}), kpm::Error);
  EXPECT_THROW(SpectralTransform({0.0, 1.0}, -0.5), kpm::Error);
}

TEST(Rescale, DenseEigenvaluesLandInUnitInterval) {
  const auto h = kpm::lattice::random_symmetric_dense(20, 9);
  MatrixOperator op(h);
  const auto t = make_spectral_transform(op);
  const auto ht = rescale(h, t);
  const auto eig = kpm::diag::symmetric_eigenvalues(ht);
  EXPECT_GT(eig.front(), -1.0);
  EXPECT_LT(eig.back(), 1.0);
}

TEST(Rescale, CrsMatchesDensePath) {
  const auto lat = HypercubicLattice::cubic(3, 3, 3);
  const auto hc = build_tight_binding_crs(lat);
  const auto hd = build_tight_binding_dense(lat);
  MatrixOperator op(hc);
  const auto t = make_spectral_transform(op);
  const auto htc = rescale(hc, t).to_dense();
  const auto htd = rescale(hd, t);
  for (std::size_t r = 0; r < htd.rows(); ++r)
    for (std::size_t c = 0; c < htd.cols(); ++c)
      EXPECT_NEAR(htc(r, c), htd(r, c), 1e-15) << "(" << r << "," << c << ")";
}

TEST(Rescale, NonzeroCenterAddsDiagonalToCrs) {
  // A matrix with empty diagonal and an asymmetric spectrum interval gains
  // stored diagonal entries -a+/a-.
  TripletBuilder b(2, 2);
  b.add_symmetric(0, 1, 1.0);
  const auto h = b.build();
  const SpectralTransform t({-1.0, 3.0}, 0.0);  // center 1, half-width 2
  const auto ht = rescale(h, t);
  EXPECT_DOUBLE_EQ(ht.at(0, 0), -0.5);
  EXPECT_DOUBLE_EQ(ht.at(1, 1), -0.5);
  EXPECT_DOUBLE_EQ(ht.at(0, 1), 0.5);
}

TEST(MatrixOperator, ReportsStorageAndCosts) {
  const auto lat = HypercubicLattice::chain(8);
  const auto hc = build_tight_binding_crs(lat);
  const auto hd = build_tight_binding_dense(lat);
  MatrixOperator oc(hc), od(hd);
  EXPECT_EQ(oc.storage(), Storage::Crs);
  EXPECT_EQ(od.storage(), Storage::Dense);
  EXPECT_EQ(od.stored_entries(), 64u);
  EXPECT_EQ(oc.stored_entries(), hc.nnz());
  EXPECT_EQ(od.spmv_flops(), 128u);
  EXPECT_GT(od.spmv_matrix_bytes(), oc.spmv_matrix_bytes());
}

TEST(MatrixOperator, MultiplyDispatches) {
  const auto lat = HypercubicLattice::chain(6);
  const auto hc = build_tight_binding_crs(lat);
  const auto hd = build_tight_binding_dense(lat);
  MatrixOperator oc(hc), od(hd);
  std::vector<double> x{1, 2, 3, 4, 5, 6}, yc(6), yd(6);
  oc.multiply(x, yc);
  od.multiply(x, yd);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(yc[i], yd[i]);
}

}  // namespace
