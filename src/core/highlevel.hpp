// One-call high-level API: Hamiltonian in, DoS out.
//
// The lower-level API exposes every pipeline stage (bounds, rescaling,
// engines, reconstruction) for control and testing; most callers just
// want the paper's end result.  `compute_dos_study` owns the intermediate
// rescaled matrix internally, picks the requested engine, and returns the
// moments, the curve, and the timing in one struct.
#pragma once

#include <cstddef>

#include "core/moments.hpp"
#include "core/moments_gpu.hpp"
#include "core/reconstruct.hpp"
#include "linalg/operator.hpp"
#include "linalg/spectral_transform.hpp"

namespace kpm::core {

/// Which execution engine a study runs on.
enum class EngineKind {
  CpuReference,    ///< serial CPU (paper's baseline)
  CpuPaired,       ///< two-moments-per-SpMV CPU
  CpuParallel,     ///< multithreaded CPU (instances across a thread pool)
  Gpu,             ///< simulated GPU (paper's contribution)
  GpuCluster,      ///< simulated multi-GPU cluster (instances across devices)
  ClusterSharded,  ///< domain-decomposed nodes with halo exchange (bit-identical)
};

/// Returns "cpu-reference", "cpu-paired", "cpu-parallel", "gpu",
/// "gpu-cluster" or "cluster-sharded".
const char* to_string(EngineKind k) noexcept;

/// Options of a moments-only computation (see `compute_moments`).
struct MomentComputeOptions {
  EngineKind engine = EngineKind::CpuReference;
  GpuEngineConfig gpu{};             ///< used by Gpu / GpuCluster
  std::size_t cluster_devices = 4;   ///< used by GpuCluster
  int cpu_threads = 4;               ///< used by CpuParallel / ClusterSharded (>= 1)
  std::size_t sample_instances = 0;  ///< 0 = execute all instances

  // ClusterSharded only: node count, ghost layers per exchange, and the
  // modeled fabric ("ib-qdr", "pcie" or "ideal").
  std::size_t cluster_nodes = 4;
  std::size_t cluster_halo = 1;
  std::string cluster_interconnect = "ib-qdr";
};

/// The reusable moments-only surface: runs `params` on the chosen engine
/// against an ALREADY-RESCALED operator H~.  This is the expensive half of
/// every study — callers that own their transform (the serving layer, a
/// cache in front of reconstruction) go through here; `compute_dos_study`
/// composes it with bounds/rescale/reconstruct for the one-call path.
[[nodiscard]] MomentResult compute_moments(const linalg::MatrixOperator& h_tilde,
                                           const MomentParams& params,
                                           const MomentComputeOptions& options = {});

/// Options of a one-call DoS study.
struct DosStudyOptions {
  MomentParams params{};
  ReconstructOptions reconstruct{};
  EngineKind engine = EngineKind::Gpu;
  GpuEngineConfig gpu{};              ///< used by Gpu / GpuCluster
  std::size_t cluster_devices = 4;    ///< used by GpuCluster
  int cpu_threads = 4;                ///< used by CpuParallel / ClusterSharded (>= 1)
  std::size_t sample_instances = 0;   ///< 0 = execute all instances

  // ClusterSharded only (see MomentComputeOptions).
  std::size_t cluster_nodes = 4;
  std::size_t cluster_halo = 1;
  std::string cluster_interconnect = "ib-qdr";
  double bounds_epsilon = 0.01;       ///< spectral padding
  bool use_lanczos_bounds = false;    ///< tighter bounds via Lanczos instead of Gershgorin
  bool use_sell_storage = false;      ///< run CPU engines on SELL-C-sigma H~ (CRS input only)
  std::size_t sell_chunk = 32;        ///< SELL C (chunk height)
  std::size_t sell_sigma = 256;       ///< SELL sigma (sort window)
};

/// Everything a DoS study produces.
struct DosStudy {
  linalg::SpectralTransform transform{{-1.0, 1.0}, 0.0};
  MomentResult moments;
  DosCurve curve;
};

/// Runs the full pipeline on the UNSCALED Hamiltonian `h`:
/// bounds -> H~ -> stochastic moments on the chosen engine -> Jackson (or
/// chosen kernel) reconstruction.  Works for dense and CRS operators.
[[nodiscard]] DosStudy compute_dos_study(const linalg::MatrixOperator& h,
                                         const DosStudyOptions& options = {});

}  // namespace kpm::core
