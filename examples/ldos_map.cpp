// STM-style LDOS map via the GPU LDOS engine.
//
// Computes the local DoS at EVERY site of a square lattice with a strong
// impurity (one launch on the simulated GPU: one block per site) and
// renders the spatial map at two energies as ASCII heat maps — the
// Friedel-oscillation picture an STM would see, at the impurity bound
// state energy and inside the band.
//
//   $ ldos_map [--edge=21] [--strength=-8] [--moments=256]
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/cli.hpp"
#include "core/kpm.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("ldos_map", "full-lattice LDOS maps from one simulated-GPU launch");
  const auto* edge = cli.add_int("edge", 21, "square lattice edge (odd keeps a center)");
  const auto* strength = cli.add_double("strength", -8.0, "impurity on-site energy");
  const auto* n = cli.add_int("moments", 256, "Chebyshev moments");
  cli.parse(argc, argv);

  const auto l = static_cast<std::size_t>(*edge);
  const auto lat = lattice::HypercubicLattice::square(l, l);
  const std::size_t center = lat.site_index(l / 2, l / 2, 0);
  const double impurity = *strength;
  const auto h = lattice::build_tight_binding_crs(
      lat, {}, [&](std::size_t site) { return site == center ? impurity : 0.0; });
  linalg::MatrixOperator op(h);
  const auto transform = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, transform);
  linalg::MatrixOperator op_t(ht);

  // All sites in one engine call.
  std::vector<std::size_t> sites(lat.sites());
  std::iota(sites.begin(), sites.end(), std::size_t{0});
  core::GpuLdosEngine engine;
  const auto map = engine.compute(op_t, sites, static_cast<std::size_t>(*n));
  std::printf("%s, impurity eps = %.1f at the center; %zu sites x %lld moments\n",
              lat.describe().c_str(), impurity, lat.sites(), static_cast<long long>(*n));
  std::printf("simulated GPU time for the whole map: %.3f s\n\n", engine.last_model_seconds());

  // Bound-state energy: scan the impurity site's LDOS below the band.
  const auto center_mu = map.site_moments(center);
  double e_bound = -4.5;
  {
    double best = 0.0;
    for (double e = transform.to_physical(-0.98); e < -4.05; e += 0.02) {
      std::vector<double> probe{e};
      const auto rho = core::reconstruct_dos_at(center_mu, transform, probe).density[0];
      if (rho > best) {
        best = rho;
        e_bound = e;
      }
    }
  }

  auto render = [&](double energy, const char* label) {
    std::vector<double> values(lat.sites());
    double max_v = 0.0;
    for (std::size_t k = 0; k < lat.sites(); ++k) {
      std::vector<double> probe{energy};
      values[k] = core::reconstruct_dos_at(map.site_moments(k), transform, probe).density[0];
      max_v = std::max(max_v, values[k]);
    }
    std::printf("LDOS at E = %.2f (%s), max = %.3f:\n", energy, label, max_v);
    const char* shades = " .:-=+*#%@";
    for (std::size_t y = 0; y < l; ++y) {
      std::string line;
      for (std::size_t x = 0; x < l; ++x) {
        const double v = values[lat.site_index(x, y, 0)] / max_v;
        line += shades[static_cast<std::size_t>(9.0 * std::min(1.0, v))];
      }
      std::printf("|%s|\n", line.c_str());
    }
    std::printf("\n");
  };

  render(e_bound, "impurity bound state: localized spot");
  render(0.8, "in-band: near-uniform with Friedel ripples");
  return 0;
}
