#include "linalg/sell_matrix.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace kpm::linalg {

SellMatrix SellMatrix::from_crs(const CrsMatrix& m, std::size_t chunk_size,
                                std::size_t sort_window) {
  KPM_REQUIRE(chunk_size >= 1, "SellMatrix: chunk_size must be >= 1");
  KPM_REQUIRE(sort_window >= 1, "SellMatrix: sort_window must be >= 1");
  const std::size_t rows = m.rows();
  const std::size_t chunks = (rows + chunk_size - 1) / chunk_size;
  const std::size_t slots = chunks * chunk_size;
  KPM_REQUIRE(slots < static_cast<std::size_t>(std::numeric_limits<Index>::max()),
              "SellMatrix: row count exceeds the 32-bit index range");

  SellMatrix s;
  s.rows_ = rows;
  s.cols_ = m.cols();
  s.nnz_ = m.nnz();
  s.chunk_size_ = chunk_size;
  s.sort_window_ = sort_window;
  const auto row_ptr = m.row_ptr();
  const auto src_col = m.col_idx();
  const auto src_val = m.values();

  // Sort rows by descending length inside each sigma window (stable, so
  // equal-length rows keep their logical order and the build is
  // deterministic).  perm_[slot] = logical row.
  s.perm_.assign(slots, Index{-1});
  std::vector<Index> order(rows);
  std::iota(order.begin(), order.end(), Index{0});
  for (std::size_t w = 0; w < rows; w += sort_window) {
    const std::size_t end = std::min(rows, w + sort_window);
    std::stable_sort(order.begin() + static_cast<std::ptrdiff_t>(w),
                     order.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](Index a, Index b) {
                       return row_ptr[static_cast<std::size_t>(a) + 1] -
                                  row_ptr[static_cast<std::size_t>(a)] >
                              row_ptr[static_cast<std::size_t>(b) + 1] -
                                  row_ptr[static_cast<std::size_t>(b)];
                     });
  }
  std::copy(order.begin(), order.end(), s.perm_.begin());

  s.slot_of_.assign(rows, Index{0});
  s.row_len_.assign(slots, Index{0});
  for (std::size_t slot = 0; slot < rows; ++slot) {
    const auto r = static_cast<std::size_t>(s.perm_[slot]);
    s.slot_of_[r] = static_cast<Index>(slot);
    s.row_len_[slot] = row_ptr[r + 1] - row_ptr[r];
  }

  // Chunk widths and offsets; chunk c stores width(c) * C entry slots.
  s.chunk_ptr_.assign(chunks + 1, Index{0});
  std::size_t total = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t width = 0;
    for (std::size_t l = 0; l < chunk_size; ++l)
      width = std::max(width, static_cast<std::size_t>(s.row_len_[c * chunk_size + l]));
    total += width * chunk_size;
    KPM_REQUIRE(total < static_cast<std::size_t>(std::numeric_limits<Index>::max()),
                "SellMatrix: padded entry count exceeds the 32-bit index range");
    s.chunk_ptr_[c + 1] = static_cast<Index>(total);
  }

  // Scatter each row's CRS entries into its lane, preserving the per-row
  // (sorted-column) entry order.  Padding slots keep value 0.0 / column 0.
  s.col_idx_.assign(total, Index{0});
  s.values_.assign(total, 0.0);
  for (std::size_t slot = 0; slot < rows; ++slot) {
    const std::size_t chunk = slot / chunk_size;
    const std::size_t lane = slot % chunk_size;
    const auto base = static_cast<std::size_t>(s.chunk_ptr_[chunk]);
    const auto r = static_cast<std::size_t>(s.perm_[slot]);
    const auto start = static_cast<std::size_t>(row_ptr[r]);
    const auto len = static_cast<std::size_t>(s.row_len_[slot]);
    for (std::size_t j = 0; j < len; ++j) {
      s.col_idx_[base + j * chunk_size + lane] = src_col[start + j];
      s.values_[base + j * chunk_size + lane] = src_val[start + j];
    }
  }
  return s;
}

double SellMatrix::at(std::size_t r, std::size_t c) const {
  KPM_REQUIRE(r < rows_ && c < cols_, "SellMatrix::at: index out of range");
  const auto slot = static_cast<std::size_t>(slot_of_[r]);
  const std::size_t chunk = slot / chunk_size_;
  const std::size_t lane = slot % chunk_size_;
  const auto base = static_cast<std::size_t>(chunk_ptr_[chunk]);
  const auto len = static_cast<std::size_t>(row_len_[slot]);
  for (std::size_t j = 0; j < len; ++j) {
    const std::size_t k = base + j * chunk_size_ + lane;
    if (static_cast<std::size_t>(col_idx_[k]) == c) return values_[k];
  }
  return 0.0;
}

std::size_t SellMatrix::max_row_nnz() const {
  std::size_t max_len = 0;
  for (const Index len : row_len_) max_len = std::max(max_len, static_cast<std::size_t>(len));
  return max_len;
}

void SellMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  KPM_REQUIRE(x.size() == cols_ && y.size() == rows_, "SellMatrix::multiply: size mismatch");
  KPM_REQUIRE(x.data() != y.data(), "SellMatrix::multiply: y must not alias x");
  const std::size_t n_chunks = chunks();
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const auto base = static_cast<std::size_t>(chunk_ptr_[c]);
    for (std::size_t l = 0; l < chunk_size_; ++l) {
      const std::size_t slot = c * chunk_size_ + l;
      const Index row = perm_[slot];
      if (row < 0) continue;  // padding slot in the final chunk
      const auto len = static_cast<std::size_t>(row_len_[slot]);
      double acc = 0.0;  // per-row entry order matches CRS -> bit-identical
      for (std::size_t j = 0; j < len; ++j) {
        const std::size_t k = base + j * chunk_size_ + l;
        acc += values_[k] * x[static_cast<std::size_t>(col_idx_[k])];
      }
      y[static_cast<std::size_t>(row)] = acc;
    }
  }
}

CrsMatrix SellMatrix::to_crs() const {
  std::vector<Index> out_ptr(rows_ + 1, Index{0});
  for (std::size_t r = 0; r < rows_; ++r)
    out_ptr[r + 1] =
        out_ptr[r] + row_len_[static_cast<std::size_t>(slot_of_[r])];
  std::vector<Index> out_col(nnz_);
  std::vector<double> out_val(nnz_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto slot = static_cast<std::size_t>(slot_of_[r]);
    const std::size_t chunk = slot / chunk_size_;
    const std::size_t lane = slot % chunk_size_;
    const auto base = static_cast<std::size_t>(chunk_ptr_[chunk]);
    const auto len = static_cast<std::size_t>(row_len_[slot]);
    auto dst = static_cast<std::size_t>(out_ptr[r]);
    for (std::size_t j = 0; j < len; ++j, ++dst) {
      out_col[dst] = col_idx_[base + j * chunk_size_ + lane];
      out_val[dst] = values_[base + j * chunk_size_ + lane];
    }
  }
  return CrsMatrix(rows_, cols_, std::move(out_ptr), std::move(out_col), std::move(out_val));
}

}  // namespace kpm::linalg
