// Serving-layer tests: the scheduler's determinism contract (bit-identical
// replay at any worker count), the moment cache's bit-exactness and LRU
// accounting, batching/coalescing equivalence, admission control, and the
// kpm.serve.workload/1 replay parser.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "obs/report.hpp"
#include "serve/cache.hpp"
#include "serve/replay.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"

namespace {

using namespace kpm;

linalg::CrsMatrix square_hamiltonian(std::size_t edge = 6) {
  const auto lat = lattice::HypercubicLattice::square(edge, edge);
  return lattice::build_tight_binding_crs(lat, {}, lattice::anderson_disorder(1.0, 3));
}

serve::DosRequest dos_request(std::uint64_t id, double arrival, std::uint64_t seed = 11,
                              std::size_t n = 64, std::size_t points = 32) {
  serve::DosRequest r;
  r.id = id;
  r.model = "m";
  r.arrival_seconds = arrival;
  r.moments.num_moments = n;
  r.moments.random_vectors = 2;
  r.moments.realizations = 2;
  r.moments.seed = seed;
  r.reconstruct.points = points;
  return r;
}

/// The mixed workload the determinism tests replay: one head-of-line run,
/// a burst that exercises coalescing + every shed path, then spaced repeats
/// that must hit the cache.
std::vector<serve::Request> mixed_workload() {
  std::vector<serve::Request> reqs;
  reqs.push_back(dos_request(1, 0.0, 5, 128));
  auto expire = dos_request(2, 1e-6, 5, 32);
  expire.deadline_seconds = 1e-5;
  reqs.push_back(expire);
  auto c1 = dos_request(3, 1e-6);
  auto c2 = dos_request(4, 1e-6);
  c2.reconstruct.points = 48;  // same key, different grid -> coalesces
  reqs.push_back(c1);
  reqs.push_back(c2);
  serve::LdosRequest ldos;
  ldos.id = 5;
  ldos.model = "m";
  ldos.arrival_seconds = 1e-6;
  ldos.moments.num_moments = 64;
  ldos.site = 7;
  reqs.push_back(ldos);
  reqs.push_back(dos_request(6, 1e-6, 13, 64));   // over max_queue -> degrades
  reqs.push_back(dos_request(7, 1e-6, 17, 64));   // degrades
  reqs.push_back(dos_request(8, 1e-6, 19, 16));   // hard bound -> rejected
  reqs.push_back(dos_request(9, 100.0));          // repeat of id 3 -> cache hit
  return reqs;
}

serve::ServeConfig small_config(std::size_t workers = 1) {
  serve::ServeConfig config;
  config.workers = workers;
  config.max_queue = 3;
  config.max_batch = 3;
  config.degrade_floor = 16;
  return config;
}

std::uint64_t curve_checksum(const serve::Response& r) {
  std::uint64_t h = serve::checksum_doubles(r.curve.energy);
  h = serve::checksum_doubles(r.curve.density, h);
  h = serve::checksum_doubles(r.sigma.energy, h);
  return serve::checksum_doubles(r.sigma.sigma, h);
}

TEST(MomentKey, LdosSharesEntriesAcrossStochasticParameters) {
  serve::Server server(small_config());
  server.register_model("m", square_hamiltonian());

  serve::LdosRequest a;
  a.id = 1;
  a.model = "m";
  a.moments.num_moments = 32;
  a.moments.seed = 1;
  a.moments.random_vectors = 2;
  a.site = 4;
  serve::LdosRequest b = a;
  b.id = 2;
  b.arrival_seconds = 50.0;  // separate batch, after the queue drains
  b.moments.seed = 999;      // stochastic fields differ...
  b.moments.random_vectors = 9;

  const auto responses = server.run({a, b});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_TRUE(responses[1].cache_hit) << "ldos must ignore R/S/seed in the cache key";
}

TEST(MomentCache, LruEvictsInRecencyOrderAndCounts) {
  // Budget fits exactly two 8-moment entries.
  serve::MomentCache cache(2 * 8 * sizeof(double));
  serve::MomentKey k1, k2, k3;
  k1.content = 1;
  k2.content = 2;
  k3.content = 3;
  (void)cache.insert(k1, std::vector<double>(8, 1.0));
  (void)cache.insert(k2, std::vector<double>(8, 2.0));
  EXPECT_EQ(cache.entries(), 2u);

  // Touch k1 so k2 becomes least recently used, then overflow.
  ASSERT_NE(cache.find(k1), nullptr);
  (void)cache.insert(k3, std::vector<double>(8, 3.0));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.find(k2), nullptr) << "k2 was LRU and must be the eviction victim";
  EXPECT_NE(cache.find(k1), nullptr);
  EXPECT_NE(cache.find(k3), nullptr);

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.bytes_used(), 2 * 8 * sizeof(double));
}

TEST(MomentCache, OversizedEntryIsServedButNotStored) {
  serve::MomentCache cache(4 * sizeof(double));
  serve::MomentKey small, big;
  small.content = 1;
  big.content = 2;
  (void)cache.insert(small, std::vector<double>(2, 1.0));
  const std::vector<double>& served = cache.insert(big, std::vector<double>(100, 2.0));
  EXPECT_EQ(served.size(), 100u);
  EXPECT_EQ(cache.entries(), 1u) << "oversized entries must not displace residents";
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(MomentCache, OversizedPassthroughDoesNotPerturbRecency) {
  // Regression guard: handing out an unstored oversized entry must leave the
  // LRU order of residents exactly as it was — the next eviction victim is
  // still the entry that was least recently *found*, not whichever insert
  // happened to pass through.
  serve::MomentCache cache(2 * 8 * sizeof(double));
  serve::MomentKey k1, k2, k3, big;
  k1.content = 1;
  k2.content = 2;
  k3.content = 3;
  big.content = 99;
  (void)cache.insert(k1, std::vector<double>(8, 1.0));
  (void)cache.insert(k2, std::vector<double>(8, 2.0));
  ASSERT_NE(cache.find(k1), nullptr);  // k2 is now LRU

  const std::vector<double>& served = cache.insert(big, std::vector<double>(100, 9.0));
  EXPECT_EQ(served.size(), 100u);
  EXPECT_EQ(cache.entries(), 2u);

  (void)cache.insert(k3, std::vector<double>(8, 3.0));  // overflow: evicts LRU
  EXPECT_EQ(cache.find(k2), nullptr) << "k2 was LRU before the oversized passthrough "
                                        "and must still be the victim after it";
  EXPECT_NE(cache.find(k1), nullptr);
  EXPECT_NE(cache.find(k3), nullptr);
}

TEST(MomentCache, ZeroBudgetDisablesCaching) {
  serve::MomentCache cache(0);
  serve::MomentKey k;
  const std::vector<double>& served = cache.insert(k, std::vector<double>(8, 1.0));
  EXPECT_EQ(served.size(), 8u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.find(k), nullptr);
}

TEST(Serve, ReplayIsBitIdenticalAtAnyWorkerCount) {
  const auto requests = mixed_workload();
  const auto h = square_hamiltonian();

  std::vector<serve::Response> reference;
  std::string reference_fingerprint;
  for (const std::size_t workers : {1u, 2u, 4u, 7u}) {
    obs::Report report;
    std::vector<serve::Response> responses;
    {
      obs::Collect collect(report);
      serve::Server server(small_config(workers));
      server.register_model("m", h);
      responses = server.run(requests);
      report.sections.push_back({"serve", server.section_json()});
    }
    const std::string fingerprint = obs::deterministic_fingerprint(report);
    if (reference.empty()) {
      reference = responses;
      reference_fingerprint = fingerprint;
      // The workload must actually exercise every path it claims to.
      std::size_t hits = 0, shed = 0;
      for (const auto& r : responses) {
        hits += r.cache_hit ? 1 : 0;
        shed += r.status != serve::ResponseStatus::Ok ? 1 : 0;
      }
      EXPECT_GT(hits, 0u);
      EXPECT_GT(shed, 0u);
      continue;
    }
    EXPECT_EQ(fingerprint, reference_fingerprint) << "workers=" << workers;
    ASSERT_EQ(responses.size(), reference.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
      const auto& r = responses[i];
      const auto& e = reference[i];
      EXPECT_EQ(r.id, e.id);
      EXPECT_EQ(r.status, e.status) << "id " << r.id;
      EXPECT_EQ(r.cache_hit, e.cache_hit) << "id " << r.id;
      EXPECT_EQ(r.coalesced, e.coalesced) << "id " << r.id;
      EXPECT_EQ(r.degraded, e.degraded) << "id " << r.id;
      EXPECT_EQ(r.batch, e.batch) << "id " << r.id;
      EXPECT_EQ(r.num_moments, e.num_moments) << "id " << r.id;
      EXPECT_EQ(r.start_seconds, e.start_seconds) << "id " << r.id;
      EXPECT_EQ(r.finish_seconds, e.finish_seconds) << "id " << r.id;
      EXPECT_EQ(r.retry_after_seconds, e.retry_after_seconds) << "id " << r.id;
      EXPECT_EQ(curve_checksum(r), curve_checksum(e)) << "id " << r.id;
    }
  }
}

TEST(Serve, CacheHitServesColdComputeBytesExactly) {
  serve::Server server(small_config());
  server.register_model("m", square_hamiltonian());

  // Same key, arrivals far apart so the second is its own batch.
  const auto responses = server.run({dos_request(1, 0.0), dos_request(2, 100.0)});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_TRUE(responses[1].cache_hit);
  EXPECT_EQ(serve::checksum_doubles(responses[0].curve.density),
            serve::checksum_doubles(responses[1].curve.density))
      << "cached moments must reconstruct to the cold-compute bytes";
  EXPECT_EQ(server.stats().cache.hits, 1u);
  EXPECT_EQ(server.stats().cache.misses, 1u);
}

TEST(Serve, CoalescedBatchMatchesOneAtATimeBitwise) {
  const auto h = square_hamiltonian();

  // Burst: ids 2..4 share id 1's key and arrive while it is being served.
  serve::Server burst_server(small_config());
  burst_server.register_model("m", h);
  std::vector<serve::Request> burst{dos_request(1, 0.0), dos_request(2, 1e-7),
                                    dos_request(3, 1e-7), dos_request(4, 1e-7)};
  std::get<serve::DosRequest>(burst[1]).reconstruct.points = 48;
  std::get<serve::DosRequest>(burst[2]).reconstruct.points = 16;
  const auto coalesced = burst_server.run(burst);
  EXPECT_GT(burst_server.stats().coalesced, 0u);

  // Same requests spaced out: every one is its own batch (and after the
  // first, a cache hit — the moments are identical either way).
  serve::Server spaced_server(small_config());
  spaced_server.register_model("m", h);
  std::vector<serve::Request> spaced = burst;
  for (std::size_t i = 0; i < spaced.size(); ++i)
    std::get<serve::DosRequest>(spaced[i]).arrival_seconds = 100.0 * static_cast<double>(i);
  const auto sequential = spaced_server.run(spaced);
  EXPECT_EQ(spaced_server.stats().coalesced, 0u);

  ASSERT_EQ(coalesced.size(), sequential.size());
  for (std::size_t i = 0; i < coalesced.size(); ++i) {
    EXPECT_EQ(coalesced[i].status, serve::ResponseStatus::Ok);
    EXPECT_EQ(curve_checksum(coalesced[i]), curve_checksum(sequential[i]))
        << "id " << coalesced[i].id;
  }
}

TEST(Serve, ShedPoliciesAreDeterministicAndFullyAccounted) {
  const auto h = square_hamiltonian();
  // 10 requests in one instant against max_queue=3: the head is served,
  // 3 queue normally, the rest must shed per policy.
  std::vector<serve::Request> flood;
  for (std::uint64_t id = 1; id <= 10; ++id)
    flood.push_back(dos_request(id, id == 1 ? 0.0 : 1e-6, /*seed=*/100 + id, 64));

  for (const serve::ShedPolicy policy :
       {serve::ShedPolicy::Reject, serve::ShedPolicy::Degrade}) {
    serve::ServeConfig config = small_config();
    config.policy = policy;
    auto run_once = [&] {
      serve::Server server(config);
      server.register_model("m", h);
      return std::make_pair(server.run(flood), server.stats());
    };
    const auto [first, stats] = run_once();
    const auto [second, stats2] = run_once();

    ASSERT_EQ(first.size(), flood.size()) << "every request gets exactly one response";
    std::size_t ok = 0, rejected = 0, degraded = 0;
    for (const auto& r : first) {
      if (r.status == serve::ResponseStatus::Rejected) {
        rejected += 1;
        EXPECT_GT(r.retry_after_seconds, 0.0) << "id " << r.id;
        EXPECT_EQ(r.batch, serve::kNoBatch);
      } else {
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok);
        ok += 1;
        if (r.degraded) {
          degraded += 1;
          EXPECT_EQ(r.num_moments, 32u) << "degraded requests serve N/2";
        }
      }
    }
    EXPECT_EQ(ok + rejected, flood.size());
    EXPECT_EQ(stats.rejected, rejected);
    EXPECT_EQ(stats.degraded, degraded);
    if (policy == serve::ShedPolicy::Reject) {
      EXPECT_EQ(degraded, 0u);
      EXPECT_GT(rejected, 0u);
    } else {
      EXPECT_GT(degraded, 0u);
      EXPECT_GT(rejected, 0u) << "the 2x hard bound rejects even under Degrade";
    }

    // Same flood, same decisions, bit for bit.
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].status, second[i].status);
      EXPECT_EQ(first[i].retry_after_seconds, second[i].retry_after_seconds);
      EXPECT_EQ(curve_checksum(first[i]), curve_checksum(second[i]));
    }
  }
}

TEST(Serve, QueuedRequestsExpireAtTheirDeadline) {
  serve::Server server(small_config());
  server.register_model("m", square_hamiltonian());
  auto doomed = dos_request(2, 1e-6, 99, 32);
  doomed.deadline_seconds = 1e-5;  // passes while id 1 is being served
  const auto responses = server.run({dos_request(1, 0.0, 5, 128), doomed});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, serve::ResponseStatus::Ok);
  EXPECT_EQ(responses[1].status, serve::ResponseStatus::Expired);
  EXPECT_EQ(server.stats().expired, 1u);
}

TEST(Serve, HigherPriorityIsServedFirst) {
  serve::Server server(small_config());
  server.register_model("m", square_hamiltonian());
  auto low = dos_request(2, 1e-6, 7, 64);
  auto high = dos_request(3, 1e-6, 8, 64);
  high.priority = 5;
  const auto responses = server.run({dos_request(1, 0.0, 5, 128), low, high});
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_LT(responses[2].batch, responses[1].batch)
      << "priority 5 must be served before priority 0";
}

TEST(Serve, SectionJsonIsWorkerFreeAndCarriesTheSchema) {
  serve::Server server(small_config(4));
  server.register_model("m", square_hamiltonian());
  (void)server.run({dos_request(1, 0.0)});
  const std::string section = server.section_json();
  EXPECT_NE(section.find("kpm.serve/1"), std::string::npos);
  EXPECT_NE(section.find("\"checksum\""), std::string::npos);
  EXPECT_EQ(section.find("workers"), std::string::npos)
      << "the worker count must never enter the (fingerprinted) section";
}

TEST(Serve, ValidatesRequestsUpFront) {
  serve::Server server(small_config());
  server.register_model("m", square_hamiltonian(4));
  EXPECT_THROW((void)server.run({dos_request(1, 0.0), dos_request(1, 1.0)}), kpm::Error)
      << "duplicate ids";
  auto wrong_model = dos_request(1, 0.0);
  wrong_model.model = "nope";
  EXPECT_THROW((void)server.run({wrong_model}), kpm::Error);
  serve::LdosRequest bad_site;
  bad_site.id = 1;
  bad_site.model = "m";
  bad_site.site = 1000;
  EXPECT_THROW((void)server.run({bad_site}), kpm::Error);
  serve::SigmaRequest no_current;
  no_current.id = 1;
  no_current.model = "m";
  EXPECT_THROW((void)server.run({no_current}), kpm::Error) << "axis 0 not registered";
}

TEST(Replay, ParsesWorkloadAndAppliesDefaults) {
  const std::string doc = R"({
    "schema": "kpm.serve.workload/1",
    "label": "t",
    "config": {"workers": 3, "max_queue": 5, "policy": "reject"},
    "models": [{"name": "m0", "lattice": "chain", "edge": 16, "currents": [0]}],
    "requests": [
      {"kind": "dos", "id": 1, "model": "m0", "arrival": 0.5, "moments": 32,
       "R": 2, "S": 1, "seed": 9, "kernel": "lorentz", "points": 17},
      {"kind": "ldos", "id": 2, "model": "m0", "site": 3, "moments": 24, "points": 9},
      {"kind": "sigma", "id": 3, "model": "m0", "axis": 0, "priority": 2,
       "moments": 16, "R": 1, "S": 1, "points": 9}
    ]
  })";
  const serve::ReplayWorkload w = serve::parse_workload(doc);
  EXPECT_EQ(w.label, "t");
  EXPECT_EQ(w.config.workers, 3u);
  EXPECT_EQ(w.config.max_queue, 5u);
  EXPECT_EQ(w.config.policy, serve::ShedPolicy::Reject);
  ASSERT_EQ(w.models.size(), 1u);
  EXPECT_EQ(w.models[0].lattice, "chain");
  ASSERT_EQ(w.models[0].currents.size(), 1u);
  ASSERT_EQ(w.requests.size(), 3u);
  const auto& dos = std::get<serve::DosRequest>(w.requests[0]);
  EXPECT_EQ(dos.arrival_seconds, 0.5);
  EXPECT_EQ(dos.moments.num_moments, 32u);
  EXPECT_EQ(dos.moments.seed, 9u);
  EXPECT_EQ(dos.reconstruct.kernel, core::DampingKernel::Lorentz);
  EXPECT_EQ(dos.reconstruct.points, 17u);
  EXPECT_EQ(std::get<serve::LdosRequest>(w.requests[1]).site, 3u);
  EXPECT_EQ(std::get<serve::SigmaRequest>(w.requests[2]).priority, 2);

  // The parsed workload must actually run.
  serve::Server server(w.config);
  serve::register_models(server, w);
  const auto responses = server.run(w.requests);
  EXPECT_EQ(responses.size(), 3u);
}

TEST(Replay, RejectsBadDocuments) {
  EXPECT_THROW((void)serve::parse_workload("[]"), kpm::Error);
  EXPECT_THROW((void)serve::parse_workload(R"({"schema": "nope"})"), kpm::Error);
  EXPECT_THROW((void)serve::parse_workload(
                   R"({"schema": "kpm.serve.workload/1", "models": []})"),
               kpm::Error)
      << "missing requests";
  EXPECT_THROW(
      (void)serve::parse_workload(
          R"({"schema": "kpm.serve.workload/1", "models": [],
              "requests": [{"kind": "warp", "id": 1, "model": "m"}]})"),
      kpm::Error);
  EXPECT_THROW((void)serve::load_workload("/nonexistent/workload.json"), kpm::Error);
}

TEST(Replay, RejectsMalformedDocuments) {
  // No schema stamp at all (not just a wrong one).
  EXPECT_THROW((void)serve::parse_workload(R"({"models": [], "requests": []})"),
               kpm::Error);
  // The simulated clock starts at 0: negative arrivals are a data error.
  EXPECT_THROW(
      (void)serve::parse_workload(
          R"({"schema": "kpm.serve.workload/1",
              "models": [{"name": "m", "lattice": "chain", "edge": 8}],
              "requests": [{"kind": "dos", "id": 1, "model": "m", "arrival": -0.25}]})"),
      kpm::Error);
  // Seeds are unsigned; a negative one would silently wrap if coerced.
  EXPECT_THROW(
      (void)serve::parse_workload(
          R"({"schema": "kpm.serve.workload/1",
              "models": [{"name": "m", "lattice": "chain", "edge": 8}],
              "requests": [{"kind": "dos", "id": 1, "model": "m", "seed": -7}]})"),
      kpm::Error);
  // Unknown request kind in an otherwise valid document.
  EXPECT_THROW(
      (void)serve::parse_workload(
          R"({"schema": "kpm.serve.workload/1",
              "models": [{"name": "m", "lattice": "chain", "edge": 8}],
              "requests": [{"kind": "tdos", "id": 1, "model": "m"}]})"),
      kpm::Error);
}

TEST(Replay, EngineNamesRoundTrip) {
  EXPECT_EQ(serve::engine_kind_from_string("cpu"), core::EngineKind::CpuReference);
  EXPECT_EQ(serve::engine_kind_from_string("cpu-reference"), core::EngineKind::CpuReference);
  EXPECT_EQ(serve::engine_kind_from_string("cpu-parallel"), core::EngineKind::CpuParallel);
  EXPECT_EQ(serve::engine_kind_from_string("gpu"), core::EngineKind::Gpu);
  EXPECT_THROW((void)serve::engine_kind_from_string("abacus"), kpm::Error);
  EXPECT_EQ(serve::engine_class_of(core::EngineKind::CpuReference),
            serve::engine_class_of(core::EngineKind::CpuParallel))
      << "bit-identical engines share one cache class";
  EXPECT_NE(serve::engine_class_of(core::EngineKind::Gpu),
            serve::engine_class_of(core::EngineKind::CpuReference));
}

}  // namespace
