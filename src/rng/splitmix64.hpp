// SplitMix64 — tiny, fast 64-bit generator used for seeding the other
// generators (as recommended by the xoshiro authors) and for cheap
// non-critical randomness.
//
// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
// generators", OOPSLA 2014.
#pragma once

#include <cstdint>

namespace kpm::rng {

/// SplitMix64 generator.  State is a single 64-bit counter, so any seed is
/// valid (including zero) and jumping ahead is trivial.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed = 0) noexcept : state_(seed) {}

  /// Returns the next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t state_;
};

/// Stateless single-shot mix, handy for hashing (seed, index) pairs into
/// well-distributed 64-bit values.
constexpr std::uint64_t splitmix64_hash(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace kpm::rng
