#include "core/estimator_stats.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "core/moments_cpu.hpp"
#include "linalg/fused_kernels.hpp"
#include "linalg/vector_ops.hpp"

namespace kpm::core {

MomentStatistics estimate_moment_statistics(const linalg::MatrixOperator& h_tilde,
                                            const MomentParams& params, std::size_t instances) {
  params.validate();
  KPM_REQUIRE(instances >= 2, "estimate_moment_statistics: need at least two instances");
  const std::size_t d = h_tilde.dim();
  const std::size_t n = params.num_moments;

  // Per-instance normalized moments: mu_n^(k) = <r0|r_n> / D.
  std::vector<double> sum(n, 0.0), sum_sq(n, 0.0);
  std::vector<double> r0(d), r_prev2(d), r_prev(d), r_next(d), mu_inst(n);

  for (std::size_t inst = 0; inst < instances; ++inst) {
    fill_random_vector(params, inst, r0);
    mu_inst[0] = linalg::dot(r0, r0);
    h_tilde.multiply(r0, r_prev);
    if (n > 1) mu_inst[1] = linalg::dot(r0, r_prev);
    linalg::copy(r0, r_prev2);
    for (std::size_t k = 2; k < n; ++k) {
      mu_inst[k] = linalg::spmv_combine_dot(h_tilde, r_prev, r_prev2, r0, r_next);
      std::swap(r_prev2, r_prev);
      std::swap(r_prev, r_next);
    }
    for (std::size_t k = 0; k < n; ++k) {
      const double v = mu_inst[k] / static_cast<double>(d);
      sum[k] += v;
      sum_sq[k] += v * v;
    }
  }

  MomentStatistics stats;
  stats.instances = instances;
  stats.mean.resize(n);
  stats.standard_error.resize(n);
  const auto m = static_cast<double>(instances);
  for (std::size_t k = 0; k < n; ++k) {
    stats.mean[k] = sum[k] / m;
    const double var = std::max(0.0, sum_sq[k] / m - stats.mean[k] * stats.mean[k]);
    // Unbiased sample variance, then standard error of the mean.
    stats.standard_error[k] = std::sqrt(var * m / (m - 1.0)) / std::sqrt(m);
  }
  return stats;
}

}  // namespace kpm::core
