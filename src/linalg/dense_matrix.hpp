// Dense row-major matrix.
//
// The paper's Figs. 7 and 8 deliberately run the KPM over a *dense* H~
// ("the simple case when the CRS format is not applied"), making the
// recursion cost O(S R N D^2).  This type is that storage: a fixed-size
// row-major array with symmetric-matrix helpers.
#pragma once

#include <cstddef>
#include <span>

#include "common/aligned_buffer.hpp"

namespace kpm::linalg {

/// Fixed-dimension dense row-major matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// Creates a zero-initialized rows x cols matrix.
  DenseMatrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  /// Contiguous view of row r.
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return data_.span().subspan(r * cols_, cols_);
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return data_.span().subspan(r * cols_, cols_);
  }

  [[nodiscard]] std::span<double> data() noexcept { return data_.span(); }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_.span(); }

  /// Sets all entries to zero.
  void set_zero() { data_.fill(0.0); }

  /// Returns max |A - A^T| entry; 0 for exactly symmetric matrices.
  [[nodiscard]] double symmetry_defect() const;

  /// Enforces exact symmetry by averaging A and A^T in place.
  void symmetrize();

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// y = A * x  (y must not alias x).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Returns the D x D identity.
  static DenseMatrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedBuffer<double> data_;
};

}  // namespace kpm::linalg
