// Spectrum slicing with the KPM delta filter.
//
// Prepares energy-filtered random states |psi_E> = delta_KPM(E - H)|r>
// across the band of a disordered lattice and reports how sharply each
// lands (<H> and the energy spread), plus the filtered norm as a local-
// DoS proxy — the KPM trick for reaching interior eigenstates without
// shift-invert linear algebra.
//
//   $ spectrum_slicing [--edge=10] [--moments=512] [--disorder=1.0]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/kpm.hpp"

int main(int argc, char** argv) {
  using namespace kpm;

  CliParser cli("spectrum_slicing", "energy-filtered random states via the KPM delta filter");
  const auto* edge = cli.add_int("edge", 10, "cubic lattice edge");
  const auto* n = cli.add_int("moments", 512, "filter moments (width ~ pi * a- / N)");
  const auto* w = cli.add_double("disorder", 1.0, "Anderson disorder width");
  cli.parse(argc, argv);

  const auto lat = lattice::HypercubicLattice::cubic(static_cast<std::size_t>(*edge),
                                                     static_cast<std::size_t>(*edge),
                                                     static_cast<std::size_t>(*edge));
  const auto onsite =
      *w > 0.0 ? lattice::anderson_disorder(*w, 0x511CE) : lattice::OnsiteFunction{};
  const auto h = lattice::build_tight_binding_crs(lat, {}, onsite);
  linalg::MatrixOperator op(h);
  const auto transform = linalg::make_spectral_transform(op);
  const auto ht = linalg::rescale(h, transform);
  linalg::MatrixOperator op_t(ht);

  const double width = std::numbers::pi * transform.half_width() / static_cast<double>(*n);
  std::printf("%s (D = %zu), disorder W = %.1f\n", lat.describe().c_str(), op.dim(), *w);
  std::printf("filter: N = %lld moments -> nominal width ~ %.4f t\n\n",
              static_cast<long long>(*n), width);

  core::FilterOptions opts;
  opts.num_moments = static_cast<std::size_t>(*n);

  Table table({"target E", "<H>", "spread", "|psi| (DoS proxy)"});
  for (double e0 = -5.0; e0 <= 5.01; e0 += 1.25) {
    const auto report = core::filter_random_state(op, op_t, transform, e0, 99, 0, opts);
    table.add_row({strprintf("%+.2f", e0), strprintf("%+.4f", report.energy_mean),
                   strprintf("%.4f", report.energy_spread), strprintf("%.4f", report.norm)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("expected: <H> tracks the target across the whole band; the spread\n"
              "stays near the filter width; |psi| follows the DoS profile.\n");
  return 0;
}
