// Damping (resummation) kernels g_n — the "K" in KPM.
//
// Truncating the Chebyshev series at N moments produces Gibbs oscillations;
// multiplying the moments by kernel coefficients g_n restores uniform
// convergence (paper Eq. 6-7).  The Jackson kernel is the standard choice
// for densities of states: it turns the delta function into a near-Gaussian
// of width ~ pi/N (Weisse, Wellein, Alvermann, Fehske, Rev. Mod. Phys. 78,
// 275 (2006), the paper's Ref. [10]).
#pragma once

#include <string>
#include <vector>

namespace kpm::core {

/// Available damping kernels.
enum class DampingKernel {
  Jackson,    ///< optimal for DoS; positive-definite, ~Gaussian broadening
  Lorentz,    ///< for Green's functions; ~Lorentzian broadening, lambda parameter
  Fejer,      ///< g_n = 1 - n/N; simple, positive
  Dirichlet,  ///< g_n = 1; the raw truncated series (exhibits Gibbs ringing)
};

/// Returns "jackson", "lorentz", "fejer" or "dirichlet".
const char* to_string(DampingKernel k) noexcept;

/// Parses a name produced by to_string(); throws kpm::Error otherwise.
DampingKernel damping_kernel_from_string(const std::string& name);

/// Computes the N coefficients g_0..g_{N-1} of `kernel`.
/// `lambda` is used by the Lorentz kernel only (typical 3..5).
[[nodiscard]] std::vector<double> damping_coefficients(DampingKernel kernel, std::size_t n,
                                                       double lambda = 4.0);

}  // namespace kpm::core
