// Node-local sub-matrices + halo maps of a domain-decomposed operator.
//
// `ShardedMatrix` splits a CRS (or SELL-backed) operator by a
// `Decomposition` into one rectangular node-local matrix per shard: the
// shard's owned rows with columns remapped into a working vector laid out
// as [left ghosts | owned rows | right ghosts].  Ghost slots hold the
// remote vector entries the shard's rows reference (its 1-hop sparsity
// neighbourhood), sorted by global index; putting the below-range ghosts
// before the owned block keeps the remap MONOTONE in the global column, so
// every remapped row still has sorted columns (a CrsMatrix invariant) and
// keeps its entry order.  A shard row's accumulated value is therefore
// bit-identical to the same row of the global multiply — the foundation of
// the cluster engine's bitwise-identity contract (docs/cluster.md).
//
// Lane-carry dot folds: the library's canonical dot (linalg::dot) feeds
// element i into lane i mod 4 and combines (l0 + l1) + (l2 + l3) once at
// the end.  A sharded dot cannot sum per-shard partial dots — floating-
// point addition is not associative — so shards instead *carry* the four
// lane accumulators through the nodes in canonical order: node p continues
// the fold from node p-1's lanes, with each element feeding the lane of
// its GLOBAL index.  The final combine happens once, reproducing the
// serial fold's addition sequence exactly.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/decomposition.hpp"
#include "linalg/gershgorin.hpp"
#include "linalg/operator.hpp"

namespace kpm::linalg {

/// The four carried accumulator lanes of one in-flight canonical dot fold.
struct DotLanes {
  std::array<double, 4> lane{0.0, 0.0, 0.0, 0.0};

  /// The canonical final combine (lane0 + lane1) + (lane2 + lane3).
  [[nodiscard]] double combine() const noexcept {
    return (lane[0] + lane[1]) + (lane[2] + lane[3]);
  }
};

/// Continues a canonical dot fold over x[i]*y[i] where element i has
/// global index `global_offset + i` (feeding lane (global_offset + i) % 4).
/// Folding shard slices in ascending node order with one shared `lanes`
/// reproduces linalg::dot on the concatenated vectors bit-for-bit.
void dot_lanes_carry(std::span<const double> x, std::span<const double> y,
                     std::size_t global_offset, DotLanes& lanes);

/// Blocked variant over interleaved blocks (element i of member j at
/// x[i*block + j]): member j's fold continues in lanes[j].  Matches
/// linalg::block_dot member-for-member.
void block_dot_lanes_carry(std::span<const double> x, std::span<const double> y,
                           std::size_t block, std::size_t global_offset,
                           std::span<DotLanes> lanes);

/// Where a ghost slot's value lives: owning node + local row index there.
struct GhostSource {
  std::uint32_t owner = 0;
  std::uint32_t local_row = 0;
};

/// One node's share of the operator.
struct MatrixShard {
  std::size_t row_begin = 0;  ///< first owned global row
  std::size_t row_end = 0;    ///< one past the last owned global row

  /// Owned rows x (owned + ghost) columns; per-row entry order preserved
  /// from the global matrix.
  CrsMatrix local;
  /// SELL-C-sigma form of `local` (built only for Storage::Sell shards).
  SellMatrix sell;

  /// Global row ids of the ghost slots, ascending (the functional 1-hop
  /// halo); see ghost_position() for where slot g lives in the working
  /// vector.
  std::vector<std::int32_t> ghost_rows;
  /// Ghost slot -> owning shard + row there, resolved once at build time.
  std::vector<GhostSource> ghost_sources;
  /// Ghost slots with global index < row_begin (they precede the owned
  /// block in the working vector).
  std::size_t left_ghosts = 0;

  /// Owned rows whose value at least one other shard gathers (they must be
  /// computed before the halo exchange can complete).
  std::size_t boundary_rows = 0;
  /// Stored entries in those boundary rows.
  std::size_t boundary_nnz = 0;
  /// Distinct shards this node receives halo data from each step.
  std::size_t neighbour_count = 0;
  /// Doubles received per exchange under the decomposition's halo width:
  /// the w-hop sparsity neighbourhood (== ghost_rows.size() at width 1).
  std::size_t halo_recv_doubles = 0;
  /// Bytes one multiply streams for this shard's matrix data (CRS or SELL
  /// model, per the sharded storage).
  std::size_t matrix_bytes = 0;

  [[nodiscard]] std::size_t local_rows() const noexcept { return row_end - row_begin; }
  [[nodiscard]] std::size_t interior_rows() const noexcept {
    return local_rows() - boundary_rows;
  }
  [[nodiscard]] std::size_t working_size() const noexcept {
    return local_rows() + ghost_rows.size();
  }
  /// Working-vector position of the owned block (right after the left
  /// ghosts).
  [[nodiscard]] std::size_t owned_offset() const noexcept { return left_ghosts; }
  /// Working-vector position of ghost slot `gi`.
  [[nodiscard]] std::size_t ghost_position(std::size_t gi) const noexcept {
    return gi < left_ghosts ? gi : gi + local_rows();
  }
};

/// A domain-decomposed operator: P rectangular shards + halo index maps.
class ShardedMatrix {
 public:
  /// Shards `op` (CRS- or SELL-backed; dense is rejected — a dense row
  /// references every column, so there is no halo to exchange) by `dec`.
  /// `storage` selects the shard-local layout actually multiplied
  /// (Storage::Crs or Storage::Sell).
  ShardedMatrix(const MatrixOperator& op, const Decomposition& dec, Storage storage);

  [[nodiscard]] const Decomposition& decomposition() const noexcept { return dec_; }
  [[nodiscard]] Storage storage() const noexcept { return storage_; }
  [[nodiscard]] std::size_t nodes() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dec_.dim(); }
  [[nodiscard]] const MatrixShard& shard(std::size_t p) const;

  /// Global SpMV flop / matrix-traffic totals (sums over shards; equal to
  /// the unsharded operator's model for CRS).
  [[nodiscard]] std::size_t spmv_flops() const noexcept { return spmv_flops_; }
  [[nodiscard]] std::size_t spmv_matrix_bytes() const noexcept { return spmv_matrix_bytes_; }

  /// Doubles crossing the interconnect per recursion step (all shards).
  [[nodiscard]] std::size_t halo_doubles_per_step() const noexcept { return halo_doubles_; }

  /// Gershgorin bounds assembled shard-by-shard in canonical node order.
  /// min/max are exact, so the result equals gershgorin_bounds on the
  /// global matrix bit-for-bit — the decomposition-invariance property
  /// tests pin this down.
  [[nodiscard]] SpectralBounds gershgorin_bounds() const;

  /// y = (shard rows of A) * x_work for shard `p`, where `x_work` is the
  /// shard's [owned | ghost] working vector.  Dispatches to the shard's
  /// CRS or SELL form; per-row accumulation order matches the global
  /// multiply.
  void shard_multiply(std::size_t p, std::span<const double> x_work,
                      std::span<double> y) const;

  /// Blocked (SpMMV) variant over interleaved blocks: member j of working
  /// row i at x_work[i*block + j].  Each member's per-row accumulation is
  /// identical to shard_multiply on its deinterleaved vector.  `acc` is
  /// caller-provided scratch of at least `block` doubles.
  void shard_multiply_block(std::size_t p, std::size_t block, std::span<const double> x_work,
                            std::span<double> y, std::span<double> acc) const;

 private:
  Decomposition dec_;
  Storage storage_ = Storage::Crs;
  std::vector<MatrixShard> shards_;
  std::size_t spmv_flops_ = 0;
  std::size_t spmv_matrix_bytes_ = 0;
  std::size_t halo_doubles_ = 0;
};

}  // namespace kpm::linalg
