// Stochastic-trace estimator diagnostics.
//
// The KPM's accuracy knob is the instance count S*R (paper Eq. 16): the
// estimator's standard error falls as 1/sqrt(S R D).  These helpers expose
// the per-moment spread across instances so users can size R and S for a
// target accuracy instead of guessing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "linalg/operator.hpp"

namespace kpm::core {

/// Mean and standard error of each moment across instances.
struct MomentStatistics {
  std::vector<double> mean;            ///< = the usual mu_n
  std::vector<double> standard_error;  ///< sigma_n / sqrt(instances)
  std::size_t instances = 0;
};

/// Runs `instances` independent single-instance moment computations on the
/// CPU reference path and reports per-moment statistics.  Intended for
/// small exploratory runs (cost = instances full recursions).
[[nodiscard]] MomentStatistics estimate_moment_statistics(const linalg::MatrixOperator& h_tilde,
                                                          const MomentParams& params,
                                                          std::size_t instances);

}  // namespace kpm::core
