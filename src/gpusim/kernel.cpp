#include "gpusim/kernel.hpp"

namespace gpusim {

BlockContext::BlockContext(Dim3 block_idx, std::size_t linear_bid, const ExecConfig& cfg,
                           CostCounters& counters)
    : block_idx_(block_idx), linear_bid_(linear_bid), cfg_(&cfg), counters_(&counters),
      shared_(cfg.shared_bytes) {}

void Kernel::block_phase(int phase, BlockContext& block) {
  const Dim3 dims = block.config().block;
  AccessObserver* obs = launch_observer();
  std::size_t linear = 0;
  for (std::uint32_t z = 0; z < dims.z; ++z)
    for (std::uint32_t y = 0; y < dims.y; ++y)
      for (std::uint32_t x = 0; x < dims.x; ++x) {
        // Each thread's shared_array() calls must resolve to the block's
        // single shared allocation sequence (__shared__ semantics).
        block.rewind_shared();
        if (obs) obs->on_thread_begin(static_cast<std::ptrdiff_t>(linear));
        ThreadContext t(block, Dim3{x, y, z}, linear++);
        thread_phase(phase, t);
      }
  if (obs) obs->on_thread_begin(kBlockScope);
}

void Kernel::thread_phase(int /*phase*/, ThreadContext& /*thread*/) {
  KPM_FAIL("Kernel must override either block_phase() or thread_phase()");
}

}  // namespace gpusim
