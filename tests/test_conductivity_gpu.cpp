// Tests for the GPU-mapped Kubo-Greenwood moment engine.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/conductivity.hpp"
#include "core/conductivity_gpu.hpp"
#include "lattice/current.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "linalg/spectral_transform.hpp"

namespace {

using namespace kpm;
using namespace kpm::core;

struct Fixture {
  linalg::CrsMatrix h_tilde;
  linalg::CrsMatrix a_op;
  linalg::SpectralTransform transform{{-1.0, 1.0}, 0.0};

  explicit Fixture(std::size_t edge = 8) {
    const auto lat = lattice::HypercubicLattice::square(edge, edge);
    const auto h = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator op(h);
    transform = linalg::make_spectral_transform(op);
    h_tilde = linalg::rescale(h, transform);
    a_op = lattice::build_current_operator_crs(lat, 0);
  }
};

MomentParams small_params(std::size_t n = 12) {
  MomentParams p;
  p.num_moments = n;
  p.random_vectors = 4;
  p.realizations = 2;
  return p;
}

TEST(GpuConductivity, BitwiseEqualToCpuPath) {
  Fixture f;
  linalg::MatrixOperator h(f.h_tilde), a(f.a_op);
  const auto p = small_params();
  const auto cpu = conductivity_moments(h, a, p);
  GpuConductivityEngine gpu;
  const auto dev = gpu.compute(h, a, p);
  ASSERT_EQ(cpu.mu.size(), dev.mu.size());
  for (std::size_t i = 0; i < cpu.mu.size(); ++i)
    EXPECT_EQ(cpu.mu[i], dev.mu[i]) << "entry " << i;
}

TEST(GpuConductivity, SampledRunMatchesCpu) {
  Fixture f;
  linalg::MatrixOperator h(f.h_tilde), a(f.a_op);
  const auto p = small_params();
  const auto cpu = conductivity_moments(h, a, p, 3);
  GpuConductivityEngine gpu;
  const auto dev = gpu.compute(h, a, p, 3);
  EXPECT_EQ(dev.instances_executed, 3u);
  for (std::size_t i = 0; i < cpu.mu.size(); ++i) EXPECT_EQ(cpu.mu[i], dev.mu[i]);
}

TEST(GpuConductivity, TimelineIsPopulatedAndSamplingIsCostNeutral) {
  Fixture f;
  linalg::MatrixOperator h(f.h_tilde), a(f.a_op);
  const auto p = small_params();
  GpuConductivityEngine gpu;
  (void)gpu.compute(h, a, p);
  const double full = gpu.last_model_seconds();
  EXPECT_GT(full, 0.0);
  EXPECT_EQ(gpu.last_timeline().launches, 3u);
  (void)gpu.compute(h, a, p, 2);
  EXPECT_NEAR(gpu.last_model_seconds(), full, 1e-9 * std::max(1.0, full));
}

TEST(GpuConductivity, ReconstructionIsNonNegative) {
  Fixture f;
  linalg::MatrixOperator h(f.h_tilde), a(f.a_op);
  GpuConductivityEngine gpu;
  const auto m = gpu.compute(h, a, small_params(16));
  const auto curve = reconstruct_conductivity(m, f.transform);
  for (double s : curve.sigma) EXPECT_GE(s, -1e-10);
}

TEST(GpuConductivity, CostsMoreThanDosMoments) {
  // The 2D engine must model more kernel time than the DoS engine on the
  // same workload (the N^2 D dot-product term).  Needs a workload heavy
  // enough that launch-overhead floors do not dominate.
  Fixture f(16);  // D = 256
  linalg::MatrixOperator h(f.h_tilde), a(f.a_op);
  MomentParams p = small_params(64);
  GpuEngineConfig cfg;
  cfg.context_setup_seconds = 0.0;
  GpuConductivityEngine sigma_engine(cfg);
  (void)sigma_engine.compute(h, a, p, 2);
  const double sigma_s = sigma_engine.last_timeline().kernel_seconds;
  GpuMomentEngine dos_engine(cfg);
  const auto dos = dos_engine.compute(h, p, 2);
  EXPECT_GT(sigma_s, 2.0 * dos.compute_seconds);
}

TEST(GpuConductivity, VramExhaustionSurfaces) {
  // beta storage = instances * N * D doubles: push it past 3 GB.
  Fixture f(16);  // D = 256
  linalg::MatrixOperator h(f.h_tilde), a(f.a_op);
  MomentParams p;
  p.num_moments = 512;
  p.random_vectors = 512;
  p.realizations = 8;  // 4096 * 512 * 256 * 8 B = 4.3 TB of beta vectors
  GpuConductivityEngine gpu;
  EXPECT_THROW((void)gpu.compute(h, a, p, 1), kpm::Error);
}

TEST(GpuConductivity, DimensionMismatchThrows) {
  Fixture f;
  linalg::MatrixOperator h(f.h_tilde);
  const auto lat = lattice::HypercubicLattice::chain(10);
  const auto wrong = lattice::build_current_operator_crs(lat, 0);
  linalg::MatrixOperator w(wrong);
  GpuConductivityEngine gpu;
  EXPECT_THROW((void)gpu.compute(h, w, small_params()), kpm::Error);
}

}  // namespace
