// Tight-binding Hamiltonian assembly.
//
// H = sum_i eps_i |i><i| - t sum_<ij> (|i><j| + |j><i|)
//
// With eps_i = 0 and t = 1 on the periodic 10x10x10 cubic lattice this
// reproduces exactly the matrix the paper describes: zero diagonal, -1 at
// the six neighbour columns, seven structural entries per row.  On-site
// disorder (Anderson model) is supported through an energy functor.
#pragma once

#include <cstdint>
#include <functional>

#include "linalg/crs_matrix.hpp"
#include "linalg/dense_matrix.hpp"
#include "lattice/lattice.hpp"

namespace kpm::lattice {

/// Parameters of the tight-binding model.
struct TightBindingParams {
  double hopping = 1.0;        ///< t; the paper uses matrix entries of -t = -1
  double hopping_nnn = 0.0;    ///< t': next-nearest-neighbour hopping (breaks
                               ///< particle-hole symmetry when nonzero)
  double onsite = 0.0;         ///< uniform eps; the paper uses 0
  bool store_zero_diagonal = true;  ///< keep structural diagonal entries even when eps == 0,
                                    ///< matching the paper's "7 non-zero elements per row" layout
};

/// Per-site on-site energy override (site index -> eps_i); used for the
/// Anderson disorder model.  When set, `onsite` is ignored.
using OnsiteFunction = std::function<double(std::size_t)>;

/// Assembles the tight-binding Hamiltonian of `lat` in CRS form.
[[nodiscard]] linalg::CrsMatrix build_tight_binding_crs(const HypercubicLattice& lat,
                                                        const TightBindingParams& params = {},
                                                        const OnsiteFunction& onsite = nullptr);

/// Assembles the same Hamiltonian densely (the storage used by the paper's
/// "CRS format is not applied" analysis).
[[nodiscard]] linalg::DenseMatrix build_tight_binding_dense(const HypercubicLattice& lat,
                                                            const TightBindingParams& params = {},
                                                            const OnsiteFunction& onsite = nullptr);

/// Anderson-disorder on-site energies: eps_i ~ U(-W/2, W/2), drawn from the
/// counter-based RNG so every (seed, realization) pair is reproducible.
[[nodiscard]] OnsiteFunction anderson_disorder(double width, std::uint64_t seed,
                                               std::uint64_t realization = 0);

/// Dense random symmetric matrix with entries U(-1, 1): the synthetic
/// workload for the paper's Figs. 7 and 8 ("H_SIZE" scaling), where only
/// the matrix dimension matters, not its physics.
[[nodiscard]] linalg::DenseMatrix random_symmetric_dense(std::size_t dim, std::uint64_t seed);

/// Exact eigenvalues of the uniform tight-binding model on a periodic
/// hypercubic lattice: E(k) = eps - 2t sum_a cos(2 pi m_a / L_a).  Used by
/// tests to validate the assembly and the KPM DoS against closed-form
/// spectra.  Returned unsorted (one value per momentum index), size = sites.
[[nodiscard]] std::vector<double> periodic_tight_binding_spectrum(const HypercubicLattice& lat,
                                                                  const TightBindingParams& params = {});

}  // namespace kpm::lattice
