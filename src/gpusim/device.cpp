#include "gpusim/device.hpp"

namespace gpusim {

const char* to_string(TimelineEvent::Kind k) noexcept {
  switch (k) {
    case TimelineEvent::Kind::Allocation:
      return "alloc";
    case TimelineEvent::Kind::TransferToDevice:
      return "h2d";
    case TimelineEvent::Kind::TransferToHost:
      return "d2h";
    case TimelineEvent::Kind::KernelLaunch:
      return "kernel";
    case TimelineEvent::Kind::Memset:
      return "memset";
  }
  return "?";
}

Device::Device(DeviceSpec spec) : spec_(std::move(spec)), check_(default_check()) {
  spec_.validate();
  vram_ = std::make_shared<detail::VramState>();
  vram_->capacity_bytes = spec_.global_mem_bytes;
}

KernelStats Device::launch(const ExecConfig& cfg, Kernel& kernel, double cost_scale,
                           StreamId stream) {
  KPM_REQUIRE(cfg.total_blocks() > 0, "launch: empty grid");
  KPM_REQUIRE(cfg.threads_per_block() > 0, "launch: empty block");
  KPM_REQUIRE(cfg.shared_bytes <= spec_.shared_mem_per_sm,
              "launch: requested shared memory exceeds the per-SM capacity");
  KPM_REQUIRE(cost_scale >= 1.0, "launch: cost_scale must be >= 1");
  const int phases = kernel.phase_count();
  KPM_REQUIRE(phases >= 1, "launch: kernel must have at least one phase");

  CostCounters counters;
  // Hazard analysis is passive: the observer (when installed) sees the
  // launch structure and every annotated access, but never perturbs
  // execution order, results or metering.
  ScopedLaunchObserver scope(check_.observer);
  AccessObserver* obs = check_.observer;
  if (obs != nullptr) obs->on_launch_begin(this, kernel.name(), cfg, stream);
  const Dim3 g = cfg.grid;
  std::size_t linear_bid = 0;
  for (std::uint32_t bz = 0; bz < g.z; ++bz)
    for (std::uint32_t by = 0; by < g.y; ++by)
      for (std::uint32_t bx = 0; bx < g.x; ++bx) {
        BlockContext block(Dim3{bx, by, bz}, linear_bid, cfg, counters);
        if (obs != nullptr) obs->on_block_begin(linear_bid, cfg.threads_per_block());
        ++linear_bid;
        for (int p = 0; p < phases; ++p) {
          if (obs != nullptr) obs->on_phase_begin(p);
          block.begin_phase();
          kernel.block_phase(p, block);
        }
        // Implicit barrier at each phase boundary (none after the last).
        counters.barriers += phases - 1;
      }
  if (obs != nullptr) obs->on_launch_end();

  counters.scale(cost_scale);
  const KernelStats stats = model_kernel_time(spec_, cfg, counters);
  push_event({TimelineEvent::Kind::KernelLaunch, kernel.name(), stats.seconds, 0.0, stats,
              counters, stream, 0.0, 0.0},
             stream);
  return stats;
}

StreamId Device::create_stream() {
  // New streams start at the device's current critical path (they cannot
  // observe work that has not been issued yet, and creating one is a
  // host-side action after everything issued so far).
  stream_clock_.push_back(seconds());
  const StreamId id = stream_clock_.size() - 1;
  if (check_.observer != nullptr) check_.observer->on_stream_created(this, id);
  return id;
}

double Device::record_event(StreamId stream) const {
  KPM_REQUIRE(stream < stream_clock_.size(), "record_event: unknown stream");
  const double seconds = stream_clock_[stream];
  if (check_.observer != nullptr) check_.observer->on_record_event(this, stream, seconds);
  return seconds;
}

void Device::wait_event(StreamId stream, double event_seconds) {
  KPM_REQUIRE(stream < stream_clock_.size(), "wait_event: unknown stream");
  stream_clock_[stream] = std::max(stream_clock_[stream], event_seconds);
  if (check_.observer != nullptr) check_.observer->on_wait_event(this, stream, event_seconds);
}

void Device::synchronize() {
  const double cp = seconds();
  for (double& clock : stream_clock_) clock = cp;
  if (check_.observer != nullptr) check_.observer->on_synchronize(this);
}

double Device::seconds() const noexcept {
  double cp = 0.0;
  for (double clock : stream_clock_) cp = std::max(cp, clock);
  return cp;
}

TimelineSummary Device::summarize_timeline() const {
  TimelineSummary s;
  s.critical_path_seconds = seconds();
  for (const auto& ev : timeline_) {
    s.total_seconds += ev.seconds;
    switch (ev.kind) {
      case TimelineEvent::Kind::Allocation:
        s.allocation_seconds += ev.seconds;
        break;
      case TimelineEvent::Kind::TransferToDevice:
        s.transfer_seconds += ev.seconds;
        s.bytes_to_device += ev.bytes;
        break;
      case TimelineEvent::Kind::TransferToHost:
        s.transfer_seconds += ev.seconds;
        s.bytes_to_host += ev.bytes;
        break;
      case TimelineEvent::Kind::KernelLaunch:
        s.kernel_seconds += ev.seconds;
        s.total_flops += ev.counters.flops;
        s.launches += 1;
        break;
      case TimelineEvent::Kind::Memset:
        s.kernel_seconds += ev.seconds;
        break;
    }
  }
  return s;
}

void Device::reset_timeline() {
  timeline_.clear();
  for (double& clock : stream_clock_) clock = 0.0;
}

void Device::push_event(TimelineEvent ev, StreamId stream) {
  KPM_REQUIRE(stream < stream_clock_.size(), "push_event: unknown stream (create_stream first)");
  ev.stream = stream;
  ev.start_seconds = stream_clock_[stream];
  ev.end_seconds = ev.start_seconds + ev.seconds;
  stream_clock_[stream] = ev.end_seconds;
  timeline_.push_back(std::move(ev));
}

}  // namespace gpusim
