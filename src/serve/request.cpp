#include "serve/request.hpp"

namespace kpm::serve {

const char* to_string(RequestKind k) noexcept {
  switch (k) {
    case RequestKind::Dos:
      return "dos";
    case RequestKind::Ldos:
      return "ldos";
    case RequestKind::Sigma:
      return "sigma";
  }
  return "?";
}

const char* to_string(ResponseStatus s) noexcept {
  switch (s) {
    case ResponseStatus::Ok:
      return "ok";
    case ResponseStatus::Rejected:
      return "rejected";
    case ResponseStatus::Expired:
      return "expired";
  }
  return "?";
}

RequestKind kind_of(const Request& request) noexcept {
  if (std::holds_alternative<DosRequest>(request)) return RequestKind::Dos;
  if (std::holds_alternative<LdosRequest>(request)) return RequestKind::Ldos;
  return RequestKind::Sigma;
}

const RequestBase& base_of(const Request& request) noexcept {
  return std::visit([](const auto& r) -> const RequestBase& { return r; }, request);
}

}  // namespace kpm::serve
