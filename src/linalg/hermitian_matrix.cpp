#include "linalg/hermitian_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace kpm::linalg {

CrsMatrixZ::CrsMatrixZ(std::size_t rows, std::size_t cols, std::vector<Index> row_ptr,
                       std::vector<Index> col_idx, std::vector<Complex> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  KPM_REQUIRE(row_ptr_.size() == rows_ + 1, "CrsMatrixZ: row_ptr must have rows+1 entries");
  KPM_REQUIRE(row_ptr_.front() == 0, "CrsMatrixZ: row_ptr[0] must be 0");
  KPM_REQUIRE(static_cast<std::size_t>(row_ptr_.back()) == values_.size(),
              "CrsMatrixZ: row_ptr[rows] must equal nnz");
  KPM_REQUIRE(col_idx_.size() == values_.size(), "CrsMatrixZ: col_idx/values size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    KPM_REQUIRE(row_ptr_[r] <= row_ptr_[r + 1], "CrsMatrixZ: row_ptr must be non-decreasing");
    for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      KPM_REQUIRE(col_idx_[kk] >= 0 && static_cast<std::size_t>(col_idx_[kk]) < cols_,
                  "CrsMatrixZ: column index out of range");
      if (k > row_ptr_[r])
        KPM_REQUIRE(col_idx_[kk - 1] < col_idx_[kk],
                    "CrsMatrixZ: columns must be sorted and unique within a row");
    }
  }
}

CrsMatrixZ::Complex CrsMatrixZ::at(std::size_t r, std::size_t c) const {
  KPM_REQUIRE(r < rows_ && c < cols_, "CrsMatrixZ::at: index out of range");
  const auto* begin = col_idx_.data() + row_ptr_[r];
  const auto* end = col_idx_.data() + row_ptr_[r + 1];
  const auto* it = std::lower_bound(begin, end, static_cast<Index>(c));
  if (it == end || *it != static_cast<Index>(c)) return {0.0, 0.0};
  return values_[static_cast<std::size_t>(row_ptr_[r] + (it - begin))];
}

void CrsMatrixZ::multiply(std::span<const Complex> x, std::span<Complex> y) const {
  KPM_REQUIRE(x.size() == cols_ && y.size() == rows_, "CrsMatrixZ::multiply: dimension mismatch");
  KPM_REQUIRE(x.data() != y.data(), "CrsMatrixZ::multiply: x and y must not alias");
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc{0.0, 0.0};
    for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      acc += values_[kk] * x[static_cast<std::size_t>(col_idx_[kk])];
    }
    y[r] = acc;
  }
}

bool CrsMatrixZ::is_hermitian(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      const auto c = static_cast<std::size_t>(col_idx_[kk]);
      if (std::abs(values_[kk] - std::conj(at(c, r))) > tol) return false;
    }
  return true;
}

SpectralBounds CrsMatrixZ::gershgorin() const {
  KPM_REQUIRE(rows_ == cols_, "CrsMatrixZ::gershgorin requires a square matrix");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < rows_; ++r) {
    double center = 0.0, radius = 0.0;
    for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      if (static_cast<std::size_t>(col_idx_[kk]) == r)
        center = values_[kk].real();  // Hermitian: diagonal is real
      else
        radius += std::abs(values_[kk]);
    }
    lo = std::min(lo, center - radius);
    hi = std::max(hi, center + radius);
  }
  return {lo, hi};
}

TripletBuilderZ::TripletBuilderZ(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
  KPM_REQUIRE(rows > 0 && cols > 0, "TripletBuilderZ dimensions must be positive");
}

void TripletBuilderZ::add(std::size_t r, std::size_t c, CrsMatrixZ::Complex value) {
  KPM_REQUIRE(r < rows_ && c < cols_, "TripletBuilderZ::add: index out of range");
  entries_.push_back({r, c, value});
}

void TripletBuilderZ::add_hermitian(std::size_t r, std::size_t c, CrsMatrixZ::Complex value) {
  if (r == c)
    KPM_REQUIRE(std::abs(value.imag()) == 0.0,
                "TripletBuilderZ::add_hermitian: diagonal entries must be real");
  add(r, c, value);
  if (r != c) add(c, r, std::conj(value));
}

CrsMatrixZ TripletBuilderZ::build() {
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return a.r != b.r ? a.r < b.r : a.c < b.c;
  });

  std::vector<CrsMatrixZ::Index> row_ptr(rows_ + 1, 0);
  std::vector<CrsMatrixZ::Index> col_idx;
  std::vector<CrsMatrixZ::Complex> values;
  col_idx.reserve(entries_.size());
  values.reserve(entries_.size());

  for (std::size_t i = 0; i < entries_.size();) {
    const std::size_t r = entries_[i].r;
    const std::size_t c = entries_[i].c;
    CrsMatrixZ::Complex v{0.0, 0.0};
    while (i < entries_.size() && entries_[i].r == r && entries_[i].c == c) v += entries_[i++].v;
    if (v != CrsMatrixZ::Complex{0.0, 0.0}) {
      col_idx.push_back(static_cast<CrsMatrixZ::Index>(c));
      values.push_back(v);
      ++row_ptr[r + 1];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr[r + 1] += row_ptr[r];

  entries_.clear();
  return CrsMatrixZ(rows_, cols_, std::move(row_ptr), std::move(col_idx), std::move(values));
}

CrsMatrixZ rescale(const CrsMatrixZ& h, const SpectralTransform& t) {
  KPM_REQUIRE(h.rows() == h.cols(), "rescale requires a square matrix");
  TripletBuilderZ b(h.rows(), h.cols());
  const double inv = 1.0 / t.half_width();
  const auto row_ptr = h.row_ptr();
  const auto col_idx = h.col_idx();
  const auto values = h.values();
  for (std::size_t r = 0; r < h.rows(); ++r)
    for (auto k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      b.add(r, static_cast<std::size_t>(col_idx[kk]), values[kk] * inv);
    }
  if (t.center() != 0.0)
    for (std::size_t r = 0; r < h.rows(); ++r) b.add(r, r, {-t.center() * inv, 0.0});
  return b.build();
}

}  // namespace kpm::linalg
