#include "check/scenarios.hpp"

#include <array>
#include <cstddef>

#include "common/error.hpp"
#include "core/conductivity_gpu.hpp"
#include "core/ldos_gpu.hpp"
#include "core/moments_gpu.hpp"
#include "core/moments_gpu_chunked.hpp"
#include "core/moments_hermitian_gpu.hpp"
#include "core/moments_multigpu.hpp"
#include "lattice/current.hpp"
#include "lattice/hamiltonian.hpp"
#include "lattice/lattice.hpp"
#include "lattice/peierls.hpp"
#include "linalg/spectral_transform.hpp"

namespace kpm::check {
namespace {

core::MomentParams small_params() {
  core::MomentParams p;
  p.num_moments = 12;
  p.random_vectors = 3;
  p.realizations = 2;
  return p;
}

linalg::CrsMatrix cube_h_tilde(std::size_t edge = 3) {
  const auto lat = lattice::HypercubicLattice::cubic(edge, edge, edge);
  const auto h = lattice::build_tight_binding_crs(lat);
  linalg::MatrixOperator op(h);
  return linalg::rescale(h, linalg::make_spectral_transform(op));
}

void run_moments(const core::GpuEngineConfig& cfg) {
  const auto h = cube_h_tilde();
  linalg::MatrixOperator op(h);
  core::GpuMomentEngine engine(cfg);
  (void)engine.compute(op, small_params());
}

void run_workload(const std::string& name) {
  if (name == "moments-gpu-block") {
    core::GpuEngineConfig cfg;
    cfg.mapping = core::GpuMapping::InstancePerBlock;
    run_moments(cfg);
  } else if (name == "moments-gpu-thread") {
    core::GpuEngineConfig cfg;
    cfg.mapping = core::GpuMapping::InstancePerThread;
    run_moments(cfg);
  } else if (name == "moments-gpu-paired") {
    core::GpuEngineConfig cfg;
    cfg.mapping = core::GpuMapping::InstancePerBlock;
    cfg.paired_moments = true;
    run_moments(cfg);
  } else if (name == "moments-gpu-chunked") {
    const auto h = cube_h_tilde();
    linalg::MatrixOperator op(h);
    core::ChunkedGpuEngineConfig cfg;
    // Small workspace forces several chunks so the double-buffered
    // fill/recursion stream overlap actually happens under the checker.
    cfg.workspace_bytes = 2048;
    cfg.overlap_fill = true;
    core::ChunkedGpuMomentEngine engine(cfg);
    (void)engine.compute(op, small_params());
  } else if (name == "moments-multigpu") {
    const auto h = cube_h_tilde();
    linalg::MatrixOperator op(h);
    core::MultiGpuEngineConfig cfg;
    cfg.device_count = 2;
    core::MultiGpuMomentEngine engine(cfg);
    (void)engine.compute(op, small_params());
  } else if (name == "moments-hermitian") {
    const auto h = lattice::build_square_flux_crs(6, 6, 1.0 / 6.0);
    const linalg::SpectralTransform t(h.gershgorin(), 0.02);
    const auto h_tilde = linalg::rescale(h, t);
    core::GpuHermitianMomentEngine engine;
    (void)engine.compute(h_tilde, small_params());
  } else if (name == "ldos") {
    const auto h = cube_h_tilde();
    linalg::MatrixOperator op(h);
    const std::array<std::size_t, 3> sites{0, 5, 13};
    core::GpuLdosEngine engine;
    (void)engine.compute(op, std::span<const std::size_t>(sites), 12);
  } else if (name == "conductivity") {
    const auto lat = lattice::HypercubicLattice::square(6, 6);
    const auto h = lattice::build_tight_binding_crs(lat);
    linalg::MatrixOperator op(h);
    const auto h_tilde = linalg::rescale(h, linalg::make_spectral_transform(op));
    const auto a = lattice::build_current_operator_crs(lat, 0);
    linalg::MatrixOperator h_op(h_tilde), a_op(a);
    core::GpuConductivityEngine engine;
    (void)engine.compute(h_op, a_op, small_params());
  } else {
    KPM_FAIL("unknown check scenario: " + name);
  }
}

}  // namespace

std::vector<std::string> scenario_names() {
  return {"moments-gpu-block", "moments-gpu-thread", "moments-gpu-paired",
          "moments-gpu-chunked", "moments-multigpu",  "moments-hermitian",
          "ldos",               "conductivity"};
}

ScenarioReport run_scenario(const std::string& name) {
  Checker checker;
  {
    // Engines construct their devices internally; the scoped process-wide
    // default is how the checker reaches them.
    ScopedCheck scope(checker);
    run_workload(name);
  }
  ScenarioReport report;
  report.name = name;
  report.findings = checker.findings();
  report.stats = checker.stats();
  return report;
}

std::vector<ScenarioReport> run_all_scenarios() {
  std::vector<ScenarioReport> reports;
  for (const std::string& name : scenario_names()) reports.push_back(run_scenario(name));
  return reports;
}

}  // namespace kpm::check
