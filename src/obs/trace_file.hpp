// Loadable representation of an exported `kpm.trace/1` Chrome trace.
//
// tracediff and the critical-path analyzer consume trace *files*, not live
// reports — the exporter's JSON is the interchange format.  `TraceFile` is
// its parsed form with every instant quantised to exact integer nanosecond
// ticks: the canonical conversion is microseconds-as-written →
// `llround(us * 1000.0)`, applied identically whether the trace comes from
// disk (`trace_from_json`) or straight from a collected report
// (`trace_from_report`).  Because the exporter writes microsecond doubles
// that round-trip exactly (`json_number`, %.17g), the two paths agree
// bit-for-bit: analysing a loaded file can never disagree with analysing
// the report it was written from.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"

namespace kpm::obs {

class JsonValue;
struct Report;

/// The canonical microseconds → nanosecond-ticks quantisation.
[[nodiscard]] std::int64_t trace_ticks_from_us(double microseconds) noexcept;

/// One measured host span (pid 0 "X" event).  `parent` indexes the file's
/// span list; `kNoParent` for roots.
struct TraceFileSpan {
  std::string name;
  std::size_t parent = kNoParent;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  bool operator==(const TraceFileSpan&) const = default;
};

/// One device-timeline event (kernel / h2d / d2h / alloc / memset).
struct TraceFileEvent {
  std::string kind;
  std::string label;
  std::size_t stream = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  double bytes = 0.0;         ///< transfers / allocs / memsets
  double flops = 0.0;         ///< kernels
  double global_bytes = 0.0;  ///< kernels
  double occupancy = 0.0;     ///< kernels
  std::string bound;          ///< kernels: dominant roofline bound
  [[nodiscard]] bool on_copy_lane() const noexcept { return kind == "h2d" || kind == "d2h"; }
  [[nodiscard]] std::int64_t duration_ns() const noexcept { return end_ns - start_ns; }
  bool operator==(const TraceFileEvent&) const = default;
};

/// One gpusim process (pid 1+i) with its stream lanes.
struct TraceFileTimeline {
  std::string label;
  std::string device;
  std::size_t streams = 1;
  double peak_flops = 0.0;
  double peak_bandwidth = 0.0;
  std::vector<TraceFileEvent> events;  ///< emission order (monotone per lane)
  bool operator==(const TraceFileTimeline&) const = default;
};

/// A whole parsed trace.
struct TraceFile {
  std::string schema;   ///< must equal kTraceSchema
  std::string exporter;
  std::string label;
  bool include_measured = true;
  std::vector<TraceFileSpan> spans;
  std::vector<TraceFileTimeline> timelines;
  std::vector<std::pair<std::string, double>> counters;  ///< nonzero totals, registry order
  bool operator==(const TraceFile&) const = default;
};

/// Builds the TraceFile a report *would* export — same quantisation, same
/// span filtering/remapping as `to_chrome_trace` — without serialising.
[[nodiscard]] TraceFile trace_from_report(const Report& report, ChromeTraceOptions options = {});

/// Parses an exported trace document.  Throws kpm::Error when the document
/// lacks the `kpm.trace/1` metadata stamp or is structurally inconsistent.
[[nodiscard]] TraceFile trace_from_json(const JsonValue& document);

/// Reads and parses a trace file from disk.
[[nodiscard]] TraceFile load_trace_file(const std::string& path);

}  // namespace kpm::obs
