// Symbolic access summaries: fitting pilot recordings to polynomials.
//
// The verifier runs each production workload (or fixture) at several pilot
// geometries and records every instrumented access (observer.hpp).  This
// layer turns those recordings into per-kernel-class summaries:
//
//   * launch geometry  — threads/block, block count, shared arena size and
//     every touched buffer's byte size as polynomials of the workload
//     parameters,
//   * access sites     — events grouped by (phase, scope, space, op,
//     buffer, annotation); each group's offset/size fitted as a polynomial
//     of (bid, tid, it) and the launch variables, where `it` is the
//     occurrence index of the site within one thread (so uniform per-thread
//     loops become affine families automatically),
//   * iteration counts — events per thread fitted over launch variables
//     and required to be uniform across the threads of a launch.
//
// Fits are exact (no least squares): an inconsistent system, a non-uniform
// count, or a cross-validation mismatch on the held-out pilot runs demotes
// the site or class with a NonAffine reason instead of guessing.  A class
// whose buffer sizes cannot be fitted keeps its race proofs but loses
// bounds coverage (recorded in `unsized_buffers`).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "verify/observer.hpp"
#include "verify/poly.hpp"

namespace kpm::verify {

/// The variable universe of one verification unit.
struct UnitVars {
  VarTable table;
  std::vector<int> params;  ///< workload parameters, in declaration order
  int tpb = -1, nb = -1;    ///< launch geometry variables
  int tid = -1, bid = -1, it = -1;        ///< per-event variables
  int tid2 = -1, bid2 = -1, it2 = -1;     ///< primed copies for pair proofs
  int delta = -1;                         ///< gap between the distinguishing pair (>= 1)
};

/// Initializes ids for `param_names` plus the builtin variables.
UnitVars make_unit_vars(const std::vector<std::string>& param_names);

/// Identity of an access-site family within a kernel class.
struct SiteKey {
  int phase = 0;
  bool block_scope = false;
  Space space = Space::Global;
  Op op = Op::Read;
  std::string buffer;                            ///< empty for shared
  std::uint32_t site = AccessEvent::kNoSite;     ///< annotate_site id, if any
  auto operator<=>(const SiteKey&) const = default;
  [[nodiscard]] std::string str() const;
};

/// One fitted access-site family.
struct SiteSummary {
  SiteKey key;
  Poly offset;  ///< byte offset as a polynomial over unit variables
  Poly bytes;   ///< access size
  Poly count;   ///< events per (block, thread) per launch; `it` in [0, count)
  std::size_t samples = 0;
};

/// One verified kernel class: a kernel name plus the signature of buffers
/// it touches (the same kernel touching different buffers — e.g. ping-pong
/// chunk buffers — forms separate classes with separate summaries).
struct ClassSummary {
  std::string kernel;
  std::vector<std::string> buffers;  ///< sorted labels (class signature)
  Poly tpb;                          ///< threads per block over params
  Poly nb;                           ///< blocks per launch over params
  bool tpb_affine = false;
  bool nb_affine = false;  ///< false: block count treated as unbounded free var
  Poly shared_bytes;
  bool shared_affine = false;
  std::map<std::string, Poly> buffer_sizes;  ///< only affinely-sized buffers
  std::vector<std::string> unsized_buffers;  ///< size fit failed: bounds demoted
  std::vector<SiteSummary> sites;
  std::vector<std::string> demotions;  ///< NonAffine reasons (empty = fully affine)
  std::size_t launches = 0;
  std::size_t events = 0;
};

/// One pilot run: the workload parameters it was produced with and its
/// recording.  All runs of a unit must use the same parameter names.
struct RunSample {
  std::vector<std::pair<std::string, long long>> params;
  const RunRecord* record = nullptr;
};

/// Groups launches into kernel classes and fits symbolic summaries.  The
/// runs are reordered canonically (verdicts depend only on the *set* of
/// pilots, never on the seed rotation); every cyclic window of `fit.size()`
/// runs is tried as the fit subset and a summary is accepted when some
/// window's exact fit validates on every launch — so acceptance always
/// extrapolates to geometries held out of the fit.  Families or geometry
/// relations that fail to fit or validate are demoted (recorded in
/// ClassSummary::demotions / unsized_buffers), never guessed.
std::vector<ClassSummary> summarize(UnitVars& vars, const std::vector<RunSample>& fit,
                                    const std::vector<RunSample>& holdout);

}  // namespace kpm::verify
