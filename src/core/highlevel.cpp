#include "core/highlevel.hpp"

#include <memory>

#include "common/error.hpp"
#include "core/moments_cpu.hpp"
#include "core/moments_multigpu.hpp"
#include "diag/lanczos.hpp"

namespace kpm::core {

const char* to_string(EngineKind k) noexcept {
  switch (k) {
    case EngineKind::CpuReference:
      return "cpu-reference";
    case EngineKind::CpuPaired:
      return "cpu-paired";
    case EngineKind::CpuParallel:
      return "cpu-parallel";
    case EngineKind::Gpu:
      return "gpu";
    case EngineKind::GpuCluster:
      return "gpu-cluster";
  }
  return "?";
}

DosStudy compute_dos_study(const linalg::MatrixOperator& h, const DosStudyOptions& options) {
  options.params.validate();

  // 1. Spectral bounds and transform.
  const linalg::SpectralBounds bounds = options.use_lanczos_bounds
                                            ? diag::lanczos_bounds(h).bounds
                                            : linalg::gershgorin_bounds(h);
  DosStudy study;
  study.transform = linalg::SpectralTransform(bounds, options.bounds_epsilon);

  // 2. Rescale, keeping ownership of the storage that matches the input.
  linalg::DenseMatrix dense_tilde;
  linalg::CrsMatrix crs_tilde;
  std::unique_ptr<linalg::MatrixOperator> op_tilde;
  if (h.storage() == linalg::Storage::Dense) {
    dense_tilde = linalg::rescale(*h.dense(), study.transform);
    op_tilde = std::make_unique<linalg::MatrixOperator>(dense_tilde);
  } else {
    crs_tilde = linalg::rescale(*h.crs(), study.transform);
    op_tilde = std::make_unique<linalg::MatrixOperator>(crs_tilde);
  }

  // 3. Moments on the chosen engine.
  switch (options.engine) {
    case EngineKind::CpuReference: {
      CpuMomentEngine engine;
      study.moments = engine.compute(*op_tilde, options.params, options.sample_instances);
      break;
    }
    case EngineKind::CpuPaired: {
      CpuPairedMomentEngine engine;
      study.moments = engine.compute(*op_tilde, options.params, options.sample_instances);
      break;
    }
    case EngineKind::CpuParallel: {
      CpuParallelMomentEngine engine(options.cpu_threads);
      study.moments = engine.compute(*op_tilde, options.params, options.sample_instances);
      break;
    }
    case EngineKind::Gpu: {
      GpuMomentEngine engine(options.gpu);
      study.moments = engine.compute(*op_tilde, options.params, options.sample_instances);
      break;
    }
    case EngineKind::GpuCluster: {
      MultiGpuEngineConfig cfg;
      cfg.per_device = options.gpu;
      cfg.device_count = options.cluster_devices;
      MultiGpuMomentEngine engine(cfg);
      study.moments = engine.compute(*op_tilde, options.params, options.sample_instances);
      break;
    }
  }

  // 4. Reconstruction.
  study.curve = reconstruct_dos(study.moments.mu, study.transform, options.reconstruct);
  return study;
}

}  // namespace kpm::core
