// Unit and statistical tests for the RNG stack: SplitMix64, Xoshiro256++,
// Philox4x32-10 and the random-vector distributions.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using namespace kpm::rng;

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values of the canonical splitmix64 from seed 0.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(g.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(g.next(), 0x06C45D188009454FULL);
}

TEST(SplitMix64, HashMatchesStreaming) {
  // splitmix64_hash(x) equals the first output of SplitMix64 seeded with x.
  for (std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
    SplitMix64 g(seed);
    EXPECT_EQ(g.next(), splitmix64_hash(seed));
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicForFixedSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, JumpCreatesDisjointStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 256; ++i) seen.insert(a.next());
  for (int i = 0; i < 256; ++i) EXPECT_FALSE(seen.contains(b.next()));
}

TEST(Xoshiro256, RoughUniformityOfTopBit) {
  Xoshiro256 g(99);
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ones += static_cast<int>(g.next() >> 63);
  EXPECT_NEAR(ones, n / 2, 4 * std::sqrt(n / 4.0));  // 4 sigma
}

TEST(Philox, DeterministicAndOrderIndependent) {
  // The whole point of a counter-based RNG: value depends only on the
  // coordinates, never on evaluation order.
  const auto a = philox_u64(42, 3, 1000);
  const auto b = philox_u64(42, 7, 5);
  EXPECT_EQ(philox_u64(42, 3, 1000), a);
  EXPECT_EQ(philox_u64(42, 7, 5), b);
}

TEST(Philox, CoordinatesChangeOutput) {
  const auto base = philox_u64(1, 2, 3);
  EXPECT_NE(philox_u64(9, 2, 3), base);
  EXPECT_NE(philox_u64(1, 9, 3), base);
  EXPECT_NE(philox_u64(1, 2, 9), base);
}

TEST(Philox, HighLaneIndependentOfLowLane) {
  EXPECT_NE(philox_u64(5, 6, 7), philox_u64_hi(5, 6, 7));
}

TEST(Philox, BitBalance) {
  // Population count over many outputs should be ~32 per word.
  double total_bits = 0;
  const int n = 4096;
  for (int i = 0; i < n; ++i) total_bits += std::popcount(philox_u64(11, 0, static_cast<std::uint64_t>(i)));
  EXPECT_NEAR(total_bits / n, 32.0, 0.5);
}

TEST(Distributions, UnitDoubleInRange) {
  for (int i = 0; i < 1000; ++i) {
    const double u = u64_to_unit_double(philox_u64(3, 0, static_cast<std::uint64_t>(i)));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Distributions, OpenUnitDoubleNeverZero) {
  EXPECT_GT(u64_to_unit_double_open(0), 0.0);
  EXPECT_LE(u64_to_unit_double_open(~0ULL), 1.0);
}

TEST(Distributions, RademacherIsPlusMinusOne) {
  int plus = 0, minus = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = u64_to_rademacher(philox_u64(5, 0, static_cast<std::uint64_t>(i)));
    if (v == 1.0)
      ++plus;
    else if (v == -1.0)
      ++minus;
    else
      FAIL() << "non-Rademacher value " << v;
  }
  EXPECT_NEAR(plus, minus, 4 * std::sqrt(2000.0));
}

class RandomVectorKindTest : public ::testing::TestWithParam<RandomVectorKind> {};

TEST_P(RandomVectorKindTest, ZeroMeanUnitVariance) {
  // All random-vector kinds must satisfy the paper's Eq. (14):
  // <<xi>> = 0, <<xi^2>> = 1 (unit variance), verified statistically.
  const auto kind = GetParam();
  const int n = 60000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = draw_random_element(kind, 1234, 0, static_cast<std::uint64_t>(i));
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 5.0 / std::sqrt(static_cast<double>(n)));
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST_P(RandomVectorKindTest, StreamsAreUncorrelated) {
  // Cross-moment <<xi_r xi_r'>> ~ 0 for different streams (Eq. 14's
  // delta_rr' term).
  const auto kind = GetParam();
  const int n = 20000;
  double cross = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    cross += draw_random_element(kind, 77, 0, idx) * draw_random_element(kind, 77, 1, idx);
  }
  EXPECT_NEAR(cross / n, 0.0, 5.0 / std::sqrt(static_cast<double>(n)));
}

TEST_P(RandomVectorKindTest, NameRoundTrips) {
  const auto kind = GetParam();
  EXPECT_EQ(random_vector_kind_from_string(to_string(kind)), kind);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RandomVectorKindTest,
                         ::testing::Values(RandomVectorKind::Rademacher,
                                           RandomVectorKind::Gaussian,
                                           RandomVectorKind::UniformSym),
                         [](const auto& info) { return to_string(info.param); });

TEST(Distributions, GaussianTails) {
  // ~0.27% of standard normal samples lie beyond 3 sigma; check the order
  // of magnitude (loose bounds, deterministic seed).
  int beyond = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = draw_random_element(RandomVectorKind::Gaussian, 5, 0,
                                         static_cast<std::uint64_t>(i));
    if (std::abs(v) > 3.0) ++beyond;
  }
  EXPECT_GT(beyond, 100);
  EXPECT_LT(beyond, 600);
}

TEST(Distributions, UnknownNameThrows) {
  EXPECT_THROW(random_vector_kind_from_string("bogus"), kpm::Error);
}

}  // namespace
